package sim

import (
	"fmt"

	"fugu/internal/metrics"
)

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use from multiple goroutines except through the Proc baton
// protocol, which guarantees only one coroutine touches the engine at a time.
type Engine struct {
	now     uint64
	seq     uint64
	heap    eventHeap
	free    *Event // recycled event structs (see event.go)
	current *Proc  // proc currently holding the baton, nil in engine context
	stopped bool
	live    int // number of live (spawned, not finished) procs

	// Limit, when nonzero, bounds simulated time: Run returns once the
	// next event would fire after Limit.
	Limit uint64

	rng *Rand

	events *metrics.Counter // dispatched events ("sim.events"), nil-safe
	prof   *Profiler        // schedule-site cost attribution, nil when disabled

	// g and part place the engine inside a partition group (see
	// partition.go); both stay zero for a standalone engine, and every
	// grouped branch below is a single predictable nil check on the
	// standalone hot path.
	g    *Group
	part int
}

// UseMetrics binds the engine's instruments into a registry. The engine
// counts every dispatched event under "sim.events" — a cheap proxy for how
// much simulated activity a run generated.
func (e *Engine) UseMetrics(r *metrics.Registry) {
	e.events = r.Counter("sim.events")
}

// NewEngine returns an engine with the given RNG seed. A zero seed is
// replaced with a fixed default so the zero-ish configuration stays
// deterministic.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current simulation time in cycles. Shards of a merged
// group share one clock.
func (e *Engine) Now() uint64 {
	if e.g != nil && e.g.mode == Merged {
		return e.g.now
	}
	return e.now
}

// Rand returns the engine's deterministic random source. Shards of a merged
// group share one stream (they interleave in one global order); parallel
// shards each own an independent stream.
func (e *Engine) Rand() *Rand { return e.rng }

// alloc takes an event from the free list (or the allocator, while the pool
// is still growing) and stamps it with the fire time and the next sequence
// number.
func (e *Engine) alloc(delay uint64) *Event {
	ev := e.free
	if ev == nil {
		ev = &Event{owner: e}
	} else {
		e.free = ev.next
		ev.next = nil
	}
	if g := e.g; g != nil && g.mode == Merged {
		// Merged shards share the clock and the sequence counter, so
		// schedule order — and therefore every tie-break — is the global
		// order a single serial engine would have issued.
		ev.at = g.now + delay
		ev.seq = g.seq
		g.seq++
	} else {
		ev.at = e.now + delay
		ev.seq = e.seq
		e.seq++
	}
	ev.site = SiteMisc
	return ev
}

// release retires a fired or cancelled event to the free list. Bumping the
// generation invalidates every outstanding Handle to it; clearing the
// callback fields drops references the pool must not keep alive.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	ev.proc = nil
	ev.gen++
	ev.next = e.free
	e.free = ev
}

// Schedule registers fn to run at now+delay and returns a cancellable handle.
// fn runs in engine context; it may wake procs, schedule further events, or
// stop the engine, but must not block.
func (e *Engine) Schedule(delay uint64, fn func()) Handle {
	ev := e.alloc(delay)
	ev.fn = fn
	e.heap.push(ev)
	return Handle{ev, ev.gen}
}

// ScheduleArg registers fn(arg) to run at now+delay. It exists for hot paths
// that would otherwise build a fresh closure per call: the caller binds fn
// once (a stored func(any)) and passes the varying state as arg, so a send
// or a timer re-arm costs no allocation. A pointer-typed arg does not
// allocate when boxed.
func (e *Engine) ScheduleArg(delay uint64, fn func(any), arg any) Handle {
	ev := e.alloc(delay)
	ev.fnArg = fn
	ev.arg = arg
	e.heap.push(ev)
	return Handle{ev, ev.gen}
}

// scheduleProc registers a baton dispatch of p at now+delay — the wake path.
// Storing the proc on the event (rather than a func(){ e.dispatch(p) }
// closure) is what makes Wake/Sleep allocation-free. Wakes inherit the
// proc's site label, so a task's resume events attribute to its domain.
func (e *Engine) scheduleProc(delay uint64, p *Proc) Handle {
	ev := e.alloc(delay)
	ev.proc = p
	ev.site = p.site
	e.heap.push(ev)
	return Handle{ev, ev.gen}
}

// ScheduleAt registers fn to run at absolute time at (which must not be in
// the past) and returns a cancellable handle.
func (e *Engine) ScheduleAt(at uint64, fn func()) Handle {
	now := e.Now()
	if at < now {
		panic(fmt.Sprintf("sim: ScheduleAt(%d) in the past (now=%d)", at, now))
	}
	return e.Schedule(at-now, fn)
}

// ScheduleArgAt is ScheduleArg with an absolute fire time.
func (e *Engine) ScheduleArgAt(at uint64, fn func(any), arg any) Handle {
	now := e.Now()
	if at < now {
		panic(fmt.Sprintf("sim: ScheduleArgAt(%d) in the past (now=%d)", at, now))
	}
	return e.ScheduleArg(at-now, fn, arg)
}

// ScheduleSite is Schedule with a profiler site label: the event's
// dispatch cost is attributed to site instead of SiteMisc. Identical
// semantics and cost otherwise.
func (e *Engine) ScheduleSite(site Site, delay uint64, fn func()) Handle {
	h := e.Schedule(delay, fn)
	h.ev.site = site
	return h
}

// ScheduleArgSite is ScheduleArg with a profiler site label.
func (e *Engine) ScheduleArgSite(site Site, delay uint64, fn func(any), arg any) Handle {
	h := e.ScheduleArg(delay, fn, arg)
	h.ev.site = site
	return h
}

// ScheduleArgAtSite is ScheduleArgAt with a profiler site label.
func (e *Engine) ScheduleArgAtSite(site Site, at uint64, fn func(any), arg any) Handle {
	h := e.ScheduleArgAt(at, fn, arg)
	h.ev.site = site
	return h
}

// Cancel removes a pending event; cancelling an already-fired, already-
// cancelled or zero handle is a no-op. The removal happens on the owning
// engine's heap, so cancelling a cross-shard wake inside a merged group is
// safe.
func (e *Engine) Cancel(h Handle) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.index < 0 {
		return
	}
	ow := ev.owner
	ow.heap.remove(int(ev.index))
	ow.release(ev)
}

// Stop makes Run return after the current event completes. Stopping any
// shard of a merged group stops the whole group; in a parallel group the
// stopping shard's window ends and the coordinator stops at its barrier
// (other shards finish their current window — the conservative semantics).
func (e *Engine) Stop() {
	if g := e.g; g != nil {
		if g.mode == Merged {
			g.stopped = true
			return
		}
		e.stopped = true
		g.parStop.Store(true)
		return
	}
	e.stopped = true
}

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool {
	if g := e.g; g != nil && g.mode == Merged {
		return g.stopped
	}
	return e.stopped
}

// Run executes events until the queue empties, Stop is called, or the time
// Limit is exceeded. It returns the final simulation time. A Stop from a
// previous Run does not carry over: each Run starts live. Running any shard
// of a partition group drives the whole group (see partition.go).
func (e *Engine) Run() uint64 {
	if e.g != nil {
		return e.g.run(e)
	}
	return e.runLocal()
}

// runLocal is the serial event loop over this engine's own heap — the whole
// story for a standalone engine, and one shard's share of a parallel window
// (the group coordinator bounds it with Limit).
func (e *Engine) runLocal() uint64 {
	if e.current != nil {
		panic("sim: Run called from proc context")
	}
	e.stopped = false
	for !e.stopped {
		ev := e.heap.peek()
		if ev == nil {
			break
		}
		if e.Limit != 0 && ev.at > e.Limit {
			// Leave the event queued: peeking (rather than pop + push-back)
			// means a RunUntil loop stepping below the next event's time
			// does no heap work per step.
			e.now = e.Limit
			break
		}
		e.heap.pop()
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.at
		e.events.Inc()
		if e.prof != nil {
			e.prof.tick(ev.site, e.now)
		}
		// Copy the callback out and recycle the slot first, so the callback
		// itself can schedule into the freed slot.
		if p := ev.proc; p != nil {
			e.release(ev)
			e.dispatch(p)
		} else if fn := ev.fn; fn != nil {
			e.release(ev)
			fn()
		} else {
			fn, arg := ev.fnArg, ev.arg
			e.release(ev)
			fn(arg)
		}
	}
	return e.now
}

// RunUntil executes events up to and including time t, then returns. Events
// scheduled after t remain queued.
func (e *Engine) RunUntil(t uint64) uint64 {
	saved := e.Limit
	e.Limit = t
	end := e.Run()
	e.Limit = saved
	return end
}

// Pending reports how many events remain queued (across every shard, for a
// grouped engine).
func (e *Engine) Pending() int {
	if g := e.g; g != nil {
		total := 0
		for _, sh := range g.shards {
			total += sh.heap.len()
		}
		return total
	}
	return e.heap.len()
}

// LiveProcs reports how many spawned procs have not yet returned (across
// every shard, for a grouped engine). A nonzero value after Run drains the
// queue usually indicates deadlock: procs parked with nobody left to wake
// them.
func (e *Engine) LiveProcs() int {
	if g := e.g; g != nil {
		total := 0
		for _, sh := range g.shards {
			total += sh.live
		}
		return total
	}
	return e.live
}

// Current returns the proc currently holding the baton, or nil when the
// engine loop (or an event callback) is executing.
func (e *Engine) Current() *Proc { return e.current }
