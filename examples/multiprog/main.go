// Multiprog demonstrates two-case delivery under multiprogramming: the
// barrier benchmark gang-scheduled against a null application with skewed
// node clocks. Messages that arrive while the application is descheduled
// take the software-buffered path transparently; the program reports the
// split and the physical pages virtual buffering consumed.
package main

import (
	"fmt"

	"fugu"
)

func main() {
	for _, skew := range []float64{0, 0.02, 0.08} {
		m := fugu.NewMachine(fugu.DefaultConfig())
		app := m.NewJob("barrier")
		null := m.NewJob("null")

		inst := fugu.NewBarrierApp(2000)
		inst.Start(m, app)

		// 100k-cycle quantum; node i's clock lags node 0's by
		// skew*quantum*i/7, opening mis-scheduling windows at quantum
		// boundaries exactly as in the paper's experiments.
		m.NewGang(100_000, skew, app, null).Start()
		m.RunUntilDone(0, app)

		if err := inst.Check(); err != nil {
			fmt.Println("CHECK FAILED:", err)
			return
		}
		d := app.Delivery()
		fmt.Printf("skew %4.1f%%: runtime %5.2fMcycles, %6d fast, %4d buffered (%.2f%%), max %d buffer pages/node\n",
			skew*100, float64(app.DoneAt())/1e6, d.Fast, d.Buffered, d.BufferedPct(), app.MaxBufferPages())
	}
	fmt.Println("\nthe fast case is the common case; buffering absorbs the scheduling windows")
}
