package spans

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestDwellConservation pins the tentpole invariant on a single span: the
// per-stage dwells sum exactly to the end-to-end latency, and each stage is
// charged the cycles between its entry and the next transition.
func TestDwellConservation(t *testing.T) {
	r := NewRecorder(nil)
	r.SetPolicy("twocase")
	r.Begin(10, 0, "user", 2, 1, 4)
	r.NetBlock(13, 0)             // sent dwelt 3
	r.Queued(20, 0, 1)            // net-blocked dwelt 7
	r.Insert(32, 0, 1, "divert")  // queued dwelt 12
	r.End(90, 0, 1, TermBuffered) // buffered dwelt 58

	slow := r.Slowest(1)
	if len(slow) != 1 {
		t.Fatalf("Slowest returned %d spans, want 1", len(slow))
	}
	s := slow[0]
	want := [NumStages]uint64{StageSent: 3, StageNetBlocked: 7, StageQueued: 12, StageBuffered: 58}
	if s.Dwell != want {
		t.Errorf("dwells = %v, want %v", s.Dwell, want)
	}
	if s.Latency() != 80 {
		t.Errorf("latency = %d, want 80", s.Latency())
	}
	var sum uint64
	for _, d := range s.Dwell {
		sum += d
	}
	if sum != s.Latency() {
		t.Errorf("dwells sum to %d, latency is %d", sum, s.Latency())
	}
	if probs := r.Check(0, 1); len(probs) != 0 {
		t.Fatalf("Check: %v", probs)
	}
	if d, l := r.StageDwellTotals(), r.LatencyTotal(); l != 80 ||
		d[StageSent]+d[StageNetBlocked]+d[StageQueued]+d[StageBuffered] != l {
		t.Errorf("aggregate dwell %v vs latency %d", d, l)
	}
}

// TestDwellConservationProperty: for random stage timings the invariant
// holds by construction, on both the fast and the buffered path.
func TestDwellConservationProperty(t *testing.T) {
	f := func(d1, d2, d3 uint16, blocked, buffered bool) bool {
		r := NewRecorder(nil)
		at := uint64(5)
		r.Begin(at, 7, "user", 0, 1, 2)
		if blocked {
			at += uint64(d1)
			r.NetBlock(at, 7)
		}
		at += uint64(d2)
		r.Queued(at, 7, 1)
		term := TermFast
		if buffered {
			at += uint64(d3)
			r.Insert(at, 7, 1, "divert")
			term = TermBuffered
		}
		at += uint64(d1) + uint64(d3)
		r.End(at, 7, 1, term)
		return r.LatencyTotal() == at-5 && len(r.Violations()) == 0 &&
			func() bool {
				var sum uint64
				for _, d := range r.StageDwellTotals() {
					sum += d
				}
				return sum == r.LatencyTotal()
			}()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQueuedCauseAttribution: a first-offer acceptance is recorded as
// "accepted", a packet released from backpressure as "drain" — the Queued
// transition never leaves an empty cause.
func TestQueuedCauseAttribution(t *testing.T) {
	r := NewRecorder(nil)
	r.SetPolicy("twocase")
	r.Begin(0, 1, "user", 0, 1, 2)
	r.Queued(4, 1, 1)
	r.End(9, 1, 1, TermFast)
	r.Begin(0, 2, "user", 0, 1, 2)
	r.NetBlock(2, 2)
	r.Queued(6, 2, 1)
	r.End(11, 2, 1, TermFast)

	causes := map[string]uint64{}
	for _, row := range r.Anatomy() {
		if row.Stage == StageQueued {
			causes[row.Cause] += row.Count
		}
	}
	if causes["accepted"] != 1 || causes["drain"] != 1 {
		t.Errorf("queued causes = %v, want one accepted and one drain", causes)
	}
	if _, ok := causes[""]; ok {
		t.Error("queued transition recorded an empty cause")
	}
}

// TestDwellConservationViolationSurfaces: a transition that bypasses the
// bookkeeping (a clock running backwards) is reported, per-span and in the
// aggregate Check.
func TestDwellConservationViolationSurfaces(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin(100, 1, "user", 0, 1, 2)
	r.Queued(50, 1, 1) // backwards: dwell bookkeeping cannot hold
	r.End(60, 1, 1, TermFast)
	v := strings.Join(r.Violations(), "\n")
	if !strings.Contains(v, "before stage entry") {
		t.Errorf("backwards transition not flagged:\n%s", v)
	}
}

// TestSlowestOrdering pins the top-K table: latency descending, (epoch, id)
// tie-break, bounded at TopK.
func TestSlowestOrdering(t *testing.T) {
	r := NewRecorder(nil)
	for i := uint64(0); i < TopK+8; i++ {
		r.Begin(0, i, "user", 0, 1, 2)
		// Latencies 10, 20, ..., with two ties at the top.
		lat := 10 * (i%(TopK+4) + 1)
		r.Queued(1, i, 1)
		r.End(lat, i, 1, TermFast)
	}
	slow := r.Slowest(TopK + 100) // clamped
	if len(slow) != TopK {
		t.Fatalf("Slowest table holds %d spans, want %d", len(slow), TopK)
	}
	for i := 1; i < len(slow); i++ {
		a, b := &slow[i-1], &slow[i]
		if a.Latency() < b.Latency() {
			t.Fatalf("slowest table out of order at %d: %d < %d", i, a.Latency(), b.Latency())
		}
		if a.Latency() == b.Latency() && !beforeSpan(a, b) {
			t.Fatalf("tie at %d not broken by (epoch, id)", i)
		}
	}
}

// TestHistoryTimeline pins the per-span stage timeline: one entry per stage
// entered, in order, with the entry causes.
func TestHistoryTimeline(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin(0, 1, "user", 0, 1, 2)
	r.NetBlock(3, 1)
	r.Queued(8, 1, 1)
	r.Insert(12, 1, 1, "gid-mismatch")
	r.End(40, 1, 1, TermBuffered)
	h := r.Slowest(1)[0].History()
	want := []StageEvent{
		{At: 0, Stage: StageSent},
		{At: 3, Stage: StageNetBlocked, Cause: "backpressure"},
		{At: 8, Stage: StageQueued, Cause: "drain"},
		{At: 12, Stage: StageBuffered, Cause: "gid-mismatch"},
	}
	if len(h) != len(want) {
		t.Fatalf("timeline has %d entries, want %d: %v", len(h), len(want), h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("timeline[%d] = %+v, want %+v", i, h[i], want[i])
		}
	}
}

// TestDwellHistQuantile pins the log2 bucketing: quantiles are bucket upper
// bounds, the same convention as internal/metrics.
func TestDwellHistQuantile(t *testing.T) {
	var h DwellHist
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count != 6 || h.Max != 1000 {
		t.Fatalf("hist = %+v", h)
	}
	if q := h.Quantile(0.5); q != 3 { // 3rd sample (value 2) -> bucket [2,3]
		t.Errorf("p50 = %d, want 3", q)
	}
	if q := h.Quantile(1.0); q != 1023 { // 1000 -> bucket [512,1023]
		t.Errorf("p100 = %d, want 1023", q)
	}
	var empty DwellHist
	if empty.Quantile(0.9) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}

// TestNodeLinkHeat pins the heat aggregation.
func TestNodeLinkHeat(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin(0, 1, "user", 0, 3, 2)
	r.Queued(5, 1, 3)
	r.End(10, 1, 3, TermFast)
	r.Begin(0, 2, "user", 1, 3, 2)
	r.Queued(10, 2, 3)
	r.End(30, 2, 3, TermFast)

	nodes := r.NodeHeats()
	if len(nodes) != 1 || nodes[0].Node != 3 || nodes[0].Count != 2 {
		t.Fatalf("node heats = %+v", nodes)
	}
	if nodes[0].Dwell[StageSent] != 15 || nodes[0].Dwell[StageQueued] != 25 {
		t.Errorf("node dwell = %v, want sent=15 queued=25", nodes[0].Dwell)
	}
	links := r.LinkHeats()
	if len(links) != 2 {
		t.Fatalf("link heats = %+v", links)
	}
	// Hottest first: 1->3 carried 30 cycles, 0->3 carried 10.
	if links[0].Src != 1 || links[0].Latency != 30 || links[1].Src != 0 {
		t.Errorf("link ordering = %+v", links)
	}
}
