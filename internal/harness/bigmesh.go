package harness

import (
	"fmt"

	"fugu/internal/mesh"
	"fugu/internal/metrics"
	"fugu/internal/sim"
)

// BigMeshConfig parameterizes the open-loop mesh traffic workload used to
// exercise the parallel partition driver. Unlike the glaze experiments —
// which share zero-latency cross-node state (gang schedules, job counters,
// the fault injector's stream) and therefore run partitioned in merged
// mode — bigmesh is partition-clean by construction: every node's state is
// touched only from its own engine, all cross-node interaction travels
// through the mesh at physical latency, and randomness comes from per-node
// streams seeded independently of the partition count. That makes it safe
// under Parallel groups and deterministic across any partition count.
type BigMeshConfig struct {
	W, H     int    // mesh dimensions
	Parts    int    // partition count; <=1 runs a plain serial engine
	Msgs     int    // messages each node injects
	Words    int    // payload words per packet (also sets the lookahead)
	MeanGap  uint64 // mean cycles between a node's injections
	QueueCap int    // receiver input-queue capacity (refusals beyond it)
	Seed     uint64
}

// DefaultBigMesh returns the bench configuration: the paper-scale 64x64
// mesh, or a 32x32 quick variant CI can afford. QueueCap is sized so the
// default run is refusal-free: refusals resolve at the exact cycle a drain
// frees space, which is the one place same-cycle ordering (serial seq order
// vs. staged source order) could leak into results.
func DefaultBigMesh(quick bool) BigMeshConfig {
	cfg := BigMeshConfig{
		W: 64, H: 64, Msgs: 80, Words: 8, MeanGap: 100, QueueCap: 4096, Seed: 1,
	}
	if quick {
		// Fewer nodes but a tighter injection gap: each lookahead window
		// still carries hundreds of events per partition, so the quick
		// variant measures the window protocol, not goroutine overhead.
		cfg.W, cfg.H, cfg.Msgs, cfg.MeanGap = 32, 32, 60, 50
	}
	return cfg
}

// BigMeshResult is one run's observables. Every field except Barriers and
// Staged (which describe the partition driver itself) is identical across
// partition counts — TestBigMeshDeterminism pins that.
type BigMeshResult struct {
	Nodes     int
	Cycles    uint64 // simulated end time
	Events    uint64 // dispatched engine events (sum over partitions)
	Injected  uint64
	Delivered uint64
	// LatencySum totals per-packet network latency (arrival - send), a
	// commutative sum so same-cycle arrival order cannot perturb it.
	LatencySum uint64
	MaxBatch   int    // largest same-cycle batch one drain consumed
	Refused    uint64 // endpoint queue-full rejections (0 at the default config)
	Barriers   uint64 // parallel window count (0 when serial)
	Staged     uint64 // cross-partition events staged (0 when serial)
	Metrics    metrics.Snapshot
}

// Sites for the engine cost profiler / event attribution.
var (
	siteBigInject = sim.NewSite("bigmesh.inject")
	siteBigDrain  = sim.NewSite("bigmesh.drain")
)

// bigNode is one node's injector state and receive endpoint. All fields
// are owned by the node's partition engine; arrivals from other partitions
// reach Arrive only through the staged mesh.deliver event, which the
// partition driver hands to this node's engine.
type bigNode struct {
	bm   *bigMesh
	idx  int
	rng  *sim.Rand // per-node stream, independent of partitioning
	sent int

	// queue batches same-cycle deliveries: the first arrival schedules one
	// zero-delay drain event and later same-cycle arrivals just append, so
	// a k-packet burst costs one dispatch instead of k (the same batching
	// that pays off on the crlstress allocation profile).
	queue    []*mesh.Packet
	drainDue bool
	received uint64
	latSum   uint64
	maxBatch int
	refusals uint64
}

type bigMesh struct {
	cfg      BigMeshConfig
	net      *mesh.Net
	nodes    []*bigNode
	injectFn func(any)
	drainFn  func(any)
}

// Arrive implements mesh.Endpoint.
func (nd *bigNode) Arrive(pkt *mesh.Packet) bool {
	if len(nd.queue) >= nd.bm.cfg.QueueCap {
		nd.refusals++
		return false
	}
	nd.queue = append(nd.queue, pkt)
	if !nd.drainDue {
		nd.drainDue = true
		// Zero delay: the drain lands at the current cycle with a later
		// sequence number, i.e. after every already-scheduled same-cycle
		// arrival, in serial and partitioned runs alike (arrivals are
		// always scheduled at earlier cycles than they land).
		nd.bm.net.EngineFor(nd.idx).ScheduleArgSite(siteBigDrain, 0, nd.bm.drainFn, nd)
	}
	return true
}

func (bm *bigMesh) drain(arg any) {
	nd := arg.(*bigNode)
	batch := nd.queue
	if len(batch) > nd.maxBatch {
		nd.maxBatch = len(batch)
	}
	for _, pkt := range batch {
		nd.latSum += pkt.ArrivedAt - pkt.SentAt
		nd.received++
		bm.net.Release(nd.idx, pkt)
	}
	nd.queue = nd.queue[:0]
	nd.drainDue = false
	// Re-offer anything the cap refused; re-accepted packets schedule the
	// next drain through Arrive as usual.
	bm.net.NotifySpace(nd.idx, mesh.Main)
}

func (bm *bigMesh) inject(arg any) {
	nd := arg.(*bigNode)
	n := len(bm.nodes)
	dst := int(nd.rng.Uint64n(uint64(n - 1)))
	if dst >= nd.idx {
		dst++ // uniform over the other n-1 nodes
	}
	pkt := bm.net.Acquire(nd.idx, bm.cfg.Words)
	pkt.Words[0] = uint64(nd.idx)
	pkt.Words[1] = uint64(nd.sent)
	for i := 2; i < len(pkt.Words); i++ {
		pkt.Words[i] = 0
	}
	bm.net.SendPacket(mesh.Main, nd.idx, dst, pkt)
	nd.sent++
	if nd.sent < bm.cfg.Msgs {
		gap := nd.rng.UniformAround(bm.cfg.MeanGap)
		bm.net.EngineFor(nd.idx).ScheduleArgSite(siteBigInject, gap, bm.injectFn, nd)
	}
}

// RunBigMesh runs the workload to completion and returns its observables.
// Parts <= 1 uses a single serial engine; Parts > 1 builds a Parallel group
// with the mesh's minimum cross-node latency as the lookahead (one hop,
// packet-sized payload — every remote delivery is at least that far in the
// future, which is exactly the promise conservative windows need).
func RunBigMesh(cfg BigMeshConfig) (BigMeshResult, error) {
	n := cfg.W * cfg.H
	parts := cfg.Parts
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	lat := mesh.DefaultLatency()
	lookahead := lat.Delay(1, cfg.Words)

	engs := make([]*sim.Engine, n)
	var group *sim.Group
	var regs []*metrics.Registry
	var eng0 *sim.Engine
	if parts > 1 {
		group = sim.NewParallelGroup(cfg.Seed, parts, lookahead)
		for p := 0; p < parts; p++ {
			// One registry per partition: metrics instruments are shared
			// mutable state, so each shard counts into its own and the
			// result merges them (order-independent by construction).
			reg := metrics.NewRegistry()
			group.Shard(p).UseMetrics(reg)
			regs = append(regs, reg)
		}
		for i := range engs {
			engs[i] = group.Shard(i * parts / n)
		}
		eng0 = group.Shard(0)
	} else {
		eng0 = sim.NewEngine(cfg.Seed)
		reg := metrics.NewRegistry()
		eng0.UseMetrics(reg)
		regs = append(regs, reg)
		for i := range engs {
			engs[i] = eng0
		}
	}

	net := mesh.New(eng0, cfg.W, cfg.H, lat)
	net.ShardEngines(engs)

	bm := &bigMesh{cfg: cfg, net: net, nodes: make([]*bigNode, n)}
	bm.injectFn = bm.inject
	bm.drainFn = bm.drain
	for i := 0; i < n; i++ {
		nd := &bigNode{
			bm: bm, idx: i,
			// Per-node streams derive from (seed, node) only, so traffic is
			// identical no matter how nodes map to partitions.
			rng: sim.NewRand(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(i+1))),
		}
		bm.nodes[i] = nd
		net.Register(i, mesh.Main, nd)
		if cfg.Msgs > 0 {
			gap := nd.rng.UniformAround(cfg.MeanGap)
			net.EngineFor(i).ScheduleArgSite(siteBigInject, gap, bm.injectFn, nd)
		}
	}

	end := eng0.Run()

	res := BigMeshResult{Nodes: n, Cycles: end}
	for _, nd := range bm.nodes {
		res.Injected += uint64(nd.sent)
		res.Delivered += nd.received
		res.LatencySum += nd.latSum
		res.Refused += nd.refusals
		if nd.maxBatch > res.MaxBatch {
			res.MaxBatch = nd.maxBatch
		}
	}
	if group != nil {
		st := group.Stats()
		res.Barriers, res.Staged = st.Barriers, st.Staged
	}
	snaps := make([]metrics.Snapshot, len(regs))
	for i, reg := range regs {
		snaps[i] = reg.Snapshot()
	}
	res.Metrics = metrics.Merge(snaps...)
	res.Events = res.Metrics.Counters["sim.events"]

	want := uint64(n * cfg.Msgs)
	if res.Injected != want || res.Delivered != want {
		return res, fmt.Errorf("bigmesh: injected %d delivered %d, want %d each",
			res.Injected, res.Delivered, want)
	}
	return res, nil
}
