package apps

import (
	"fmt"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
	"fugu/internal/udm"
)

// Enum is the triangle-puzzle enumeration benchmark: a fine-grain,
// data-parallel search that ships work items as numerous unacknowledged
// short messages and synchronizes only infrequently (a termination-
// detection token ring). The puzzle is triangular peg solitaire: a board
// with Side pegs per side, one hole empty, jumps removing pegs; the program
// counts every game ending with a single peg.
type Enum struct {
	Side      int // pegs per side (the paper runs 6)
	ShipEvery int // ship the children of every k-th expansion

	moves     [][3]int
	holes     int
	solutions []uint64
	expanded  []uint64
	done      bool
}

// NewEnum configures the puzzle. ShipEvery 4 ships a quarter of all
// expansions to other nodes, keeping communication fine-grained without
// drowning the network.
func NewEnum(side int) *Enum {
	e := &Enum{Side: side, ShipEvery: 4}
	e.prepare()
	return e
}

// Name implements Instance.
func (s *Enum) Name() string { return "enum" }

// Model implements Instance.
func (s *Enum) Model() string { return "UDM" }

// prepare builds the board geometry: hole indices and jump moves.
func (s *Enum) prepare() {
	idx := make(map[[2]int]int)
	n := 0
	for r := 0; r < s.Side; r++ {
		for i := 0; i <= r; i++ {
			idx[[2]int{r, i}] = n
			n++
		}
	}
	s.holes = n
	dirs := [][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}, {1, 1}, {-1, -1}}
	for r := 0; r < s.Side; r++ {
		for i := 0; i <= r; i++ {
			for _, d := range dirs {
				over := [2]int{r + d[0], i + d[1]}
				to := [2]int{r + 2*d[0], i + 2*d[1]}
				o, ok1 := idx[over]
				t, ok2 := idx[to]
				if ok1 && ok2 {
					s.moves = append(s.moves, [3]int{idx[[2]int{r, i}], o, t})
				}
			}
		}
	}
}

// initial returns the starting board: full except the apex hole.
func (s *Enum) initial() uint64 {
	return (uint64(1)<<s.holes - 1) &^ 1
}

// expand applies every legal jump to state, calling visit per child. It
// returns the number of children (0 = leaf).
func (s *Enum) expand(state uint64, visit func(uint64)) int {
	children := 0
	for _, m := range s.moves {
		from, over, to := uint64(1)<<m[0], uint64(1)<<m[1], uint64(1)<<m[2]
		if state&from != 0 && state&over != 0 && state&to == 0 {
			visit(state&^from&^over | to)
			children++
		}
	}
	return children
}

// SolveSequential enumerates the whole tree on one (real) CPU, for
// verification. Returns the single-peg solution count and states expanded.
func (s *Enum) SolveSequential() (solutions, expanded uint64) {
	stack := []uint64{s.initial()}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		expanded++
		if s.expand(st, func(c uint64) { stack = append(stack, c) }) == 0 {
			if popcount(st) == 1 {
				solutions++
			}
		}
	}
	return
}

// mix is a splitmix64-style finalizer used for shipping decisions.
func mix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// enumNode is the per-node runtime state of the distributed search.
type enumNode struct {
	app   *Enum
	ep    *udm.EP
	self  int
	nodes int

	stack []uint64
	work  *udm.Counter // wakes the main loop on arrivals
	black bool         // termination-detection colour
	sent  int64        // work messages sent minus received
	token *tokenState
	done  bool
	ships int
}

type tokenState struct {
	holding bool
	value   int64
	black   bool
}

// expansion cost in cycles: move generation over the 36-odd jump rules.
const enumExpandCost = 120

// Start implements Instance.
func (s *Enum) Start(m *glaze.Machine, job *glaze.Job) {
	r := NewRig(m, job)
	n := r.Nodes()
	s.solutions = make([]uint64, n)
	s.expanded = make([]uint64, n)
	nodes := make([]*enumNode, n)
	for i := 0; i < n; i++ {
		nodes[i] = &enumNode{app: s, ep: r.EPs[i], self: i, nodes: n, work: udm.NewCounter()}
		if i == 0 {
			// The origin holds a fresh token: no conclusion may be drawn
			// until a full probe has circulated.
			nodes[i].token = &tokenState{holding: true, value: tokenFresh}
		} else {
			nodes[i].token = &tokenState{}
		}
	}
	for i := 0; i < n; i++ {
		en := nodes[i]
		en.register()
		job.Process(i).StartMain(func(t *cpu.Task) { en.run(t) })
	}
	nodes[0].stack = append(nodes[0].stack, s.initial())
}

func (en *enumNode) register() {
	en.ep.On(hEnumWork, func(e *udm.Env, m *udm.Msg) {
		en.stack = append(en.stack, m.Args[0])
		en.sent--
		en.black = true
		en.work.Add(1)
	})
	en.ep.On(hEnumToken, func(e *udm.Env, m *udm.Msg) {
		en.token.holding = true
		en.token.value = int64(m.Args[0])
		en.token.black = m.Args[1] != 0
		en.work.Add(1)
	})
	en.ep.On(hEnumDone, func(e *udm.Env, m *udm.Msg) {
		en.done = true
		en.work.Add(1)
	})
}

// run is the main search loop with Dijkstra-style token-ring termination.
func (en *enumNode) run(t *cpu.Task) {
	e := en.ep.Env(t)
	s := en.app
	for !en.done {
		for len(en.stack) > 0 {
			st := en.stack[len(en.stack)-1]
			en.stack = en.stack[:len(en.stack)-1]
			t.Spend(enumExpandCost)
			s.expanded[en.self]++
			// Shipping decisions hash the state, not the local expansion
			// count, so the distribution of work across nodes is a pure
			// function of the tree — runs differ in timing, never in
			// placement, which keeps the runtime comparison across skews
			// meaningful.
			ship := s.ShipEvery > 0 && en.nodes > 1 && mix(st)%uint64(s.ShipEvery) == 0
			kids := s.expand(st, func(c uint64) {
				if ship {
					dst := int(mix(c^0xabcd) % uint64(en.nodes-1))
					if dst >= en.self {
						dst++
					}
					en.sent++
					en.ships++
					e.Inject(dst, hEnumWork, c)
					return
				}
				en.stack = append(en.stack, c)
			})
			if kids == 0 && popcount(st) == 1 {
				s.solutions[en.self]++
			}
		}
		// Idle: participate in termination detection. The origin throttles
		// probe relaunches so an idle ring does not spin the network — the
		// application synchronizes infrequently, as in the paper.
		if en.token.holding {
			if en.self == 0 && en.token.value != tokenFresh {
				t.Spend(probeCooldown)
				if len(en.stack) > 0 || en.done {
					continue
				}
			}
			en.passToken(e)
		}
		if en.done {
			break
		}
		target := en.work.Value() + 1
		en.work.WaitFor(t, target)
	}
}

// probeCooldown is the origin's idle wait between termination probes.
const probeCooldown = 5000

// passToken forwards the termination token, or declares completion at the
// ring's origin after a clean pass.
func (en *enumNode) passToken(e *udm.Env) {
	tk := en.token
	tk.holding = false
	if en.self == 0 {
		// Origin: a white token returning with zero global balance to a
		// white origin means no work is anywhere and none is in flight.
		if !tk.black && !en.black && tk.value != tokenFresh && tk.value+en.sent == 0 {
			for i := 1; i < en.nodes; i++ {
				e.Inject(i, hEnumDone)
			}
			en.done = true
			return
		}
		// Launch a fresh white token with a zero count; the origin's own
		// balance is added only when the token returns.
		en.black = false
		e.Inject(1%en.nodes, hEnumToken, 0, 0)
		tk.value = 0
		return
	}
	v := tk.value + en.sent
	black := tk.black || en.black
	en.black = false
	b := uint64(0)
	if black {
		b = 1
	}
	e.Inject((en.self+1)%en.nodes, hEnumToken, uint64(v), b)
}

// tokenFresh marks the origin's very first token launch (nothing observed).
const tokenFresh = int64(-1 << 62)

// Check implements Instance: the distributed totals must match a sequential
// enumeration exactly.
func (s *Enum) Check() error {
	wantSol, wantExp := s.SolveSequential()
	var sol, exp uint64
	for i := range s.solutions {
		sol += s.solutions[i]
		exp += s.expanded[i]
	}
	if sol != wantSol || exp != wantExp {
		return checkf("enum: got %d solutions / %d expansions, want %d / %d",
			sol, exp, wantSol, wantExp)
	}
	return nil
}

// String describes the configuration.
func (s *Enum) String() string {
	return fmt.Sprintf("enum(side=%d, holes=%d, moves=%d)", s.Side, s.holes, len(s.moves))
}
