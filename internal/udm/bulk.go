package udm

import "fmt"

// Bulk transfer: FUGU handled messages larger than the 16-word send
// descriptor with an associated user-level DMA mechanism (out of scope in
// the paper, cited as [21]). This file provides the equivalent service at
// the library level: InjectBulk fragments a payload into wire messages and
// the receiving endpoint reassembles them, invoking the user handler once
// with the complete payload. In-order per-pair delivery makes reassembly
// need no sequence numbers beyond a transfer id.

// hBulkFrag is the reserved handler id carrying bulk fragments. User code
// must not register handlers in the reserved range 0xf0-0xff.
const hBulkFrag = 0xf0

// bulkXfer is one in-flight reassembly.
type bulkXfer struct {
	handler uint64
	data    []uint64
	got     int
}

// InjectBulk sends a payload of any length to dst; the handler runs once at
// the destination with the complete payload in msg.Args (msg.Bulk set).
// Small payloads that fit one message still go through the fragment path so
// cost accounting stays uniform.
func (e *Env) InjectBulk(dst int, handler uint64, data ...uint64) {
	ep := e.EP
	max := ep.MaxArgs() - 4 // transfer id, offset, total, handler
	if max < 1 {
		panic("udm: descriptor too small for bulk fragments")
	}
	id := uint64(ep.Node())<<32 | uint64(ep.nextXfer)
	ep.nextXfer++
	if len(data) == 0 {
		e.Inject(dst, hBulkFrag, id, 0, 0, handler)
		return
	}
	for off := 0; off < len(data); off += max {
		end := off + max
		if end > len(data) {
			end = len(data)
		}
		args := make([]uint64, 0, 4+end-off)
		args = append(args, id, uint64(off), uint64(len(data)), handler)
		args = append(args, data[off:end]...)
		e.Inject(dst, hBulkFrag, args...)
	}
}

// registerBulk installs the fragment reassembly handler on the endpoint.
func (ep *EP) registerBulk() {
	ep.bulk = make(map[uint64]*bulkXfer)
	ep.On(hBulkFrag, func(e *Env, m *Msg) {
		id, off, total, handler := m.Args[0], int(m.Args[1]), int(m.Args[2]), m.Args[3]
		x := ep.bulk[id]
		if x == nil {
			x = &bulkXfer{handler: handler, data: make([]uint64, total)}
			ep.bulk[id] = x
		}
		words := m.Args[4:]
		copy(x.data[off:], words)
		x.got += len(words)
		if x.got < total {
			return
		}
		delete(ep.bulk, id)
		h, ok := ep.handlers[x.handler]
		if !ok {
			panic(fmt.Sprintf("udm: node %d: no handler registered for bulk id %d", ep.Node(), x.handler))
		}
		ep.Delivered++
		h(&Env{T: e.T, EP: ep, inHandler: true}, &Msg{
			Handler: x.handler,
			Args:    x.data,
			Fast:    m.Fast,
			Bulk:    true,
		})
	})
}
