package apps

import (
	"fugu/internal/cpu"
	"fugu/internal/glaze"
)

// Null is the idle application the experiments multiprogram against: it
// occupies scheduler slots and never communicates.
type Null struct{}

// Name implements Instance.
func (Null) Name() string { return "null" }

// Model implements Instance.
func (Null) Model() string { return "-" }

// Start implements Instance: the null job has no threads at all; its slot
// simply idles the CPU, as in the paper's experiments.
func (Null) Start(m *glaze.Machine, job *glaze.Job) {}

// Check implements Instance.
func (Null) Check() error { return nil }

// BarrierApp is the synthetic benchmark that "consists entirely of barriers
// and thus synchronizes constantly": Iterations dissemination barriers
// back-to-back, with a small amount of local work between them.
type BarrierApp struct {
	Iterations int
	// Work is local computation between barriers (cycles); the paper's
	// episode rate (T_betw 615 on 8 nodes) implies a short gap.
	Work uint64

	completed []int
}

// NewBarrierApp returns the paper's configuration: 10,000 barriers.
func NewBarrierApp(iterations int) *BarrierApp {
	return &BarrierApp{Iterations: iterations, Work: 300}
}

// Name implements Instance.
func (b *BarrierApp) Name() string { return "barrier" }

// Model implements Instance.
func (b *BarrierApp) Model() string { return "UDM" }

// Start implements Instance.
func (b *BarrierApp) Start(m *glaze.Machine, job *glaze.Job) {
	r := NewRig(m, job)
	n := r.Nodes()
	b.completed = make([]int, n)
	for node := 0; node < n; node++ {
		node := node
		bar := NewBarrier(r.EPs[node], n)
		job.Process(node).StartMain(func(t *cpu.Task) {
			for i := 0; i < b.Iterations; i++ {
				if b.Work > 0 {
					t.Spend(b.Work)
				}
				bar.Wait(t)
				b.completed[node]++
			}
		})
	}
}

// Check implements Instance: every node must have completed every barrier.
func (b *BarrierApp) Check() error {
	for node, c := range b.completed {
		if c != b.Iterations {
			return checkf("barrier: node %d completed %d/%d", node, c, b.Iterations)
		}
	}
	return nil
}
