package fugu

import (
	"testing"

	"fugu/internal/apps"
	"fugu/internal/cpu"
	"fugu/internal/glaze"
	"fugu/internal/harness"
	"fugu/internal/udm"
)

// The benchmarks below regenerate each data-bearing table and figure of the
// paper at the quick scale and report the headline quantities as benchmark
// metrics, so `go test -bench=.` doubles as the reproduction run. Absolute
// cycle numbers are simulation results and do not depend on b.N; wall-clock
// per iteration measures the simulator itself.

// BenchmarkTable4FastPath: protected fast-path receive costs (Table 4).
func BenchmarkTable4FastPath(b *testing.B) {
	var r harness.Table4Result
	for i := 0; i < b.N; i++ {
		var err error
		if r, err = harness.Table4(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.MeasuredIntr[0]), "kernel-intr-cycles")
	b.ReportMetric(float64(r.MeasuredIntr[1]), "hard-intr-cycles")
	b.ReportMetric(float64(r.MeasuredIntr[2]), "soft-intr-cycles")
	b.ReportMetric(float64(r.MeasuredPoll[1]), "poll-cycles")
	if r.MeasuredIntr[1] != 87 {
		b.Errorf("hard-atomicity interrupt total = %d, paper says 87", r.MeasuredIntr[1])
	}
}

// BenchmarkTable5BufferedPath: software buffer insert/extract (Table 5).
func BenchmarkTable5BufferedPath(b *testing.B) {
	var r harness.Table5Result
	for i := 0; i < b.N; i++ {
		var err error
		if r, err = harness.Table5(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MeasuredInsertMean, "insert-cycles")
	b.ReportMetric(r.MeasuredExtractMean, "extract-cycles")
	b.ReportMetric(float64(r.InsertMin+r.Extract), "min-total-cycles")
	if r.InsertMin+r.Extract != 232 {
		b.Errorf("buffered minimum = %d, paper says 232", r.InsertMin+r.Extract)
	}
}

// BenchmarkTable6Apps: application characteristics (Table 6).
func BenchmarkTable6Apps(b *testing.B) {
	var r harness.Table6Result
	for i := 0; i < b.N; i++ {
		var err error
		if r, err = harness.Table6(harness.WithQuick(), harness.WithTrials(1)); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		if row.Err != nil {
			b.Errorf("%s check failed: %v", row.App, row.Err)
		}
		b.ReportMetric(float64(row.Runtime)/1e6, row.App+"-Mcycles")
	}
}

// BenchmarkFig7BufferedFraction: % buffered vs skew (Figure 7).
func BenchmarkFig7BufferedFraction(b *testing.B) {
	var r harness.Fig78Result
	for i := 0; i < b.N; i++ {
		var err error
		if r, err = harness.Fig7and8(harness.WithQuick(), harness.WithTrials(1)); err != nil {
			b.Fatal(err)
		}
	}
	last := len(r.Skews) - 1
	for _, app := range r.Apps {
		b.ReportMetric(r.Runs[app][last].BufferedPct, app+"-bufpct")
		if pages := r.Runs[app][last].MaxBufferPages; pages >= 7 {
			b.Errorf("%s used %d buffer pages/node, paper bound is <7", app, pages)
		}
	}
	// The paper's shape: enum's buffered fraction grows with skew.
	if r.Runs["enum"][last].BufferedPct <= r.Runs["enum"][0].BufferedPct {
		b.Error("enum buffered fraction did not grow with skew")
	}
}

// BenchmarkFig8Slowdown: relative runtime vs skew (Figure 8).
func BenchmarkFig8Slowdown(b *testing.B) {
	var r harness.Fig78Result
	for i := 0; i < b.N; i++ {
		var err error
		if r, err = harness.Fig7and8(harness.WithQuick(), harness.WithTrials(1)); err != nil {
			b.Fatal(err)
		}
	}
	last := len(r.Skews) - 1
	for _, app := range r.Apps {
		rel := float64(r.Runs[app][last].Runtime) / float64(r.Runs[app][0].Runtime)
		b.ReportMetric(rel, app+"-slowdown")
	}
	// Barrier tracks 1/(1-skew); enum tolerates latency.
	barrier := float64(r.Runs["barrier"][last].Runtime) / float64(r.Runs["barrier"][0].Runtime)
	enum := float64(r.Runs["enum"][last].Runtime) / float64(r.Runs["enum"][0].Runtime)
	if barrier < 1.02 {
		b.Errorf("barrier slowdown %.3f at max skew: expected sensitivity", barrier)
	}
	if enum > barrier+0.2 {
		b.Errorf("enum slowdown %.3f vs barrier %.3f: enum should tolerate skew", enum, barrier)
	}
}

// BenchmarkFig9SynthInterval: % buffered vs send interval (Figure 9).
func BenchmarkFig9SynthInterval(b *testing.B) {
	var r harness.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		if r, err = harness.Fig9(harness.WithQuick(), harness.WithTrials(1)); err != nil {
			b.Fatal(err)
		}
	}
	for i, n := range r.Ns {
		b.ReportMetric(r.Pct[i][0], benchName("synth", n)+"-min-tbetw-bufpct")
	}
	// Shape: below-service-rate sending buffers much more than leisurely
	// sending, and synth-10's frequent synchronization caps its buffering.
	last := len(r.TBetws) - 1
	if r.Pct[2][0] <= r.Pct[2][last] {
		b.Error("synth-1000 buffering did not fall as T_betw grew")
	}
	if r.Pct[0][0] >= r.Pct[2][0] {
		b.Error("synth-10 buffered as much as synth-1000 at the lowest T_betw")
	}
}

// BenchmarkFig10BufferCost: % buffered vs buffered-path cost (Figure 10).
func BenchmarkFig10BufferCost(b *testing.B) {
	var r harness.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		if r, err = harness.Fig10(harness.WithQuick(), harness.WithTrials(1)); err != nil {
			b.Fatal(err)
		}
	}
	last := len(r.Extra) - 1
	for i, n := range r.Ns {
		b.ReportMetric(r.Pct[i][last], benchName("synth", n)+"-max-cost-bufpct")
	}
	if r.Pct[2][last] <= r.Pct[2][0] {
		b.Error("synth-1000 buffering did not grow with buffered-path cost")
	}
	if r.Pct[0][last] >= r.Pct[2][last] {
		b.Error("synth-10 should stay small: its synchronization balances the rates")
	}
}

func benchName(prefix string, n int) string {
	switch n {
	case 10:
		return prefix + "-10"
	case 100:
		return prefix + "-100"
	default:
		return prefix + "-1000"
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out ---

// BenchmarkAblationAtomicity compares an interrupt-driven workload (synth,
// whose request handlers arrive as user-level interrupts) under the three
// atomicity implementations: the hardware revocable interrupt disable buys
// back most of the protection cost (Table 4's 87 vs 115 cycles), and
// unprotected kernel-mode messaging bounds the gain.
func BenchmarkAblationAtomicity(b *testing.B) {
	for _, impl := range []glaze.AtomicityImpl{glaze.KernelMode, glaze.HardAtomicity, glaze.SoftAtomicity} {
		impl := impl
		b.Run(impl.String(), func(b *testing.B) {
			var runtime uint64
			for i := 0; i < b.N; i++ {
				rs := harness.RunMultiprogrammedQ(
					func() apps.Instance {
						s := apps.NewSynth(100, 20, 100)
						s.THandWork = 50 // overhead-dominated handlers
						return s
					},
					0, 1, 50_000,
					func(cfg *glaze.Config) { cfg.Cost = glaze.Costs(impl) })
				if rs.Err != nil {
					b.Fatal(rs.Err)
				}
				runtime = rs.Runtime
			}
			b.ReportMetric(float64(runtime)/1e6, "Mcycles")
		})
	}
}

// BenchmarkAblationOneCase compares two-case delivery against the
// always-buffered (SUNMOS-style) organization: the one-case system pays the
// 232-cycle path on every message.
func BenchmarkAblationOneCase(b *testing.B) {
	for _, oneCase := range []bool{false, true} {
		oneCase := oneCase
		name := "two-case"
		if oneCase {
			name = "one-case"
		}
		b.Run(name, func(b *testing.B) {
			var rs harness.RunStats
			for i := 0; i < b.N; i++ {
				rs = harness.RunMultiprogrammedQ(
					func() apps.Instance { return apps.NewBarrierApp(1000) },
					0.01, 1, 50_000,
					func(cfg *glaze.Config) { cfg.AlwaysBuffered = oneCase })
				if rs.Err != nil {
					b.Fatal(rs.Err)
				}
			}
			b.ReportMetric(float64(rs.Runtime)/1e6, "Mcycles")
			b.ReportMetric(rs.BufferedPct, "bufpct")
		})
	}
}

// BenchmarkAblationVirtualBuffering compares virtual buffering against
// pinned buffers on a flood into a slowly-draining process: reclamation
// keeps the physical footprint near the live window where pinning grows
// with everything ever buffered.
func BenchmarkAblationVirtualBuffering(b *testing.B) {
	flood := func(pinned bool) (maxPages int) {
		cfg := glaze.DefaultConfig()
		cfg.W, cfg.H = 2, 1
		cfg.NoBufferReclaim = pinned
		m := glaze.NewMachine(cfg)
		job := m.NewJob("flood")
		null := m.NewJob("null")
		udm.Attach(null.Process(0))
		udm.Attach(null.Process(1))
		ep0 := udm.Attach(job.Process(0))
		ep1 := udm.Attach(job.Process(1))
		const n = 3000
		got := 0
		ep1.On(1, func(e *udm.Env, msg *udm.Msg) { got++; e.Spend(100) })
		args := make([]uint64, 14)
		job.Process(0).StartMain(func(t *cpu.Task) {
			e := ep0.Env(t)
			for i := 0; i < n; i++ {
				args[0] = uint64(i)
				e.Inject(1, 1, args...)
				t.Spend(200)
			}
		})
		job.Process(1).StartMain(func(t *cpu.Task) {
			for got < n {
				t.Spend(10_000)
			}
		})
		// Heavily skewed small quanta: production bursts buffer while the
		// receiver runs null, then drain during its job slot. Virtual
		// buffering's footprint is the burst window; pinning accumulates.
		m.NewGang(20_000, 0.9, job, null).Start()
		m.RunUntilDone(0, job)
		if got != n {
			b.Fatalf("delivered %d/%d", got, n)
		}
		return job.Process(1).BufferPagesHighWater()
	}
	for _, pinned := range []bool{false, true} {
		pinned := pinned
		name := "virtual"
		if pinned {
			name = "pinned"
		}
		b.Run(name, func(b *testing.B) {
			var pages int
			for i := 0; i < b.N; i++ {
				pages = flood(pinned)
			}
			b.ReportMetric(float64(pages), "max-pages")
		})
	}
}

// BenchmarkSimulator measures raw simulator throughput: simulated cycles
// per wall second on the barrier benchmark.
func BenchmarkSimulator(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		rs := harness.RunStandalone(func() apps.Instance { return apps.NewBarrierApp(2000) }, 1)
		cycles += rs.Runtime
	}
	b.ReportMetric(float64(cycles)/float64(b.N)/1e6, "Mcycles/op")
}
