package glaze

import (
	"testing"
	"testing/quick"

	"fugu/internal/vm"
)

func TestBufferPushPop(t *testing.T) {
	b := newSWBuffer(vm.NewFrames(16))
	b.push(0, []uint64{1, 2, 3}, 0, 0)
	b.push(0, []uint64{4, 5}, 0, 0)
	if b.count != 2 {
		t.Fatalf("count = %d, want 2", b.count)
	}
	if n, _ := b.headLen(); n != 3 {
		t.Errorf("head len = %d, want 3", n)
	}
	if w, _ := b.headWord(2); w != 3 {
		t.Errorf("head word 2 = %d, want 3", w)
	}
	b.pop()
	if n, _ := b.headLen(); n != 2 {
		t.Errorf("second head len = %d, want 2", n)
	}
	if w, _ := b.headWord(0); w != 4 {
		t.Errorf("second head word 0 = %d, want 4", w)
	}
	b.pop()
	if !b.empty() {
		t.Error("buffer not empty after draining")
	}
}

func TestBufferFirstPushAllocates(t *testing.T) {
	f := vm.NewFrames(16)
	b := newSWBuffer(f)
	res := b.push(0, []uint64{1}, 0, 0)
	if res.newPages != 1 {
		t.Errorf("newPages = %d, want 1 (vmalloc path)", res.newPages)
	}
	res = b.push(0, []uint64{2}, 0, 0)
	if res.newPages != 0 {
		t.Errorf("second push newPages = %d, want 0 (existing page)", res.newPages)
	}
	if b.vmallocs != 1 {
		t.Errorf("vmallocs = %d, want 1", b.vmallocs)
	}
}

func TestBufferPageReclamation(t *testing.T) {
	f := vm.NewFrames(64)
	b := newSWBuffer(f)
	// Push enough small messages to span several pages, consuming as we go:
	// resident pages must stay low because passed pages are reclaimed.
	msg := make([]uint64, 63) // 64 words per record
	maxResident := 0
	for i := 0; i < 200; i++ {
		b.push(0, msg, 0, 0)
		if r := b.pagesResident(); r > maxResident {
			maxResident = r
		}
		b.pop()
	}
	if maxResident > 2 {
		t.Errorf("max resident pages = %d, want <= 2 with immediate draining", maxResident)
	}
	if b.pagesResident() != 0 {
		t.Errorf("resident after full drain = %d, want 0", b.pagesResident())
	}
	if f.InUse() != 0 {
		t.Errorf("frames in use after drain = %d, want 0", f.InUse())
	}
}

func TestBufferHighWaterTracksBacklog(t *testing.T) {
	b := newSWBuffer(vm.NewFrames(64))
	msg := make([]uint64, 255) // 256-word records: 4 per page
	for i := 0; i < 16; i++ {
		b.push(0, msg, 0, 0) // 16 records = 4 pages
	}
	if hw := b.PagesHighWater(); hw < 4 {
		t.Errorf("high water = %d, want >= 4", hw)
	}
	for i := 0; i < 16; i++ {
		b.pop()
	}
	if b.pagesResident() != 0 {
		t.Errorf("resident = %d after drain", b.pagesResident())
	}
}

func TestBufferPageOutUnderExhaustion(t *testing.T) {
	f := vm.NewFrames(3)
	b := newSWBuffer(f)
	msg := make([]uint64, 511) // 512-word records: 2 per page
	// 10 records need 5 pages; only 3 frames exist, so pushes must evict.
	for i := 0; i < 10; i++ {
		for j := range msg {
			msg[j] = uint64(i*1000 + j)
		}
		b.push(0, msg, 0, 0)
	}
	if b.pageOuts == 0 {
		t.Fatal("no page-outs despite frame exhaustion")
	}
	// Every record must read back intact, paging back in as needed.
	for i := 0; i < 10; i++ {
		n, _ := b.headLen()
		if n != 511 {
			t.Fatalf("record %d len = %d", i, n)
		}
		for _, j := range []int{0, 255, 510} {
			w, _ := b.headWord(j)
			if w != uint64(i*1000+j) {
				t.Fatalf("record %d word %d = %d, want %d", i, j, w, i*1000+j)
			}
		}
		b.pop()
	}
	if b.pageIns == 0 {
		t.Error("no page-ins recorded")
	}
	if !b.empty() {
		t.Error("buffer not empty")
	}
}

// Property: any sequence of variable-length pushes followed by interleaved
// pops delivers exactly the pushed contents in FIFO order, under a tight
// frame pool.
func TestBufferFIFOProperty(t *testing.T) {
	prop := func(lens []uint16, seed uint64) bool {
		if len(lens) == 0 {
			return true
		}
		f := vm.NewFrames(4)
		b := newSWBuffer(f)
		type rec struct{ first, last, n uint64 }
		var want []rec
		pushed := 0
		for i, l := range lens {
			n := uint64(l%600) + 1
			words := make([]uint64, n)
			words[0] = uint64(i) ^ seed
			words[n-1] = uint64(i) * 7
			b.push(uint64(i), words, 0, 0)
			want = append(want, rec{words[0], words[n-1], n})
			pushed++
			// Interleave pops.
			if i%3 == 2 && b.count > 1 {
				r := want[0]
				want = want[1:]
				if got, _ := b.headLen(); uint64(got) != r.n {
					return false
				}
				if w, _ := b.headWord(0); w != r.first {
					return false
				}
				if w, _ := b.headWord(int(r.n - 1)); w != r.last {
					return false
				}
				b.pop()
			}
		}
		for _, r := range want {
			if got, _ := b.headLen(); uint64(got) != r.n {
				return false
			}
			if w, _ := b.headWord(0); w != r.first {
				return false
			}
			if w, _ := b.headWord(int(r.n - 1)); w != r.last {
				return false
			}
			b.pop()
		}
		return b.empty() && f.InUse() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCostModelMatchesTable4(t *testing.T) {
	cases := []struct {
		impl                 AtomicityImpl
		pre, intrTotal, poll uint64
	}{
		{KernelMode, 32, 54, 9},
		{HardAtomicity, 54, 87, 9},
		{SoftAtomicity, 66, 115, 9},
	}
	for _, c := range cases {
		cm := Costs(c.impl)
		if got := cm.RecvIntrPre(); got != c.pre {
			t.Errorf("%v RecvIntrPre = %d, want %d", c.impl, got, c.pre)
		}
		if got := cm.RecvIntrTotal(); got != c.intrTotal {
			t.Errorf("%v RecvIntrTotal = %d, want %d", c.impl, got, c.intrTotal)
		}
		if got := cm.RecvPollTotal(); got != c.poll {
			t.Errorf("%v RecvPollTotal = %d, want %d", c.impl, got, c.poll)
		}
		if got := cm.SendCost(0); got != 7 {
			t.Errorf("%v SendCost(0) = %d, want 7", c.impl, got)
		}
		if got := cm.SendCost(4); got != 19 {
			t.Errorf("%v SendCost(4) = %d, want 19", c.impl, got)
		}
	}
}

func TestCostModelMatchesTable5(t *testing.T) {
	cm := Costs(SoftAtomicity)
	if cm.BufferInsertMin != 180 || cm.BufferInsertVMAlloc != 3162 {
		t.Errorf("insert costs = %d/%d, want 180/3162", cm.BufferInsertMin, cm.BufferInsertVMAlloc)
	}
	if got := cm.BufferedExtract(0); got != 52 {
		t.Errorf("BufferedExtract(0) = %d, want 52", got)
	}
	if got := cm.BufferedExtract(4); got != 70 {
		t.Errorf("BufferedExtract(4) = %d, want 70 (52 + 4*4.5)", got)
	}
	if got := cm.BufferedMinTotal(); got != 232 {
		t.Errorf("BufferedMinTotal = %d, want 232", got)
	}
}
