package telemetry

import (
	"strings"
	"testing"
)

// dwell builds a cumulative per-stage dwell map.
func dwell(pairs ...any) map[string]uint64 {
	m := make(map[string]uint64)
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = uint64(pairs[i+1].(int))
	}
	return m
}

// TestDwellDeltas: samples carry cumulative stage-dwell totals; intervals
// carry the per-interval deltas, omitting stages that did not move, and the
// deltas sum back to the final cumulative totals.
func TestDwellDeltas(t *testing.T) {
	r := NewRecorder(Config{Every: 100})
	r.AttachMachine()
	r.Record(Sample{At: 100, Snap: snap("a", 1), Dwell: dwell("queued", 40, "buffered", 0)})
	r.Record(Sample{At: 200, Snap: snap("a", 2), Dwell: dwell("queued", 90, "buffered", 30)})
	tl := r.Finish(Sample{At: 300, Snap: snap("a", 3), Dwell: dwell("queued", 90, "buffered", 55)})

	if len(tl.Intervals) != 3 {
		t.Fatalf("got %d intervals, want 3", len(tl.Intervals))
	}
	if d := tl.Intervals[0].Dwell["queued"]; d != 40 {
		t.Errorf("interval 0 Δqueued = %d, want 40", d)
	}
	if _, ok := tl.Intervals[0].Dwell["buffered"]; ok {
		t.Errorf("interval 0 carries zero-delta buffered dwell")
	}
	if d := tl.Intervals[1].Dwell["queued"]; d != 50 {
		t.Errorf("interval 1 Δqueued = %d, want 50", d)
	}
	if d := tl.Intervals[1].Dwell["buffered"]; d != 30 {
		t.Errorf("interval 1 Δbuffered = %d, want 30", d)
	}
	if _, ok := tl.Intervals[2].Dwell["queued"]; ok {
		t.Errorf("closing interval carries zero-delta queued dwell")
	}
	sums := map[string]uint64{}
	for _, iv := range tl.Intervals {
		for name, d := range iv.Dwell {
			sums[name] += d
		}
	}
	if sums["queued"] != 90 || sums["buffered"] != 55 {
		t.Errorf("dwell deltas sum to %v, want queued=90 buffered=55", sums)
	}
}

// TestDwellFoldsIntoSameCycleInterval: a Finish on the same cycle as the
// last sample folds its residual dwell into that interval instead of
// emitting a duplicate-cycle record.
func TestDwellFoldsIntoSameCycleInterval(t *testing.T) {
	r := NewRecorder(Config{Every: 100})
	r.AttachMachine()
	r.Record(Sample{At: 100, Snap: snap("a", 1), Dwell: dwell("queued", 10)})
	tl := r.Finish(Sample{At: 100, Snap: snap("a", 1), Dwell: dwell("queued", 25)})
	if len(tl.Intervals) != 1 {
		t.Fatalf("got %d intervals, want 1 (same-cycle fold)", len(tl.Intervals))
	}
	if d := tl.Intervals[0].Dwell["queued"]; d != 25 {
		t.Errorf("folded Δqueued = %d, want 25", d)
	}
}

// TestDwellCSVColumns: timelines carrying dwell grow "d:<stage>" columns;
// timelines without any dwell keep the pre-anatomy column set, so existing
// exports stay byte-identical.
func TestDwellCSVColumns(t *testing.T) {
	r := NewRecorder(Config{Every: 100})
	r.AttachMachine()
	tl := r.Finish(Sample{At: 100, Snap: snap("a", 2), Dwell: dwell("queued", 7)})
	var b strings.Builder
	if err := WriteCSV(&b, []LabeledTimeline{{Label: "p", Timeline: tl}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if !strings.Contains(lines[0], "d:queued") {
		t.Errorf("header missing d:queued column: %s", lines[0])
	}
	if !strings.Contains(lines[1], "7") {
		t.Errorf("row missing dwell value: %s", lines[1])
	}

	// No spans recorder -> no Dwell maps -> no d: columns at all.
	r2 := NewRecorder(Config{Every: 100})
	r2.AttachMachine()
	tl2 := r2.Finish(Sample{At: 100, Snap: snap("a", 2)})
	var b2 strings.Builder
	if err := WriteCSV(&b2, []LabeledTimeline{{Label: "p", Timeline: tl2}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b2.String(), "d:") {
		t.Errorf("dwell-free timeline grew d: columns: %s", b2.String())
	}
}
