package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"fugu/internal/delivery"
	"fugu/internal/faultinject"
	"fugu/internal/metrics"
	"fugu/internal/sim"
	"fugu/internal/spans"
)

// runCSVs runs one experiment at the reference configuration plus the given
// partition count and returns its CSV files.
func runCSVs(t *testing.T, name string, parts int) map[string]string {
	t.Helper()
	exp, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	res, err := (&Runner{}).Run(context.Background(), exp,
		WithQuick(), WithTrials(1), WithSeed(1), WithParallelism(1),
		WithPartitions(parts))
	if err != nil {
		t.Fatalf("%s parts=%d: %v", name, parts, err)
	}
	return res.(CSVer).CSVFiles()
}

// TestPartitionedGoldenCSVs is the tentpole's central contract: sharding the
// event engine must not change a single byte of output. Table4 and fig9 at
// 2 and 4 partitions must hash to the same golden pins the serial engine is
// held to — not merely match each other, but match the pre-partitioning
// values, so the merged-group driver is proven serial-equivalent end to end
// (same event order, same rng draws, same cost accounting).
func TestPartitionedGoldenCSVs(t *testing.T) {
	for _, name := range []string{"table4", "fig9"} {
		want := goldenFast[name]
		for _, parts := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/parts=%d", name, parts), func(t *testing.T) {
				files := runCSVs(t, name, parts)
				for file, wantHash := range want {
					sum := sha256.Sum256([]byte(files[file]))
					if got := hex.EncodeToString(sum[:]); got != wantHash {
						t.Errorf("%s at %d partitions: %s hash = %s, want golden %s "+
							"(partitioning must be byte-identical to the serial engine)",
							name, parts, file, got, wantHash)
					}
				}
			})
		}
	}
}

// TestPartitionedCrucibleCSV extends byte-equality to the adversarial
// sweep: fault injection, watchdogs, timeline oracles and all three
// second-case machineries must behave identically under partitioning.
// Serial output is the reference; 2 and 4 partitions must reproduce it
// byte for byte.
func TestPartitionedCrucibleCSV(t *testing.T) {
	serial := runCSVs(t, "crucible", 1)
	partCounts := []int{4}
	if !testing.Short() {
		partCounts = []int{2, 4}
	}
	for _, parts := range partCounts {
		parts := parts
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			got := runCSVs(t, "crucible", parts)
			if !reflect.DeepEqual(serial, got) {
				for file, want := range serial {
					if got[file] != want {
						t.Errorf("crucible at %d partitions: %s differs from serial output", parts, file)
					}
				}
			}
		})
	}
}

// TestPartitionedProfilerAttribution: the engine cost profiler's per-site
// attribution (event counts and simulated cycles, the deterministic
// columns) must be identical whether the machine runs serial or sharded —
// merged-mode partitioning dispatches the same events in the same global
// order, so every site is charged the same cycles.
func TestPartitionedProfilerAttribution(t *testing.T) {
	run := func(parts int) sim.Profile {
		prof := sim.NewProfiler(sim.ProfilerConfig{})
		exp, _ := Lookup("table4")
		_, err := (&Runner{}).Run(context.Background(), exp,
			WithQuick(), WithTrials(1), WithSeed(1), WithParallelism(1),
			WithProfiler(prof), WithPartitions(parts))
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		return prof.Snapshot()
	}
	serial := run(1)
	if serial.Events == 0 {
		t.Fatal("profiler observed no events")
	}
	parted := run(3)
	if !reflect.DeepEqual(serial, parted) {
		t.Errorf("profiler attribution diverges at 3 partitions:\n  serial %+v\n  parts  %+v",
			serial, parted)
	}
}

// TestPartitionedFaultPolicyProperty is the property-based sweep over the
// full configuration cross product: for ANY random fault plan, under every
// registered delivery policy, a 3-partition run must agree with the serial
// run on every observable (row, metrics snapshot) and still reconcile its
// spans against the delivery counters.
func TestPartitionedFaultPolicyProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	check := func(seed uint64, pMis, pRev, pStall uint8) bool {
		plan := cruciblePlan{
			name: fmt.Sprintf("part-prop-%#x", seed),
			arm: func(p *faultinject.Plan) {
				w := func(b uint8, cycles uint64) faultinject.FaultSpec {
					return faultinject.FaultSpec{
						Prob: float64(b) / 365.0,
						From: crucibleFaultsStart, Until: crucibleFaultsLift,
						Cycles: cycles, Node: faultinject.AllNodes,
					}
				}
				p.Arm(faultinject.GIDMismatch, w(pMis, 0))
				p.Arm(faultinject.AtomicityTimeout, w(pRev, 0))
				p.Arm(faultinject.LinkStall, w(pStall, 250))
			},
		}
		for _, polName := range delivery.Names() {
			pol, err := delivery.ByName(polName)
			if err != nil {
				t.Fatal(err)
			}
			run := func(parts int) (cruciblePoint, metrics.Snapshot, *spans.Recorder) {
				rec := spans.NewRecorder(nil)
				opt := NewOptions(WithQuick(), WithTrials(1), WithSeed(seed),
					WithDeliveryPolicy(pol), WithSpans(rec), WithPartitions(parts))
				pt := runCrucible(plan, 0, opt)
				return pt, pt.snap, rec
			}
			serial, serialSnap, _ := run(1)
			parted, partedSnap, rec := run(3)
			if !reflect.DeepEqual(serial.row, parted.row) {
				t.Logf("seed=%#x policy=%s: rows diverge\n  serial %+v\n  parts=3 %+v",
					seed, polName, serial.row, parted.row)
				return false
			}
			if !reflect.DeepEqual(serialSnap, partedSnap) {
				t.Logf("seed=%#x policy=%s: metrics snapshots diverge", seed, polName)
				return false
			}
			if probs := rec.Check(partedSnap.Counters["glaze.deliver.fast"],
				partedSnap.Counters["glaze.deliver.buffered"]); len(probs) != 0 {
				t.Logf("seed=%#x policy=%s parts=3: span invariants violated: %v",
					seed, polName, probs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
