// Package fugu is a deterministic, cycle-accounted simulation of the MIT
// FUGU multiprocessor and its Glaze operating system, built to reproduce
// "Exploiting Two-Case Delivery for Fast Protected Messaging" (MacKenzie et
// al., HPCA 1998).
//
// The package is a facade over the implementation layers:
//
//   - a discrete-event engine with coroutine tasks (internal/sim, internal/cpu)
//   - the two-network mesh interconnect (internal/mesh)
//   - the FUGU network interface with GID protection and the revocable
//     interrupt disable (internal/nic)
//   - the Glaze kernel: two-case delivery, virtual buffering, overflow
//     control and the gang scheduler (internal/glaze, internal/vm)
//   - the user-level UDM messaging library (internal/udm)
//   - CRL software shared memory and the paper's applications
//     (internal/crl, internal/apps)
//   - the experiment harness regenerating the paper's tables and figures
//     (internal/harness)
//
// A minimal program sends one message between two nodes:
//
//	m := fugu.NewMachine(fugu.DefaultConfig())
//	job := m.NewJob("hello")
//	ep0 := fugu.Attach(job.Process(0))
//	ep1 := fugu.Attach(job.Process(1))
//	ep1.On(1, func(e *fugu.Env, msg *fugu.Msg) { fmt.Println("got", msg.Args) })
//	job.Process(0).StartMain(func(t *fugu.Task) {
//	    ep0.Env(t).Inject(1, 1, 42)
//	})
//	m.NewGang(1<<40, 0, job).Start()
//	m.RunUntilDone(0, job)
//
// See examples/ for runnable programs and cmd/fugusim for the experiment
// runner.
package fugu

import (
	"fugu/internal/apps"
	"fugu/internal/cpu"
	"fugu/internal/delivery"
	"fugu/internal/glaze"
	"fugu/internal/harness"
	"fugu/internal/udm"
)

// Core machine types.
type (
	// Machine is a simulated FUGU multiprocessor.
	Machine = glaze.Machine
	// Config parameterizes a machine (mesh size, cost model, NI, frames).
	Config = glaze.Config
	// Job is a gang-scheduled parallel application (one process per node).
	Job = glaze.Job
	// Process is one node's half of a job.
	Process = glaze.Process
	// Gang is the system scheduler with skewable per-node clocks.
	Gang = glaze.Gang
	// CostModel carries the cycle constants of Tables 4 and 5.
	CostModel = glaze.CostModel
	// Task is a simulated thread; application code runs in one.
	Task = cpu.Task
)

// UDM user-level messaging types.
type (
	// EP is a process's UDM endpoint.
	EP = udm.EP
	// Env is the execution environment handed to threads and handlers.
	Env = udm.Env
	// Msg is one extracted message.
	Msg = udm.Msg
	// Handler is a user message handler.
	Handler = udm.Handler
	// Counter is the user-level synchronization primitive.
	Counter = udm.Counter
)

// Atomicity implementations (the three columns of Table 4).
const (
	KernelMode    = glaze.KernelMode
	HardAtomicity = glaze.HardAtomicity
	SoftAtomicity = glaze.SoftAtomicity
)

// NewMachine builds a machine: engine, mesh, per-node CPU, NI, frame pool
// and kernel. Optional ConfigOptions are applied over cfg, e.g.
// fugu.NewMachine(fugu.DefaultConfig(), fugu.WithMesh(2, 1)).
func NewMachine(cfg Config, opts ...ConfigOption) *Machine { return glaze.NewMachine(cfg, opts...) }

// DefaultConfig returns the 8-node, soft-atomicity configuration the
// paper's experiments use.
func DefaultConfig() Config { return glaze.DefaultConfig() }

// ConfigOption adjusts a Config without reaching into struct fields.
type ConfigOption = glaze.ConfigOption

// Machine configuration options.
var (
	// NewConfig returns DefaultConfig with options applied.
	NewConfig = glaze.NewConfig
	// WithMesh sets the mesh dimensions (w*h nodes).
	WithMesh = glaze.WithMesh
	// WithAtomicity selects one of Table 4's atomicity implementations.
	WithAtomicity = glaze.WithAtomicity
	// WithFrames sets the per-node physical frame pool size.
	WithFrames = glaze.WithFrames
	// WithPartitions shards the event engine across n partition engines
	// (byte-identical results at any value).
	WithPartitions = glaze.WithPartitions
	// WithMachineSeed sets the simulation seed.
	WithMachineSeed = glaze.WithMachineSeed
	// WithOutputWords sets the NI output-descriptor length in words.
	WithOutputWords = glaze.WithOutputWords
)

// Delivery policies: the receive-side strategy a machine runs under. The
// default is two-case delivery; the alternatives trade protection machinery
// for memory or hardware (see internal/delivery and the policylab
// experiment).
type (
	// DeliveryPolicy decides how messages reach a protected process.
	DeliveryPolicy = delivery.Policy
	// TwoCase is the paper's design: fast path plus kernel-buffered second case.
	TwoCase = delivery.TwoCase
	// ZeroCopyRemap buffers by flipping whole pages instead of copying.
	ZeroCopyRemap = delivery.ZeroCopyRemap
	// BypassRing demultiplexes in NI hardware into pinned per-process rings.
	BypassRing = delivery.BypassRing
)

// Delivery-policy selection and discovery.
var (
	// WithDeliveryPolicy selects a machine's delivery policy (nil = two-case).
	WithDeliveryPolicy = glaze.WithDeliveryPolicy
	// DefaultBypassRing returns the standard 4-page, 128-word-slot ring.
	DefaultBypassRing = delivery.DefaultBypassRing
	// DeliveryPolicies lists the registered policy names (-policy flag values).
	DeliveryPolicies = delivery.Names
	// DeliveryPolicyByName resolves a -policy flag value to its policy.
	DeliveryPolicyByName = delivery.ByName
)

// Costs returns the cost model for one of Table 4's columns.
func Costs(impl glaze.AtomicityImpl) CostModel { return glaze.Costs(impl) }

// Attach binds a UDM endpoint to a process and installs its upcall.
func Attach(p *Process) *EP { return udm.Attach(p) }

// NewCounter returns a user-level synchronization counter.
func NewCounter() *Counter { return udm.NewCounter() }

// Workloads from the paper, re-exported for example programs and benches.
var (
	// NewBarrierApp returns the barrier benchmark.
	NewBarrierApp = apps.NewBarrierApp
	// NewEnum returns the triangle-puzzle enumeration benchmark.
	NewEnum = apps.NewEnum
	// NewSynth returns the synth-N producer-consumer microbenchmark.
	NewSynth = apps.NewSynth
	// NewLU returns the blocked LU decomposition on CRL.
	NewLU = apps.NewLU
	// NewWater returns the particle-dynamics benchmark on CRL.
	NewWater = apps.NewWater
	// NewBarnes returns the Barnes-Hut N-body benchmark on CRL.
	NewBarnes = apps.NewBarnes
)

// Experiment API: named, discoverable experiments run on a parallel worker
// pool (see cmd/fugusim for the CLI).
type (
	// Experiment is one registered reproduction of a table or figure.
	Experiment = harness.Experiment
	// ExperimentResult is a structured experiment outcome.
	ExperimentResult = harness.Result
	// Runner fans an experiment's sweep points out across workers.
	Runner = harness.Runner
	// ExperimentOption configures an experiment run (WithTrials, ...).
	ExperimentOption = harness.Option
	// ExperimentOptions is the resolved option set.
	ExperimentOptions = harness.Options
)

// Experiment discovery and execution.
var (
	// RunExperiment runs a registered experiment by name.
	RunExperiment = harness.Run
	// LookupExperiment finds a registered experiment by name.
	LookupExperiment = harness.Lookup
	// Experiments lists every registered experiment.
	Experiments = harness.Experiments
	// ExperimentNames lists the registered experiment names.
	ExperimentNames = harness.Names
)

// Experiment options.
var (
	// WithTrials sets the trials averaged per sweep point.
	WithTrials = harness.WithTrials
	// WithQuick selects the scaled-down workloads.
	WithQuick = harness.WithQuick
	// WithFull selects the paper-scale workloads.
	WithFull = harness.WithFull
	// WithSeed sets the base seed (trial t runs at seed+t).
	WithSeed = harness.WithSeed
	// WithParallelism sets the Runner's worker count.
	WithParallelism = harness.WithParallelism
	// WithExperimentPolicy runs every sweep point under a delivery policy.
	WithExperimentPolicy = harness.WithDeliveryPolicy
	// NewExperimentOptions resolves a full option set.
	NewExperimentOptions = harness.NewOptions
)

// Typed experiment entry points (each returns its structured result and an
// error; rendering is the caller's job).
var (
	// Table4 reproduces the fast-path cycle counts.
	Table4 = harness.Table4
	// Table5 reproduces the buffered-path costs.
	Table5 = harness.Table5
	// Table6 reproduces the application characteristics.
	Table6 = harness.Table6
	// Fig7and8 runs the schedule-quality sweep behind Figures 7 and 8.
	Fig7and8 = harness.Fig7and8
	// Fig9 sweeps the send interval for synth-N.
	Fig9 = harness.Fig9
	// Fig10 sweeps the buffered-path cost for synth-N.
	Fig10 = harness.Fig10
	// Crucible runs the fault-injection sweep with delivery oracles.
	Crucible = harness.Crucible
	// PolicyLab compares the delivery policies head-to-head under faults.
	PolicyLab = harness.PolicyLab
)
