package delivery

// ModeGlyph renders one process's delivery state under a policy as a single
// timeline character — the per-node "modes" column of the telemetry flight
// recorder:
//
//	'-'  direct (fast-case) delivery, store idle
//	'b'  kernel-buffered second-case mode engaged
//	't'  throttled by overflow control
//	'B'  buffered and throttled at once
//	'r'  hardware-demux ring holds a backlog (bypass-style policies,
//	     which never enter a kernel-buffered mode)
//	'd'  residual store backlog while already back in direct mode
//	     (software-demux policies draining after exit)
//
// Buffered/throttled states are structurally impossible under a
// hardware-demux policy, so a bypass timeline reads as runs of '-' and 'r'.
func ModeGlyph(p Policy, buffered, throttled bool, pending int) byte {
	switch {
	case buffered && throttled:
		return 'B'
	case buffered:
		return 'b'
	case throttled:
		return 't'
	case pending > 0:
		if p != nil && p.HardwareDemux() {
			return 'r'
		}
		return 'd'
	default:
		return '-'
	}
}

// GlyphRank orders mode glyphs by severity so a node hosting several
// processes reports its worst one ('-' < 'r'/'d' < 't' < 'b' < 'B').
func GlyphRank(g byte) int {
	switch g {
	case 'B':
		return 4
	case 'b':
		return 3
	case 't':
		return 2
	case 'r', 'd':
		return 1
	default:
		return 0
	}
}
