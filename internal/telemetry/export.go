package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"fugu/internal/metrics"
)

// LabeledTimeline pairs one sweep point's timeline with its identity for
// multi-point export.
type LabeledTimeline struct {
	Point    int
	Label    string
	Timeline Timeline
}

// jsonlRecord flattens one interval with its point identity for streaming
// export; embedding promotes the Interval fields.
type jsonlRecord struct {
	Point int    `json:"point"`
	Label string `json:"label"`
	Interval
}

// WriteJSONL streams every interval of every timeline as one JSON object
// per line, in point order. Map keys marshal sorted, so the bytes are
// deterministic.
func WriteJSONL(w io.Writer, tls []LabeledTimeline) error {
	enc := json.NewEncoder(w)
	for _, lt := range tls {
		for _, iv := range lt.Timeline.Intervals {
			if err := enc.Encode(jsonlRecord{Point: lt.Point, Label: lt.Label, Interval: iv}); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV renders the timelines as one wide CSV: fixed identity columns
// followed by the sorted union of instrument columns across every point —
// "c:<name>" counter deltas, "d:<stage>" per-stage dwell-cycle deltas
// (present only when a spans recorder fed the sampler),
// "g:<name>.cur"/".max" gauge levels and
// "h:<name>.count"/".sum"/".p50"/".p90"/".p99"/".max" histogram activity.
// Cells for instruments silent in an interval are empty (read them as 0).
// Field escaping is metrics.CSVField, the same writer the snapshot CSV
// uses, so instrument names with commas or quotes survive a round trip.
func WriteCSV(w io.Writer, tls []LabeledTimeline) error {
	cols := instrumentColumns(tls)
	header := []string{"point", "label", "epoch", "cycle", "spans_inflight", "queue_sum", "queue_max", "modes"}
	header = append(header, cols...)
	if err := writeRow(w, header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for _, lt := range tls {
		for _, iv := range lt.Timeline.Intervals {
			row = row[:0]
			row = append(row,
				fmt.Sprint(lt.Point), lt.Label, fmt.Sprint(iv.Epoch), fmt.Sprint(iv.Cycle),
				fmt.Sprint(iv.SpansInFlight), fmt.Sprint(iv.QueueSum), fmt.Sprint(iv.QueueMax), iv.Modes)
			for _, col := range cols {
				row = append(row, cellValue(iv, col))
			}
			if err := writeRow(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// instrumentColumns returns the sorted union of instrument column keys
// across all intervals of all timelines.
func instrumentColumns(tls []LabeledTimeline) []string {
	set := map[string]struct{}{}
	for _, lt := range tls {
		for _, iv := range lt.Timeline.Intervals {
			for name := range iv.Counters {
				set["c:"+name] = struct{}{}
			}
			for name := range iv.Dwell {
				set["d:"+name] = struct{}{}
			}
			for name := range iv.Gauges {
				set["g:"+name+".cur"] = struct{}{}
				set["g:"+name+".max"] = struct{}{}
			}
			for name := range iv.Hists {
				for _, f := range histFields {
					set["h:"+name+f] = struct{}{}
				}
			}
		}
	}
	cols := make([]string, 0, len(set))
	for c := range set {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

var histFields = []string{".count", ".sum", ".p50", ".p90", ".p99", ".max"}

// cellValue renders one interval's value for an instrument column, empty
// when the instrument was silent.
func cellValue(iv Interval, col string) string {
	kind, rest := col[:2], col[2:]
	switch kind {
	case "c:":
		if d, ok := iv.Counters[rest]; ok {
			return fmt.Sprint(d)
		}
	case "d:":
		if d, ok := iv.Dwell[rest]; ok {
			return fmt.Sprint(d)
		}
	case "g:":
		// Instrument names contain dots; our field suffix is always the
		// last dot-separated component.
		i := strings.LastIndex(rest, ".")
		name, field := rest[:i], rest[i+1:]
		if g, ok := iv.Gauges[name]; ok {
			if field == "cur" {
				return fmt.Sprint(g.Cur)
			}
			return fmt.Sprint(g.Max)
		}
	case "h:":
		i := strings.LastIndex(rest, ".")
		name, field := rest[:i], rest[i:]
		if h, ok := iv.Hists[name]; ok {
			switch field {
			case ".count":
				return fmt.Sprint(h.Count)
			case ".sum":
				return fmt.Sprint(h.Sum)
			case ".p50":
				return fmt.Sprint(h.P50)
			case ".p90":
				return fmt.Sprint(h.P90)
			case ".p99":
				return fmt.Sprint(h.P99)
			case ".max":
				return fmt.Sprint(h.Max)
			}
		}
	}
	return ""
}

// writeRow writes one escaped CSV record.
func writeRow(w io.Writer, fields []string) error {
	var b strings.Builder
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(metrics.CSVField(f))
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
