package udm

import (
	"strings"
	"testing"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
	"fugu/internal/trace"
)

// TestTraceRecordsTransitions: the kernel's event log captures the
// mode-transition story of a revocation run.
func TestTraceRecordsTransitions(t *testing.T) {
	m, job, eps := testMachine(t, func(cfg *glaze.Config) {
		cfg.NIConfig.TimerPreset = 400
	})
	m.Trace = trace.New(256)
	m.Trace.Enable(trace.Mode, trace.Sched)
	eps[1].On(1, func(e *Env, msg *Msg) {})
	job.Process(1).StartMain(func(tk *cpu.Task) {
		e := eps[1].Env(tk)
		e.BeginAtomic()
		tk.Spend(3000) // let the timer revoke
		for eps[1].Delivered < 2 {
			e.Poll()
		}
		e.EndAtomic()
	})
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := eps[0].Env(tk)
		e.Inject(1, 1, 1)
		e.Inject(1, 1, 2)
	})
	m.RunUntilDone(0, job)
	dump := m.Trace.Dump()
	for _, want := range []string{"switch to test", "revoke test", "exit buffered test"} {
		if !strings.Contains(dump, want) {
			t.Errorf("trace missing %q:\n%s", want, dump)
		}
	}
	if m.Trace.Total() < 3 {
		t.Errorf("trace total = %d", m.Trace.Total())
	}
}
