// Package stats provides the small counter types the simulator layers use to
// report the quantities the paper's evaluation measures: per-path message
// counts, buffering page high-water marks, and simple aggregates.
package stats

import (
	"fmt"
	"math"
)

// Delivery tallies how messages reached an application: directly from the
// network interface (the fast case) or via the software buffer (the slow
// case). This is the quantity behind Figures 7, 9 and 10.
type Delivery struct {
	Fast     uint64 // upcall or poll straight from the NI
	Buffered uint64 // inserted into and handled from the virtual buffer
}

// Total returns all delivered messages.
func (d Delivery) Total() uint64 { return d.Fast + d.Buffered }

// BufferedPct returns the percentage of messages that took the buffered
// path, 0 if none were delivered.
func (d Delivery) BufferedPct() float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(d.Buffered) / float64(t)
}

// Add accumulates another tally.
func (d *Delivery) Add(o Delivery) {
	d.Fast += o.Fast
	d.Buffered += o.Buffered
}

func (d Delivery) String() string {
	return fmt.Sprintf("fast=%d buffered=%d (%.2f%%)", d.Fast, d.Buffered, d.BufferedPct())
}

// HighWater tracks a maximum over time.
type HighWater struct {
	Cur int
	Max int
}

// Set updates the current level, advancing the maximum.
func (h *HighWater) Set(v int) {
	h.Cur = v
	if v > h.Max {
		h.Max = v
	}
}

// Add adjusts the current level by delta, clamping at zero — an over-release
// (more frees than allocations reached this counter) must not drive the
// level negative and poison every later reading. It returns the clamped
// level so callers can detect the underflow.
func (h *HighWater) Add(delta int) int {
	v := h.Cur + delta
	if v < 0 {
		v = 0
	}
	h.Set(v)
	return v
}

// Mean is a streaming average with spread, accumulated via Welford's online
// algorithm so a single pass yields mean and variance without catastrophic
// cancellation.
type Mean struct {
	Sum   float64
	Count uint64

	mean float64 // running mean (Welford)
	m2   float64 // sum of squared deviations from the running mean
}

// Observe adds a sample.
func (m *Mean) Observe(v float64) {
	m.Sum += v
	m.Count++
	d := v - m.mean
	m.mean += d / float64(m.Count)
	m.m2 += d * (v - m.mean)
}

// Value returns the mean, or 0 with no samples.
func (m *Mean) Value() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// Variance returns the population variance, 0 with fewer than two samples.
func (m *Mean) Variance() float64 {
	if m.Count < 2 {
		return 0
	}
	return m.m2 / float64(m.Count)
}

// StdDev returns the population standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }
