// Package trace is the simulator's structured event log: a bounded ring of
// timestamped events with per-category enables. The kernel records
// delivery-mode transitions, revocations, context switches and overflow
// events through it, so a surprising run can be replayed and inspected
// (`fugusim trace` exports it as a Chrome trace_event timeline or JSONL).
package trace

import (
	"fmt"
	"strings"
)

// Category classifies events; categories are enabled independently.
type Category int

// Event categories.
const (
	Mode     Category = iota // buffered-mode entry/exit, revocation
	Sched                    // context switches, gang ticks
	Overflow                 // overflow-control trips and releases
	Message                  // per-message events (very verbose)
	Span                     // message-lifecycle span events (very verbose)
	numCategories
)

func (c Category) String() string {
	switch c {
	case Mode:
		return "mode"
	case Sched:
		return "sched"
	case Overflow:
		return "overflow"
	case Message:
		return "message"
	case Span:
		return "span"
	default:
		return fmt.Sprintf("cat(%d)", int(c))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At   uint64
	Node int
	Cat  Category
	What string
}

func (e Event) String() string {
	return fmt.Sprintf("t=%-10d node%d %-8s %s", e.At, e.Node, e.Cat, e.What)
}

// Log is a bounded ring of events. The zero value is a disabled log; use
// New to size and enable one.
type Log struct {
	enabled [numCategories]bool
	ring    []Event
	next    int
	total   uint64
	full    bool
}

// New returns a log holding the last cap events, with no categories
// enabled yet.
func New(cap int) *Log {
	if cap < 1 {
		cap = 1
	}
	return &Log{ring: make([]Event, 0, cap)}
}

// Enable turns recording on for the categories.
func (l *Log) Enable(cats ...Category) {
	for _, c := range cats {
		l.enabled[c] = true
	}
}

// EnableAll turns every category on.
func (l *Log) EnableAll() {
	for i := range l.enabled {
		l.enabled[i] = true
	}
}

// Enabled reports whether a category records. A nil log records nothing,
// so call sites can trace unconditionally.
func (l *Log) Enabled(c Category) bool {
	return l != nil && l.enabled[c]
}

// Add records an event if its category is enabled.
func (l *Log) Add(at uint64, node int, cat Category, format string, args ...any) {
	if !l.Enabled(cat) {
		return
	}
	ev := Event{At: at, Node: node, Cat: cat, What: fmt.Sprintf(format, args...)}
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
		return
	}
	l.full = true
	l.ring[l.next] = ev
	l.next = (l.next + 1) % cap(l.ring)
}

// Total reports how many events were recorded over the log's lifetime
// (including ones the ring has since dropped).
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.total
}

// Events returns the retained events in chronological order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	if !l.full {
		out := make([]Event, len(l.ring))
		copy(out, l.ring)
		return out
	}
	out := make([]Event, 0, cap(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Dump renders the retained events, newest last.
func (l *Log) Dump() string {
	evs := l.Events()
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if l != nil && l.total > uint64(len(evs)) {
		fmt.Fprintf(&b, "(%d earlier events dropped)\n", l.total-uint64(len(evs)))
	}
	return b.String()
}
