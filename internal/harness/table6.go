package harness

import (
	"context"
	"fmt"
	"io"

	"fugu/internal/plot"
)

// Table6Paper holds the paper's published characterization for comparison.
var Table6Paper = map[string]struct {
	Cycles string
	Msgs   string
	TBetw  string
	THand  string
}{
	"barnes":  {"45.7M", "107,849", "3390", "337"},
	"water":   {"47.6M", "36,303", "10,500", "419"},
	"lu":      {"13.4M", "7,564", "14,200", "478"},
	"barrier": {"18.5M", "240,177", "615", "149"},
	"enum":    {"72.7M", "610,148", "953", "320"},
}

// Table6Result is the measured application characterization.
type Table6Result struct {
	Rows []RunStats
}

// Table6 runs every application standalone on eight nodes and reports the
// paper's characterization columns.
func Table6(opts ...Option) (Table6Result, error) {
	return runAs[Table6Result]("table6", opts...)
}

// table6Experiment fans out one point per (application, trial) pair.
func table6Experiment() *Experiment {
	return &Experiment{
		Name:        "table6",
		Description: "application characteristics, standalone on 8 nodes",
		Points: func(opt Options) []Point {
			var pts []Point
			for _, mk := range AppMakers(opt.Quick) {
				mk := mk
				name := mk().Name()
				for trial := 0; trial < opt.trials(); trial++ {
					trial := trial
					pts = append(pts, Point{
						Label: fmt.Sprintf("%s trial=%d", name, trial),
						Run: func(_ context.Context, opt Options) (any, error) {
							return RunStandaloneMut(mk, opt.TrialSeed(trial), opt.machineMut(nil)), nil
						},
					})
				}
			}
			return pts
		},
		Assemble: func(opt Options, results []any) (Result, error) {
			var res Table6Result
			for _, group := range groupTrials(results, opt.trials()) {
				res.Rows = append(res.Rows, averageStats(group))
			}
			return res, nil
		},
	}
}

// groupTrials slices a flat index-keyed result list into consecutive
// trial groups of the given size, converting each entry to RunStats.
func groupTrials(results []any, trials int) [][]RunStats {
	var groups [][]RunStats
	for i := 0; i < len(results); i += trials {
		runs := make([]RunStats, 0, trials)
		for _, r := range results[i : i+trials] {
			runs = append(runs, r.(RunStats))
		}
		groups = append(groups, runs)
	}
	return groups
}

// Print renders the table with the paper's values interleaved.
func (r Table6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 6: application characteristics, standalone on 8 nodes")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		p := Table6Paper[row.App]
		rows = append(rows, []string{
			row.App, row.Model,
			mcyc(row.Runtime), p.Cycles,
			u(row.Msgs), p.Msgs,
			f1(row.TBetw), p.TBetw,
			f1(row.THand), p.THand,
		})
		if row.Err != nil {
			rows = append(rows, []string{"", "", "", "", "", "", "", "", "CHECK FAILED:", row.Err.Error()})
		}
	}
	fmt.Fprintln(w, plot.Table(
		[]string{"App", "Model", "Cycles", "(paper)", "Msgs", "(paper)", "T_betw", "(paper)", "T_hand", "(paper)"},
		rows))
	fmt.Fprintln(w, "note: sizes differ in quick mode and enum runs 5 pegs/side (DESIGN.md);")
	fmt.Fprintln(w, "compare shapes (orderings, ratios), not absolute values.")
}
