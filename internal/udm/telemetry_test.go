package udm

import (
	"fmt"
	"strings"
	"testing"

	"fugu/internal/cpu"
	"fugu/internal/delivery"
	"fugu/internal/glaze"
	"fugu/internal/telemetry"
)

// TestDiagnoseTimelineAllPolicies exercises the watchdog's diagnostic report
// with the flight recorder attached under every registered delivery policy:
// the report must carry a timeline section whose tail shows the run's
// delivery activity, and the recorder's totals must reconcile with the
// interval deltas regardless of which delivery mechanism moved the messages.
func TestDiagnoseTimelineAllPolicies(t *testing.T) {
	for _, name := range delivery.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := delivery.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			rec := telemetry.NewRecorder(telemetry.Config{Every: 2_000})
			m, job, eps := testMachine(t, func(cfg *glaze.Config) {
				cfg.Delivery = pol
				cfg.Telemetry = rec
			})
			const N = 40
			got := 0
			eps[1].On(1, func(e *Env, msg *Msg) { got++ })
			job.Process(0).StartMain(func(tk *cpu.Task) {
				e := eps[0].Env(tk)
				for i := 0; i < N; i++ {
					e.Inject(1, 1, uint64(i))
					tk.Spend(500)
				}
			})
			job.Process(1).StartMain(func(tk *cpu.Task) {
				for got < N {
					tk.Spend(1_000)
				}
			})
			m.RunUntilDone(0, job)
			if got != N {
				t.Fatalf("delivered %d/%d under %s", got, N, name)
			}

			rep := m.Diagnose("test probe")
			text := rep.String()
			if !strings.Contains(text, "timeline (last ") {
				t.Fatalf("%s: Diagnose report lacks the flight-recorder section:\n%s", name, text)
			}
			if !strings.Contains(text, "every 2000 cycles") {
				t.Errorf("%s: timeline section does not state the sampling interval", name)
			}
			if !strings.Contains(text, "modes=") {
				t.Errorf("%s: timeline rows lack per-node mode glyphs", name)
			}

			tl := m.FinishTelemetry()
			if tl.Empty() {
				t.Fatalf("%s: finished timeline is empty", name)
			}
			sums := tl.SumCounters()
			deliveries := sums["glaze.deliver.fast"] + sums["glaze.deliver.buffered"]
			if deliveries != N {
				t.Errorf("%s: timeline deltas account for %d deliveries, want %d", name, deliveries, N)
			}
			for cname, want := range tl.Totals.Counters {
				if sums[cname] != want {
					t.Errorf("%s: counter %s deltas sum to %d, totals say %d", name, cname, sums[cname], want)
				}
			}
		})
	}
}

// TestDiagnoseWithoutTelemetry: a machine with no recorder must still
// diagnose cleanly — the timeline section is simply absent.
func TestDiagnoseWithoutTelemetry(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	eps[1].On(1, func(e *Env, msg *Msg) {})
	job.Process(0).StartMain(func(tk *cpu.Task) { eps[0].Env(tk).Inject(1, 1) })
	job.Process(1).StartMain(func(tk *cpu.Task) { tk.Spend(1_000) })
	m.RunUntilDone(0, job)
	rep := m.Diagnose(fmt.Sprintf("probe at t=%d", m.Eng.Now()))
	if strings.Contains(rep.String(), "timeline (last ") {
		t.Error("report carries a timeline section with no recorder installed")
	}
}
