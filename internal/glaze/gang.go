package glaze

import (
	"fugu/internal/metrics"
	"fugu/internal/sim"
)

// Gang is the system scheduler: loose gang scheduling driven by each node's
// local cycle counter, as in the paper (a user-level server with
// synchronized-but-skewable clocks). Every node cycles through the same slot
// list; slot switches on node i are offset by a per-node skew, which opens
// the mis-scheduling windows the experiments of Section 5 exploit.
type Gang struct {
	m       *Machine
	quantum uint64
	skew    float64 // fraction of the quantum by which node clocks differ

	slots   []*Job   // nil entries are null slots
	idx     []int    // per-node current slot index
	tickFns []func() // per-node tick closures, built once so requeueing never allocates

	preferred *Job // overflow-control advice: co-schedule this job

	started bool
	// Statistics.
	Switches uint64

	// Occupancy instruments: total slot ticks vs ticks that ran the null
	// slot. scheduled/(scheduled+null) is the gang occupancy fraction.
	mTicks     *metrics.Counter
	mTicksNull *metrics.Counter
}

// NewGang configures the scheduler. skew is the experiment knob: node i's
// switch times lag node 0's by skew*quantum*i/(n-1) cycles (zero for a
// single node).
func (m *Machine) NewGang(quantum uint64, skew float64, slots ...*Job) *Gang {
	g := &Gang{
		m:       m,
		quantum: quantum,
		skew:    skew,
		slots:   slots,
		idx:     make([]int, m.Net.Nodes()),
	}
	g.mTicks = m.Metrics.Counter("gang.ticks")
	g.mTicksNull = m.Metrics.Counter("gang.ticks.null")
	m.Gang = g
	return g
}

// Quantum returns the timeslice length in cycles.
func (g *Gang) Quantum() uint64 { return g.quantum }

// offset returns node i's clock skew in cycles.
func (g *Gang) offset(node int) uint64 {
	n := g.m.Net.Nodes()
	if n <= 1 {
		return 0
	}
	return uint64(g.skew * float64(g.quantum) * float64(node) / float64(n-1))
}

// Start begins scheduling: each node switches into slot 0 at its skew
// offset and every quantum thereafter. The first slot's processes run from
// their node's first switch.
func (g *Gang) Start() {
	if g.started {
		panic("glaze: gang scheduler started twice")
	}
	g.started = true
	g.tickFns = make([]func(), g.m.Net.Nodes())
	for node := 0; node < g.m.Net.Nodes(); node++ {
		node := node
		g.idx[node] = -1
		g.tickFns[node] = func() { g.tick(node) }
		g.m.Eng.ScheduleSite(siteGang, g.offset(node), g.tickFns[node])
	}
}

// siteGang labels gang-scheduler quantum ticks for the cost profiler.
var siteGang = sim.NewSite("glaze.gang.tick")

// tick advances node to its next slot and reschedules itself.
func (g *Gang) tick(node int) {
	if g.m.Eng.Stopped() {
		return
	}
	g.idx[node] = (g.idx[node] + 1) % len(g.slots)
	target := g.slots[g.idx[node]]
	if g.preferred != nil {
		// Overflow-control advice: co-schedule the draining job. Its
		// senders are throttled, but the message-handling activity must
		// run or the backlog can never clear.
		target = g.preferred
	} else if target != nil && target.overflowed {
		target = nil // globally suspended with no drain advice: null slot
	}
	k := g.m.Nodes[node].Kernel
	var p *Process
	if target != nil {
		p = target.procs[node]
	}
	k.switchTarget = p
	k.switchValid = true
	k.gangIRQ.Raise()
	g.Switches++
	g.mTicks.Inc()
	if p == nil {
		g.mTicksNull.Inc()
	}
	// A gang-skew fault widens this node's mis-scheduling window by
	// delaying its next tick.
	g.m.Eng.ScheduleSite(siteGang, g.quantum+g.m.Faults.GangSkew(node), g.tickFns[node])
}

// Prefer advises the scheduler to co-schedule job (overflow control).
func (g *Gang) Prefer(job *Job) { g.preferred = job }

// Unprefer withdraws the advice.
func (g *Gang) Unprefer(job *Job) {
	if g.preferred == job {
		g.preferred = nil
	}
}
