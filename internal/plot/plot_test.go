package plot

import (
	"strings"
	"testing"
)

func TestLineBasics(t *testing.T) {
	out := Line("title", "x", "y", []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 5, 10}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{10, 5, 0}},
	}, 40, 10)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Error("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing data markers")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("output too short: %d lines", len(lines))
	}
}

func TestLineNoData(t *testing.T) {
	out := Line("empty", "x", "y", nil, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestLineSinglePoint(t *testing.T) {
	out := Line("one", "x", "y", []Series{{Name: "s", X: []float64{5}, Y: []float64{7}}}, 30, 8)
	if !strings.Contains(out, "*") {
		t.Error("single point not plotted")
	}
}

func TestLineClampsTinyDimensions(t *testing.T) {
	out := Line("tiny", "x", "y", []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}}, 1, 1)
	if len(out) == 0 {
		t.Error("no output for tiny raster")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "22222"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	// All rows must be padded to the same column starts.
	h := strings.Index(lines[0], "value")
	for _, l := range lines[2:] {
		if len(l) < h {
			t.Errorf("row %q shorter than header columns", l)
		}
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("missing separator row")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "a,b\n1,2\n3,4\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}
