package faultinject

// Injector executes a Plan against one machine. It is bound to the
// machine's clock (BindClock) so window checks read simulated time, and it
// owns a private PCG stream seeded from the plan, so probability draws
// never touch the engine RNG. Build one Injector per machine: the PCG
// state mutates, so sharing one across concurrently-running machines would
// race and break determinism.
//
// Every hook method is nil-safe: a nil *Injector reports "no fault"
// without allocating, so the simulator's hot paths call hooks
// unconditionally, exactly like the nil instruments of internal/metrics.
type Injector struct {
	plan  Plan
	rng   pcg
	nowFn func() uint64

	counts [NumKinds]uint64
	// windowOn latches the window kinds so each activation counts once,
	// not once per query.
	windowOn [NumKinds]bool
}

// New builds an injector for a copy of the plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan, rng: newPCG(plan.Seed)}
}

// BindClock installs the simulated-time source the window checks use.
// glaze.NewMachine binds the engine's Now; before binding, time reads as 0.
func (in *Injector) BindClock(now func() uint64) {
	if in == nil {
		return
	}
	in.nowFn = now
}

func (in *Injector) now() uint64 {
	if in.nowFn == nil {
		return 0
	}
	return in.nowFn()
}

// Plan returns the plan this injector executes.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// draw fires a probability-kind spec: if armed and applicable it consumes
// one PCG draw and reports (Cycles, true) with probability Prob.
func (in *Injector) draw(k Kind, node int) (uint64, bool) {
	if in == nil {
		return 0, false
	}
	s := &in.plan.Specs[k]
	if s.Prob <= 0 || !s.appliesTo(node, in.now()) {
		return 0, false
	}
	if in.rng.float64() >= s.Prob {
		return 0, false
	}
	in.counts[k]++
	return s.Cycles, true
}

// window evaluates a level-condition spec, counting each activation once.
func (in *Injector) window(k Kind, node int) (uint64, bool) {
	if in == nil {
		return 0, false
	}
	s := &in.plan.Specs[k]
	if !s.armed(k) || !s.appliesTo(node, in.now()) {
		in.windowOn[k] = false
		return 0, false
	}
	if !in.windowOn[k] {
		in.windowOn[k] = true
		in.counts[k]++
	}
	return s.Cycles, true
}

// ---------------------------------------------------------------------------
// Hooks, one per injection site.

// SendDelay returns extra network latency for a packet from src to dst:
// a link stall at the sender plus hot-spot congestion at the receiver.
// The mesh applies it to the main network only — the OS network keeps its
// deadlock-free guarantee.
func (in *Injector) SendDelay(src, dst int) uint64 {
	if in == nil {
		return 0
	}
	stall, _ := in.draw(LinkStall, src)
	hot, _ := in.draw(HotSpot, dst)
	return stall + hot
}

// ForceMismatch reports whether an arriving user packet at node should be
// marked GID-mismatched, diverting it onto the buffered path.
func (in *Injector) ForceMismatch(node int) bool {
	_, ok := in.draw(GIDMismatch, node)
	return ok
}

// ForceTimeout reports whether a user packet's arrival at node should fire
// the atomicity-timeout interrupt. The kernel's timeout ISR already
// tolerates spurious raises (no resident process, or mode already
// shifted), so the hook models a hair-trigger timer safely.
func (in *Injector) ForceTimeout(node int) bool {
	_, ok := in.draw(AtomicityTimeout, node)
	return ok
}

// HandlerFault reports whether this handler dispatch at node should take a
// synthetic page fault (glaze.Kernel.SyntheticHandlerFault).
func (in *Injector) HandlerFault(node int) bool {
	_, ok := in.draw(HandlerPageFault, node)
	return ok
}

// QuantumExpiry reports whether the resident process at node should be
// preempted now, and for how many cycles, modelling a quantum boundary
// landing mid-handler.
func (in *Injector) QuantumExpiry(node int) (resumeAfter uint64, ok bool) {
	return in.draw(QuantumExpiry, node)
}

// DMAStall returns extra drain time for one output-buffer launch at node.
func (in *Injector) DMAStall(node int) uint64 {
	d, _ := in.draw(DMAStall, node)
	return d
}

// GangSkew returns extra delay before node's next gang-scheduler tick.
func (in *Injector) GangSkew(node int) uint64 {
	d, _ := in.draw(GangSkew, node)
	return d
}

// OutputClamp returns the space-available clamp (in words) while a
// TinyWindow spec is active at node.
func (in *Injector) OutputClamp(node int) (words int, ok bool) {
	c, ok := in.window(TinyWindow, node)
	return int(c), ok
}

// WithheldFrames returns how many frames the plan wants held out of node's
// pool right now (zero outside the FrameStarvation window).
func (in *Injector) WithheldFrames(node int) int {
	c, _ := in.window(FrameStarvation, node)
	return int(c)
}

// ---------------------------------------------------------------------------
// Accounting

// Count returns how many times kind k fired (window kinds count one per
// activation, not per query).
func (in *Injector) Count(k Kind) uint64 {
	if in == nil {
		return 0
	}
	return in.counts[k]
}

// Counts returns the per-kind fire counts.
func (in *Injector) Counts() [NumKinds]uint64 {
	if in == nil {
		return [NumKinds]uint64{}
	}
	return in.counts
}

// Total returns the total fires across all kinds.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	var t uint64
	for _, c := range in.counts {
		t += c
	}
	return t
}
