package glaze

import (
	"fmt"

	"fugu/internal/cpu"
	"fugu/internal/delivery"
	"fugu/internal/faultinject"
	"fugu/internal/mesh"
	"fugu/internal/metrics"
	"fugu/internal/nic"
	"fugu/internal/sim"
	"fugu/internal/spans"
	"fugu/internal/telemetry"
	"fugu/internal/trace"
	"fugu/internal/vm"
)

// Config parameterizes a simulated FUGU machine.
type Config struct {
	W, H          int // mesh dimensions
	Seed          uint64
	Cost          CostModel
	NIConfig      nic.Config
	Latency       mesh.LatencyModel
	FramesPerNode int

	// Partitions shards the event engine: nodes spread across N partition
	// engines (each with its own heap and event pool) driven as a merged
	// group — one shared clock, sequence counter and RNG, with the global
	// (time, seq) minimum popped across shards. Execution order is exactly
	// the serial engine's, so results are byte-identical for any value;
	// 0 or 1 means one standalone engine (today's serial hot path,
	// untouched). Glaze machines use merged mode, not parallel windows,
	// because the model has zero-latency cross-node state (gang decisions,
	// job counters, shared recorders) that no lookahead window can make
	// safe; see DESIGN.md.
	Partitions int

	// Delivery selects the receive-side delivery policy. Nil means
	// delivery.TwoCase{}, the paper's organization and the bit-exact
	// default; see the delivery package for the rivals.
	Delivery delivery.Policy

	// AlwaysBuffered disables the fast case entirely: every message is
	// delivered through the software buffer, the SUNMOS-style one-case
	// organization the paper contrasts against (ablation knob).
	AlwaysBuffered bool
	// NoBufferReclaim pins buffer pages: consumed pages are never returned
	// to the frame pool, modelling a pinned-buffer design against which
	// virtual buffering's physical-memory advantage is measured.
	NoBufferReclaim bool

	// Trace, when non-nil, is installed as the machine's event log. Enable
	// the categories of interest before running.
	Trace *trace.Log

	// Spans, when non-nil, records every message's lifecycle (injection,
	// arrival, buffer insertion, terminal disposal) for invariant checks
	// and liveness diagnostics. Recording charges no simulated cycles.
	Spans *spans.Recorder

	// Watchdog, when enabled (Interval > 0), periodically checks for
	// delivery progress and dumps a diagnostic report when the machine
	// wedges. See WatchdogConfig.
	Watchdog WatchdogConfig

	// Faults, when non-nil, arms a deterministic fault injector executing
	// the plan. The injector draws from its own PCG stream seeded by
	// Faults.Seed, so the engine RNG sequence — and therefore every
	// fault-free golden — is untouched even with a plan installed.
	Faults *faultinject.Plan

	// Telemetry, when non-nil, attaches the flight recorder: a sampler
	// event diffs the registry every recorder interval (simulated time).
	// Sampling charges no cycles and draws no RNG, so results are
	// bit-identical with or without it. A recorder is unsynchronized —
	// give each machine its own (the harness does).
	Telemetry *telemetry.Recorder

	// Profiler, when non-nil, attaches the engine cost profiler: every
	// dispatched event is attributed to its schedule site (mesh hop, NI
	// drain, gang tick, ...). Observation only — simulated results are
	// identical with or without it. A profiler is unsynchronized; pair it
	// with serial sweeps, like Trace and Spans.
	Profiler *sim.Profiler
}

// DefaultConfig returns the configuration the experiments use: eight nodes
// (4x2, as in the paper's simulated system), soft-atomicity costs and a
// 1024-frame (4 MB) pool per node.
func DefaultConfig() Config {
	return Config{
		W: 4, H: 2,
		Seed:          1,
		Cost:          Costs(SoftAtomicity),
		NIConfig:      nic.DefaultConfig(),
		Latency:       mesh.DefaultLatency(),
		FramesPerNode: 1024,
	}
}

// Node bundles one node's hardware and kernel.
type Node struct {
	Index  int
	CPU    *cpu.CPU
	NI     *nic.NI
	Frames *vm.Frames
	Kernel *Kernel

	// Metrics is the node's instrument registry: NI, kernel, delivery and
	// CRL instruments for this node record here.
	Metrics *metrics.Registry
}

// Machine is a simulated FUGU multiprocessor.
type Machine struct {
	Eng   *sim.Engine
	Net   *mesh.Net
	Nodes []*Node
	Gang  *Gang

	cost    CostModel
	nextGID nic.GID
	jobs    []*Job

	// policy is the receive-side delivery organization (never nil; TwoCase
	// by default).
	policy delivery.Policy

	alwaysBuffered bool
	noReclaim      bool

	// Trace is an optional event log; nil (the default) records nothing.
	// Enable categories before running: m.Trace = trace.New(4096);
	// m.Trace.Enable(trace.Mode, trace.Overflow).
	Trace *trace.Log

	// Spans is the optional message-lifecycle recorder (nil records
	// nothing); the watchdog installs one implicitly if enabled alone.
	Spans *spans.Recorder

	// Faults is the machine's fault injector, nil unless Config.Faults was
	// set. Each machine gets its own injector (the PCG state mutates).
	Faults *faultinject.Injector

	watchdog  *watchdog
	telemetry *telemetry.Recorder
	diags     []Diagnostic

	// group is the partition group when Config.Partitions > 1, nil for a
	// single standalone engine (Eng is then that engine; with a group, Eng
	// is shard 0 and running it drives the whole group).
	group *sim.Group

	// Metrics holds the machine-wide instruments (engine, mesh, gang
	// scheduler); per-node instruments live on each Node. MetricsSnapshot
	// merges all of them.
	Metrics *metrics.Registry
}

// NewMachine builds the machine: engine, mesh, per-node CPU, NI, frame pool
// and kernel, all wired together. Any options are applied over cfg first.
func NewMachine(cfg Config, opts ...ConfigOption) *Machine {
	for _, o := range opts {
		o(&cfg)
	}
	parts := cfg.Partitions
	if parts < 1 {
		parts = 1
	}
	if n := cfg.W * cfg.H; parts > n {
		parts = n
	}
	var eng *sim.Engine
	var group *sim.Group
	if parts > 1 {
		group = sim.NewMergedGroup(cfg.Seed, parts)
		eng = group.Shard(0)
	} else {
		eng = sim.NewEngine(cfg.Seed)
	}
	if cfg.Watchdog.Enabled() && cfg.Spans == nil {
		// The watchdog's progress fingerprint and report need a recorder.
		cfg.Spans = spans.NewRecorder(cfg.Trace)
	}
	if cfg.Delivery == nil {
		cfg.Delivery = delivery.TwoCase{}
	}
	if cfg.AlwaysBuffered && !cfg.Delivery.KernelBuffered() {
		panic(fmt.Sprintf("glaze: AlwaysBuffered requires a kernel-buffered delivery policy, not %q", cfg.Delivery.Name()))
	}
	m := &Machine{
		Eng:            eng,
		Net:            mesh.New(eng, cfg.W, cfg.H, cfg.Latency),
		cost:           cfg.Cost,
		nextGID:        1,
		policy:         cfg.Delivery,
		alwaysBuffered: cfg.AlwaysBuffered,
		noReclaim:      cfg.NoBufferReclaim,
		Trace:          cfg.Trace,
		Spans:          cfg.Spans,
		Metrics:        metrics.NewRegistry(),
		group:          group,
	}
	// Every shard binds the same registry (and profiler): the counters are
	// shared instances, and merged-mode execution is serial in global time
	// order, so the totals — and the profiler's per-site cycle attribution
	// — are identical to the single-engine run.
	for _, sh := range m.shardEngines() {
		sh.UseMetrics(m.Metrics)
		if cfg.Profiler != nil {
			sh.UseProfiler(cfg.Profiler)
		}
	}
	m.Net.UseMetrics(m.Metrics)
	if cfg.Faults != nil {
		m.Faults = faultinject.New(*cfg.Faults)
		m.Faults.BindClock(eng.Now)
		m.Net.UseFaults(m.Faults)
	}
	if m.Spans != nil {
		m.Spans.AttachMachine()
		m.Spans.SetPolicy(m.policy.Name())
		m.Net.UseSpans(m.Spans)
	}
	n := cfg.W * cfg.H
	if group != nil {
		// Nodes spread across partitions in contiguous runs; the mesh
		// schedules each node's events (packet deliveries) on its shard.
		perNode := make([]*sim.Engine, n)
		for i := 0; i < n; i++ {
			perNode[i] = group.Shard(i * parts / n)
		}
		m.Net.ShardEngines(perNode)
	}
	m.Nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		neng := m.engFor(i)
		node := &Node{
			Index:   i,
			CPU:     cpu.New(neng, fmt.Sprintf("cpu%d", i)),
			Frames:  vm.NewFrames(cfg.FramesPerNode),
			Metrics: metrics.NewRegistry(),
		}
		node.NI = nic.New(neng, m.Net, i, cfg.NIConfig)
		node.NI.AttachCPU(node.CPU)
		node.NI.UseMetrics(node.Metrics)
		if m.Faults != nil {
			node.NI.UseFaults(m.Faults)
		}
		if m.Spans != nil {
			node.NI.UseSpans(m.Spans)
		}
		m.Nodes[i] = node
	}
	for i := 0; i < n; i++ {
		m.Nodes[i].Kernel = newKernel(m, i)
	}
	if cfg.Watchdog.Enabled() {
		m.watchdog = newWatchdog(m, cfg.Watchdog)
	}
	if cfg.Telemetry != nil {
		m.telemetry = cfg.Telemetry
		m.telemetry.AttachMachine()
		newSampler(m, m.telemetry)
	}
	return m
}

// Diagnostic lets a higher-level subsystem (e.g. the CRL coherence layer)
// contribute protocol state and waits-for edges to liveness reports
// without glaze depending on it.
type Diagnostic interface {
	// DiagSections renders the subsystem's state at time at.
	DiagSections(at uint64) []spans.Section
	// WaitEdges reports the subsystem's current waits-for edges.
	WaitEdges() []spans.WaitEdge
}

// RegisterDiag adds a diagnostic provider consulted by Diagnose.
func (m *Machine) RegisterDiag(d Diagnostic) { m.diags = append(m.diags, d) }

// WatchdogReport returns the liveness report if the watchdog fired, else
// nil. The report is also attached to the span recorder.
func (m *Machine) WatchdogReport() *spans.Report {
	if m.watchdog == nil {
		return nil
	}
	return m.watchdog.report
}

// Group returns the machine's partition group, nil when running on one
// standalone engine (Partitions <= 1).
func (m *Machine) Group() *sim.Group { return m.group }

// engFor returns the engine owning a node's events.
func (m *Machine) engFor(node int) *sim.Engine {
	if m.group == nil {
		return m.Eng
	}
	return m.group.Shard(node * m.group.Parts() / len(m.Nodes))
}

// shardEngines returns every engine of the machine: the one standalone
// engine, or all partition shards.
func (m *Machine) shardEngines() []*sim.Engine {
	if m.group == nil {
		return []*sim.Engine{m.Eng}
	}
	engs := make([]*sim.Engine, m.group.Parts())
	for i := range engs {
		engs[i] = m.group.Shard(i)
	}
	return engs
}

// Cost returns the machine's cost model.
func (m *Machine) Cost() CostModel { return m.cost }

// Policy returns the machine's delivery policy (never nil).
func (m *Machine) Policy() delivery.Policy { return m.policy }

// MetricsSnapshot merges the machine-wide and every node's registry into one
// snapshot: counters and histogram contents sum across nodes; gauge maxima
// report the worst single node (per-node high-water semantics).
func (m *Machine) MetricsSnapshot() metrics.Snapshot {
	parts := make([]metrics.Snapshot, 0, len(m.Nodes)+1)
	parts = append(parts, m.Metrics.Snapshot())
	for _, node := range m.Nodes {
		parts = append(parts, node.Metrics.Snapshot())
	}
	return metrics.Merge(parts...)
}

// NewJob creates a gang-scheduled job with one process per node.
func (m *Machine) NewJob(name string) *Job {
	j := &Job{m: m, name: name, gid: m.nextGID}
	m.nextGID++
	if m.nextGID >= nullGID {
		panic("glaze: GID space exhausted")
	}
	j.procs = make([]*Process, len(m.Nodes))
	for i, node := range m.Nodes {
		p := newProcess(node.Kernel, j, j.gid)
		node.Kernel.procs[j.gid] = p
		j.procs[i] = p
	}
	m.jobs = append(m.jobs, j)
	return j
}

// Jobs returns every job created on the machine.
func (m *Machine) Jobs() []*Job { return m.jobs }

// RunUntilDone starts the engine and stops it once every listed job
// completes (or the optional cycle limit is hit; 0 means none). It returns
// the stop time.
func (m *Machine) RunUntilDone(limit uint64, jobs ...*Job) uint64 {
	remaining := 0
	for _, j := range jobs {
		if !j.Done() {
			remaining++
			j.OnDone(func() {
				remaining--
				if remaining == 0 {
					m.Eng.Stop()
				}
			})
		}
	}
	if remaining == 0 {
		return m.Eng.Now()
	}
	if limit != 0 {
		return m.Eng.RunUntil(m.Eng.Now() + limit)
	}
	return m.Eng.Run()
}
