package glaze

import (
	"strings"
	"testing"

	"fugu/internal/cpu"
)

// TestWatchdogFiresOnStall: a main blocked on a wait queue nobody wakes
// makes no delivery progress; the watchdog must stop the run with a report
// instead of letting RunUntilDone burn its whole cycle budget.
func TestWatchdogFiresOnStall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 2, 1
	cfg.Watchdog = WatchdogConfig{Interval: 10_000, Grace: 2}
	m := NewMachine(cfg)
	job := m.NewJob("stall")
	q := cpu.NewWaitQ("never")
	job.Process(0).StartMain(func(tk *cpu.Task) {
		q.Wait(tk) // woken by nobody
	})
	job.Process(1).StartMain(func(tk *cpu.Task) {
		tk.Spend(100)
	})
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(100_000_000, job)

	if job.Done() {
		t.Fatal("stalled job reported done")
	}
	rep := m.WatchdogReport()
	if rep == nil {
		t.Fatal("watchdog did not fire on a stalled run")
	}
	if !strings.Contains(rep.Reason, "no delivery progress") {
		t.Errorf("reason = %q", rep.Reason)
	}
	if s := rep.String(); !strings.Contains(s, "blocked") {
		t.Errorf("report does not show the blocked task:\n%s", s)
	}
	if now := m.Eng.Now(); now >= 100_000_000 {
		t.Errorf("engine ran to the full budget (t=%d); watchdog should have stopped it", now)
	}
}

// TestWatchdogQuietOnHealthyRun: a run that completes must not fire, and
// the watchdog must stop rescheduling itself so the event queue drains.
// Grace covers the 50k-cycle message-free compute phase (see the
// WatchdogConfig false-positive caveat: Interval*Grace must exceed it).
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 2, 1
	cfg.Watchdog = WatchdogConfig{Interval: 10_000, Grace: 10}
	m := NewMachine(cfg)
	job := m.NewJob("healthy")
	for n := 0; n < 2; n++ {
		job.Process(n).StartMain(func(tk *cpu.Task) {
			tk.Spend(50_000)
		})
	}
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(100_000_000, job)
	if !job.Done() {
		t.Fatal("healthy job did not finish")
	}
	if rep := m.WatchdogReport(); rep != nil {
		t.Fatalf("watchdog fired on a healthy run:\n%s", rep.String())
	}
}

// TestWatchdogImplicitRecorder: enabling only the watchdog must install a
// span recorder (the fingerprint needs one).
func TestWatchdogImplicitRecorder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 2, 1
	cfg.Watchdog = WatchdogConfig{Interval: 10_000, Grace: 2}
	m := NewMachine(cfg)
	if m.Spans == nil {
		t.Fatal("watchdog enabled but no span recorder installed")
	}
}
