package apps

import (
	"math"

	"fugu/internal/cpu"
	"fugu/internal/crl"
	"fugu/internal/glaze"
)

// LU is the SPLASH blocked dense LU decomposition on CRL regions, as in the
// paper (250×250 matrix in 10×10 blocks). Each block is one CRL region
// homed on its computational owner; the right-looking factorization reads
// pivot blocks through CRL (the coherence misses are the communication) and
// synchronizes between phases with dissemination barriers.
type LU struct {
	N, B int // matrix and block dimension (N divisible by B)

	nb    int
	orig  []float64 // original matrix, for verification
	nodes []*crl.Node
	rig   *Rig
}

// NewLU configures an N×N decomposition in B×B blocks without pivoting (the
// generated matrix is made diagonally dominant, as SPLASH LU assumes).
func NewLU(n, b int) *LU {
	if n%b != 0 {
		panic("apps: LU size must be divisible by block size")
	}
	return &LU{N: n, B: b, nb: n / b}
}

// Name implements Instance.
func (l *LU) Name() string { return "lu" }

// Model implements Instance.
func (l *LU) Model() string { return "CRL" }

// block region id for block row I, column J.
func (l *LU) rid(i, j int) crl.RegionID { return crl.RegionID(i*l.nb + j) }

// owner of a block is its region's home node.
func (l *LU) owner(i, j int, nodes int) int { return int(l.rid(i, j)) % nodes }

// generate fills the source matrix deterministically: uniform entries with
// a dominant diagonal so factoring needs no pivoting.
func (l *LU) generate() {
	l.orig = make([]float64, l.N*l.N)
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%1000) / 1000.0
	}
	for i := 0; i < l.N; i++ {
		for j := 0; j < l.N; j++ {
			v := next()
			if i == j {
				v += float64(l.N)
			}
			l.orig[i*l.N+j] = v
		}
	}
}

// Per-flop cycle cost for the numeric kernels.
const luFlopCost = 1

// Start implements Instance.
func (l *LU) Start(m *glaze.Machine, job *glaze.Job) {
	l.rig = NewRig(m, job)
	n := l.rig.Nodes()
	l.generate()
	l.nodes = make([]*crl.Node, n)
	for i := 0; i < n; i++ {
		l.nodes[i] = crl.New(l.rig.EPs[i], n)
	}
	for node := 0; node < n; node++ {
		node := node
		bar := NewBarrier(l.rig.EPs[node], n)
		job.Process(node).StartMain(func(t *cpu.Task) { l.main(t, node, n, bar) })
	}
}

// main is the per-node worker.
func (l *LU) main(t *cpu.Task, self, nodes int, bar *Barrier) {
	c := l.nodes[self]
	B, nb := l.B, l.nb

	// Phase 0: every node creates and initializes its own blocks.
	blocks := make(map[[2]int]*crl.Region)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			if l.owner(i, j, nodes) != self {
				continue
			}
			rg := c.Create(l.rid(i, j), B*B)
			c.StartWrite(t, rg)
			for r := 0; r < B; r++ {
				for q := 0; q < B; q++ {
					rg.Write(r*B+q, math.Float64bits(l.orig[(i*B+r)*l.N+j*B+q]))
				}
			}
			c.EndWrite(t, rg)
			blocks[[2]int{i, j}] = rg
		}
	}
	bar.Wait(t)

	// mapAt returns the local mapping of any block.
	mapAt := func(i, j int) *crl.Region { return c.Map(l.rid(i, j), B*B) }
	get := func(rg *crl.Region, r, q int) float64 { return math.Float64frombits(rg.Read(r*B + q)) }
	put := func(rg *crl.Region, r, q int, v float64) { rg.Write(r*B+q, math.Float64bits(v)) }

	for k := 0; k < nb; k++ {
		// Factor the diagonal block (its owner only).
		if l.owner(k, k, nodes) == self {
			rg := blocks[[2]int{k, k}]
			c.StartWrite(t, rg)
			for p := 0; p < B; p++ {
				piv := get(rg, p, p)
				for r := p + 1; r < B; r++ {
					m := get(rg, r, p) / piv
					put(rg, r, p, m)
					for q := p + 1; q < B; q++ {
						put(rg, r, q, get(rg, r, q)-m*get(rg, p, q))
					}
				}
			}
			c.EndWrite(t, rg)
			t.Spend(2 * uint64(B*B*B) / 3 * luFlopCost)
		}
		bar.Wait(t)

		// Panel updates: row k right of the pivot and column k below it.
		diag := mapAt(k, k)
		for j := k + 1; j < nb; j++ {
			if l.owner(k, j, nodes) != self {
				continue
			}
			rg := blocks[[2]int{k, j}]
			c.StartRead(t, diag)
			c.StartWrite(t, rg)
			// Forward-substitute: A[k][j] := L(kk)^-1 * A[k][j].
			for q := 0; q < B; q++ {
				for r := 1; r < B; r++ {
					v := get(rg, r, q)
					for p := 0; p < r; p++ {
						v -= get(diag, r, p) * get(rg, p, q)
					}
					put(rg, r, q, v)
				}
			}
			c.EndWrite(t, rg)
			c.EndRead(t, diag)
			t.Spend(uint64(B*B*B) * luFlopCost)
		}
		for i := k + 1; i < nb; i++ {
			if l.owner(i, k, nodes) != self {
				continue
			}
			rg := blocks[[2]int{i, k}]
			c.StartRead(t, diag)
			c.StartWrite(t, rg)
			// A[i][k] := A[i][k] * U(kk)^-1.
			for r := 0; r < B; r++ {
				for q := 0; q < B; q++ {
					v := get(rg, r, q)
					for p := 0; p < q; p++ {
						v -= get(rg, r, p) * get(diag, p, q)
					}
					put(rg, r, q, v/get(diag, q, q))
				}
			}
			c.EndWrite(t, rg)
			c.EndRead(t, diag)
			t.Spend(uint64(B*B*B) * luFlopCost)
		}
		bar.Wait(t)

		// Trailing submatrix update.
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				if l.owner(i, j, nodes) != self {
					continue
				}
				rg := blocks[[2]int{i, j}]
				left := mapAt(i, k)
				up := mapAt(k, j)
				c.StartRead(t, left)
				c.StartRead(t, up)
				c.StartWrite(t, rg)
				for r := 0; r < B; r++ {
					for q := 0; q < B; q++ {
						v := get(rg, r, q)
						for p := 0; p < B; p++ {
							v -= get(left, r, p) * get(up, p, q)
						}
						put(rg, r, q, v)
					}
				}
				c.EndWrite(t, rg)
				c.EndRead(t, up)
				c.EndRead(t, left)
				t.Spend(2 * uint64(B*B*B) * luFlopCost)
			}
		}
		bar.Wait(t)
	}
}

// Check implements Instance: reconstruct L·U from the factored blocks and
// compare against the original matrix.
func (l *LU) Check() error {
	N, B, nb := l.N, l.B, l.nb
	nodes := len(l.nodes)
	// Assemble the factored matrix from the home copies.
	f := make([]float64, N*N)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			home := l.owner(i, j, nodes)
			data := l.nodes[home].HomeData(l.rid(i, j))
			for r := 0; r < B; r++ {
				for q := 0; q < B; q++ {
					f[(i*B+r)*N+j*B+q] = math.Float64frombits(data[r*B+q])
				}
			}
		}
	}
	// L·U: L unit lower triangular, U upper (both packed in f).
	maxErr := 0.0
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			sum := 0.0
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				lv := f[i*N+k]
				if k == i {
					lv = 1
				}
				if k > i {
					lv = 0
				}
				uv := 0.0
				if k <= j {
					uv = f[k*N+j]
				}
				sum += lv * uv
			}
			if err := math.Abs(sum - l.orig[i*N+j]); err > maxErr {
				maxErr = err
			}
		}
	}
	if maxErr > 1e-6*float64(N) {
		return checkf("lu: residual %g too large", maxErr)
	}
	return nil
}
