// Package niq models the NI input queue — the scarce receive-side SRAM whose
// exhaustion is the whole reason second-case delivery exists. The seed
// hardware had exactly one organization, a fixed per-node FIFO; this package
// extracts that seam into an InputQueue interface with three buffer
// organizations at equal total slots:
//
//   - fifo: the original statically-provisioned single FIFO. The default, and
//     bit-identical to the pre-seam hardware (the golden tests pin this).
//   - damq: a dynamically-allocated multi-queue (Jamali & Khademzadeh): one
//     shared slot pool per node, per-source linked lists threaded through it,
//     and dynamic stealing of free slots beyond a source's fair share.
//   - reserve: a reserve-plus-borrow hybrid — every source keeps a guaranteed
//     reserve of R slots that no other source may ever occupy, and the
//     remaining B slots form a borrowable shared region (Brodsky, Pedersen &
//     Wagner frame provisioning, not raw capacity, as the real problem).
//
// The multi-queue models also decouple *presentation* from *arrival*: the
// head the NI exposes is the oldest packet whose GID matches the resident
// process (when one exists), so a mismatched packet at the global front no
// longer head-of-line-blocks the fast path into kernel-buffered mode. A
// bounded bypass budget and a never-bypass-kernel rule keep the mismatch
// path live-locked-free; with no match predicate bound, every model drains
// in strict arrival order.
//
// Queues consume no simulated time of their own: admission runs inside the
// mesh's profiled delivery events and drains inside the NI's dispose
// handlers, so their costs are charged through the existing sim.Profiler
// sites (see DESIGN.md, "InputQueue seam").
package niq

import (
	"fmt"
	"strconv"
	"strings"

	"fugu/internal/mesh"
	"fugu/internal/metrics"
)

// Queue models.
const (
	ModelFIFO    = "fifo"
	ModelDAMQ    = "damq"
	ModelReserve = "reserve"
)

// Allocation policies: how the slot pool divides into per-source reserve (R)
// and shared region (B). See Reserve for the exact split.
const (
	PolicyStatic = "static" // R = slots/sources each, remainder shared
	PolicyDemand = "demand" // R = 0: the whole pool is shared
	PolicyHybrid = "hybrid" // half fair share reserved, the rest shared
)

// DefaultBypassBudget bounds how many times the globally oldest packet may be
// bypassed by younger matching packets before the queue reverts to strict
// FIFO presentation. It trades fast-path liveness under mismatch storms
// against mismatch-interrupt latency; 32 keeps the latter under two queue
// drains at the default depth.
const DefaultBypassBudget = 32

// Models lists the queue models in sweep order.
func Models() []string { return []string{ModelFIFO, ModelDAMQ, ModelReserve} }

// Policies lists the allocation policies in sweep order.
func Policies() []string { return []string{PolicyStatic, PolicyDemand, PolicyHybrid} }

// Spec selects an input-queue organization. The zero value means the default
// hardware: a static FIFO at the NI's configured depth.
type Spec struct {
	Model  string // "", "fifo", "damq" or "reserve" ("" = fifo)
	Policy string // "", "static", "demand" or "hybrid" ("" = model default)
	// Slots is the total pool size in messages; 0 uses the NI's configured
	// input-queue depth, so every model can be compared at equal SRAM.
	Slots int
	// BypassBudget overrides DefaultBypassBudget; 0 keeps the default.
	// Only the multi-queue models consult it.
	BypassBudget int
}

// defaultPolicy is the policy a model gets when the spec names none: the
// FIFO is inherently static, the DAMQ's natural mode is fully-shared, and
// reserve-plus-borrow without a reserve would be no hybrid at all.
func defaultPolicy(model string) string {
	switch model {
	case ModelDAMQ:
		return PolicyDemand
	case ModelReserve:
		return PolicyHybrid
	default:
		return PolicyStatic
	}
}

// Normalize fills the spec's defaulted fields (model, policy, budget) without
// resolving Slots — that needs the NI's configured depth.
func (s Spec) Normalize() Spec {
	if s.Model == "" {
		s.Model = ModelFIFO
	}
	if s.Policy == "" {
		s.Policy = defaultPolicy(s.Model)
	}
	if s.BypassBudget == 0 {
		s.BypassBudget = DefaultBypassBudget
	}
	return s
}

// Name renders the spec as the canonical "model:policy" label the sweep CSVs
// and the -niq flag use.
func (s Spec) Name() string {
	s = s.Normalize()
	return s.Model + ":" + s.Policy
}

// Validate rejects unknown models and policies, and policies the model
// cannot honor (the single FIFO has no per-source structure to share).
func (s Spec) Validate() error {
	n := s.Normalize()
	switch n.Model {
	case ModelFIFO:
		if n.Policy != PolicyStatic {
			return fmt.Errorf("niq: model fifo supports only the static policy, not %q", n.Policy)
		}
	case ModelDAMQ, ModelReserve:
		switch n.Policy {
		case PolicyStatic, PolicyDemand, PolicyHybrid:
		default:
			return fmt.Errorf("niq: unknown allocation policy %q (have %v)", n.Policy, Policies())
		}
	default:
		return fmt.Errorf("niq: unknown queue model %q (have %v)", n.Model, Models())
	}
	if s.Slots < 0 {
		return fmt.Errorf("niq: negative slot count %d", s.Slots)
	}
	if s.BypassBudget < 0 {
		return fmt.Errorf("niq: negative bypass budget %d", s.BypassBudget)
	}
	return nil
}

// ParseSpec parses the -niq flag syntax "model[:policy[:slots]]", e.g.
// "damq", "reserve:hybrid", "damq:demand:24".
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	if len(parts) > 3 {
		return Spec{}, fmt.Errorf("niq: bad spec %q (want model[:policy[:slots]])", s)
	}
	spec := Spec{Model: parts[0]}
	if len(parts) > 1 {
		spec.Policy = parts[1]
	}
	if len(parts) > 2 {
		n, err := strconv.Atoi(parts[2])
		if err != nil || n <= 0 {
			return Spec{}, fmt.Errorf("niq: bad slot count %q in spec %q", parts[2], s)
		}
		spec.Slots = n
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Reserve computes the (R, B) split for a policy: R guaranteed slots per
// source and B shared slots, with R*sources + B == slots always. Static gives
// each source its fair share (any indivisible remainder stays shared);
// demand shares everything; hybrid reserves half the fair share and pools
// the rest, so a quiet source keeps a foothold while bursty ones stretch.
func Reserve(policy string, slots, sources int) (r, b int) {
	if sources <= 0 {
		sources = 1
	}
	switch policy {
	case PolicyDemand:
		return 0, slots
	case PolicyHybrid:
		r = slots / (2 * sources)
	default: // static
		r = slots / sources
	}
	return r, slots - r*sources
}

// InputQueue is the NI receive-buffer seam. Implementations are message
// granular (one slot per packet, as the FUGU hardware was), single-threaded
// (the simulator's event loop serializes all access) and cost-free in
// simulated time (see the package comment).
//
// The contract mirrors the NI's two-phase arrival: Admit is a pure
// capacity/policy check with no side effects — the NI may still NACK the
// packet between Admit and Push (offload admission) — and Push commits it.
// Head returns the packet the queue chooses to present; PopHead removes
// exactly that packet. Selection is a pure function of queue state and the
// bound predicates, so consecutive Head/PopHead calls agree.
type InputQueue interface {
	// Spec returns the normalized spec this queue was built from, with
	// Slots resolved.
	Spec() Spec
	// Slots returns the total pool capacity in messages.
	Slots() int
	// Len returns the number of buffered messages.
	Len() int
	// Bind installs the presentation predicates: match reports whether a
	// packet can take the fast path right now (resident GID, no divert, no
	// forced mismatch), kernel reports a kernel-priority packet that must
	// never be bypassed. Both may be nil (strict FIFO presentation).
	Bind(match, kernel func(*mesh.Packet) bool)
	// UseMetrics registers the queue's instruments ("niq.steals",
	// "niq.bypass", "niq.occupancy"). The FIFO registers nothing, so
	// default-hardware metric snapshots keep their exact key set.
	UseMetrics(r *metrics.Registry)
	// Admit reports whether a packet from src would be accepted, without
	// mutating anything. sys marks protected kernel traffic: the shared
	// models admit it whenever a free physical slot exists, exempt from
	// per-source caps and borrow limits — a user allocation policy must
	// never be able to refuse the kernel message that unwedges the machine
	// (an overflow release, a revocation). The FIFO ignores the flag, as
	// the seed hardware did.
	Admit(src int, sys bool) bool
	// Push commits a packet previously cleared by Admit; pushing into a
	// queue that would refuse it is a programming error and panics.
	Push(pkt *mesh.Packet)
	// Head returns the packet the queue presents, nil when empty.
	Head() *mesh.Packet
	// PopHead removes and returns the presented packet, nil when empty.
	PopHead() *mesh.Packet
	// Steals counts admissions that took a slot beyond the source's
	// reserve: DAMQ slot steals, reserve-model borrows. Always 0 for fifo.
	Steals() uint64
	// Bypasses counts pops where a younger matching packet was presented
	// ahead of the globally oldest one. Always 0 for fifo.
	Bypasses() uint64
	// CheckInvariants walks the whole structure and reports the first
	// violated structural invariant (tests and the fuzz target call it
	// after every operation).
	CheckInvariants() error
}

// New builds a queue from the spec. slots resolves Spec.Slots when it is 0
// (the NI passes its configured depth); sources is the number of distinct
// packet sources (mesh nodes).
func New(spec Spec, slots, sources int) InputQueue {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if spec.Slots == 0 {
		spec.Slots = slots
	}
	if spec.Slots <= 0 {
		panic(fmt.Sprintf("niq: queue needs at least one slot, got %d", spec.Slots))
	}
	if spec.Model == ModelFIFO {
		return newFIFO(spec)
	}
	return newShared(spec, sources)
}
