package udm

import (
	"testing"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
)

// testMachine builds a 2x1 machine with one job scheduled solo (huge
// quantum, zero skew) and endpoints attached on both nodes.
func testMachine(t *testing.T, mut func(*glaze.Config)) (*glaze.Machine, *glaze.Job, []*EP) {
	t.Helper()
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	if mut != nil {
		mut(&cfg)
	}
	m := glaze.NewMachine(cfg)
	job := m.NewJob("test")
	eps := make([]*EP, 2)
	for i := range eps {
		eps[i] = Attach(job.Process(i))
	}
	m.NewGang(1<<40, 0, job).Start()
	return m, job, eps
}

func TestPingPongInterrupt(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	const (
		hPing = 1
		hPong = 2
	)
	var pongAt uint64
	rounds := uint64(0)
	eps[1].On(hPing, func(e *Env, msg *Msg) {
		e.Inject(0, hPong, msg.Args...)
	})
	done := NewCounter()
	eps[0].On(hPong, func(e *Env, msg *Msg) {
		pongAt = e.Now()
		rounds++
		done.Add(1)
	})
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := eps[0].Env(tk)
		e.Inject(1, hPing, 7)
		done.WaitFor(tk, 1)
	})
	m.RunUntilDone(0, job)
	if rounds != 1 {
		t.Fatalf("rounds = %d, want 1", rounds)
	}
	if pongAt == 0 {
		t.Fatal("pong never arrived")
	}
	d := job.Delivery()
	if d.Fast != 2 || d.Buffered != 0 {
		t.Errorf("delivery = %+v, want 2 fast, 0 buffered", d)
	}
}

func TestPingPongLatencyMatchesCostModel(t *testing.T) {
	// A null-message one-way send must cost SendCost + network + RecvIntrPre
	// + perArg + NullHandler before the handler body runs.
	m, job, eps := testMachine(t, nil)
	var handlerAt, sentAt uint64
	eps[1].On(1, func(e *Env, msg *Msg) {})
	done := NewCounter()
	eps[1].On(2, func(e *Env, msg *Msg) { handlerAt = e.Now(); done.Add(1) })
	job.Process(1).StartMain(func(tk *cpu.Task) { done.WaitFor(tk, 1) })
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := eps[0].Env(tk)
		sentAt = e.Now()
		e.Inject(1, 2) // null message
	})
	m.RunUntilDone(0, job)
	cm := m.Cost()
	// Send 7, mesh delay for 2 words over 1 hop, then the stub+extract+null
	// handler cost before the handler body observes the time.
	lat := uint64(10 + 2 + 2) // mesh.DefaultLatency for 2 words, 1 hop
	want := sentAt + cm.SendCost(0) + lat + cm.RecvIntrPre() + cm.NullHandler
	if handlerAt != want {
		t.Errorf("handler ran at %d, want %d (sent %d)", handlerAt, want, sentAt)
	}
}

func TestPollingReceive(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	got := []uint64{}
	eps[1].On(1, func(e *Env, msg *Msg) { got = append(got, msg.Args[0]) })
	job.Process(1).StartMain(func(tk *cpu.Task) {
		e := eps[1].Env(tk)
		e.BeginAtomic()
		for len(got) < 3 {
			e.Poll()
		}
		e.EndAtomic()
	})
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := eps[0].Env(tk)
		for i := uint64(0); i < 3; i++ {
			e.Inject(1, 1, i)
		}
	})
	m.RunUntilDone(0, job)
	if len(got) != 3 {
		t.Fatalf("got %d messages, want 3", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Errorf("order: got[%d] = %d", i, v)
		}
	}
	d := job.Delivery()
	if d.Fast != 3 {
		t.Errorf("delivery = %+v, want 3 fast", d)
	}
}

func TestPollOutsideAtomicPanics(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	panicked := false
	job.Process(0).StartMain(func(tk *cpu.Task) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		eps[0].Env(tk).Poll()
	})
	m.RunUntilDone(0, job)
	if !panicked {
		t.Error("Poll outside atomic section did not panic")
	}
}

func TestInjectCRefusesWhenBusy(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	eps[1].On(1, func(e *Env, msg *Msg) {})
	var first, second bool
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := eps[0].Env(tk)
		first = e.InjectC(1, 1, 1, 2, 3)
		second = e.InjectC(1, 1, 1, 2, 3) // output still draining
		e.Spend(100)
		if !e.InjectC(1, 1, 9) {
			t.Error("InjectC failed after drain")
		}
	})
	m.RunUntilDone(0, job)
	if !first || second {
		t.Errorf("InjectC = %v,%v, want true,false", first, second)
	}
}

// TestDescheduledBuffering: messages for a job that is not resident go to
// its virtual buffer and are delivered when it is scheduled back in.
func TestDescheduledBuffering(t *testing.T) {
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	m := glaze.NewMachine(cfg)
	jobA := m.NewJob("A")
	jobB := m.NewJob("B")
	epA0 := Attach(jobA.Process(0))
	epA1 := Attach(jobA.Process(1))
	Attach(jobB.Process(0))
	Attach(jobB.Process(1))

	var got []uint64
	epA1.On(1, func(e *Env, msg *Msg) { got = append(got, msg.Args[0]) })

	// Full skew: node 0 enters A's quantum at t=0, node 1 only at t=50k.
	// Messages sent right away arrive at node 1 before any process is
	// resident there, mismatch, and must take the buffered path; node 1
	// then starts A's quantum in buffered mode and drains.
	jobA.Process(0).StartMain(func(tk *cpu.Task) {
		e := epA0.Env(tk)
		e.Inject(1, 1, 11)
		e.Inject(1, 1, 22)
		e.Inject(1, 1, 33)
	})
	m.NewGang(100_000, 0.5, jobA, jobB).Start()
	m.RunUntilDone(3_000_000, jobA)
	// Let node 1's first A quantum deliver.
	m.Eng.RunUntil(m.Eng.Now() + 400_000)
	if len(got) != 3 {
		t.Fatalf("delivered %d messages, want 3 (got %v)", len(got), got)
	}
	for i, want := range []uint64{11, 22, 33} {
		if got[i] != want {
			t.Errorf("order violated: %v", got)
		}
	}
	d := jobA.Delivery()
	if d.Buffered != 3 {
		t.Errorf("delivery = %+v, want 3 buffered", d)
	}
	if jobA.MaxBufferPages() < 1 {
		t.Error("no buffer pages recorded")
	}
}

// TestWrongGIDNeverReachesUser: node 0 of job A sends while node 1 runs job
// B the whole time; B must never see the message.
func TestWrongGIDProtection(t *testing.T) {
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	m := glaze.NewMachine(cfg)
	jobA := m.NewJob("A")
	jobB := m.NewJob("B")
	epA0 := Attach(jobA.Process(0))
	epA1 := Attach(jobA.Process(1))
	epB1 := Attach(jobB.Process(1))
	Attach(jobB.Process(0))

	bGot := 0
	aGot := 0
	// Same handler id registered by both jobs: protection must demultiplex.
	epB1.On(1, func(e *Env, msg *Msg) { bGot++ })
	epA1.On(1, func(e *Env, msg *Msg) { aGot++ })

	jobA.Process(0).StartMain(func(tk *cpu.Task) {
		epA0.Env(tk).Inject(1, 1, 42)
	})
	// B is resident everywhere (A never scheduled... A must run to send).
	// Schedule A and B alternating; B's node-1 main spins so B stays live.
	m.NewGang(50_000, 0, jobA, jobB).Start()
	m.RunUntilDone(2_000_000, jobA)
	m.Eng.RunUntil(m.Eng.Now() + 300_000)
	if bGot != 0 {
		t.Fatalf("job B received job A's message %d times", bGot)
	}
	if aGot != 1 {
		t.Fatalf("job A delivery = %d, want 1", aGot)
	}
}

// TestRevocationDuringPolling: the application holds an atomic section while
// messages queue behind a stuck head; the timeout revokes, the mismatch
// handler buffers, and the still-atomic thread keeps reading transparently
// from the software buffer.
func TestRevocationDuringPolling(t *testing.T) {
	m, job, eps := testMachine(t, func(cfg *glaze.Config) {
		cfg.NIConfig.TimerPreset = 500
	})
	var got []uint64
	eps[1].On(1, func(e *Env, msg *Msg) { got = append(got, msg.Args[0]) })
	job.Process(1).StartMain(func(tk *cpu.Task) {
		e := eps[1].Env(tk)
		e.BeginAtomic()
		e.Spend(5000) // messages arrive; head sticks; timer fires at 500
		for len(got) < 3 {
			e.Poll()
		}
		e.EndAtomic()
	})
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := eps[0].Env(tk)
		for i := uint64(0); i < 3; i++ {
			e.Inject(1, 1, i)
		}
	})
	m.RunUntilDone(0, job)
	p := job.Process(1)
	if p.Revocations != 1 {
		t.Errorf("revocations = %d, want 1", p.Revocations)
	}
	if len(got) != 3 {
		t.Fatalf("got %d messages, want 3", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("order violated after revocation: %v", got)
		}
	}
	d := job.Delivery()
	if d.Buffered == 0 {
		t.Error("no messages took the buffered path despite revocation")
	}
	if p.Buffered() {
		t.Error("process still in buffered mode after drain")
	}
}

// TestRevocationDuringHandler: a handler that dawdles with more messages
// pending gets revoked; delivery continues through the buffer and returns
// to fast mode afterwards.
func TestRevocationDuringHandler(t *testing.T) {
	m, job, eps := testMachine(t, func(cfg *glaze.Config) {
		cfg.NIConfig.TimerPreset = 300
	})
	var got []uint64
	eps[1].On(1, func(e *Env, msg *Msg) {
		got = append(got, msg.Args[0])
		if msg.Args[0] == 0 {
			e.Spend(2000) // hog the handler while more messages arrive
		}
	})
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := eps[0].Env(tk)
		for i := uint64(0); i < 5; i++ {
			e.Inject(1, 1, i)
		}
	})
	m.RunUntilDone(0, job)
	m.Eng.RunUntil(m.Eng.Now() + 100_000)
	if len(got) != 5 {
		t.Fatalf("got %d messages, want 5 (%v)", len(got), got)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("order violated: %v", got)
		}
	}
	p := job.Process(1)
	if p.Revocations == 0 {
		t.Error("no revocation recorded")
	}
	if job.Delivery().Buffered == 0 {
		t.Error("no buffered deliveries despite revocation")
	}
	if p.Buffered() {
		t.Error("process stuck in buffered mode")
	}
}

// TestFaultInHandlerForcesBuffering: a page fault inside a handler is one of
// the paper's three transition causes.
func TestFaultInHandlerForcesBuffering(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	var faultedMode bool
	count := 0
	eps[1].On(1, func(e *Env, msg *Msg) {
		count++
		if count == 1 {
			e.Touch(1 << 30) // unmapped: demand zero-fill fault in handler
			faultedMode = eps[1].Process().Buffered()
		}
	})
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := eps[0].Env(tk)
		e.Inject(1, 1, 1)
		e.Inject(1, 1, 2)
		e.Inject(1, 1, 3)
	})
	m.RunUntilDone(0, job)
	m.Eng.RunUntil(m.Eng.Now() + 100_000)
	if count != 3 {
		t.Fatalf("delivered %d, want 3", count)
	}
	if !faultedMode {
		t.Error("fault in handler did not engage buffered mode")
	}
	if job.Process(1).FaultsInHandler != 1 {
		t.Errorf("FaultsInHandler = %d, want 1", job.Process(1).FaultsInHandler)
	}
	if job.Process(1).Buffered() {
		t.Error("process stuck in buffered mode")
	}
}

// TestExactlyOnceInOrderAcrossModes is the central two-case delivery
// invariant: an arbitrary mix of fast and buffered delivery caused by
// multiprogramming must deliver every message exactly once, in order.
func TestExactlyOnceInOrderAcrossModes(t *testing.T) {
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	cfg.NIConfig.TimerPreset = 700
	m := glaze.NewMachine(cfg)
	job := m.NewJob("app")
	null := m.NewJob("null")
	Attach(null.Process(0))
	Attach(null.Process(1))
	ep0 := Attach(job.Process(0))
	ep1 := Attach(job.Process(1))

	const N = 400
	var got []uint64
	ep1.On(1, func(e *Env, msg *Msg) { got = append(got, msg.Args[0]) })
	done := NewCounter()
	ep1.On(2, func(e *Env, msg *Msg) { done.Add(1) })
	_ = ep0
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := ep0.Env(tk)
		r := m.Eng.Rand()
		for i := uint64(0); i < N; i++ {
			e.Inject(1, 1, i)
			e.Spend(r.Uint64n(800) + 10)
		}
	})
	job.Process(1).StartMain(func(tk *cpu.Task) {
		// Passive: handlers do the work; wait forever-ish via counter the
		// test pokes at the end. Just wait for all N.
		c := NewCounter()
		_ = c
		for len(got) < N {
			tk.Spend(5000)
		}
	})
	// Skewed multiprogramming against null: both transitions (quantum
	// expiry windows) and plain fast delivery occur.
	m.NewGang(20_000, 0.3, job, null).Start()
	m.RunUntilDone(200_000_000, job)
	if len(got) != N {
		t.Fatalf("delivered %d, want %d", len(got), N)
	}
	seen := map[uint64]bool{}
	for i, v := range got {
		if seen[v] {
			t.Fatalf("duplicate delivery of %d", v)
		}
		seen[v] = true
		if v != uint64(i) {
			t.Fatalf("order violated at %d: got %d", i, v)
		}
	}
	d := job.Delivery()
	if d.Fast == 0 || d.Buffered == 0 {
		t.Errorf("want a mix of paths, got %+v", d)
	}
	if d.Total() < N {
		t.Errorf("delivery total %d < %d", d.Total(), N)
	}
}
