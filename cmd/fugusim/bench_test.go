package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline marshals rows to a temp baseline file and returns its path.
func writeBaseline(t *testing.T, rows []BenchRow) string {
	t.Helper()
	data, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareBaseline covers the bench gate: per-workload delta reporting,
// the throughput floor, the allocs/event ceiling (the zero-added-allocations
// assertion for telemetry-disabled runs), and the coverage rules.
func TestCompareBaseline(t *testing.T) {
	base := []BenchRow{
		{Workload: "barrier", McyclesPerSec: 2.0, AllocsPerEvent: 0.08, NsPerEvent: 500},
		{Workload: "synth", McyclesPerSec: 40.0, AllocsPerEvent: 0.16, NsPerEvent: 300},
	}
	path := writeBaseline(t, base)

	t.Run("pass with deltas reported", func(t *testing.T) {
		rows := []BenchRow{
			{Workload: "barrier", McyclesPerSec: 1.9, AllocsPerEvent: 0.081, NsPerEvent: 520},
			{Workload: "synth", McyclesPerSec: 44.0, AllocsPerEvent: 0.15, NsPerEvent: 280},
		}
		report, ok := compareBaseline(rows, path, 0.20, 0.10)
		if !ok {
			t.Fatalf("healthy run failed the gate:\n%s", report)
		}
		for _, want := range []string{"barrier", "synth", "Mcycles/s", "allocs/event", "ns/event", "%"} {
			if !strings.Contains(report, want) {
				t.Errorf("report lacks %q:\n%s", want, report)
			}
		}
		if strings.Contains(report, "FAIL") {
			t.Errorf("healthy run reported FAIL:\n%s", report)
		}
	})

	t.Run("throughput regression fails with numbers", func(t *testing.T) {
		rows := []BenchRow{
			{Workload: "barrier", McyclesPerSec: 1.0, AllocsPerEvent: 0.08, NsPerEvent: 900},
			{Workload: "synth", McyclesPerSec: 40.0, AllocsPerEvent: 0.16, NsPerEvent: 300},
		}
		report, ok := compareBaseline(rows, path, 0.20, 0.10)
		if ok {
			t.Fatalf("regressed run passed the gate:\n%s", report)
		}
		if !strings.Contains(report, "FAIL barrier") || !strings.Contains(report, "throughput 1.00 < floor 1.60") {
			t.Errorf("report does not name the regression and its numbers:\n%s", report)
		}
		if !strings.Contains(report, "ok   synth") {
			t.Errorf("healthy sibling workload not reported ok:\n%s", report)
		}
	})

	t.Run("alloc growth fails", func(t *testing.T) {
		// 0.08 -> 0.12 allocs/event is the signature of a telemetry path
		// accidentally enabled by default; the ceiling is 0.08*1.1+0.01.
		rows := []BenchRow{
			{Workload: "barrier", McyclesPerSec: 2.0, AllocsPerEvent: 0.12, NsPerEvent: 500},
			{Workload: "synth", McyclesPerSec: 40.0, AllocsPerEvent: 0.16, NsPerEvent: 300},
		}
		report, ok := compareBaseline(rows, path, 0.20, 0.10)
		if ok {
			t.Fatalf("alloc-regressed run passed the gate:\n%s", report)
		}
		if !strings.Contains(report, "allocs/event 0.1200 > ceiling") {
			t.Errorf("report does not call out the alloc ceiling:\n%s", report)
		}
	})

	t.Run("alloc epsilon tolerates noise at zero baseline", func(t *testing.T) {
		zbase := writeBaseline(t, []BenchRow{{Workload: "barrier", McyclesPerSec: 2.0}})
		rows := []BenchRow{{Workload: "barrier", McyclesPerSec: 2.0, AllocsPerEvent: 0.005}}
		if report, ok := compareBaseline(rows, zbase, 0.20, 0.10); !ok {
			t.Errorf("sub-epsilon alloc noise failed the gate:\n%s", report)
		}
		rows[0].AllocsPerEvent = 0.05
		if report, ok := compareBaseline(rows, zbase, 0.20, 0.10); ok {
			t.Errorf("real alloc growth over a zero baseline passed:\n%s", report)
		}
	})

	t.Run("missing workload fails, extra workload passes", func(t *testing.T) {
		rows := []BenchRow{
			{Workload: "barrier", McyclesPerSec: 2.0, AllocsPerEvent: 0.08, NsPerEvent: 500},
			{Workload: "newbie", McyclesPerSec: 0.1, AllocsPerEvent: 9.0, NsPerEvent: 9e6},
		}
		report, ok := compareBaseline(rows, path, 0.20, 0.10)
		if ok {
			t.Fatal("shrunk coverage passed the gate")
		}
		if !strings.Contains(report, "synth: in baseline but not measured") {
			t.Errorf("report does not flag the missing workload:\n%s", report)
		}
		if strings.Contains(report, "newbie") {
			t.Errorf("workload absent from the baseline was judged:\n%s", report)
		}
	})

	t.Run("unreadable or corrupt baseline fails", func(t *testing.T) {
		if _, ok := compareBaseline(nil, filepath.Join(t.TempDir(), "nope.json"), 0.2, 0.1); ok {
			t.Error("missing baseline file passed")
		}
		bad := filepath.Join(t.TempDir(), "bad.json")
		os.WriteFile(bad, []byte("{not json"), 0o644)
		if _, ok := compareBaseline(nil, bad, 0.2, 0.1); ok {
			t.Error("corrupt baseline passed")
		}
	})
}
