// Package delivery defines the pluggable receive-side delivery policy: the
// seam between the network interface, the Glaze kernel and the user-level
// runtime that decides how a protected message that cannot be consumed
// directly off the wire reaches its owner.
//
// The paper's two-case delivery is one Policy (TwoCase, the default): misses
// divert into a kernel-managed virtual software buffer and drain back to the
// fast path. Two rival organizations from the literature are provided for
// head-to-head comparison on identical workloads: ZeroCopyRemap (per-message
// page flips with pinned-page accounting, after "Using Memory-Protection to
// Simplify Zero-copy Operations") and BypassRing (per-process protected
// descriptor rings with static partitioning and drop+NACK overflow, after
// "Safe Sharing of Fast Kernel-Bypass I/O Among Nontrusting Applications").
//
// The package depends only on the vm substrate; glaze consumes it, and the
// NI reaches policies through a small hook interface glaze implements, so the
// hardware model never imports OS code.
package delivery

import (
	"fmt"
	"sort"

	"fugu/internal/vm"
)

// Costs carries the cycle constants a Store charges, resolved from the
// machine's cost model at process creation.
type Costs struct {
	InsertMin     uint64 // minimum kernel buffer-insert handler (Table 5: 180)
	InsertVMAlloc uint64 // insert with demand page allocation (Table 5: 3162)
	ExtraInsert   uint64 // artificial insert-handler addition (Figure 10 knob)
	PageOut       uint64 // evict one buffer page to backing store
	PageIn        uint64 // restore one buffer page
	Remap         uint64 // zero-copy page flip: map + TLB invalidate
	RemapRelease  uint64 // zero-copy consume: unmap + TLB shootdown
}

// Params parameterizes a Store for one process.
type Params struct {
	Costs Costs
	// NoReclaim pins consumed buffer pages (the pinned-buffer ablation of the
	// paper's Section 5.1); only the virtual buffer honours it.
	NoReclaim bool
}

// MsgMeta carries a stored message's identity and timestamps: the mesh packet
// ID (for lifecycle spans), when the sender injected it and when the store
// accepted it.
type MsgMeta struct {
	ID         uint64
	SentAt     uint64
	InsertedAt uint64
}

// PushResult reports what a Push did, so the kernel can charge and count it.
type PushResult struct {
	NewPages int  // pages demand-allocated (the vmalloc insert path)
	PagedOut int  // pages evicted to backing store to make room
	Fallback bool // zero-copy only: no frame free, the kernel copied instead
}

// Store is one process's second-case message store on one node. The kernel
// (or, for hardware-demultiplexed policies, the NI) pushes whole messages;
// the user-level runtime reads and pops them through the transparent-access
// indirection. Stores are single-threaded simulator state: no locking.
type Store interface {
	// Admit asks whether a message of nwords words may be accepted right now.
	// A refusal propagates as network backpressure (NACK + retry); stores
	// with guaranteed delivery always admit. Admitting may reserve capacity:
	// every Admit(true) is followed by exactly one Push.
	Admit(nwords int) bool
	// Push appends a message. It must succeed for any admitted message.
	Push(id uint64, words []uint64, sentAt, now uint64) PushResult
	// InsertCost returns the cycles the inserting context spends for a Push
	// with the given result.
	InsertCost(r PushResult) uint64
	// Pop consumes the head message, returning its metadata and the cycles
	// the disposing context spends releasing it.
	Pop() (MsgMeta, uint64)

	Empty() bool
	// Pending reports messages pushed and not yet popped.
	Pending() int
	// HeadLen and HeadWord read the head message (length in words, word i).
	HeadLen() int
	HeadWord(i int) uint64
	HeadID() (uint64, bool)
	HeadSentAt() (uint64, bool)
	// PendingIDs lists unconsumed message IDs in order (diagnostics).
	PendingIDs() []uint64

	// PagesResident and PagesHighWater report physical pages currently and
	// maximally consumed by the store — the memory-footprint axis of the
	// policy comparison. VMAllocs counts pushes that demand-allocated (for
	// the virtual buffer) or fell back to a copy (for zero-copy).
	PagesResident() int
	PagesHighWater() int
	VMAllocs() uint64
}

// Policy is one receive-side delivery organization. A Policy is stateless
// configuration: per-process state lives in the Stores it creates.
type Policy interface {
	// Name is the registry key ("twocase", "zerocopy", "bypass").
	Name() string
	// KernelBuffered reports whether the policy uses the kernel's divert
	// machinery (mismatch ISR, buffered mode, overflow control). Policies
	// without it never flip a process to buffered delivery: revocation,
	// in-handler faults and context switches leave the mode alone.
	KernelBuffered() bool
	// HardwareDemux reports whether the NI demultiplexes user packets into
	// per-process stores directly (kernel-bypass), instead of raising
	// mismatch interrupts for software to sort out.
	HardwareDemux() bool
	// NewStore builds one process's store over the node's frame pool.
	NewStore(frames *vm.Frames, p Params) Store
}

// registry maps policy names to constructors of their default configuration.
var registry = map[string]func() Policy{
	"twocase":  func() Policy { return TwoCase{} },
	"zerocopy": func() Policy { return ZeroCopyRemap{} },
	"bypass":   func() Policy { return DefaultBypassRing() },
}

// ByName resolves a policy by registry name.
func ByName(name string) (Policy, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("delivery: unknown policy %q (have %v)", name, Names())
	}
	return mk(), nil
}

// Names lists the registered policy names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
