package glaze

import (
	"fugu/internal/delivery"
	"fugu/internal/sim"
	"fugu/internal/spans"
	"fugu/internal/telemetry"
)

// siteTelemetry labels flight-recorder sampling ticks for the cost profiler.
var siteTelemetry = sim.NewSite("glaze.telemetry")

// sampler drives the machine's telemetry flight recorder on simulated
// time: a self-rescheduling engine event every recorder interval. Like the
// watchdog it charges no simulated cycles, consumes no RNG and stops
// rescheduling once every job completes, so a machine with sampling
// enabled produces bit-identical results to one without — the extra events
// only interleave at their own timestamps.
type sampler struct {
	m      *Machine
	rec    *telemetry.Recorder
	every  uint64
	tickFn func() // s.tick bound once so rescheduling never allocates
}

func newSampler(m *Machine, rec *telemetry.Recorder) *sampler {
	s := &sampler{m: m, rec: rec, every: rec.Every()}
	s.tickFn = s.tick
	m.Eng.ScheduleSite(siteTelemetry, s.every, s.tickFn)
	return s
}

// tick records one interval and reschedules unless every job is done (the
// closing interval is FinishTelemetry's job, at the true stop time).
func (s *sampler) tick() {
	s.rec.Record(s.m.telemetrySample())
	for _, j := range s.m.jobs {
		if !j.Done() {
			s.m.Eng.ScheduleSite(siteTelemetry, s.every, s.tickFn)
			return
		}
	}
}

// telemetrySample captures the machine's instantaneous state for one
// flight-recorder interval: the merged registry snapshot, span backlog, NI
// queue depths and the per-node delivery-mode glyph string (worst process
// per node, see delivery.ModeGlyph).
func (m *Machine) telemetrySample() telemetry.Sample {
	var qsum, qmax int
	modes := make([]byte, len(m.Nodes))
	for i, node := range m.Nodes {
		q := node.NI.QueueLen()
		qsum += q
		if q > qmax {
			qmax = q
		}
		modes[i] = '-'
	}
	for _, j := range m.jobs {
		for _, p := range j.procs {
			g := delivery.ModeGlyph(m.policy, p.buffered, p.throttled, p.store.Pending())
			if delivery.GlyphRank(g) > delivery.GlyphRank(modes[p.node]) {
				modes[p.node] = g
			}
		}
	}
	s := telemetry.Sample{
		At:            m.Eng.Now(),
		Snap:          m.MetricsSnapshot(),
		SpansInFlight: m.Spans.InFlightCount(),
		QueueSum:      qsum,
		QueueMax:      qmax,
		Modes:         string(modes),
	}
	if m.Spans != nil {
		// Cumulative per-stage dwell totals over terminated spans: the
		// recorder diffs consecutive samples into per-interval dwell
		// columns ("d:<stage>"), so timelines show dwell drift. Only
		// present with a spans recorder installed — without one the
		// column set (and every existing CSV) is unchanged.
		totals := m.Spans.StageDwellTotals()
		s.Dwell = make(map[string]uint64, len(totals))
		for st, d := range totals {
			s.Dwell[spans.Stage(st).String()] = d
		}
	}
	return s
}

// Telemetry returns the machine's flight recorder, nil when disabled.
func (m *Machine) Telemetry() *telemetry.Recorder { return m.telemetry }

// FinishTelemetry closes the recorder's epoch with a final sample at the
// current time and returns the timeline. Harness collection calls it once
// per machine after the run; with telemetry disabled it returns an empty
// timeline at zero cost. Calling it again without a new machine is a no-op
// returning the same timeline.
func (m *Machine) FinishTelemetry() telemetry.Timeline {
	if m.telemetry == nil {
		return telemetry.Timeline{}
	}
	return m.telemetry.Finish(m.telemetrySample())
}
