package harness

import (
	"runtime"

	"fugu/internal/delivery"
	"fugu/internal/faultinject"
	"fugu/internal/glaze"
	"fugu/internal/niq"
	"fugu/internal/sim"
	"fugu/internal/spans"
	"fugu/internal/telemetry"
	"fugu/internal/trace"
)

// Options is the resolved experiment configuration. Construct it with
// NewOptions and functional Option values.
type Options struct {
	Quick  bool
	Trials int // paper averages 3 trials
	Seed   uint64
	// Parallelism is the worker count the Runner fans sweep points out
	// across; zero or negative means runtime.GOMAXPROCS(0). Parallelism
	// never changes results: points are keyed by enumeration index, and
	// every point simulates its own deterministic machine.
	Parallelism int
	// Trace, when non-nil, is installed as every point machine's event log.
	// The log is a single unsynchronized ring, so pair it with
	// WithParallelism(1) (as `fugusim trace` does) — concurrent points would
	// interleave their events arbitrarily.
	Trace *trace.Log
	// Spans, when non-nil, records message-lifecycle spans on every point
	// machine. Like Trace it is unsynchronized: pair it with
	// WithParallelism(1) (as `fugusim doctor` does).
	Spans *spans.Recorder
	// Watchdog, when enabled (Interval > 0), installs the liveness watchdog
	// on every point machine; a stalled run stops with a diagnostic report
	// instead of spinning forever.
	Watchdog glaze.WatchdogConfig
	// Faults, when non-nil, arms the deterministic fault injector on every
	// point machine. Each machine builds its own injector from the plan, so
	// parallel points stay independent; a disarmed plan is bit-identical to
	// no plan at all.
	Faults *faultinject.Plan
	// Policy, when non-nil, selects the delivery policy on every point
	// machine. Nil leaves the machine default (delivery.TwoCase), keeping
	// default runs bit-identical.
	Policy delivery.Policy
	// Queue, when its Model is non-empty, selects every NI's input-queue
	// organization (see niq.Spec). The zero value leaves the machine
	// default (static FIFO), keeping default runs bit-identical.
	Queue niq.Spec
	// QueueAudit re-checks every NI input queue's structural invariants
	// after each queue mutation (see nic.Config.QueueAudit). Property
	// tests enable it; it changes no simulated behaviour, only walks the
	// structure and panics on the first violation.
	QueueAudit bool
	// Telemetry, when enabled (Every > 0), attaches a fresh flight
	// recorder to every point machine — each machine gets its own, so
	// parallel sweeps stay deterministic and race-free, and the per-point
	// timelines come back on the point results (Runner.OnTimeline).
	// Disabled (the zero value) adds no machine state and no events.
	Telemetry telemetry.Config
	// Profiler, when non-nil, attaches the engine cost profiler to every
	// point machine. Like Trace and Spans it is unsynchronized: pair it
	// with WithParallelism(1) (as `fugusim explain` does).
	Profiler *sim.Profiler
	// Partitions, when > 1, shards every point machine's event engine into
	// that many partition engines driven as a merged group. Results are
	// byte-identical to the serial engine for any value (the determinism
	// tests pin this); see glaze.Config.Partitions.
	Partitions int
}

// Option configures an experiment run.
type Option interface{ applyOption(*Options) }

type optionFunc func(*Options)

func (f optionFunc) applyOption(o *Options) { f(o) }

// WithTrials sets the number of trials averaged per sweep point.
func WithTrials(n int) Option { return optionFunc(func(o *Options) { o.Trials = n }) }

// WithQuick selects the scaled-down workloads benches and CI use; the
// relationships survive scaling (see EXPERIMENTS.md).
func WithQuick() Option { return optionFunc(func(o *Options) { o.Quick = true }) }

// WithFull selects the paper-scale workloads (slow).
func WithFull() Option { return optionFunc(func(o *Options) { o.Quick = false }) }

// WithSeed sets the base random seed; trial t of any experiment runs at
// seed Seed+t (see Options.TrialSeed).
func WithSeed(s uint64) Option { return optionFunc(func(o *Options) { o.Seed = s }) }

// WithParallelism sets the Runner's worker count.
func WithParallelism(n int) Option { return optionFunc(func(o *Options) { o.Parallelism = n }) }

// WithTrace installs an event log on every point machine the experiment
// builds. Enable the log's categories first; run serially (see
// Options.Trace).
func WithTrace(l *trace.Log) Option { return optionFunc(func(o *Options) { o.Trace = l }) }

// WithSpans installs a message-lifecycle recorder on every point machine;
// run serially (see Options.Spans).
func WithSpans(rec *spans.Recorder) Option {
	return optionFunc(func(o *Options) { o.Spans = rec })
}

// WithWatchdog installs the liveness watchdog on every point machine.
func WithWatchdog(wc glaze.WatchdogConfig) Option {
	return optionFunc(func(o *Options) { o.Watchdog = wc })
}

// WithFaults arms a deterministic fault plan on every point machine (see
// Options.Faults).
func WithFaults(plan *faultinject.Plan) Option {
	return optionFunc(func(o *Options) { o.Faults = plan })
}

// WithDeliveryPolicy selects the delivery policy on every point machine
// (see Options.Policy).
func WithDeliveryPolicy(p delivery.Policy) Option {
	return optionFunc(func(o *Options) { o.Policy = p })
}

// WithInputQueue selects the NI input-queue organization on every point
// machine (see Options.Queue).
func WithInputQueue(spec niq.Spec) Option {
	return optionFunc(func(o *Options) { o.Queue = spec })
}

// WithQueueAudit enables per-mutation input-queue invariant checking on
// every point machine (see Options.QueueAudit).
func WithQueueAudit() Option {
	return optionFunc(func(o *Options) { o.QueueAudit = true })
}

// WithTelemetry enables the flight recorder on every point machine (see
// Options.Telemetry).
func WithTelemetry(cfg telemetry.Config) Option {
	return optionFunc(func(o *Options) { o.Telemetry = cfg })
}

// WithProfiler attaches the engine cost profiler to every point machine;
// run serially (see Options.Profiler).
func WithProfiler(p *sim.Profiler) Option {
	return optionFunc(func(o *Options) { o.Profiler = p })
}

// WithPartitions shards every point machine's event engine across n
// partition engines (see Options.Partitions).
func WithPartitions(n int) Option {
	return optionFunc(func(o *Options) { o.Partitions = n })
}

// NewOptions resolves a full option set: the paper's defaults (full sizes,
// 3 trials, seed 1) overlaid with the given options.
func NewOptions(opts ...Option) Options {
	o := Options{Trials: 3, Seed: 1}
	for _, op := range opts {
		op.applyOption(&o)
	}
	return o
}

// Quantum is the scheduler timeslice, 500,000 cycles as in Section 5.
const Quantum = 500_000

// QuantumFor returns the timeslice for the chosen scale: quick mode shrinks
// the quantum along with the workloads so runs still span many timeslices
// (the schedule-quality experiments are meaningless inside one quantum).
func (o Options) QuantumFor() uint64 {
	if o.Quick {
		return 50_000
	}
	return Quantum
}

// TrialSeed derives the seed for one trial. Every experiment must use this
// helper so trial seeding stays consistent across tables and figures (and
// so serial and parallel runs agree bit for bit).
func (o Options) TrialSeed(trial int) uint64 { return o.Seed + uint64(trial) }

// trials returns the effective trial count, at least one.
func (o Options) trials() int { return max(1, o.Trials) }

// machineMut composes the option set's machine-level installs (the trace
// log, span recorder and watchdog) with a point's own config mutator.
// Experiment points pass the result wherever a func(*glaze.Config) is
// accepted, so options reach every machine without widening run signatures.
func (o Options) machineMut(extra func(*glaze.Config)) func(*glaze.Config) {
	if o.Trace == nil && o.Spans == nil && !o.Watchdog.Enabled() && o.Faults == nil &&
		o.Policy == nil && o.Queue.Model == "" && !o.QueueAudit && !o.Telemetry.Enabled() &&
		o.Profiler == nil && o.Partitions <= 1 && extra == nil {
		return nil
	}
	return func(cfg *glaze.Config) {
		if o.Trace != nil {
			cfg.Trace = o.Trace
		}
		if o.Spans != nil {
			cfg.Spans = o.Spans
		}
		if o.Watchdog.Enabled() {
			cfg.Watchdog = o.Watchdog
		}
		if o.Faults != nil {
			cfg.Faults = o.Faults
		}
		if o.Policy != nil {
			cfg.Delivery = o.Policy
		}
		if o.Queue.Model != "" {
			cfg.NIConfig.Queue = o.Queue
		}
		if o.QueueAudit {
			cfg.NIConfig.QueueAudit = true
		}
		if o.Telemetry.Enabled() {
			// A fresh recorder per machine: recorders are unsynchronized
			// and epoch-scoped, so sharing one across parallel points
			// would race and interleave.
			cfg.Telemetry = telemetry.NewRecorder(o.Telemetry)
		}
		if o.Profiler != nil {
			cfg.Profiler = o.Profiler
		}
		if o.Partitions > 1 {
			cfg.Partitions = o.Partitions
		}
		if extra != nil {
			extra(cfg)
		}
	}
}

// workers returns the effective worker-pool size.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}
