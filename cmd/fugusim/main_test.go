package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fugu/internal/harness"
)

// TestResolvePoint covers the experiment/point resolution shared by the
// trace and doctor subcommands.
func TestResolvePoint(t *testing.T) {
	opt := harness.NewOptions(harness.WithQuick(), harness.WithTrials(1))

	if _, _, _, err := resolvePoint("nonesuch", 0, opt); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown name: err = %v", err)
	}

	exp, pts, sel, err := resolvePoint("table4", 1, opt)
	if err != nil {
		t.Fatalf("table4 point 1: %v", err)
	}
	if exp.Name != "table4" || len(pts) != 3 {
		t.Fatalf("exp=%q with %d points, want table4 with 3", exp.Name, len(pts))
	}
	if sel == nil || sel.Label != pts[1].Label {
		t.Fatalf("selected %+v, want point 1 (%q)", sel, pts[1].Label)
	}

	if _, _, _, err := resolvePoint("table4", 99, opt); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range index: err = %v", err)
	}

	// A negative index is the -list path: enumeration only, no selection.
	_, pts, sel, err = resolvePoint("crlstress", pointIndex(5, true), opt)
	if err != nil || sel != nil || len(pts) == 0 {
		t.Fatalf("list path: pts=%d sel=%v err=%v", len(pts), sel, err)
	}
}

// TestPrepareOutputPath covers the doctor -o safety contract: stdout always
// passes, a fresh path gets its directory created, an existing file is
// refused without -force and preserved, and -force permits the overwrite.
func TestPrepareOutputPath(t *testing.T) {
	if err := prepareOutputPath("-", false); err != nil {
		t.Errorf("stdout sentinel: %v", err)
	}
	if err := prepareOutputPath("", false); err != nil {
		t.Errorf("empty path: %v", err)
	}

	dir := t.TempDir()
	fresh := filepath.Join(dir, "sub", "report.txt")
	if err := prepareOutputPath(fresh, false); err != nil {
		t.Fatalf("fresh path: %v", err)
	}
	if fi, err := os.Stat(filepath.Dir(fresh)); err != nil || !fi.IsDir() {
		t.Fatalf("parent directory not created: %v", err)
	}

	existing := filepath.Join(dir, "report.txt")
	if err := os.WriteFile(existing, []byte("previous diagnosis"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := prepareOutputPath(existing, false)
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("existing file without force: err = %v, want refusal", err)
	}
	if got, _ := os.ReadFile(existing); string(got) != "previous diagnosis" {
		t.Errorf("refusal clobbered the file: %q", got)
	}

	if err := prepareOutputPath(existing, true); err != nil {
		t.Errorf("existing file with -force: %v", err)
	}
}
