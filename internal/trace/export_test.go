package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestParseCats(t *testing.T) {
	got, err := ParseCats("mode, overflow")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []Category{Mode, Overflow}) {
		t.Errorf("ParseCats = %v", got)
	}
	all, err := ParseCats("")
	if err != nil || len(all) != int(numCategories) {
		t.Errorf("empty ParseCats = %v, %v", all, err)
	}
	if _, err := ParseCats("bogus"); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestWriteChromeTraceIsLoadableJSON(t *testing.T) {
	l := New(16)
	l.Enable(Mode, Overflow)
	l.Add(100, 0, Mode, "enter buffered %s", "barnes")
	l.Add(250, 3, Overflow, "trip %s", "barnes")
	l.Add(400, 0, Mode, "exit buffered barnes")

	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Cat   string `json:"cat"`
			Phase string `json:"ph"`
			TS    uint64 `json:"ts"`
			PID   int    `json:"pid"`
			TID   int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var instants, metadata int
	for _, ev := range parsed.TraceEvents {
		switch ev.Phase {
		case "i":
			instants++
		case "M":
			metadata++
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	if instants != 3 {
		t.Errorf("instants = %d, want 3", instants)
	}
	// Two distinct (node, cat) tracks, two metadata records each.
	if metadata != 4 {
		t.Errorf("metadata records = %d, want 4", metadata)
	}
	last := parsed.TraceEvents[len(parsed.TraceEvents)-1]
	if last.Name != "exit buffered barnes" || last.TS != 400 || last.PID != 0 || last.Cat != "mode" {
		t.Errorf("last event = %+v", last)
	}
}

func TestWriteChromeTraceReportsDropped(t *testing.T) {
	l := New(2)
	l.EnableAll()
	for i := 0; i < 5; i++ {
		l.Add(uint64(i), 0, Sched, "e%d", i)
	}
	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3 earlier events dropped") {
		t.Errorf("no dropped marker in %s", buf.String())
	}
	if l.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", l.Dropped())
	}
}

func TestWriteJSONL(t *testing.T) {
	l := New(8)
	l.EnableAll()
	l.Add(7, 1, Mode, "a")
	l.Add(9, 2, Sched, "b")
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2: %q", len(lines), buf.String())
	}
	var ev jsonlEvent
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.At != 9 || ev.Node != 2 || ev.Cat != "sched" || ev.What != "b" {
		t.Errorf("event = %+v", ev)
	}
}

func TestEmptyLogExports(t *testing.T) {
	l := New(4)
	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	buf.Reset()
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty JSONL = %q", buf.String())
	}
}
