package sim

import (
	"fmt"
	"testing"
)

// script drives one deterministic workload over engs (round-robin placement
// by index) and returns the observation log: every event records the
// engine-visible time, the tag, and any RNG draw. The workload mixes plain
// timers (with same-time cross-shard ties), procs with sleeps, a condition
// variable whose waiters live on different shards than the signaler, and a
// cross-shard cancel — every ordering-sensitive engine feature at once.
func script(engs []*Engine) []string {
	pick := func(i int) *Engine { return engs[i%len(engs)] }
	e0 := engs[0]
	var log []string
	rec := func(e *Engine, format string, args ...any) {
		log = append(log, fmt.Sprintf("%d ", e.Now())+fmt.Sprintf(format, args...))
	}

	cond := NewCond(pick(1))
	turn := 0
	for i := 0; i < 5; i++ {
		e := pick(i)
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(uint64(3 + i%3))
			rec(e, "w%d awake r=%d", i, e.Rand().Intn(100))
			for turn != i {
				cond.Wait(p)
			}
			turn++
			cond.Broadcast()
			p.Sleep(uint64(2 + i))
			rec(e, "w%d done", i)
		})
	}
	for i := 0; i < 12; i++ {
		e := pick(i * 5)
		j := i
		e.Schedule(uint64(4+(i%3)), func() { rec(e, "timer %d r=%d", j, e.Rand().Intn(7)) })
	}
	// A handle created on one shard, cancelled from an event on another.
	h := pick(2).Schedule(40, func() { rec(pick(2), "must-not-fire") })
	pick(3).Schedule(9, func() {
		pick(0).Cancel(h)
		rec(pick(3), "cancelled")
	})
	end := e0.Run()
	log = append(log, fmt.Sprintf("end %d pending %d live %d", end, e0.Pending(), e0.LiveProcs()))
	return log
}

func runScript(parts int) []string {
	if parts == 1 {
		return script([]*Engine{NewEngine(7)})
	}
	g := NewMergedGroup(7, parts)
	engs := make([]*Engine, parts)
	for i := range engs {
		engs[i] = g.Shard(i)
	}
	return script(engs)
}

// TestMergedMatchesSerial is the merged-mode contract: any shard count
// produces the exact serial execution — same dispatch order, same times,
// same RNG stream — because shards share the clock and sequence counter and
// the driver pops the global (time, seq) minimum.
func TestMergedMatchesSerial(t *testing.T) {
	want := runScript(1)
	if len(want) < 20 {
		t.Fatalf("script too small to be a meaningful check: %d entries", len(want))
	}
	for _, parts := range []int{2, 3, 5} {
		got := runScript(parts)
		if len(got) != len(want) {
			t.Fatalf("parts=%d: %d log entries, serial has %d", parts, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parts=%d: entry %d = %q, serial has %q", parts, i, got[i], want[i])
			}
		}
	}
}

// TestMergedRunUntil checks limit semantics through a merged group: time
// parks exactly at the limit with the future event still queued.
func TestMergedRunUntil(t *testing.T) {
	g := NewMergedGroup(1, 2)
	fired := false
	g.Shard(1).Schedule(100, func() { fired = true })
	if end := g.Shard(0).RunUntil(50); end != 50 {
		t.Fatalf("RunUntil(50) = %d", end)
	}
	if fired || g.Shard(0).Pending() != 1 {
		t.Fatalf("event fired early or lost: fired=%v pending=%d", fired, g.Shard(0).Pending())
	}
	if end := g.Shard(0).Run(); end != 100 || !fired {
		t.Fatalf("resume: end=%d fired=%v", end, fired)
	}
}

// parNode is one logical node of the parallel-mode test model: an
// open-loop sender plus two receive accumulators — an order-sensitive hash
// (must be identical across runs at the same shard count: worker
// interleaving must not leak into results) and order-insensitive sums
// (must be identical across shard counts: the window protocol must
// preserve event causality exactly).
type parNode struct {
	eng      *Engine
	idx      int
	rng      *Rand
	sent     int
	received uint64
	hash     uint64
	sum      uint64
}

const parLookahead = 8

func runParallelModel(parts int) (hashes, sums []uint64, received, end uint64) {
	const nodes, msgs = 8, 40
	g := NewParallelGroup(99, parts, parLookahead)
	ns := make([]*parNode, nodes)
	recvFn := func(arg any) {
		pair := arg.([2]uint64)
		n := ns[pair[0]]
		n.received++
		v := pair[1]
		n.hash = n.hash*1099511628211 + (n.eng.Now()*31 ^ v)
		n.sum += n.eng.Now()*31 + v
	}
	var sendFn func(any)
	sendFn = func(arg any) {
		n := arg.(*parNode)
		if n.sent >= msgs {
			return
		}
		n.sent++
		dst := ns[n.rng.Intn(nodes)]
		delay := parLookahead + n.rng.Uint64n(12)
		v := n.rng.Uint64() % 1000
		n.eng.CrossScheduleArgAtSite(dst.eng, SiteMisc, n.eng.Now()+delay, recvFn, [2]uint64{uint64(dst.idx), v})
		n.eng.ScheduleArg(1+n.rng.Uint64n(10), sendFn, n)
	}
	for i := range ns {
		ns[i] = &parNode{eng: g.Shard(i * parts / nodes), idx: i, rng: NewRand(uint64(1000 + i))}
	}
	for _, n := range ns {
		n.eng.ScheduleArg(n.rng.Uint64n(5), sendFn, n)
	}
	end = g.Shard(0).Run()
	for _, n := range ns {
		hashes = append(hashes, n.hash)
		sums = append(sums, n.sum)
		received += n.received
	}
	return hashes, sums, received, end
}

// TestParallelDeterministicAcrossRuns: the same shard count twice must be
// bit-identical including same-cycle tie order (the staged-drain fixed
// order is what guarantees this against goroutine interleaving).
func TestParallelDeterministicAcrossRuns(t *testing.T) {
	h1, s1, r1, e1 := runParallelModel(4)
	h2, s2, r2, e2 := runParallelModel(4)
	if r1 != r2 || e1 != e2 {
		t.Fatalf("runs differ: received %d/%d end %d/%d", r1, r2, e1, e2)
	}
	for i := range h1 {
		if h1[i] != h2[i] || s1[i] != s2[i] {
			t.Fatalf("node %d differs across identical runs: hash %x/%x sum %d/%d", i, h1[i], h2[i], s1[i], s2[i])
		}
	}
}

// TestParallelMatchesSerialCausality: across shard counts the executed
// event set, times and end time are identical (order within one cycle may
// legally differ, so the comparison uses the commutative accumulators).
func TestParallelMatchesSerialCausality(t *testing.T) {
	_, base, rBase, eBase := runParallelModel(1)
	var total uint64
	for _, s := range base {
		total += s
	}
	if total == 0 || rBase == 0 {
		t.Fatal("base model did nothing")
	}
	for _, parts := range []int{2, 4} {
		_, sums, r, end := runParallelModel(parts)
		if r != rBase || end != eBase {
			t.Fatalf("parts=%d: received %d end %d, serial %d/%d", parts, r, end, rBase, eBase)
		}
		for i := range base {
			if sums[i] != base[i] {
				t.Fatalf("parts=%d: node %d sum %d, serial %d", parts, i, sums[i], base[i])
			}
		}
	}
}

// TestParallelLookaheadViolationPanics: staging an event inside the current
// horizon is a model bug and must be caught loudly, not reordered silently.
func TestParallelLookaheadViolationPanics(t *testing.T) {
	g := NewParallelGroup(1, 2, 10)
	g.Shard(0).Schedule(5, func() {
		// Claims a 10-cycle lookahead but schedules 2 cycles out.
		g.Shard(0).CrossScheduleArgAtSite(g.Shard(1), SiteMisc, g.Shard(0).Now()+2, func(any) {}, nil)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for a lookahead violation")
		}
	}()
	g.Shard(0).Run()
}

// TestParallelStop: a Stop from inside a window ends the run at the next
// barrier; the queue keeps its unexecuted events.
func TestParallelStop(t *testing.T) {
	g := NewParallelGroup(1, 2, 4)
	ran := 0
	g.Shard(1).Schedule(3, func() {
		ran++
		g.Shard(1).Stop()
	})
	g.Shard(0).Schedule(500, func() { ran++ })
	g.Shard(0).Run()
	if ran != 1 {
		t.Fatalf("ran %d events, want 1 (stop should end the run)", ran)
	}
	if g.Shard(0).Pending() != 1 {
		t.Fatalf("pending %d, want the far event still queued", g.Shard(0).Pending())
	}
}

// TestGroupStats: the diagnostic snapshot reports per-shard depth and
// barrier counts.
func TestGroupStats(t *testing.T) {
	g := NewParallelGroup(1, 2, 4)
	g.Shard(0).Schedule(1, func() {})
	g.Shard(0).Schedule(100, func() {})
	st := g.Stats()
	if st.Mode != Parallel || len(st.Shards) != 2 || st.Shards[0].HeapDepth != 2 {
		t.Fatalf("pre-run stats wrong: %+v", st)
	}
	g.Shard(0).Run()
	st = g.Stats()
	if st.Barriers == 0 || st.Shards[1].BarrierWaits == 0 {
		t.Fatalf("post-run stats wrong: %+v", st)
	}

	m := NewMergedGroup(1, 3)
	m.Shard(2).Schedule(7, func() {})
	m.Shard(0).Run()
	ms := m.Stats()
	if ms.Mode != Merged || ms.Horizon != 7 || ms.Shards[2].Now != 7 {
		t.Fatalf("merged stats wrong: %+v", ms)
	}
}
