package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// GaugeValue is the exported state of one gauge.
type GaugeValue struct {
	Cur int64 `json:"cur"`
	Max int64 `json:"max"`
}

// Bucket is one occupied histogram bucket; Le is the inclusive upper bound
// of the sample range it counts (Prometheus-style "less than or equal").
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramValue is the exported state of one histogram. Buckets lists only
// occupied buckets, sorted by bound.
type HistogramValue struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the histogram's average sample, 0 with no samples.
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time export of a registry — plain data, safe to
// retain after the machine that produced it is gone, and mergeable across
// nodes, trials and sweep points.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters"`
	Gauges     map[string]GaugeValue     `json:"gauges"`
	Histograms map[string]HistogramValue `json:"histograms"`
}

// NewSnapshot returns an empty snapshot with allocated maps.
func NewSnapshot() Snapshot {
	return Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]GaugeValue{},
		Histograms: map[string]HistogramValue{},
	}
}

// Empty reports whether the snapshot holds no instruments at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Snapshot exports the registry's current state. A nil registry exports an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := NewSnapshot()
	if r == nil {
		return s
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeValue{Cur: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		hv := HistogramValue{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		for i, n := range h.buckets {
			if n > 0 {
				hv.Buckets = append(hv.Buckets, Bucket{Le: BucketBound(i), Count: n})
			}
		}
		s.Histograms[name] = hv
	}
	return s
}

// Merge folds any number of snapshots into one, deterministically whatever
// the argument order: counters and histogram contents sum; gauge levels sum
// (parts are disjoint instruments — per-node registries of one machine, or
// per-point machines) while gauge maxima take the maximum, so a merged
// high-water mark reports the worst single part, matching the paper's
// per-node "buffer pages" metric.
func Merge(parts ...Snapshot) Snapshot {
	out := NewSnapshot()
	for _, p := range parts {
		for name, v := range p.Counters {
			out.Counters[name] += v
		}
		for name, g := range p.Gauges {
			cur := out.Gauges[name]
			cur.Cur += g.Cur
			if g.Max > cur.Max {
				cur.Max = g.Max
			}
			out.Gauges[name] = cur
		}
		for name, h := range p.Histograms {
			out.Histograms[name] = mergeHist(out.Histograms[name], h)
		}
	}
	return out
}

// mergeHist combines two exported histograms bucket-wise.
func mergeHist(a, b HistogramValue) HistogramValue {
	if a.Count == 0 {
		return cloneHist(b)
	}
	if b.Count == 0 {
		return cloneHist(a)
	}
	m := HistogramValue{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   a.Min,
		Max:   a.Max,
	}
	if b.Min < m.Min {
		m.Min = b.Min
	}
	if b.Max > m.Max {
		m.Max = b.Max
	}
	byLe := map[uint64]uint64{}
	for _, bk := range a.Buckets {
		byLe[bk.Le] += bk.Count
	}
	for _, bk := range b.Buckets {
		byLe[bk.Le] += bk.Count
	}
	les := make([]uint64, 0, len(byLe))
	for le := range byLe {
		les = append(les, le)
	}
	sort.Slice(les, func(i, j int) bool { return les[i] < les[j] })
	for _, le := range les {
		m.Buckets = append(m.Buckets, Bucket{Le: le, Count: byLe[le]})
	}
	return m
}

// cloneHist deep-copies a histogram value so merged snapshots never alias
// their parts' bucket slices.
func cloneHist(h HistogramValue) HistogramValue {
	out := h
	out.Buckets = append([]Bucket(nil), h.Buckets...)
	return out
}

// JSON renders the snapshot as indented JSON with deterministically ordered
// keys (encoding/json sorts map keys).
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("metrics: snapshot marshal: %v", err)) // plain data: cannot fail
	}
	return append(b, '\n')
}

// CSVField escapes one CSV field per RFC 4180: fields containing a comma,
// quote or line break are quoted with embedded quotes doubled; everything
// else passes through unchanged (so well-behaved instrument names render
// byte-identically to the unescaped writer). The snapshot CSV and the
// telemetry timeline CSV share it.
func CSVField(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSV renders the snapshot as "metric,kind,field,value" rows sorted by
// metric name, one row per exported scalar and one per occupied histogram
// bucket (field "le_<bound>"). Metric names are escaped with CSVField.
func (s Snapshot) CSV() string {
	var b strings.Builder
	b.WriteString("metric,kind,field,value\n")
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s,counter,count,%d\n", CSVField(n), s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := s.Gauges[n]
		fmt.Fprintf(&b, "%s,gauge,cur,%d\n", CSVField(n), g.Cur)
		fmt.Fprintf(&b, "%s,gauge,max,%d\n", CSVField(n), g.Max)
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		e := CSVField(n)
		fmt.Fprintf(&b, "%s,histogram,count,%d\n", e, h.Count)
		fmt.Fprintf(&b, "%s,histogram,sum,%d\n", e, h.Sum)
		fmt.Fprintf(&b, "%s,histogram,min,%d\n", e, h.Min)
		fmt.Fprintf(&b, "%s,histogram,max,%d\n", e, h.Max)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s,histogram,le_%d,%d\n", e, bk.Le, bk.Count)
		}
	}
	return b.String()
}
