package apps

import (
	"fmt"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
	"fugu/internal/udm"
)

// Synth is the synth-N producer-consumer application of Section 5.2:
// NodesUsed processors iteratively generate groups of GroupN request
// messages directed at random peers, then wait for all of the group's
// replies (a synchronization point bounding outstanding requests to
// GroupN). Each request handler stalls THand cycles (290 in the paper,
// including interrupt and kernel overhead) and replies; the gap between
// individual sends is uniformly distributed with mean TBetw.
type Synth struct {
	GroupN    int    // requests per synchronization point (10/100/1000)
	Groups    int    // groups each node issues
	TBetw     uint64 // mean inter-send interval
	THandWork uint64 // request handler stall (computation part)
	NodesUsed int    // paper uses 4 processors

	acked    []uint64
	received []uint64
}

// NewSynth configures synth-N as in the paper: 4 nodes, T_hand tuned so the
// full handler occupancy lands near 290 cycles.
func NewSynth(groupN, groups int, tBetw uint64) *Synth {
	return &Synth{
		GroupN:    groupN,
		Groups:    groups,
		TBetw:     tBetw,
		THandWork: 200, // + receive/reply overheads ≈ the paper's 290 total
		NodesUsed: 4,
	}
}

// Name implements Instance.
func (s *Synth) Name() string { return fmt.Sprintf("synth-%d", s.GroupN) }

// Model implements Instance.
func (s *Synth) Model() string { return "UDM" }

// Start implements Instance.
func (s *Synth) Start(m *glaze.Machine, job *glaze.Job) {
	r := NewRig(m, job)
	n := s.NodesUsed
	if n > r.Nodes() {
		n = r.Nodes()
	}
	s.acked = make([]uint64, n)
	s.received = make([]uint64, n)
	acks := make([]*udm.Counter, n)
	for node := 0; node < n; node++ {
		node := node
		acks[node] = udm.NewCounter()
		ep := r.EPs[node]
		ep.On(hSynthReq, func(e *udm.Env, msg *udm.Msg) {
			s.received[node]++
			e.Spend(s.THandWork)
			e.Inject(int(msg.Args[0]), hSynthAck)
		})
		ep.On(hSynthAck, func(e *udm.Env, msg *udm.Msg) {
			s.acked[node]++
			acks[node].Add(1)
		})
		job.Process(node).StartMain(func(t *cpu.Task) {
			e := ep.Env(t)
			rng := m.Eng.Rand()
			want := uint64(0)
			for g := 0; g < s.Groups; g++ {
				for i := 0; i < s.GroupN; i++ {
					dst := rng.Intn(n - 1)
					if dst >= node {
						dst++
					}
					e.Inject(dst, hSynthReq, uint64(node))
					want++
					if gap := rng.UniformAround(s.TBetw); gap > 0 {
						t.Spend(gap)
					}
				}
				// Synchronization point: wait for the whole group's acks.
				acks[node].WaitFor(t, want)
			}
		})
	}
}

// Check implements Instance: every request must have been served and every
// reply received.
func (s *Synth) Check() error {
	total := uint64(s.GroupN * s.Groups)
	var recvd, acked uint64
	for node := range s.acked {
		if s.acked[node] != total {
			return checkf("synth: node %d acked %d/%d", node, s.acked[node], total)
		}
		recvd += s.received[node]
		acked += s.acked[node]
	}
	if recvd != acked {
		return checkf("synth: received %d != acked %d", recvd, acked)
	}
	return nil
}
