package delivery

import (
	"testing"

	"fugu/internal/vm"
)

// FuzzBufferInsertDrain differentially tests the virtual software buffer —
// the insert/drain path of second-case delivery — against a plain Go slice
// model. The fuzz input chooses record lengths, push/pop interleaving and
// the frame-pool size, so the page-reclamation, eviction and swap-in
// machinery all get exercised under arbitrary schedules. Every drained
// record must read back word-for-word identical to what was pushed, in FIFO
// order, and a fully drained buffer must return every frame to the pool.
func FuzzBufferInsertDrain(f *testing.F) {
	f.Add([]byte{3, 10, 200, 3, 0, 7, 3, 3}, uint8(3))
	f.Add([]byte{255, 255, 255, 255, 0, 1, 2, 3, 4, 5, 6, 7}, uint8(1))
	f.Add([]byte{40, 3, 80, 3, 120, 3, 160, 3, 200, 3}, uint8(8))
	f.Fuzz(func(t *testing.T, script []byte, poolB uint8) {
		// At least four frames: a record may straddle a page boundary while
		// the head page and a swap-restore victim are resident too. Records
		// below a page keep within the buffer's design envelope (real NI
		// messages are tens of words; see TestBufferFIFOProperty).
		frames := vm.NewFrames(int(poolB)%6 + 4)
		b := NewVirtualBuffer(frames)
		var model [][]uint64

		verifyHead := func() {
			want := model[0]
			if n := b.HeadLen(); n != len(want) {
				t.Fatalf("head len = %d, want %d", n, len(want))
			}
			for j, w := range want {
				if got := b.HeadWord(j); got != w {
					t.Fatalf("head word %d = %#x, want %#x", j, got, w)
				}
			}
		}

		seq := uint64(0)
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i], script[i+1]
			if op%4 == 3 && len(model) > 0 {
				verifyHead()
				b.Pop()
				model = model[1:]
				continue
			}
			n := (int(op)*13+int(arg))%600 + 1
			words := make([]uint64, n)
			for j := range words {
				seq++
				words[j] = seq*0x9e3779b97f4a7c15 + uint64(j)
			}
			b.Push(seq, words, 0, 0)
			model = append(model, words)
		}
		for len(model) > 0 {
			verifyHead()
			b.Pop()
			model = model[1:]
		}
		if !b.Empty() {
			t.Fatal("buffer not empty after draining the model")
		}
		if b.PagesResident() != 0 {
			t.Fatalf("resident pages after drain = %d, want 0", b.PagesResident())
		}
		if frames.InUse() != 0 {
			t.Fatalf("frames in use after drain = %d, want 0", frames.InUse())
		}
	})
}
