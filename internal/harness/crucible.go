package harness

import (
	"context"
	"fmt"
	"io"
	"strings"

	"fugu/internal/cpu"
	"fugu/internal/delivery"
	"fugu/internal/faultinject"
	"fugu/internal/glaze"
	"fugu/internal/metrics"
	"fugu/internal/plot"
	"fugu/internal/spans"
	"fugu/internal/telemetry"
	"fugu/internal/udm"
	"fugu/internal/vm"
)

// The crucible is the adversarial counterpart of the paper experiments: a
// fixed all-to-all messaging workload run under a sweep of deterministic
// fault plans, with delivery oracles checked after every run. Where the
// tables measure the happy path's cycle counts, the crucible proves the
// two-case machinery degrades gracefully — no message lost, duplicated or
// stuck — when every second-case cause is forced on purpose.

// cruciblePlan is one named fault schedule in the sweep.
type cruciblePlan struct {
	name string
	// arm populates the plan's specs; the seed is derived per trial.
	arm func(p *faultinject.Plan)
}

// crucibleWindow bounds every plan's faults: they arm shortly after startup
// and lift at crucibleFaultsLift, well before the workload finishes, so the
// tail of the traffic exercises the drain back to fast mode (the "faults
// lift" oracle).
const (
	crucibleFaultsStart = 1_000
	crucibleFaultsLift  = 25_000
)

// Timeline-oracle knobs. Sampling every crucibleSampleEvery cycles resolves
// the fault window (24k cycles wide) into a dozen intervals; the drain
// margin allows withheld frames to release (FrameStarvation holds them for
// 1<<16 cycles past injection) and the backlog to flush before the
// timeline must show overflow quiet again.
const (
	crucibleSampleEvery  = 2_000
	crucibleDrainMargin  = 200_000
	crucibleMaxResidency = 0.25 // post-drain buffered-mode interval fraction bound
)

// cruciblePlans is the sweep. Probabilities are per-opportunity (arrival,
// dispatch, launch); windows are cycles. The "none" plan validates the
// oracles on a fault-free run and pins the bit-identity property inside the
// sweep itself.
func cruciblePlans() []cruciblePlan {
	w := func(s faultinject.FaultSpec) faultinject.FaultSpec {
		s.From, s.Until, s.Node = crucibleFaultsStart, crucibleFaultsLift, faultinject.AllNodes
		return s
	}
	return []cruciblePlan{
		{"none", func(p *faultinject.Plan) {}},
		{"mismatch", func(p *faultinject.Plan) {
			p.Arm(faultinject.GIDMismatch, w(faultinject.FaultSpec{Prob: 0.6}))
		}},
		{"revoke", func(p *faultinject.Plan) {
			p.Arm(faultinject.AtomicityTimeout, w(faultinject.FaultSpec{Prob: 0.6}))
		}},
		{"handler-fault", func(p *faultinject.Plan) {
			p.Arm(faultinject.HandlerPageFault, w(faultinject.FaultSpec{Prob: 0.4}))
		}},
		{"expiry", func(p *faultinject.Plan) {
			p.Arm(faultinject.QuantumExpiry, w(faultinject.FaultSpec{Prob: 0.25, Cycles: 2_000}))
		}},
		{"starve", func(p *faultinject.Plan) {
			// Withholding far more frames than exist drains the pool to the
			// starvation reserve; the mismatch stream then forces inserts
			// whose overflow check trips with the pool nearly gone.
			p.Arm(faultinject.FrameStarvation, w(faultinject.FaultSpec{Cycles: 1 << 16}))
			p.Arm(faultinject.GIDMismatch, w(faultinject.FaultSpec{Prob: 0.8}))
		}},
		{"network", func(p *faultinject.Plan) {
			p.Arm(faultinject.LinkStall, w(faultinject.FaultSpec{Prob: 0.3, Cycles: 300}))
			p.Arm(faultinject.HotSpot, w(faultinject.FaultSpec{Prob: 0.3, Cycles: 300}))
			p.Arm(faultinject.DMAStall, w(faultinject.FaultSpec{Prob: 0.3, Cycles: 200}))
			// The clamp (2 words < the 4 a send needs) stalls every sender for
			// its whole window, so it gets a short sub-window — otherwise no
			// send happens inside [From, Until) and the stall faults starve.
			p.Arm(faultinject.TinyWindow, faultinject.FaultSpec{
				Cycles: 2, From: 5_000, Until: 12_000, Node: faultinject.AllNodes,
			})
			// Gang ticks land on quantum boundaries, far past the common
			// window; skew gets its own wide window to cover some. Skew never
			// enters buffered mode, so a late lift cannot break the drain.
			p.Arm(faultinject.GangSkew, faultinject.FaultSpec{
				Prob: 0.5, Cycles: 500, From: crucibleFaultsStart, Until: 600_000,
				Node: faultinject.AllNodes,
			})
		}},
		{"chaos", func(p *faultinject.Plan) {
			p.Arm(faultinject.GIDMismatch, w(faultinject.FaultSpec{Prob: 0.3}))
			p.Arm(faultinject.AtomicityTimeout, w(faultinject.FaultSpec{Prob: 0.3}))
			p.Arm(faultinject.HandlerPageFault, w(faultinject.FaultSpec{Prob: 0.2}))
			p.Arm(faultinject.QuantumExpiry, w(faultinject.FaultSpec{Prob: 0.15, Cycles: 1_500}))
			p.Arm(faultinject.FrameStarvation, w(faultinject.FaultSpec{Cycles: 1 << 16}))
			p.Arm(faultinject.LinkStall, w(faultinject.FaultSpec{Prob: 0.2, Cycles: 200}))
			p.Arm(faultinject.HotSpot, w(faultinject.FaultSpec{Prob: 0.2, Cycles: 200}))
			p.Arm(faultinject.DMAStall, w(faultinject.FaultSpec{Prob: 0.2, Cycles: 150}))
			p.Arm(faultinject.GangSkew, faultinject.FaultSpec{
				Prob: 0.3, Cycles: 400, From: crucibleFaultsStart, Until: 600_000,
				Node: faultinject.AllNodes,
			})
		}},
	}
}

// CrucibleCauses are the five second-case transition causes the sweep must
// force, keyed by the label CauseCoverage reports.
var CrucibleCauses = []string{
	"gid-mismatch", "atomicity-timeout", "handler-fault", "quantum-expiry", "buffer-overflow",
}

// CrucibleRow is one (plan, trial) run's outcome.
type CrucibleRow struct {
	Plan      string
	Trial     int
	Seed      uint64 // machine seed (the plan's PCG seed derives from it)
	Completed bool
	Cycles    uint64
	Fast      uint64 // fast-path deliveries
	Buffered  uint64 // buffered-path deliveries
	Injected  [faultinject.NumKinds]uint64
	// Problems lists delivery-oracle violations; empty on a healthy run.
	Problems []string
}

// Revocations and in-handler faults come from the metrics snapshot, kept on
// the row for cause coverage without re-deriving from raw snapshots.
type crucibleCounters struct {
	revocations     uint64
	faultsInHandler uint64
	overflowTrips   uint64
}

// CrucibleResult is the structured outcome of the crucible sweep.
type CrucibleResult struct {
	Rows []CrucibleRow
	// Policy names the delivery policy the sweep ran under; KernelBuffered
	// mirrors its Policy.KernelBuffered() and decides which causes the
	// sweep can force at all (see RequiredCauses).
	Policy         string
	KernelBuffered bool
	counters       []crucibleCounters
}

// Problems flattens every row's oracle violations, prefixed by the run.
func (r CrucibleResult) Problems() []string {
	var out []string
	for _, row := range r.Rows {
		for _, p := range row.Problems {
			out = append(out, fmt.Sprintf("%s trial=%d: %s", row.Plan, row.Trial, p))
		}
	}
	return out
}

// RequiredCauses lists the second-case causes this sweep must force under
// its delivery policy. A policy with no kernel-buffered mode (hardware
// demux into protected rings) structurally cannot revoke atomicity or trip
// software-buffer overflow control — those causes are absent by design, not
// missed by the sweep.
func (r CrucibleResult) RequiredCauses() []string {
	if r.KernelBuffered {
		return CrucibleCauses
	}
	out := make([]string, 0, len(CrucibleCauses))
	for _, c := range CrucibleCauses {
		if c == "atomicity-timeout" || c == "buffer-overflow" {
			continue
		}
		out = append(out, c)
	}
	return out
}

// CauseCoverage reports, for each of the five second-case causes, whether
// the sweep forced it at least once.
func (r CrucibleResult) CauseCoverage() map[string]bool {
	cov := map[string]bool{}
	for _, c := range CrucibleCauses {
		cov[c] = false
	}
	for i, row := range r.Rows {
		if row.Injected[faultinject.GIDMismatch] > 0 {
			cov["gid-mismatch"] = true
		}
		if row.Injected[faultinject.QuantumExpiry] > 0 {
			cov["quantum-expiry"] = true
		}
		if i < len(r.counters) {
			c := r.counters[i]
			if row.Injected[faultinject.AtomicityTimeout] > 0 && c.revocations > 0 {
				cov["atomicity-timeout"] = true
			}
			if row.Injected[faultinject.HandlerPageFault] > 0 && c.faultsInHandler > 0 {
				cov["handler-fault"] = true
			}
			if row.Injected[faultinject.FrameStarvation] > 0 && c.overflowTrips > 0 {
				cov["buffer-overflow"] = true
			}
		}
	}
	return cov
}

// Print renders the sweep table, the cause-coverage line and any oracle
// violations.
func (r CrucibleResult) Print(w io.Writer) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		status := "ok"
		if !row.Completed {
			status = "WEDGED"
		} else if len(row.Problems) > 0 {
			status = "ORACLE FAIL"
		}
		var inj uint64
		for _, c := range row.Injected {
			inj += c
		}
		rows = append(rows, []string{
			row.Plan, fmt.Sprint(row.Trial), status,
			u(row.Fast), u(row.Buffered), u(inj), u(row.Cycles),
		})
	}
	fmt.Fprintf(w, "Crucible: fault plans x seeds under delivery oracles (8 nodes, all-to-all, policy %s)\n", r.Policy)
	fmt.Fprintln(w, plot.Table([]string{"plan", "trial", "status", "fast", "buffered", "injected", "cycles"}, rows))
	cov := r.CauseCoverage()
	required := r.RequiredCauses()
	parts := make([]string, 0, len(required))
	for _, c := range required {
		mark := "MISSING"
		if cov[c] {
			mark = "forced"
		}
		parts = append(parts, c+"="+mark)
	}
	fmt.Fprintln(w, "cause coverage:", strings.Join(parts, " "))
	if problems := r.Problems(); len(problems) > 0 {
		fmt.Fprintf(w, "\n%d oracle violation(s):\n", len(problems))
		for _, p := range problems {
			fmt.Fprintln(w, " ", p)
		}
	} else {
		fmt.Fprintln(w, "all delivery oracles passed")
	}
}

// CSVFiles renders the sweep as crucible.csv.
func (r CrucibleResult) CSVFiles() map[string]string {
	var b strings.Builder
	b.WriteString("policy,plan,trial,seed,completed,cycles,fast,buffered")
	for k := faultinject.Kind(0); k < faultinject.NumKinds; k++ {
		b.WriteString(",inj_" + strings.ReplaceAll(k.String(), "-", "_"))
	}
	b.WriteString(",problems\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%v,%d,%d,%d",
			r.Policy, row.Plan, row.Trial, row.Seed, row.Completed, row.Cycles, row.Fast, row.Buffered)
		for _, c := range row.Injected {
			fmt.Fprintf(&b, ",%d", c)
		}
		fmt.Fprintf(&b, ",%d\n", len(row.Problems))
	}
	return map[string]string{"crucible.csv": b.String()}
}

// cruciblePoint carries one row plus the machine's metrics snapshot and
// flight-recorder timeline.
type cruciblePoint struct {
	row      CrucibleRow
	counters crucibleCounters
	snap     metrics.Snapshot
	timeline telemetry.Timeline
}

// MetricsSnapshot implements MetricsCarrier for the Runner's metrics hook.
func (p cruciblePoint) MetricsSnapshot() metrics.Snapshot { return p.snap }

// TimelineData implements TimelineCarrier for the Runner's timeline hook.
func (p cruciblePoint) TimelineData() telemetry.Timeline { return p.timeline }

// Crucible runs the fault-plan sweep.
func Crucible(opts ...Option) (CrucibleResult, error) {
	return runAs[CrucibleResult]("crucible", opts...)
}

// crucibleExperiment fans out one point per (plan, trial).
func crucibleExperiment() *Experiment {
	return &Experiment{
		Name:        "crucible",
		Description: "fault-plan sweep with delivery oracles; forces every second-case cause",
		Points: func(opt Options) []Point {
			plans := cruciblePlans()
			pts := make([]Point, 0, len(plans)*opt.trials())
			for _, pl := range plans {
				for trial := 0; trial < opt.trials(); trial++ {
					pl, trial := pl, trial
					pts = append(pts, Point{
						Label: fmt.Sprintf("%s trial=%d", pl.name, trial),
						Run: func(_ context.Context, opt Options) (any, error) {
							return runCrucible(pl, trial, opt), nil
						},
					})
				}
			}
			return pts
		},
		Assemble: func(opt Options, results []any) (Result, error) {
			pol := opt.Policy
			if pol == nil {
				pol = delivery.TwoCase{}
			}
			res := CrucibleResult{
				Rows:           make([]CrucibleRow, len(results)),
				Policy:         pol.Name(),
				KernelBuffered: pol.KernelBuffered(),
				counters:       make([]crucibleCounters, len(results)),
			}
			for i, r := range results {
				p := r.(cruciblePoint)
				res.Rows[i] = p.row
				res.counters[i] = p.counters
			}
			return res, nil
		},
	}
}

// crucibleHandler is the workload's handler id.
const crucibleHandler = 7

// crucibleLoad shapes the workload's traffic pattern. The crucible default
// ({burst: 1}) is the smooth round-robin all-to-all the golden hashes pin;
// the buffer lab cranks burst up and turns converge on to reproduce the
// hot-spot offered load of the DAMQ literature: every node fires a
// back-to-back burst at the same rotating destination, so one NI's input
// queue sees the whole machine's burst at once while the rest sit idle.
type crucibleLoad struct {
	// burst is how many sends go back-to-back before each inter-send gap;
	// 1 restores the original smooth pacing.
	burst int
	// converge points every sender's burst at one shared destination that
	// rotates per burst round (senders skip themselves by aiming at their
	// clockwise neighbor), instead of per-sender round-robin.
	converge bool
}

// dst picks message i's destination for sender n under this load shape.
func (l crucibleLoad) dst(n, i, nodes int) int {
	if l.converge {
		d := (i / l.burst) % nodes
		if d == n {
			d = (d + 1) % nodes
		}
		return d
	}
	return (n + 1 + i%(nodes-1)) % nodes
}

// runCrucible executes one (plan, trial) run and checks the delivery
// oracles. The workload is a deterministic all-to-all: every node sends S
// tagged messages round-robin to the other nodes, interleaving data-page
// touches and polled atomic sections, and waits until it has received its
// own expected share. Completion therefore already implies no message was
// lost; the oracles sharpen that to exactly-once, fully-drained and
// span-reconciled.
func runCrucible(pl cruciblePlan, trial int, opt Options) cruciblePoint {
	return runCrucibleLoad(pl, trial, opt, crucibleLoad{burst: 1})
}

// runCrucibleLoad is runCrucible under an explicit load shape; with the
// default load the event stream is bit-identical to the original workload.
func runCrucibleLoad(pl cruciblePlan, trial int, opt Options, load crucibleLoad) cruciblePoint {
	sends := 400
	if opt.Quick {
		sends = 80
	}
	const preTouchPages = 4

	cfg := glaze.DefaultConfig()
	cfg.Seed = opt.TrialSeed(trial)
	// A small pool makes frame starvation able to reach the overflow
	// thresholds with a modest message backlog.
	cfg.FramesPerNode = 96
	var plan faultinject.Plan
	// The plan's private stream is seeded from the machine seed and plan
	// name so trials differ and plans never share a fault schedule.
	plan.Seed = cfg.Seed * 0x9e3779b97f4a7c15
	for _, ch := range pl.name {
		plan.Seed = plan.Seed*31 + uint64(ch)
	}
	pl.arm(&plan)
	if mut := opt.machineMut(nil); mut != nil {
		mut(&cfg)
	}
	if cfg.Faults == nil {
		cfg.Faults = &plan
	}
	// Every run gets spans and a watchdog even outside doctor mode: the
	// oracles need the recorder, and a wedged plan must stop with a report
	// rather than burn the whole cycle budget.
	ownRec := cfg.Spans == nil
	if ownRec {
		cfg.Spans = spans.NewRecorder(cfg.Trace)
	}
	if !cfg.Watchdog.Enabled() {
		cfg.Watchdog = glaze.WatchdogConfig{Interval: 100_000, Grace: 10}
	}
	// The timeline oracles need the flight recorder even outside -timeline
	// runs; a harness-provided recorder (Options.Telemetry) wins.
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRecorder(telemetry.Config{Every: crucibleSampleEvery})
	}
	rec := cfg.Spans

	m := glaze.NewMachine(cfg)
	nodes := m.Net.Nodes()
	job := m.NewJob("crucible")

	// expected[d] is how many workload messages node d must receive.
	expected := make([]uint64, nodes)
	for src := 0; src < nodes; src++ {
		for i := 0; i < sends; i++ {
			expected[load.dst(src, i, nodes)]++
		}
	}
	// seen[src*sends+i] counts deliveries of message (src, i): the
	// exactly-once oracle demands every slot end at exactly 1.
	seen := make([]uint32, nodes*sends)
	recv := make([]*udm.Counter, nodes)
	eps := make([]*udm.EP, nodes)
	for n := 0; n < nodes; n++ {
		recv[n] = udm.NewCounter()
		eps[n] = udm.Attach(job.Process(n))
		c := recv[n]
		eps[n].On(crucibleHandler, func(e *udm.Env, msg *udm.Msg) {
			seen[msg.Args[0]*uint64(sends)+msg.Args[1]]++
			e.Spend(30)
			c.Add(1)
		})
	}
	for n := 0; n < nodes; n++ {
		n := n
		job.Process(n).StartMain(func(tk *cpu.Task) {
			e := eps[n].Env(tk)
			for pg := 0; pg < preTouchPages; pg++ {
				e.Touch(uint64(pg) * vm.PageWords)
			}
			for i := 0; i < sends; i++ {
				dst := load.dst(n, i, nodes)
				e.Inject(dst, crucibleHandler, uint64(n), uint64(i))
				if i%8 == 3 {
					e.Touch(uint64(i%preTouchPages) * vm.PageWords)
				}
				if i%16 == 9 {
					e.BeginAtomic()
					e.Poll()
					e.EndAtomic()
				}
				if (i+1)%load.burst == 0 {
					e.Spend(uint64(120 + (i*7+n*13)%240))
				}
			}
			recv[n].WaitFor(tk, expected[n])
		})
	}
	m.NewGang(opt.QuantumFor(), 0.01, job).Start()
	m.RunUntilDone(200_000_000, job)
	if job.Done() {
		// Settle window: the last dispose may leave trailing traffic (an
		// overflow release broadcast) in flight.
		m.Eng.RunUntil(m.Eng.Now() + 30_000)
	}

	tl := m.FinishTelemetry()
	snap := m.MetricsSnapshot()
	row := CrucibleRow{
		Plan:      pl.name,
		Trial:     trial,
		Seed:      cfg.Seed,
		Completed: job.Done(),
		Cycles:    m.Eng.Now(),
		Fast:      snap.Counters["glaze.deliver.fast"],
		Buffered:  snap.Counters["glaze.deliver.buffered"],
		Injected:  m.Faults.Counts(),
	}
	row.Problems = crucibleOracles(m, job, rec, ownRec, snap, seen, sends)
	row.Problems = append(row.Problems, crucibleTimelineOracles(tl)...)
	return cruciblePoint{
		row: row,
		counters: crucibleCounters{
			revocations:     snap.Counters["glaze.revocations"],
			faultsInHandler: snap.Counters["glaze.faults_in_handler"],
			overflowTrips:   snap.Counters["glaze.overflow.trips"],
		},
		snap:     snap,
		timeline: tl,
	}
}

// crucibleOracles checks the delivery invariants after one run:
//
//  1. the watchdog stayed quiet and the job completed;
//  2. exactly-once: every tagged message was handled exactly once;
//  3. faults lifted: every process drained back to fast mode — nothing
//     buffered, throttled, or left in an input queue;
//  4. span reconciliation: all spans terminal, fast/buffered tallies match
//     the glaze delivery counters (own-recorder runs only: a shared doctor
//     recorder spans several machines and reconciles elsewhere);
//  5. per-node conservation: arrivals = user disposes + kernel disposes +
//     hardware demuxes (the last is zero unless the delivery policy demuxes
//     in hardware), kernel disposes = inserts + kernel messages, and no
//     strays.
func crucibleOracles(m *glaze.Machine, job *glaze.Job, rec *spans.Recorder, ownRec bool, snap metrics.Snapshot, seen []uint32, sends int) []string {
	var problems []string
	if rep := rec.Report(); rep != nil {
		problems = append(problems, "watchdog fired: "+rep.Reason)
	}
	if !job.Done() {
		problems = append(problems, "job did not complete within the cycle budget")
	}

	miss, dup := 0, 0
	for _, c := range seen {
		switch {
		case c == 0:
			miss++
		case c > 1:
			dup++
		}
	}
	if miss > 0 || dup > 0 {
		problems = append(problems, fmt.Sprintf(
			"exactly-once violated: %d message(s) lost, %d duplicated of %d", miss, dup, len(seen)))
	}

	for n, p := range job.Procs() {
		if p.Buffered() {
			problems = append(problems, fmt.Sprintf("node %d still in buffered mode after faults lifted", n))
		}
		if pend := p.BufferPending(); pend > 0 {
			problems = append(problems, fmt.Sprintf("node %d has %d message(s) stuck in its software buffer", n, pend))
		}
		if p.Throttled() {
			problems = append(problems, fmt.Sprintf("node %d still throttled by overflow control", n))
		}
		if q := p.NI().QueueLen(); q > 0 {
			problems = append(problems, fmt.Sprintf("node %d has %d message(s) stuck in the NI input queue", n, q))
		}
	}

	if ownRec {
		problems = append(problems, rec.Check(
			snap.Counters["glaze.deliver.fast"], snap.Counters["glaze.deliver.buffered"])...)
	}

	for _, node := range m.Nodes {
		ns := node.Metrics.Snapshot()
		arrived := ns.Counters["nic.arrived"]
		disposed := ns.Counters["nic.disposed"]
		kdisposed := ns.Counters["nic.kdisposed"]
		demuxed := ns.Counters["nic.demuxed"]
		inserts := ns.Counters["glaze.buffer.inserts"]
		kernelMsgs := ns.Counters["glaze.kernel_msgs"]
		stray := ns.Counters["glaze.stray_messages"]
		if arrived != disposed+kdisposed+demuxed {
			problems = append(problems, fmt.Sprintf(
				"node %d conservation: arrived %d != disposed %d + kdisposed %d + demuxed %d",
				node.Index, arrived, disposed, kdisposed, demuxed))
		}
		if kdisposed != inserts+kernelMsgs+stray {
			problems = append(problems, fmt.Sprintf(
				"node %d conservation: kdisposed %d != inserts %d + kernel %d + stray %d",
				node.Index, kdisposed, inserts, kernelMsgs, stray))
		}
		if stray > 0 {
			problems = append(problems, fmt.Sprintf("node %d dropped %d stray message(s)", node.Index, stray))
		}
	}
	return problems
}

// crucibleTimelineOracles checks the time-resolved invariants the
// end-of-run oracles cannot see:
//
//  6. overflow quiesces: once the fault window has lifted and the drain
//     margin passed, no interval may record an overflow-control trip —
//     overflow here is purely fault-driven, so a late trip means the
//     machinery did not recover;
//  7. bounded buffered residency: past the same horizon, at most
//     crucibleMaxResidency of the intervals may show any node in buffered
//     mode. Gang skew legitimately buffers a message at a quantum edge now
//     and then (which the mode glyphs surface), but sustained residency
//     after the faults are gone means the drain back to the fast case is
//     broken even when the final state looks clean.
func crucibleTimelineOracles(tl telemetry.Timeline) []string {
	var problems []string
	horizon := uint64(crucibleFaultsLift + crucibleDrainMargin)
	post, buffered := 0, 0
	for _, iv := range tl.Intervals {
		if iv.Cycle <= horizon {
			continue
		}
		post++
		if d := iv.Counters["glaze.overflow.trips"]; d != 0 {
			problems = append(problems, fmt.Sprintf(
				"overflow tripped %d time(s) in the interval ending t=%d, %d cycles after faults lifted",
				d, iv.Cycle, iv.Cycle-crucibleFaultsLift))
		}
		if strings.ContainsAny(iv.Modes, "bB") {
			buffered++
		}
	}
	if post > 0 {
		if frac := float64(buffered) / float64(post); frac > crucibleMaxResidency {
			problems = append(problems, fmt.Sprintf(
				"buffered-mode residency %.0f%% of %d post-drain intervals exceeds the %.0f%% bound",
				frac*100, post, crucibleMaxResidency*100))
		}
	}
	return problems
}
