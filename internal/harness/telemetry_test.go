package harness

import (
	"context"
	"strings"
	"testing"

	"fugu/internal/apps"
	"fugu/internal/glaze"
	"fugu/internal/telemetry"
)

// collectTimelines runs an experiment with sampling enabled and returns the
// per-point timelines the Runner hook delivers, in point order.
func collectTimelines(t *testing.T, name string, every uint64, workers int) []telemetry.LabeledTimeline {
	t.Helper()
	exp, ok := Lookup(name)
	if !ok {
		t.Fatalf("unknown experiment %q", name)
	}
	var tls []telemetry.LabeledTimeline
	r := &Runner{OnTimeline: func(point int, label string, tl telemetry.Timeline) {
		tls = append(tls, telemetry.LabeledTimeline{Point: point, Label: label, Timeline: tl})
	}}
	_, err := r.Run(context.Background(), exp,
		WithQuick(), WithTrials(1), WithParallelism(workers),
		WithTelemetry(telemetry.Config{Every: every, Cap: 1 << 16}))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(tls) == 0 {
		t.Fatalf("%s: no point delivered a timeline", name)
	}
	return tls
}

// checkTimelineInvariants asserts the two properties the CI smoke job also
// enforces: the cycle column is strictly monotone within each (point, epoch)
// and per-instrument interval deltas sum to the final snapshot exactly.
func checkTimelineInvariants(t *testing.T, name string, tls []telemetry.LabeledTimeline) {
	t.Helper()
	for _, lt := range tls {
		tl := lt.Timeline
		if tl.Dropped != 0 {
			t.Fatalf("%s %s: ring dropped %d intervals; raise Cap in the test", name, lt.Label, tl.Dropped)
		}
		lastCycle := map[int]uint64{}
		seen := map[int]bool{}
		for i, iv := range tl.Intervals {
			if seen[iv.Epoch] && iv.Cycle <= lastCycle[iv.Epoch] {
				t.Errorf("%s %s: interval %d cycle %d <= previous %d (epoch %d)",
					name, lt.Label, i, iv.Cycle, lastCycle[iv.Epoch], iv.Epoch)
			}
			lastCycle[iv.Epoch], seen[iv.Epoch] = iv.Cycle, true
		}
		sums := tl.SumCounters()
		for cname, want := range tl.Totals.Counters {
			if sums[cname] != want {
				t.Errorf("%s %s: counter %s deltas sum to %d, final snapshot says %d",
					name, lt.Label, cname, sums[cname], want)
			}
		}
		for cname, got := range sums {
			if want := tl.Totals.Counters[cname]; want != got {
				t.Errorf("%s %s: counter %s deltas sum to %d but totals say %d",
					name, lt.Label, cname, got, want)
			}
		}
	}
}

// TestTimelineReconciliation: the reconciliation invariant holds for a
// multi-machine point experiment (table4 splices three machines per point
// into epochs) and a sweep figure (fig9).
func TestTimelineReconciliation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	for _, name := range []string{"table4", "fig9"} {
		tls := collectTimelines(t, name, 5_000, 4)
		checkTimelineInvariants(t, name, tls)
	}
}

// TestTimelineReconciliationCrucible: crucible points install their own
// recorder even without harness telemetry, so fault-plan timelines always
// exist and must reconcile too — including across a plan that forces the
// buffered path. Run two single points (quiet and hot) rather than the full
// sweep.
func TestTimelineReconciliationCrucible(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	exp, _ := Lookup("crucible")
	opt := NewOptions(WithQuick(), WithTrials(1))
	pts := exp.Points(opt)
	ran := 0
	for i, pt := range pts {
		if !strings.HasPrefix(pt.Label, "none ") && !strings.HasPrefix(pt.Label, "starve ") {
			continue
		}
		res, err := pt.Run(context.Background(), opt)
		if err != nil {
			t.Fatalf("point %d (%s): %v", i, pt.Label, err)
		}
		c, ok := res.(TimelineCarrier)
		if !ok {
			t.Fatalf("crucible point %s result carries no timeline", pt.Label)
		}
		tl := c.TimelineData()
		if tl.Empty() {
			t.Fatalf("crucible point %s produced an empty timeline", pt.Label)
		}
		checkTimelineInvariants(t, "crucible",
			[]telemetry.LabeledTimeline{{Point: i, Label: pt.Label, Timeline: tl}})
		ran++
	}
	if ran == 0 {
		t.Fatalf("no crucible points matched; labels: %v", pointLabels(pts))
	}
}

func pointLabels(pts []Point) []string {
	out := make([]string, len(pts))
	for i, pt := range pts {
		out[i] = pt.Label
	}
	return out
}

// TestTimelineSerialParallelIdentical: with sampling enabled, a serial and a
// parallel sweep must export byte-identical timelines — the sampler is
// driven by simulated time and each machine owns its recorder, so worker
// count cannot leak into the record.
func TestTimelineSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	serial := collectTimelines(t, "fig9", 10_000, 1)
	parallel := collectTimelines(t, "fig9", 10_000, 8)
	var a, b strings.Builder
	if err := telemetry.WriteCSV(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteCSV(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("serial and parallel timeline CSVs differ")
	}
}

// TestTelemetryDoesNotPerturb: enabling the sampler must not change the
// simulation — same runtime, same delivery counters. The sampler's own
// events do move the engine's event count, so sim.* bookkeeping counters are
// exempt; everything observable about the workload must match.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	mk := func() apps.Instance { return apps.NewSynth(60, 12, 60) }
	plain := RunMultiprogrammedQ(mk, 0.03, 7, 50_000, nil)
	sampled := RunMultiprogrammedQ(mk, 0.03, 7, 50_000, func(cfg *glaze.Config) {
		cfg.Telemetry = telemetry.NewRecorder(telemetry.Config{Every: 5_000})
	})
	if plain.Runtime != sampled.Runtime {
		t.Errorf("sampling changed the runtime: %d vs %d cycles", plain.Runtime, sampled.Runtime)
	}
	for name, want := range plain.Metrics.Counters {
		if strings.HasPrefix(name, "sim.") {
			continue
		}
		if got := sampled.Metrics.Counters[name]; got != want {
			t.Errorf("sampling changed counter %s: %d vs %d", name, got, want)
		}
	}
	if sampled.Timeline.Empty() {
		t.Error("sampled run returned an empty timeline")
	}
	if !plain.Timeline.Empty() {
		t.Error("unsampled run returned a timeline")
	}
}
