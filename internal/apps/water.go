package apps

import (
	"math"

	"fugu/internal/cpu"
	"fugu/internal/crl"
	"fugu/internal/glaze"
)

// Water is a particle-dynamics benchmark in the mould of SPLASH Water (512
// molecules, 3 iterations in the paper): molecules are partitioned across
// nodes, positions live in one CRL region per partition, and every
// iteration each node reads all partitions to accumulate pairwise forces on
// its own molecules, then writes its partition back. The CRL traffic is the
// paper's "fewer larger data packets" component.
type Water struct {
	N     int // molecules
	Iters int

	nodes []*crl.Node
	vel   [][3]float64 // node-local velocities (never shared)
	pos   [][3]float64 // scratch for verification snapshots
	final [][3]float64
}

// Simulation constants: softened inverse-square attraction, small step.
const (
	waterDT       = 1e-3
	waterSoft     = 0.25
	waterPairCost = 8 // cycles per pair interaction
)

// NewWater configures the benchmark.
func NewWater(n, iters int) *Water {
	return &Water{N: n, Iters: iters}
}

// Name implements Instance.
func (w *Water) Name() string { return "water" }

// Model implements Instance.
func (w *Water) Model() string { return "CRL" }

// initial returns molecule i's starting position: a jittered lattice.
func waterInitial(i int) [3]float64 {
	h := uint64(i)*0x9e3779b97f4a7c15 + 12345
	j := func() float64 {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		return float64(h%1000)/5000.0 - 0.1
	}
	side := 8
	return [3]float64{
		float64(i%side) + j(),
		float64((i/side)%side) + j(),
		float64(i/(side*side)) + j(),
	}
}

// force accumulates the softened attraction of body q on body p.
func waterForce(p, q [3]float64) [3]float64 {
	dx, dy, dz := q[0]-p[0], q[1]-p[1], q[2]-p[2]
	r2 := dx*dx + dy*dy + dz*dz + waterSoft
	inv := 1 / (r2 * math.Sqrt(r2))
	return [3]float64{dx * inv, dy * inv, dz * inv}
}

// Start implements Instance.
func (w *Water) Start(m *glaze.Machine, job *glaze.Job) {
	rig := NewRig(m, job)
	nn := rig.Nodes()
	if w.N%nn != 0 {
		panic("apps: water molecule count must divide node count")
	}
	per := w.N / nn
	w.nodes = make([]*crl.Node, nn)
	w.vel = make([][3]float64, w.N)
	w.final = make([][3]float64, w.N)
	for i := 0; i < nn; i++ {
		w.nodes[i] = crl.New(rig.EPs[i], nn)
	}
	for node := 0; node < nn; node++ {
		node := node
		bar := NewBarrier(rig.EPs[node], nn)
		job.Process(node).StartMain(func(t *cpu.Task) {
			w.main(t, node, nn, per, bar)
		})
	}
}

func (w *Water) main(t *cpu.Task, self, nn, per int, bar *Barrier) {
	c := w.nodes[self]
	// Partition p's positions live in region p (3 words per molecule).
	own := c.Create(crl.RegionID(self), per*3)
	c.StartWrite(t, own)
	for i := 0; i < per; i++ {
		p := waterInitial(self*per + i)
		for d := 0; d < 3; d++ {
			own.Write(i*3+d, math.Float64bits(p[d]))
		}
	}
	c.EndWrite(t, own)
	bar.Wait(t)

	parts := make([]*crl.Region, nn)
	for p := 0; p < nn; p++ {
		parts[p] = c.Map(crl.RegionID(p), per*3)
	}
	forces := make([][3]float64, per)
	mine := make([][3]float64, per)

	for iter := 0; iter < w.Iters; iter++ {
		for i := range forces {
			forces[i] = [3]float64{}
		}
		// Snapshot start-of-iteration positions of own molecules.
		c.StartRead(t, own)
		for i := range mine {
			mine[i] = readVec(own, i)
		}
		c.EndRead(t, own)
		// Force phase: read every partition and accumulate on own bodies,
		// in global molecule order so the arithmetic matches the
		// sequential reference bit-for-bit.
		for p := 0; p < nn; p++ {
			c.StartRead(t, parts[p])
			for i := 0; i < per; i++ {
				gi := self*per + i
				for j := 0; j < per; j++ {
					if p*per+j == gi {
						continue
					}
					f := waterForce(mine[i], readVec(parts[p], j))
					for d := 0; d < 3; d++ {
						forces[i][d] += f[d]
					}
				}
			}
			c.EndRead(t, parts[p])
			t.Spend(uint64(per*per) * waterPairCost)
		}
		bar.Wait(t)
		// Update phase: integrate and publish own positions.
		c.StartWrite(t, own)
		for i := 0; i < per; i++ {
			for d := 0; d < 3; d++ {
				gi := self*per + i
				w.vel[gi][d] += forces[i][d] * waterDT
				v := math.Float64frombits(own.Read(i*3+d)) + w.vel[gi][d]*waterDT
				own.Write(i*3+d, math.Float64bits(v))
			}
		}
		c.EndWrite(t, own)
		bar.Wait(t)
	}

	// Record final positions for verification.
	c.StartRead(t, own)
	for i := 0; i < per; i++ {
		for d := 0; d < 3; d++ {
			w.final[self*per+i][d] = math.Float64frombits(own.Read(i*3 + d))
		}
	}
	c.EndRead(t, own)
}

func readVec(r *crl.Region, i int) [3]float64 {
	return [3]float64{
		math.Float64frombits(r.Read(i * 3)),
		math.Float64frombits(r.Read(i*3 + 1)),
		math.Float64frombits(r.Read(i*3 + 2)),
	}
}

// Check implements Instance: the distributed run must match a sequential
// reference executing the same arithmetic in the same order.
func (w *Water) Check() error {
	ref := w.reference()
	for i := range ref {
		for d := 0; d < 3; d++ {
			if math.Abs(ref[i][d]-w.final[i][d]) > 1e-9 {
				return checkf("water: molecule %d dim %d: %g != %g",
					i, d, w.final[i][d], ref[i][d])
			}
		}
	}
	return nil
}

// reference runs the same computation on one real CPU.
func (w *Water) reference() [][3]float64 {
	pos := make([][3]float64, w.N)
	vel := make([][3]float64, w.N)
	for i := range pos {
		pos[i] = waterInitial(i)
	}
	for iter := 0; iter < w.Iters; iter++ {
		forces := make([][3]float64, w.N)
		for i := 0; i < w.N; i++ {
			for j := 0; j < w.N; j++ {
				if i == j {
					continue
				}
				f := waterForce(pos[i], pos[j])
				for d := 0; d < 3; d++ {
					forces[i][d] += f[d]
				}
			}
		}
		for i := 0; i < w.N; i++ {
			for d := 0; d < 3; d++ {
				vel[i][d] += forces[i][d] * waterDT
				pos[i][d] += vel[i][d] * waterDT
			}
		}
	}
	return pos
}
