// Package spans tracks every message's lifecycle through the delivery
// pipeline: injection into the mesh, arrival at the destination port,
// acceptance into the NI input queue, insertion into a software buffer
// (the second case), and exactly one terminal disposal — fast-path
// dispose, buffered drain, kernel consumption, or a stray drop.
//
// The Recorder is the causal complement of internal/metrics: metrics
// aggregate ("how many messages went buffered"), spans answer "what
// happened to message 17" and "which messages never terminated". It is
// pure simulator bookkeeping — recording charges no simulated cycles and
// consumes no engine randomness, so instrumented and uninstrumented runs
// are cycle-identical. All methods are nil-safe no-ops, following the
// instrument pattern of internal/metrics, so call sites record
// unconditionally.
package spans

import (
	"fmt"
	"sort"

	"fugu/internal/trace"
)

// Terminal classifies how a message left the system.
type Terminal uint8

// Terminal states. Every injected message must reach exactly one.
const (
	TermNone     Terminal = iota
	TermFast              // disposed directly from the NI (first case)
	TermBuffered          // drained from a software buffer (second case)
	TermKernel            // consumed by the kernel (kernel/OS-network message)
	TermStray             // dropped: no resident process owns the GID
)

func (t Terminal) String() string {
	switch t {
	case TermFast:
		return "fast"
	case TermBuffered:
		return "buffered"
	case TermKernel:
		return "kernel"
	case TermStray:
		return "stray"
	default:
		return "in-flight"
	}
}

// Stage is a message's current position in the pipeline.
type Stage uint8

// Pipeline stages, in causal order.
const (
	StageSent       Stage = iota // injected into the mesh
	StageNetBlocked              // held in the network by receiver backpressure
	StageQueued                  // resident in the destination input queue
	StageBuffered                // copied into the owner's software buffer
)

// NumStages is the number of pipeline stages a span can dwell in.
const NumStages = 4

func (s Stage) String() string {
	switch s {
	case StageSent:
		return "sent"
	case StageNetBlocked:
		return "net-blocked"
	case StageQueued:
		return "queued"
	case StageBuffered:
		return "buffered"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// StageEvent is one entry of a span's stage timeline: when the span
// entered a stage, and why.
type StageEvent struct {
	At    uint64
	Stage Stage
	Cause string
}

// maxTimeline bounds the per-span stage timeline. The pipeline visits each
// stage at most once (sent → [net-blocked] → queued → [buffered]), so four
// entries suffice; the slack absorbs an anomalous revisit without losing
// the head of the story.
const maxTimeline = 6

// Span is the recorded lifecycle of one message. Epoch distinguishes
// machines when one recorder observes several sequentially-built machines
// (a sweep point's sub-runs): packet IDs restart at zero per machine.
type Span struct {
	Epoch int
	ID    uint64
	Class string
	Src   int
	Dst   int
	Words int

	SentAt uint64
	LastAt uint64 // time of the most recent lifecycle event
	Stage  Stage
	Cause  string // why the span last changed stage ("gid-mismatch", "divert", ...)

	// Latency anatomy: when the current stage was entered, cycles dwelt
	// per stage so far, and the stage-transition timeline. For a terminal
	// span the dwells sum exactly to EndAt-SentAt (the conservation
	// invariant Check enforces).
	EnteredAt uint64
	Dwell     [NumStages]uint64
	EndAt     uint64
	Term      Terminal

	timeline [maxTimeline]StageEvent
	steps    int

	Handler     uint64 // handler word, once a dispatch observed it
	HandlerSeen bool
}

// History returns the span's stage-transition timeline in order: one entry
// per stage entered, starting with StageSent at SentAt.
func (s *Span) History() []StageEvent { return s.timeline[:s.steps] }

// Latency returns the span's end-to-end latency, 0 while in flight.
func (s *Span) Latency() uint64 {
	if s.Term == TermNone {
		return 0
	}
	return s.EndAt - s.SentAt
}

// advance closes the dwell of the current stage and enters the next one.
// The engine clock is monotone, so at < EnteredAt indicates recorder
// misuse; the caller records the violation, advance just clamps.
func (s *Span) advance(at uint64, stage Stage, cause string) {
	if at >= s.EnteredAt {
		s.Dwell[s.Stage] += at - s.EnteredAt
		s.EnteredAt = at
	}
	s.LastAt = at
	s.Stage = stage
	s.Cause = cause
	if s.steps < maxTimeline {
		s.timeline[s.steps] = StageEvent{At: at, Stage: stage, Cause: cause}
		s.steps++
	}
}

func (s Span) String() string {
	h := ""
	if s.HandlerSeen {
		h = fmt.Sprintf(" handler=%#x", s.Handler)
	}
	c := ""
	if s.Cause != "" {
		c = " (" + s.Cause + ")"
	}
	return fmt.Sprintf("msg e%d#%d %s %d->%d %dw sent=%d last=%d %s%s%s",
		s.Epoch, s.ID, s.Class, s.Src, s.Dst, s.Words, s.SentAt, s.LastAt, s.Stage, c, h)
}

// Counts are the recorder's terminal tallies. The reconciliation
// invariants against the metrics registry are:
//
//	Fast + FlipFast == glaze.deliver.fast      (fast disposes + mid-read flips)
//	Inserts  == glaze.deliver.buffered  (buffered deliveries count at insert)
//	Buffered == Inserts                 (every buffered message drained)
type Counts struct {
	Begun    uint64
	Inserts  uint64 // second-case buffer insertions
	Fast     uint64
	Buffered uint64
	Kernel   uint64
	Stray    uint64
	FlipFast uint64 // mid-read mode flips: read fast, drained from the store
}

// Ended returns how many spans reached a terminal state.
func (c Counts) Ended() uint64 { return c.Fast + c.Buffered + c.Kernel + c.Stray }

type key struct {
	epoch int
	id    uint64
}

// maxViolations bounds the recorded anomaly list; a systematically broken
// pipeline would otherwise grow it without limit.
const maxViolations = 64

// Recorder observes message lifecycles. Create with NewRecorder; the zero
// of *Recorder (nil) records nothing.
type Recorder struct {
	log      *trace.Log // optional mirror into the event ring (Span category)
	epoch    int
	inflight map[key]*Span
	counts   Counts

	anatomy anatomy // per-stage dwell aggregation over terminal spans

	violations        []string
	violationsDropped int

	report *Report
}

// NewRecorder returns a recorder, optionally mirroring events into log's
// Span category (pass nil for counting/invariants only).
func NewRecorder(log *trace.Log) *Recorder {
	return &Recorder{log: log, inflight: make(map[key]*Span)}
}

// AttachMachine starts a new epoch: the next machine's packet IDs restart
// at zero, so spans are keyed by (epoch, id). glaze.NewMachine calls this
// when a recorder is installed.
func (r *Recorder) AttachMachine() {
	if r == nil {
		return
	}
	r.epoch++
}

// Epoch returns the current machine epoch (0 before any AttachMachine).
func (r *Recorder) Epoch() int {
	if r == nil {
		return 0
	}
	return r.epoch
}

// SetPolicy records the delivery-policy name under which subsequent spans
// terminate, keying the per-policy dwell anatomy. glaze.NewMachine calls
// this with the machine's resolved policy when a recorder is installed.
func (r *Recorder) SetPolicy(name string) {
	if r == nil {
		return
	}
	r.anatomy.policy = name
}

func (r *Recorder) violate(format string, args ...any) {
	if len(r.violations) >= maxViolations {
		r.violationsDropped++
		return
	}
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// Begin records a message's injection into the mesh.
func (r *Recorder) Begin(at, id uint64, class string, src, dst, words int) {
	if r == nil {
		return
	}
	k := key{r.epoch, id}
	if _, dup := r.inflight[k]; dup {
		r.violate("duplicate begin for e%d#%d", r.epoch, id)
		return
	}
	r.counts.Begun++
	s := &Span{
		Epoch: r.epoch, ID: id, Class: class, Src: src, Dst: dst, Words: words,
		SentAt: at, LastAt: at, Stage: StageSent, EnteredAt: at,
	}
	s.timeline[0] = StageEvent{At: at, Stage: StageSent}
	s.steps = 1
	r.inflight[k] = s
	r.log.Add(at, src, trace.Span, "begin #%d %s ->%d %dw", id, class, dst, words)
}

func (r *Recorder) get(id uint64, event string) *Span {
	s := r.inflight[key{r.epoch, id}]
	if s == nil {
		r.violate("%s for unknown span e%d#%d", event, r.epoch, id)
	}
	return s
}

// Arrive records the packet reaching its destination port.
func (r *Recorder) Arrive(at, id uint64) {
	if r == nil {
		return
	}
	if s := r.get(id, "arrive"); s != nil {
		s.LastAt = at
		r.log.Add(at, s.Dst, trace.Span, "arrive #%d", id)
	}
}

// NetBlock records receiver backpressure: the network holds the packet
// because the destination refused it (or earlier packets are blocked).
func (r *Recorder) NetBlock(at, id uint64) {
	if r == nil {
		return
	}
	if s := r.get(id, "net-block"); s != nil {
		if at < s.EnteredAt {
			r.violate("net-block for e%d#%d at %d before stage entry %d", r.epoch, id, at, s.EnteredAt)
		}
		s.advance(at, StageNetBlocked, "backpressure")
		r.log.Add(at, s.Dst, trace.Span, "net-block #%d", id)
	}
}

// Queued records acceptance into a node's input queue (NI or OS endpoint).
// The cause distinguishes a first-offer acceptance ("accepted") from a
// packet the network had to hold under backpressure first ("drain").
func (r *Recorder) Queued(at, id uint64, node int) {
	if r == nil {
		return
	}
	if s := r.get(id, "queued"); s != nil {
		cause := "accepted"
		if s.Stage == StageNetBlocked {
			cause = "drain"
		}
		if at < s.EnteredAt {
			r.violate("queued for e%d#%d at %d before stage entry %d", r.epoch, id, at, s.EnteredAt)
		}
		s.advance(at, StageQueued, cause)
		r.log.Add(at, node, trace.Span, "queued #%d (%s)", id, cause)
	}
}

// Insert records a second-case buffer insertion with its cause
// ("gid-mismatch", "divert", ...).
func (r *Recorder) Insert(at, id uint64, node int, cause string) {
	if r == nil {
		return
	}
	if s := r.get(id, "insert"); s != nil {
		if s.Stage == StageBuffered {
			r.violate("double insert for e%d#%d", r.epoch, id)
			return
		}
		if at < s.EnteredAt {
			r.violate("insert for e%d#%d at %d before stage entry %d", r.epoch, id, at, s.EnteredAt)
		}
		s.advance(at, StageBuffered, cause)
		r.counts.Inserts++
		r.log.Add(at, node, trace.Span, "insert #%d (%s)", id, cause)
	}
}

// Dispatch annotates the span with the handler word an extract observed.
func (r *Recorder) Dispatch(at, id, handler uint64) {
	if r == nil {
		return
	}
	if s := r.inflight[key{r.epoch, id}]; s != nil {
		s.LastAt, s.Handler, s.HandlerSeen = at, handler, true
	}
}

// FlipFast records a mid-read mode flip: an extract began reading the NI
// head on the fast path, a context switch diverted the half-read message
// into the second-case store, and the dispose drained it from there. The
// cost model books such a message on both paths — the receive stub tallies
// it fast, the kernel insert tallies it buffered — and its span terminates
// TermBuffered, so Check credits flips to the fast side to reconcile. The
// span has already ended by the time the extract learns the dispose
// outcome, so this is a bare tally, not a span-state transition.
func (r *Recorder) FlipFast(at, id uint64, node int) {
	if r == nil {
		return
	}
	r.counts.FlipFast++
	r.log.Add(at, node, trace.Span, "flip-fast #%d", id)
}

// End records the span's terminal state and retires it. A span may end
// exactly once; a second end (or an end with no begin) is a violation.
func (r *Recorder) End(at, id uint64, node int, term Terminal) {
	if r == nil {
		return
	}
	k := key{r.epoch, id}
	s := r.inflight[k]
	if s == nil {
		r.violate("end(%s) for unknown or already-ended span e%d#%d", term, r.epoch, id)
		return
	}
	if term == TermBuffered && s.Stage != StageBuffered {
		r.violate("buffered end for e%d#%d never inserted", r.epoch, id)
	}
	delete(r.inflight, k)
	switch term {
	case TermFast:
		r.counts.Fast++
	case TermBuffered:
		r.counts.Buffered++
	case TermKernel:
		r.counts.Kernel++
	case TermStray:
		r.counts.Stray++
	default:
		r.violate("end with non-terminal state for e%d#%d", r.epoch, id)
		return
	}
	// Close the final stage's dwell and enforce the conservation invariant:
	// per-stage dwells sum exactly to the end-to-end latency. advance()
	// makes this true by construction, so a mismatch means a transition
	// bypassed the dwell bookkeeping (or the clock ran backwards).
	if at >= s.EnteredAt {
		s.Dwell[s.Stage] += at - s.EnteredAt
		s.EnteredAt = at
	} else {
		r.violate("end for e%d#%d at %d before stage entry %d", r.epoch, id, at, s.EnteredAt)
	}
	s.LastAt, s.EndAt, s.Term = at, at, term
	var dwellSum uint64
	for _, d := range s.Dwell {
		dwellSum += d
	}
	if dwellSum != at-s.SentAt {
		r.violate("dwell conservation broken for e%d#%d: stage dwells sum to %d, end-to-end latency is %d",
			r.epoch, id, dwellSum, at-s.SentAt)
	}
	r.anatomy.observe(s)
	r.log.Add(at, node, trace.Span, "end #%d %s", id, term)
}

// Counts returns the terminal tallies.
func (r *Recorder) Counts() Counts {
	if r == nil {
		return Counts{}
	}
	return r.counts
}

// InFlightCount reports how many spans are unterminated, without the
// allocation and sort of InFlight — cheap enough for periodic sampling.
func (r *Recorder) InFlightCount() int {
	if r == nil {
		return 0
	}
	return len(r.inflight)
}

// InFlight returns the unterminated spans, sorted by (epoch, id).
func (r *Recorder) InFlight() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, len(r.inflight))
	for _, s := range r.inflight {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Epoch != out[j].Epoch {
			return out[i].Epoch < out[j].Epoch
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Violations returns recording anomalies (double begin/end, end without
// begin, ...). A healthy pipeline records none.
func (r *Recorder) Violations() []string {
	if r == nil {
		return nil
	}
	out := append([]string(nil), r.violations...)
	if r.violationsDropped > 0 {
		out = append(out, fmt.Sprintf("(%d further violations dropped)", r.violationsDropped))
	}
	return out
}

// Check verifies the span invariants against the metrics delivery
// counters (glaze.deliver.fast / glaze.deliver.buffered) and returns the
// violated ones, empty when all hold.
func (r *Recorder) Check(metricFast, metricBuffered uint64) []string {
	if r == nil {
		return nil
	}
	var out []string
	if n := len(r.inflight); n > 0 {
		msg := fmt.Sprintf("%d message(s) never reached a terminal state:", n)
		for i, s := range r.InFlight() {
			if i == 8 {
				msg += " ..."
				break
			}
			msg += "\n    " + s.String()
		}
		out = append(out, msg)
	}
	if r.counts.Fast+r.counts.FlipFast != metricFast {
		out = append(out, fmt.Sprintf("fast spans (%d) + mid-read flips (%d) != glaze.deliver.fast (%d)",
			r.counts.Fast, r.counts.FlipFast, metricFast))
	}
	if r.counts.Inserts != metricBuffered {
		out = append(out, fmt.Sprintf("buffer inserts (%d) != glaze.deliver.buffered (%d)",
			r.counts.Inserts, metricBuffered))
	}
	if r.counts.Buffered != r.counts.Inserts {
		out = append(out, fmt.Sprintf("buffered drains (%d) != inserts (%d): messages stuck in a software buffer",
			r.counts.Buffered, r.counts.Inserts))
	}
	if d, l := r.anatomy.dwellTotal(), r.anatomy.latencySum; d != l {
		out = append(out, fmt.Sprintf("per-stage dwells over terminal spans sum to %d cycles, end-to-end latencies to %d: anatomy lost time",
			d, l))
	}
	out = append(out, r.Violations()...)
	return out
}

// Summary renders the terminal tallies on one line.
func (r *Recorder) Summary() string {
	c := r.Counts()
	inflight := 0
	if r != nil {
		inflight = len(r.inflight)
	}
	return fmt.Sprintf("spans: %d begun, %d ended (%d fast, %d buffered of %d inserted, %d kernel, %d stray), %d in flight",
		c.Begun, c.Ended(), c.Fast, c.Buffered, c.Inserts, c.Kernel, c.Stray, inflight)
}

// SetReport attaches a watchdog diagnostic report to the recorder, where
// the harness and doctor retrieve it after the run.
func (r *Recorder) SetReport(rep *Report) {
	if r == nil {
		return
	}
	r.report = rep
}

// Report returns the attached diagnostic report, nil if no watchdog fired.
func (r *Recorder) Report() *Report {
	if r == nil {
		return nil
	}
	return r.report
}
