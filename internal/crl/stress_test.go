package crl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
	"fugu/internal/udm"
)

// TestCoherenceStressProperty drives random region operations from every
// node and checks the defining invariant of the protocol: read-modify-write
// increments under write sections never lose updates, across any schedule
// the seed induces.
func TestCoherenceStressProperty(t *testing.T) {
	prop := func(seed uint64, opsPerNode uint8) bool {
		ops := int(opsPerNode%40) + 10
		cfg := glaze.DefaultConfig()
		cfg.W, cfg.H = 4, 1
		cfg.Seed = seed
		m := glaze.NewMachine(cfg)
		job := m.NewJob("stress")
		crls := make([]*Node, 4)
		eps := make([]*udm.EP, 4)
		for i := 0; i < 4; i++ {
			eps[i] = udm.Attach(job.Process(i))
			crls[i] = New(eps[i], 4)
		}
		const regions = 3
		done := udm.NewCounter()
		eps[0].On(900, func(e *udm.Env, msg *udm.Msg) { done.Add(1) })
		// Region r is homed on node r; all counters start at zero.
		final := make([]uint64, regions)
		job.Process(0).StartMain(func(tk *cpu.Task) {
			c := crls[0]
			rgs := make([]*Region, regions)
			for r := 0; r < regions; r++ {
				if c.homeOf(RegionID(r)) == 0 {
					rgs[r] = c.Create(RegionID(r), 4)
				}
			}
			tk.Spend(2000)
			for r := 0; r < regions; r++ {
				if rgs[r] == nil {
					rgs[r] = c.Map(RegionID(r), 4)
				}
			}
			stressOps(tk, m, c, rgs, ops, 0)
			done.WaitFor(tk, 3)
			for r := 0; r < regions; r++ {
				c.StartRead(tk, rgs[r])
				final[r] = rgs[r].Read(0)
				c.EndRead(tk, rgs[r])
			}
		})
		for node := 1; node < 4; node++ {
			node := node
			job.Process(node).StartMain(func(tk *cpu.Task) {
				c := crls[node]
				rgs := make([]*Region, regions)
				for r := 0; r < regions; r++ {
					if c.homeOf(RegionID(r)) == node {
						rgs[r] = c.Create(RegionID(r), 4)
					}
				}
				tk.Spend(2000)
				for r := 0; r < regions; r++ {
					if rgs[r] == nil {
						rgs[r] = c.Map(RegionID(r), 4)
					}
				}
				stressOps(tk, m, c, rgs, ops, node)
				eps[node].Env(tk).Inject(0, 900)
			})
		}
		m.NewGang(1<<40, 0, job).Start()
		m.RunUntilDone(2_000_000_000, job)
		if !job.Done() {
			return false // deadlock
		}
		var total uint64
		for _, v := range final {
			total += v
		}
		return total == uint64(4*ops)
	}
	// A fixed source keeps the explored schedules (and so CI) deterministic.
	// Unpinned time-seeded exploration found rare inputs that deadlocked
	// the protocol (machine seed 0x9459729f43aff4c8 at ops >= 41/node, a
	// request lost in finishDeferred's preemption window — dissected in
	// docs/crl-deadlock-0x9459729f43aff4c8.md, pinned by
	// TestDeadlockSeedRegression).
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// stressOps interleaves increments (write sections) with verification reads.
func stressOps(tk *cpu.Task, m *glaze.Machine, c *Node, rgs []*Region, ops, node int) {
	rng := m.Eng.Rand()
	for i := 0; i < ops; i++ {
		rg := rgs[(node+i)%len(rgs)]
		if rng.Intn(4) == 0 {
			// A read section: the value must be monotone (never observe
			// a lost update as a decrease is impossible to check per-region
			// cheaply here, so just exercise the path).
			c.StartRead(tk, rg)
			_ = rg.Read(0)
			c.EndRead(tk, rg)
		}
		c.StartWrite(tk, rg)
		rg.Write(0, rg.Read(0)+1)
		c.EndWrite(tk, rg)
		tk.Spend(uint64(rng.Intn(400)) + 20)
	}
}

// TestManyReadersOneWriter: repeated cycles of broad sharing followed by a
// write exercise the full invalidation fan-out.
func TestManyReadersOneWriter(t *testing.T) {
	cfg := glaze.DefaultConfig()
	m := glaze.NewMachine(cfg)
	job := m.NewJob("fanout")
	n := 8
	crls := make([]*Node, n)
	eps := make([]*udm.EP, n)
	for i := 0; i < n; i++ {
		eps[i] = udm.Attach(job.Process(i))
		crls[i] = New(eps[i], n)
	}
	const rounds = 20
	seen := make([][]uint64, n)
	phase := make([]*udm.Counter, n)
	for i := range phase {
		i := i
		phase[i] = udm.NewCounter()
		eps[i].On(900, func(e *udm.Env, msg *udm.Msg) { phase[i].Add(1) })
	}
	bcast := func(e *udm.Env, from int) {
		for i := 0; i < n; i++ {
			if i != from {
				e.Inject(i, 900)
			}
		}
	}
	job.Process(0).StartMain(func(tk *cpu.Task) {
		c := crls[0]
		rg := c.Create(0, 2)
		e := eps[0].Env(tk)
		for r := 0; r < rounds; r++ {
			c.StartWrite(tk, rg)
			rg.Write(0, uint64(r+1))
			c.EndWrite(tk, rg)
			bcast(e, 0)                               // readers may look now
			phase[0].WaitFor(tk, uint64((r+1)*(n-1))) // all readers done
		}
	})
	for node := 1; node < n; node++ {
		node := node
		seen[node] = nil
		job.Process(node).StartMain(func(tk *cpu.Task) {
			c := crls[node]
			tk.Spend(2000)
			rg := c.Map(0, 2)
			e := eps[node].Env(tk)
			for r := 0; r < rounds; r++ {
				phase[node].WaitFor(tk, uint64(r+1))
				c.StartRead(tk, rg)
				seen[node] = append(seen[node], rg.Read(0))
				c.EndRead(tk, rg)
				e.Inject(0, 900)
			}
		})
	}
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(2_000_000_000, job)
	if !job.Done() {
		t.Fatal("fan-out run did not complete")
	}
	for node := 1; node < n; node++ {
		for r, v := range seen[node] {
			if v != uint64(r+1) {
				t.Fatalf("node %d round %d read %d, want %d (stale copy)", node, r, v, r+1)
			}
		}
	}
}
