package delivery

import (
	"fmt"
	"testing"

	"fugu/internal/vm"
)

// confCosts is an arbitrary but distinctive cost vector so conformance
// checks notice a store charging from the wrong constant.
var confCosts = Costs{
	InsertMin:     180,
	InsertVMAlloc: 3162,
	ExtraInsert:   0,
	PageOut:       2000,
	PageIn:        1800,
	Remap:         300,
	RemapRelease:  60,
}

// allPolicies instantiates every registered policy in its default
// configuration, the same set the CLI's -policy flag can name.
func allPolicies(t *testing.T) []Policy {
	t.Helper()
	var out []Policy
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports Name() = %q", name, p.Name())
		}
		out = append(out, p)
	}
	return out
}

// TestStoreConformance drives every policy's store through the contract the
// kernel and NI rely on: admitted pushes succeed, messages come back
// exactly once in FIFO order with their words and metadata intact, and a
// drained store reports empty.
func TestStoreConformance(t *testing.T) {
	for _, pol := range allPolicies(t) {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			frames := vm.NewFrames(64)
			st := pol.NewStore(frames, Params{Costs: confCosts})

			const n = 12
			want := make([][]uint64, n)
			for i := 0; i < n; i++ {
				// Lengths vary but stay inside every policy's envelope (the
				// default bypass ring holds 128-word slots).
				words := make([]uint64, 3+(i*17)%90)
				for j := range words {
					words[j] = uint64(i)<<32 | uint64(j)
				}
				want[i] = words
				if !st.Admit(len(words)) {
					t.Fatalf("msg %d: Admit refused with an empty backlog", i)
				}
				res := st.Push(uint64(100+i), words, uint64(10*i), uint64(10*i+5))
				if c := st.InsertCost(res); c > confCosts.InsertVMAlloc+confCosts.PageOut*8 {
					t.Fatalf("msg %d: implausible insert cost %d", i, c)
				}
				if st.Pending() != i+1 {
					t.Fatalf("after push %d: Pending = %d", i, st.Pending())
				}
			}

			ids := st.PendingIDs()
			if len(ids) != n {
				t.Fatalf("PendingIDs len = %d, want %d", len(ids), n)
			}
			for i, id := range ids {
				if id != uint64(100+i) {
					t.Fatalf("PendingIDs[%d] = %d, want %d", i, id, 100+i)
				}
			}

			for i := 0; i < n; i++ {
				if st.Empty() {
					t.Fatalf("Empty before popping msg %d", i)
				}
				if id, ok := st.HeadID(); !ok || id != uint64(100+i) {
					t.Fatalf("HeadID = %d,%v, want %d", id, ok, 100+i)
				}
				if sa, ok := st.HeadSentAt(); !ok || sa != uint64(10*i) {
					t.Fatalf("HeadSentAt = %d,%v, want %d", sa, ok, 10*i)
				}
				if got := st.HeadLen(); got != len(want[i]) {
					t.Fatalf("msg %d: HeadLen = %d, want %d", i, got, len(want[i]))
				}
				for j, w := range want[i] {
					if got := st.HeadWord(j); got != w {
						t.Fatalf("msg %d word %d = %#x, want %#x", i, j, got, w)
					}
				}
				meta, _ := st.Pop()
				if meta.ID != uint64(100+i) || meta.SentAt != uint64(10*i) || meta.InsertedAt != uint64(10*i+5) {
					t.Fatalf("msg %d: meta = %+v", i, meta)
				}
			}
			if !st.Empty() || st.Pending() != 0 {
				t.Fatalf("store not empty after draining: Pending = %d", st.Pending())
			}
			if _, ok := st.HeadID(); ok {
				t.Fatal("HeadID ok on an empty store")
			}
			if hw := st.PagesHighWater(); hw < st.PagesResident() {
				t.Fatalf("high water %d below resident %d", hw, st.PagesResident())
			}
		})
	}
}

// TestStoreResidencyAfterDrain pins each policy's memory-footprint contract:
// the kernel-buffered stores return every page once drained, while the
// bypass ring's statically partitioned pages stay pinned for the process's
// lifetime — that fixed cost is exactly what the policy lab measures.
func TestStoreResidencyAfterDrain(t *testing.T) {
	for _, pol := range allPolicies(t) {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			frames := vm.NewFrames(64)
			st := pol.NewStore(frames, Params{Costs: confCosts})
			static := st.PagesResident() // bypass pre-pins its ring
			for i := 0; i < 40; i++ {
				words := make([]uint64, 100)
				if !st.Admit(len(words)) {
					t.Fatalf("push %d refused", i)
				}
				st.Push(uint64(i), words, 0, 0)
				if i%3 == 2 {
					st.Pop()
				}
			}
			for !st.Empty() {
				st.Pop()
			}
			if pol.KernelBuffered() {
				if st.PagesResident() != 0 {
					t.Errorf("drained %s store holds %d page(s)", pol.Name(), st.PagesResident())
				}
				if frames.InUse() != 0 {
					t.Errorf("drained %s store leaks %d frame(s)", pol.Name(), frames.InUse())
				}
			} else {
				if st.PagesResident() != static {
					t.Errorf("bypass ring resident pages %d, want static %d", st.PagesResident(), static)
				}
			}
		})
	}
}

// TestBypassRingBackpressure pins the ring's overflow contract: a full ring
// refuses admission (the NI turns that into NACK + sender retry) instead of
// overwriting or growing, and reservation bookkeeping releases as messages
// pop.
func TestBypassRingBackpressure(t *testing.T) {
	ring := BypassRing{Pages: 1, SlotWords: 128} // 8 slots
	frames := vm.NewFrames(8)
	st := ring.NewStore(frames, Params{Costs: confCosts})

	slots := vm.PageWords / 128
	for i := 0; i < slots; i++ {
		if !st.Admit(10) {
			t.Fatalf("slot %d refused below capacity", i)
		}
		st.Push(uint64(i), []uint64{1, 2, 3}, 0, 0)
	}
	if st.Admit(10) {
		t.Fatal("full ring admitted a message")
	}
	if st.Admit(1000) {
		t.Fatal("ring admitted a message wider than a slot")
	}
	st.Pop()
	if !st.Admit(10) {
		t.Fatal("ring refused after a pop freed a slot")
	}
	st.Push(uint64(slots), []uint64{4}, 0, 0)
	// The freed head slot is reused: ring never grows past its partition.
	if got := st.PagesResident(); got != 1 {
		t.Fatalf("ring resident pages = %d, want 1", got)
	}
}

// TestBypassRingReservation pins the Admit-reserves semantics: admissions
// without their Push yet (packets queued behind the head in the NI) count
// against capacity, so the ring can never oversubscribe.
func TestBypassRingReservation(t *testing.T) {
	ring := BypassRing{Pages: 1, SlotWords: 128}
	st := ring.NewStore(vm.NewFrames(8), Params{Costs: confCosts})
	slots := vm.PageWords / 128
	for i := 0; i < slots; i++ {
		if !st.Admit(10) {
			t.Fatalf("reservation %d refused", i)
		}
	}
	if st.Admit(10) {
		t.Fatal("ring oversubscribed: admitted beyond reserved capacity")
	}
	for i := 0; i < slots; i++ {
		st.Push(uint64(i), []uint64{uint64(i)}, 0, 0)
	}
	if st.Pending() != slots {
		t.Fatalf("Pending = %d, want %d", st.Pending(), slots)
	}
}

// TestInsertCostsPerPolicy pins each policy's charge arithmetic against the
// cost model, so the lab's latency comparison rests on the intended
// constants.
func TestInsertCostsPerPolicy(t *testing.T) {
	frames := vm.NewFrames(16)
	cases := []struct {
		policy Policy
		res    PushResult
		want   uint64
	}{
		{TwoCase{}, PushResult{}, confCosts.InsertMin},
		{TwoCase{}, PushResult{NewPages: 1}, confCosts.InsertVMAlloc},
		{TwoCase{}, PushResult{NewPages: 1, PagedOut: 2}, confCosts.InsertVMAlloc + 2*confCosts.PageOut},
		{ZeroCopyRemap{}, PushResult{}, confCosts.Remap},
		{ZeroCopyRemap{}, PushResult{Fallback: true}, confCosts.InsertVMAlloc},
		{DefaultBypassRing(), PushResult{}, 0}, // NI DMA: no kernel cycles
	}
	for _, c := range cases {
		st := c.policy.NewStore(frames, Params{Costs: confCosts})
		if got := st.InsertCost(c.res); got != c.want {
			t.Errorf("%s InsertCost(%+v) = %d, want %d", c.policy.Name(), c.res, got, c.want)
		}
	}
}

// TestRegistry pins the registry surface the -policy flag exposes.
func TestRegistry(t *testing.T) {
	want := []string{"bypass", "twocase", "zerocopy"}
	got := Names()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted an unknown policy")
	}
	def, err := ByName("twocase")
	if err != nil || !def.KernelBuffered() || def.HardwareDemux() {
		t.Errorf("twocase flags wrong: %+v %v", def, err)
	}
	byp, err := ByName("bypass")
	if err != nil || byp.KernelBuffered() || !byp.HardwareDemux() {
		t.Errorf("bypass flags wrong: %+v %v", byp, err)
	}
}
