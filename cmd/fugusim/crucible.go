package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"fugu/internal/harness"
	"fugu/internal/telemetry"
)

// crucibleCmd implements `fugusim crucible`: run the fault-injection sweep
// (every named fault plan × -trials seeds) and enforce its delivery oracles.
// Exit status 0 means every oracle passed and every second-case cause the
// selected delivery policy can express — GID mismatch, atomicity timeout,
// handler page fault, quantum expiry, buffer overflow — was forced at least
// once somewhere in the sweep; 1 means an oracle violation or a coverage
// hole. Policies without a kernel-buffered mode (-policy bypass) cannot
// revoke atomicity or trip overflow control, so those causes are not
// required of them (see CrucibleResult.RequiredCauses).
func crucibleCmd(args []string) {
	fs := flag.NewFlagSet("crucible", flag.ExitOnError)
	common := registerCommon(fs)
	trials := fs.Int("trials", 1, "trials (seeds) per fault plan")
	jobs := fs.Int("j", 0, "worker-pool size for sweep points (default: GOMAXPROCS)")
	csvDir := fs.String("csv", "", "also write the sweep as crucible.csv into this directory")
	listPts := fs.Bool("list", false, "list the sweep points and exit")
	progress := fs.Bool("progress", false, "report each completed sweep point on stderr")
	force := fs.Bool("force", false, "overwrite existing -metrics/-timeline artifact files")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fugusim crucible [flags]\n")
		fs.PrintDefaults()
	}
	if names := parseInterleaved(fs, args); len(names) != 0 {
		fs.Usage()
		os.Exit(2)
	}
	common.resolve()

	opts := append(common.harnessOptions(),
		harness.WithTrials(*trials), harness.WithParallelism(*jobs))
	if *listPts {
		_, pts, _, err := resolvePoint("crucible", -1, harness.NewOptions(opts...))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
			os.Exit(2)
		}
		listPoints(os.Stdout, pts)
		return
	}

	if err := common.vetArtifacts(*force, "crucible"); err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runner := &harness.Runner{}
	if *progress {
		runner.Progress = func(p harness.Progress) {
			status := "ok"
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "%s: %d/%d %s %s\n", p.Experiment, p.Done, p.Total, p.Label, status)
		}
	}
	if *common.metricsDir != "" {
		runner.OnMetrics = writeMetrics(*common.metricsDir, "crucible")
	}
	var tls []telemetry.LabeledTimeline
	common.timelineHook(runner, &tls)
	exp, _ := harness.Lookup("crucible")
	start := time.Now()
	res, err := runner.Run(ctx, exp, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: crucible: %v\n", err)
		os.Exit(1)
	}
	common.writeTimelines("crucible", tls)
	res.Print(os.Stdout)
	fmt.Printf("(crucible took %.1fs)\n", time.Since(start).Seconds())
	cres := res.(harness.CrucibleResult)
	if *csvDir != "" {
		for file, content := range cres.CSVFiles() {
			if err := harness.WriteCSV(*csvDir, file, content); err != nil {
				fmt.Fprintf(os.Stderr, "fugusim: csv: %v\n", err)
				os.Exit(1)
			}
		}
	}

	failed := false
	if problems := cres.Problems(); len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "fugusim: crucible: %d oracle violation(s)\n", len(problems))
		failed = true
	}
	cov := cres.CauseCoverage()
	for _, cause := range cres.RequiredCauses() {
		if !cov[cause] {
			fmt.Fprintf(os.Stderr, "fugusim: crucible: cause %q never forced under policy %s\n",
				cause, cres.Policy)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
