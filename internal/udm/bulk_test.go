package udm

import (
	"testing"
	"testing/quick"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
)

func TestBulkTransferRoundTrip(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	var got []uint64
	var wasBulk bool
	done := NewCounter()
	eps[1].On(1, func(e *Env, msg *Msg) {
		got = append([]uint64(nil), msg.Args...)
		wasBulk = msg.Bulk
		done.Add(1)
	})
	const n = 500 // far beyond one 16-word descriptor
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(i * 3)
	}
	job.Process(1).StartMain(func(tk *cpu.Task) { done.WaitFor(tk, 1) })
	job.Process(0).StartMain(func(tk *cpu.Task) {
		eps[0].Env(tk).InjectBulk(1, 1, data...)
	})
	m.RunUntilDone(0, job)
	if len(got) != n {
		t.Fatalf("reassembled %d words, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i*3) {
			t.Fatalf("word %d = %d, corrupted", i, v)
		}
	}
	if !wasBulk {
		t.Error("Msg.Bulk not set")
	}
}

func TestBulkEmptyPayload(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	done := NewCounter()
	var argLen = -1
	eps[1].On(1, func(e *Env, msg *Msg) {
		argLen = len(msg.Args)
		done.Add(1)
	})
	job.Process(1).StartMain(func(tk *cpu.Task) { done.WaitFor(tk, 1) })
	job.Process(0).StartMain(func(tk *cpu.Task) {
		eps[0].Env(tk).InjectBulk(1, 1)
	})
	m.RunUntilDone(0, job)
	if argLen != 0 {
		t.Errorf("empty bulk delivered %d args", argLen)
	}
}

func TestBulkInterleavedTransfers(t *testing.T) {
	// Two senders each stream several transfers to the same receiver; the
	// per-transfer ids keep reassembly separate even though fragments
	// interleave arbitrarily at the destination.
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 4, 1
	m := glaze.NewMachine(cfg)
	job := m.NewJob("bulk")
	eps := make([]*EP, 4)
	for i := range eps {
		eps[i] = Attach(job.Process(i))
	}
	type rx struct {
		first uint64
		n     int
	}
	var gotAll []rx
	done := NewCounter()
	eps[3].On(1, func(e *Env, msg *Msg) {
		gotAll = append(gotAll, rx{msg.Args[0], len(msg.Args)})
		for i, v := range msg.Args {
			if v != msg.Args[0]+uint64(i) {
				t.Errorf("cross-transfer corruption in payload starting %d", msg.Args[0])
			}
		}
		done.Add(1)
	})
	job.Process(3).StartMain(func(tk *cpu.Task) { done.WaitFor(tk, 6) })
	for sender := 0; sender < 2; sender++ {
		sender := sender
		job.Process(sender).StartMain(func(tk *cpu.Task) {
			e := eps[sender].Env(tk)
			for k := 0; k < 3; k++ {
				base := uint64(sender*10000 + k*1000)
				data := make([]uint64, 100+k*37)
				for i := range data {
					data[i] = base + uint64(i)
				}
				e.InjectBulk(3, 1, data...)
			}
		})
	}
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(0, job)
	if len(gotAll) != 6 {
		t.Fatalf("received %d transfers, want 6", len(gotAll))
	}
}

// Property: any payload survives fragmentation and reassembly bit-exactly,
// for any descriptor size.
func TestBulkPayloadProperty(t *testing.T) {
	prop := func(seed uint64, length uint16, outWords uint8) bool {
		n := int(length % 1500)
		ow := 24 + int(outWords%64) // descriptor between 24 and 87 words
		data := make([]uint64, n)
		h := seed | 1
		for i := range data {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			data[i] = h
		}
		cfg := glaze.DefaultConfig()
		cfg.W, cfg.H = 2, 1
		cfg.NIConfig.OutputWords = ow
		m := glaze.NewMachine(cfg)
		job := m.NewJob("p")
		ep0 := Attach(job.Process(0))
		ep1 := Attach(job.Process(1))
		var got []uint64
		done := NewCounter()
		ep1.On(1, func(e *Env, msg *Msg) {
			got = append([]uint64(nil), msg.Args...)
			done.Add(1)
		})
		job.Process(1).StartMain(func(tk *cpu.Task) { done.WaitFor(tk, 1) })
		job.Process(0).StartMain(func(tk *cpu.Task) {
			ep0.Env(tk).InjectBulk(1, 1, data...)
		})
		m.NewGang(1<<40, 0, job).Start()
		m.RunUntilDone(1_000_000_000, job)
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBulkUnderMultiprogramming(t *testing.T) {
	// A bulk transfer whose fragments straddle quantum boundaries must
	// reassemble exactly once even though some fragments take the buffered
	// path.
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	m := glaze.NewMachine(cfg)
	job := m.NewJob("bulk")
	null := m.NewJob("null")
	Attach(null.Process(0))
	Attach(null.Process(1))
	ep0 := Attach(job.Process(0))
	ep1 := Attach(job.Process(1))
	var transfers int
	var total int
	done := NewCounter()
	ep1.On(1, func(e *Env, msg *Msg) {
		transfers++
		total += len(msg.Args)
		done.Add(1)
	})
	job.Process(1).StartMain(func(tk *cpu.Task) { done.WaitFor(tk, 10) })
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := ep0.Env(tk)
		data := make([]uint64, 300)
		for k := 0; k < 10; k++ {
			e.InjectBulk(1, 1, data...)
			tk.Spend(20_000)
		}
	})
	m.NewGang(30_000, 0.4, job, null).Start()
	m.RunUntilDone(0, job)
	if transfers != 10 || total != 3000 {
		t.Errorf("transfers=%d total=%d, want 10/3000", transfers, total)
	}
	if job.Delivery().Buffered == 0 {
		t.Error("no fragments took the buffered path; the test proved nothing")
	}
}
