package udm

import (
	"fmt"

	"fugu/internal/cpu"
	"fugu/internal/nic"
	"fugu/internal/sim"
)

// upcall is the body of the process's message-handling activity, installed
// as glaze.Process.Upcall. The kernel signals it on message-available
// interrupts, on buffer inserts and on mode transitions; it delivers every
// message it may and returns.
func (ep *EP) upcall(t *cpu.Task) {
	for {
		switch {
		case ep.p.CanDeliverBuffered():
			ep.deliverBuffered(t)
		case ep.p.CanDeliverFast() && ep.p.NI().UAC()&nic.UACInterruptDisable == 0:
			// A user-level message interrupt: the head is ours and the
			// application has interrupts enabled.
			ep.deliverInterrupt(t)
		default:
			return
		}
	}
}

// extract reads the head message through the transparent-access
// indirection, charging perWordCost per argument word, and disposes it.
// By the time it returns, the message is out of the queue and the handler
// may run and inject freely. The injection-to-disposal span lands in the
// per-path end-to-end latency histogram.
func (ep *EP) extract(t *cpu.Task, perWordCost uint64) *Msg {
	p := ep.p
	fast := !p.Buffered()
	sentAt, haveSent := p.HeadSentAt()
	n := p.MsgLen()
	if n < 2 {
		panic(fmt.Sprintf("udm: malformed message of %d words", n))
	}
	m := ep.getMsg(n - 2)
	m.Handler = p.MsgWord(1)
	m.Fast = fast
	for i := range m.Args {
		m.Args[i] = p.MsgWord(2 + i)
	}
	if c := perWordCost * uint64(len(m.Args)); c > 0 {
		t.Spend(c)
	}
	rec := p.Kernel().Machine().Spans
	id, haveID := p.HeadID()
	if rec != nil && haveID {
		rec.Dispatch(t.Now(), id, m.Handler)
	}
	fastDispose := p.Kernel().UserDispose(t, p)
	if fast && !fastDispose {
		// Mid-read mode flip: the word-read Spend above let a context switch
		// divert the half-read head into the second-case store, so the
		// dispose just drained it from there. The receive is charged and
		// tallied as a fast delivery (the words came off the NI) while the
		// kernel also booked the insert as a buffered one — tell the span
		// recorder so reconciliation credits the span to both paths.
		if rec != nil && haveID {
			rec.FlipFast(t.Now(), id, p.Node())
		}
	}
	if haveSent {
		p.ObserveLatency(fast, t.Now()-sentAt)
	}
	return m
}

// run dispatches the message to its registered handler, then recycles the
// Msg and Env: both are handler-call-scoped (see Msg).
func (ep *EP) run(t *cpu.Task, m *Msg) {
	h, ok := ep.handlers[m.Handler]
	if !ok {
		panic(fmt.Sprintf("udm: node %d: no handler registered for id %d", ep.Node(), m.Handler))
	}
	ep.Delivered++
	ep.mDelivered.Inc()
	e := ep.getEnv()
	e.T = t
	e.inHandler = true
	if ep.inj != nil {
		// The message is already extracted and disposed, so neither fault
		// can lose it; arrivals during the disruption mismatch and buffer.
		if ep.inj.HandlerFault(ep.p.Node()) {
			ep.p.Kernel().SyntheticHandlerFault(t, ep.p)
		}
		if d, ok := ep.inj.QuantumExpiry(ep.p.Node()); ok {
			ep.p.Kernel().ForceQuantumExpiry(ep.p, d)
		}
	}
	h(e, m)
	ep.putEnv(e)
	ep.putMsg(m)
}

// getMsg pops a recycled Msg (or makes one) with Args sized to nArgs.
func (ep *EP) getMsg(nArgs int) *Msg {
	if n := len(ep.msgFree); n > 0 {
		m := ep.msgFree[n-1]
		ep.msgFree = ep.msgFree[:n-1]
		if cap(m.Args) >= nArgs {
			m.Args = m.Args[:nArgs]
		} else {
			m.Args = make([]uint64, nArgs)
		}
		m.Bulk = false
		return m
	}
	return &Msg{Args: make([]uint64, nArgs)}
}

func (ep *EP) putMsg(m *Msg) { ep.msgFree = append(ep.msgFree, m) }

func (ep *EP) getEnv() *Env {
	if n := len(ep.envFree); n > 0 {
		e := ep.envFree[n-1]
		ep.envFree = ep.envFree[:n-1]
		return e
	}
	return &Env{EP: ep}
}

func (ep *EP) putEnv(e *Env) { ep.envFree = append(ep.envFree, e) }

// deliverInterrupt is the fast-path interrupt receive of Table 4: stub
// overhead, atomic handler execution, cleanup.
func (ep *EP) deliverInterrupt(t *cpu.Task) {
	defer ep.observeDelivery(t, t.Consumed())
	p := ep.p
	ni := p.NI()
	t.Spend(ep.cost.RecvIntrPre())
	// The message-available stub starts the handler in an atomic section
	// and requires it to free a message before leaving it.
	if trap := ni.BeginAtom(nic.UACInterruptDisable, false); trap != nic.TrapNone {
		panic(fmt.Sprintf("udm: handler beginatom trapped %v", trap))
	}
	ni.SetUACKernel(nic.UACDisposePending, true)
	m := ep.extract(t, ep.cost.RecvPerArg) // includes the dispose
	t.Spend(ep.cost.NullHandler)
	if m.Fast {
		// Buffered messages were already tallied at kernel insert time;
		// counting here too would double-book a mid-read mode flip.
		p.CountDelivery(true)
	}
	ep.run(t, m)
	p.Kernel().UserEndAtom(t, p, nic.UACInterruptDisable)
	t.Spend(ep.cost.RecvIntrPost())
}

// deliverPolled is the polling receive of Table 4 (9 cycles for a null
// message). The caller must hold atomicity; the Poll cycle itself has
// already been charged by Poll.
func (ep *EP) deliverPolled(t *cpu.Task) {
	defer ep.observeDelivery(t, t.Consumed())
	p := ep.p
	t.Spend(ep.cost.PollDispatch)
	var m *Msg
	if !p.Buffered() {
		m = ep.extract(t, ep.cost.RecvPerArg)
		t.Spend(ep.cost.PollNullHandler)
	} else {
		m = ep.extract(t, ep.cost.BufferedPerArgTimes2/2)
		t.Spend(ep.cost.BufferedNullHandler)
	}
	if m.Fast {
		p.CountDelivery(true)
	}
	ep.run(t, m)
}

// deliverBuffered executes one handler from the software buffer (Table 5:
// 52 cycles plus ~4.5 per argument word). Handler atomicity comes from the
// elevated priority of the message-handling task, not from the UAC.
func (ep *EP) deliverBuffered(t *cpu.Task) {
	defer ep.observeDelivery(t, t.Consumed())
	t.Spend(ep.cost.BufferedNullHandler)
	m := ep.extract(t, ep.cost.BufferedPerArgTimes2/2)
	ep.run(t, m)
}

// observeDelivery records the cycles one delivery consumed — dispatch,
// extraction and handler body together, the quantity Table 6 calls T_hand.
func (ep *EP) observeDelivery(t *cpu.Task, before uint64) {
	ep.HandlerCycles.Observe(float64(t.Consumed() - before))
	ep.mHandler.Observe(t.Consumed() - before)
}

// Poll checks for and delivers at most one message in the caller's context:
// the polling notification mode of the UDM model. The caller must be inside
// an atomic section (BeginAtomic), or delivery would race the interrupt
// path. Returns whether a message was handled.
func (e *Env) Poll() bool {
	ep := e.EP
	if !e.Atomic() && !ep.p.AtomicVirtual() {
		panic("udm: Poll outside an atomic section")
	}
	e.T.Spend(ep.cost.Poll)
	if !ep.p.HaveMessage() {
		return false
	}
	ep.deliverPolled(e.T)
	return true
}

// PollWait polls until at least one message has been handled. It burns
// poll cycles, which is what a polling processor does.
func (e *Env) PollWait() {
	for !e.Poll() {
	}
}

// Peek examines the next pending message without extracting it — the UDM
// peek operation. It returns nil when no message is available. Like Poll,
// the caller must hold atomicity; a later Poll (or handler dispatch after
// EndAtomic) performs the actual extraction.
func (e *Env) Peek() *Msg {
	ep := e.EP
	if !e.Atomic() && !ep.p.AtomicVirtual() {
		panic("udm: Peek outside an atomic section")
	}
	e.T.Spend(ep.cost.Poll)
	p := ep.p
	if !p.HaveMessage() {
		return nil
	}
	n := p.MsgLen()
	m := &Msg{Handler: p.MsgWord(1), Fast: !p.Buffered(), Args: make([]uint64, n-2)}
	for i := range m.Args {
		m.Args[i] = p.MsgWord(2 + i)
	}
	var perWord uint64
	if m.Fast {
		perWord = ep.cost.RecvPerArg
	} else {
		perWord = ep.cost.BufferedPerArgTimes2 / 2
	}
	if c := perWord * uint64(len(m.Args)); c > 0 {
		e.T.Spend(c)
	}
	return m
}

// Spawn converts work into a user thread of the process — the UDM model's
// handler-to-thread conversion ("message handlers are occasionally or
// routinely converted to threads after executing only the minimal code
// required to communicate with the network interface"). The thread runs at
// ordinary user priority once the handler completes.
func (e *Env) Spawn(name string, fn func(e *Env)) {
	ep := e.EP
	t := ep.p.SpawnThread(name, func(t *cpu.Task) {
		fn(&Env{T: t, EP: ep})
	})
	// Handler-converted threads wake on their own cadence, not the
	// generic task clock: label them so the cost profiler can separate
	// UDM handler work from main-thread compute.
	t.SetWakeSite(siteHandlerWake)
}

// siteHandlerWake labels wakes of handler-converted UDM threads.
var siteHandlerWake = sim.NewSite("udm.handler.wake")
