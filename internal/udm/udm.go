// Package udm is the user-level half of the UDM (User Direct Messaging)
// model: message injection and extraction, explicit atomicity control, and
// the handler-dispatch runtime that serves as the user-level interrupt.
//
// In the common case the library talks straight to the network interface —
// that is the fast case of two-case delivery. When the kernel has shifted
// the process to buffered mode, the very same calls transparently read the
// software buffer instead (the base-register indirection of Section 4.3);
// application code cannot tell the difference except in cycles.
package udm

import (
	"fmt"

	"fugu/internal/cpu"
	"fugu/internal/faultinject"
	"fugu/internal/glaze"
	"fugu/internal/metrics"
	"fugu/internal/nic"
	"fugu/internal/stats"
)

// Handler is a user message handler, invoked once per incoming message with
// the handler environment and the extracted message. Handlers run in an
// atomic section (interrupt-model semantics) or at elevated priority
// (buffered mode); either way they are atomic with respect to other
// handlers and threads of the same process.
type Handler func(e *Env, m *Msg)

// Msg is one extracted message. The wrapper has already read the words out
// of the network interface (or the buffered copy) and disposed the message,
// so handlers are free to inject.
//
// A Msg passed to a Handler (and the Env alongside it) is valid only for
// the duration of the call: the runtime recycles both once the handler
// returns. Handlers that need the payload later must copy Args. Messages
// returned by Peek are not recycled.
type Msg struct {
	Handler uint64   // handler address word
	Args    []uint64 // payload words
	Fast    bool     // true if delivered on the direct path
	Bulk    bool     // true if reassembled from a bulk transfer
}

// Env is the execution environment passed to handlers and application
// threads: the simulated task plus the endpoint.
type Env struct {
	T         *cpu.Task
	EP        *EP
	inHandler bool
}

// Node returns the local node index.
func (e *Env) Node() int { return e.EP.Node() }

// Nodes returns the machine size.
func (e *Env) Nodes() int { return e.EP.p.Kernel().Machine().Net.Nodes() }

// InHandler reports whether this environment is executing a message handler.
func (e *Env) InHandler() bool { return e.inHandler }

// EP is a process's UDM endpoint: the user-level runtime bound to one
// glaze process on one node.
type EP struct {
	p        *glaze.Process
	cost     glaze.CostModel
	handlers map[uint64]Handler

	// inj is the machine's fault injector (nil on fault-free machines):
	// handler dispatch is where synthetic page faults and forced quantum
	// expiries land.
	inj *faultinject.Injector

	// Bulk-transfer reassembly state.
	bulk     map[uint64]*bulkXfer
	nextXfer uint32

	// Free lists recycling the per-delivery Msg and Env objects (valid only
	// for the handler call, see Msg). Plain LIFO stacks: deliveries nest
	// (a handler that faults or polls can trigger another delivery before
	// its own Msg is released) and interleave across tasks, and a free list
	// only needs release-once discipline to stay correct.
	msgFree []*Msg
	envFree []*Env

	// Statistics.
	Sent          uint64
	Delivered     uint64     // messages run through handlers on this node
	HandlerCycles stats.Mean // cycles per delivery, handler body included

	// Metrics instruments, bound to the process's node registry.
	mSent      *metrics.Counter
	mDelivered *metrics.Counter
	mHandler   *metrics.Histogram
}

// Attach builds the endpoint for a process and installs its upcall (the
// message-handling activity the kernel signals).
func Attach(p *glaze.Process) *EP {
	ep := &EP{
		p:        p,
		cost:     p.Kernel().Cost(),
		handlers: make(map[uint64]Handler),
		inj:      p.Kernel().Machine().Faults,
	}
	r := p.Metrics()
	ep.mSent = r.Counter("udm.sent")
	ep.mDelivered = r.Counter("udm.delivered")
	ep.mHandler = r.Histogram("udm.handler_cycles")
	p.Upcall = ep.upcall
	ep.registerBulk()
	return ep
}

// Process exposes the underlying kernel process (stats, mode).
func (ep *EP) Process() *glaze.Process { return ep.p }

// Node returns the endpoint's node index.
func (ep *EP) Node() int { return ep.p.Node() }

// MaxArgs returns the largest argument count a single message can carry,
// set by the NI's send descriptor capacity. Larger transfers are chunked by
// higher layers (FUGU used a DMA engine for bulk data).
func (ep *EP) MaxArgs() int { return ep.p.NI().OutputWords() - 2 }

// On registers a handler for a handler-address word. Registration must
// precede any message carrying the id; it models loading the handler's code
// address.
func (ep *EP) On(id uint64, h Handler) {
	if _, dup := ep.handlers[id]; dup {
		panic(fmt.Sprintf("udm: duplicate handler id %d", id))
	}
	ep.handlers[id] = h
}

// Env makes a handler environment for application thread code.
func (ep *EP) Env(t *cpu.Task) *Env { return &Env{T: t, EP: ep} }

// ---------------------------------------------------------------------------
// Injection

// Inject sends a message: the blocking inject of the UDM model. It stalls
// (spending cycles, as a blocked store does) while the output interface
// drains, honours overflow-control throttling, and charges the Table 4 send
// cost: 7 cycles for a null message plus 3 per argument word.
func (e *Env) Inject(dst int, handler uint64, args ...uint64) {
	e.EP.inject(e.T, dst, handler, args)
}

// InjectC is the conditional, non-blocking inject: it reports false without
// sending if the interface cannot accept the message right now.
func (e *Env) InjectC(dst int, handler uint64, args ...uint64) bool {
	ep := e.EP
	if ep.p.Throttled() {
		return false
	}
	if ep.p.NI().SpaceAvailable() < len(args)+2 {
		return false
	}
	ep.injectReady(e.T, dst, handler, args)
	return true
}

func (ep *EP) inject(t *cpu.Task, dst int, handler uint64, args []uint64) {
	ep.p.WaitThrottle(t)
	ni := ep.p.NI()
	need := len(args) + 2
	for ni.SpaceAvailable() < need {
		// Blocking-store semantics: the processor stalls a cycle at a time
		// until the descriptor buffer drains. Interrupts still preempt.
		t.Spend(1)
		ep.p.WaitThrottle(t)
	}
	ep.injectReady(t, dst, handler, args)
}

// injectReady performs describe+launch once space is known to be available.
func (ep *EP) injectReady(t *cpu.Task, dst int, handler uint64, args []uint64) {
	ni := ep.p.NI()
	t.Spend(ep.cost.SendCost(len(args)))
	// Two Describe stores rather than assembling a temporary slice: the
	// descriptor buffer copies the words, so the variadic args stay on the
	// caller's stack and inject performs no per-message allocation here.
	ni.Describe(nic.MakeHeader(dst), handler)
	ni.Describe(args...)
	if trap := ni.Launch(false); trap != nic.TrapNone {
		panic(fmt.Sprintf("udm: launch trapped %v", trap))
	}
	ep.Sent++
	ep.mSent.Inc()
}

// ---------------------------------------------------------------------------
// Atomicity

// BeginAtomic enters an atomic section: message interrupts are deferred and
// the application may poll. Maps to beginatom(interrupt-disable).
func (e *Env) BeginAtomic() {
	e.T.Spend(1)
	if trap := e.EP.p.NI().BeginAtom(nic.UACInterruptDisable, false); trap != nic.TrapNone {
		panic(fmt.Sprintf("udm: beginatom trapped %v", trap))
	}
}

// EndAtomic leaves an atomic section; a pending message may immediately
// interrupt. Under virtual atomicity this is where the kernel regains
// control (the atomicity-extend trap) and resumes buffered delivery.
func (e *Env) EndAtomic() {
	e.T.Spend(1)
	e.EP.p.Kernel().UserEndAtom(e.T, e.EP.p, nic.UACInterruptDisable)
}

// Atomic reports whether the process currently holds user atomicity.
func (e *Env) Atomic() bool {
	return e.EP.p.NI().UAC()&nic.UACInterruptDisable != 0
}

// Touch accesses a data address, taking a demand zero-fill page fault if
// the page is not resident. A fault inside a handler forces the process
// into buffered mode, one of the paper's three transition causes.
func (e *Env) Touch(addr uint64) {
	e.EP.p.Kernel().Touch(e.T, e.EP.p, addr, e.inHandler)
}

// Spend consumes computation cycles (application work).
func (e *Env) Spend(n uint64) { e.T.Spend(n) }

// Now returns the simulation time.
func (e *Env) Now() uint64 { return e.T.Now() }
