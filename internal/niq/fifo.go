package niq

import (
	"fmt"

	"fugu/internal/mesh"
	"fugu/internal/metrics"
)

// fifo is the seed hardware: one statically-provisioned queue drained in
// strict arrival order. It ignores the presentation predicates and registers
// no instruments, so a machine built on it is bit-identical — events, rng
// draws and metric key sets — to the pre-seam NI (the golden tests pin this).
type fifo struct {
	spec Spec
	in   []*mesh.Packet
}

func newFIFO(spec Spec) *fifo {
	return &fifo{spec: spec}
}

func (q *fifo) Spec() Spec { return q.spec }
func (q *fifo) Slots() int { return q.spec.Slots }
func (q *fifo) Len() int   { return len(q.in) }

func (q *fifo) Bind(match, kernel func(*mesh.Packet) bool) {}
func (q *fifo) UseMetrics(r *metrics.Registry)             {}

func (q *fifo) Admit(src int, sys bool) bool { return len(q.in) < q.spec.Slots }

func (q *fifo) Push(pkt *mesh.Packet) {
	if len(q.in) >= q.spec.Slots {
		panic(fmt.Sprintf("niq: fifo push past %d slots", q.spec.Slots))
	}
	q.in = append(q.in, pkt)
}

func (q *fifo) Head() *mesh.Packet {
	if len(q.in) == 0 {
		return nil
	}
	return q.in[0]
}

func (q *fifo) PopHead() *mesh.Packet {
	if len(q.in) == 0 {
		return nil
	}
	pkt := q.in[0]
	copy(q.in, q.in[1:])
	q.in[len(q.in)-1] = nil
	q.in = q.in[:len(q.in)-1]
	return pkt
}

func (q *fifo) Steals() uint64   { return 0 }
func (q *fifo) Bypasses() uint64 { return 0 }

func (q *fifo) CheckInvariants() error {
	if len(q.in) > q.spec.Slots {
		return fmt.Errorf("fifo holds %d messages in %d slots", len(q.in), q.spec.Slots)
	}
	for i, p := range q.in {
		if p == nil {
			return fmt.Errorf("fifo slot %d holds a nil packet", i)
		}
	}
	return nil
}
