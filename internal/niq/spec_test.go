package niq

import (
	"testing"

	"fugu/internal/mesh"
	"fugu/internal/metrics"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		err  bool
	}{
		{in: "fifo", want: Spec{Model: "fifo"}},
		{in: "damq", want: Spec{Model: "damq"}},
		{in: "reserve:hybrid", want: Spec{Model: "reserve", Policy: "hybrid"}},
		{in: "damq:demand:24", want: Spec{Model: "damq", Policy: "demand", Slots: 24}},
		{in: "reserve:static:8", want: Spec{Model: "reserve", Policy: "static", Slots: 8}},
		{in: "fifo:demand", err: true},       // fifo has no shared region
		{in: "damq:fair", err: true},         // unknown policy
		{in: "srf", err: true},               // unknown model
		{in: "damq:demand:0", err: true},     // zero slots
		{in: "damq:demand:x", err: true},     // non-numeric slots
		{in: "damq:demand:8:9", err: true},   // too many fields
		{in: "reserve:hybrid:-4", err: true}, // negative slots
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestSpecNormalizeAndName(t *testing.T) {
	cases := []struct {
		in   Spec
		name string
	}{
		{Spec{}, "fifo:static"},
		{Spec{Model: ModelDAMQ}, "damq:demand"},
		{Spec{Model: ModelReserve}, "reserve:hybrid"},
		{Spec{Model: ModelDAMQ, Policy: PolicyStatic}, "damq:static"},
	}
	for _, c := range cases {
		if got := c.in.Name(); got != c.name {
			t.Errorf("%+v.Name() = %q, want %q", c.in, got, c.name)
		}
		n := c.in.Normalize()
		if n.BypassBudget != DefaultBypassBudget {
			t.Errorf("%+v.Normalize() budget = %d, want default %d", c.in, n.BypassBudget, DefaultBypassBudget)
		}
	}
	kept := Spec{Model: ModelDAMQ, BypassBudget: 7}.Normalize()
	if kept.BypassBudget != 7 {
		t.Errorf("Normalize clobbered an explicit bypass budget: %d", kept.BypassBudget)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Slots: -1}).Validate(); err == nil {
		t.Error("negative slots validated")
	}
	if err := (Spec{BypassBudget: -1}).Validate(); err == nil {
		t.Error("negative bypass budget validated")
	}
	for _, s := range allSpecs(8) {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

// TestReserveSplit pins the (R, B) arithmetic: R*sources + B == slots for
// every policy, demand reserves nothing, static shares only the indivisible
// remainder, hybrid sits in between.
func TestReserveSplit(t *testing.T) {
	for _, policy := range Policies() {
		for slots := 1; slots <= 40; slots++ {
			for sources := 1; sources <= 9; sources++ {
				r, b := Reserve(policy, slots, sources)
				if r < 0 || b < 0 {
					t.Fatalf("Reserve(%s, %d, %d) = (%d, %d): negative", policy, slots, sources, r, b)
				}
				if r*sources+b != slots {
					t.Fatalf("Reserve(%s, %d, %d) = (%d, %d): split loses slots", policy, slots, sources, r, b)
				}
			}
		}
	}
	if r, b := Reserve(PolicyDemand, 16, 8); r != 0 || b != 16 {
		t.Errorf("demand split = (%d, %d), want (0, 16)", r, b)
	}
	if r, b := Reserve(PolicyStatic, 16, 8); r != 2 || b != 0 {
		t.Errorf("static split = (%d, %d), want (2, 0)", r, b)
	}
	if r, b := Reserve(PolicyHybrid, 16, 8); r != 1 || b != 8 {
		t.Errorf("hybrid split = (%d, %d), want (1, 8)", r, b)
	}
	if r, b := Reserve(PolicyStatic, 8, 0); r != 8 || b != 0 {
		t.Errorf("zero-source split = (%d, %d), want whole pool reserved for the single source", r, b)
	}
}

func TestNewPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("bad model", func() { New(Spec{Model: "srf"}, 8, 4) })
	expectPanic("no slots", func() { New(Spec{}, 0, 4) })
	expectPanic("fifo overfill", func() {
		q := New(Spec{Slots: 1}, 0, 1)
		q.Push(&mesh.Packet{Words: []uint64{0}})
		q.Push(&mesh.Packet{Words: []uint64{0}})
	})
	expectPanic("shared push past admission", func() {
		q := New(Spec{Model: ModelDAMQ, Slots: 1}, 0, 2)
		q.Push(&mesh.Packet{Words: []uint64{0}})
		q.Push(&mesh.Packet{Src: 1, Words: []uint64{0}})
	})
}

// TestBypassBudget pins the liveness rule: a mismatched packet at the global
// front is bypassed by matching traffic only BypassBudget consecutive times,
// then the queue reverts to strict FIFO until the blocker is popped.
func TestBypassBudget(t *testing.T) {
	spec := Spec{Model: ModelDAMQ, Policy: PolicyDemand, Slots: 8, BypassBudget: 2}
	q := New(spec, 0, 4)
	q.Bind(func(p *mesh.Packet) bool { return p.Words[0] == 1 }, nil)

	blocker := &mesh.Packet{Src: 0, Words: []uint64{0}}
	q.Push(blocker)
	for i := 1; i <= 3; i++ {
		q.Push(&mesh.Packet{Src: i, Words: []uint64{1}})
	}
	// Two bypasses spend the budget...
	for i := 0; i < 2; i++ {
		if got := q.PopHead(); got == blocker {
			t.Fatalf("pop %d: blocker presented with budget remaining", i)
		}
	}
	// ...then the oldest is forced out even though a match is waiting.
	if got := q.PopHead(); got != blocker {
		t.Fatalf("budget exhausted but blocker still bypassed (got %v)", got)
	}
	if q.Bypasses() != 2 {
		t.Errorf("Bypasses() = %d, want 2", q.Bypasses())
	}
	// Popping the oldest reset the counter: the next match may bypass again.
	q.Push(&mesh.Packet{Src: 0, Words: []uint64{0}})
	if got := q.PopHead(); got.Words[0] != 1 {
		t.Error("bypass budget did not reset after the oldest packet popped")
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestKernelNeverBypassed pins the protection rule: matching user traffic
// must not jump a kernel packet at the global front, budget or no budget.
func TestKernelNeverBypassed(t *testing.T) {
	spec := Spec{Model: ModelReserve, Policy: PolicyDemand, Slots: 8}
	q := New(spec, 0, 4)
	q.Bind(
		func(p *mesh.Packet) bool { return p.Words[0] == 1 },
		func(p *mesh.Packet) bool { return p.Words[0] == 99 },
	)
	sysPkt := &mesh.Packet{Src: 0, Words: []uint64{99}}
	q.Push(sysPkt)
	q.Push(&mesh.Packet{Src: 1, Words: []uint64{1}})
	if got := q.Head(); got != sysPkt {
		t.Fatalf("kernel packet at the front was bypassed by a matching user packet")
	}
	if got := q.PopHead(); got != sysPkt {
		t.Fatalf("PopHead skipped the kernel packet")
	}
	if q.Bypasses() != 0 {
		t.Errorf("Bypasses() = %d, want 0", q.Bypasses())
	}
}

// TestKernelExemptFromPolicy pins the admission exemption: once a source's
// user cap is exhausted, its kernel traffic is still admitted while physical
// slots remain — and user traffic is not.
func TestKernelExemptFromPolicy(t *testing.T) {
	spec := Spec{Model: ModelReserve, Policy: PolicyStatic, Slots: 8}
	q := New(spec, 0, 4) // R=2, B=0: pure partition
	q.Bind(nil, func(p *mesh.Packet) bool { return p.Words[0] == 99 })
	for i := 0; i < 2; i++ {
		q.Push(&mesh.Packet{Src: 0, Words: []uint64{0}})
	}
	if q.Admit(0, false) {
		t.Fatal("user packet admitted past an exhausted reserve with B=0")
	}
	if !q.Admit(0, true) {
		t.Fatal("kernel packet refused by the user allocation policy")
	}
	q.Push(&mesh.Packet{Src: 0, Words: []uint64{99}})
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The system packet occupies a slot but no user budget: draining it
	// frees physical space without touching borrow accounting.
	if q.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", q.Len())
	}
}

// TestMetricsRegistration pins the instrument contract: the FIFO registers
// nothing (default-hardware snapshots keep their exact key set), the shared
// models register steals/bypass/occupancy and drive them.
func TestMetricsRegistration(t *testing.T) {
	r := metrics.NewRegistry()
	New(Spec{Slots: 4}, 0, 2).UseMetrics(r)
	if names := r.Names(); len(names) != 0 {
		t.Errorf("fifo registered instruments: %v", names)
	}

	r = metrics.NewRegistry()
	q := New(Spec{Model: ModelDAMQ, Policy: PolicyStatic, Slots: 5}, 0, 2)
	q.UseMetrics(r)
	want := map[string]bool{"niq.steals": true, "niq.bypass": true, "niq.occupancy": true}
	for _, n := range r.Names() {
		if !want[n] {
			t.Errorf("unexpected instrument %q", n)
		}
		delete(want, n)
	}
	for n := range want {
		t.Errorf("missing instrument %q", n)
	}
	// R=2 per source at 5 slots (B=1): a third packet from one source
	// steals the shared remainder slot.
	for i := 0; i < 3; i++ {
		q.Push(&mesh.Packet{Src: 0, Words: []uint64{0}})
	}
	if got := q.Steals(); got != 1 {
		t.Errorf("Steals() = %d, want 1", got)
	}
}

// TestFIFOOrder pins the default model: strict arrival order regardless of
// predicates, Admit blind to the sys flag.
func TestFIFOOrder(t *testing.T) {
	q := New(Spec{}, 3, 2)
	q.Bind(func(p *mesh.Packet) bool { return p.Words[0] == 1 }, nil)
	var pkts []*mesh.Packet
	for i := 0; i < 3; i++ {
		p := &mesh.Packet{Src: i % 2, Words: []uint64{uint64(i)}}
		pkts = append(pkts, p)
		q.Push(p)
	}
	if q.Admit(0, false) || q.Admit(0, true) {
		t.Error("full fifo admitted a packet")
	}
	for i, want := range pkts {
		if got := q.PopHead(); got != want {
			t.Fatalf("pop %d: out of order", i)
		}
	}
}
