package sim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRandSeedZero(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced zero stream")
	}
}

func TestRandDifferentSeeds(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 matched on %d/100 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(9)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d distinct values in 10k draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(11)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / 10000
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUniformAroundMean(t *testing.T) {
	r := NewRand(5)
	const mean = 1000
	var sum uint64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.UniformAround(mean)
		if v < mean/2 || v >= mean/2+mean {
			t.Fatalf("UniformAround(%d) = %d out of range", mean, v)
		}
		sum += v
	}
	got := float64(sum) / n
	if got < 0.95*mean || got > 1.05*mean {
		t.Errorf("UniformAround mean = %v, want ~%d", got, mean)
	}
	if r.UniformAround(0) != 0 {
		t.Error("UniformAround(0) != 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		r := NewRand(seed)
		m := int(n%64) + 1
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
