package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"fugu/internal/harness"
	"fugu/internal/sim"
	"fugu/internal/spans"
)

// explainCmd implements `fugusim explain`: replay one sweep point serially
// with the message-lifecycle span recorder and the engine cost profiler
// installed, then render the latency anatomy — where a message's cycles go
// (the per-stage dwell waterfall with percentiles), which (policy, stage,
// cause) buckets dominate, which destination nodes and source→destination
// links run hot, the slowest messages with their full stage timelines, and
// which schedule sites the engine itself spends its time on. The dwell
// conservation invariant (per-stage dwells sum exactly to end-to-end
// latency) is checked along with the delivery invariants; a violation exits
// with status 1, so CI can replay a point and assert the anatomy holds.
func explainCmd(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	common := registerCommon(fs)
	point := fs.Int("point", 0, "sweep point index to replay (see -list)")
	listPts := fs.Bool("list", false, "list the experiment's sweep points and exit")
	topK := fs.Int("topk", 8, fmt.Sprintf("slowest messages to list with timelines (max %d)", spans.TopK))
	links := fs.Int("links", 8, "hottest src->dst links to list")
	out := fs.String("o", "-", "also write the report to this path (- means stdout only)")
	folded := fs.String("folded", "", "write the engine cost profile as folded stacks (flamegraph input) to this path")
	force := fs.Bool("force", false, "overwrite existing -o/-folded output files")
	allocs := fs.Bool("allocs", false, "also attribute heap allocations per schedule site (slower)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fugusim explain [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", harness.Names())
		fs.PrintDefaults()
	}
	names := parseInterleaved(fs, args)
	if len(names) != 1 {
		fs.Usage()
		os.Exit(2)
	}
	common.resolve()

	rec := spans.NewRecorder(nil)
	prof := sim.NewProfiler(sim.ProfilerConfig{Wall: true, Allocs: *allocs})
	opts := append(common.harnessOptions(),
		harness.WithTrials(1), harness.WithParallelism(1),
		harness.WithSpans(rec), harness.WithProfiler(prof))
	opt := harness.NewOptions(opts...)
	exp, pts, sel, err := resolvePoint(names[0], pointIndex(*point, *listPts), opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(2)
	}
	if *listPts {
		listPoints(os.Stdout, pts)
		return
	}

	// Refuse clobbering outputs before the replay, not after (see doctor).
	for _, path := range []string{*out, *folded} {
		if err := prepareOutputPath(path, *force); err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	pt := *sel
	fmt.Fprintf(os.Stderr, "explain: replaying %s point %d (%s) seed=%#x\n",
		exp.Name, *point, pt.Label, opt.Seed)
	res, err := pt.Run(ctx, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %s (%s): %v\n", exp.Name, pt.Label, err)
		os.Exit(1)
	}

	var problems []string
	if mc, ok := res.(harness.MetricsCarrier); ok {
		snap := mc.MetricsSnapshot()
		if *common.metricsDir != "" {
			writeMetrics(*common.metricsDir, exp.Name)(snap)
		}
		problems = rec.Check(snap.Counters["glaze.deliver.fast"], snap.Counters["glaze.deliver.buffered"])
	} else {
		problems = rec.Check(rec.Counts().Fast, rec.Counts().Inserts)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "explain: %s point %d (%s) seed=%#x\n", exp.Name, *point, pt.Label, opt.Seed)
	fmt.Fprintf(&b, "%s\n\n", rec.Summary())
	writeWaterfall(&b, rec)
	writeAnatomy(&b, rec)
	writeHeat(&b, rec, *links)
	writeSlowest(&b, rec, *topK)
	fmt.Fprintf(&b, "engine cost profile (by schedule site)\n")
	prof.Snapshot().WriteTable(&b)
	for _, p := range problems {
		fmt.Fprintf(&b, "\nPROBLEM: %s\n", p)
	}

	emit := func(path, text string) {
		if werr := os.WriteFile(path, []byte(text), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "fugusim: %v\n", werr)
			os.Exit(1)
		}
	}
	fmt.Print(b.String())
	if *out != "-" && *out != "" {
		emit(*out, b.String())
	}
	if *folded != "" {
		var fb strings.Builder
		prof.Snapshot().WriteFolded(&fb)
		emit(*folded, fb.String())
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "explain: %d invariant violation(s)\n", len(problems))
		os.Exit(1)
	}
}

// writeWaterfall renders the per-stage dwell waterfall: for each pipeline
// stage, the share of all terminal-span cycles dwelt there plus dwell
// percentiles over the spans that visited it.
func writeWaterfall(w io.Writer, rec *spans.Recorder) {
	totals := rec.StageDwellTotals()
	latency := rec.LatencyTotal()
	fmt.Fprintf(w, "stage-dwell waterfall (%d terminal spans, %d total latency cycles)\n",
		rec.Terminated(), latency)
	fmt.Fprintf(w, "  %-12s %14s %7s %10s %10s %10s %10s %10s\n",
		"stage", "cycles", "share", "visits", "p50", "p90", "p99", "max")
	for st := spans.Stage(0); st < spans.NumStages; st++ {
		h := rec.StageHist(st)
		share := 0.0
		if latency > 0 {
			share = 100 * float64(totals[st]) / float64(latency)
		}
		bar := strings.Repeat("#", int(share/5))
		fmt.Fprintf(w, "  %-12s %14d %6.1f%% %10d %10d %10d %10d %10d  %s\n",
			st, totals[st], share, h.Count,
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max, bar)
	}
	fmt.Fprintln(w)
}

// writeAnatomy renders the per-(policy, stage, cause) dwell breakdown.
func writeAnatomy(w io.Writer, rec *spans.Recorder) {
	rows := rec.Anatomy()
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "dwell by (policy, stage, cause)\n")
	fmt.Fprintf(w, "  %-10s %-12s %-14s %10s %14s %10s %10s %10s %10s\n",
		"policy", "stage", "cause", "count", "cycles", "p50", "p90", "p99", "max")
	for _, r := range rows {
		cause := r.Cause
		if cause == "" {
			cause = "-"
		}
		fmt.Fprintf(w, "  %-10s %-12s %-14s %10d %14d %10d %10d %10d %10d\n",
			r.Policy, r.Stage, cause, r.Count, r.Sum, r.P50, r.P90, r.P99, r.Max)
	}
	fmt.Fprintln(w)
}

// writeHeat renders the per-destination-node dwell table and the hottest
// src->dst links by summed end-to-end latency.
func writeHeat(w io.Writer, rec *spans.Recorder, nLinks int) {
	nodes := rec.NodeHeats()
	if len(nodes) > 0 {
		fmt.Fprintf(w, "destination-node heat (dwell cycles by stage)\n")
		fmt.Fprintf(w, "  %-6s %8s", "node", "msgs")
		for st := spans.Stage(0); st < spans.NumStages; st++ {
			fmt.Fprintf(w, " %12s", st)
		}
		fmt.Fprintln(w)
		for _, nh := range nodes {
			fmt.Fprintf(w, "  %-6d %8d", nh.Node, nh.Count)
			for _, d := range nh.Dwell {
				fmt.Fprintf(w, " %12d", d)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	heats := rec.LinkHeats()
	if len(heats) == 0 {
		return
	}
	if nLinks > 0 && len(heats) > nLinks {
		heats = heats[:nLinks]
	}
	fmt.Fprintf(w, "hottest links (by summed end-to-end latency)\n")
	fmt.Fprintf(w, "  %-10s %8s %14s %12s\n", "link", "msgs", "cycles", "avg")
	for _, lh := range heats {
		avg := uint64(0)
		if lh.Count > 0 {
			avg = lh.Latency / lh.Count
		}
		fmt.Fprintf(w, "  %3d->%-5d %8d %14d %12d\n", lh.Src, lh.Dst, lh.Count, lh.Latency, avg)
	}
	fmt.Fprintln(w)
}

// writeSlowest renders the top-K slowest messages with their full stage
// timelines: when each span entered each stage and why, plus the dwell the
// span accumulated in it.
func writeSlowest(w io.Writer, rec *spans.Recorder, k int) {
	slow := rec.Slowest(k)
	if len(slow) == 0 {
		return
	}
	fmt.Fprintf(w, "slowest %d message(s)\n", len(slow))
	for i := range slow {
		s := &slow[i]
		fmt.Fprintf(w, "  #%-2d e%d#%d %s %d->%d %dw latency=%d (%s)\n",
			i+1, s.Epoch, s.ID, s.Class, s.Src, s.Dst, s.Words, s.Latency(), s.Term)
		for _, ev := range s.History() {
			cause := ev.Cause
			if cause == "" {
				cause = "-"
			}
			fmt.Fprintf(w, "      @%-12d %-12s %-14s dwell=%d\n",
				ev.At, ev.Stage, cause, s.Dwell[ev.Stage])
		}
	}
	fmt.Fprintln(w)
}
