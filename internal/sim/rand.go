package sim

// Rand is a small deterministic pseudo-random source (splitmix64 seeded
// xorshift64*). It exists so simulations never depend on math/rand global
// state or Go version differences; the same seed always yields the same
// stream.
type Rand struct {
	state uint64
}

// NewRand returns a generator for the given seed. Seed 0 is remapped to a
// fixed constant because xorshift has an all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	// Run the seed through splitmix64 once to decorrelate small seeds.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return &Rand{state: z}
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// UniformAround returns a uniform integer in [mean/2, 3*mean/2), i.e. a
// uniformly distributed delay with the given mean, matching the paper's
// "uniformly distributed random variable with an average of T_betw cycles".
func (r *Rand) UniformAround(mean uint64) uint64 {
	if mean == 0 {
		return 0
	}
	lo := mean / 2
	return lo + r.Uint64n(mean)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
