package faultinject

// pcg is a PCG-XSH-RR 64/32 generator (O'Neill 2014): 64-bit LCG state,
// 32-bit output via xorshift-high + random rotation. It is the injector's
// private randomness stream, deliberately a different family from the
// engine's xorshift64* so the two cannot be conflated: fault draws consume
// zero machine randomness and fault-free runs stay bit-identical.
type pcg struct {
	state uint64
	inc   uint64 // stream selector; must be odd
}

// pcgMult is the canonical PCG 64-bit LCG multiplier.
const pcgMult = 6364136223846793005

// pcgDefaultSeq is the reference implementation's default stream selector.
const pcgDefaultSeq uint64 = 0xda3e39cb94b95bdb

// newPCG seeds the generator on the default stream, matching the reference
// pcg32_srandom sequence.
func newPCG(seed uint64) pcg {
	seq := pcgDefaultSeq // shift wraps at runtime; as a constant it would overflow
	p := pcg{inc: seq<<1 | 1}
	p.next()
	p.state += seed
	p.next()
	return p
}

// next returns the next 32 random bits.
func (p *pcg) next() uint32 {
	old := p.state
	p.state = old*pcgMult + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// float64 returns a uniform value in [0, 1) with 53 random bits.
func (p *pcg) float64() float64 {
	hi := uint64(p.next())
	lo := uint64(p.next())
	return float64(((hi<<32)|lo)>>11) / (1 << 53)
}
