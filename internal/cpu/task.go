package cpu

import (
	"fmt"

	"fugu/internal/sim"
)

type taskState int

const (
	taskReady taskState = iota
	taskRunning
	taskBlocked
	taskDone
	taskSuspended
)

// Task is a schedulable activity on a CPU. Task code runs inside a simulated
// coroutine; it consumes simulated time only through Spend (and the blocking
// primitives), so code between Spend calls executes in zero simulated time,
// the usual convention for this style of simulator.
//
// Wake-up discipline: a task's proc may receive stale wakes (a grant that was
// preempted in the same instant, or the initial spawn dispatch). Every park
// point therefore loops until state == taskRunning; the scheduler in turn
// never double-wakes a proc that already has a pending wake.
type Task struct {
	cpu    *CPU
	proc   *sim.Proc
	name   string
	prio   Priority
	domain Domain
	state  taskState

	// preemptible is false for ISR tasks: interrupts are masked in kernel
	// interrupt handlers, matching FUGU.
	preemptible bool

	// Spend bookkeeping. spendFn is the completion callback, built once at
	// task creation so arming a spend schedules an existing closure instead
	// of allocating a fresh one per Spend.
	remaining  uint64
	spendStart uint64
	spendEv    sim.Handle
	spendFn    func()

	consumed uint64 // total cycles this task has spent

	// Scheduler gate (Suspend/Resume).
	suspended  bool
	wakeBanked bool

	// Tag is free for higher layers (glaze attaches the owning process).
	Tag any
}

// NewTask creates a ready task that will run fn when first granted the CPU.
// ISR tasks should be created through NewIRQ instead.
func (c *CPU) NewTask(name string, prio Priority, domain Domain, fn func(*Task)) *Task {
	t := &Task{
		cpu:         c,
		name:        name,
		prio:        prio,
		domain:      domain,
		state:       taskReady,
		preemptible: prio != PrioISR,
	}
	t.spendFn = func() {
		t.account(t.remaining)
		t.remaining = 0
		t.spendEv = sim.Handle{}
		t.cpu.wakeProc(t)
	}
	t.proc = c.eng.Spawn(name, func(p *sim.Proc) {
		t.waitGrant()
		fn(t)
		t.state = taskDone
		c.release(t)
	})
	t.proc.SetSite(siteTaskWake)
	c.enqueue(t, false)
	c.kick()
	return t
}

// siteTaskWake labels task wake/resume events for the engine cost
// profiler; higher layers override per-domain via SetWakeSite.
var siteTaskWake = sim.NewSite("cpu.task.wake")

// SetWakeSite relabels this task's wake events for the cost profiler, so
// a layer that knows what the task is for (a udm handler thread, a glaze
// kernel daemon) can attribute its resumes to that domain.
func (t *Task) SetWakeSite(s sim.Site) { t.proc.SetSite(s) }

// waitGrant parks until the scheduler has made this task the running one,
// absorbing stale wake-ups.
func (t *Task) waitGrant() {
	for t.state != taskRunning {
		t.proc.Park()
	}
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// Priority returns the task's scheduling priority.
func (t *Task) Priority() Priority { return t.prio }

// SetPriority changes the task's priority. Raising the priority of a ready
// task can preempt the running task at its next boundary.
func (t *Task) SetPriority(p Priority) {
	if t.prio == p {
		return
	}
	if t.state == taskReady {
		q := t.cpu.ready[t.prio]
		for i, x := range q {
			if x == t {
				t.cpu.ready[t.prio] = append(q[:i], q[i+1:]...)
				break
			}
		}
		t.prio = p
		t.cpu.enqueue(t, false)
		t.cpu.kick()
		return
	}
	t.prio = p
}

// Domain returns the task's accounting domain.
func (t *Task) Domain() Domain { return t.domain }

// Consumed reports total cycles the task has spent.
func (t *Task) Consumed() uint64 { return t.consumed }

// Done reports whether the task function has returned.
func (t *Task) Done() bool { return t.state == taskDone }

// Blocked reports whether the task is blocked.
func (t *Task) Blocked() bool { return t.state == taskBlocked }

// Ready reports whether the task is queued runnable.
func (t *Task) Ready() bool { return t.state == taskReady }

// CPU returns the task's processor.
func (t *Task) CPU() *CPU { return t.cpu }

// Now returns the current simulation time.
func (t *Task) Now() uint64 { return t.cpu.eng.Now() }

// assertRunning panics unless t is the live running task; all
// time-consuming task methods require it.
func (t *Task) assertRunning() {
	if t.cpu.running != t || t.state != taskRunning {
		panic(fmt.Sprintf("cpu: %s used while not running (state %d)", t.name, t.state))
	}
}

// Spend consumes n cycles of CPU time. It is a preemption point: a
// higher-priority ready task (typically an ISR) takes the CPU first, and the
// spend resumes afterwards with the balance intact. Spend(0) is a pure
// preemption point.
func (t *Task) Spend(n uint64) {
	t.assertRunning()
	t.remaining += n
	for {
		if t.state == taskRunning && t.cpu.needResched(t) {
			t.depose(true)
		}
		if t.state != taskRunning {
			t.proc.Park()
			continue
		}
		if t.remaining == 0 {
			return
		}
		t.armSpend()
		t.proc.Park()
		// Loop: the wake was either spend completion (remaining == 0,
		// still running), a re-grant after preemption, or stale.
	}
}

// armSpend schedules the completion event for the current balance.
func (t *Task) armSpend() {
	t.spendStart = t.cpu.eng.Now()
	t.spendEv = t.cpu.eng.ScheduleSite(siteSpend, t.remaining, t.spendFn)
}

// siteSpend labels cycle-spend completions for the engine cost profiler.
var siteSpend = sim.NewSite("cpu.spend")

// suspendSpend cancels an in-flight spend completion, charging the elapsed
// portion. Called (from event context) when t is preempted while parked.
func (t *Task) suspendSpend() {
	if !t.spendEv.Pending() {
		return
	}
	elapsed := t.cpu.eng.Now() - t.spendStart
	t.cpu.eng.Cancel(t.spendEv)
	t.spendEv = sim.Handle{}
	if elapsed >= t.remaining {
		elapsed = t.remaining
	}
	t.account(elapsed)
	t.remaining -= elapsed
}

func (t *Task) account(cycles uint64) {
	t.consumed += cycles
	t.cpu.spent[t.domain] += cycles
}

// depose surrenders the CPU: the task goes back to its ready queue (at the
// front when the surrender is involuntary) and the scheduler picks the next
// task. The caller is responsible for parking afterwards.
func (t *Task) depose(front bool) {
	c := t.cpu
	t.state = taskReady
	c.enqueue(t, front)
	c.running = nil
	c.notifyRun(t, nil)
	c.schedule()
}

// Block surrenders the CPU and parks until Unblock and a fresh grant.
// The caller typically registers t somewhere (a wait queue, an IRQ pending
// list) first.
func (t *Task) Block() {
	t.assertRunning()
	t.state = taskBlocked
	t.cpu.release(t)
	t.waitGrant()
}

// Unblock makes a blocked task ready. Safe from any context. Unblocking a
// task that is not blocked panics: it indicates a lost-wakeup protocol bug
// in the caller. If the task was suspended while blocked, the wake is
// banked: it becomes runnable when resumed.
func (t *Task) Unblock() {
	if t.state != taskBlocked {
		panic(fmt.Sprintf("cpu: Unblock of %s in state %d", t.name, t.state))
	}
	if t.suspended {
		t.state = taskSuspended
		t.wakeBanked = true
		return
	}
	t.state = taskReady
	t.cpu.enqueue(t, false)
	t.cpu.kick()
}

// Suspend makes the task ineligible to run until Resume: the scheduler-level
// gate the gang scheduler uses to deschedule a process mid-quantum. A
// running task is preempted with its Spend balance intact; a blocked task
// stays blocked and its eventual wake is banked.
func (t *Task) Suspend() {
	if t.suspended {
		return
	}
	t.suspended = true
	switch t.state {
	case taskDone:
		return
	case taskBlocked:
		// Stays blocked; Unblock will park it in taskSuspended.
	case taskReady:
		t.cpu.removeReady(t)
		t.state = taskSuspended
	case taskRunning:
		if t.cpu.eng.Current() != nil {
			panic(fmt.Sprintf("cpu: Suspend of running %s from task context", t.name))
		}
		t.suspendSpend()
		t.state = taskSuspended
		t.cpu.running = nil
		t.cpu.notifyRun(t, nil)
		t.cpu.schedule()
	}
}

// Resume lifts a Suspend. A task suspended mid-Spend, from the ready queue,
// or whose blocking wake arrived while suspended becomes ready again; a task
// still blocked simply loses the gate.
func (t *Task) Resume() {
	if !t.suspended {
		return
	}
	t.suspended = false
	if t.state == taskSuspended {
		t.wakeBanked = false
		t.state = taskReady
		t.cpu.enqueue(t, false)
		t.cpu.kick()
	}
}

// StateName renders the task's scheduler state for diagnostics.
func (t *Task) StateName() string {
	var s string
	switch t.state {
	case taskReady:
		s = "ready"
	case taskRunning:
		s = "running"
	case taskBlocked:
		s = "blocked"
	case taskDone:
		s = "done"
	case taskSuspended:
		s = "suspended"
	default:
		s = fmt.Sprintf("state(%d)", int(t.state))
	}
	if t.suspended && t.state != taskSuspended && t.state != taskDone {
		s += "+gated"
	}
	return s
}

// Suspended reports whether the scheduler gate is closed for this task.
func (t *Task) Suspended() bool { return t.suspended }

// WaitQ is a FIFO queue of blocked tasks, the task-level condition variable.
type WaitQ struct {
	name  string
	tasks []*Task
}

// NewWaitQ returns an empty wait queue.
func NewWaitQ(name string) *WaitQ { return &WaitQ{name: name} }

// Wait blocks the calling task until woken. Callers re-check their predicate
// in a loop, as with condition variables.
func (q *WaitQ) Wait(t *Task) {
	q.tasks = append(q.tasks, t)
	t.Block()
}

// WakeOne readies the longest-waiting task, reporting whether one existed.
func (q *WaitQ) WakeOne() bool {
	if len(q.tasks) == 0 {
		return false
	}
	t := q.tasks[0]
	copy(q.tasks, q.tasks[1:])
	q.tasks = q.tasks[:len(q.tasks)-1]
	t.Unblock()
	return true
}

// WakeAll readies every waiting task in FIFO order, returning the count.
func (q *WaitQ) WakeAll() int {
	n := len(q.tasks)
	for _, t := range q.tasks {
		t.Unblock()
	}
	q.tasks = q.tasks[:0]
	return n
}

// Len reports how many tasks are waiting.
func (q *WaitQ) Len() int { return len(q.tasks) }
