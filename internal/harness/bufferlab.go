package harness

import (
	"context"
	"fmt"
	"io"
	"strings"

	"fugu/internal/faultinject"
	"fugu/internal/metrics"
	"fugu/internal/niq"
	"fugu/internal/plot"
	"fugu/internal/telemetry"
)

// The buffer lab is the economics experiment behind the InputQueue seam:
// the crucible's all-to-all workload run once per (queue model, allocation
// policy, fault plan) at equal total NI slots, with every crucible and
// timeline oracle still enforced. Where the policy lab compares rival
// *delivery* organizations, the buffer lab holds delivery fixed (two-case by
// default) and asks what the same receive SRAM buys under each buffer
// organization: overflow (refusal) rate, time spent in kernel-buffered mode,
// and tail latency per pinned slot.

// bufferlabSlots is the total NI pool every spec runs at — the comparison is
// meaningful only at equal SRAM. 16 (the default hardware depth) is where all
// three (R, B) splits differ for 8 sources: static pins 2 per source with
// nothing shared, hybrid reserves 1 and pools 8, demand pools all 16 — and
// the lab's convergent bursts (7 senders x 4 back-to-back sends at one
// destination) oversubscribe it roughly 2:1, so refusal behaviour separates
// the organizations.
const bufferlabSlots = 16

// bufferlabLoad is the hot-spot offered load from the DAMQ literature:
// every node fires 4-message bursts at one shared rotating destination, so
// the victim NI absorbs the whole machine's burst while its own drain rate
// decides how much of it bounces.
var bufferlabLoad = crucibleLoad{burst: 4, converge: true}

// bufferlabSpecs enumerates the sweep's queue configurations: the static
// FIFO baseline plus both multi-queue models under each allocation policy,
// all at bufferlabSlots.
func bufferlabSpecs() []niq.Spec {
	specs := []niq.Spec{{Model: niq.ModelFIFO, Policy: niq.PolicyStatic, Slots: bufferlabSlots}}
	for _, model := range []string{niq.ModelDAMQ, niq.ModelReserve} {
		for _, policy := range niq.Policies() {
			specs = append(specs, niq.Spec{Model: model, Policy: policy, Slots: bufferlabSlots})
		}
	}
	return specs
}

// bufferlabPlans are the adversity schedules the lab sweeps: the clean
// baseline, the PR 5 network plans paired with the receive-side pressure the
// policy lab uses (mismatch storms head-of-line-block a FIFO straight into
// divert mode, which is exactly the failure the multi-queue models attack),
// and the frame-starvation plan that drives overflow control.
func bufferlabPlans() []cruciblePlan {
	w := func(s faultinject.FaultSpec) faultinject.FaultSpec {
		s.From, s.Until, s.Node = crucibleFaultsStart, crucibleFaultsLift, faultinject.AllNodes
		return s
	}
	// The mismatch trickle is deliberately light: a storm would pin every
	// node in divert mode (where all organizations drain identically through
	// the kernel), but a trickle lands the occasional mismatched packet at
	// the front of a convergent burst — exactly the head-of-line block that
	// separates strict-FIFO presentation from the multi-queue bypass.
	pressure := func(p *faultinject.Plan) {
		p.Arm(faultinject.GIDMismatch, w(faultinject.FaultSpec{Prob: 0.1}))
		p.Arm(faultinject.QuantumExpiry, w(faultinject.FaultSpec{Prob: 0.05, Cycles: 2_000}))
	}
	return []cruciblePlan{
		{"none", func(p *faultinject.Plan) {}},
		{"hot-spot", func(p *faultinject.Plan) {
			p.Arm(faultinject.HotSpot, w(faultinject.FaultSpec{Prob: 0.4, Cycles: 300}))
			pressure(p)
		}},
		{"link-stall", func(p *faultinject.Plan) {
			p.Arm(faultinject.LinkStall, w(faultinject.FaultSpec{Prob: 0.4, Cycles: 300}))
			pressure(p)
		}},
		{"starve", func(p *faultinject.Plan) {
			p.Arm(faultinject.FrameStarvation, w(faultinject.FaultSpec{Cycles: 1 << 16}))
			p.Arm(faultinject.GIDMismatch, w(faultinject.FaultSpec{Prob: 0.2}))
		}},
	}
}

// BufferLabRow is one (queue spec, plan, trial) run's outcome.
type BufferLabRow struct {
	Model     string
	Policy    string
	Slots     int
	Plan      string
	Trial     int
	Completed bool
	Cycles    uint64

	// Arrived and Refused are NI admission events summed over nodes;
	// OverflowRate is Refused / (Arrived + Refused) — the fraction of
	// delivery offers the queue organization pushed back into the network.
	Arrived      uint64
	Refused      uint64
	OverflowRate float64

	Fast     uint64
	Buffered uint64
	FastPct  float64 // Fast / (Fast + Buffered) * 100

	// Residency is the fraction of flight-recorder intervals with any node
	// in kernel-buffered mode (the 'b'/'B' glyphs), over the whole run.
	Residency float64

	// P99 delivery latency (injection to disposal) per path, and the
	// headline economics number: overall p99 per pinned slot.
	P99Fast    uint64
	P99Buf     uint64
	P99PerSlot float64

	// Steals counts shared-pool slots taken beyond a source's reserve;
	// Bypasses counts fast-path pops that jumped a mismatched front packet.
	// Both are zero for the static FIFO.
	Steals   uint64
	Bypasses uint64

	// Problems carries the crucible + timeline oracle violations.
	Problems []string
}

// BufferLabResult is the structured outcome of the buffer-economics sweep.
type BufferLabResult struct {
	Rows  []BufferLabRow
	snaps []metrics.Snapshot
}

// Problems flattens every row's oracle violations, prefixed by the run.
func (r BufferLabResult) Problems() []string {
	var out []string
	for _, row := range r.Rows {
		for _, p := range row.Problems {
			out = append(out, fmt.Sprintf("%s:%s/%s trial=%d: %s",
				row.Model, row.Policy, row.Plan, row.Trial, p))
		}
	}
	return out
}

// Dominance aggregates refusals across every plan and trial per queue spec
// and reports whether at least one shared organization strictly beats the
// static FIFO on overflow rate at the same slot count — the economics claim
// the sweep exists to test. ok is false when the FIFO never refused (the
// workload was not scarce enough to compare) or no shared spec won.
func (r BufferLabResult) Dominance() (fifoRate float64, bestSpec string, bestRate float64, ok bool) {
	type agg struct{ arrived, refused uint64 }
	sums := map[string]*agg{}
	order := []string{}
	for _, row := range r.Rows {
		key := row.Model + ":" + row.Policy
		a := sums[key]
		if a == nil {
			a = &agg{}
			sums[key] = a
			order = append(order, key)
		}
		a.arrived += row.Arrived
		a.refused += row.Refused
	}
	rate := func(a *agg) float64 {
		if a.arrived+a.refused == 0 {
			return 0
		}
		return float64(a.refused) / float64(a.arrived+a.refused)
	}
	fifo := sums["fifo:static"]
	if fifo == nil || fifo.refused == 0 {
		return 0, "", 0, false
	}
	fifoRate = rate(fifo)
	bestSpec, bestRate = "", fifoRate
	for _, key := range order {
		if key == "fifo:static" {
			continue
		}
		if rr := rate(sums[key]); bestSpec == "" || rr < bestRate {
			bestSpec, bestRate = key, rr
		}
	}
	return fifoRate, bestSpec, bestRate, bestSpec != "" && bestRate < fifoRate
}

// Print renders the economics table grouped by plan, then the dominance
// verdict and any oracle violations.
func (r BufferLabResult) Print(w io.Writer) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		status := "ok"
		if !row.Completed {
			status = "WEDGED"
		} else if len(row.Problems) > 0 {
			status = "ORACLE FAIL"
		}
		rows = append(rows, []string{
			row.Plan, row.Model + ":" + row.Policy, status,
			fmt.Sprintf("%.2f%%", row.OverflowRate*100),
			fmt.Sprintf("%.1f%%", row.FastPct),
			fmt.Sprintf("%.0f%%", row.Residency*100),
			u(row.P99Fast), u(row.P99Buf),
			u(row.Steals), u(row.Bypasses), u(row.Cycles),
		})
	}
	fmt.Fprintf(w, "Buffer lab: NI queue organizations at equal SRAM (%d slots, 8 nodes, all-to-all, oracles enforced)\n", bufferlabSlots)
	fmt.Fprintln(w, plot.Table([]string{
		"plan", "queue", "status", "ovfl%", "fast%", "resid", "p99.fast", "p99.buf",
		"steals", "bypass", "cycles",
	}, rows))
	if fifoRate, best, bestRate, ok := r.Dominance(); ok {
		fmt.Fprintf(w, "dominance: %s overflow %.2f%% < fifo:static %.2f%% at %d slots\n",
			best, bestRate*100, fifoRate*100, bufferlabSlots)
	} else {
		fmt.Fprintln(w, "dominance: NO shared organization beat the static FIFO on overflow rate")
	}
	if problems := r.Problems(); len(problems) > 0 {
		fmt.Fprintf(w, "\n%d oracle violation(s):\n", len(problems))
		for _, p := range problems {
			fmt.Fprintln(w, " ", p)
		}
	} else {
		fmt.Fprintln(w, "all delivery oracles passed under every queue organization")
	}
}

// CSVFiles renders the sweep as bufferlab.csv.
func (r BufferLabResult) CSVFiles() map[string]string {
	var b strings.Builder
	b.WriteString("model,policy,slots,plan,trial,completed,cycles,arrived,refused," +
		"overflow_rate,fast,buffered,fast_pct,residency,p99_fast,p99_buf," +
		"p99_per_slot,steals,bypasses,problems\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%s,%d,%v,%d,%d,%d,%.4f,%d,%d,%.2f,%.3f,%d,%d,%.1f,%d,%d,%d\n",
			row.Model, row.Policy, row.Slots, row.Plan, row.Trial, row.Completed,
			row.Cycles, row.Arrived, row.Refused, row.OverflowRate,
			row.Fast, row.Buffered, row.FastPct, row.Residency,
			row.P99Fast, row.P99Buf, row.P99PerSlot, row.Steals, row.Bypasses,
			len(row.Problems))
	}
	return map[string]string{"bufferlab.csv": b.String()}
}

// bufferLabPoint carries one row plus its machine snapshot.
type bufferLabPoint struct {
	row  BufferLabRow
	snap metrics.Snapshot
}

// MetricsSnapshot implements MetricsCarrier for the Runner's metrics hook.
func (p bufferLabPoint) MetricsSnapshot() metrics.Snapshot { return p.snap }

// BufferLab runs the buffer-economics sweep.
func BufferLab(opts ...Option) (BufferLabResult, error) {
	return runAs[BufferLabResult]("bufferlab", opts...)
}

// bufferLabExperiment fans out one point per (queue spec, plan, trial). The
// workload and oracles are the crucible's; only the queue organization and
// the reported axes differ.
func bufferLabExperiment() *Experiment {
	return &Experiment{
		Name:        "bufferlab",
		Description: "NI input-queue economics: FIFO vs DAMQ vs reserve-plus-borrow at equal slots",
		Points: func(opt Options) []Point {
			specs := bufferlabSpecs()
			plans := bufferlabPlans()
			pts := make([]Point, 0, len(specs)*len(plans)*opt.trials())
			for _, spec := range specs {
				for _, pl := range plans {
					for trial := 0; trial < opt.trials(); trial++ {
						spec, pl, trial := spec, pl, trial
						pts = append(pts, Point{
							Label: fmt.Sprintf("%s %s trial=%d", spec.Name(), pl.name, trial),
							Run: func(_ context.Context, opt Options) (any, error) {
								return runBufferLab(spec, pl, trial, opt), nil
							},
						})
					}
				}
			}
			return pts
		},
		Assemble: func(_ Options, results []any) (Result, error) {
			res := BufferLabResult{
				Rows:  make([]BufferLabRow, len(results)),
				snaps: make([]metrics.Snapshot, len(results)),
			}
			for i, r := range results {
				p := r.(bufferLabPoint)
				res.Rows[i] = p.row
				res.snaps[i] = p.snap
			}
			return res, nil
		},
	}
}

// runBufferLab executes one (queue spec, plan, trial) run through the
// crucible workload and distills the buffer-economics axes.
func runBufferLab(spec niq.Spec, pl cruciblePlan, trial int, opt Options) bufferLabPoint {
	opt.Queue = spec
	pt := runCrucibleLoad(pl, trial, opt, bufferlabLoad)
	snap := pt.snap
	norm := spec.Normalize()

	row := BufferLabRow{
		Model:     norm.Model,
		Policy:    norm.Policy,
		Slots:     norm.Slots,
		Plan:      pl.name,
		Trial:     trial,
		Completed: pt.row.Completed,
		Cycles:    pt.row.Cycles,
		Arrived:   snap.Counters["nic.arrived"],
		Refused:   snap.Counters["nic.refused"],
		Fast:      pt.row.Fast,
		Buffered:  pt.row.Buffered,
		Residency: bufferedResidency(pt.timeline),
		Steals:    snap.Counters["niq.steals"],
		Bypasses:  snap.Counters["niq.bypass"],
		Problems:  pt.row.Problems,
	}
	if offered := row.Arrived + row.Refused; offered > 0 {
		row.OverflowRate = float64(row.Refused) / float64(offered)
	}
	if total := row.Fast + row.Buffered; total > 0 {
		row.FastPct = 100 * float64(row.Fast) / float64(total)
	}
	hf := snap.Histograms["glaze.deliver.latency.fast"]
	hb := snap.Histograms["glaze.deliver.latency.buffered"]
	row.P99Fast = histP99(hf)
	row.P99Buf = histP99(hb)
	if row.Slots > 0 {
		row.P99PerSlot = float64(max(row.P99Fast, row.P99Buf)) / float64(row.Slots)
	}
	return bufferLabPoint{row: row, snap: snap}
}

// bufferedResidency is the fraction of flight-recorder intervals in which
// any node sat in kernel-buffered mode, over the whole run.
func bufferedResidency(tl telemetry.Timeline) float64 {
	if len(tl.Intervals) == 0 {
		return 0
	}
	buffered := 0
	for _, iv := range tl.Intervals {
		if strings.ContainsAny(iv.Modes, "bB") {
			buffered++
		}
	}
	return float64(buffered) / float64(len(tl.Intervals))
}

// histP99 estimates the 99th percentile of an exported log2-bucket
// histogram: the upper bound of the bucket where the cumulative count
// crosses 99% (the same estimate the telemetry quantiles use).
func histP99(h metrics.HistogramValue) uint64 {
	if h.Count == 0 {
		return 0
	}
	need := h.Count - h.Count/100 // ceil semantics: rank of the p99 sample
	var cum uint64
	for _, bk := range h.Buckets {
		cum += bk.Count
		if cum >= need {
			if bk.Le > h.Max {
				return h.Max
			}
			return bk.Le
		}
	}
	return h.Max
}
