package harness

import (
	"context"
	"fmt"
	"io"

	"fugu/internal/apps"
	"fugu/internal/glaze"
	"fugu/internal/plot"
)

// Fig78Result holds the shared sweep behind Figures 7 and 8: every
// application multiprogrammed against null across scheduler skews.
type Fig78Result struct {
	Skews []float64
	// Runs[app][skewIndex]
	Runs map[string][]RunStats
	Apps []string
}

// Fig7Skews returns the schedule-quality sweep (fraction of the quantum by
// which node clocks are skewed).
func Fig7Skews(quick bool) []float64 {
	if quick {
		return []float64{0, 0.01, 0.04, 0.08}
	}
	return []float64{0, 0.005, 0.01, 0.02, 0.04, 0.08}
}

// Fig7and8 runs the sweep. Figure 7 reads the buffered fraction, Figure 8
// the runtime relative to zero skew; both also expose the max physical
// buffer pages per node (the paper's "less than seven pages" observation).
func Fig7and8(opts ...Option) (Fig78Result, error) {
	return runAs[Fig78Result]("fig7and8", opts...)
}

// fig7and8Experiment fans out one point per (application, skew, trial).
func fig7and8Experiment() *Experiment {
	return &Experiment{
		Name:        "fig7and8",
		Description: "buffered fraction and relative runtime vs scheduler skew",
		Points: func(opt Options) []Point {
			skews := Fig7Skews(opt.Quick)
			var pts []Point
			for _, mk := range AppMakers(opt.Quick) {
				mk := mk
				name := mk().Name()
				for _, skew := range skews {
					skew := skew
					for trial := 0; trial < opt.trials(); trial++ {
						trial := trial
						pts = append(pts, Point{
							Label: fmt.Sprintf("%s skew=%.1f%% trial=%d", name, skew*100, trial),
							Run: func(_ context.Context, opt Options) (any, error) {
								return RunMultiprogrammedQ(mk, skew, opt.TrialSeed(trial), opt.QuantumFor(), opt.machineMut(nil)), nil
							},
						})
					}
				}
			}
			return pts
		},
		Assemble: func(opt Options, results []any) (Result, error) {
			res := Fig78Result{Skews: Fig7Skews(opt.Quick), Runs: map[string][]RunStats{}}
			groups := groupTrials(results, opt.trials())
			g := 0
			for _, mk := range AppMakers(opt.Quick) {
				name := mk().Name()
				res.Apps = append(res.Apps, name)
				for range res.Skews {
					res.Runs[name] = append(res.Runs[name], averageStats(groups[g]))
					g++
				}
			}
			return res, nil
		},
	}
}

// Print renders both figures the shared sweep backs.
func (r Fig78Result) Print(w io.Writer) {
	r.Print7(w)
	r.Print8(w)
}

// Print7 renders Figure 7: percentage of messages traversing the buffered
// path versus decreasing schedule quality.
func (r Fig78Result) Print7(w io.Writer) {
	var series []plot.Series
	rows := make([][]string, 0)
	for _, app := range r.Apps {
		s := plot.Series{Name: app}
		for i, skew := range r.Skews {
			run := r.Runs[app][i]
			s.X = append(s.X, skew*100)
			s.Y = append(s.Y, run.BufferedPct)
			rows = append(rows, []string{app, fmt.Sprintf("%.1f%%", skew*100),
				pct(run.BufferedPct), u(run.Buffered), u(run.Msgs),
				fmt.Sprintf("%d", run.MaxBufferPages), errStr(run.Err)})
		}
		series = append(series, s)
	}
	fmt.Fprintln(w, plot.Line("Figure 7: % messages buffered vs scheduler skew",
		"skew (% of quantum)", "% buffered", series, 60, 16))
	fmt.Fprintln(w, plot.Table(
		[]string{"app", "skew", "%buffered", "buffered", "msgs", "maxpages/node", "check"}, rows))
	fmt.Fprintln(w, "paper: synchronizing apps flat, enum linear in skew; all < 7 pages/node")
}

// Print8 renders Figure 8: runtime normalized to the zero-skew run.
func (r Fig78Result) Print8(w io.Writer) {
	var series []plot.Series
	rows := make([][]string, 0)
	for _, app := range r.Apps {
		base := float64(r.Runs[app][0].Runtime)
		s := plot.Series{Name: app}
		for i, skew := range r.Skews {
			rel := float64(r.Runs[app][i].Runtime) / base
			s.X = append(s.X, skew*100)
			s.Y = append(s.Y, rel)
			rows = append(rows, []string{app, fmt.Sprintf("%.1f%%", skew*100),
				fmt.Sprintf("%.3f", rel), mcyc(r.Runs[app][i].Runtime)})
		}
		series = append(series, s)
	}
	fmt.Fprintln(w, plot.Line("Figure 8: relative runtime vs scheduler skew",
		"skew (% of quantum)", "runtime / zero-skew runtime", series, 60, 16))
	fmt.Fprintln(w, plot.Table([]string{"app", "skew", "relative", "runtime"}, rows))
	fmt.Fprintln(w, "paper: barrier most sensitive (~1/(1-skew)), enum least; others intermediate")
}

// Fig9Result sweeps the send interval for synth-N (Figure 9).
type Fig9Result struct {
	TBetws []uint64
	Ns     []int
	// Pct[nIndex][tbetwIndex] = % buffered on the consumer side.
	Pct  [][]float64
	Errs []error
}

// Fig9 reproduces: % messages buffered vs send interval, synth-N at 1%
// scheduler skew, T_hand fixed (~290 cycles with overheads).
func Fig9(opts ...Option) (Fig9Result, error) {
	return runAs[Fig9Result]("fig9", opts...)
}

// fig9TBetws returns the send-interval sweep for the chosen scale.
func fig9TBetws(quick bool) []uint64 {
	if quick {
		return []uint64{100, 150, 275, 600}
	}
	return []uint64{100, 150, 200, 275, 400, 600, 900, 1300}
}

// synthNs are the synth-N sizes Figures 9 and 10 sweep.
var synthNs = []int{10, 100, 1000}

// synthGroups keeps the total requests per node constant across synth-N
// sizes (12,000 full scale, 4,000 quick).
func synthGroups(n int, quick bool) int {
	total := 12000
	if quick {
		total = 4000
	}
	return max(1, total/n)
}

// fig9Experiment fans out one point per (synth-N, T_betw, trial).
func fig9Experiment() *Experiment {
	return &Experiment{
		Name:        "fig9",
		Description: "buffered fraction vs send interval for synth-N at 1% skew",
		Points: func(opt Options) []Point {
			var pts []Point
			for _, n := range synthNs {
				n := n
				for _, tb := range fig9TBetws(opt.Quick) {
					tb := tb
					for trial := 0; trial < opt.trials(); trial++ {
						trial := trial
						pts = append(pts, Point{
							Label: fmt.Sprintf("synth-%d tbetw=%d trial=%d", n, tb, trial),
							Run: func(_ context.Context, opt Options) (any, error) {
								return RunMultiprogrammedQ(
									func() apps.Instance { return apps.NewSynth(n, synthGroups(n, opt.Quick), tb) },
									0.01, opt.TrialSeed(trial), Quantum, opt.machineMut(nil)), nil
							},
						})
					}
				}
			}
			return pts
		},
		Assemble: func(opt Options, results []any) (Result, error) {
			res := Fig9Result{TBetws: fig9TBetws(opt.Quick), Ns: synthNs}
			groups := groupTrials(results, opt.trials())
			g := 0
			for range res.Ns {
				var row []float64
				for range res.TBetws {
					avg := averageStats(groups[g])
					g++
					if avg.Err != nil {
						res.Errs = append(res.Errs, avg.Err)
					}
					row = append(row, avg.BufferedPct)
				}
				res.Pct = append(res.Pct, row)
			}
			return res, nil
		},
	}
}

// Print renders Figure 9.
func (r Fig9Result) Print(w io.Writer) {
	var series []plot.Series
	rows := [][]string{}
	for i, n := range r.Ns {
		s := plot.Series{Name: fmt.Sprintf("synth-%d", n)}
		for j, tb := range r.TBetws {
			s.X = append(s.X, float64(tb))
			s.Y = append(s.Y, r.Pct[i][j])
			rows = append(rows, []string{s.Name, u(tb), pct(r.Pct[i][j])})
		}
		series = append(series, s)
	}
	fmt.Fprintln(w, plot.Line("Figure 9: % messages buffered vs send interval (1% skew)",
		"T_betw (cycles)", "% buffered", series, 60, 16))
	fmt.Fprintln(w, plot.Table([]string{"app", "T_betw", "%buffered"}, rows))
	fmt.Fprintln(w, "paper: small once T_betw > T_hand + buffering overhead; smaller N buffers less")
	for _, err := range r.Errs {
		fmt.Fprintf(w, "CHECK FAILED: %v\n", err)
	}
}

// Fig10Result sweeps the buffered-path cost (Figure 10).
type Fig10Result struct {
	Extra []uint64
	Ns    []int
	Pct   [][]float64
	Errs  []error
}

// Fig10 reproduces: % messages buffered vs artificial additions to the
// buffer-insert handler cost, at T_betw = 275 cycles and 1% skew.
func Fig10(opts ...Option) (Fig10Result, error) {
	return runAs[Fig10Result]("fig10", opts...)
}

// fig10Extras returns the added-insert-cost sweep for the chosen scale.
func fig10Extras(quick bool) []uint64 {
	if quick {
		return []uint64{0, 200, 800}
	}
	return []uint64{0, 100, 200, 400, 800, 1600}
}

// fig10Experiment fans out one point per (synth-N, extra cost, trial).
func fig10Experiment() *Experiment {
	return &Experiment{
		Name:        "fig10",
		Description: "buffered fraction vs added buffered-path cost for synth-N",
		Points: func(opt Options) []Point {
			var pts []Point
			for _, n := range synthNs {
				n := n
				for _, extra := range fig10Extras(opt.Quick) {
					extra := extra
					for trial := 0; trial < opt.trials(); trial++ {
						trial := trial
						pts = append(pts, Point{
							Label: fmt.Sprintf("synth-%d extra=%d trial=%d", n, extra, trial),
							Run: func(_ context.Context, opt Options) (any, error) {
								return RunMultiprogrammed(
									func() apps.Instance { return apps.NewSynth(n, synthGroups(n, opt.Quick), 275) },
									0.01, opt.TrialSeed(trial),
									opt.machineMut(func(cfg *glaze.Config) { cfg.Cost.ExtraBufferCost = extra })), nil
							},
						})
					}
				}
			}
			return pts
		},
		Assemble: func(opt Options, results []any) (Result, error) {
			res := Fig10Result{Extra: fig10Extras(opt.Quick), Ns: synthNs}
			groups := groupTrials(results, opt.trials())
			g := 0
			for range res.Ns {
				var row []float64
				for range res.Extra {
					avg := averageStats(groups[g])
					g++
					if avg.Err != nil {
						res.Errs = append(res.Errs, avg.Err)
					}
					row = append(row, avg.BufferedPct)
				}
				res.Pct = append(res.Pct, row)
			}
			return res, nil
		},
	}
}

// Print renders Figure 10.
func (r Fig10Result) Print(w io.Writer) {
	var series []plot.Series
	rows := [][]string{}
	for i, n := range r.Ns {
		s := plot.Series{Name: fmt.Sprintf("synth-%d", n)}
		for j, x := range r.Extra {
			s.X = append(s.X, float64(x))
			s.Y = append(s.Y, r.Pct[i][j])
			rows = append(rows, []string{s.Name, u(x), pct(r.Pct[i][j])})
		}
		series = append(series, s)
	}
	fmt.Fprintln(w, plot.Line("Figure 10: % messages buffered vs added buffered-path cost (T_betw=275, 1% skew)",
		"added insert cost (cycles)", "% buffered", series, 60, 16))
	fmt.Fprintln(w, plot.Table([]string{"app", "extra cost", "%buffered"}, rows))
	fmt.Fprintln(w, "paper: synth-10 stays small; larger N climbs once the buffered path")
	fmt.Fprintln(w, "cannot keep up with the send rate")
	for _, err := range r.Errs {
		fmt.Fprintf(w, "CHECK FAILED: %v\n", err)
	}
}

func errStr(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
