package sim

import "fmt"

// Proc is a simulated coroutine: a goroutine that runs only while it holds
// the engine baton. Procs yield the baton by parking (Park, Sleep) and are
// handed it back by events scheduled through the engine. Exactly one proc or
// the engine loop executes at any moment, so proc code needs no locking.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked chan struct{}
	done   bool
	wake   *Event // pending wake event, if any (Sleep/WakeAfter bookkeeping)

	// Tag is free for higher layers (e.g. the CPU scheduler) to attach
	// identity to a proc; the engine never touches it.
	Tag any
}

// Spawn creates a proc running fn and schedules its first dispatch at the
// current time. fn runs in proc context: it may Park, Sleep, schedule events
// and wake other procs, and it holds the baton until it yields or returns.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	e.live++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		e.live--
		p.parked <- struct{}{}
	}()
	p.wake = e.Schedule(0, func() { e.dispatch(p) })
	return p
}

// dispatch hands the baton to p and blocks (in engine context) until p parks
// or finishes. It must only be called from engine context.
func (e *Engine) dispatch(p *Proc) {
	if e.current != nil {
		panic(fmt.Sprintf("sim: dispatch(%s) while %s holds the baton", p.name, e.current.name))
	}
	if p.done {
		panic(fmt.Sprintf("sim: dispatch of finished proc %s", p.name))
	}
	p.wake = nil
	e.current = p
	p.resume <- struct{}{}
	<-p.parked
	e.current = nil
}

// park yields the baton back to whatever dispatched this proc and blocks
// until the next dispatch.
func (p *Proc) park() {
	if p.eng.current != p {
		panic(fmt.Sprintf("sim: %s parking without the baton", p.name))
	}
	p.eng.current = nil
	p.parked <- struct{}{}
	<-p.resume
	p.eng.current = p
}

// Park blocks the proc until some event wakes it via Engine.Wake or
// Engine.WakeAfter. The caller must have arranged for such a wake, or the
// proc will sleep forever (and LiveProcs will expose the leak).
func (p *Proc) Park() { p.park() }

// Sleep blocks the proc for exactly n cycles. A Sleep cannot be interrupted;
// preemptible waiting is built by higher layers from WakeAfter + CancelWake.
func (p *Proc) Sleep(n uint64) {
	p.eng.WakeAfter(p, n)
	p.park()
}

// Yield parks the proc and schedules it to resume at the current time, after
// any events already queued for this instant. It models giving way without
// consuming simulated time.
func (p *Proc) Yield() {
	p.eng.WakeAfter(p, 0)
	p.park()
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Done reports whether the proc's function has returned.
func (p *Proc) Done() bool { return p.done }

// Now is a convenience for p.Engine().Now().
func (p *Proc) Now() uint64 { return p.eng.now }

// Wake schedules p to be dispatched at the current simulation time. It is
// the only way code outside a proc hands it the baton. Waking a proc that
// already has a pending wake is a bug in the caller and panics, because a
// double dispatch would corrupt the baton protocol.
func (e *Engine) Wake(p *Proc) *Event {
	return e.WakeAfter(p, 0)
}

// WakeAfter schedules p to be dispatched after delay cycles and returns the
// event so the caller may cancel it (the basis of preemptible sleeps).
func (e *Engine) WakeAfter(p *Proc, delay uint64) *Event {
	if p.wake != nil && p.wake.Pending() {
		panic(fmt.Sprintf("sim: proc %s woken twice", p.name))
	}
	ev := e.Schedule(delay, func() { e.dispatch(p) })
	p.wake = ev
	return ev
}

// CancelWake cancels p's pending wake, if any, and reports whether a pending
// wake existed. After a successful CancelWake the caller owns the
// responsibility of waking p again.
func (e *Engine) CancelWake(p *Proc) bool {
	if p.wake != nil && p.wake.Pending() {
		e.Cancel(p.wake)
		p.wake = nil
		return true
	}
	return false
}

// HasPendingWake reports whether p has a wake event queued.
func (p *Proc) HasPendingWake() bool { return p.wake != nil && p.wake.Pending() }
