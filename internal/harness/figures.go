package harness

import (
	"fmt"
	"io"

	"fugu/internal/apps"
	"fugu/internal/glaze"
	"fugu/internal/plot"
)

// Fig78Result holds the shared sweep behind Figures 7 and 8: every
// application multiprogrammed against null across scheduler skews.
type Fig78Result struct {
	Skews []float64
	// Runs[app][skewIndex]
	Runs map[string][]RunStats
	Apps []string
}

// Fig7Skews returns the schedule-quality sweep (fraction of the quantum by
// which node clocks are skewed).
func Fig7Skews(quick bool) []float64 {
	if quick {
		return []float64{0, 0.01, 0.04, 0.08}
	}
	return []float64{0, 0.005, 0.01, 0.02, 0.04, 0.08}
}

// Fig7and8 runs the sweep. Figure 7 reads the buffered fraction, Figure 8
// the runtime relative to zero skew; both also expose the max physical
// buffer pages per node (the paper's "less than seven pages" observation).
func Fig7and8(opt Options) Fig78Result {
	res := Fig78Result{Skews: Fig7Skews(opt.Quick), Runs: map[string][]RunStats{}}
	for _, mk := range AppMakers(opt.Quick) {
		name := mk().Name()
		res.Apps = append(res.Apps, name)
		for _, skew := range res.Skews {
			runs := make([]RunStats, 0, opt.Trials)
			for trial := 0; trial < max(1, opt.Trials); trial++ {
				runs = append(runs, RunMultiprogrammedQ(mk, skew, opt.Seed+uint64(trial), opt.QuantumFor(), nil))
			}
			res.Runs[name] = append(res.Runs[name], averageStats(runs))
		}
	}
	return res
}

// Print7 renders Figure 7: percentage of messages traversing the buffered
// path versus decreasing schedule quality.
func (r Fig78Result) Print7(w io.Writer) {
	var series []plot.Series
	rows := make([][]string, 0)
	for _, app := range r.Apps {
		s := plot.Series{Name: app}
		for i, skew := range r.Skews {
			run := r.Runs[app][i]
			s.X = append(s.X, skew*100)
			s.Y = append(s.Y, run.BufferedPct)
			rows = append(rows, []string{app, fmt.Sprintf("%.1f%%", skew*100),
				pct(run.BufferedPct), u(run.Buffered), u(run.Msgs),
				fmt.Sprintf("%d", run.MaxBufferPages), errStr(run.Err)})
		}
		series = append(series, s)
	}
	fmt.Fprintln(w, plot.Line("Figure 7: % messages buffered vs scheduler skew",
		"skew (% of quantum)", "% buffered", series, 60, 16))
	fmt.Fprintln(w, plot.Table(
		[]string{"app", "skew", "%buffered", "buffered", "msgs", "maxpages/node", "check"}, rows))
	fmt.Fprintln(w, "paper: synchronizing apps flat, enum linear in skew; all < 7 pages/node")
}

// Print8 renders Figure 8: runtime normalized to the zero-skew run.
func (r Fig78Result) Print8(w io.Writer) {
	var series []plot.Series
	rows := make([][]string, 0)
	for _, app := range r.Apps {
		base := float64(r.Runs[app][0].Runtime)
		s := plot.Series{Name: app}
		for i, skew := range r.Skews {
			rel := float64(r.Runs[app][i].Runtime) / base
			s.X = append(s.X, skew*100)
			s.Y = append(s.Y, rel)
			rows = append(rows, []string{app, fmt.Sprintf("%.1f%%", skew*100),
				fmt.Sprintf("%.3f", rel), mcyc(r.Runs[app][i].Runtime)})
		}
		series = append(series, s)
	}
	fmt.Fprintln(w, plot.Line("Figure 8: relative runtime vs scheduler skew",
		"skew (% of quantum)", "runtime / zero-skew runtime", series, 60, 16))
	fmt.Fprintln(w, plot.Table([]string{"app", "skew", "relative", "runtime"}, rows))
	fmt.Fprintln(w, "paper: barrier most sensitive (~1/(1-skew)), enum least; others intermediate")
}

// Fig9Result sweeps the send interval for synth-N (Figure 9).
type Fig9Result struct {
	TBetws []uint64
	Ns     []int
	// Pct[nIndex][tbetwIndex] = % buffered on the consumer side.
	Pct  [][]float64
	Errs []error
}

// Fig9 reproduces: % messages buffered vs send interval, synth-N at 1%
// scheduler skew, T_hand fixed (~290 cycles with overheads).
func Fig9(opt Options) Fig9Result {
	res := Fig9Result{
		TBetws: []uint64{100, 150, 200, 275, 400, 600, 900, 1300},
		Ns:     []int{10, 100, 1000},
	}
	if opt.Quick {
		res.TBetws = []uint64{100, 150, 275, 600}
	}
	groupsFor := func(n int) int {
		total := 12000 // requests per node across the run
		if opt.Quick {
			total = 4000
		}
		g := total / n
		if g < 1 {
			g = 1
		}
		return g
	}
	for _, n := range res.Ns {
		var row []float64
		for _, tb := range res.TBetws {
			n, tb := n, tb
			runs := make([]RunStats, 0, opt.Trials)
			for trial := 0; trial < max(1, opt.Trials); trial++ {
				runs = append(runs, RunMultiprogrammedQ(
					func() apps.Instance { return apps.NewSynth(n, groupsFor(n), tb) },
					0.01, opt.Seed+uint64(trial), Quantum, nil))
			}
			avg := averageStats(runs)
			if avg.Err != nil {
				res.Errs = append(res.Errs, avg.Err)
			}
			row = append(row, avg.BufferedPct)
		}
		res.Pct = append(res.Pct, row)
	}
	return res
}

// Print renders Figure 9.
func (r Fig9Result) Print(w io.Writer) {
	var series []plot.Series
	rows := [][]string{}
	for i, n := range r.Ns {
		s := plot.Series{Name: fmt.Sprintf("synth-%d", n)}
		for j, tb := range r.TBetws {
			s.X = append(s.X, float64(tb))
			s.Y = append(s.Y, r.Pct[i][j])
			rows = append(rows, []string{s.Name, u(tb), pct(r.Pct[i][j])})
		}
		series = append(series, s)
	}
	fmt.Fprintln(w, plot.Line("Figure 9: % messages buffered vs send interval (1% skew)",
		"T_betw (cycles)", "% buffered", series, 60, 16))
	fmt.Fprintln(w, plot.Table([]string{"app", "T_betw", "%buffered"}, rows))
	fmt.Fprintln(w, "paper: small once T_betw > T_hand + buffering overhead; smaller N buffers less")
	for _, err := range r.Errs {
		fmt.Fprintf(w, "CHECK FAILED: %v\n", err)
	}
}

// Fig10Result sweeps the buffered-path cost (Figure 10).
type Fig10Result struct {
	Extra []uint64
	Ns    []int
	Pct   [][]float64
	Errs  []error
}

// Fig10 reproduces: % messages buffered vs artificial additions to the
// buffer-insert handler cost, at T_betw = 275 cycles and 1% skew.
func Fig10(opt Options) Fig10Result {
	res := Fig10Result{
		Extra: []uint64{0, 100, 200, 400, 800, 1600},
		Ns:    []int{10, 100, 1000},
	}
	if opt.Quick {
		res.Extra = []uint64{0, 200, 800}
	}
	groupsFor := func(n int) int {
		total := 12000
		if opt.Quick {
			total = 4000
		}
		g := total / n
		if g < 1 {
			g = 1
		}
		return g
	}
	for _, n := range res.Ns {
		var row []float64
		for _, extra := range res.Extra {
			n, extra := n, extra
			runs := make([]RunStats, 0, opt.Trials)
			for trial := 0; trial < max(1, opt.Trials); trial++ {
				runs = append(runs, RunMultiprogrammed(
					func() apps.Instance { return apps.NewSynth(n, groupsFor(n), 275) },
					0.01, opt.Seed+uint64(trial),
					func(cfg *glaze.Config) { cfg.Cost.ExtraBufferCost = extra }))
			}
			avg := averageStats(runs)
			if avg.Err != nil {
				res.Errs = append(res.Errs, avg.Err)
			}
			row = append(row, avg.BufferedPct)
		}
		res.Pct = append(res.Pct, row)
	}
	return res
}

// Print renders Figure 10.
func (r Fig10Result) Print(w io.Writer) {
	var series []plot.Series
	rows := [][]string{}
	for i, n := range r.Ns {
		s := plot.Series{Name: fmt.Sprintf("synth-%d", n)}
		for j, x := range r.Extra {
			s.X = append(s.X, float64(x))
			s.Y = append(s.Y, r.Pct[i][j])
			rows = append(rows, []string{s.Name, u(x), pct(r.Pct[i][j])})
		}
		series = append(series, s)
	}
	fmt.Fprintln(w, plot.Line("Figure 10: % messages buffered vs added buffered-path cost (T_betw=275, 1% skew)",
		"added insert cost (cycles)", "% buffered", series, 60, 16))
	fmt.Fprintln(w, plot.Table([]string{"app", "extra cost", "%buffered"}, rows))
	fmt.Fprintln(w, "paper: synth-10 stays small; larger N climbs once the buffered path")
	fmt.Fprintln(w, "cannot keep up with the send rate")
	for _, err := range r.Errs {
		fmt.Fprintf(w, "CHECK FAILED: %v\n", err)
	}
}

func errStr(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
