package delivery_test

import (
	"testing"

	"fugu/internal/cpu"
	"fugu/internal/delivery"
	"fugu/internal/glaze"
	"fugu/internal/spans"
	"fugu/internal/udm"
)

// Machine-level conformance: every registered policy must carry a real
// multiprogrammed workload end to end under the same delivery invariants the
// crucible enforces — exactly-once, per-node conservation, drain-back to an
// empty store, and span/metrics reconciliation. The workload deliberately
// skews a second job's quantum so receivers are descheduled mid-flood: the
// two-case policies divert into their stores, the bypass ring absorbs the
// backlog (and NACKs when full), and all of them must hand every message to
// its handler exactly once.

const (
	confHandler = 5
	confNodes   = 4
	confSends   = 120
)

// runConformanceWorkload executes the skewed all-to-all under pol and
// returns the machine, job, per-message delivery counts and span recorder.
func runConformanceWorkload(t *testing.T, pol delivery.Policy) (*glaze.Machine, *glaze.Job, []uint32, *spans.Recorder) {
	t.Helper()
	cfg := glaze.NewConfig(glaze.WithMesh(confNodes, 1), glaze.WithDeliveryPolicy(pol))
	cfg.Seed = 11
	rec := spans.NewRecorder(nil)
	cfg.Spans = rec
	m := glaze.NewMachine(cfg)
	job := m.NewJob("conf")
	null := m.NewJob("null")

	expected := make([]uint64, confNodes)
	for src := 0; src < confNodes; src++ {
		for i := 0; i < confSends; i++ {
			expected[(src+1+i%(confNodes-1))%confNodes]++
		}
	}
	seen := make([]uint32, confNodes*confSends)
	recv := make([]*udm.Counter, confNodes)
	eps := make([]*udm.EP, confNodes)
	for n := 0; n < confNodes; n++ {
		recv[n] = udm.NewCounter()
		eps[n] = udm.Attach(job.Process(n))
		udm.Attach(null.Process(n))
		c := recv[n]
		eps[n].On(confHandler, func(e *udm.Env, msg *udm.Msg) {
			seen[msg.Args[0]*confSends+msg.Args[1]]++
			e.Spend(25)
			c.Add(1)
		})
	}
	for n := 0; n < confNodes; n++ {
		n := n
		job.Process(n).StartMain(func(tk *cpu.Task) {
			e := eps[n].Env(tk)
			for i := 0; i < confSends; i++ {
				dst := (n + 1 + i%(confNodes-1)) % confNodes
				e.Inject(dst, confHandler, uint64(n), uint64(i))
				e.Spend(uint64(80 + (i*11+n*7)%160))
			}
			recv[n].WaitFor(tk, expected[n])
		})
	}
	// The skewed second job deschedules receivers for parts of every
	// quantum, forcing traffic off the pure fast path.
	m.NewGang(40_000, 0.6, job, null).Start()
	m.RunUntilDone(500_000_000, job)
	if !job.Done() {
		t.Fatalf("%s: workload did not complete", pol.Name())
	}
	m.Eng.RunUntil(m.Eng.Now() + 30_000)
	return m, job, seen, rec
}

func TestMachineConformance(t *testing.T) {
	for _, name := range delivery.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := delivery.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			m, job, seen, rec := runConformanceWorkload(t, pol)

			// Exactly-once: every tagged message handled once, never twice.
			for slot, c := range seen {
				if c != 1 {
					t.Errorf("message (src=%d,i=%d) delivered %d times",
						slot/confSends, slot%confSends, c)
				}
			}

			// Drain-back: with traffic over, no process may be stuck in
			// buffered mode, hold store backlog, or have NI input queued.
			for n, p := range job.Procs() {
				if p.Buffered() {
					t.Errorf("node %d still buffered after the run", n)
				}
				if pend := p.Store().Pending(); pend > 0 {
					t.Errorf("node %d store holds %d message(s)", n, pend)
				}
				if q := p.NI().QueueLen(); q > 0 {
					t.Errorf("node %d NI input queue holds %d message(s)", n, q)
				}
			}

			// Per-node conservation, policy-agnostic: every arrival is user
			// disposed, kernel disposed or hardware demuxed; every kernel
			// dispose is an insert, a kernel message or a stray.
			for _, node := range m.Nodes {
				ns := node.Metrics.Snapshot()
				arrived := ns.Counters["nic.arrived"]
				disposed := ns.Counters["nic.disposed"]
				kdisposed := ns.Counters["nic.kdisposed"]
				demuxed := ns.Counters["nic.demuxed"]
				if arrived != disposed+kdisposed+demuxed {
					t.Errorf("node %d: arrived %d != disposed %d + kdisposed %d + demuxed %d",
						node.Index, arrived, disposed, kdisposed, demuxed)
				}
				inserts := ns.Counters["glaze.buffer.inserts"]
				kmsgs := ns.Counters["glaze.kernel_msgs"]
				stray := ns.Counters["glaze.stray_messages"]
				if kdisposed != inserts+kmsgs+stray {
					t.Errorf("node %d: kdisposed %d != inserts %d + kernel %d + stray %d",
						node.Index, kdisposed, inserts, kmsgs, stray)
				}
				if stray > 0 {
					t.Errorf("node %d dropped %d stray message(s)", node.Index, stray)
				}
				if pol.HardwareDemux() && inserts > 0 {
					t.Errorf("node %d: hardware-demux policy took %d software inserts", node.Index, inserts)
				}
				if !pol.HardwareDemux() && demuxed > 0 {
					t.Errorf("node %d: software policy reports %d hardware demuxes", node.Index, demuxed)
				}
			}

			// Span/metrics reconciliation: all spans terminal and the
			// fast/buffered tallies agree with the delivery counters.
			snap := m.MetricsSnapshot()
			for _, p := range rec.Check(
				snap.Counters["glaze.deliver.fast"], snap.Counters["glaze.deliver.buffered"]) {
				t.Errorf("span reconciliation: %s", p)
			}

			// Latency anatomy: under every policy the per-stage dwells of
			// terminal spans conserve end-to-end latency exactly, and the
			// anatomy is keyed by this policy's name.
			var dwellSum uint64
			for _, d := range rec.StageDwellTotals() {
				dwellSum += d
			}
			if dwellSum != rec.LatencyTotal() {
				t.Errorf("%s: stage dwells sum to %d cycles, latencies to %d", name, dwellSum, rec.LatencyTotal())
			}
			if rec.Terminated() == 0 {
				t.Errorf("%s: anatomy observed no terminal spans", name)
			}
			for _, row := range rec.Anatomy() {
				if row.Policy != name {
					t.Errorf("anatomy row keyed by policy %q, want %q", row.Policy, name)
				}
			}

			// The skew must actually have engaged the second case somewhere,
			// or this test proves nothing: kernel-buffered policies show
			// buffered deliveries, the bypass ring shows hardware demuxes.
			if pol.KernelBuffered() {
				if snap.Counters["glaze.deliver.buffered"] == 0 {
					t.Errorf("%s: workload never left the fast path; raise the skew", name)
				}
			} else if snap.Counters["nic.demuxed"] == 0 {
				t.Errorf("%s: NI never demuxed into the ring", name)
			}
		})
	}
}

// TestMachineConformanceDeterminism pins that each policy's run is a pure
// function of the seed: the conformance workload repeated must agree on
// every delivery counter.
func TestMachineConformanceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat runs")
	}
	for _, name := range delivery.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, _ := delivery.ByName(name)
			m1, _, _, _ := runConformanceWorkload(t, pol)
			pol2, _ := delivery.ByName(name)
			m2, _, _, _ := runConformanceWorkload(t, pol2)
			s1, s2 := m1.MetricsSnapshot(), m2.MetricsSnapshot()
			for _, k := range []string{
				"glaze.deliver.fast", "glaze.deliver.buffered",
				"nic.arrived", "nic.demuxed", "nic.nacked",
			} {
				if s1.Counters[k] != s2.Counters[k] {
					t.Errorf("%s: %s = %d vs %d across identical runs",
						name, k, s1.Counters[k], s2.Counters[k])
				}
			}
			if m1.Eng.Now() != m2.Eng.Now() {
				t.Errorf("%s: cycles %d vs %d", name, m1.Eng.Now(), m2.Eng.Now())
			}
		})
	}
}
