// Package harness regenerates every data-bearing table and figure of the
// paper's evaluation: Table 4 (fast-path cycle counts), Table 5 (buffered-
// path costs), Table 6 (application characteristics), Figure 7 (buffered
// fraction vs schedule quality), Figure 8 (relative runtime vs schedule
// quality), Figure 9 (buffered fraction vs send interval) and Figure 10
// (buffered fraction vs buffered-path cost).
//
// Experiments are registered by name (Lookup, Names, Experiments) and
// enumerate their sweeps as independent Points; a Runner fans points and
// trials out across a worker pool with deterministic, index-keyed result
// assembly, so parallel runs are bit-identical to serial ones. Every
// experiment returns a structured Result (and an error) — rendering the
// paper-style tables and ASCII figures is cmd/fugusim's job. EXPERIMENTS.md
// records the paper-vs-measured comparison produced by `fugusim run all`.
package harness

import (
	"fmt"

	"fugu/internal/apps"
	"fugu/internal/glaze"
	"fugu/internal/metrics"
	"fugu/internal/telemetry"
)

// machineConfig builds the standard 8-node experiment machine.
// Applications ship bulk data; FUGU used a DMA engine for messages longer
// than the 16-word descriptor, which we model with a larger descriptor
// (see DESIGN.md).
func machineConfig(seed uint64) glaze.Config {
	return glaze.NewConfig(glaze.WithMachineSeed(seed), glaze.WithOutputWords(64))
}

// AppMakers returns constructors for the five Table 6 applications at the
// chosen scale.
func AppMakers(quick bool) []func() apps.Instance {
	if quick {
		return []func() apps.Instance{
			func() apps.Instance { return apps.NewBarnes(256, 2) },
			func() apps.Instance { return apps.NewWater(192, 3) },
			func() apps.Instance { return apps.NewLU(120, 10) },
			func() apps.Instance { return apps.NewBarrierApp(2000) },
			func() apps.Instance { return apps.NewEnum(5) },
		}
	}
	return []func() apps.Instance{
		func() apps.Instance { return apps.NewBarnes(2048, 3) },
		func() apps.Instance { return apps.NewWater(512, 3) },
		func() apps.Instance { return apps.NewLU(250, 10) },
		func() apps.Instance { return apps.NewBarrierApp(10000) },
		// The paper runs the triangle puzzle at 6 pegs/side; that game
		// tree is out of reach for an exhaustively verified run, so we
		// enumerate 5 pegs/side (see DESIGN.md deviations).
		func() apps.Instance { return apps.NewEnum(5) },
	}
}

// RunStats summarizes one application run.
type RunStats struct {
	App            string
	Model          string
	Skew           float64
	Runtime        uint64 // completion time in cycles
	Msgs           uint64
	Fast, Buffered uint64
	BufferedPct    float64
	MaxBufferPages int
	TBetw, THand   float64
	Err            error
	// Metrics is the machine-wide registry snapshot taken at completion
	// (per-node registries merged). Trials merge rather than average — see
	// averageStats.
	Metrics metrics.Snapshot
	// Timeline is the run's flight-recorder timeline, empty unless
	// telemetry sampling was enabled on the machine. Trials concatenate as
	// distinct epochs — see averageStats.
	Timeline telemetry.Timeline
}

// MetricsSnapshot exposes the run's merged registry snapshot; RunStats
// satisfies the Runner's MetricsCarrier, so sweeps built from application
// runs feed the per-point metrics hook with no extra plumbing.
func (r RunStats) MetricsSnapshot() metrics.Snapshot { return r.Metrics }

// TimelineData exposes the run's timeline; RunStats satisfies the Runner's
// TimelineCarrier, so sweeps built from application runs feed the
// per-point timeline hook with no extra plumbing.
func (r RunStats) TimelineData() telemetry.Timeline { return r.Timeline }

// RunStandalone executes an instance alone on eight nodes (Table 6 rows).
func RunStandalone(make func() apps.Instance, seed uint64) RunStats {
	return RunStandaloneMut(make, seed, nil)
}

// RunStandaloneMut is RunStandalone with a config mutator (trace installs,
// cost-model tweaks).
func RunStandaloneMut(make func() apps.Instance, seed uint64, mut func(*glaze.Config)) RunStats {
	inst := make()
	cfg := machineConfig(seed)
	if mut != nil {
		mut(&cfg)
	}
	m := glaze.NewMachine(cfg)
	job := m.NewJob(inst.Name())
	instrument(m, job, inst)
	m.NewGang(1<<40, 0, job).Start()
	start := m.Eng.Now()
	m.RunUntilDone(0, job)
	return collect(inst, job, m, 0, job.DoneAt()-start)
}

// RunMultiprogrammed executes an instance against a null application under
// a gang schedule with the given clock skew (Figures 7-10).
func RunMultiprogrammed(make func() apps.Instance, skew float64, seed uint64, mut func(*glaze.Config)) RunStats {
	return RunMultiprogrammedQ(make, skew, seed, Quantum, mut)
}

// RunMultiprogrammedQ is RunMultiprogrammed with an explicit quantum.
func RunMultiprogrammedQ(make func() apps.Instance, skew float64, seed uint64, quantum uint64, mut func(*glaze.Config)) RunStats {
	inst := make()
	cfg := machineConfig(seed)
	if mut != nil {
		mut(&cfg)
	}
	m := glaze.NewMachine(cfg)
	job := m.NewJob(inst.Name())
	null := m.NewJob("null")
	instrument(m, job, inst)
	apps.Null{}.Start(m, null)
	m.NewGang(quantum, skew, job, null).Start()
	m.RunUntilDone(0, job)
	return collect(inst, job, m, skew, job.DoneAt())
}

// instrument starts the instance and keeps the rig for characterization.
// The rig must be built by the instance itself; we recover per-EP stats
// through the job's processes instead, so instances stay self-contained.
func instrument(m *glaze.Machine, job *glaze.Job, inst apps.Instance) *glaze.Job {
	inst.Start(m, job)
	return job
}

// collect assembles RunStats after completion. FinishTelemetry runs first
// so the timeline's closing interval and Totals agree exactly with the
// Metrics snapshot (the engine is stopped; both read the same state).
func collect(inst apps.Instance, job *glaze.Job, m *glaze.Machine, skew float64, runtime uint64) RunStats {
	tl := m.FinishTelemetry()
	d := job.Delivery()
	rs := RunStats{
		App:            inst.Name(),
		Model:          inst.Model(),
		Skew:           skew,
		Runtime:        runtime,
		Fast:           d.Fast,
		Buffered:       d.Buffered,
		BufferedPct:    d.BufferedPct(),
		MaxBufferPages: job.MaxBufferPages(),
		Err:            inst.Check(),
		Metrics:        m.MetricsSnapshot(),
		Timeline:       tl,
	}
	rs.Msgs = d.Total()
	if rs.Msgs > 0 {
		rs.TBetw = float64(runtime) * float64(len(job.Procs())) / float64(rs.Msgs)
	}
	rs.THand = handlerMean(job)
	return rs
}

// handlerMean reads the per-endpoint handler occupancy the application rig
// registered on the job; it covers polled deliveries too, unlike the
// upcall-task accounting it falls back to.
func handlerMean(job *glaze.Job) float64 {
	if rig, ok := job.Tag.(*apps.Rig); ok {
		return rig.HandlerMean()
	}
	var cycles, msgs uint64
	for _, p := range job.Procs() {
		cycles += p.UpcallConsumed()
		msgs += p.Deliv.Fast + p.Deliv.Buffered
	}
	if msgs == 0 {
		return 0
	}
	return float64(cycles) / float64(msgs)
}

// averageStats averages runs (trials) of the same configuration. Registry
// snapshots are merged, not averaged: counts sum across trials (exact and
// deterministic, unlike a truncating division), so merged metrics from a
// parallel sweep are bit-identical to a serial one.
func averageStats(runs []RunStats) RunStats {
	if len(runs) == 1 {
		return runs[0]
	}
	avg := runs[0]
	snaps := make([]metrics.Snapshot, len(runs))
	tls := make([]telemetry.Timeline, len(runs))
	for i, r := range runs {
		snaps[i] = r.Metrics
		tls[i] = r.Timeline
	}
	avg.Metrics = metrics.Merge(snaps...)
	// Timelines concatenate (trials become distinct epochs) rather than
	// average: per-interval deltas from different trials are incomparable,
	// and concatenation preserves the deltas-sum-to-totals invariant.
	avg.Timeline = telemetry.Concat(tls...)
	var rt, msgs, fast, buf float64
	var pages int
	var pct, tb, th float64
	for _, r := range runs {
		rt += float64(r.Runtime)
		msgs += float64(r.Msgs)
		fast += float64(r.Fast)
		buf += float64(r.Buffered)
		pct += r.BufferedPct
		tb += r.TBetw
		th += r.THand
		if r.MaxBufferPages > pages {
			pages = r.MaxBufferPages
		}
		if r.Err != nil {
			avg.Err = r.Err
		}
	}
	n := float64(len(runs))
	avg.Runtime = uint64(rt / n)
	avg.Msgs = uint64(msgs / n)
	avg.Fast = uint64(fast / n)
	avg.Buffered = uint64(buf / n)
	avg.BufferedPct = pct / n
	avg.TBetw = tb / n
	avg.THand = th / n
	avg.MaxBufferPages = pages
	return avg
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func u(v uint64) string    { return fmt.Sprintf("%d", v) }
func mcyc(v uint64) string { return fmt.Sprintf("%.1fM", float64(v)/1e6) }
