package harness

import (
	"strings"
	"testing"

	"fugu/internal/apps"
	"fugu/internal/glaze"
)

func TestTable4ExactTotals(t *testing.T) {
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	want := [3]uint64{54, 87, 115}
	if r.MeasuredIntr != want {
		t.Errorf("measured interrupt totals = %v, want %v", r.MeasuredIntr, want)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "interrupt total:") {
		t.Error("print missing totals row")
	}
}

func TestTable5Measurements(t *testing.T) {
	r, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if r.Inserts < 1000 {
		t.Errorf("only %d inserts: microbenchmark did not engage buffering", r.Inserts)
	}
	if r.VMAllocs == 0 {
		t.Error("no demand page allocations observed")
	}
	// The measured insert mean sits at or just above the configured
	// minimum (page crossings add the vmalloc cost occasionally).
	if r.MeasuredInsertMean < float64(r.InsertMin) || r.MeasuredInsertMean > float64(r.InsertMin)*1.5 {
		t.Errorf("insert mean %.1f implausible vs configured %d", r.MeasuredInsertMean, r.InsertMin)
	}
	if r.MeasuredExtractMean < float64(r.Extract) {
		t.Errorf("extract mean %.1f below configured %d", r.MeasuredExtractMean, r.Extract)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "232") {
		t.Error("print missing the 232-cycle total")
	}
}

func TestRunStandaloneChecksPass(t *testing.T) {
	rs := RunStandalone(func() apps.Instance { return apps.NewBarrierApp(100) }, 1)
	if rs.Err != nil {
		t.Fatal(rs.Err)
	}
	if rs.Msgs != 100*24+2 && rs.Msgs != 100*24 {
		t.Errorf("msgs = %d, want ~2400", rs.Msgs)
	}
	if rs.Buffered != 0 {
		t.Errorf("standalone run buffered %d messages", rs.Buffered)
	}
	if rs.THand <= 0 {
		t.Error("T_hand not measured")
	}
}

func TestRunMultiprogrammedIsDeterministic(t *testing.T) {
	mk := func() apps.Instance { return apps.NewBarrierApp(200) }
	a := RunMultiprogrammedQ(mk, 0.03, 7, 50_000, nil)
	b := RunMultiprogrammedQ(mk, 0.03, 7, 50_000, nil)
	if a.Runtime != b.Runtime || a.Buffered != b.Buffered || a.Fast != b.Fast {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	c := RunMultiprogrammedQ(mk, 0.03, 8, 50_000, nil)
	_ = c // different seed may legitimately differ; just must not crash
}

func TestZeroSkewMultiprogIsTwiceStandalone(t *testing.T) {
	// The paper: the zero-skew multiprogrammed runtime is within 1% of 2x
	// the standalone runtime. Our barrier satisfies it once the workload
	// spans several quanta.
	mk := func() apps.Instance { return apps.NewBarrierApp(2000) }
	solo := RunStandalone(mk, 1)
	multi := RunMultiprogrammedQ(mk, 0, 1, 50_000, nil)
	ratio := float64(multi.Runtime) / float64(2*solo.Runtime)
	if ratio < 0.97 || ratio > 1.06 {
		t.Errorf("multi/2*solo = %.3f, want ~1.0 (solo %d, multi %d)",
			ratio, solo.Runtime, multi.Runtime)
	}
}

func TestQuantumForScales(t *testing.T) {
	if NewOptions().QuantumFor() != Quantum {
		t.Error("full options quantum != paper's 500k")
	}
	if NewOptions(WithQuick(), WithTrials(1)).QuantumFor() >= Quantum {
		t.Error("quick quantum not scaled down")
	}
}

func TestAverageStats(t *testing.T) {
	runs := []RunStats{
		{Runtime: 100, Msgs: 10, Fast: 8, Buffered: 2, BufferedPct: 20, MaxBufferPages: 1},
		{Runtime: 200, Msgs: 20, Fast: 18, Buffered: 2, BufferedPct: 10, MaxBufferPages: 3},
	}
	avg := averageStats(runs)
	if avg.Runtime != 150 || avg.Msgs != 15 {
		t.Errorf("avg = %+v", avg)
	}
	if avg.BufferedPct != 15 {
		t.Errorf("avg pct = %v", avg.BufferedPct)
	}
	if avg.MaxBufferPages != 3 {
		t.Errorf("pages should take the max, got %d", avg.MaxBufferPages)
	}
}

func TestFig9ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r, err := Fig9(WithQuick(), WithTrials(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Errs) > 0 {
		t.Fatalf("checks failed: %v", r.Errs)
	}
	last := len(r.TBetws) - 1
	// synth-1000 buffers more at the lowest interval than the highest.
	if r.Pct[2][0] <= r.Pct[2][last] {
		t.Errorf("synth-1000: %.2f%% at tb=%d vs %.2f%% at tb=%d",
			r.Pct[2][0], r.TBetws[0], r.Pct[2][last], r.TBetws[last])
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "synth-1000") {
		t.Error("print missing series")
	}
}

func TestFig10ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r, err := Fig10(WithQuick(), WithTrials(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Errs) > 0 {
		t.Fatalf("checks failed: %v", r.Errs)
	}
	last := len(r.Extra) - 1
	if r.Pct[2][last] <= r.Pct[2][0] {
		t.Error("synth-1000 buffering did not grow with buffered-path cost")
	}
	if r.Pct[0][last] > r.Pct[2][last] {
		t.Error("synth-10 buffered more than synth-1000 at max cost")
	}
}

func TestFig10ExtraCostIsApplied(t *testing.T) {
	// Sanity for the knob itself: the same run with a huge extra insert
	// cost must spend more kernel cycles.
	mk := func() apps.Instance { return apps.NewSynth(100, 5, 200) }
	base := RunMultiprogrammedQ(mk, 0.01, 1, Quantum, nil)
	slow := RunMultiprogrammedQ(mk, 0.01, 1, Quantum,
		func(cfg *glaze.Config) { cfg.Cost.ExtraBufferCost = 5000 })
	if base.Err != nil || slow.Err != nil {
		t.Fatal(base.Err, slow.Err)
	}
	if slow.Runtime <= base.Runtime {
		t.Errorf("extra buffer cost did not slow the run: %d vs %d", slow.Runtime, base.Runtime)
	}
}
