package sim

import (
	"container/heap"
	"testing"
	"testing/quick"
)

// refItem / refHeap are a reference priority queue built on the standard
// library's container/heap with the same (at, seq) order, used to check the
// specialized 4-ary eventHeap pop-for-pop.
type refItem struct {
	at, seq uint64
	idx     int
}

type refHeap []*refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *refHeap) Push(x any) {
	it := x.(*refItem)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	it := old[n]
	old[n] = nil
	*h = old[:n]
	return it
}

// pair is a popped (at, seq) observation.
type pair struct{ at, seq uint64 }

// diffRig drives an eventHeap and the reference heap through the same
// operation stream, comparing every pop.
type diffRig struct {
	t    *testing.T
	ours eventHeap
	ref  refHeap
	// live events by insertion order, for deterministic cancel targeting.
	live []struct {
		ev *Event
		it *refItem
	}
	seq uint64
}

func (r *diffRig) push(at uint64) {
	ev := &Event{at: at, seq: r.seq}
	it := &refItem{at: at, seq: r.seq}
	r.seq++
	r.ours.push(ev)
	heap.Push(&r.ref, it)
	r.live = append(r.live, struct {
		ev *Event
		it *refItem
	}{ev, it})
}

func (r *diffRig) cancel(k int) {
	if len(r.live) == 0 {
		return
	}
	k %= len(r.live)
	e := r.live[k]
	r.live = append(r.live[:k], r.live[k+1:]...)
	r.ours.remove(int(e.ev.index))
	heap.Remove(&r.ref, e.it.idx)
}

// pop pops both heaps and reports whether they agreed.
func (r *diffRig) pop() bool {
	if len(r.live) == 0 {
		return true
	}
	ev := r.ours.pop()
	it := heap.Pop(&r.ref).(*refItem)
	for i, e := range r.live {
		if e.ev == ev {
			r.live = append(r.live[:i], r.live[i+1:]...)
			break
		}
	}
	if ev.at != it.at || ev.seq != it.seq {
		if r.t != nil {
			r.t.Errorf("pop mismatch: ours (at=%d seq=%d), ref (at=%d seq=%d)",
				ev.at, ev.seq, it.at, it.seq)
		}
		return false
	}
	return true
}

func (r *diffRig) drain() bool {
	for len(r.live) > 0 {
		if !r.pop() {
			return false
		}
	}
	return r.ours.len() == 0 && r.ref.Len() == 0
}

// TestHeapDifferentialRandom runs long randomized schedule/cancel/pop
// workloads from fixed seeds and requires the specialized heap to pop in
// exactly the reference (at, seq) order.
func TestHeapDifferentialRandom(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 42, 12345} {
		rng := NewRand(seed)
		r := &diffRig{t: t}
		now := uint64(0)
		for op := 0; op < 20_000; op++ {
			switch rng.Uint64n(10) {
			case 0, 1, 2, 3, 4, 5:
				// Delays cluster small so same-time ties are common and the
				// seq tiebreak actually gets exercised.
				r.push(now + rng.Uint64n(16))
			case 6, 7:
				r.cancel(int(rng.Uint64n(64)))
			default:
				if head := r.ours.peek(); head != nil {
					now = head.at
				}
				if !r.pop() {
					t.Fatalf("seed %d: diverged at op %d", seed, op)
				}
			}
		}
		if !r.drain() {
			t.Fatalf("seed %d: drain diverged or heaps out of sync", seed)
		}
	}
}

// TestHeapDifferentialQuick drives the same comparison from
// testing/quick-generated operation streams: each op pushes (with a small
// delay from its low bits), cancels, or pops.
func TestHeapDifferentialQuick(t *testing.T) {
	prop := func(ops []uint16) bool {
		r := &diffRig{}
		now := uint64(0)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				r.push(now + uint64(op>>2)%32)
			case 2:
				r.cancel(int(op >> 2))
			default:
				if head := r.ours.peek(); head != nil {
					now = head.at
				}
				if !r.pop() {
					return false
				}
			}
		}
		return r.drain()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestHeapIndexInvariant checks that every queued event's index matches its
// slot after arbitrary middle removals — the property Cancel depends on.
func TestHeapIndexInvariant(t *testing.T) {
	rng := NewRand(9)
	var h eventHeap
	var live []*Event
	for op := 0; op < 5_000; op++ {
		if rng.Uint64n(3) > 0 || len(live) == 0 {
			ev := &Event{at: rng.Uint64n(1000), seq: uint64(op)}
			h.push(ev)
			live = append(live, ev)
		} else {
			k := int(rng.Uint64n(uint64(len(live))))
			ev := live[k]
			live = append(live[:k], live[k+1:]...)
			h.remove(int(ev.index))
			if ev.index != -1 {
				t.Fatal("removed event still claims a slot")
			}
		}
		for i, ev := range h.a {
			if int(ev.index) != i {
				t.Fatalf("op %d: slot %d holds event with index %d", op, i, ev.index)
			}
		}
	}
}
