// Package stats provides the small counter types the simulator layers use to
// report the quantities the paper's evaluation measures: per-path message
// counts, buffering page high-water marks, and simple aggregates.
package stats

import "fmt"

// Delivery tallies how messages reached an application: directly from the
// network interface (the fast case) or via the software buffer (the slow
// case). This is the quantity behind Figures 7, 9 and 10.
type Delivery struct {
	Fast     uint64 // upcall or poll straight from the NI
	Buffered uint64 // inserted into and handled from the virtual buffer
}

// Total returns all delivered messages.
func (d Delivery) Total() uint64 { return d.Fast + d.Buffered }

// BufferedPct returns the percentage of messages that took the buffered
// path, 0 if none were delivered.
func (d Delivery) BufferedPct() float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(d.Buffered) / float64(t)
}

// Add accumulates another tally.
func (d *Delivery) Add(o Delivery) {
	d.Fast += o.Fast
	d.Buffered += o.Buffered
}

func (d Delivery) String() string {
	return fmt.Sprintf("fast=%d buffered=%d (%.2f%%)", d.Fast, d.Buffered, d.BufferedPct())
}

// HighWater tracks a maximum over time.
type HighWater struct {
	Cur int
	Max int
}

// Set updates the current level, advancing the maximum.
func (h *HighWater) Set(v int) {
	h.Cur = v
	if v > h.Max {
		h.Max = v
	}
}

// Add adjusts the current level by delta.
func (h *HighWater) Add(delta int) { h.Set(h.Cur + delta) }

// Mean is a streaming average.
type Mean struct {
	Sum   float64
	Count uint64
}

// Observe adds a sample.
func (m *Mean) Observe(v float64) {
	m.Sum += v
	m.Count++
}

// Value returns the mean, or 0 with no samples.
func (m *Mean) Value() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}
