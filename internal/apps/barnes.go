package apps

import (
	"math"

	"fugu/internal/cpu"
	"fugu/internal/crl"
	"fugu/internal/glaze"
)

// Barnes is the Barnes-Hut N-body benchmark on CRL (2048 bodies, 3
// iterations in the paper). Bodies are partitioned into per-node regions;
// each iteration one node gathers the bodies, builds the octree and
// publishes it through a set of shared tree regions; every node then reads
// the tree (CRL caches it; the rebuild invalidates the cached copies each
// iteration — the coherence-protocol traffic the paper describes) and
// advances its own bodies.
type Barnes struct {
	N     int // bodies
	Iters int
	Theta float64

	nodes []*crl.Node
	vel   [][3]float64
	final [][3]float64

	// Tree geometry.
	treeRegions int
	treeWords   int
}

// Octree serialization: each cell is a fixed-size record.
//
//	word 0      kind: 0 empty, 1 leaf (body), 2 internal
//	words 1-4   mass, x, y, z (float bits; centre of mass for internals)
//	words 5-12  child record indices (internal cells)
const (
	cellWords  = 13
	kindEmpty  = 0
	kindLeaf   = 1
	kindCell   = 2
	barnesDT   = 1e-3
	barnesSoft = 0.25
	// Cycle costs: per body inserted during build, per cell visited during
	// force evaluation.
	barnesInsertCost = 40
	barnesVisitCost  = 12
)

// treeRegionWords is the serialized tree's region granularity.
const treeRegionWords = 1024

// NewBarnes configures the benchmark.
func NewBarnes(n, iters int) *Barnes {
	b := &Barnes{N: n, Iters: iters, Theta: 0.6}
	// Every leaf split adds eight children, so octrees run to roughly 8-16
	// cells per body depending on clustering; budget generously and fail
	// loudly if exceeded.
	b.treeWords = 2 + 16*n*cellWords
	b.treeRegions = (b.treeWords + treeRegionWords - 1) / treeRegionWords
	return b
}

// Name implements Instance.
func (b *Barnes) Name() string { return "barnes" }

// Model implements Instance.
func (b *Barnes) Model() string { return "CRL" }

// body region ids are 0..nodes-1 (homed on their owner); tree region k has
// id nodes*(k+1) rounded to home node k%nodes... tree regions are built by
// node 0, so they are homed there: ids are multiples of the node count.
func (b *Barnes) treeRID(k int, nodes int) crl.RegionID {
	return crl.RegionID(nodes * (k + 1))
}

func barnesInitial(i int) [3]float64 {
	h := uint64(i)*0x2545f4914f6cdd1d + 99
	r := func() float64 {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		return float64(h%10000)/10000.0*16 - 8
	}
	return [3]float64{r(), r(), r()}
}

// Start implements Instance.
func (b *Barnes) Start(m *glaze.Machine, job *glaze.Job) {
	rig := NewRig(m, job)
	nn := rig.Nodes()
	if b.N%nn != 0 {
		panic("apps: barnes body count must divide node count")
	}
	per := b.N / nn
	b.nodes = make([]*crl.Node, nn)
	b.vel = make([][3]float64, b.N)
	b.final = make([][3]float64, b.N)
	for i := 0; i < nn; i++ {
		b.nodes[i] = crl.New(rig.EPs[i], nn)
	}
	for node := 0; node < nn; node++ {
		node := node
		bar := NewBarrier(rig.EPs[node], nn)
		job.Process(node).StartMain(func(t *cpu.Task) {
			b.main(t, node, nn, per, bar)
		})
	}
}

func (b *Barnes) main(t *cpu.Task, self, nn, per int, bar *Barrier) {
	c := b.nodes[self]
	own := c.Create(crl.RegionID(self), per*3)
	c.StartWrite(t, own)
	for i := 0; i < per; i++ {
		p := barnesInitial(self*per + i)
		for d := 0; d < 3; d++ {
			own.Write(i*3+d, math.Float64bits(p[d]))
		}
	}
	c.EndWrite(t, own)

	// Node 0 creates the shared tree regions.
	var tree []*crl.Region
	if self == 0 {
		for k := 0; k < b.treeRegions; k++ {
			tree = append(tree, c.Create(b.treeRID(k, nn), treeRegionWords))
		}
	}
	bar.Wait(t)
	if self != 0 {
		for k := 0; k < b.treeRegions; k++ {
			tree = append(tree, c.Map(b.treeRID(k, nn), treeRegionWords))
		}
	}
	parts := make([]*crl.Region, nn)
	for p := 0; p < nn; p++ {
		parts[p] = c.Map(crl.RegionID(p), per*3)
	}

	forces := make([][3]float64, per)
	mine := make([][3]float64, per)

	for iter := 0; iter < b.Iters; iter++ {
		// Build phase (node 0): gather bodies, build, serialize.
		if self == 0 {
			pos := make([][3]float64, b.N)
			for p := 0; p < nn; p++ {
				c.StartRead(t, parts[p])
				for j := 0; j < per; j++ {
					pos[p*per+j] = readVec(parts[p], j)
				}
				c.EndRead(t, parts[p])
			}
			cells := buildOctree(pos)
			t.Spend(uint64(b.N) * barnesInsertCost)
			words := serializeTree(cells)
			if len(words) > b.treeWords {
				panic("apps: barnes octree exceeded its region budget")
			}
			for k := range tree {
				c.StartWrite(t, tree[k])
				base := k * treeRegionWords
				for w := 0; w < treeRegionWords && base+w < len(words); w++ {
					tree[k].Write(w, words[base+w])
				}
				c.EndWrite(t, tree[k])
			}
		}
		bar.Wait(t)

		// Force phase: every node traverses the shared tree.
		c.StartRead(t, own)
		for i := range mine {
			mine[i] = readVec(own, i)
		}
		c.EndRead(t, own)
		for k := range tree {
			c.StartRead(t, tree[k])
		}
		reader := &treeReader{tree: tree}
		visits := 0
		for i := 0; i < per; i++ {
			forces[i], visits = reader.force(mine[i], b.Theta, visits)
		}
		for k := range tree {
			c.EndRead(t, tree[k])
		}
		t.Spend(uint64(visits) * barnesVisitCost)
		bar.Wait(t)

		// Update phase.
		c.StartWrite(t, own)
		for i := 0; i < per; i++ {
			gi := self*per + i
			for d := 0; d < 3; d++ {
				b.vel[gi][d] += forces[i][d] * barnesDT
				v := math.Float64frombits(own.Read(i*3+d)) + b.vel[gi][d]*barnesDT
				own.Write(i*3+d, math.Float64bits(v))
			}
		}
		c.EndWrite(t, own)
		bar.Wait(t)
	}

	c.StartRead(t, own)
	for i := 0; i < per; i++ {
		for d := 0; d < 3; d++ {
			b.final[self*per+i][d] = math.Float64frombits(own.Read(i*3 + d))
		}
	}
	c.EndRead(t, own)
}

// ---------------------------------------------------------------------------
// Octree build and traversal (pure computation; cycle costs charged above)

type cell struct {
	kind     int
	mass     float64
	pos      [3]float64 // body position or centre of mass
	children [8]int     // cell indices, internal cells only
	centre   [3]float64
	half     float64
}

// buildOctree inserts every body into an octree rooted on a cube covering
// all positions, then computes centres of mass bottom-up.
func buildOctree(pos [][3]float64) []cell {
	lo, hi := pos[0], pos[0]
	for _, p := range pos {
		for d := 0; d < 3; d++ {
			lo[d] = math.Min(lo[d], p[d])
			hi[d] = math.Max(hi[d], p[d])
		}
	}
	half := 0.0
	var centre [3]float64
	for d := 0; d < 3; d++ {
		centre[d] = (lo[d] + hi[d]) / 2
		half = math.Max(half, (hi[d]-lo[d])/2)
	}
	half += 1e-9
	cells := []cell{{kind: kindEmpty, centre: centre, half: half}}
	var insert func(ci int, p [3]float64)
	insert = func(ci int, p [3]float64) {
		c := &cells[ci]
		switch c.kind {
		case kindEmpty:
			c.kind = kindLeaf
			c.pos = p
			c.mass = 1
		case kindLeaf:
			old := c.pos
			c.kind = kindCell
			for o := 0; o < 8; o++ {
				oc := childCell(c.centre, c.half, o)
				cells = append(cells, oc)
				cells[ci].children[o] = len(cells) - 1
			}
			insert(cells[ci].children[octant(cells[ci].centre, old)], old)
			insert(cells[ci].children[octant(cells[ci].centre, p)], p)
		case kindCell:
			insert(c.children[octant(c.centre, p)], p)
		}
	}
	for _, p := range pos {
		insert(0, p)
	}
	// Centres of mass, bottom-up via recursion.
	var com func(ci int) (float64, [3]float64)
	com = func(ci int) (float64, [3]float64) {
		c := &cells[ci]
		switch c.kind {
		case kindLeaf:
			return c.mass, c.pos
		case kindCell:
			var m float64
			var s [3]float64
			for _, ch := range c.children {
				cm, cp := com(ch)
				m += cm
				for d := 0; d < 3; d++ {
					s[d] += cm * cp[d]
				}
			}
			if m > 0 {
				for d := 0; d < 3; d++ {
					s[d] /= m
				}
			}
			c.mass = m
			c.pos = s
			return m, s
		}
		return 0, c.pos
	}
	com(0)
	return cells
}

func octant(centre, p [3]float64) int {
	o := 0
	for d := 0; d < 3; d++ {
		if p[d] >= centre[d] {
			o |= 1 << d
		}
	}
	return o
}

func childCell(centre [3]float64, half float64, o int) cell {
	h := half / 2
	var c [3]float64
	for d := 0; d < 3; d++ {
		if o&(1<<d) != 0 {
			c[d] = centre[d] + h
		} else {
			c[d] = centre[d] - h
		}
	}
	return cell{kind: kindEmpty, centre: c, half: h}
}

// serializeTree flattens cells into the shared word format: a two-word
// header (cell count, root half-width) followed by fixed 13-word records.
// Cell sizes below the root are not stored; the opening criterion halves
// the width on each descent, which is exact for a regular octree.
func serializeTree(cells []cell) []uint64 {
	words := make([]uint64, 2+len(cells)*cellWords)
	words[0] = uint64(len(cells))
	words[1] = math.Float64bits(cells[0].half)
	for i, c := range cells {
		base := 2 + i*cellWords
		words[base] = uint64(c.kind)
		words[base+1] = math.Float64bits(c.mass)
		words[base+2] = math.Float64bits(c.pos[0])
		words[base+3] = math.Float64bits(c.pos[1])
		words[base+4] = math.Float64bits(c.pos[2])
		if c.kind == kindCell {
			for o := 0; o < 8; o++ {
				words[base+5+o] = uint64(c.children[o])
			}
		}
	}
	return words
}

// treeReader traverses the serialized tree through the CRL regions.
type treeReader struct {
	tree []*crl.Region
}

func (tr *treeReader) word(i int) uint64 {
	return tr.tree[i/treeRegionWords].Read(i % treeRegionWords)
}

// force computes the Barnes-Hut force on position p, counting visited
// records for cycle accounting.
func (tr *treeReader) force(p [3]float64, theta float64, visits int) ([3]float64, int) {
	rootHalf := math.Float64frombits(tr.word(1))
	var f [3]float64
	var walk func(ci int, half float64)
	walk = func(ci int, half float64) {
		visits++
		base := 2 + ci*cellWords
		kind := tr.word(base)
		if kind == kindEmpty {
			return
		}
		mass := math.Float64frombits(tr.word(base + 1))
		q := [3]float64{
			math.Float64frombits(tr.word(base + 2)),
			math.Float64frombits(tr.word(base + 3)),
			math.Float64frombits(tr.word(base + 4)),
		}
		dx, dy, dz := q[0]-p[0], q[1]-p[1], q[2]-p[2]
		r2 := dx*dx + dy*dy + dz*dz
		if kind == kindLeaf || (2*half)*(2*half) < theta*theta*r2 {
			if r2 < 1e-12 {
				return // self
			}
			r2 += barnesSoft
			inv := mass / (r2 * math.Sqrt(r2))
			f[0] += dx * inv
			f[1] += dy * inv
			f[2] += dz * inv
			return
		}
		for o := 0; o < 8; o++ {
			walk(int(tr.word(base+5+o)), half/2)
		}
	}
	walk(0, rootHalf)
	return f, visits
}

// Check implements Instance against a sequential reference with identical
// tree construction and traversal order.
func (b *Barnes) Check() error {
	ref := b.reference()
	for i := range ref {
		for d := 0; d < 3; d++ {
			if math.Abs(ref[i][d]-b.final[i][d]) > 1e-9 {
				return checkf("barnes: body %d dim %d: %g != %g",
					i, d, b.final[i][d], ref[i][d])
			}
		}
	}
	return nil
}

func (b *Barnes) reference() [][3]float64 {
	pos := make([][3]float64, b.N)
	vel := make([][3]float64, b.N)
	for i := range pos {
		pos[i] = barnesInitial(i)
	}
	for iter := 0; iter < b.Iters; iter++ {
		cells := buildOctree(pos)
		words := serializeTree(cells)
		tr := &memTreeReader{words: words}
		// Two phases, exactly like the distributed run: all forces from the
		// iteration-start snapshot, then all updates.
		forces := make([][3]float64, b.N)
		for i := range pos {
			forces[i] = tr.force(pos[i], b.Theta)
		}
		for i := range pos {
			for d := 0; d < 3; d++ {
				vel[i][d] += forces[i][d] * barnesDT
				pos[i][d] += vel[i][d] * barnesDT
			}
		}
	}
	return pos
}

// memTreeReader mirrors treeReader over a plain slice for the reference.
type memTreeReader struct{ words []uint64 }

func (tr *memTreeReader) force(p [3]float64, theta float64) [3]float64 {
	rootHalf := math.Float64frombits(tr.words[1])
	var f [3]float64
	var walk func(ci int, half float64)
	walk = func(ci int, half float64) {
		base := 2 + ci*cellWords
		kind := tr.words[base]
		if kind == kindEmpty {
			return
		}
		mass := math.Float64frombits(tr.words[base+1])
		q := [3]float64{
			math.Float64frombits(tr.words[base+2]),
			math.Float64frombits(tr.words[base+3]),
			math.Float64frombits(tr.words[base+4]),
		}
		dx, dy, dz := q[0]-p[0], q[1]-p[1], q[2]-p[2]
		r2 := dx*dx + dy*dy + dz*dz
		if kind == kindLeaf || (2*half)*(2*half) < theta*theta*r2 {
			if r2 < 1e-12 {
				return
			}
			r2 += barnesSoft
			inv := mass / (r2 * math.Sqrt(r2))
			f[0] += dx * inv
			f[1] += dy * inv
			f[2] += dz * inv
			return
		}
		for o := 0; o < 8; o++ {
			walk(int(tr.words[base+5+o]), half/2)
		}
	}
	walk(0, rootHalf)
	return f
}
