package niq

import (
	"fmt"

	"fugu/internal/mesh"
	"fugu/internal/metrics"
)

// shared is the slot-pool structure behind both multi-queue models: a fixed
// array of slots threaded by a free list, with per-source FIFO lists linked
// through it (the DAMQ organization — same SRAM as the fifo, carved
// dynamically). The two models differ only in admission:
//
//   - damq: a packet is admitted while the pool has a free slot and its
//     source list is under the policy cap R+B. Slots a source takes beyond
//     its reserve R are stolen from the common pool — nothing stops a bursty
//     source from starving a quiet one's future arrivals.
//   - reserve (guaranteed=true): a packet within its source's reserve R is
//     admitted whenever a free slot exists; beyond R it must borrow, and
//     borrowing is refused once borrowed == B. No source's user traffic can
//     ever occupy another source's guaranteed slots (the property tests pin
//     exactly this). Protected kernel traffic is exempt from both caps and
//     reserves — see Admit — so the guarantee is stated over user packets.
//
// Presentation: Head returns the oldest packet among the per-source list
// heads that satisfies the bound match predicate; with none matching (or no
// predicate bound) it returns the globally oldest. Two rules bound the
// resulting reordering: a kernel packet at the global front is never
// bypassed, and after BypassBudget consecutive bypasses of the same oldest
// packet the queue reverts to strict FIFO until that packet is popped.
// Per-source order is always preserved; cross-source reordering is exactly
// what the mesh already permits.
type shared struct {
	spec       Spec
	reserve    int  // R: per-source reserve (fair share for damq)
	borrowable int  // B: shared region, slots - R*sources
	guaranteed bool // reserve model: refuse borrows past B

	pool []slot
	free int   // free-list head, -1 when the pool is exhausted
	head []int // per-source list head slot index, -1 when empty
	tail []int
	lens []int // total list lengths, system packets included
	// ulens counts only user packets per list: protected kernel traffic
	// occupies slots but is exempt from the allocation policy (see Admit),
	// so caps, reserves and borrow accounting all read ulens, not lens.
	ulens []int
	// borrowed is sum over sources of max(0, ulens[s]-R): user slots in use
	// beyond their owners' reserves, maintained incrementally on push/pop.
	borrowed int
	total    int
	seq      uint64 // next arrival stamp; defines "globally oldest"

	// bypassed counts consecutive pops that jumped the current globally
	// oldest packet; reset whenever the oldest itself is popped.
	bypassed int

	match  func(*mesh.Packet) bool
	kernel func(*mesh.Packet) bool

	steals   uint64
	bypasses uint64

	mSteals *metrics.Counter
	mBypass *metrics.Counter
	mOcc    *metrics.Gauge
}

// slot is one SRAM buffer: a packet, its arrival stamp, whether it holds
// protected kernel traffic, and the link to the next slot in the same
// per-source list (or the free list).
type slot struct {
	pkt  *mesh.Packet
	seq  uint64
	sys  bool
	next int
}

func newShared(spec Spec, sources int) *shared {
	if sources <= 0 {
		sources = 1
	}
	q := &shared{
		spec:       spec,
		guaranteed: spec.Model == ModelReserve,
		pool:       make([]slot, spec.Slots),
		head:       make([]int, sources),
		tail:       make([]int, sources),
		lens:       make([]int, sources),
		ulens:      make([]int, sources),
	}
	q.reserve, q.borrowable = Reserve(spec.Policy, spec.Slots, sources)
	for i := range q.pool {
		q.pool[i].next = i + 1
	}
	q.pool[len(q.pool)-1].next = -1
	q.free = 0
	for s := range q.head {
		q.head[s], q.tail[s] = -1, -1
	}
	return q
}

func (q *shared) Spec() Spec { return q.spec }
func (q *shared) Slots() int { return q.spec.Slots }
func (q *shared) Len() int   { return q.total }

func (q *shared) Bind(match, kernel func(*mesh.Packet) bool) {
	q.match, q.kernel = match, kernel
}

func (q *shared) UseMetrics(r *metrics.Registry) {
	q.mSteals = r.Counter("niq.steals")
	q.mBypass = r.Counter("niq.bypass")
	q.mOcc = r.Gauge("niq.occupancy")
}

// grow extends the per-source lists for an out-of-range source index (unit
// tests feed synthetic sources; machines size the queue to the mesh). The
// (R, B) split keeps the geometry it was built with.
func (q *shared) grow(src int) {
	for src >= len(q.head) {
		q.head = append(q.head, -1)
		q.tail = append(q.tail, -1)
		q.lens = append(q.lens, 0)
		q.ulens = append(q.ulens, 0)
	}
}

func (q *shared) Admit(src int, sys bool) bool {
	if src < 0 {
		return false
	}
	if sys {
		// Protected kernel traffic outranks the user allocation policy: it
		// is admitted whenever a free physical slot exists. A per-source cap
		// that could refuse an overflow release or a revocation would let a
		// user buffer policy wedge the whole machine.
		return q.total < q.spec.Slots
	}
	length := 0
	if src < len(q.ulens) {
		length = q.ulens[src]
	}
	if q.guaranteed {
		// Within the reserve, admission needs only a free slot (system
		// packets may transiently occupy reserve capacity, so the free list
		// can run dry even with reserve headroom). Beyond the reserve,
		// borrow while B lasts.
		return q.total < q.spec.Slots && (length < q.reserve || q.borrowed < q.borrowable)
	}
	// DAMQ: any free slot can be stolen, up to the policy's per-source cap.
	return q.total < q.spec.Slots && length < q.reserve+q.borrowable
}

func (q *shared) Push(pkt *mesh.Packet) {
	src := pkt.Src
	q.grow(src)
	sys := q.kernel != nil && q.kernel(pkt)
	if !q.Admit(src, sys) {
		panic(fmt.Sprintf("niq: %s push from source %d past admission", q.spec.Name(), src))
	}
	i := q.free
	if i < 0 {
		panic("niq: admission promised a slot but the free list is empty")
	}
	q.free = q.pool[i].next
	q.pool[i] = slot{pkt: pkt, seq: q.seq, sys: sys, next: -1}
	q.seq++
	if q.tail[src] < 0 {
		q.head[src] = i
	} else {
		q.pool[q.tail[src]].next = i
	}
	q.tail[src] = i
	if !sys {
		if q.ulens[src] >= q.reserve {
			q.borrowed++
			q.steals++
			q.mSteals.Inc()
		}
		q.ulens[src]++
	}
	q.lens[src]++
	q.total++
	q.mOcc.Set(int64(q.total))
}

// sel picks the presented source list: (chosen, globally oldest). Both are
// -1 on an empty queue.
func (q *shared) sel() (choice, oldest int) {
	choice, oldest = -1, -1
	var bestSeq, oldSeq uint64
	for s, i := range q.head {
		if i < 0 {
			continue
		}
		e := &q.pool[i]
		if oldest < 0 || e.seq < oldSeq {
			oldest, oldSeq = s, e.seq
		}
		if q.match != nil && q.match(e.pkt) && (choice < 0 || e.seq < bestSeq) {
			choice, bestSeq = s, e.seq
		}
	}
	if oldest < 0 || choice < 0 || choice == oldest {
		return oldest, oldest
	}
	// A younger matching head would jump the queue: refuse when the front
	// packet has kernel priority, or its bypass budget is spent.
	if q.kernel != nil && q.kernel(q.pool[q.head[oldest]].pkt) {
		return oldest, oldest
	}
	if q.bypassed >= q.spec.BypassBudget {
		return oldest, oldest
	}
	return choice, oldest
}

func (q *shared) Head() *mesh.Packet {
	choice, _ := q.sel()
	if choice < 0 {
		return nil
	}
	return q.pool[q.head[choice]].pkt
}

func (q *shared) PopHead() *mesh.Packet {
	choice, oldest := q.sel()
	if choice < 0 {
		return nil
	}
	i := q.head[choice]
	e := q.pool[i]
	q.head[choice] = e.next
	if e.next < 0 {
		q.tail[choice] = -1
	}
	if !e.sys {
		if q.ulens[choice] > q.reserve {
			q.borrowed--
		}
		q.ulens[choice]--
	}
	q.lens[choice]--
	q.total--
	q.pool[i] = slot{next: q.free}
	q.free = i
	if choice == oldest {
		q.bypassed = 0
	} else {
		q.bypassed++
		q.bypasses++
		q.mBypass.Inc()
	}
	q.mOcc.Set(int64(q.total))
	return e.pkt
}

func (q *shared) Steals() uint64   { return q.steals }
func (q *shared) Bypasses() uint64 { return q.bypasses }

// CheckInvariants re-derives every incrementally-maintained quantity from
// the raw slot array and compares:
//
//   - per-source list integrity: lengths match lens/ulens, arrival stamps
//     strictly increase along each list, no slot appears in two lists;
//   - pool conservation: used + free == slots, total == sum(lens);
//   - borrow accounting: borrowed == sum(max(0, ulens[s]-R));
//   - the reserve guarantee (reserve model): borrowed <= B — no source's
//     *user* traffic occupies another source's guaranteed slots (system
//     packets are exempt by design).
func (q *shared) CheckInvariants() error {
	visited := make([]bool, len(q.pool))
	used, borrowed := 0, 0
	for s := range q.head {
		n, un := 0, 0
		var lastSeq uint64
		for i := q.head[s]; i >= 0; i = q.pool[i].next {
			if i >= len(q.pool) {
				return fmt.Errorf("source %d links to slot %d outside the %d-slot pool", s, i, len(q.pool))
			}
			if visited[i] {
				return fmt.Errorf("slot %d appears in two lists", i)
			}
			visited[i] = true
			if q.pool[i].pkt == nil {
				return fmt.Errorf("source %d slot %d holds a nil packet", s, i)
			}
			if n > 0 && q.pool[i].seq <= lastSeq {
				return fmt.Errorf("source %d arrival stamps not increasing at slot %d", s, i)
			}
			lastSeq = q.pool[i].seq
			if q.pool[i].next < 0 && q.tail[s] != i {
				return fmt.Errorf("source %d tail is %d, list ends at %d", s, q.tail[s], i)
			}
			n++
			if !q.pool[i].sys {
				un++
			}
		}
		if n != q.lens[s] {
			return fmt.Errorf("source %d list length %d != lens %d", s, n, q.lens[s])
		}
		if un != q.ulens[s] {
			return fmt.Errorf("source %d holds %d user packets, ulens says %d", s, un, q.ulens[s])
		}
		if n == 0 && q.tail[s] != -1 {
			return fmt.Errorf("source %d empty but tail is %d", s, q.tail[s])
		}
		used += n
		if un > q.reserve {
			borrowed += un - q.reserve
		}
	}
	freeLen := 0
	for i := q.free; i >= 0; i = q.pool[i].next {
		if visited[i] {
			return fmt.Errorf("slot %d is both free and in a list", i)
		}
		visited[i] = true
		freeLen++
		if freeLen > len(q.pool) {
			return fmt.Errorf("free list cycles")
		}
	}
	if used != q.total {
		return fmt.Errorf("lists hold %d packets, total says %d", used, q.total)
	}
	if used+freeLen != len(q.pool) {
		return fmt.Errorf("%d used + %d free != %d slots", used, freeLen, len(q.pool))
	}
	if borrowed != q.borrowed {
		return fmt.Errorf("recounted borrowed %d != tracked %d", borrowed, q.borrowed)
	}
	if q.guaranteed && borrowed > q.borrowable {
		return fmt.Errorf("reserve violated: %d slots borrowed of %d borrowable "+
			"(some source's guaranteed reserve is occupied by another source)",
			borrowed, q.borrowable)
	}
	return nil
}
