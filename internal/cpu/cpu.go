// Package cpu models one node's processor: a single execution resource shared
// by prioritized tasks (user threads, user message handlers, kernel threads
// and interrupt service routines) with cycle-accurate, preemptible time
// accounting.
//
// The model matches what the FUGU experiments need from Sparcle: code costs
// cycles (Task.Spend), interrupts preempt lower-priority work at instruction
// boundaries, kernel handlers run with interrupts effectively masked (ISR
// tasks are non-preemptible), and the atomicity timer can observe exactly
// which domain (user or kernel) is consuming cycles via run listeners.
package cpu

import (
	"fmt"

	"fugu/internal/sim"
)

// Priority orders tasks; higher values preempt lower ones. The levels mirror
// the FUGU software stack: background user threads, the elevated
// message-handling thread used in buffered mode, kernel threads (pager,
// drain), and interrupt service routines.
type Priority int

// Task priority levels, lowest first.
const (
	PrioUser Priority = iota + 1
	PrioHandler
	PrioKernel
	PrioISR
)

func (p Priority) String() string {
	switch p {
	case PrioUser:
		return "user"
	case PrioHandler:
		return "handler"
	case PrioKernel:
		return "kernel"
	case PrioISR:
		return "isr"
	default:
		return fmt.Sprintf("prio(%d)", int(p))
	}
}

// Domain classifies cycles for accounting and for the atomicity timer, which
// by Table 3 of the paper decrements only during user cycles.
type Domain int

// Execution domains.
const (
	DomainUser Domain = iota
	DomainKernel
)

// RunListener observes which task occupies the CPU. Transitions are
// delivered with prev or next nil for idle. The NI atomicity timer uses this
// to count user cycles only.
type RunListener interface {
	RunChange(now uint64, prev, next *Task)
}

// CPU is one node's processor.
type CPU struct {
	eng  *sim.Engine
	name string

	ready   [PrioISR + 1][]*Task // FIFO per priority; index 0 unused
	running *Task

	listeners []RunListener

	// Cycle accounting by domain, plus idle derived from engine time.
	spent [2]uint64
}

// New returns a CPU bound to the engine. name tags diagnostics (e.g. "cpu3").
func New(eng *sim.Engine, name string) *CPU {
	return &CPU{eng: eng, name: name}
}

// Engine returns the simulation engine.
func (c *CPU) Engine() *sim.Engine { return c.eng }

// Name returns the CPU's diagnostic name.
func (c *CPU) Name() string { return c.name }

// Running returns the task currently occupying the CPU, or nil when idle.
func (c *CPU) Running() *Task { return c.running }

// SpentCycles reports total cycles consumed in the given domain.
func (c *CPU) SpentCycles(d Domain) uint64 { return c.spent[d] }

// AddRunListener registers a listener for occupancy transitions.
func (c *CPU) AddRunListener(l RunListener) {
	c.listeners = append(c.listeners, l)
}

func (c *CPU) notifyRun(prev, next *Task) {
	for _, l := range c.listeners {
		l.RunChange(c.eng.Now(), prev, next)
	}
}

// enqueue appends t to its ready queue; front selects involuntary-preemption
// placement at the head so a preempted task resumes before its peers.
func (c *CPU) enqueue(t *Task, front bool) {
	q := c.ready[t.prio]
	if front {
		// Shift in place rather than rebuilding the slice: preemptions are
		// frequent enough that the copy beats an allocation per enqueue.
		q = append(q, nil)
		copy(q[1:], q)
		q[0] = t
		c.ready[t.prio] = q
	} else {
		c.ready[t.prio] = append(q, t)
	}
}

func (c *CPU) pickReady() *Task {
	for p := PrioISR; p >= PrioUser; p-- {
		if q := c.ready[p]; len(q) > 0 {
			t := q[0]
			copy(q, q[1:])
			c.ready[p] = q[:len(q)-1]
			return t
		}
	}
	return nil
}

// removeReady deletes t from its ready queue (Suspend of a ready task).
func (c *CPU) removeReady(t *Task) {
	q := c.ready[t.prio]
	for i, x := range q {
		if x == t {
			c.ready[t.prio] = append(q[:i], q[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("cpu %s: %s not in ready queue", c.name, t.name))
}

func (c *CPU) highestReadyPrio() Priority {
	for p := PrioISR; p >= PrioUser; p-- {
		if len(c.ready[p]) > 0 {
			return p
		}
	}
	return 0
}

// schedule grants the CPU to the best ready task if the CPU is free. It is
// safe to call from any context: the grant is delivered through an event.
func (c *CPU) schedule() {
	if c.running != nil {
		return
	}
	t := c.pickReady()
	if t == nil {
		return
	}
	t.state = taskRunning
	c.running = t
	c.notifyRun(nil, t)
	c.wakeProc(t)
}

// wakeProc delivers a wake to t's proc unless one is already pending (the
// spawn dispatch, or a grant that was preempted in the same instant). Stale
// wakes are absorbed by the task's state-checked park loops.
func (c *CPU) wakeProc(t *Task) {
	if !t.proc.HasPendingWake() {
		c.eng.Wake(t.proc)
	}
}

// release clears the running task (which must be t) and hands the CPU to the
// next ready task.
func (c *CPU) release(t *Task) {
	if c.running != t {
		panic(fmt.Sprintf("cpu %s: release by %s but running %v", c.name, t.name, c.running))
	}
	c.running = nil
	c.notifyRun(t, nil)
	c.schedule()
}

// needResched reports whether t should yield to a higher-priority ready task.
func (c *CPU) needResched(t *Task) bool {
	return t.preemptible && c.highestReadyPrio() > t.prio
}

// maybePreempt performs an active preemption of the running task if a
// higher-priority task is ready. It must be called from event context (the
// running task, if any, is parked mid-Spend, so its balance can be saved).
func (c *CPU) maybePreempt() {
	t := c.running
	if t == nil {
		c.schedule()
		return
	}
	if !c.needResched(t) {
		return
	}
	if c.eng.Current() != nil {
		panic("cpu: maybePreempt from proc context")
	}
	t.suspendSpend()
	t.depose(true)
}

// kick is the universal "something became ready" notification: from event
// context it may actively preempt; from task context the running task will
// observe needResched at its next Spend boundary, so only scheduling of a
// free CPU is needed.
func (c *CPU) kick() {
	if c.eng.Current() == nil {
		c.maybePreempt()
	} else {
		c.schedule()
	}
}

// ReadyCount reports how many tasks are queued runnable (excluding running).
func (c *CPU) ReadyCount() int {
	n := 0
	for p := PrioUser; p <= PrioISR; p++ {
		n += len(c.ready[p])
	}
	return n
}

// Idle reports whether nothing is running or ready.
func (c *CPU) Idle() bool { return c.running == nil && c.ReadyCount() == 0 }
