// DSM demonstrates the CRL all-software shared-memory system the paper's
// SPLASH applications run on: eight nodes cooperatively relax a shared
// 1-D heat equation, each owning a strip of cells in a CRL region and
// reading its neighbours' boundary regions each sweep. Coherence-protocol
// messages (the request-reply traffic of Section 5.1) do all communication.
package main

import (
	"fmt"
	"math"

	"fugu"
	"fugu/internal/apps"
	"fugu/internal/crl"
)

const (
	cells  = 512
	sweeps = 60
)

func main() {
	// Bulk coherence messages ride the modelled DMA descriptor.
	m := fugu.NewMachine(fugu.DefaultConfig(), fugu.WithOutputWords(64))
	job := m.NewJob("heat")
	nodes := len(m.Nodes)
	per := cells / nodes

	eps := make([]*fugu.EP, nodes)
	crls := make([]*crl.Node, nodes)
	for i := 0; i < nodes; i++ {
		eps[i] = fugu.Attach(job.Process(i))
		crls[i] = crl.New(eps[i], nodes)
	}

	// One region per strip; region id = owner node.
	final := make([]float64, cells)
	for node := 0; node < nodes; node++ {
		node := node
		c := crls[node]
		bar := apps.NewBarrier(eps[node], nodes)
		job.Process(node).StartMain(func(t *fugu.Task) {
			own := c.Create(crl.RegionID(node), per)
			c.StartWrite(t, own)
			for i := 0; i < per; i++ {
				// Hot spike in the middle of the bar.
				v := 0.0
				if node*per+i == cells/2 {
					v = 1000
				}
				own.Write(i, math.Float64bits(v))
			}
			c.EndWrite(t, own)
			t.Spend(10_000) // everyone finishes initialization

			left := c.Map(crl.RegionID((node+nodes-1)%nodes), per)
			right := c.Map(crl.RegionID((node+1)%nodes), per)
			cur := make([]float64, per+2)
			bar.Wait(t)
			for s := 0; s < sweeps; s++ {
				// Gather: own strip plus neighbour boundary cells.
				c.StartRead(t, own)
				for i := 0; i < per; i++ {
					cur[i+1] = math.Float64frombits(own.Read(i))
				}
				c.EndRead(t, own)
				c.StartRead(t, left)
				cur[0] = math.Float64frombits(left.Read(per - 1))
				c.EndRead(t, left)
				c.StartRead(t, right)
				cur[per+1] = math.Float64frombits(right.Read(0))
				c.EndRead(t, right)
				// All reads complete machine-wide before anyone publishes
				// (strict Jacobi), then relax and publish.
				bar.Wait(t)
				c.StartWrite(t, own)
				for i := 0; i < per; i++ {
					v := cur[i+1] + 0.25*(cur[i]-2*cur[i+1]+cur[i+2])
					own.Write(i, math.Float64bits(v))
				}
				c.EndWrite(t, own)
				t.Spend(uint64(per) * 6)
				// Jacobi sweeps: everyone reads old values, then everyone
				// publishes — the barrier separates the generations.
				bar.Wait(t)
			}

			c.StartRead(t, own)
			for i := 0; i < per; i++ {
				final[node*per+i] = math.Float64frombits(own.Read(i))
			}
			c.EndRead(t, own)
		})
	}

	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(0, job)

	// The heat spreads symmetrically around the spike; print a coarse view.
	total := 0.0
	for _, v := range final {
		total += v
	}
	fmt.Printf("after %d sweeps on %d nodes: total heat %.1f (conserved from 1000)\n", sweeps, nodes, total)
	fmt.Print("profile around the spike: ")
	for i := cells/2 - 4; i <= cells/2+4; i++ {
		fmt.Printf("%.1f ", final[i])
	}
	fmt.Println()
	d := job.Delivery()
	fmt.Printf("CRL coherence traffic: %d messages (%d fast, %d buffered)\n", d.Total(), d.Fast, d.Buffered)
	sym := math.Abs(final[cells/2-3]-final[cells/2+3]) < 1e-9
	fmt.Println("symmetric diffusion:", sym)
}
