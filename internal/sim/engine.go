package sim

import (
	"container/heap"
	"fmt"

	"fugu/internal/metrics"
)

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use from multiple goroutines except through the Proc baton
// protocol, which guarantees only one coroutine touches the engine at a time.
type Engine struct {
	now     uint64
	seq     uint64
	heap    eventHeap
	current *Proc // proc currently holding the baton, nil in engine context
	stopped bool
	live    int // number of live (spawned, not finished) procs

	// Limit, when nonzero, bounds simulated time: Run returns once the
	// next event would fire after Limit.
	Limit uint64

	rng *Rand

	events *metrics.Counter // dispatched events ("sim.events"), nil-safe
}

// UseMetrics binds the engine's instruments into a registry. The engine
// counts every dispatched event under "sim.events" — a cheap proxy for how
// much simulated activity a run generated.
func (e *Engine) UseMetrics(r *metrics.Registry) {
	e.events = r.Counter("sim.events")
}

// NewEngine returns an engine with the given RNG seed. A zero seed is
// replaced with a fixed default so the zero-ish configuration stays
// deterministic.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current simulation time in cycles.
func (e *Engine) Now() uint64 { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Schedule registers fn to run at now+delay and returns a cancellable handle.
// fn runs in engine context; it may wake procs, schedule further events, or
// stop the engine, but must not block.
func (e *Engine) Schedule(delay uint64, fn func()) *Event {
	ev := &Event{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

// ScheduleAt registers fn to run at absolute time at (which must not be in
// the past) and returns a cancellable handle.
func (e *Engine) ScheduleAt(at uint64, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%d) in the past (now=%d)", at, e.now))
	}
	return e.Schedule(at-e.now, fn)
}

// Cancel removes a pending event; cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	if ev.index >= 0 {
		e.heap.remove(ev.index)
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Run executes events until the queue empties, Stop is called, or the time
// Limit is exceeded. It returns the final simulation time. A Stop from a
// previous Run does not carry over: each Run starts live.
func (e *Engine) Run() uint64 {
	if e.current != nil {
		panic("sim: Run called from proc context")
	}
	e.stopped = false
	for !e.stopped && e.heap.Len() > 0 {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.cancelled {
			continue
		}
		if e.Limit != 0 && ev.at > e.Limit {
			// Push back so a later Run with a raised Limit continues.
			heap.Push(&e.heap, ev)
			e.now = e.Limit
			break
		}
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.at
		e.events.Inc()
		ev.fn()
	}
	return e.now
}

// RunUntil executes events up to and including time t, then returns. Events
// scheduled after t remain queued.
func (e *Engine) RunUntil(t uint64) uint64 {
	saved := e.Limit
	e.Limit = t
	e.Run()
	e.Limit = saved
	return e.now
}

// Pending reports how many events remain queued.
func (e *Engine) Pending() int { return e.heap.Len() }

// LiveProcs reports how many spawned procs have not yet returned. A nonzero
// value after Run drains the queue usually indicates deadlock: procs parked
// with nobody left to wake them.
func (e *Engine) LiveProcs() int { return e.live }

// Current returns the proc currently holding the baton, or nil when the
// engine loop (or an event callback) is executing.
func (e *Engine) Current() *Proc { return e.current }
