package nic

import (
	"testing"
	"testing/quick"

	"fugu/internal/mesh"
	"fugu/internal/sim"
)

// rig builds two nodes with NIs on a 2x1 mesh and interrupt counters.
type rig struct {
	eng  *sim.Engine
	net  *mesh.Net
	ni   [2]*NI
	got  [2]struct{ avail, mismatch, timeout int }
	last [2]struct{ availAt, mismatchAt, timeoutAt uint64 }
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(1)}
	r.net = mesh.New(r.eng, 2, 1, mesh.DefaultLatency())
	for i := 0; i < 2; i++ {
		i := i
		r.ni[i] = New(r.eng, r.net, i, cfg)
		r.ni[i].SetInterrupts(Interrupts{
			MessageAvailable:  func() { r.got[i].avail++; r.last[i].availAt = r.eng.Now() },
			MismatchAvailable: func() { r.got[i].mismatch++; r.last[i].mismatchAt = r.eng.Now() },
			AtomicityTimeout:  func() { r.got[i].timeout++; r.last[i].timeoutAt = r.eng.Now() },
		})
	}
	return r
}

// send describes and launches a len-2+extra message from node src to dst.
func (r *rig) send(src, dst int, kernel bool, payload ...uint64) Trap {
	h := MakeHeader(dst)
	if kernel {
		h = MakeKernelHeader(dst)
	}
	r.ni[src].Describe(append([]uint64{h, xhandler}, payload...)...)
	return r.ni[src].Launch(kernel)
}

const xhandler = 0xbeef

func TestHeaderRoundTrip(t *testing.T) {
	prop := func(dst uint8, gid uint16, kernel bool) bool {
		d := int(dst) % 64
		var h uint64
		if kernel {
			h = MakeKernelHeader(d)
		} else {
			h = MakeHeader(d)
		}
		h = stampGID(h, GID(gid))
		return HeaderDst(h) == d && HeaderGID(h) == GID(gid) && HeaderIsKernel(h) == kernel
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSendStampsGID(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ni[0].SetGID(7)
	r.ni[1].SetGID(7)
	r.ni[0].Describe(MakeHeader(1), xhandler, 42)
	if trap := r.ni[0].Launch(false); trap != TrapNone {
		t.Fatalf("launch trap %v", trap)
	}
	r.eng.Run()
	if r.ni[1].QueueLen() != 1 {
		t.Fatal("message not delivered")
	}
	h := r.ni[1].ReadWord(0)
	if HeaderGID(h) != 7 {
		t.Errorf("stamped GID = %d, want 7", HeaderGID(h))
	}
	if r.ni[1].ReadWord(1) != xhandler || r.ni[1].ReadWord(2) != 42 {
		t.Error("payload corrupted")
	}
	if got := r.got[1].avail; got != 1 {
		t.Errorf("message-available raised %d times, want 1", got)
	}
}

func TestUserLaunchKernelHeaderTraps(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ni[0].Describe(MakeKernelHeader(1), xhandler)
	if trap := r.ni[0].Launch(false); trap != TrapProtectionViolation {
		t.Errorf("trap = %v, want protection-violation", trap)
	}
	// The descriptor is untouched; the kernel could still launch it.
	if r.ni[0].DescriptorLength() != 2 {
		t.Errorf("descriptor length = %d, want 2", r.ni[0].DescriptorLength())
	}
	if trap := r.ni[0].Launch(true); trap != TrapNone {
		t.Errorf("kernel launch trap = %v", trap)
	}
}

func TestEmptyLaunchIsNoop(t *testing.T) {
	r := newRig(t, DefaultConfig())
	if trap := r.ni[0].Launch(false); trap != TrapNone {
		t.Errorf("empty launch trap = %v", trap)
	}
	r.eng.Run()
	if r.ni[1].QueueLen() != 0 {
		t.Error("phantom message sent")
	}
}

func TestDescriptorOverflowPanics(t *testing.T) {
	r := newRig(t, Config{InputQueueDepth: 4, OutputWords: 4, TimerPreset: 100, DrainPerWord: 1})
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	r.ni[0].Describe(1, 2, 3, 4, 5)
}

func TestSpaceAvailableDrain(t *testing.T) {
	r := newRig(t, DefaultConfig())
	if got := r.ni[0].SpaceAvailable(); got != 16 {
		t.Errorf("initial space = %d, want 16", got)
	}
	r.send(0, 1, false, 1, 2) // 4 words -> 4 cycles drain
	if got := r.ni[0].SpaceAvailable(); got != 0 {
		t.Errorf("space during drain = %d, want 0", got)
	}
	woken := false
	r.eng.Spawn("w", func(p *sim.Proc) {
		r.ni[0].SpaceCond().Wait(p)
		woken = true
		if r.ni[0].SpaceAvailable() != 16 {
			t.Errorf("space after drain = %d", r.ni[0].SpaceAvailable())
		}
		if p.Now() != 4 {
			t.Errorf("drain completed at %d, want 4", p.Now())
		}
	})
	r.eng.Run()
	if !woken {
		t.Error("space waiter never woken")
	}
}

func TestDisposeExposesNext(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ni[0].SetGID(3)
	r.ni[1].SetGID(3)
	r.send(0, 1, false, 100)
	r.send(0, 1, false, 200)
	r.eng.Run()
	if r.ni[1].QueueLen() != 2 {
		t.Fatalf("queue len = %d, want 2", r.ni[1].QueueLen())
	}
	if r.got[1].avail != 1 {
		t.Fatalf("avail raised %d times before dispose, want 1", r.got[1].avail)
	}
	if r.ni[1].ReadWord(2) != 100 {
		t.Error("head is not the first message")
	}
	if trap := r.ni[1].Dispose(); trap != TrapNone {
		t.Fatalf("dispose trap %v", trap)
	}
	if r.ni[1].ReadWord(2) != 200 {
		t.Error("second message not exposed after dispose")
	}
	if r.got[1].avail != 2 {
		t.Errorf("avail raised %d times after dispose, want 2", r.got[1].avail)
	}
}

func TestDisposeTraps(t *testing.T) {
	r := newRig(t, DefaultConfig())
	if trap := r.ni[1].Dispose(); trap != TrapBadDispose {
		t.Errorf("empty dispose trap = %v, want bad-dispose", trap)
	}
	r.ni[1].SetDivert(true)
	if trap := r.ni[1].Dispose(); trap != TrapDisposeExtend {
		t.Errorf("divert dispose trap = %v, want dispose-extend", trap)
	}
}

func TestMismatchInterrupt(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ni[0].SetGID(3)
	r.ni[1].SetGID(9) // receiver runs a different gang
	r.send(0, 1, false, 1)
	r.eng.Run()
	if r.got[1].mismatch != 1 {
		t.Errorf("mismatch raised %d times, want 1", r.got[1].mismatch)
	}
	if r.got[1].avail != 0 {
		t.Error("message-available raised for mismatched GID")
	}
	if r.ni[1].MessageAvailable() {
		t.Error("message-available flag set for mismatched GID")
	}
	// The kernel resolves it: switching GID to match re-evaluates the head.
	r.ni[1].SetGID(3)
	if !r.ni[1].MessageAvailable() {
		t.Error("flag not set after GID switch")
	}
}

func TestKernelMessageInterruptsKernel(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ni[1].SetGID(3)
	r.send(0, 1, true, 55)
	r.eng.Run()
	if r.got[1].mismatch != 1 || r.got[1].avail != 0 {
		t.Errorf("kernel message: mismatch=%d avail=%d, want 1,0", r.got[1].mismatch, r.got[1].avail)
	}
}

func TestDivertSendsAllToKernel(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ni[0].SetGID(3)
	r.ni[1].SetGID(3)
	r.ni[1].SetDivert(true)
	r.send(0, 1, false, 1)
	r.eng.Run()
	if r.got[1].mismatch != 1 || r.got[1].avail != 0 {
		t.Errorf("divert: mismatch=%d avail=%d, want 1,0", r.got[1].mismatch, r.got[1].avail)
	}
	if r.ni[1].MessageAvailable() {
		t.Error("message-available flag set under divert")
	}
	// KDispose drains it for the software buffer.
	r.ni[1].KDispose()
	if r.ni[1].QueueLen() != 0 {
		t.Error("KDispose did not remove head")
	}
}

func TestInterruptDisableDefersAvail(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ni[0].SetGID(3)
	r.ni[1].SetGID(3)
	if trap := r.ni[1].BeginAtom(UACInterruptDisable, false); trap != TrapNone {
		t.Fatalf("beginatom trap %v", trap)
	}
	r.send(0, 1, false, 1)
	r.eng.Run()
	if r.got[1].avail != 0 {
		t.Error("interrupt raised despite interrupt-disable")
	}
	if !r.ni[1].MessageAvailable() {
		t.Error("flag not visible for polling")
	}
	// endatom re-enables: the pending head must now interrupt.
	if trap := r.ni[1].EndAtom(UACInterruptDisable, false); trap != TrapNone {
		t.Fatalf("endatom trap %v", trap)
	}
	if r.got[1].avail != 1 {
		t.Errorf("avail after endatom = %d, want 1", r.got[1].avail)
	}
}

func TestEndAtomTraps(t *testing.T) {
	r := newRig(t, DefaultConfig())
	ni := r.ni[0]
	ni.BeginAtom(UACInterruptDisable, false)
	ni.SetUACKernel(UACDisposePending, true)
	if trap := ni.EndAtom(UACInterruptDisable, false); trap != TrapDisposeFailure {
		t.Errorf("trap = %v, want dispose-failure", trap)
	}
	ni.SetUACKernel(UACDisposePending, false)
	ni.SetUACKernel(UACAtomicityExtend, true)
	if trap := ni.EndAtom(UACInterruptDisable, false); trap != TrapAtomicityExtend {
		t.Errorf("trap = %v, want atomicity-extend", trap)
	}
	ni.SetUACKernel(UACAtomicityExtend, false)
	if trap := ni.EndAtom(UACInterruptDisable, false); trap != TrapNone {
		t.Errorf("trap = %v, want none", trap)
	}
	if ni.UAC() != 0 {
		t.Errorf("UAC = %x, want 0", ni.UAC())
	}
}

func TestUserCannotTouchKernelBits(t *testing.T) {
	r := newRig(t, DefaultConfig())
	ni := r.ni[0]
	if trap := ni.BeginAtom(UACDisposePending, false); trap != TrapProtectionViolation {
		t.Errorf("beginatom kernel bit trap = %v", trap)
	}
	if trap := ni.EndAtom(UACAtomicityExtend, false); trap != TrapProtectionViolation {
		t.Errorf("endatom kernel bit trap = %v", trap)
	}
	if trap := ni.BeginAtom(UACDisposePending, true); trap != TrapNone {
		t.Errorf("kernel beginatom trap = %v", trap)
	}
}

func TestDisposeClearsDisposePending(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ni[0].SetGID(3)
	r.ni[1].SetGID(3)
	r.send(0, 1, false, 1)
	r.eng.Run()
	ni := r.ni[1]
	ni.SetUACKernel(UACDisposePending, true)
	ni.BeginAtom(UACInterruptDisable, false)
	if trap := ni.Dispose(); trap != TrapNone {
		t.Fatalf("dispose trap %v", trap)
	}
	if ni.UAC()&UACDisposePending != 0 {
		t.Error("dispose did not clear dispose-pending")
	}
	if trap := ni.EndAtom(UACInterruptDisable, false); trap != TrapNone {
		t.Errorf("endatom after dispose trap = %v", trap)
	}
}

func TestInputQueueBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InputQueueDepth = 2
	r := newRig(t, cfg)
	r.ni[0].SetGID(3)
	r.ni[1].SetGID(9) // mismatches pile up; kernel not draining yet
	r.eng.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r.send(0, 1, false, uint64(i))
			p.Sleep(20)
		}
	})
	r.eng.Run()
	if r.ni[1].QueueLen() != 2 {
		t.Fatalf("queue len = %d, want 2", r.ni[1].QueueLen())
	}
	if r.net.BlockedAt(1, mesh.Main) != 3 {
		t.Fatalf("network blocked = %d, want 3", r.net.BlockedAt(1, mesh.Main))
	}
	// Kernel drains: each KDispose admits the next blocked packet, in order.
	for i := 0; i < 5; i++ {
		if got := r.ni[1].ReadWord(2); got != uint64(i) {
			t.Fatalf("drain order: head payload %d, want %d", got, i)
		}
		r.ni[1].KDispose()
	}
	if r.ni[1].QueueLen() != 0 || r.net.BlockedAt(1, mesh.Main) != 0 {
		t.Error("backlog not fully drained")
	}
	_, refused, _, _, _ := r.ni[1].Stats()
	if refused == 0 {
		t.Error("no refusals counted")
	}
}

func TestMismatchRaisedOncePerHead(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ni[0].SetGID(3)
	r.ni[1].SetGID(9)
	r.send(0, 1, false, 1)
	r.send(0, 1, false, 2)
	r.eng.Run()
	if r.got[1].mismatch != 1 {
		t.Fatalf("mismatch = %d before drain, want 1 (second is behind head)", r.got[1].mismatch)
	}
	r.ni[1].KDispose()
	if r.got[1].mismatch != 2 {
		t.Errorf("mismatch = %d after KDispose, want 2", r.got[1].mismatch)
	}
}

func TestClearDescriptorContextSwitch(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ni[0].Describe(MakeHeader(1), xhandler, 5)
	saved := r.ni[0].ClearDescriptor()
	if len(saved) != 3 || r.ni[0].DescriptorLength() != 0 {
		t.Fatal("ClearDescriptor did not unload")
	}
	// Reload and launch later, as the kernel would on switch-back.
	r.ni[0].Describe(saved...)
	r.ni[0].SetGID(3)
	r.ni[1].SetGID(3)
	if trap := r.ni[0].Launch(false); trap != TrapNone {
		t.Fatalf("launch trap %v", trap)
	}
	r.eng.Run()
	if r.ni[1].QueueLen() != 1 || r.ni[1].ReadWord(2) != 5 {
		t.Error("reloaded descriptor not delivered intact")
	}
}
