package nic

import (
	"fugu/internal/cpu"
	"fugu/internal/sim"
)

// atomicityTimer implements the revocable-interrupt-disable countdown of
// Section 4.1: a decrementing counter preset to atomicity-timeout. It is
// enabled while the user holds atomicity with a message pending (or
// unconditionally under timer-force), it decrements only during user cycles,
// dispose presets it, and expiry raises the atomicity-timeout kernel
// interrupt so the OS can revoke the user's interrupt-disable privilege.
type atomicityTimer struct {
	eng *sim.Engine
	ni  *NI

	presetVal uint64
	remaining uint64
	running   bool // currently counting down
	startAt   uint64
	ev        sim.Handle
	fireFn    func() // t.fire bound once, so re-arming never allocates

	userRunning bool
	fired       uint64 // lifetime expiry count
}

func (t *atomicityTimer) init(eng *sim.Engine, preset uint64, ni *NI) {
	t.eng = eng
	t.ni = ni
	t.presetVal = preset
	t.remaining = preset
	t.fireFn = t.fire
}

// armed applies Table 3: timer-force enables unconditionally;
// interrupt-disable enables while a message for the current user is pending.
func (t *atomicityTimer) armed() bool {
	if t.ni.uac&UACTimerForce != 0 {
		return true
	}
	return t.ni.uac&UACInterruptDisable != 0 && t.ni.headMatches()
}

// update reconciles the countdown with the armed state and the running
// domain. Called after every NI state change and CPU run transition.
func (t *atomicityTimer) update() {
	if !t.armed() {
		// "While the timer is disabled, the counter is preset."
		t.halt()
		t.remaining = t.presetVal
		return
	}
	if t.userRunning && !t.running {
		t.startAt = t.eng.Now()
		t.running = true
		t.ev = t.eng.ScheduleSite(siteTimer, t.remaining, t.fireFn)
	} else if !t.userRunning && t.running {
		t.pause()
	}
}

// siteTimer labels atomicity-timer expiries for the engine cost profiler.
var siteTimer = sim.NewSite("nic.timer")

// halt stops counting without charging elapsed time (disarm path).
func (t *atomicityTimer) halt() {
	t.eng.Cancel(t.ev)
	t.ev = sim.Handle{}
	t.running = false
}

// pause suspends the countdown, banking the elapsed user cycles.
func (t *atomicityTimer) pause() {
	elapsed := t.eng.Now() - t.startAt
	if elapsed >= t.remaining {
		elapsed = t.remaining
	}
	t.remaining -= elapsed
	t.halt()
}

// preset reloads the counter (dispose does this, "briefly disabling" it).
func (t *atomicityTimer) preset() {
	t.remaining = t.presetVal
	if t.running {
		t.eng.Cancel(t.ev)
		t.startAt = t.eng.Now()
		t.ev = t.eng.ScheduleSite(siteTimer, t.remaining, t.fireFn)
	}
}

func (t *atomicityTimer) fire() {
	t.ev = sim.Handle{}
	t.running = false
	t.remaining = t.presetVal
	t.fired++
	if t.ni.intr.AtomicityTimeout != nil {
		t.ni.intr.AtomicityTimeout()
	}
	t.update()
}

func (t *atomicityTimer) remainingNow() uint64 {
	if t.running {
		elapsed := t.eng.Now() - t.startAt
		if elapsed >= t.remaining {
			return 0
		}
		return t.remaining - elapsed
	}
	return t.remaining
}

// RunChange implements cpu.RunListener: the timer counts user cycles only.
func (t *atomicityTimer) RunChange(_ uint64, _, next *cpu.Task) {
	t.userRunning = next != nil && next.Domain() == cpu.DomainUser
	t.update()
}
