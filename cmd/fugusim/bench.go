package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"fugu/internal/apps"
	"fugu/internal/harness"
	"fugu/internal/metrics"
	"fugu/internal/telemetry"
)

// BenchRow is one workload's measurement in the machine-readable report.
// The throughput figure is simulated megacycles advanced per wall-clock
// second — the end-to-end speed of the simulator core — and the per-event
// columns normalize by dispatched engine events so runs of different sizes
// compare directly.
type BenchRow struct {
	Workload       string  `json:"workload"`
	McyclesPerSec  float64 `json:"mcycles_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	NsPerEvent     float64 `json:"ns_per_event"`
}

// benchCmd implements `fugusim bench`: run the three representative
// workloads (barrier: baton-heavy synchronization; synth: multiprogrammed
// producer/consumer traffic; crlstress: coherence-protocol request/reply
// plus bulk data), measure simulator throughput and allocation rates, and
// write the report as JSON. With -baseline it compares throughput against a
// committed report and exits nonzero on a regression beyond -max-regress —
// the CI perf gate.
func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	common := registerCommon(fs)
	out := fs.String("o", "BENCH_9.json", "write the JSON report to this path (- for stdout only)")
	force := fs.Bool("force", false, "overwrite an existing -o report file")
	baseline := fs.String("baseline", "", "compare against this committed report; exit 1 on regression")
	maxRegress := fs.Float64("max-regress", 0.20, "tolerated fractional throughput drop vs -baseline")
	maxAllocRegress := fs.Float64("max-alloc-regress", 0.10,
		"tolerated fractional allocs/event growth vs -baseline (plus a 0.01 absolute epsilon)")
	minSpeedup := fs.Float64("min-speedup", 0,
		"fail unless bigmesh-p4 beats bigmesh-p1 throughput by this factor (only enforced with 4+ cores)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the bench run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fugusim bench [flags]\n")
		fs.PrintDefaults()
	}
	if names := parseInterleaved(fs, args); len(names) != 0 {
		fs.Usage()
		os.Exit(2)
	}
	common.resolve()
	// Refuse a clobbering -o before the measurement, not after: a bench run
	// that ends by silently destroying the committed baseline is the worst
	// failure order.
	if *out != "-" {
		if err := prepareOutputPath(*out, *force); err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: bench: %v\n", err)
			os.Exit(2)
		}
	}
	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	barrierN, crlOps := 2000, 20
	if *common.full {
		barrierN, crlOps = 10000, 45
	}
	s := *common.seed
	mut := common.configMut()

	var crlOpts []harness.Option
	if common.policy != nil {
		crlOpts = append(crlOpts, harness.WithDeliveryPolicy(common.policy))
	}
	if tc := common.telemetryConfig(); tc.Enabled() {
		crlOpts = append(crlOpts, harness.WithTelemetry(tc))
	}
	snaps := map[string]metrics.Snapshot{}
	tlsByName := map[string]telemetry.Timeline{}
	keep := func(name string, cycles uint64, snap metrics.Snapshot, tl telemetry.Timeline) (uint64, metrics.Snapshot) {
		snaps[name] = snap
		tlsByName[name] = tl
		return cycles, snap
	}
	rows := []BenchRow{
		measure("barrier", func() (uint64, metrics.Snapshot) {
			rs := harness.RunStandaloneMut(func() apps.Instance { return apps.NewBarrierApp(barrierN) }, s, mut)
			mustOK("barrier", rs.Err)
			return keep("barrier", rs.Runtime, rs.Metrics, rs.Timeline)
		}),
		measure("synth", func() (uint64, metrics.Snapshot) {
			rs := harness.RunMultiprogrammedQ(
				func() apps.Instance { return apps.NewSynth(100, 20, 100) },
				0, s, 50_000, mut)
			mustOK("synth", rs.Err)
			return keep("synth", rs.Runtime, rs.Metrics, rs.Timeline)
		}),
		measure("crlstress", func() (uint64, metrics.Snapshot) {
			row, snap, tl := harness.RunCRLStressOnce(crlOps, s, crlOpts...)
			if !row.Completed {
				mustOK("crlstress", fmt.Errorf("workload wedged"))
			}
			if row.Total != row.Expected {
				mustOK("crlstress", fmt.Errorf("lost updates: total %d, expected %d", row.Total, row.Expected))
			}
			return keep("crlstress", row.Cycles, snap, tl)
		}),
	}
	// The bigmesh pair measures the parallel partition driver itself: the
	// same open-loop traffic serial and sharded four ways. Identical
	// simulations (the determinism tests pin byte-equality), so the
	// throughput ratio is a pure measurement of the window protocol.
	bmCfg := harness.DefaultBigMesh(!*common.full)
	bmCfg.Seed = s
	for _, parts := range []int{1, 4} {
		parts := parts
		rows = append(rows, measure(fmt.Sprintf("bigmesh-p%d", parts), func() (uint64, metrics.Snapshot) {
			cfg := bmCfg
			cfg.Parts = parts
			res, err := harness.RunBigMesh(cfg)
			mustOK(fmt.Sprintf("bigmesh-p%d", parts), err)
			snaps[fmt.Sprintf("bigmesh-p%d", parts)] = res.Metrics
			return res.Cycles, res.Metrics
		}))
	}
	var labeled []telemetry.LabeledTimeline
	for i, r := range rows {
		if tl := tlsByName[r.Workload]; !tl.Empty() {
			labeled = append(labeled, telemetry.LabeledTimeline{Point: i, Label: r.Workload, Timeline: tl})
		}
	}
	common.writeTimelines("bench", labeled)

	if *common.metricsDir != "" {
		for _, r := range rows {
			writeMetrics(*common.metricsDir, "bench."+r.Workload)(snaps[r.Workload])
		}
	}
	for _, r := range rows {
		fmt.Printf("%-10s %10.2f Mcycles/s %10.3f allocs/event %10.1f ns/event\n",
			r.Workload, r.McyclesPerSec, r.AllocsPerEvent, r.NsPerEvent)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: report written to %s\n", *out)
	} else {
		os.Stdout.Write(data)
	}

	if report, ok := checkSpeedup(rows, *minSpeedup); report != "" {
		fmt.Fprint(os.Stderr, report)
		if !ok {
			os.Exit(1)
		}
	}

	if *baseline != "" {
		report, ok := compareBaseline(rows, *baseline, *maxRegress, *maxAllocRegress)
		fmt.Fprint(os.Stderr, report)
		if !ok {
			os.Exit(1)
		}
	}
}

// checkSpeedup reports the bigmesh-p4/bigmesh-p1 throughput ratio and — when
// minSpeedup > 0 — gates on it. The gate only arms on machines with at
// least 4 CPUs: below that the partitions time-slice one another and the
// ratio measures the scheduler, not the driver (CI sets -min-speedup; local
// single-core runs still see the ratio reported).
func checkSpeedup(rows []BenchRow, minSpeedup float64) (string, bool) {
	byName := make(map[string]BenchRow, len(rows))
	for _, r := range rows {
		byName[r.Workload] = r
	}
	p1, ok1 := byName["bigmesh-p1"]
	p4, ok4 := byName["bigmesh-p4"]
	if !ok1 || !ok4 || p1.McyclesPerSec == 0 {
		return "", true
	}
	ratio := p4.McyclesPerSec / p1.McyclesPerSec
	var b strings.Builder
	fmt.Fprintf(&b, "bench: bigmesh p4/p1 speedup %.2fx (%d CPUs)\n", ratio, runtime.NumCPU())
	if minSpeedup <= 0 {
		return b.String(), true
	}
	if runtime.NumCPU() < 4 {
		fmt.Fprintf(&b, "bench: -min-speedup %.2f not enforced: only %d CPUs\n", minSpeedup, runtime.NumCPU())
		return b.String(), true
	}
	if ratio < minSpeedup {
		fmt.Fprintf(&b, "bench: FAIL bigmesh speedup %.2fx < required %.2fx\n", ratio, minSpeedup)
		return b.String(), false
	}
	return b.String(), true
}

// measure runs one workload with a clean heap and reports throughput and
// per-event allocation cost. Events come from the engine's "sim.events"
// counter in the run's merged metrics snapshot; allocations are the
// process-wide Mallocs delta across the run, which is why the heap is
// settled with a GC first.
func measure(name string, run func() (cycles uint64, snap metrics.Snapshot)) BenchRow {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	cycles, snap := run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	events := snap.Counters["sim.events"]
	r := BenchRow{Workload: name}
	if sec := wall.Seconds(); sec > 0 {
		r.McyclesPerSec = float64(cycles) / 1e6 / sec
	}
	if events > 0 {
		r.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		r.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
	}
	return r
}

// mustOK aborts the bench when a workload failed its own correctness check:
// a broken simulation's throughput is not a datum.
func mustOK(name string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: bench: %s: %v\n", name, err)
		os.Exit(1)
	}
}

// allocAbsEpsilon is the absolute slack added to the allocs/event ceiling:
// at the baseline's event counts (hundreds of thousands of events) a 0.01
// allocs/event drift is a few thousand allocations — measurement noise, not
// a leak — while a telemetry path accidentally left on in the default
// configuration costs an allocation every sample and clears the bar.
const allocAbsEpsilon = 0.01

// compareBaseline checks each measured workload against the committed
// report and returns a per-workload delta report plus the verdict. Two
// gates per workload: throughput (Mcycles/s) must not drop more than
// maxRegress below baseline, and allocs/event must not grow more than
// maxAllocRegress above baseline (plus allocAbsEpsilon absolute slack) —
// the latter is what keeps telemetry-disabled runs at zero added
// allocations per event. ns/event is reported for context but not gated;
// it moves with host load in ways the throughput gate already bounds.
// Workloads missing from the baseline pass (new workloads shouldn't brick
// CI); a workload present only in the baseline fails, so coverage cannot
// silently shrink.
func compareBaseline(rows []BenchRow, path string, maxRegress, maxAllocRegress float64) (string, bool) {
	var b strings.Builder
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(&b, "fugusim: bench: baseline: %v\n", err)
		return b.String(), false
	}
	var base []BenchRow
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(&b, "fugusim: bench: baseline %s: %v\n", path, err)
		return b.String(), false
	}
	measured := make(map[string]BenchRow, len(rows))
	for _, r := range rows {
		measured[r.Workload] = r
	}
	pct := func(cur, ref float64) string {
		if ref == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (cur-ref)/ref*100)
	}
	ok := true
	for _, bl := range base {
		r, found := measured[bl.Workload]
		if !found {
			fmt.Fprintf(&b, "bench: FAIL %s: in baseline but not measured\n", bl.Workload)
			ok = false
			continue
		}
		floor := bl.McyclesPerSec * (1 - maxRegress)
		ceil := bl.AllocsPerEvent*(1+maxAllocRegress) + allocAbsEpsilon
		verdict := "ok  "
		var why []string
		if r.McyclesPerSec < floor {
			why = append(why, fmt.Sprintf("throughput %.2f < floor %.2f", r.McyclesPerSec, floor))
		}
		if r.AllocsPerEvent > ceil {
			why = append(why, fmt.Sprintf("allocs/event %.4f > ceiling %.4f", r.AllocsPerEvent, ceil))
		}
		if len(why) > 0 {
			verdict = "FAIL"
			ok = false
		}
		fmt.Fprintf(&b, "bench: %s %-10s Mcycles/s %8.2f vs %8.2f (%s)  allocs/event %7.4f vs %7.4f (%s)  ns/event %7.1f vs %7.1f (%s)\n",
			verdict, bl.Workload,
			r.McyclesPerSec, bl.McyclesPerSec, pct(r.McyclesPerSec, bl.McyclesPerSec),
			r.AllocsPerEvent, bl.AllocsPerEvent, pct(r.AllocsPerEvent, bl.AllocsPerEvent),
			r.NsPerEvent, bl.NsPerEvent, pct(r.NsPerEvent, bl.NsPerEvent))
		for _, w := range why {
			fmt.Fprintf(&b, "bench:      %s: %s\n", bl.Workload, w)
		}
	}
	return b.String(), ok
}
