package udm

import (
	"testing"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
)

func TestPeekDoesNotConsume(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	var handled []uint64
	eps[1].On(1, func(e *Env, msg *Msg) { handled = append(handled, msg.Args[0]) })
	var peeked *Msg
	var peekedAgain *Msg
	job.Process(1).StartMain(func(tk *cpu.Task) {
		e := eps[1].Env(tk)
		e.BeginAtomic()
		for peeked == nil {
			tk.Spend(10)
			peeked = e.Peek()
		}
		peekedAgain = e.Peek() // still there: peek must not dequeue
		e.PollWait()           // now actually extract
		e.EndAtomic()
	})
	job.Process(0).StartMain(func(tk *cpu.Task) {
		eps[0].Env(tk).Inject(1, 1, 77)
	})
	m.RunUntilDone(0, job)
	if peeked == nil || peeked.Args[0] != 77 {
		t.Fatalf("peeked = %+v, want args [77]", peeked)
	}
	if peekedAgain == nil || peekedAgain.Args[0] != 77 {
		t.Error("second peek did not see the same message")
	}
	if len(handled) != 1 || handled[0] != 77 {
		t.Errorf("handled = %v, want [77]", handled)
	}
}

func TestPeekEmptyReturnsNil(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	var got *Msg = &Msg{}
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := eps[0].Env(tk)
		e.BeginAtomic()
		got = e.Peek()
		e.EndAtomic()
	})
	m.RunUntilDone(0, job)
	if got != nil {
		t.Errorf("Peek on empty queue = %+v, want nil", got)
	}
}

func TestPeekTransparentInBufferedMode(t *testing.T) {
	// Peek must read the buffered copy when the process is in buffered
	// mode, indistinguishably from the fast case. Force buffering through
	// revocation: the receiver holds an atomic section while the message
	// waits, the atomicity timer fires, and the kernel shifts delivery to
	// the software buffer — which the still-atomic thread then peeks.
	m, job, eps := testMachine(t, func(cfg *glaze.Config) {
		cfg.NIConfig.TimerPreset = 300
	})
	eps[1].On(1, func(e *Env, msg *Msg) {})
	var peeked *Msg
	job.Process(1).StartMain(func(tk *cpu.Task) {
		e := eps[1].Env(tk)
		e.BeginAtomic()
		tk.Spend(5000) // message arrives, sticks, timer revokes
		for peeked == nil {
			tk.Spend(10)
			peeked = e.Peek()
		}
		if peeked.Fast {
			t.Error("peek in buffered mode reported the fast path")
		}
		e.PollWait()
		e.EndAtomic()
	})
	job.Process(0).StartMain(func(tk *cpu.Task) {
		eps[0].Env(tk).Inject(1, 1, 5)
	})
	m.RunUntilDone(5_000_000, job)
	if peeked == nil || peeked.Args[0] != 5 {
		t.Fatalf("peeked = %+v, want args [5]", peeked)
	}
	if job.Process(1).Revocations != 1 {
		t.Errorf("revocations = %d, want 1", job.Process(1).Revocations)
	}
}

func TestHandlerToThreadConversion(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	var handlerDone, threadDone uint64
	done := NewCounter()
	eps[1].On(1, func(e *Env, msg *Msg) {
		// Minimal handler work, then hand off to a thread, as the UDM
		// model prescribes for anything long-running.
		arg := msg.Args[0]
		e.Spawn("worker", func(te *Env) {
			te.Spend(5000)
			threadDone = te.Now()
			te.Inject(0, 2, arg*2)
		})
		handlerDone = e.Now()
	})
	var reply uint64
	eps[0].On(2, func(e *Env, msg *Msg) {
		reply = msg.Args[0]
		done.Add(1)
	})
	job.Process(0).StartMain(func(tk *cpu.Task) {
		eps[0].Env(tk).Inject(1, 1, 21)
		done.WaitFor(tk, 1)
	})
	m.RunUntilDone(0, job)
	if reply != 42 {
		t.Fatalf("reply = %d, want 42", reply)
	}
	if threadDone <= handlerDone {
		t.Error("thread did not run after the handler completed")
	}
	if threadDone-handlerDone < 5000 {
		t.Errorf("thread work %d cycles, want >= 5000", threadDone-handlerDone)
	}
}

func TestSpawnedThreadSuspendsWithProcess(t *testing.T) {
	// A thread created by a handler obeys the gang schedule like any other
	// task of the process.
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	m := glaze.NewMachine(cfg)
	job := m.NewJob("spawn")
	null := m.NewJob("null")
	ep0 := Attach(job.Process(0))
	ep1 := Attach(job.Process(1))
	Attach(null.Process(0))
	Attach(null.Process(1))
	var ticks []uint64
	eps := NewCounter()
	ep1.On(1, func(e *Env, msg *Msg) {
		e.Spawn("ticker", func(te *Env) {
			for i := 0; i < 10; i++ {
				te.Spend(20_000)
				ticks = append(ticks, te.Now())
			}
			te.Inject(0, 2)
		})
	})
	ep0.On(2, func(e *Env, msg *Msg) { eps.Add(1) })
	job.Process(0).StartMain(func(tk *cpu.Task) {
		ep0.Env(tk).Inject(1, 1)
		eps.WaitFor(tk, 1)
	})
	m.NewGang(50_000, 0, job, null).Start()
	m.RunUntilDone(5_000_000, job)
	if len(ticks) != 10 {
		t.Fatalf("ticker ran %d/10 steps", len(ticks))
	}
	// 10 steps of 20k = 200k of work; with a 50% share the thread must have
	// been suspended across null quanta: wall time strictly exceeds work.
	if ticks[9]-ticks[0] < 250_000 {
		t.Errorf("thread wall span %d, want > 250k (suspended during null quanta)", ticks[9]-ticks[0])
	}
}
