package glaze

import (
	"fmt"

	"fugu/internal/cpu"
	"fugu/internal/delivery"
	"fugu/internal/metrics"
	"fugu/internal/nic"
	"fugu/internal/stats"
	"fugu/internal/vm"
)

// Process is the kernel's per-node state for one member of a gang-scheduled
// job: its tasks, its second-case message store, its address space, and the
// shadow copies of NI state swapped on context switches.
type Process struct {
	kern *Kernel
	job  *Job
	gid  nic.GID
	node int

	// Tasks. main runs the application; upcall is the message-handling
	// activity: the user-level interrupt in fast mode and the elevated
	// drain thread in buffered mode.
	main    *cpu.Task
	upcall  *cpu.Task
	upcallW *cpu.WaitQ
	extra   []*cpu.Task // threads spawned by the application

	// Upcall is installed by the user-level runtime (the udm package): it
	// delivers every message it can and returns. The kernel signals the
	// upcall task whenever deliverable work may exist.
	Upcall func(t *cpu.Task)

	// Mode state.
	upcallPending bool // a SignalUpcall has not yet been consumed
	buffered      bool // software-buffered delivery engaged
	atomicVirtual bool // revoked during a user atomic section: delivery
	// is deferred to the suspended thread until it ends its section.

	// NI state shadow (context switch).
	uacShadow  uint8
	descShadow []uint64

	scheduled bool // currently owns the node's NI (is the resident process)

	// Address space for ordinary data pages (handler page-fault modelling).
	Space *vm.Space

	// store is the delivery policy's second-case message store: the virtual
	// software buffer under two-case delivery, pinned flipped pages under
	// zero-copy remap, the descriptor ring under kernel bypass.
	store delivery.Store

	// Overflow control: while throttled, the process's sends stall.
	// overflowSeen is the highest suspend/resume sequence applied here;
	// older broadcasts still in flight are discarded as stale.
	throttled    bool
	overflowSeen uint64
	throttleW    *cpu.WaitQ

	// Statistics.
	Deliv           stats.Delivery
	Revocations     uint64 // atomicity timeouts against this process
	FaultsInHandler uint64

	// Delivery instruments, bound to the node registry (shared across the
	// node's processes — the registry aggregates per node).
	mFast        *metrics.Counter
	mBuffered    *metrics.Counter
	mLatFast     *metrics.Histogram
	mLatBuffered *metrics.Histogram
	mBufPages    *metrics.Gauge
}

func newProcess(k *Kernel, job *Job, gid nic.GID) *Process {
	p := &Process{
		kern:      k,
		job:       job,
		gid:       gid,
		node:      k.node,
		upcallW:   cpu.NewWaitQ("upcall"),
		throttleW: cpu.NewWaitQ("throttle"),
		Space:     vm.NewSpace(k.frames),
		store: k.m.policy.NewStore(k.frames, delivery.Params{
			Costs: delivery.Costs{
				InsertMin:     k.cost.BufferInsertMin,
				InsertVMAlloc: k.cost.BufferInsertVMAlloc,
				ExtraInsert:   k.cost.ExtraBufferCost,
				PageOut:       k.cost.PageOut,
				PageIn:        k.cost.PageIn,
				Remap:         k.cost.RemapCost,
				RemapRelease:  k.cost.RemapReleaseCost,
			},
			NoReclaim: k.m.noReclaim,
		}),
	}
	p.mFast = k.reg.Counter("glaze.deliver.fast")
	p.mBuffered = k.reg.Counter("glaze.deliver.buffered")
	p.mLatFast = k.reg.Histogram("glaze.deliver.latency.fast")
	p.mLatBuffered = k.reg.Histogram("glaze.deliver.latency.buffered")
	p.mBufPages = k.reg.Gauge("glaze.buffer.pages")
	p.upcall = k.cpu.NewTask(
		fmt.Sprintf("%s.%d.upcall", job.name, k.node),
		cpu.PrioHandler, cpu.DomainUser,
		func(t *cpu.Task) {
			for {
				// Level-triggered: consume the pending mark before
				// delivering, and only sleep once no signal remains, so a
				// signal raised while the task was running (or before it
				// ever reached the wait queue) is never lost.
				for p.upcallPending {
					p.upcallPending = false
					if p.Upcall != nil {
						p.Upcall(t)
					}
				}
				p.upcallW.Wait(t)
			}
		})
	p.upcall.Suspend() // runs only while the process is scheduled
	if k.m.alwaysBuffered {
		p.buffered = true
	}
	return p
}

// Job returns the job this process belongs to.
func (p *Process) Job() *Job { return p.job }

// GID returns the process's group identifier.
func (p *Process) GID() nic.GID { return p.gid }

// Node returns the node this process runs on.
func (p *Process) Node() int { return p.node }

// Kernel returns the node kernel managing this process.
func (p *Process) Kernel() *Kernel { return p.kern }

// NI returns the node's network interface. User-level code accesses it
// directly in the fast case — that is the whole point of the paper.
func (p *Process) NI() *nic.NI { return p.kern.ni }

// Metrics returns the node's instrument registry, so higher layers (udm,
// crl) can bind their own named instruments next to the kernel's.
func (p *Process) Metrics() *metrics.Registry { return p.kern.reg }

// CountDelivery tallies one delivered message on the given path, updating
// both the legacy Deliv counters and the named node instruments
// ("glaze.deliver.fast" / "glaze.deliver.buffered").
func (p *Process) CountDelivery(fast bool) {
	if fast {
		p.Deliv.Fast++
		p.mFast.Inc()
	} else {
		p.Deliv.Buffered++
		p.mBuffered.Inc()
	}
}

// ObserveLatency records one message's injection-to-disposal latency into
// the per-path end-to-end histogram.
func (p *Process) ObserveLatency(fast bool, cycles uint64) {
	if fast {
		p.mLatFast.Observe(cycles)
	} else {
		p.mLatBuffered.Observe(cycles)
	}
}

// HeadSentAt returns the injection time of the message an extract would
// read — from the NI's head packet in direct mode, from the buffer metadata
// in buffered mode. ok is false with no message pending.
func (p *Process) HeadSentAt() (at uint64, ok bool) {
	if p.buffered || p.kern.hwDemux {
		return p.store.HeadSentAt()
	}
	if pkt := p.kern.ni.HeadPacket(); pkt != nil {
		return pkt.SentAt, true
	}
	return 0, false
}

// HeadID returns the packet ID of the message an extract would read —
// the NI head in direct mode, the buffer head in buffered mode. ok is
// false with no message pending.
func (p *Process) HeadID() (id uint64, ok bool) {
	if p.buffered || p.kern.hwDemux {
		return p.store.HeadID()
	}
	if pkt := p.kern.ni.HeadPacket(); pkt != nil {
		return pkt.ID, true
	}
	return 0, false
}

// Buffered reports whether the process is in software-buffered mode.
func (p *Process) Buffered() bool { return p.buffered }

// Scheduled reports whether the process currently owns the node.
func (p *Process) Scheduled() bool { return p.scheduled }

// BufferPagesHighWater reports the most physical pages the process's
// second-case store ever consumed on this node.
func (p *Process) BufferPagesHighWater() int { return p.store.PagesHighWater() }

// BufferPending reports unconsumed messages in the second-case store.
func (p *Process) BufferPending() int { return p.store.Pending() }

// Store exposes the process's second-case message store (tests, harness).
func (p *Process) Store() delivery.Store { return p.store }

// UpcallConsumed reports total cycles spent by the message-handling
// activity (upcalls and buffered drains).
func (p *Process) UpcallConsumed() uint64 { return p.upcall.Consumed() }

// BufferVMAllocs reports how many inserts escaped the cheap case: demand
// page allocations for the virtual buffer, copy fallbacks for zero-copy.
func (p *Process) BufferVMAllocs() uint64 { return p.store.VMAllocs() }

// StartMain creates the application's main user thread. It begins suspended
// and runs only while the gang scheduler has the process resident.
func (p *Process) StartMain(fn func(t *cpu.Task)) {
	if p.main != nil {
		panic("glaze: StartMain called twice")
	}
	if p.job.mains == 0 {
		p.job.started = p.job.m.Eng.Now()
	}
	p.job.mains++
	p.main = p.kern.cpu.NewTask(
		fmt.Sprintf("%s.%d.main", p.job.name, p.node),
		cpu.PrioUser, cpu.DomainUser,
		func(t *cpu.Task) {
			fn(t)
			p.job.mainDone(p)
		})
	if !p.scheduled {
		p.main.Suspend()
	}
}

// SpawnThread creates an additional user thread for the process (message
// handlers may hand work off to threads in the UDM model).
func (p *Process) SpawnThread(name string, fn func(t *cpu.Task)) *cpu.Task {
	t := p.kern.cpu.NewTask(
		fmt.Sprintf("%s.%d.%s", p.job.name, p.node, name),
		cpu.PrioUser, cpu.DomainUser, fn)
	if !p.scheduled {
		t.Suspend()
	}
	p.extra = append(p.extra, t)
	return t
}

// SignalUpcall wakes the message-handling activity. The kernel calls it on
// message-available interrupts, buffer inserts and mode transitions; it is
// idempotent and level-triggered (a signal raised while the activity is
// busy is remembered).
func (p *Process) SignalUpcall() {
	p.upcallPending = true
	if p.upcallW.Len() > 0 {
		p.upcallW.WakeOne()
	}
}

// CanDeliverFast reports whether the message-handling activity may take a
// message on the direct path: resident, direct mode, matching head. Under a
// hardware-demultiplexing policy "direct" means the process's own ring has
// work — the NI already sorted it, and the kernel never touched it.
func (p *Process) CanDeliverFast() bool {
	if !p.scheduled || p.buffered {
		return false
	}
	if p.kern.hwDemux {
		return !p.store.Empty()
	}
	return p.kern.ni.MessageAvailable()
}

// CanDeliverBuffered reports whether the message-handling activity may
// deliver buffered messages: resident, buffered mode, work pending, and no
// open atomic section — neither a section suspended at revocation time
// (atomicVirtual) nor one the user currently holds through the UAC (a
// polling thread reads the buffer itself; delivering over its head would
// break atomicity).
func (p *Process) CanDeliverBuffered() bool {
	return p.scheduled && p.buffered && !p.atomicVirtual && !p.store.Empty() &&
		p.kern.ni.UAC()&nic.UACInterruptDisable == 0
}

// HaveMessage reports whether an extract by the *owning thread* would
// succeed — the user-visible message-available flag under transparent
// access: the NI flag in direct mode, buffer occupancy in buffered mode.
// Unlike CanDeliverBuffered this ignores virtual atomicity, because the
// thread that holds the suspended section is exactly the one polling.
func (p *Process) HaveMessage() bool {
	if !p.scheduled {
		return false
	}
	if p.buffered || p.kern.hwDemux {
		return !p.store.Empty()
	}
	return p.kern.ni.MessageAvailable()
}

// MsgLen returns the length in words of the current head message through
// the transparent-access indirection (NI window or store copy).
func (p *Process) MsgLen() int {
	if p.buffered || p.kern.hwDemux {
		return p.store.HeadLen()
	}
	return p.kern.ni.HeadLen()
}

// MsgWord reads word i of the current head message through the
// transparent-access indirection.
func (p *Process) MsgWord(i int) uint64 {
	if p.buffered || p.kern.hwDemux {
		return p.store.HeadWord(i)
	}
	return p.kern.ni.ReadWord(i)
}

// AtomicVirtual reports whether a revoked atomic section is still open.
func (p *Process) AtomicVirtual() bool { return p.atomicVirtual }

// Throttled reports whether overflow control has stalled this process's
// sends.
func (p *Process) Throttled() bool { return p.throttled }

// WaitThrottle blocks the calling task until overflow control releases the
// process.
func (p *Process) WaitThrottle(t *cpu.Task) {
	for p.throttled {
		p.throttleW.Wait(t)
	}
}

// Tasks returns the process's tasks (main, upcall, spawned threads) for
// diagnostics.
func (p *Process) Tasks() []*cpu.Task { return p.tasks() }

// tasks iterates the process's tasks.
func (p *Process) tasks() []*cpu.Task {
	ts := make([]*cpu.Task, 0, 2+len(p.extra))
	if p.main != nil {
		ts = append(ts, p.main)
	}
	ts = append(ts, p.upcall)
	ts = append(ts, p.extra...)
	return ts
}

func (p *Process) suspendTasks() {
	for _, t := range p.tasks() {
		if !t.Done() {
			t.Suspend()
		}
	}
}

func (p *Process) resumeTasks() {
	for _, t := range p.tasks() {
		if !t.Done() {
			t.Resume()
		}
	}
}

// Job is a gang-scheduled parallel application: one process per node, all
// sharing a GID.
type Job struct {
	m       *Machine
	name    string
	gid     nic.GID
	procs   []*Process
	mains   int // processes whose main thread has been started
	done    int // main threads finished
	doneAt  uint64
	onDone  []func()
	started uint64 // time of first StartMain

	// Tag is free for higher layers (the application rig attaches itself
	// so the harness can reach per-endpoint statistics).
	Tag any

	// Overflow control state (global, mirrors the paper's scheduler
	// server view of the job). overflowSeq orders the suspend/resume
	// broadcasts: trips on different nodes race on the OS network, and a
	// stale suspend landing after the final resume would otherwise leave a
	// process throttled forever (see Kernel.osISR).
	overflowed  bool
	overflowSeq uint64
}

// Name returns the job's name.
func (j *Job) Name() string { return j.name }

// GID returns the job's group identifier.
func (j *Job) GID() nic.GID { return j.gid }

// Process returns the job's process on a node.
func (j *Job) Process(node int) *Process { return j.procs[node] }

// Procs returns all per-node processes.
func (j *Job) Procs() []*Process { return j.procs }

// Done reports whether every started main thread has finished.
func (j *Job) Done() bool { return j.mains > 0 && j.done == j.mains }

// DoneAt returns the completion time (valid once Done).
func (j *Job) DoneAt() uint64 { return j.doneAt }

// OnDone registers a completion callback.
func (j *Job) OnDone(fn func()) { j.onDone = append(j.onDone, fn) }

func (j *Job) mainDone(p *Process) {
	j.done++
	if j.Done() {
		j.doneAt = j.m.Eng.Now()
		for _, fn := range j.onDone {
			fn()
		}
	}
}

// Delivery aggregates per-path delivery counts across the job's processes.
func (j *Job) Delivery() stats.Delivery {
	var d stats.Delivery
	for _, p := range j.procs {
		d.Add(p.Deliv)
	}
	return d
}

// MaxBufferPages returns the largest buffer-page high water across nodes —
// the "physical pages required" metric of Section 5.1.
func (j *Job) MaxBufferPages() int {
	max := 0
	for _, p := range j.procs {
		if hw := p.BufferPagesHighWater(); hw > max {
			max = hw
		}
	}
	return max
}
