// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a global event queue ordered by (time, sequence) and a set
// of coroutines (Proc) that run one at a time under a strict baton: at any
// instant either the engine loop or exactly one Proc is executing. Given the
// same inputs and seed, a simulation is bit-reproducible, which the
// experiment harness relies on.
package sim

import "container/heap"

// Event is a scheduled callback. Events are created with Engine.Schedule and
// may be cancelled before they fire. The zero value is not a valid Event.
type Event struct {
	at        uint64
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped or removed
}

// Time returns the simulation time at which the event is scheduled to fire.
func (ev *Event) Time() uint64 { return ev.at }

// Cancelled reports whether Cancel has been called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Pending reports whether the event is still queued and will fire.
func (ev *Event) Pending() bool { return !ev.cancelled && ev.index >= 0 }

// eventHeap is a min-heap of events ordered by (at, seq). The seq tiebreak
// makes pop order — and therefore the whole simulation — deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// remove deletes the event at index i in O(log n).
func (h *eventHeap) remove(i int) {
	heap.Remove(h, i)
}
