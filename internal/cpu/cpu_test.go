package cpu

import (
	"testing"

	"fugu/internal/sim"
)

func TestSpendAccountsTime(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var end uint64
	c.NewTask("t", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(100)
		tk.Spend(50)
		end = tk.Now()
	})
	e.Run()
	if end != 150 {
		t.Errorf("task finished at %d, want 150", end)
	}
	if got := c.SpentCycles(DomainUser); got != 150 {
		t.Errorf("user cycles = %d, want 150", got)
	}
}

func TestTwoTasksSerialize(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var aEnd, bEnd uint64
	c.NewTask("a", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(100)
		aEnd = tk.Now()
	})
	c.NewTask("b", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(100)
		bEnd = tk.Now()
	})
	e.Run()
	if aEnd != 100 || bEnd != 200 {
		t.Errorf("aEnd=%d bEnd=%d, want 100 and 200 (same CPU serializes)", aEnd, bEnd)
	}
}

func TestPriorityOrder(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var order []string
	// Created low first, but high must run first once both are ready.
	// Use a gate so both are enqueued before either runs: tasks are created
	// from event context at t=0 in creation order; kernel outranks user.
	c.NewTask("low", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(10)
		order = append(order, "low")
	})
	c.NewTask("high", PrioKernel, DomainKernel, func(tk *Task) {
		tk.Spend(10)
		order = append(order, "high")
	})
	e.Run()
	// "low" is granted at creation (CPU free), then "high" preempts it at
	// its first Spend boundary... low is mid-spend parked, so active
	// preemption applies: high runs 0-10, low finishes its balance after.
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Errorf("order = %v, want [high low]", order)
	}
}

func TestPreemptionPreservesBalance(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var lowEnd, highStart, highEnd uint64
	c.NewTask("low", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(100)
		lowEnd = tk.Now()
	})
	e.Schedule(30, func() {
		c.NewTask("high", PrioKernel, DomainKernel, func(tk *Task) {
			highStart = tk.Now()
			tk.Spend(40)
			highEnd = tk.Now()
		})
	})
	e.Run()
	if highStart != 30 || highEnd != 70 {
		t.Errorf("high ran %d-%d, want 30-70", highStart, highEnd)
	}
	// low: 30 cycles before preemption + 70 after resuming at t=70.
	if lowEnd != 140 {
		t.Errorf("low finished at %d, want 140 (30+40+70)", lowEnd)
	}
	if got := c.SpentCycles(DomainUser); got != 100 {
		t.Errorf("user cycles = %d, want 100", got)
	}
	if got := c.SpentCycles(DomainKernel); got != 40 {
		t.Errorf("kernel cycles = %d, want 40", got)
	}
}

func TestNestedPreemption(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var ends = map[string]uint64{}
	c.NewTask("user", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(100)
		ends["user"] = tk.Now()
	})
	e.Schedule(10, func() {
		c.NewTask("kernel", PrioKernel, DomainKernel, func(tk *Task) {
			tk.Spend(50)
			ends["kernel"] = tk.Now()
		})
	})
	e.Schedule(20, func() {
		c.NewTask("isr", PrioISR, DomainKernel, func(tk *Task) {
			tk.Spend(5)
			ends["isr"] = tk.Now()
		})
	})
	e.Run()
	if ends["isr"] != 25 {
		t.Errorf("isr end = %d, want 25", ends["isr"])
	}
	if ends["kernel"] != 65 { // 10 cycles done by 20, 40 remaining after isr at 25
		t.Errorf("kernel end = %d, want 65", ends["kernel"])
	}
	if ends["user"] != 155 { // 10 done, 90 remaining, resumes at 65
		t.Errorf("user end = %d, want 155", ends["user"])
	}
}

func TestISRNotPreempted(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var order []string
	irq1 := c.NewIRQ("one", func(tk *Task) {
		tk.Spend(50)
		order = append(order, "one")
	})
	irq2 := c.NewIRQ("two", func(tk *Task) {
		tk.Spend(5)
		order = append(order, "two")
	})
	e.Schedule(10, func() { irq1.Raise() })
	e.Schedule(20, func() { irq2.Raise() }) // arrives while irq1 handler runs
	e.Run()
	if len(order) != 2 || order[0] != "one" || order[1] != "two" {
		t.Errorf("order = %v, want [one two] (ISR runs to completion)", order)
	}
}

func TestIRQPreemptsUser(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var isrAt, userEnd uint64
	irq := c.NewIRQ("msg", func(tk *Task) {
		isrAt = tk.Now()
		tk.Spend(7)
	})
	c.NewTask("user", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(100)
		userEnd = tk.Now()
	})
	e.Schedule(40, func() { irq.Raise() })
	e.Run()
	if isrAt != 40 {
		t.Errorf("ISR ran at %d, want 40", isrAt)
	}
	if userEnd != 107 {
		t.Errorf("user end = %d, want 107", userEnd)
	}
}

func TestIRQCounting(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	count := 0
	irq := c.NewIRQ("v", func(tk *Task) {
		count++
		tk.Spend(3)
	})
	e.Schedule(10, func() { irq.Raise(); irq.Raise(); irq.Raise() })
	e.Run()
	if count != 3 {
		t.Errorf("handler ran %d times, want 3", count)
	}
	if irq.Raised() != 3 {
		t.Errorf("Raised = %d, want 3", irq.Raised())
	}
}

func TestIRQMasking(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var times []uint64
	irq := c.NewIRQ("v", func(tk *Task) {
		times = append(times, tk.Now())
	})
	e.Schedule(10, func() { irq.Mask() })
	e.Schedule(20, func() { irq.Raise() })
	e.Schedule(30, func() {
		if irq.Pending() != 1 {
			t.Errorf("pending = %d while masked, want 1", irq.Pending())
		}
		irq.Unmask()
	})
	e.Run()
	if len(times) != 1 || times[0] != 30 {
		t.Errorf("handler times = %v, want [30]", times)
	}
}

func TestRaiseFromTaskContext(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var isrAt, userMid, userEnd uint64
	irq := c.NewIRQ("v", func(tk *Task) {
		isrAt = tk.Now()
		tk.Spend(10)
	})
	c.NewTask("user", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(20)
		irq.Raise() // from task context: takes effect at next Spend boundary
		userMid = tk.Now()
		tk.Spend(30)
		userEnd = tk.Now()
	})
	e.Run()
	if userMid != 20 {
		t.Errorf("userMid = %d, want 20 (raise itself is instant)", userMid)
	}
	if isrAt != 20 {
		t.Errorf("ISR at %d, want 20 (next boundary)", isrAt)
	}
	if userEnd != 60 {
		t.Errorf("userEnd = %d, want 60", userEnd)
	}
}

func TestBlockUnblock(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	q := NewWaitQ("q")
	var consumerGot uint64
	c.NewTask("consumer", PrioUser, DomainUser, func(tk *Task) {
		q.Wait(tk)
		consumerGot = tk.Now()
	})
	c.NewTask("producer", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(100)
		q.WakeOne()
		tk.Spend(50)
	})
	e.Run()
	if consumerGot != 150 {
		// consumer is unblocked at 100 but same-priority producer keeps
		// the CPU until it finishes at 150.
		t.Errorf("consumer resumed at %d, want 150", consumerGot)
	}
}

func TestHigherPriorityUnblockPreempts(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	q := NewWaitQ("q")
	var handlerAt, userEnd uint64
	c.NewTask("handler", PrioHandler, DomainUser, func(tk *Task) {
		q.Wait(tk)
		handlerAt = tk.Now()
		tk.Spend(10)
	})
	c.NewTask("user", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(20)
		q.WakeOne() // readies a higher-priority task from task context
		tk.Spend(30)
		userEnd = tk.Now()
	})
	e.Run()
	if handlerAt != 20 {
		t.Errorf("handler at %d, want 20", handlerAt)
	}
	if userEnd != 60 {
		t.Errorf("user end = %d, want 60", userEnd)
	}
}

func TestWaitQFIFOAndWakeAll(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	q := NewWaitQ("q")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		c.NewTask("w", PrioUser, DomainUser, func(tk *Task) {
			q.Wait(tk)
			order = append(order, i)
		})
	}
	e.Schedule(10, func() {
		if q.Len() != 3 {
			t.Errorf("Len = %d, want 3", q.Len())
		}
		if n := q.WakeAll(); n != 3 {
			t.Errorf("WakeAll = %d, want 3", n)
		}
	})
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
}

func TestSetPriorityOnReadyTask(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var order []string
	a := c.NewTask("a", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(10)
		order = append(order, "a")
	})
	c.NewTask("b", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(10)
		order = append(order, "b")
	})
	c.NewTask("c", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(10)
		order = append(order, "c")
	})
	_ = a
	e.Schedule(1, func() {
		// a is running; b, c are ready. Promote c above b.
		for _, q := range c.ready[PrioUser] {
			if q.Name() == "c" {
				q.SetPriority(PrioHandler)
			}
		}
	})
	e.Run()
	want := []string{"c", "a", "b"} // c preempts a at t=1; a resumes; then b
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunListener(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	type change struct {
		at         uint64
		prev, next string
	}
	var log []change
	name := func(t *Task) string {
		if t == nil {
			return "-"
		}
		return t.Name()
	}
	c.AddRunListener(runListenerFunc(func(now uint64, prev, next *Task) {
		log = append(log, change{now, name(prev), name(next)})
	}))
	c.NewTask("t", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(10)
	})
	e.Run()
	if len(log) != 2 {
		t.Fatalf("got %d transitions, want 2: %v", len(log), log)
	}
	if log[0].next != "t" || log[1].prev != "t" || log[1].next != "-" {
		t.Errorf("transitions = %v", log)
	}
	if log[1].at != 10 {
		t.Errorf("release at %d, want 10", log[1].at)
	}
}

type runListenerFunc func(now uint64, prev, next *Task)

func (f runListenerFunc) RunChange(now uint64, prev, next *Task) { f(now, prev, next) }

func TestCPUIdleAndCounts(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	if !c.Idle() {
		t.Error("fresh CPU not idle")
	}
	c.NewTask("t", PrioUser, DomainUser, func(tk *Task) { tk.Spend(5) })
	e.Run()
	if !c.Idle() {
		t.Error("CPU not idle after all tasks done")
	}
}

func TestSpendZeroIsPreemptionPoint(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var order []string
	irq := c.NewIRQ("v", func(tk *Task) { order = append(order, "isr") })
	c.NewTask("user", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(10)
		irq.Raise()
		tk.Spend(0)
		order = append(order, "user")
	})
	e.Run()
	if len(order) != 2 || order[0] != "isr" || order[1] != "user" {
		t.Errorf("order = %v, want [isr user]", order)
	}
}

func TestManyTasksDeterministic(t *testing.T) {
	run := func() []string {
		e := sim.NewEngine(99)
		c := New(e, "cpu0")
		var order []string
		for i := 0; i < 20; i++ {
			i := i
			c.NewTask("t", PrioUser, DomainUser, func(tk *Task) {
				tk.Spend(uint64(e.Rand().Uint64n(50) + 1))
				order = append(order, string(rune('a'+i)))
			})
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a, b)
		}
	}
}
