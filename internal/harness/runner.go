package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"sync"

	"fugu/internal/metrics"
	"fugu/internal/telemetry"
)

// MetricsCarrier is implemented by point results that carry a registry
// snapshot (RunStats does); the Runner merges these for its OnMetrics hook.
type MetricsCarrier interface {
	MetricsSnapshot() metrics.Snapshot
}

// TimelineCarrier is implemented by point results that carry a flight-
// recorder timeline (RunStats does when sampling is enabled); the Runner
// feeds these to its OnTimeline hook.
type TimelineCarrier interface {
	TimelineData() telemetry.Timeline
}

// Progress reports one completed point to the Runner's callback.
type Progress struct {
	Experiment string
	Done       int // points completed so far, including this one
	Total      int // points in the sweep
	Label      string
	Err        error // non-nil if the point failed or panicked
}

// Runner executes an experiment's points on a worker pool. Sweep points and
// trials fan out across Options.Parallelism workers (GOMAXPROCS by
// default); results are keyed by point index so the assembled result is
// identical whatever the worker count or completion order. A panicking
// point is captured as that point's error without killing sibling workers,
// and cancelling the context stops the sweep promptly (no new points are
// started; in-flight simulation points run to completion).
type Runner struct {
	// Progress, if non-nil, is called after every point completes. Calls
	// are serialized; the callback need not lock.
	Progress func(Progress)
	// OnMetrics, if non-nil, is called once after a fully successful sweep
	// with every point's registry snapshot merged in point-index order.
	// Merging is commutative (sums and maxima), so the aggregate is
	// bit-identical whatever the worker count.
	OnMetrics func(metrics.Snapshot)
	// OnTimeline, if non-nil, is called after a fully successful sweep for
	// every point whose result carries a non-empty telemetry timeline, in
	// point-index order — so exported timelines are byte-identical
	// whatever the worker count.
	OnTimeline func(point int, label string, tl telemetry.Timeline)
}

// Run enumerates, executes and assembles one experiment.
func (r *Runner) Run(ctx context.Context, exp *Experiment, opts ...Option) (Result, error) {
	opt := NewOptions(opts...)
	points := exp.Points(opt)
	results := make([]any, len(points))
	errs := make([]error, len(points))

	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range points {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes progress callbacks and the done counter
		done int
	)
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					return
				}
				// Label the goroutine so host CPU/heap profiles attribute
				// samples to the experiment and sweep point being simulated.
				pprof.Do(ctx, pprof.Labels("experiment", exp.Name, "point", points[i].Label),
					func(ctx context.Context) {
						results[i], errs[i] = runPoint(ctx, opt, points[i])
					})
				if r.Progress != nil {
					mu.Lock()
					done++
					r.Progress(Progress{
						Experiment: exp.Name,
						Done:       done,
						Total:      len(points),
						Label:      points[i].Label,
						Err:        errs[i],
					})
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("%s point %d (%s): %w", exp.Name, i, points[i].Label, err))
		}
	}
	if len(failed) > 0 {
		return nil, errors.Join(failed...)
	}
	if r.OnMetrics != nil {
		parts := make([]metrics.Snapshot, 0, len(results))
		for _, res := range results {
			if c, ok := res.(MetricsCarrier); ok {
				parts = append(parts, c.MetricsSnapshot())
			}
		}
		r.OnMetrics(metrics.Merge(parts...))
	}
	if r.OnTimeline != nil {
		for i, res := range results {
			if c, ok := res.(TimelineCarrier); ok {
				if tl := c.TimelineData(); !tl.Empty() {
					r.OnTimeline(i, points[i].Label, tl)
				}
			}
		}
	}
	return exp.Assemble(opt, results)
}

// runPoint executes one point, converting a panic into that point's error.
func runPoint(ctx context.Context, opt Options, p Point) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return p.Run(ctx, opt)
}
