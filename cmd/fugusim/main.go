// Command fugusim regenerates the tables and figures of "Exploiting
// Two-Case Delivery for Fast Protected Messaging" (HPCA 1998) on the
// simulated FUGU machine.
//
// Usage:
//
//	fugusim [-full] [-trials N] [-seed S] table4|table5|table6|fig7|fig8|fig9|fig10|all
//
// Quick mode (default) scales workloads down so the whole suite runs in
// minutes; -full uses the paper's sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fugu/internal/harness"
)

func main() {
	full := flag.Bool("full", false, "run the paper-scale workloads (slow)")
	trials := flag.Int("trials", 0, "trials per data point (default: 1 quick, 3 full)")
	seed := flag.Uint64("seed", 1, "base random seed")
	csvDir := flag.String("csv", "", "also write experiment data as CSV files into this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fugusim [flags] table4|table5|table6|fig7|fig8|fig9|fig10|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	opt := harness.QuickOptions()
	if *full {
		opt = harness.DefaultOptions()
	}
	if *trials > 0 {
		opt.Trials = *trials
	}
	opt.Seed = *seed

	run := func(name string, fn func()) {
		start := time.Now()
		fmt.Printf("== %s ==\n", name)
		fn()
		fmt.Printf("(%s took %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	saveCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := harness.WriteCSV(*csvDir, name, content); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			os.Exit(1)
		}
	}
	experiments := map[string]func(){
		"table4": func() { harness.Table4().Print(os.Stdout) },
		"table5": func() { harness.Table5().Print(os.Stdout) },
		"table6": func() {
			r := harness.Table6(opt)
			r.Print(os.Stdout)
			saveCSV("table6.csv", r.CSV())
		},
		"fig7": func() {
			r := harness.Fig7and8(opt)
			r.Print7(os.Stdout)
			saveCSV("fig7.csv", r.CSV7())
		},
		"fig8": func() {
			r := harness.Fig7and8(opt)
			r.Print8(os.Stdout)
			saveCSV("fig8.csv", r.CSV8())
		},
		"fig9": func() {
			r := harness.Fig9(opt)
			r.Print(os.Stdout)
			saveCSV("fig9.csv", r.CSV())
		},
		"fig10": func() {
			r := harness.Fig10(opt)
			r.Print(os.Stdout)
			saveCSV("fig10.csv", r.CSV())
		},
	}

	switch what := flag.Arg(0); what {
	case "all":
		run("table4", experiments["table4"])
		run("table5", experiments["table5"])
		run("table6", experiments["table6"])
		// Figures 7 and 8 share their sweep; run it once.
		run("fig7+fig8", func() {
			r := harness.Fig7and8(opt)
			r.Print7(os.Stdout)
			r.Print8(os.Stdout)
			saveCSV("fig7.csv", r.CSV7())
			saveCSV("fig8.csv", r.CSV8())
		})
		run("fig9", experiments["fig9"])
		run("fig10", experiments["fig10"])
	default:
		fn, ok := experiments[what]
		if !ok {
			flag.Usage()
			os.Exit(2)
		}
		run(what, fn)
	}
}
