// Package mesh models the FUGU interconnect: a 2-D mesh carrying two
// independent logical networks — the main user/data network and the reserved
// operating-system network the paper relies on for a deadlock-free path to
// backing store (implemented in the UCU as a bit-serial network).
//
// The model is deliberately at the level the paper's experiments need:
// deterministic per-pair in-order delivery, dimension-ordered hop latency,
// per-word serialization, and receiver backpressure (a full NI input queue
// leaves packets queued in the network, which is exactly the condition the
// atomicity-timeout mechanism exists to police). Router microarchitecture is
// out of scope (see DESIGN.md).
package mesh

import (
	"fmt"

	"fugu/internal/faultinject"
	"fugu/internal/metrics"
	"fugu/internal/sim"
	"fugu/internal/spans"
)

// Class selects one of the two logical networks.
type Class int

// Logical networks.
const (
	Main Class = iota // user messages
	OS                // reserved kernel network (paging, overflow control)
	numClasses
)

func (c Class) String() string {
	if c == Main {
		return "main"
	}
	return "os"
}

// Packet is one message in flight. Words[0] is the routing header written by
// the sender's NI (destination and GID stamp); Words[1] is the handler
// address; the rest is payload.
type Packet struct {
	ID    uint64 // global injection sequence number
	Src   int
	Dst   int
	Class Class
	Words []uint64

	SentAt    uint64 // injection time
	ArrivedAt uint64 // time the packet reached the destination port

	// FaultMismatch marks a packet whose GID the receiving NI must treat
	// as mismatched regardless of the stamp (deterministic fault
	// injection); the kernel still demultiplexes it by its real header.
	FaultMismatch bool
}

// Len returns the packet length in words.
func (p *Packet) Len() int { return len(p.Words) }

// Endpoint receives packets at a node. Arrive must not consume simulated
// time; it returns false to refuse the packet (input queue full), in which
// case the network holds it and re-offers after NotifySpace.
type Endpoint interface {
	Arrive(pkt *Packet) bool
}

// LatencyModel gives the fixed delivery cost of a packet.
type LatencyModel struct {
	Base    uint64 // router pipeline + launch-to-head latency
	PerHop  uint64 // per mesh hop
	PerWord uint64 // serialization per word
}

// DefaultLatency roughly matches Alewife's network: a handful of cycles of
// base latency plus small per-hop and per-word costs.
func DefaultLatency() LatencyModel {
	return LatencyModel{Base: 10, PerHop: 2, PerWord: 1}
}

// Delay computes the latency for a packet of n words over h hops.
func (m LatencyModel) Delay(h, n int) uint64 {
	return m.Base + m.PerHop*uint64(h) + m.PerWord*uint64(n)
}

// Stats aggregates per-network traffic counters.
type Stats struct {
	Packets uint64
	Words   uint64
	Refused uint64 // Arrive rejections (backpressure events)
}

// Net is the interconnect for a machine of W×H nodes.
type Net struct {
	eng       *sim.Engine
	w, h      int
	lat       LatencyModel
	nextID    uint64
	deliverFn func(any) // n.deliver bound once; Send schedules it with the packet as arg

	// engs maps each node to its partition engine, nil when the whole mesh
	// lives on one engine. parallel is set when those engines belong to a
	// parallel group: injections then route through the conservative
	// staging protocol and per-node ID lanes (see ShardEngines).
	engs     []*sim.Engine
	parallel bool
	// ids are the per-node injection counters used instead of nextID in
	// parallel mode (a shared counter would race and make IDs depend on
	// worker interleaving). The source index in the high bits keeps IDs
	// globally unique and deterministic.
	ids []uint64

	endpoints [numClasses][]Endpoint
	// blocked packets per (class, dst), FIFO in arrival order.
	blocked [numClasses][][]*Packet
	// lastArrive enforces per-(src,dst) FIFO: a short packet must not
	// overtake an earlier long one on the same route (packets follow the
	// same path and cannot reorder in a wormhole mesh). Indexed src*n+dst.
	lastArrive [numClasses][]uint64
	// stats are kept in per-node lanes — Packets/Words owned by the
	// sender, Refused by the receiver — so parallel partitions never write
	// the same word; StatsFor sums them.
	stats [numClasses][]Stats
	// pool recycles packets per node: Acquire pops the node's free list,
	// Release pushes it. Per-node lists keep the pool partition-clean (a
	// node only ever touches its own lane from its own engine).
	pool [][]*Packet

	// Metrics instruments, nil (no-op) unless UseMetrics is called.
	mPackets [numClasses]*metrics.Counter
	mWords   [numClasses]*metrics.Counter
	mRefused [numClasses]*metrics.Counter
	mBlocked *metrics.Gauge // packets parked in-network (link back-pressure)

	// rec observes message lifecycles, nil (no-op) unless UseSpans is called.
	rec *spans.Recorder

	// inj adds fault-plan latency to main-network sends, nil (no-op)
	// unless UseFaults is called.
	inj *faultinject.Injector
}

// UseSpans installs a lifecycle recorder: every Send begins a span and
// arrival/backpressure transitions are recorded against the packet ID.
func (n *Net) UseSpans(rec *spans.Recorder) { n.rec = rec }

// UseFaults installs a fault injector: main-network sends pick up link-stall
// and hot-spot delays from the plan. The OS network is never delayed — its
// deadlock-free guarantee is what overflow control and paging stand on.
func (n *Net) UseFaults(inj *faultinject.Injector) { n.inj = inj }

// UseMetrics binds the network's instruments into a registry: per-class
// traffic counters ("mesh.<class>.packets", ".words", ".refused") and a
// "mesh.blocked" gauge tracking packets held in the network by receiver
// back-pressure — its Max is the worst instantaneous congestion, the mesh
// link-utilization signal the overflow experiments care about.
func (n *Net) UseMetrics(r *metrics.Registry) {
	for c := Class(0); c < numClasses; c++ {
		n.mPackets[c] = r.Counter("mesh." + c.String() + ".packets")
		n.mWords[c] = r.Counter("mesh." + c.String() + ".words")
		n.mRefused[c] = r.Counter("mesh." + c.String() + ".refused")
	}
	n.mBlocked = r.Gauge("mesh.blocked")
}

// New creates a mesh of w×h nodes on the engine with the given latency model.
func New(eng *sim.Engine, w, h int, lat LatencyModel) *Net {
	n := w * h
	net := &Net{eng: eng, w: w, h: h, lat: lat}
	net.deliverFn = func(arg any) { net.deliver(arg.(*Packet)) }
	net.pool = make([][]*Packet, n)
	for c := range net.endpoints {
		net.endpoints[c] = make([]Endpoint, n)
		net.blocked[c] = make([][]*Packet, n)
		net.lastArrive[c] = make([]uint64, n*n)
		net.stats[c] = make([]Stats, n)
	}
	return net
}

// ShardEngines places each node on its partition engine (engs[node]); the
// constructor engine remains the default for nodes past the slice. With a
// parallel group, packet IDs switch to per-source lanes (src<<40 | seq) and
// UseMetrics/UseSpans/UseFaults must not be used — those observers are
// shared mutable state, exactly what parallel partitions cannot have.
func (n *Net) ShardEngines(engs []*sim.Engine) {
	if len(engs) != n.Nodes() {
		panic(fmt.Sprintf("mesh: ShardEngines got %d engines for %d nodes", len(engs), n.Nodes()))
	}
	n.engs = engs
	n.parallel = engs[0].Group() != nil && engs[0].Group().Mode() == sim.Parallel
	if n.parallel {
		n.ids = make([]uint64, n.Nodes())
	}
}

// EngineFor returns the engine owning a node's events: the node's
// partition engine after ShardEngines, the constructor engine otherwise.
// Workloads schedule a node's local events through it so they land on the
// heap that node's deliveries drain from.
func (n *Net) EngineFor(node int) *sim.Engine { return n.engAt(node) }

// engAt returns the engine owning a node's events.
func (n *Net) engAt(node int) *sim.Engine {
	if n.engs == nil {
		return n.eng
	}
	return n.engs[node]
}

// Nodes returns the node count.
func (n *Net) Nodes() int { return n.w * n.h }

// Hops returns the dimension-ordered (XY) hop count between two nodes.
func (n *Net) Hops(src, dst int) int {
	sx, sy := src%n.w, src/n.w
	dx, dy := dst%n.w, dst/n.w
	abs := func(v int) int {
		if v < 0 {
			return -v
		}
		return v
	}
	return abs(sx-dx) + abs(sy-dy)
}

// Register installs the endpoint for a node on one logical network.
func (n *Net) Register(node int, class Class, ep Endpoint) {
	n.endpoints[class][node] = ep
}

// StatsFor returns traffic counters for a logical network, summed over the
// per-node lanes.
func (n *Net) StatsFor(class Class) Stats {
	var total Stats
	for _, s := range n.stats[class] {
		total.Packets += s.Packets
		total.Words += s.Words
		total.Refused += s.Refused
	}
	return total
}

// Acquire returns a packet whose Words slice has length words, recycled
// from the node's free list when one is available. The caller fills Words
// and injects with SendPacket; a receiver done with a packet hands it back
// via Release. Pooling never changes event order or RNG draws, so results
// are identical to freshly allocated packets.
func (n *Net) Acquire(node, words int) *Packet {
	var pkt *Packet
	if q := n.pool[node]; len(q) > 0 {
		pkt = q[len(q)-1]
		q[len(q)-1] = nil
		n.pool[node] = q[:len(q)-1]
	} else {
		pkt = &Packet{}
	}
	if cap(pkt.Words) < words {
		pkt.Words = make([]uint64, words)
	} else {
		pkt.Words = pkt.Words[:words]
	}
	return pkt
}

// Release returns a packet to node's free list. Callers must only release
// packets no component still references: the fast-dispose and kernel-drop
// paths qualify (the message words were consumed before disposal); the
// buffered paths do not (the delivery store may retain Words).
func (n *Net) Release(node int, pkt *Packet) {
	n.pool[node] = append(n.pool[node], pkt)
}

// Send injects a packet. words[0] must already hold the routing header; the
// destination is passed explicitly since header encoding belongs to the NI.
// Delivery is in order per (src, dst, class) pair and costs
// Base + PerHop*hops + PerWord*len cycles; local sends (src == dst) skip the
// hop cost but still traverse the interface.
func (n *Net) Send(class Class, src, dst int, words []uint64) *Packet {
	pkt := n.Acquire(src, 0)
	pkt.Words = words
	return n.SendPacket(class, src, dst, pkt)
}

// SendPacket injects a caller-filled packet (see Acquire): the Send fast
// path without the per-message Words allocation. The packet's Words must
// already hold the routing header and payload.
func (n *Net) SendPacket(class Class, src, dst int, pkt *Packet) *Packet {
	if dst < 0 || dst >= n.Nodes() {
		panic(fmt.Sprintf("mesh: send to invalid node %d", dst))
	}
	se := n.engAt(src)
	now := se.Now()
	pkt.Src, pkt.Dst, pkt.Class = src, dst, class
	pkt.SentAt = now
	pkt.ArrivedAt = 0
	pkt.FaultMismatch = false
	if n.parallel {
		pkt.ID = uint64(src)<<40 | n.ids[src]
		n.ids[src]++
	} else {
		pkt.ID = n.nextID
		n.nextID++
	}
	n.rec.Begin(pkt.SentAt, pkt.ID, class.String(), src, dst, len(pkt.Words))
	n.stats[class][src].Packets++
	n.stats[class][src].Words += uint64(len(pkt.Words))
	n.mPackets[class].Inc()
	n.mWords[class].Add(uint64(len(pkt.Words)))
	at := now + n.lat.Delay(n.Hops(src, dst), len(pkt.Words))
	if class == Main {
		// Fault-plan congestion lands before the FIFO clamp below, so
		// injected stalls can delay but never reorder a pair's traffic.
		at += n.inj.SendDelay(src, dst)
	}
	// Same-route FIFO: a short packet sent after a long one queues behind
	// it rather than overtaking (length-dependent latency must not reorder
	// a pair's traffic).
	if last := n.lastArrive[class][src*n.Nodes()+dst]; at <= last {
		at = last + 1
	}
	n.lastArrive[class][src*n.Nodes()+dst] = at
	se.CrossScheduleArgAtSite(n.engAt(dst), siteDeliver, at, n.deliverFn, pkt)
	return pkt
}

// siteDeliver labels packet-arrival events for the engine cost profiler.
var siteDeliver = sim.NewSite("mesh.deliver")

// deliver offers pkt to its destination, queueing it behind any packets
// already blocked there so per-pair order is preserved even across refusals.
func (n *Net) deliver(pkt *Packet) {
	pkt.ArrivedAt = n.engAt(pkt.Dst).Now()
	n.rec.Arrive(pkt.ArrivedAt, pkt.ID)
	q := n.blocked[pkt.Class][pkt.Dst]
	if len(q) > 0 {
		// Keep strict arrival order: never bypass blocked packets.
		n.blocked[pkt.Class][pkt.Dst] = append(q, pkt)
		n.mBlocked.Add(1)
		n.rec.NetBlock(pkt.ArrivedAt, pkt.ID)
		return
	}
	ep := n.endpoints[pkt.Class][pkt.Dst]
	if ep == nil {
		panic(fmt.Sprintf("mesh: no endpoint for node %d class %s", pkt.Dst, pkt.Class))
	}
	if !ep.Arrive(pkt) {
		n.stats[pkt.Class][pkt.Dst].Refused++
		n.mRefused[pkt.Class].Inc()
		n.blocked[pkt.Class][pkt.Dst] = append(q, pkt)
		n.mBlocked.Add(1)
		n.rec.NetBlock(pkt.ArrivedAt, pkt.ID)
	}
}

// NotifySpace tells the network a node freed input capacity on a class;
// blocked packets are re-offered in arrival order until one is refused.
func (n *Net) NotifySpace(node int, class Class) {
	q := n.blocked[class][node]
	for len(q) > 0 {
		pkt := q[0]
		if !n.endpoints[class][node].Arrive(pkt) {
			break
		}
		copy(q, q[1:])
		q = q[:len(q)-1]
		n.mBlocked.Add(-1)
	}
	n.blocked[class][node] = q
}

// BlockedAt reports how many packets are waiting in the network for a node.
func (n *Net) BlockedAt(node int, class Class) int {
	return len(n.blocked[class][node])
}
