package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"fugu/internal/apps"
	"fugu/internal/harness"
	"fugu/internal/metrics"
)

// BenchRow is one workload's measurement in the machine-readable report.
// The throughput figure is simulated megacycles advanced per wall-clock
// second — the end-to-end speed of the simulator core — and the per-event
// columns normalize by dispatched engine events so runs of different sizes
// compare directly.
type BenchRow struct {
	Workload       string  `json:"workload"`
	McyclesPerSec  float64 `json:"mcycles_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	NsPerEvent     float64 `json:"ns_per_event"`
}

// benchCmd implements `fugusim bench`: run the three representative
// workloads (barrier: baton-heavy synchronization; synth: multiprogrammed
// producer/consumer traffic; crlstress: coherence-protocol request/reply
// plus bulk data), measure simulator throughput and allocation rates, and
// write the report as JSON. With -baseline it compares throughput against a
// committed report and exits nonzero on a regression beyond -max-regress —
// the CI perf gate.
func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	common := registerCommon(fs)
	out := fs.String("o", "BENCH_4.json", "write the JSON report to this path (- for stdout only)")
	baseline := fs.String("baseline", "", "compare against this committed report; exit 1 on regression")
	maxRegress := fs.Float64("max-regress", 0.20, "tolerated fractional throughput drop vs -baseline")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the bench run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fugusim bench [flags]\n")
		fs.PrintDefaults()
	}
	if names := parseInterleaved(fs, args); len(names) != 0 {
		fs.Usage()
		os.Exit(2)
	}
	common.resolve()
	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	barrierN, crlOps := 2000, 20
	if *common.full {
		barrierN, crlOps = 10000, 45
	}
	s := *common.seed
	mut := common.configMut()

	var crlOpts []harness.Option
	if common.policy != nil {
		crlOpts = append(crlOpts, harness.WithDeliveryPolicy(common.policy))
	}
	snaps := map[string]metrics.Snapshot{}
	keep := func(name string, cycles uint64, snap metrics.Snapshot) (uint64, metrics.Snapshot) {
		snaps[name] = snap
		return cycles, snap
	}
	rows := []BenchRow{
		measure("barrier", func() (uint64, metrics.Snapshot) {
			rs := harness.RunStandaloneMut(func() apps.Instance { return apps.NewBarrierApp(barrierN) }, s, mut)
			mustOK("barrier", rs.Err)
			return keep("barrier", rs.Runtime, rs.Metrics)
		}),
		measure("synth", func() (uint64, metrics.Snapshot) {
			rs := harness.RunMultiprogrammedQ(
				func() apps.Instance { return apps.NewSynth(100, 20, 100) },
				0, s, 50_000, mut)
			mustOK("synth", rs.Err)
			return keep("synth", rs.Runtime, rs.Metrics)
		}),
		measure("crlstress", func() (uint64, metrics.Snapshot) {
			row, snap := harness.RunCRLStressOnce(crlOps, s, crlOpts...)
			if !row.Completed {
				mustOK("crlstress", fmt.Errorf("workload wedged"))
			}
			if row.Total != row.Expected {
				mustOK("crlstress", fmt.Errorf("lost updates: total %d, expected %d", row.Total, row.Expected))
			}
			return keep("crlstress", row.Cycles, snap)
		}),
	}

	if *common.metricsDir != "" {
		for _, r := range rows {
			writeMetrics(*common.metricsDir, "bench."+r.Workload)(snaps[r.Workload])
		}
	}
	for _, r := range rows {
		fmt.Printf("%-10s %10.2f Mcycles/s %10.3f allocs/event %10.1f ns/event\n",
			r.Workload, r.McyclesPerSec, r.AllocsPerEvent, r.NsPerEvent)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: report written to %s\n", *out)
	} else {
		os.Stdout.Write(data)
	}

	if *baseline != "" {
		if !compareBaseline(rows, *baseline, *maxRegress) {
			os.Exit(1)
		}
	}
}

// measure runs one workload with a clean heap and reports throughput and
// per-event allocation cost. Events come from the engine's "sim.events"
// counter in the run's merged metrics snapshot; allocations are the
// process-wide Mallocs delta across the run, which is why the heap is
// settled with a GC first.
func measure(name string, run func() (cycles uint64, snap metrics.Snapshot)) BenchRow {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	cycles, snap := run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	events := snap.Counters["sim.events"]
	r := BenchRow{Workload: name}
	if sec := wall.Seconds(); sec > 0 {
		r.McyclesPerSec = float64(cycles) / 1e6 / sec
	}
	if events > 0 {
		r.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		r.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
	}
	return r
}

// mustOK aborts the bench when a workload failed its own correctness check:
// a broken simulation's throughput is not a datum.
func mustOK(name string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: bench: %s: %v\n", name, err)
		os.Exit(1)
	}
}

// compareBaseline checks each measured workload's throughput against the
// committed report, tolerating a maxRegress fractional drop. Workloads
// missing from the baseline pass (new workloads shouldn't brick CI); a
// workload present only in the baseline fails, so coverage cannot silently
// shrink.
func compareBaseline(rows []BenchRow, path string, maxRegress float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: bench: baseline: %v\n", err)
		return false
	}
	var base []BenchRow
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: bench: baseline %s: %v\n", path, err)
		return false
	}
	measured := make(map[string]BenchRow, len(rows))
	for _, r := range rows {
		measured[r.Workload] = r
	}
	ok := true
	for _, b := range base {
		r, found := measured[b.Workload]
		if !found {
			fmt.Fprintf(os.Stderr, "bench: FAIL %s: in baseline but not measured\n", b.Workload)
			ok = false
			continue
		}
		floor := b.McyclesPerSec * (1 - maxRegress)
		if r.McyclesPerSec < floor {
			fmt.Fprintf(os.Stderr, "bench: FAIL %s: %.2f Mcycles/s < floor %.2f (baseline %.2f, tolerance %.0f%%)\n",
				b.Workload, r.McyclesPerSec, floor, b.McyclesPerSec, maxRegress*100)
			ok = false
		} else {
			fmt.Fprintf(os.Stderr, "bench: ok %s: %.2f Mcycles/s vs baseline %.2f (floor %.2f)\n",
				b.Workload, r.McyclesPerSec, b.McyclesPerSec, floor)
		}
	}
	return ok
}
