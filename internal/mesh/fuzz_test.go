package mesh

import (
	"testing"

	"fugu/internal/faultinject"
	"fugu/internal/sim"
)

// FuzzMeshFIFO drives the mesh with an arbitrary send schedule — sources,
// destinations, lengths and inter-send gaps all read from the fuzz input —
// under fault-plan congestion (link stalls and hot spots whose probability
// and magnitude also come from the input), and checks the two route
// invariants the NIs and the kernel stand on:
//
//   - conservation: every packet sent is delivered exactly once;
//   - per-pair FIFO: packets between one (src, dst) pair arrive in send
//     order no matter what injected delays their schedules picked up.
//
// The second is the property the injector's ordering clamp exists for: a
// stall drawn for an early packet must never let a later packet overtake.
func FuzzMeshFIFO(f *testing.F) {
	f.Add([]byte{0, 1, 4, 0, 1, 0, 4, 10, 0, 1, 1, 0}, uint8(0), uint8(0))
	f.Add([]byte{7, 0, 16, 255, 0, 7, 16, 0, 3, 4, 2, 1}, uint8(200), uint8(90))
	f.Add([]byte{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}, uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, script []byte, stallP, stallC uint8) {
		eng := sim.NewEngine(1)
		net := New(eng, 4, 2, DefaultLatency())
		eps := make([]*sinkEP, net.Nodes())
		for i := range eps {
			eps[i] = &sinkEP{}
			net.Register(i, Main, eps[i])
			net.Register(i, OS, &sinkEP{})
		}
		plan := faultinject.Plan{Seed: uint64(stallP)<<8 | uint64(stallC)}
		plan.Arm(faultinject.LinkStall, faultinject.FaultSpec{
			Prob: float64(stallP) / 255, Cycles: uint64(stallC) * 7,
			Node: faultinject.AllNodes,
		})
		plan.Arm(faultinject.HotSpot, faultinject.FaultSpec{
			Prob: float64(stallC) / 255, Cycles: uint64(stallP) * 3,
			Node: faultinject.AllNodes,
		})
		inj := faultinject.New(plan)
		inj.BindClock(eng.Now)
		net.UseFaults(inj)

		sent := 0
		var when uint64
		for i := 0; i+3 < len(script); i += 4 {
			src := int(script[i]) % net.Nodes()
			dst := int(script[i+1]) % net.Nodes()
			words := make([]uint64, int(script[i+2])%16+1)
			words[0] = uint64(dst) // routing header stand-in
			when += uint64(script[i+3])
			w := words
			eng.Schedule(when, func() { net.Send(Main, src, dst, w) })
			sent++
		}
		eng.Run()

		delivered := 0
		lastID := map[[2]int]uint64{}
		for node, ep := range eps {
			for _, pkt := range ep.got {
				delivered++
				if pkt.Dst != node {
					t.Fatalf("packet %d for node %d arrived at node %d", pkt.ID, pkt.Dst, node)
				}
				pair := [2]int{pkt.Src, pkt.Dst}
				if last, ok := lastID[pair]; ok && pkt.ID <= last {
					t.Fatalf("pair (%d,%d): packet %d arrived after %d — FIFO violated",
						pkt.Src, pkt.Dst, pkt.ID, last)
				}
				lastID[pair] = pkt.ID
				if pkt.ArrivedAt < pkt.SentAt {
					t.Fatalf("packet %d arrived at %d before its send at %d",
						pkt.ID, pkt.ArrivedAt, pkt.SentAt)
				}
			}
		}
		if delivered != sent {
			t.Fatalf("conservation violated: sent %d packets, delivered %d", sent, delivered)
		}
	})
}
