package main

import (
	"strings"
	"testing"

	"fugu/internal/harness"
)

// TestResolvePoint covers the experiment/point resolution shared by the
// trace and doctor subcommands.
func TestResolvePoint(t *testing.T) {
	opt := harness.NewOptions(harness.WithQuick(), harness.WithTrials(1))

	if _, _, _, err := resolvePoint("nonesuch", 0, opt); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown name: err = %v", err)
	}

	exp, pts, sel, err := resolvePoint("table4", 1, opt)
	if err != nil {
		t.Fatalf("table4 point 1: %v", err)
	}
	if exp.Name != "table4" || len(pts) != 3 {
		t.Fatalf("exp=%q with %d points, want table4 with 3", exp.Name, len(pts))
	}
	if sel == nil || sel.Label != pts[1].Label {
		t.Fatalf("selected %+v, want point 1 (%q)", sel, pts[1].Label)
	}

	if _, _, _, err := resolvePoint("table4", 99, opt); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range index: err = %v", err)
	}

	// A negative index is the -list path: enumeration only, no selection.
	_, pts, sel, err = resolvePoint("crlstress", pointIndex(5, true), opt)
	if err != nil || sel != nil || len(pts) == 0 {
		t.Fatalf("list path: pts=%d sel=%v err=%v", len(pts), sel, err)
	}
}
