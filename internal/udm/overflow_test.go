package udm

import (
	"testing"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
)

// TestOverflowControl floods a slow consumer until the receiving node's
// frame pool crosses the overflow threshold: the job must be globally
// suspended (sends stall), the scheduler advised to co-schedule it, and —
// once the backlog drains — released, with every message delivered exactly
// once. Physical memory stays bounded throughout (guaranteed delivery pages
// out rather than failing).
func TestOverflowControl(t *testing.T) {
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	cfg.FramesPerNode = 6
	m := glaze.NewMachine(cfg)
	job := m.NewJob("flood")
	null := m.NewJob("null")
	Attach(null.Process(0))
	Attach(null.Process(1))
	ep0 := Attach(job.Process(0))
	ep1 := Attach(job.Process(1))

	const N = 800
	seen := make(map[uint64]bool)
	var order []uint64
	ep1.On(1, func(e *Env, msg *Msg) {
		if seen[msg.Args[0]] {
			t.Fatalf("duplicate delivery of %d", msg.Args[0])
		}
		seen[msg.Args[0]] = true
		order = append(order, msg.Args[0])
		e.Spend(500) // slow handler: consumption far below production
	})
	args := make([]uint64, 14) // maximum-size messages fill pages quickly
	var throttledSeen bool
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := ep0.Env(tk)
		for i := uint64(0); i < N; i++ {
			args[0] = i
			e.Inject(1, 1, args...)
			if job.Process(0).Throttled() {
				throttledSeen = true
			}
		}
	})
	job.Process(1).StartMain(func(tk *cpu.Task) {
		for len(order) < N {
			tk.Spend(10_000)
		}
	})
	m.NewGang(50_000, 0.5, job, null).Start()
	m.RunUntilDone(100_000_000, job)
	if len(order) != N {
		t.Fatalf("delivered %d, want %d", len(order), N)
	}
	for i, v := range order {
		if v != uint64(i) {
			t.Fatalf("order violated at %d: %d", i, v)
		}
	}
	trips := m.Nodes[1].Kernel.OverflowTrips
	if trips == 0 {
		t.Error("overflow control never tripped")
	}
	if !throttledSeen {
		t.Error("sender never observed throttling")
	}
	if job.Process(0).Throttled() || job.Process(1).Throttled() {
		t.Error("job still throttled after drain")
	}
	// The whole point: the backlog (800 * 15 words = ~12 pages of demand)
	// never consumed more frames than physically exist, and the high water
	// stayed at or below the pool size.
	if hw := m.Nodes[1].Frames.HighWater(); hw > cfg.FramesPerNode {
		t.Errorf("frame high water %d exceeds pool %d", hw, cfg.FramesPerNode)
	}
}

// TestOverflowPagesOutUnderExhaustion drives the pool to absolute
// exhaustion (overflow control reacts only between quanta) and checks the
// guaranteed-delivery path: buffer pages are evicted to backing store over
// the OS network instead of dropping or deadlocking.
func TestOverflowPagesOut(t *testing.T) {
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	cfg.FramesPerNode = 2
	m := glaze.NewMachine(cfg)
	job := m.NewJob("flood")
	ep0 := Attach(job.Process(0))
	ep1 := Attach(job.Process(1))

	const N = 400
	got := 0
	ep1.On(1, func(e *Env, msg *Msg) { got++ })
	args := make([]uint64, 14)
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := ep0.Env(tk)
		for i := uint64(0); i < N; i++ {
			args[0] = i
			e.Inject(1, 1, args...)
		}
	})
	job.Process(1).StartMain(func(tk *cpu.Task) {
		// Sleep through the flood so everything buffers, then drain.
		tk.Spend(200_000)
		e := ep1.Env(tk)
		e.BeginAtomic()
		for got < N {
			e.Poll()
		}
		e.EndAtomic()
	})
	// Keep node 1's process descheduled during the flood: skewed start.
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(0, job)
	if got != N {
		t.Fatalf("delivered %d, want %d", got, N)
	}
	if hw := m.Nodes[1].Frames.HighWater(); hw > 2 {
		t.Errorf("frame high water %d exceeds pool 2", hw)
	}
}
