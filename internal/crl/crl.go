// Package crl is an all-software distributed shared memory system in the
// style of CRL (C Region Library, Johnson et al., SOSP '95), the programming
// model three of the paper's benchmarks use. Applications map fixed-size
// regions, bracket accesses with start/end read/write operations, and the
// library keeps copies coherent with a home-based directory protocol built
// entirely on UDM messages — producing exactly the traffic the paper
// describes: "many low-latency request-reply packets mixed with fewer larger
// data packets".
package crl

import (
	"fmt"

	"fugu/internal/cpu"
	"fugu/internal/metrics"
	"fugu/internal/udm"
)

// RegionID names a region machine-wide. A region's home node is RegionID %
// nodes.
type RegionID uint32

// state of a locally mapped copy.
type state int

const (
	invalid state = iota
	shared
	exclusive
)

// Region is one node's mapping of a shared region.
type Region struct {
	node *Node
	id   RegionID
	home int
	st   state
	data []uint64

	readers int  // active local read sections
	writing bool // active local write section
	// acq marks a thread blocked waiting for a grant on this region. A
	// freshly granted copy is protected from flush/invalidation until the
	// acquirer has opened (and closed) its section — without this, a busy
	// home can steal a grant back before the grantee ever wakes, and the
	// grantee waits forever (livelock). Only a copy that already satisfies
	// the acquire is protected (see grantInHand); a stale copy held while
	// waiting must stay revocable or the protocol deadlocks.
	acq acqKind

	// Coherence actions deferred until the local section closes.
	invPending   bool
	flushPending bool

	wait *udm.Counter // signalled by protocol handlers on state change
	gen  uint64       // bumped whenever st changes (wake predicate)
}

// ID returns the region's identifier.
func (r *Region) ID() RegionID { return r.id }

// Home returns the region's home node.
func (r *Region) Home() int { return r.home }

// Len returns the region size in words.
func (r *Region) Len() int { return len(r.data) }

// Read returns word i; only valid inside a read or write section.
func (r *Region) Read(i int) uint64 {
	if r.readers == 0 && !r.writing {
		panic(fmt.Sprintf("crl: read of region %d outside a section", r.id))
	}
	return r.data[i]
}

// Write stores word i; only valid inside a write section.
func (r *Region) Write(i int, v uint64) {
	if !r.writing {
		panic(fmt.Sprintf("crl: write to region %d outside a write section", r.id))
	}
	r.data[i] = v
}

// Node is one node's CRL instance, bound to a UDM endpoint.
type Node struct {
	ep    *udm.EP
	self  int
	nodes int

	regions map[RegionID]*Region
	dir     map[RegionID]*dirEntry // directory entries for home regions

	// Statistics.
	Hits, Misses uint64 // section starts served locally vs via protocol

	mHits, mMisses *metrics.Counter
}

// handler id base: CRL claims 0x100..0x1ff of the handler space.
const (
	hReadReq = 0x100 + iota
	hWriteReq
	hFlushReq
	hInvalidate
	hInvAck
	hFlushData
	hReadReply
	hWriteReply
)

// New binds a CRL instance to an endpoint and registers its protocol
// handlers. Every node of the job must create one before any region use.
func New(ep *udm.EP, nodes int) *Node {
	n := &Node{
		ep:      ep,
		self:    ep.Node(),
		nodes:   nodes,
		regions: make(map[RegionID]*Region),
		dir:     make(map[RegionID]*dirEntry),
	}
	r := ep.Process().Metrics()
	n.mHits = r.Counter("crl.hits")
	n.mMisses = r.Counter("crl.misses")
	n.registerHandlers()
	ep.Process().Kernel().Machine().RegisterDiag(n)
	return n
}

// homeOf returns a region's home node.
func (n *Node) homeOf(id RegionID) int { return int(id) % n.nodes }

// Create declares a region of size words with its home on this node and
// returns the home mapping. It must be called on the home node before any
// other node maps the region; cross-node creation ordering is the
// application's barrier problem, as in CRL.
func (n *Node) Create(id RegionID, size int) *Region {
	if n.homeOf(id) != n.self {
		panic(fmt.Sprintf("crl: Create(%d) on node %d, home is %d", id, n.self, n.homeOf(id)))
	}
	if _, dup := n.dir[id]; dup {
		panic(fmt.Sprintf("crl: region %d already created", id))
	}
	n.dir[id] = newDirEntry(n.nodes)
	return n.Map(id, size)
}

// Map returns this node's mapping of a region (creating an invalid local
// copy on first use). size must match the creator's.
func (n *Node) Map(id RegionID, size int) *Region {
	if r, ok := n.regions[id]; ok {
		if r.Len() != size {
			panic(fmt.Sprintf("crl: region %d mapped with size %d, was %d", id, size, r.Len()))
		}
		return r
	}
	r := &Region{
		node: n,
		id:   id,
		home: n.homeOf(id),
		data: make([]uint64, size),
		wait: udm.NewCounter(),
	}
	if r.home == n.self {
		r.st = exclusive // the home copy starts as the only copy
	}
	n.regions[id] = r
	return r
}

// acqKind classifies a pending section acquisition.
type acqKind int

const (
	acqNone acqKind = iota
	acqRead
	acqWrite
)

// grantInHand reports whether a pending acquire has been satisfied but the
// acquiring thread has not yet opened its section.
func (r *Region) grantInHand() bool {
	switch r.acq {
	case acqRead:
		return r.st != invalid
	case acqWrite:
		return r.st == exclusive
	}
	return false
}

// setState transitions the local copy and wakes section waiters.
func (r *Region) setState(s state) {
	r.st = s
	r.gen++
	r.wait.Add(1)
}

// StartRead opens a read section, fetching a shared copy if needed.
func (n *Node) StartRead(t *cpu.Task, r *Region) {
	e := n.ep.Env(t)
	e.Spend(costSectionCheck)
	if r.st == invalid {
		n.Misses++
		n.mMisses.Inc()
		r.acq = acqRead
		target := r.wait.Value() + 1
		e.Inject(r.home, hReadReq, uint64(r.id), uint64(n.self))
		// Wait until a reply handler upgrades the copy.
		for r.st == invalid {
			r.wait.WaitFor(t, target)
			target = r.wait.Value() + 1
		}
	} else {
		n.Hits++
		n.mHits.Inc()
	}
	r.readers++
	r.acq = acqNone
}

// EndRead closes a read section, performing any invalidation deferred while
// the section was open.
func (n *Node) EndRead(t *cpu.Task, r *Region) {
	if r.readers == 0 {
		panic("crl: EndRead without StartRead")
	}
	t.Spend(costSectionCheck)
	r.readers--
	if r.readers == 0 {
		n.finishDeferred(t, r)
	}
}

// finishDeferred completes coherence work postponed until section close:
// a deferred invalidation or flush at a caching node, or a home-side
// transaction waiting for the home's own section to end.
func (n *Node) finishDeferred(t *cpu.Task, r *Region) {
	e := n.ep.Env(t)
	if r.invPending {
		r.invPending = false
		r.setState(invalid)
		e.Inject(r.home, hInvAck, uint64(r.id))
	}
	if r.flushPending {
		r.flushPending = false
		r.setState(invalid)
		n.sendData(e, r.home, hFlushData, r.id, r.data)
	}
	if d := n.dir[r.id]; d != nil && d.homeWait && !r.writing && (d.cur.op == opRead || r.readers == 0) {
		// The resumed transaction mutates the directory and sends its
		// grant from the application thread. Message handlers must not
		// interleave, or a later transaction's flush request could be
		// launched before this grant's data and overtake it on the wire;
		// an atomic section keeps the update-and-send indivisible, exactly
		// as handler-context transactions are.
		//
		// Atomicity must be entered BEFORE the entry is touched:
		// BeginAtomic charges cycles — a preemption point — and a request
		// arriving in that window used to see busy=false, start its own
		// transaction and overwrite d.cur, silently dropping the deferred
		// request (the lost-request deadlock dissected in
		// docs/crl-deadlock-0x9459729f43aff4c8.md). Re-validate the
		// deferral and snapshot the request once atomic.
		wasAtomic := e.Atomic()
		if !wasAtomic {
			e.BeginAtomic()
		}
		if d.homeWait && !r.writing && (d.cur.op == opRead || r.readers == 0) {
			req := d.cur
			d.homeWait = false
			d.busy = false
			n.startTxn(e, d, r.id, req)
		}
		if !wasAtomic {
			e.EndAtomic()
		}
	}
}

// StartWrite opens a write section, acquiring exclusive ownership.
func (n *Node) StartWrite(t *cpu.Task, r *Region) {
	e := n.ep.Env(t)
	e.Spend(costSectionCheck)
	if r.writing || r.readers > 0 {
		panic("crl: nested sections on one region are not supported")
	}
	if r.st != exclusive {
		n.Misses++
		n.mMisses.Inc()
		r.acq = acqWrite
		target := r.wait.Value() + 1
		e.Inject(r.home, hWriteReq, uint64(r.id), uint64(n.self))
		for r.st != exclusive {
			r.wait.WaitFor(t, target)
			target = r.wait.Value() + 1
		}
	} else {
		n.Hits++
		n.mHits.Inc()
	}
	r.writing = true
	r.acq = acqNone
}

// EndWrite closes a write section. Ownership is released lazily: the copy
// stays exclusive here until another node's request pulls it away.
func (n *Node) EndWrite(t *cpu.Task, r *Region) {
	if !r.writing {
		panic("crl: EndWrite without StartWrite")
	}
	t.Spend(costSectionCheck)
	r.writing = false
	n.finishDeferred(t, r)
}

// section-check bookkeeping cost (state test + count update), cycles.
const costSectionCheck = 10

// HomeData exposes the home copy of a region for post-run verification.
// It panics when called away from the home or while a remote owner holds
// the only valid copy (the caller's verification logic is wrong then).
func (n *Node) HomeData(id RegionID) []uint64 {
	d := n.dir[id]
	if d == nil {
		panic(fmt.Sprintf("crl: HomeData(%d) away from home", id))
	}
	if d.mode == modeExclusive && d.owner != -1 && d.owner != n.self {
		panic(fmt.Sprintf("crl: HomeData(%d) while node %d owns the copy", id, d.owner))
	}
	return n.regions[id].data
}
