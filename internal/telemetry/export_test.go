package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"fugu/internal/metrics"
)

// nastyTimeline builds a timeline whose instrument names contain CSV
// metacharacters, exercising the shared metrics.CSVField escaping.
func nastyTimeline() []LabeledTimeline {
	r := NewRecorder(Config{Every: 100})
	r.AttachMachine()
	s := metrics.NewSnapshot()
	s.Counters[`evil,name`] = 3
	s.Counters[`quo"ted`] = 7
	s.Gauges["plain.gauge"] = metrics.GaugeValue{Cur: 2, Max: 5}
	tl := r.Finish(Sample{At: 100, Snap: s, Modes: "-b"})
	return []LabeledTimeline{{Point: 0, Label: `label, with "comma"`, Timeline: tl}}
}

// TestWriteCSVEscapingRoundTrip: the wide CSV must survive a standard RFC
// 4180 parse with metacharacters in instrument names and labels intact.
func TestWriteCSVEscapingRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, nastyTimeline()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("timeline CSV does not re-parse: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want header + 1 row", len(recs))
	}
	header, row := recs[0], recs[1]
	if len(header) != len(row) {
		t.Fatalf("header has %d fields, row has %d", len(header), len(row))
	}
	byCol := map[string]string{}
	for i, h := range header {
		byCol[h] = row[i]
	}
	if byCol[`c:evil,name`] != "3" || byCol[`c:quo"ted`] != "7" {
		t.Errorf("escaped counter columns lost: %v", byCol)
	}
	if byCol["g:plain.gauge.cur"] != "2" || byCol["g:plain.gauge.max"] != "5" {
		t.Errorf("gauge columns wrong: cur=%q max=%q", byCol["g:plain.gauge.cur"], byCol["g:plain.gauge.max"])
	}
	if byCol["label"] != `label, with "comma"` {
		t.Errorf("label round-tripped as %q", byCol["label"])
	}
	if byCol["modes"] != "-b" {
		t.Errorf("modes = %q, want -b", byCol["modes"])
	}
}

// TestWriteCSVDeterministic: identical inputs produce identical bytes, and
// instrument columns are the sorted union across points (empty cell where an
// instrument was silent at a point).
func TestWriteCSVDeterministic(t *testing.T) {
	mk := func(name string, v int) Timeline {
		r := NewRecorder(Config{Every: 100})
		r.AttachMachine()
		s := metrics.NewSnapshot()
		s.Counters[name] = uint64(v)
		return r.Finish(Sample{At: 100, Snap: s})
	}
	tls := []LabeledTimeline{
		{Point: 0, Label: "p0", Timeline: mk("zed", 1)},
		{Point: 1, Label: "p1", Timeline: mk("alpha", 2)},
	}
	var a, b strings.Builder
	if err := WriteCSV(&a, tls); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, tls); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two WriteCSV calls over the same data differ")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if !strings.HasSuffix(lines[0], "c:alpha,c:zed") {
		t.Errorf("columns not the sorted union: %q", lines[0])
	}
	// Point 0 recorded only zed: its alpha cell must be empty, not zero.
	recs, err := csv.NewReader(strings.NewReader(a.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	alphaCol := len(recs[0]) - 2
	if recs[1][alphaCol] != "" {
		t.Errorf("silent instrument cell = %q, want empty", recs[1][alphaCol])
	}
}

// TestWriteJSONL: one JSON object per interval carrying the point identity
// and the promoted interval fields.
func TestWriteJSONL(t *testing.T) {
	var b strings.Builder
	if err := WriteJSONL(&b, nastyTimeline()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	var rec struct {
		Point    int               `json:"point"`
		Label    string            `json:"label"`
		Cycle    uint64            `json:"cycle"`
		Modes    string            `json:"modes"`
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line does not parse: %v", err)
	}
	if rec.Cycle != 100 || rec.Modes != "-b" || rec.Counters[`evil,name`] != 3 {
		t.Errorf("record = %+v", rec)
	}
	if rec.Label != `label, with "comma"` {
		t.Errorf("label = %q", rec.Label)
	}
}
