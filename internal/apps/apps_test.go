package apps

import (
	"math"
	"testing"

	"fugu/internal/glaze"
)

// runStandalone executes an instance solo on an 8-node machine.
func runStandalone(t *testing.T, inst Instance) (*glaze.Machine, *glaze.Job) {
	t.Helper()
	cfg := glaze.DefaultConfig()
	cfg.NIConfig.OutputWords = 64 // apps ship bulk data (the paper used DMA)
	m := glaze.NewMachine(cfg)
	job := m.NewJob(inst.Name())
	inst.Start(m, job)
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(10_000_000_000, job)
	if !job.Done() {
		t.Fatalf("%s did not complete", inst.Name())
	}
	if err := inst.Check(); err != nil {
		t.Fatal(err)
	}
	return m, job
}

// runMultiprogrammed executes an instance against a null job under a skewed
// gang schedule — the paper's experimental setup.
func runMultiprogrammed(t *testing.T, inst Instance, skew float64) (*glaze.Machine, *glaze.Job) {
	t.Helper()
	cfg := glaze.DefaultConfig()
	cfg.NIConfig.OutputWords = 64
	m := glaze.NewMachine(cfg)
	job := m.NewJob(inst.Name())
	null := m.NewJob("null")
	inst.Start(m, job)
	Null{}.Start(m, null)
	m.NewGang(500_000, skew, job, null).Start()
	m.RunUntilDone(20_000_000_000, job)
	if !job.Done() {
		t.Fatalf("%s did not complete under skew %.2f", inst.Name(), skew)
	}
	if err := inst.Check(); err != nil {
		t.Fatal(err)
	}
	return m, job
}

func TestBarrierApp(t *testing.T) {
	app := NewBarrierApp(50)
	m, job := runStandalone(t, app)
	_ = m
	d := job.Delivery()
	// Dissemination on 8 nodes: 24 messages per barrier.
	want := uint64(50 * 24)
	if d.Total() != want {
		t.Errorf("messages = %d, want %d", d.Total(), want)
	}
	if d.Buffered != 0 {
		t.Errorf("standalone run buffered %d messages, want 0", d.Buffered)
	}
}

func TestBarrierUnderSkew(t *testing.T) {
	app := NewBarrierApp(200)
	_, job := runMultiprogrammed(t, app, 0.05)
	d := job.Delivery()
	if d.Total() < 200*24 {
		t.Errorf("messages = %d, want >= %d", d.Total(), 200*24)
	}
}

func TestSynth(t *testing.T) {
	app := NewSynth(10, 5, 500)
	_, job := runStandalone(t, app)
	d := job.Delivery()
	// 4 nodes * 5 groups * 10 requests, each with a reply.
	if want := uint64(4 * 5 * 10 * 2); d.Total() != want {
		t.Errorf("messages = %d, want %d", d.Total(), want)
	}
}

func TestSynthLargeGroupUnderSkew(t *testing.T) {
	app := NewSynth(100, 3, 300)
	_, job := runMultiprogrammed(t, app, 0.01)
	if job.Delivery().Total() != 4*3*100*2 {
		t.Errorf("messages = %d", job.Delivery().Total())
	}
}

func TestEnumSmall(t *testing.T) {
	app := NewEnum(4)
	runStandalone(t, app)
	// Check (called inside) compares against the sequential enumeration.
	var exp uint64
	for _, e := range app.expanded {
		exp += e
	}
	if exp == 0 {
		t.Error("no states expanded")
	}
	// Work must actually have been distributed.
	active := 0
	for _, e := range app.expanded {
		if e > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("only %d nodes expanded work", active)
	}
}

func TestEnumSide5UnderSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("side-5 enumeration is slow")
	}
	app := NewEnum(5)
	runMultiprogrammed(t, app, 0.02)
}

func TestLUSmall(t *testing.T) {
	app := NewLU(40, 8)
	runStandalone(t, app)
}

func TestLUUnderSkew(t *testing.T) {
	app := NewLU(40, 8)
	_, job := runMultiprogrammed(t, app, 0.04)
	_ = job
}

func TestWaterSmall(t *testing.T) {
	app := NewWater(64, 2)
	_, job := runStandalone(t, app)
	if job.Delivery().Total() == 0 {
		t.Error("water ran without communicating")
	}
}

func TestWaterUnderSkew(t *testing.T) {
	app := NewWater(64, 2)
	runMultiprogrammed(t, app, 0.04)
}

func TestBarnesSmall(t *testing.T) {
	app := NewBarnes(64, 2)
	_, job := runStandalone(t, app)
	if job.Delivery().Total() == 0 {
		t.Error("barnes ran without communicating")
	}
}

func TestBarnesUnderSkew(t *testing.T) {
	app := NewBarnes(64, 2)
	runMultiprogrammed(t, app, 0.04)
}

func TestCharacterize(t *testing.T) {
	app := NewBarrierApp(100)
	m, job := runStandalone(t, app)
	cycles, msgs, tBetw, tHand := Characterize(&Rig{M: m, Job: job, EPs: nil}, job.DoneAt())
	_ = cycles
	if msgs != 0 {
		t.Errorf("empty rig counted %d messages", msgs)
	}
	_ = tBetw
	_ = tHand
}

func TestOctreeMatchesDirectSum(t *testing.T) {
	// With theta=0 the Barnes-Hut force must equal the direct O(N^2) sum.
	pos := make([][3]float64, 32)
	for i := range pos {
		pos[i] = barnesInitial(i)
	}
	cells := buildOctree(pos)
	words := serializeTree(cells)
	tr := &memTreeReader{words: words}
	for i := range pos {
		approx := tr.force(pos[i], 0) // theta 0: always descend
		var exact [3]float64
		for j := range pos {
			if i == j {
				continue
			}
			f := waterForce(pos[i], pos[j]) // same kernel shape
			_ = f
			dx := pos[j][0] - pos[i][0]
			dy := pos[j][1] - pos[i][1]
			dz := pos[j][2] - pos[i][2]
			r2 := dx*dx + dy*dy + dz*dz + barnesSoft
			inv := 1 / (r2 * sqrt(r2))
			exact[0] += dx * inv
			exact[1] += dy * inv
			exact[2] += dz * inv
		}
		for d := 0; d < 3; d++ {
			if diff := approx[d] - exact[d]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("body %d dim %d: tree %g vs direct %g", i, d, approx[d], exact[d])
			}
		}
	}
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
