package nic

import (
	"testing"

	"fugu/internal/cpu"
	"fugu/internal/mesh"
)

// timerRig: node 1 has a CPU attached so the atomicity timer counts user
// cycles; node 0 is a bare sender.
type timerRig struct {
	*rig
	cpu *cpu.CPU
}

func newTimerRig(t *testing.T, preset uint64) *timerRig {
	cfg := DefaultConfig()
	cfg.TimerPreset = preset
	r := &timerRig{rig: newRig(t, cfg)}
	r.cpu = cpu.New(r.eng, "cpu1")
	r.ni[1].AttachCPU(r.cpu)
	r.ni[0].SetGID(3)
	r.ni[1].SetGID(3)
	// On timeout, revoke like the OS would: engage the buffered path so the
	// timer disarms instead of re-firing every preset interval. Timer-force
	// stays armed regardless, as in the hardware.
	r.ni[1].SetInterrupts(Interrupts{
		MessageAvailable:  func() { r.got[1].avail++; r.last[1].availAt = r.eng.Now() },
		MismatchAvailable: func() { r.got[1].mismatch++; r.last[1].mismatchAt = r.eng.Now() },
		AtomicityTimeout: func() {
			r.got[1].timeout++
			if r.got[1].timeout == 1 {
				r.last[1].timeoutAt = r.eng.Now()
			}
			r.ni[1].SetDivert(true)
		},
	})
	return r
}

func TestTimerFiresAfterPresetUserCycles(t *testing.T) {
	r := newTimerRig(t, 100)
	// User enters an atomic section and never disposes; a message arrives
	// and sits at the head. The timeout must fire after 100 *user* cycles
	// from arrival.
	r.cpu.NewTask("user", cpu.PrioUser, cpu.DomainUser, func(tk *cpu.Task) {
		r.ni[1].BeginAtom(UACInterruptDisable, false)
		tk.Spend(10000)
	})
	var arriveAt uint64
	r.eng.Schedule(50, func() {
		arriveAt = r.eng.Now()
		r.send(0, 1, false, 1)
	})
	r.eng.Run()
	if r.got[1].timeout != 1 {
		t.Fatalf("timeout fired %d times, want 1", r.got[1].timeout)
	}
	delivery := mesh.DefaultLatency().Delay(1, 3)
	want := arriveAt + delivery + 100
	if r.last[1].timeoutAt != want {
		t.Errorf("timeout at %d, want %d (arrival %d + 100 user cycles)", r.last[1].timeoutAt, arriveAt+delivery, want)
	}
	if r.got[1].avail != 0 {
		t.Error("message-available raised despite interrupt-disable")
	}
}

func TestTimerExcludesKernelCycles(t *testing.T) {
	r := newTimerRig(t, 100)
	r.cpu.NewTask("user", cpu.PrioUser, cpu.DomainUser, func(tk *cpu.Task) {
		r.ni[1].BeginAtom(UACInterruptDisable, false)
		tk.Spend(10000)
	})
	r.eng.Schedule(50, func() { r.send(0, 1, false, 1) })
	// A kernel task occupies the CPU for 40 cycles in the middle of the
	// countdown; the expiry must slide by exactly those 40 cycles.
	var kernelAt uint64
	r.eng.Schedule(80, func() {
		r.cpu.NewTask("k", cpu.PrioKernel, cpu.DomainKernel, func(tk *cpu.Task) {
			kernelAt = tk.Now()
			tk.Spend(40)
		})
	})
	r.eng.Run()
	if r.got[1].timeout != 1 {
		t.Fatalf("timeout fired %d times, want 1", r.got[1].timeout)
	}
	delivery := mesh.DefaultLatency().Delay(1, 3)
	want := 50 + delivery + 100 + 40
	if r.last[1].timeoutAt != want {
		t.Errorf("timeout at %d, want %d (kernel at %d excluded)", r.last[1].timeoutAt, want, kernelAt)
	}
}

func TestDisposePresetsTimer(t *testing.T) {
	r := newTimerRig(t, 100)
	r.cpu.NewTask("user", cpu.PrioUser, cpu.DomainUser, func(tk *cpu.Task) {
		r.ni[1].BeginAtom(UACInterruptDisable, false)
		// Poll: wait for the first message, dispose it just before the
		// timer would fire, keep holding atomicity on the second.
		for !r.ni[1].MessageAvailable() {
			tk.Spend(5)
		}
		tk.Spend(90) // 90 of 100 cycles consumed
		if trap := r.ni[1].Dispose(); trap != TrapNone {
			t.Errorf("dispose trap %v", trap)
		}
		tk.Spend(10000) // second message now heads the queue
	})
	r.eng.Schedule(0, func() {
		r.send(0, 1, false, 1)
		r.send(0, 1, false, 2)
	})
	r.eng.Run()
	if r.got[1].timeout != 1 {
		t.Fatalf("timeout fired %d times, want 1", r.got[1].timeout)
	}
	// The dispose reloaded the counter, so expiry is 100 cycles after the
	// dispose, not after the first arrival.
	remaining := r.last[1].timeoutAt
	delivery := mesh.DefaultLatency().Delay(1, 3) // first arrival
	if remaining <= delivery+100 {
		t.Errorf("timeout at %d: fired without preset (first arrival %d)", remaining, delivery)
	}
}

func TestTimerDisarmsWhenMessageGone(t *testing.T) {
	r := newTimerRig(t, 100)
	r.cpu.NewTask("user", cpu.PrioUser, cpu.DomainUser, func(tk *cpu.Task) {
		r.ni[1].BeginAtom(UACInterruptDisable, false)
		for !r.ni[1].MessageAvailable() {
			tk.Spend(5)
		}
		tk.Spend(50)
		r.ni[1].Dispose() // queue now empty: timer disarmed and preset
		tk.Spend(10000)   // stays atomic with no pending message: no timeout
	})
	r.eng.Schedule(0, func() { r.send(0, 1, false, 1) })
	r.eng.Run()
	if r.got[1].timeout != 0 {
		t.Errorf("timeout fired %d times with empty queue, want 0", r.got[1].timeout)
	}
}

func TestTimerForceCountsWithoutMessage(t *testing.T) {
	r := newTimerRig(t, 100)
	var start uint64
	r.cpu.NewTask("user", cpu.PrioUser, cpu.DomainUser, func(tk *cpu.Task) {
		start = tk.Now()
		r.ni[1].BeginAtom(UACTimerForce, false)
		tk.Spend(10000)
	})
	r.eng.Run()
	if r.got[1].timeout == 0 {
		t.Fatal("timer-force never fired")
	}
	if r.last[1].timeoutAt < start+100 {
		t.Errorf("first fire at %d, want >= %d", r.last[1].timeoutAt, start+100)
	}
}

func TestTimerPresetWhileDisabled(t *testing.T) {
	r := newTimerRig(t, 100)
	if got := r.ni[1].TimerRemaining(); got != 100 {
		t.Errorf("idle remaining = %d, want preset 100", got)
	}
	r.ni[1].SetTimerPreset(500)
	if got := r.ni[1].TimerRemaining(); got != 500 {
		t.Errorf("remaining after SetTimerPreset = %d, want 500", got)
	}
}

func TestEndAtomDisarmsTimer(t *testing.T) {
	r := newTimerRig(t, 100)
	r.cpu.NewTask("user", cpu.PrioUser, cpu.DomainUser, func(tk *cpu.Task) {
		r.ni[1].BeginAtom(UACInterruptDisable, false)
		for !r.ni[1].MessageAvailable() {
			tk.Spend(5)
		}
		tk.Spend(50)
		// Leave the atomic section: the pending message interrupts instead
		// of timing out.
		r.ni[1].EndAtom(UACInterruptDisable, false)
		tk.Spend(10000)
	})
	r.eng.Schedule(0, func() { r.send(0, 1, false, 1) })
	r.eng.Run()
	if r.got[1].timeout != 0 {
		t.Errorf("timeout fired %d times after endatom, want 0", r.got[1].timeout)
	}
	if r.got[1].avail != 1 {
		t.Errorf("message-available = %d after endatom, want 1", r.got[1].avail)
	}
}
