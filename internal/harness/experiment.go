package harness

import (
	"context"
	"fmt"
	"io"
)

// Point is one independent unit of work inside an experiment sweep — one
// (configuration, trial) pair. Each point builds and runs its own
// deterministic glaze.Machine, so points may execute concurrently and in
// any order; the Runner keys results by enumeration index, never by
// completion order.
type Point struct {
	// Label names the point for progress reporting and error messages,
	// e.g. "barnes skew=1.0% trial=0".
	Label string
	// Run executes the point. It must be safe to call concurrently with
	// other points. The context is advisory: simulation points run to
	// completion, but long-running or synthetic points should honor
	// cancellation.
	Run func(ctx context.Context, opt Options) (any, error)
}

// Result is a structured experiment outcome. Rendering is the caller's
// business (cmd/fugusim is the only place that prints tables); experiments
// themselves only return data.
type Result interface {
	// Print renders the paper-style table or ASCII figure.
	Print(w io.Writer)
}

// CSVer is implemented by results that can also render themselves as CSV
// files, keyed by file name.
type CSVer interface {
	CSVFiles() map[string]string
}

// Experiment is a named, discoverable reproduction of one of the paper's
// data-bearing tables or figures.
type Experiment struct {
	// Name is the registry key ("table4", "fig9", ...).
	Name string
	// Description is the one-line summary `fugusim list` prints.
	Description string
	// Points enumerates the sweep for the given options. The enumeration
	// must be deterministic: same options, same points, same order.
	Points func(opt Options) []Point
	// Assemble folds the per-point results — results[i] belongs to
	// Points(opt)[i] — into the experiment's structured result.
	Assemble func(opt Options, results []any) (Result, error)
}

// registry holds every registered experiment in registration order (the
// order `fugusim list` and `fugusim run all` use).
var registry []*Experiment

// register adds an experiment; duplicate names are a programming error.
func register(e *Experiment) {
	if _, ok := Lookup(e.Name); ok {
		panic("harness: duplicate experiment " + e.Name)
	}
	registry = append(registry, e)
}

func init() {
	register(table4Experiment())
	register(table5Experiment())
	register(table6Experiment())
	register(fig7and8Experiment())
	register(fig9Experiment())
	register(fig10Experiment())
	register(crlStressExperiment())
	register(crucibleExperiment())
	register(policyLabExperiment())
	register(bufferLabExperiment())
}

// Experiments returns every registered experiment in registration order.
func Experiments() []*Experiment {
	out := make([]*Experiment, len(registry))
	copy(out, registry)
	return out
}

// Names returns the registered experiment names in registration order.
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (*Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// Run looks up a registered experiment and runs it on a default Runner.
func Run(ctx context.Context, name string, opts ...Option) (Result, error) {
	exp, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", name, Names())
	}
	return new(Runner).Run(ctx, exp, opts...)
}

// runAs runs a registered experiment and asserts its concrete result type,
// backing the typed convenience entry points (Table4, Fig9, ...).
func runAs[T Result](name string, opts ...Option) (T, error) {
	res, err := Run(context.Background(), name, opts...)
	if err != nil {
		var zero T
		return zero, err
	}
	return res.(T), nil
}
