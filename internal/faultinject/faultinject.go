// Package faultinject is the deterministic fault planner for second-case
// delivery: a seeded schedule of protection violations and resource stalls
// — forced GID mismatches, atomicity timeouts, synthetic handler page
// faults, quantum expiries, frame starvation, link stalls, hot-spot
// congestion, DMA stalls, tiny output windows and gang-schedule skew —
// injected through nil-safe hooks in mesh, nic, glaze and udm.
//
// Two properties are load-bearing:
//
//   - Zero extra randomness is charged to the machine RNG. The injector
//     draws from its own PCG stream (see pcg.go), so a run with a fault
//     plan installed consumes engine randomness in exactly the same order
//     as a run without one, and a plan whose specs are all disarmed
//     reproduces the fault-free goldens byte for byte.
//
//   - Every hook is nil-safe, following the internal/metrics instrument
//     pattern: a nil *Injector answers "no fault" from every method, so
//     call sites fire unconditionally and the uninstrumented hot path
//     stays allocation-free.
package faultinject

import "fmt"

// Kind enumerates the injectable fault classes. The first five force the
// paper's five second-case transition causes; the rest stress the
// surrounding machinery (network, DMA engine, scheduler) without directly
// flipping a process into buffered mode.
type Kind int

// Fault kinds.
const (
	// GIDMismatch marks an arriving user packet so the NI treats its GID
	// as mismatched: the kernel demultiplexes it into the owner's virtual
	// buffer exactly as a scheduler-skew mismatch would.
	GIDMismatch Kind = iota
	// AtomicityTimeout fires the NI's atomicity-timeout interrupt on a
	// user packet's arrival, forcing revocation if the resident process is
	// still in fast mode.
	AtomicityTimeout
	// HandlerPageFault takes a synthetic page fault at handler dispatch:
	// the kernel charges fault service and shifts the process to buffered
	// mode, as a real fault inside a handler would.
	HandlerPageFault
	// QuantumExpiry preempts the resident process at handler dispatch (a
	// forced quantum boundary) and resumes it Cycles later; messages
	// arriving meanwhile mismatch against the null GID and buffer.
	QuantumExpiry
	// FrameStarvation withholds Cycles frames from the node's pool for
	// the spec's window, driving the buffer toward overflow control.
	// Window-based: Prob is ignored and Until must be set.
	FrameStarvation
	// LinkStall delays a packet leaving the spec's node by Cycles.
	LinkStall
	// HotSpot delays a packet arriving at the spec's node by Cycles
	// (congestion at a hot destination).
	HotSpot
	// DMAStall extends one output-buffer drain by Cycles (a stalled DMA
	// engine holds the send descriptor busy longer).
	DMAStall
	// TinyWindow clamps the NI's space-available register to Cycles words
	// for the spec's window, stalling blocking injects. Window-based:
	// Prob is ignored and Until must be set.
	TinyWindow
	// GangSkew delays a node's next gang-scheduler tick by Cycles,
	// widening the mis-scheduling window between nodes.
	GangSkew

	// NumKinds bounds the kind space.
	NumKinds
)

func (k Kind) String() string {
	switch k {
	case GIDMismatch:
		return "gid-mismatch"
	case AtomicityTimeout:
		return "atomicity-timeout"
	case HandlerPageFault:
		return "handler-fault"
	case QuantumExpiry:
		return "quantum-expiry"
	case FrameStarvation:
		return "frame-starvation"
	case LinkStall:
		return "link-stall"
	case HotSpot:
		return "hot-spot"
	case DMAStall:
		return "dma-stall"
	case TinyWindow:
		return "tiny-window"
	case GangSkew:
		return "gang-skew"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AllNodes is the FaultSpec.Node value that applies a fault to every node.
const AllNodes = -1

// FaultSpec arms one fault kind. The zero value is disarmed.
type FaultSpec struct {
	// Prob is the per-opportunity firing probability (an "opportunity" is
	// one arrival, one dispatch, one launch... depending on the kind).
	// The window kinds FrameStarvation and TinyWindow ignore it: they are
	// level conditions, active for the whole [From, Until) window.
	Prob float64
	// From and Until bound the active window in cycles: the spec applies
	// at times t with From <= t < Until. Until == 0 means no upper bound,
	// except for the window kinds, which require a bounded window (an
	// unbounded clamp or starvation could wedge the run by design).
	From, Until uint64
	// Cycles is the kind's magnitude: stall/delay length, resume delay
	// for QuantumExpiry, the space-available clamp in words for
	// TinyWindow, or the frame count for FrameStarvation.
	Cycles uint64
	// Node restricts the fault to one node; AllNodes (or any negative
	// value) applies it everywhere. For LinkStall the node is the sender,
	// for HotSpot the receiver.
	Node int
}

// windowKind reports whether k is a level condition (no probability draw).
func windowKind(k Kind) bool { return k == FrameStarvation || k == TinyWindow }

// armed reports whether the spec can ever fire as kind k.
func (s *FaultSpec) armed(k Kind) bool {
	if windowKind(k) {
		return s.Cycles > 0 && s.Until > s.From
	}
	return s.Prob > 0
}

// appliesTo reports whether the spec covers node at time now.
func (s *FaultSpec) appliesTo(node int, now uint64) bool {
	if s.Node >= 0 && s.Node != node {
		return false
	}
	return now >= s.From && (s.Until == 0 || now < s.Until)
}

// Plan is a complete fault schedule: one spec per kind plus the seed of
// the injector's private PCG stream. Plans are plain values — a Machine
// copies the plan into a fresh Injector, so one Plan can parameterize many
// concurrent machines.
type Plan struct {
	Seed  uint64
	Specs [NumKinds]FaultSpec
}

// Arm installs a spec for one kind and returns the plan for chaining.
func (p *Plan) Arm(k Kind, s FaultSpec) *Plan {
	p.Specs[k] = s
	return p
}

// Armed reports whether any spec in the plan can fire.
func (p *Plan) Armed() bool {
	for k := Kind(0); k < NumKinds; k++ {
		if p.Specs[k].armed(k) {
			return true
		}
	}
	return false
}

// Horizon returns the latest Until across armed specs and whether every
// armed spec is bounded. After a bounded horizon, continued traffic drains
// every process back to fast mode — the "faults lift" oracle.
func (p *Plan) Horizon() (until uint64, bounded bool) {
	bounded = true
	for k := Kind(0); k < NumKinds; k++ {
		s := &p.Specs[k]
		if !s.armed(k) {
			continue
		}
		if s.Until == 0 {
			bounded = false
			continue
		}
		if s.Until > until {
			until = s.Until
		}
	}
	return until, bounded
}

// String renders the armed specs compactly.
func (p *Plan) String() string {
	out := fmt.Sprintf("plan(seed=%#x", p.Seed)
	for k := Kind(0); k < NumKinds; k++ {
		s := &p.Specs[k]
		if !s.armed(k) {
			continue
		}
		out += fmt.Sprintf(" %s{p=%g w=[%d,%d) c=%d n=%d}", k, s.Prob, s.From, s.Until, s.Cycles, s.Node)
	}
	return out + ")"
}
