package glaze

import (
	"fugu/internal/vm"
)

// swBuffer is a process's virtual software buffer: the slow half of two-case
// delivery. Messages are stored length-prefixed in a dedicated virtual
// address space whose physical pages are allocated on demand (virtual
// buffering), reclaimed as the reader passes them, and — under absolute
// frame exhaustion — paged out to backing store over the OS network so
// delivery stays guaranteed.
type swBuffer struct {
	space *vm.Space
	head  uint64 // word address of the next unread message's length word
	tail  uint64 // word address where the next message will be written
	count int    // messages resident (pushed, not yet fully consumed)

	// Backing store ("swap"): contents of paged-out buffer pages, keyed by
	// virtual page number. Reached via the second logical network.
	swap map[uint64][]uint64

	// meta tracks per-message timestamps in insertion order, parallel to the
	// buffered records. It is simulator bookkeeping (latency and residency
	// instrumentation), not simulated memory: it consumes no frames and never
	// pages, so recording it cannot perturb experiment results.
	meta []msgMeta

	noReclaim bool // pinned-buffer ablation: never release pages

	inserted   uint64 // lifetime pushes
	vmallocs   uint64 // pushes that demand-allocated at least one page
	pageOuts   uint64
	pageIns    uint64
	maxPending int // high water of resident (unconsumed) messages
}

func newSWBuffer(frames *vm.Frames) *swBuffer {
	return &swBuffer{
		space: vm.NewSpace(frames),
		swap:  make(map[uint64][]uint64),
	}
}

// msgMeta carries a buffered message's identity and timestamps: the mesh
// packet ID (for lifecycle spans), when the sender injected it and when
// the insert handler copied it into the buffer.
type msgMeta struct {
	id         uint64
	sentAt     uint64
	insertedAt uint64
}

// pushResult reports what the insert handler must charge for.
type pushResult struct {
	newPages int // pages demand-allocated (vmalloc path)
	pagedOut int // pages evicted to backing store to make room
}

// push appends a message stamped with its packet ID, its injection time
// (sentAt) and the current time. It never fails: when the frame pool is
// exhausted it evicts the oldest fully-written buffer pages ahead of the
// tail to backing store (the guaranteed-delivery path of Section 4.2).
func (b *swBuffer) push(id uint64, words []uint64, sentAt, now uint64) pushResult {
	var res pushResult
	need := uint64(len(words)) + 1
	// Ensure residency for every page the record touches.
	for addr := b.tail; addr < b.tail+need; addr += vm.PageWords {
		res = b.ensure(addr, res)
	}
	res = b.ensure(b.tail+need-1, res)
	b.space.Write(b.tail, uint64(len(words)))
	for i, w := range words {
		b.space.Write(b.tail+1+uint64(i), w)
	}
	b.tail += need
	b.count++
	b.inserted++
	b.meta = append(b.meta, msgMeta{id: id, sentAt: sentAt, insertedAt: now})
	if res.newPages > 0 {
		b.vmallocs++
	}
	if b.count > b.maxPending {
		b.maxPending = b.count
	}
	return res
}

// ensure makes addr's page resident, paging out victims if required.
func (b *swBuffer) ensure(addr uint64, res pushResult) pushResult {
	vp := vm.PageOf(addr)
	if _, swapped := b.swap[vp]; swapped {
		// Rare: the tail page itself was evicted. Bring it back.
		res = b.pageIn(vp, res)
		return res
	}
	faulted, ok := b.space.Ensure(addr)
	for !ok {
		res = b.evictVictim(res)
		faulted, ok = b.space.Ensure(addr)
	}
	if faulted {
		res.newPages++
	}
	return res
}

// evictVictim pages out the oldest resident page at or after head that is
// not the current tail page. Preferring pages closest to the head would
// evict data about to be read; FUGU's proposal pages out to clear space for
// the *insert* path, so we take the page just after the reader's current
// page — it will be needed latest among full pages... in practice the
// buffer spans few pages and any victim works; we choose the lowest-numbered
// resident page that is not the head page and not the tail page, falling
// back to the head page.
func (b *swBuffer) evictVictim(res pushResult) pushResult {
	headVp := vm.PageOf(b.head)
	tailVp := vm.PageOf(b.tail)
	for vp := headVp; vp <= tailVp; vp++ {
		if vp == tailVp {
			break
		}
		if vp == headVp && headVp+1 <= tailVp {
			continue // prefer not to evict the page being read
		}
		if words := b.space.Evict(vp * vm.PageWords); words != nil {
			b.swap[vp] = words
			b.pageOuts++
			res.pagedOut++
			return res
		}
	}
	// Fall back to the head page itself.
	if words := b.space.Evict(headVp * vm.PageWords); words != nil {
		b.swap[headVp] = words
		b.pageOuts++
		res.pagedOut++
		return res
	}
	panic("glaze: buffer has no evictable page but pool is exhausted")
}

// pageIn restores a swapped page, evicting something else if necessary.
func (b *swBuffer) pageIn(vp uint64, res pushResult) pushResult {
	words := b.swap[vp]
	delete(b.swap, vp)
	for !b.space.Install(vp*vm.PageWords, words) {
		res = b.evictVictim(res)
	}
	b.pageIns++
	return res
}

// empty reports whether all pushed messages have been consumed.
func (b *swBuffer) empty() bool { return b.count == 0 }

// headLen returns the length of the message at the head. The head page may
// have been paged out; pagedIn reports the restore (caller charges PageIn).
func (b *swBuffer) headLen() (n int, pagedIn int) {
	pagedIn = b.touch(b.head)
	return int(b.space.Read(b.head)), pagedIn
}

// headWord returns word i of the head message, restoring pages as needed.
func (b *swBuffer) headWord(i int) (w uint64, pagedIn int) {
	addr := b.head + 1 + uint64(i)
	pagedIn = b.touch(addr)
	return b.space.Read(addr), pagedIn
}

// touch makes addr resident, returning how many pages were paged in.
func (b *swBuffer) touch(addr uint64) int {
	vp := vm.PageOf(addr)
	if _, swapped := b.swap[vp]; !swapped {
		return 0
	}
	res := b.pageIn(vp, pushResult{})
	return 1 + res.pagedOut // paging in may itself have evicted
}

// headID returns the packet ID of the head message, false if empty.
func (b *swBuffer) headID() (uint64, bool) {
	if len(b.meta) == 0 {
		return 0, false
	}
	return b.meta[0].id, true
}

// pendingIDs lists the packet IDs of the unconsumed buffered messages, in
// insertion order (diagnostics).
func (b *swBuffer) pendingIDs() []uint64 {
	if len(b.meta) == 0 {
		return nil
	}
	ids := make([]uint64, len(b.meta))
	for i, m := range b.meta {
		ids[i] = m.id
	}
	return ids
}

// headSentAt returns the injection time of the head message, false if empty.
func (b *swBuffer) headSentAt() (uint64, bool) {
	if len(b.meta) == 0 {
		return 0, false
	}
	return b.meta[0].sentAt, true
}

// pop consumes the head message, unmapping buffer pages wholly behind the
// reader so physical consumption tracks the live window. It returns the
// consumed message's timestamps for residency accounting.
func (b *swBuffer) pop() msgMeta {
	if b.count == 0 {
		panic("glaze: pop from empty software buffer")
	}
	meta := b.meta[0]
	copy(b.meta, b.meta[1:])
	b.meta = b.meta[:len(b.meta)-1]
	n, _ := b.headLen()
	b.head += uint64(n) + 1
	b.count--
	if b.noReclaim {
		return meta
	}
	// Reclaim pages fully consumed: every page strictly below the head's
	// current page holds only read data.
	for vp := vm.PageOf(b.head); vp > 0; {
		prev := vp - 1
		if words := b.space.Evict(prev * vm.PageWords); words == nil {
			// Not resident: maybe swapped; drop swap copies too.
			if _, ok := b.swap[prev]; ok {
				delete(b.swap, prev)
				vp = prev
				continue
			}
			break
		}
		vp = prev
	}
	if b.count == 0 {
		// Fully drained: release everything, including the page under the
		// head/tail cursor.
		b.space.Release()
		for vp := range b.swap {
			delete(b.swap, vp)
		}
	}
	return meta
}

// pagesResident returns physical pages currently consumed by the buffer.
func (b *swBuffer) pagesResident() int { return b.space.PagesMapped() }

// PagesHighWater returns the most physical pages the buffer ever held —
// the per-node metric behind the paper's "less than seven pages/node".
func (b *swBuffer) PagesHighWater() int { return b.space.HighWater() }
