package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"testing/quick"

	"fugu/internal/delivery"
	"fugu/internal/faultinject"
	"fugu/internal/sim"
	"fugu/internal/spans"
)

// TestDwellConservationProperty is the end-to-end anatomy invariant: for ANY
// fault plan — random per-cause probabilities, random seed — and EVERY
// registered delivery policy, the per-stage dwell cycles summed over all
// terminal spans equal the summed end-to-end latencies exactly. Faults are
// what make this interesting: backpressure stalls, atomicity revocations and
// quantum expiries push messages through every stage combination, and no
// path may lose or double-charge a cycle.
func TestDwellConservationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	for _, polName := range delivery.Names() {
		polName := polName
		t.Run(polName, func(t *testing.T) {
			pol, err := delivery.ByName(polName)
			if err != nil {
				t.Fatal(err)
			}
			check := func(seed uint64, pMis, pExp, pStall uint8) bool {
				plan := cruciblePlan{
					name: fmt.Sprintf("dwell-%#x", seed),
					arm: func(p *faultinject.Plan) {
						w := func(b uint8, cycles uint64) faultinject.FaultSpec {
							return faultinject.FaultSpec{
								Prob: float64(b) / 365.0,
								From: crucibleFaultsStart, Until: crucibleFaultsLift,
								Cycles: cycles, Node: faultinject.AllNodes,
							}
						}
						p.Arm(faultinject.GIDMismatch, w(pMis, 0))
						p.Arm(faultinject.QuantumExpiry, w(pExp, 1_500))
						p.Arm(faultinject.LinkStall, w(pStall, 250))
					},
				}
				rec := spans.NewRecorder(nil)
				pt := runCrucible(plan, 0, NewOptions(
					WithQuick(), WithTrials(1), WithSeed(seed),
					WithDeliveryPolicy(pol), WithSpans(rec)))
				if len(pt.row.Problems) > 0 {
					t.Logf("seed=%#x policy=%s: %v", seed, polName, pt.row.Problems)
					return false
				}
				if rec.Terminated() == 0 {
					t.Logf("seed=%#x policy=%s: no spans terminated", seed, polName)
					return false
				}
				var dwell uint64
				for _, d := range rec.StageDwellTotals() {
					dwell += d
				}
				if dwell != rec.LatencyTotal() {
					t.Logf("seed=%#x policy=%s: dwells sum to %d, latencies to %d",
						seed, polName, dwell, rec.LatencyTotal())
					return false
				}
				// The recorder's own aggregate check must agree (it is the
				// same invariant the crucible oracle enforces).
				if probs := rec.Check(rec.Counts().Fast+rec.Counts().FlipFast, rec.Counts().Inserts); len(probs) > 0 {
					t.Logf("seed=%#x policy=%s: %v", seed, polName, probs)
					return false
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAnatomyDoesNotPerturbGolden pins the observation-only contract of this
// PR's instrumentation: running the golden experiments with the span
// recorder (dwell anatomy on) AND the engine cost profiler attached must
// reproduce the golden CSVs byte-for-byte — recording charges no simulated
// cycles, draws no RNG, and the profiler only observes dispatches.
func TestAnatomyDoesNotPerturbGolden(t *testing.T) {
	for _, name := range []string{"table4", "fig9"} {
		want := goldenFast[name]
		exp, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		rec := spans.NewRecorder(nil)
		prof := sim.NewProfiler(sim.ProfilerConfig{Wall: true})
		res, err := (&Runner{}).Run(context.Background(), exp,
			WithQuick(), WithTrials(1), WithSeed(1), WithParallelism(1),
			WithSpans(rec), WithProfiler(prof))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		files := res.(CSVer).CSVFiles()
		for file, wantHash := range want {
			sum := sha256.Sum256([]byte(files[file]))
			if got := hex.EncodeToString(sum[:]); got != wantHash {
				t.Errorf("%s with anatomy+profiler attached: %s hash = %s, want golden %s "+
					"(span/profiler instrumentation must be observation-only)",
					name, file, got, wantHash)
			}
		}
		if rec.Terminated() == 0 {
			t.Errorf("%s: anatomy observed no terminal spans", name)
		}
		if prof.Snapshot().Events == 0 {
			t.Errorf("%s: profiler observed no events", name)
		}
	}
}
