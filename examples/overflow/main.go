// Overflow demonstrates virtual buffering's guaranteed delivery and the
// overflow-control mechanism: an unruly sender floods a slow consumer whose
// node has a deliberately tiny frame pool. The kernel buffers into virtual
// memory, pages out to backing store over the OS network when frames run
// out, trips overflow control (globally suspending the job and advising the
// scheduler to co-schedule it), and still delivers every message in order.
package main

import (
	"fmt"

	"fugu"
)

const (
	hFlood = 1
	n      = 1200
	frames = 8 // a 32 KB node: pressure arrives quickly
)

func main() {
	m := fugu.NewMachine(fugu.DefaultConfig(), fugu.WithMesh(2, 1), fugu.WithFrames(frames))
	job := m.NewJob("flood")
	null := m.NewJob("null")
	fugu.Attach(null.Process(0))
	fugu.Attach(null.Process(1))
	ep0 := fugu.Attach(job.Process(0))
	ep1 := fugu.Attach(job.Process(1))

	delivered := 0
	inOrder := true
	ep1.On(hFlood, func(e *fugu.Env, msg *fugu.Msg) {
		if int(msg.Args[0]) != delivered {
			inOrder = false
		}
		delivered++
		e.Spend(600) // slow consumer: production outruns consumption
	})

	throttleSeen := false
	args := make([]uint64, 14)
	job.Process(0).StartMain(func(t *fugu.Task) {
		e := ep0.Env(t)
		for i := 0; i < n; i++ {
			args[0] = uint64(i)
			e.Inject(1, hFlood, args...)
			if job.Process(0).Throttled() {
				throttleSeen = true
			}
		}
	})
	job.Process(1).StartMain(func(t *fugu.Task) {
		for delivered < n {
			t.Spend(20_000)
		}
	})

	m.NewGang(50_000, 0.5, job, null).Start()
	m.RunUntilDone(0, job)

	fmt.Printf("delivered %d/%d messages, in order: %v\n", delivered, n, inOrder)
	fmt.Printf("sender observed overflow throttling: %v\n", throttleSeen)
	fmt.Printf("overflow-control trips at consumer: %d\n", m.Nodes[1].Kernel.OverflowTrips)
	fmt.Printf("frame pool high water: %d of %d frames (bounded by virtual buffering)\n",
		m.Nodes[1].Frames.HighWater(), frames)
	fmt.Printf("max buffer pages at consumer: %d\n", job.Process(1).BufferPagesHighWater())
}
