package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"fugu/internal/delivery"
	"fugu/internal/niq"
)

// Golden SHA-256 hashes of every CSV the experiments emit at the canonical
// reference configuration (quick, 1 trial, seed 1, serial). These pin the
// simulator's end-to-end determinism across refactors: any change to event
// ordering, cost accounting, rng consumption or result assembly shows up
// here as a byte-level diff. Regenerate after a *deliberate* behavioural
// change with
//
//	go run ./cmd/fugusim run all -quick -trials 1 -seed 1 -j 1 -csv out/
//	(cd out && sha256sum *.csv)
//
// and update the tables below, noting why in the commit message.
var goldenFast = map[string]map[string]string{
	"table4": {"table4.csv": "ebea092c53d6870d7c35a9c9001bc95e2b3d9a141f6ae3c68e72f39092aef43c"},
	"table5": {"table5.csv": "b250310ce6d373a58bc917e7e315c001a291e8a97197ecb982e5722e89782c51"},
	"fig9":   {"fig9.csv": "003ede8306b9a83ca8180051a63afdaffbb0cb55492fa43c8e75c19fb0970c2f"},
	"fig10":  {"fig10.csv": "58179a303c54fb58d1457be419d58a0ef1d1ade8de12f5da87f2ed8c129f67ba"},
}

// goldenSlow covers the experiments too heavy for every `go test` cycle;
// they run unless -short is set.
var goldenSlow = map[string]map[string]string{
	"table6": {"table6.csv": "0f540f3047fda197daf032a4a67c24d35db073a8003fce8e64773e8f35c9e66c"},
	"fig7and8": {
		"fig7.csv": "8393f768423cda790d515796dcf4f7d609fe859a10844f8601643ae39c403bc6",
		"fig8.csv": "f441e8503d7141f72331abbfef8cc358fe3388f7c5018f8a1fd30d8fdd69108d",
	},
}

// checkGolden runs one experiment at the reference configuration and
// compares every emitted CSV against its pinned hash.
func checkGolden(t *testing.T, name string, want map[string]string) {
	t.Helper()
	exp, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	res, err := (&Runner{}).Run(context.Background(), exp,
		WithQuick(), WithTrials(1), WithSeed(1), WithParallelism(1))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	csv, ok := res.(CSVer)
	if !ok {
		t.Fatalf("%s result does not emit CSV", name)
	}
	files := csv.CSVFiles()
	for file, wantHash := range want {
		content, ok := files[file]
		if !ok {
			t.Errorf("%s: no %s in CSV output", name, file)
			continue
		}
		sum := sha256.Sum256([]byte(content))
		if got := hex.EncodeToString(sum[:]); got != wantHash {
			t.Errorf("%s: %s hash = %s, want %s (simulation output changed; "+
				"see golden_test.go for how to regenerate deliberately)",
				name, file, got, wantHash)
		}
	}
}

// TestGoldenCSVs pins the fast experiments' output byte-for-byte.
func TestGoldenCSVs(t *testing.T) {
	for name, want := range goldenFast {
		name, want := name, want
		t.Run(name, func(t *testing.T) { checkGolden(t, name, want) })
	}
}

// TestGoldenExplicitTwoCase pins the DeliveryPolicy seam itself: selecting
// delivery.TwoCase explicitly must be byte-identical to the machine default
// (nil policy). The refactor moved the virtual software buffer behind the
// Policy interface; this test is the proof no cost, rng draw or event
// reordered on the way.
func TestGoldenExplicitTwoCase(t *testing.T) {
	for _, name := range []string{"table4", "fig9"} {
		want := goldenFast[name]
		exp, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		res, err := (&Runner{}).Run(context.Background(), exp,
			WithQuick(), WithTrials(1), WithSeed(1), WithParallelism(1),
			WithDeliveryPolicy(delivery.TwoCase{}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		files := res.(CSVer).CSVFiles()
		for file, wantHash := range want {
			sum := sha256.Sum256([]byte(files[file]))
			if got := hex.EncodeToString(sum[:]); got != wantHash {
				t.Errorf("%s with explicit TwoCase: %s hash = %s, want golden %s "+
					"(selecting the default policy must be bit-identical to not selecting one)",
					name, file, got, wantHash)
			}
		}
	}
}

// TestGoldenExplicitFIFO pins the InputQueue seam the same way: selecting
// niq's static FIFO explicitly must be byte-identical to the machine
// default (zero spec), serial and at 2 and 4 engine partitions. The seam
// moved the receive queue behind an interface; this is the proof the
// default organization neither costs, draws nor reorders anything on the
// way — at any partition count.
func TestGoldenExplicitFIFO(t *testing.T) {
	for _, name := range []string{"table4", "fig9"} {
		want := goldenFast[name]
		exp, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		for _, parts := range []int{1, 2, 4} {
			res, err := (&Runner{}).Run(context.Background(), exp,
				WithQuick(), WithTrials(1), WithSeed(1), WithParallelism(1),
				WithInputQueue(niq.Spec{Model: niq.ModelFIFO}), WithPartitions(parts))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			files := res.(CSVer).CSVFiles()
			for file, wantHash := range want {
				sum := sha256.Sum256([]byte(files[file]))
				if got := hex.EncodeToString(sum[:]); got != wantHash {
					t.Errorf("%s with explicit fifo queue at %d partition(s): %s hash = %s, want golden %s "+
						"(selecting the default queue organization must be bit-identical to not selecting one)",
						name, parts, file, got, wantHash)
				}
			}
		}
	}
}

// TestGoldenCSVsSlow pins the heavyweight experiments (tens of seconds);
// skipped under -short.
func TestGoldenCSVsSlow(t *testing.T) {
	if testing.Short() {
		t.Skip("slow golden experiments skipped in -short mode")
	}
	for name, want := range goldenSlow {
		name, want := name, want
		t.Run(name, func(t *testing.T) { checkGolden(t, name, want) })
	}
}
