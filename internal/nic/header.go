// Package nic models the FUGU network interface: the memory-mapped register
// file of Figure 3, the atomic operations of Table 1, the interrupts and
// traps of Table 2 and the User Atomicity Control flags of Table 3 of the
// paper, including the GID protection check and the revocable interrupt
// disable (atomicity timer) mechanism.
//
// The NI is pure hardware model: it consumes no simulated time itself.
// Cycle costs for using it (Table 4) are charged by the software layers
// (internal/udm for user code, internal/glaze for the kernel).
package nic

// GID is a Group Identifier labelling a gang of processes that may exchange
// messages. The hardware stamps the sender's GID into every outgoing header
// and checks it at the receiver.
type GID uint16

// KernelGID marks operating-system messages. User code attempting to launch
// a message with the kernel bit set takes a protection-violation trap.
const KernelGID GID = 0

// Header field layout within word 0 of a message:
//
//	bits  0-7   destination node
//	bit   15    kernel-message flag
//	bits 16-31  GID (stamped by hardware at launch)
const (
	headerDstMask  = 0xff
	headerKernel   = 1 << 15
	headerGIDShift = 16
)

// MakeHeader builds a routing header for a user message to dst. The GID
// field is left zero; hardware stamps it at launch.
func MakeHeader(dst int) uint64 {
	return uint64(dst) & headerDstMask
}

// MakeKernelHeader builds a routing header for an operating-system message.
func MakeKernelHeader(dst int) uint64 {
	return MakeHeader(dst) | headerKernel
}

// HeaderDst extracts the destination node from a header word.
func HeaderDst(h uint64) int { return int(h & headerDstMask) }

// HeaderGID extracts the stamped GID from a header word.
func HeaderGID(h uint64) GID { return GID(h >> headerGIDShift) }

// HeaderIsKernel reports whether the header is a kernel message.
func HeaderIsKernel(h uint64) bool { return h&headerKernel != 0 }

// stampGID writes a GID into a header word.
func stampGID(h uint64, g GID) uint64 {
	return (h &^ (uint64(0xffff) << headerGIDShift)) | uint64(g)<<headerGIDShift
}
