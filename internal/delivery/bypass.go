package delivery

import (
	"fmt"

	"fugu/internal/vm"
)

// BypassRing is the kernel-bypass organization (after "Safe Sharing of Fast
// Kernel-Bypass I/O Among Nontrusting Applications"): the NI demultiplexes
// arriving user packets directly into per-process protected descriptor
// rings, with no kernel on the receive path at all. Each process owns a
// statically partitioned ring of pinned pages sized at process creation;
// protection comes from the partitioning (a process can only see its own
// ring). There is no kernel buffered mode: when a ring is full the NI
// refuses the packet and the network NACKs it back for sender retry — the
// drop/retry overflow discipline of bypass NIs, and exactly the
// backpressure pathology two-case delivery was designed to avoid.
type BypassRing struct {
	// Pages is the pinned pages statically allocated per process ring.
	Pages int
	// SlotWords is the ring slot size in words; one message (length prefix
	// plus payload) must fit in a slot.
	SlotWords int
}

// DefaultBypassRing returns the default ring geometry: 4 pinned pages of
// 128-word slots (32 slots) per process.
func DefaultBypassRing() BypassRing {
	return BypassRing{Pages: 4, SlotWords: 128}
}

// Name implements Policy.
func (BypassRing) Name() string { return "bypass" }

// KernelBuffered implements Policy: there is no kernel divert machinery —
// revocation, in-handler faults and context switches never flip the process
// to buffered mode, and the mismatch/timeout ISRs stand down.
func (BypassRing) KernelBuffered() bool { return false }

// HardwareDemux implements Policy: the NI sorts user packets into rings
// itself.
func (BypassRing) HardwareDemux() bool { return true }

// NewStore implements Policy: the ring's pages are allocated eagerly and
// pinned for the life of the process (static partitioning).
func (b BypassRing) NewStore(frames *vm.Frames, p Params) Store {
	pages := b.Pages
	if pages <= 0 {
		pages = 4
	}
	slotWords := b.SlotWords
	if slotWords <= 0 {
		slotWords = 128
	}
	s := &ringStore{
		space:     vm.NewSpace(frames),
		costs:     p.Costs,
		pages:     pages,
		slotWords: slotWords,
		slots:     pages * vm.PageWords / slotWords,
	}
	for vp := 0; vp < pages; vp++ {
		if _, ok := s.space.Ensure(uint64(vp) * vm.PageWords); !ok {
			panic(fmt.Sprintf("delivery: cannot pin bypass ring page %d/%d: frame pool exhausted at process creation", vp+1, pages))
		}
	}
	return s
}

// ringStore is one process's descriptor ring: slots*slotWords words across
// statically pinned pages, FIFO by slot index.
type ringStore struct {
	space     *vm.Space
	costs     Costs
	pages     int
	slotWords int
	slots     int

	head     int // slot index of the next unread message
	count    int // messages resident
	reserved int // slots promised by Admit but not yet Pushed

	meta []MsgMeta

	inserted   uint64
	refused    uint64 // admissions refused (ring full or message oversized)
	maxPending int
}

// Admit implements Store: the NI's admission check. A message too large for
// a slot or arriving to a full ring is refused — the network NACKs it and
// the sender retries. Admission reserves the slot, so packets sitting in
// the NI input queue behind other admitted packets cannot oversubscribe the
// ring.
func (s *ringStore) Admit(nwords int) bool {
	if nwords+1 > s.slotWords {
		s.refused++
		return false
	}
	if s.count+s.reserved >= s.slots {
		s.refused++
		return false
	}
	s.reserved++
	return true
}

// Push implements Store, consuming the reservation its Admit took.
func (s *ringStore) Push(id uint64, words []uint64, sentAt, now uint64) PushResult {
	if s.count >= s.slots {
		panic("delivery: push to full bypass ring")
	}
	if s.reserved > 0 {
		s.reserved--
	}
	slot := (s.head + s.count) % s.slots
	base := uint64(slot * s.slotWords)
	s.space.Write(base, uint64(len(words)))
	for i, w := range words {
		s.space.Write(base+1+uint64(i), w)
	}
	s.count++
	s.inserted++
	s.meta = append(s.meta, MsgMeta{ID: id, SentAt: sentAt, InsertedAt: now})
	if s.count > s.maxPending {
		s.maxPending = s.count
	}
	return PushResult{}
}

// InsertCost implements Store: the NI writes the ring with DMA; no
// processor cycles are spent on insert.
func (s *ringStore) InsertCost(r PushResult) uint64 { return 0 }

// Pop implements Store: advancing the ring head is a register write; the
// extract costs are charged by the caller.
func (s *ringStore) Pop() (MsgMeta, uint64) {
	if s.count == 0 {
		panic("delivery: pop from empty bypass ring")
	}
	meta := s.meta[0]
	copy(s.meta, s.meta[1:])
	s.meta = s.meta[:len(s.meta)-1]
	s.head = (s.head + 1) % s.slots
	s.count--
	return meta, 0
}

// Empty implements Store.
func (s *ringStore) Empty() bool { return s.count == 0 }

// Pending implements Store.
func (s *ringStore) Pending() int { return s.count }

// HeadLen implements Store.
func (s *ringStore) HeadLen() int {
	return int(s.space.Read(uint64(s.head * s.slotWords)))
}

// HeadWord implements Store.
func (s *ringStore) HeadWord(i int) uint64 {
	return s.space.Read(uint64(s.head*s.slotWords) + 1 + uint64(i))
}

// HeadID implements Store.
func (s *ringStore) HeadID() (uint64, bool) {
	if len(s.meta) == 0 {
		return 0, false
	}
	return s.meta[0].ID, true
}

// HeadSentAt implements Store.
func (s *ringStore) HeadSentAt() (uint64, bool) {
	if len(s.meta) == 0 {
		return 0, false
	}
	return s.meta[0].SentAt, true
}

// PendingIDs implements Store.
func (s *ringStore) PendingIDs() []uint64 {
	if len(s.meta) == 0 {
		return nil
	}
	ids := make([]uint64, len(s.meta))
	for i, m := range s.meta {
		ids[i] = m.ID
	}
	return ids
}

// PagesResident implements Store: the ring is statically pinned.
func (s *ringStore) PagesResident() int { return s.space.PagesMapped() }

// PagesHighWater implements Store.
func (s *ringStore) PagesHighWater() int { return s.space.HighWater() }

// VMAllocs implements Store: a static ring never allocates after creation.
func (s *ringStore) VMAllocs() uint64 { return 0 }

// Refused reports admissions turned away (ring full), each one a NACK and a
// sender retry (tests and diagnostics; the NI counts these globally too).
func (s *ringStore) Refused() uint64 { return s.refused }

// MaxPending reports the high water of unconsumed messages (tests).
func (s *ringStore) MaxPending() int { return s.maxPending }
