package crl

import (
	"testing"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
	"fugu/internal/udm"
)

// TestDeadlockSeedRegression replays the schedule that used to lose a
// deferred home request (machine seed 0x9459729f43aff4c8, 41+ ops per
// node; dissected in docs/crl-deadlock-0x9459729f43aff4c8.md) with the
// liveness watchdog installed. The run must complete with no lost
// updates; if the protocol regresses, the watchdog guarantees the test
// fails fast with a structured liveness report instead of hanging until
// the cycle budget runs out.
func TestDeadlockSeedRegression(t *testing.T) {
	for _, ops := range []int{41, 45, 49} {
		total, m, job := runStressMachine(t, 0x9459729f43aff4c8, ops)
		if rep := m.WatchdogReport(); rep != nil {
			t.Fatalf("ops=%d: run wedged; liveness report:\n%s", ops, rep.String())
		}
		if !job.Done() {
			t.Fatalf("ops=%d: run did not complete and the watchdog did not fire", ops)
		}
		if want := uint64(4 * ops); total != want {
			t.Fatalf("ops=%d: total increments = %d, want %d (lost updates)", ops, total, want)
		}
	}
}

// runStressMachine executes the coherence stress workload (identical to
// TestCoherenceStressProperty's, for schedule fidelity) on a
// watchdog-instrumented machine and returns the summed region counters.
func runStressMachine(t *testing.T, seed uint64, ops int) (uint64, *glaze.Machine, *glaze.Job) {
	t.Helper()
	const regions = 3
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 4, 1
	cfg.Seed = seed
	cfg.Watchdog = glaze.WatchdogConfig{Interval: 100_000, Grace: 3}
	m := glaze.NewMachine(cfg)
	job := m.NewJob("stress")
	crls := make([]*Node, 4)
	eps := make([]*udm.EP, 4)
	for i := 0; i < 4; i++ {
		eps[i] = udm.Attach(job.Process(i))
		crls[i] = New(eps[i], 4)
	}
	done := udm.NewCounter()
	eps[0].On(900, func(e *udm.Env, msg *udm.Msg) { done.Add(1) })
	final := make([]uint64, regions)
	job.Process(0).StartMain(func(tk *cpu.Task) {
		c := crls[0]
		rgs := make([]*Region, regions)
		for r := 0; r < regions; r++ {
			if c.homeOf(RegionID(r)) == 0 {
				rgs[r] = c.Create(RegionID(r), 4)
			}
		}
		tk.Spend(2000)
		for r := 0; r < regions; r++ {
			if rgs[r] == nil {
				rgs[r] = c.Map(RegionID(r), 4)
			}
		}
		stressOps(tk, m, c, rgs, ops, 0)
		done.WaitFor(tk, 3)
		for r := 0; r < regions; r++ {
			c.StartRead(tk, rgs[r])
			final[r] = rgs[r].Read(0)
			c.EndRead(tk, rgs[r])
		}
	})
	for node := 1; node < 4; node++ {
		node := node
		job.Process(node).StartMain(func(tk *cpu.Task) {
			c := crls[node]
			rgs := make([]*Region, regions)
			for r := 0; r < regions; r++ {
				if c.homeOf(RegionID(r)) == node {
					rgs[r] = c.Create(RegionID(r), 4)
				}
			}
			tk.Spend(2000)
			for r := 0; r < regions; r++ {
				if rgs[r] == nil {
					rgs[r] = c.Map(RegionID(r), 4)
				}
			}
			stressOps(tk, m, c, rgs, ops, node)
			eps[node].Env(tk).Inject(0, 900)
		})
	}
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(2_000_000_000, job)
	var total uint64
	for _, v := range final {
		total += v
	}
	return total, m, job
}
