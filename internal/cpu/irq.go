package cpu

// IRQ is an interrupt vector with a counting (edge-triggered) semantics: each
// Raise queues one handler invocation. The handler runs in a dedicated,
// non-preemptible ISR task at PrioISR, so interrupt handlers mask further
// interrupts for their duration and pending vectors are served FIFO — the
// behaviour of FUGU's kernel-level interrupt stubs.
type IRQ struct {
	cpu     *CPU
	name    string
	task    *Task
	handler func(*Task)
	pending int
	masked  bool
	raised  uint64 // lifetime count, for stats and tests
}

// NewIRQ registers an interrupt vector on the CPU. handler runs once per
// Raise, in ISR context; it may Spend cycles, unblock tasks and raise other
// vectors, and should not block indefinitely.
func (c *CPU) NewIRQ(name string, handler func(*Task)) *IRQ {
	irq := &IRQ{cpu: c, name: name, handler: handler}
	irq.task = c.NewTask("isr:"+name, PrioISR, DomainKernel, func(t *Task) {
		for {
			for irq.pending > 0 && !irq.masked {
				irq.pending--
				irq.handler(t)
			}
			t.Block()
		}
	})
	return irq
}

// Raise queues one invocation of the vector's handler. Safe from any
// context. If the CPU is running lower-priority work it is preempted at its
// next boundary (immediately, if it is mid-Spend).
func (irq *IRQ) Raise() {
	irq.raised++
	irq.pending++
	if !irq.masked && irq.task.Blocked() {
		irq.task.Unblock()
	}
}

// Mask defers handler invocations until Unmask. An invocation already in
// progress completes.
func (irq *IRQ) Mask() { irq.masked = true }

// Unmask re-enables the vector and dispatches any raises that arrived while
// masked.
func (irq *IRQ) Unmask() {
	irq.masked = false
	if irq.pending > 0 && irq.task.Blocked() {
		irq.task.Unblock()
	}
}

// Masked reports whether the vector is masked.
func (irq *IRQ) Masked() bool { return irq.masked }

// Pending reports queued, not-yet-handled raises.
func (irq *IRQ) Pending() int { return irq.pending }

// Raised reports the lifetime number of raises.
func (irq *IRQ) Raised() uint64 { return irq.raised }

// Name returns the vector's diagnostic name.
func (irq *IRQ) Name() string { return irq.name }

// Task exposes the vector's ISR task (for cycle-accounting queries).
func (irq *IRQ) Task() *Task { return irq.task }
