package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"fugu/internal/harness"
	"fugu/internal/spans"
	"fugu/internal/telemetry"
)

// watchHeaderEvery is how many dashboard rows print between header reprints,
// so a long scroll never strands the reader without column names.
const watchHeaderEvery = 20

// watchCmd implements `fugusim watch`: replay one sweep point serially with
// interval sampling enabled and stream a dashboard row per interval as
// simulated time advances — per-interval fast/buffered deliveries, buffer
// inserts, overflow trips, NACKs, pinned buffer pages, NI queue depths,
// handler spans in flight and the per-node delivery-mode glyph string. The
// stream is the flight recorder's OnSample hook, so what scrolls past is
// exactly what `-timeline` would export; simulated time, not wall clock,
// paces the rows.
func watchCmd(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	common := registerCommon(fs)
	point := fs.Int("point", 0, "sweep point index to watch (see -list)")
	listPts := fs.Bool("list", false, "list the experiment's sweep points and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fugusim watch [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", harness.Names())
		fs.PrintDefaults()
	}
	names := parseInterleaved(fs, args)
	if len(names) != 1 {
		fs.Usage()
		os.Exit(2)
	}
	common.resolve()

	// Watching forces sampling on even without -timeline flags; the shared
	// flags still tune interval and ring capacity when given.
	tc := common.telemetryConfig()
	if !tc.Enabled() {
		tc = telemetry.Config{Every: telemetry.DefaultEvery, Cap: *common.tlCap}
	}
	rowN := 0
	tc.OnSample = func(iv telemetry.Interval) {
		if rowN%watchHeaderEvery == 0 {
			fmt.Printf("%-3s %-12s %7s %7s %6s %7s %6s %6s %9s %7s %8s %13s  %s\n",
				"ep", "cycle", "Δfast", "Δbuf", "fast%", "Δins", "Δovfl", "Δnack",
				"pages", "queue", "inflight", "Δdwell q/b", "modes")
		}
		rowN++
		fmt.Print(watchRow(iv))
	}

	// A span recorder feeds the sampler's per-stage dwell totals, so the
	// dashboard (and any -timeline export) shows dwell drift per interval.
	rec := spans.NewRecorder(nil)
	opts := append(common.harnessOptions(),
		harness.WithTrials(1), harness.WithParallelism(1),
		harness.WithSpans(rec), harness.WithTelemetry(tc))
	opt := harness.NewOptions(opts...)
	exp, pts, sel, err := resolvePoint(names[0], pointIndex(*point, *listPts), opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(2)
	}
	if *listPts {
		listPoints(os.Stdout, pts)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	pt := *sel
	fmt.Fprintf(os.Stderr, "watching %s point %d (%s) every %d cycles\n",
		exp.Name, *point, pt.Label, tc.Every)
	res, err := pt.Run(ctx, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %s (%s): %v\n", exp.Name, pt.Label, err)
		os.Exit(1)
	}
	if c, ok := res.(harness.TimelineCarrier); ok {
		if tl := c.TimelineData(); !tl.Empty() {
			sum := tl.SumCounters()
			fmt.Printf("watch: %d intervals (%d dropped from ring), final: fast=%d buffered=%d inserts=%d overflow=%d\n",
				len(tl.Intervals), tl.Dropped,
				sum["glaze.deliver.fast"], sum["glaze.deliver.buffered"],
				sum["glaze.buffer.inserts"], sum["glaze.overflow.trips"])
		}
	}
	if *common.metricsDir != "" {
		if mc, ok := res.(harness.MetricsCarrier); ok {
			writeMetrics(*common.metricsDir, exp.Name)(mc.MetricsSnapshot())
		}
	}
}

// watchRow formats one interval as a dashboard line.
func watchRow(iv telemetry.Interval) string {
	fast := iv.Counters["glaze.deliver.fast"]
	buf := iv.Counters["glaze.deliver.buffered"]
	fastPct := "-"
	if fast+buf > 0 {
		fastPct = fmt.Sprintf("%5.1f", float64(fast)/float64(fast+buf)*100)
	}
	pages := iv.Gauges["glaze.buffer.pages"]
	// Per-interval dwell-cycle deltas for the two stages worth watching live:
	// queued (NI residency) and buffered (second-case store residency).
	dwell := fmt.Sprintf("%d/%d", iv.Dwell["queued"], iv.Dwell["buffered"])
	return fmt.Sprintf("%-3d %-12d %7d %7d %6s %7d %6d %6d %4d/%-4d %3d/%-3d %8d %13s  %s\n",
		iv.Epoch, iv.Cycle, fast, buf, fastPct,
		iv.Counters["glaze.buffer.inserts"],
		iv.Counters["glaze.overflow.trips"],
		iv.Counters["nic.nacked"],
		pages.Cur, pages.Max,
		iv.QueueSum, iv.QueueMax,
		iv.SpansInFlight, dwell, iv.Modes)
}
