// Package metrics is the simulator's observability core: a registry of
// named instruments — counters, gauges and bounded log2-bucket histograms —
// that every simulator layer (sim, mesh, nic, glaze, udm, crl) records into.
//
// The hot path is allocation-free: instruments are looked up once, at
// construction time, and recording is a plain field update on the returned
// pointer. All instrument methods are nil-safe no-ops, so a layer wired to a
// nil Registry (unit tests, standalone use) records nothing at zero cost
// beyond a predictable branch.
//
// The simulation engine is single-threaded per machine, so instruments are
// deliberately unsynchronized; independent machines (parallel sweep points)
// each carry their own registries and are merged after the fact through
// Snapshot and Merge, which are deterministic regardless of merge order.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing count.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add accumulates n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level that also remembers its lifetime maximum
// (the high-water mark the paper's buffer measurements are built on).
type Gauge struct {
	cur, max int64
}

// Set installs a new level, advancing the maximum.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.cur = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the level by delta and returns the new level.
func (g *Gauge) Add(delta int64) int64 {
	if g == nil {
		return 0
	}
	g.Set(g.cur + delta)
	return g.cur
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.cur
}

// Max returns the lifetime maximum level.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// NumBuckets is the fixed histogram bucket count: bucket 0 holds exact
// zeros and bucket i (1..64) holds values in [2^(i-1), 2^i - 1].
const NumBuckets = 65

// Histogram is a bounded log2-bucket histogram of uint64 samples (cycle
// counts, latencies). Observation is allocation-free: a fixed bucket array
// plus count/sum/min/max.
type Histogram struct {
	count, sum uint64
	min, max   uint64
	buckets    [NumBuckets]uint64
}

// bucketOf maps a sample to its bucket index: 0 for 0, else floor(log2 v)+1.
func bucketOf(v uint64) int { return bits.Len64(v) }

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return (uint64(1) << uint(i)) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average sample, 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Registry is a named set of instruments. Instrument constructors are
// get-or-create: asking twice for the same name returns the same instrument;
// asking for a name already registered as a different kind panics (a
// programming error, like a duplicate experiment name).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// checkKind panics if name is already registered under another kind.
func (r *Registry) checkKind(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("metrics: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("metrics: %q already registered as a histogram", name))
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.checkKind(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.checkKind(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.checkKind(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Names returns every registered instrument name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
