package spans

import (
	"fmt"
	"sort"
	"strings"
)

// Section is one titled block of a diagnostic report (per-node run-queue
// state, buffer contents, a subsystem's protocol state, ...).
type Section struct {
	Title string
	Body  string
}

// WaitEdge is one edge of a waits-for graph: From cannot proceed until To
// does. Vertex names are free-form but must agree across providers for
// cycle detection to connect them (the CRL provider uses "acq:n<node>:r<id>",
// "txn:r<id>" and "sec:r<id>@<node>").
type WaitEdge struct {
	From string
	To   string
	Note string
}

// Report is a liveness diagnostic: why the watchdog fired, the state of
// every node, and the waits-for graph with any cycle found in it.
type Report struct {
	At       uint64
	Reason   string
	Sections []Section
	Edges    []WaitEdge
	Cycle    []string // closed vertex path, first == last; nil if acyclic
}

// String renders the report for humans.
func (r *Report) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== liveness report at t=%d ==\n", r.At)
	fmt.Fprintf(&b, "reason: %s\n", r.Reason)
	for _, s := range r.Sections {
		fmt.Fprintf(&b, "\n-- %s --\n%s", s.Title, s.Body)
		if !strings.HasSuffix(s.Body, "\n") {
			b.WriteByte('\n')
		}
	}
	b.WriteString("\n-- waits-for graph --\n")
	if len(r.Edges) == 0 {
		b.WriteString("(no edges reported)\n")
	}
	for _, e := range r.Edges {
		fmt.Fprintf(&b, "%s -> %s", e.From, e.To)
		if e.Note != "" {
			fmt.Fprintf(&b, "  (%s)", e.Note)
		}
		b.WriteByte('\n')
	}
	if len(r.Cycle) > 0 {
		fmt.Fprintf(&b, "CYCLE: %s\n", strings.Join(r.Cycle, " -> "))
	} else {
		b.WriteString("no waits-for cycle detected (a dangling wait suggests a lost or dropped event)\n")
	}
	return b.String()
}

// FindCycle returns a cycle in the waits-for graph as a closed vertex
// path (first element repeated last), or nil if the graph is acyclic.
// The search is deterministic: vertices and successors are visited in
// sorted order, so equal inputs yield an identical cycle.
func FindCycle(edges []WaitEdge) []string {
	adj := make(map[string][]string)
	verts := make([]string, 0, len(edges))
	seen := make(map[string]bool)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		for _, v := range []string{e.From, e.To} {
			if !seen[v] {
				seen[v] = true
				verts = append(verts, v)
			}
		}
	}
	sort.Strings(verts)
	for _, succ := range adj {
		sort.Strings(succ)
	}

	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make(map[string]int, len(verts))
	var path []string
	var dfs func(v string) []string
	dfs = func(v string) []string {
		color[v] = gray
		path = append(path, v)
		for _, w := range adj[v] {
			switch color[w] {
			case gray:
				// Found a back edge: the cycle is the path suffix from w.
				for i, p := range path {
					if p == w {
						cyc := append([]string(nil), path[i:]...)
						return append(cyc, w)
					}
				}
			case white:
				if cyc := dfs(w); cyc != nil {
					return cyc
				}
			}
		}
		path = path[:len(path)-1]
		color[v] = black
		return nil
	}
	for _, v := range verts {
		if color[v] == white {
			if cyc := dfs(v); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}
