package crl

import (
	"testing"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
	"fugu/internal/udm"
)

// rig: a 4-node machine with one job, CRL attached on every node.
type rig struct {
	m   *glaze.Machine
	job *glaze.Job
	crl []*Node
	eps []*udm.EP
}

func newRig(t *testing.T) *rig {
	t.Helper()
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 4, 1
	m := glaze.NewMachine(cfg)
	job := m.NewJob("crl")
	r := &rig{m: m, job: job}
	for i := 0; i < 4; i++ {
		ep := udm.Attach(job.Process(i))
		r.eps = append(r.eps, ep)
		r.crl = append(r.crl, New(ep, 4))
	}
	m.NewGang(1<<40, 0, job).Start()
	return r
}

// run starts mains (fn per node) and runs to completion.
func (r *rig) run(t *testing.T, fns map[int]func(tk *cpu.Task, c *Node)) {
	t.Helper()
	for node, fn := range fns {
		node, fn := node, fn
		r.job.Process(node).StartMain(func(tk *cpu.Task) { fn(tk, r.crl[node]) })
	}
	r.m.RunUntilDone(500_000_000, r.job)
	if !r.job.Done() {
		t.Fatal("job did not complete (deadlock?)")
	}
}

func TestLocalHomeSections(t *testing.T) {
	r := newRig(t)
	r.run(t, map[int]func(tk *cpu.Task, c *Node){
		0: func(tk *cpu.Task, c *Node) {
			rg := c.Create(0, 8)
			c.StartWrite(tk, rg)
			rg.Write(3, 42)
			c.EndWrite(tk, rg)
			c.StartRead(tk, rg)
			if rg.Read(3) != 42 {
				t.Error("home read-back failed")
			}
			c.EndRead(tk, rg)
			if c.Misses != 0 {
				t.Errorf("home-local sections missed %d times", c.Misses)
			}
		},
	})
}

func TestRemoteReadSeesHomeData(t *testing.T) {
	r := newRig(t)
	r.run(t, map[int]func(tk *cpu.Task, c *Node){
		0: func(tk *cpu.Task, c *Node) {
			rg := c.Create(0, 8)
			c.StartWrite(tk, rg)
			for i := 0; i < 8; i++ {
				rg.Write(i, uint64(100+i))
			}
			c.EndWrite(tk, rg)
			tk.Spend(100_000)
		},
		1: func(tk *cpu.Task, c *Node) {
			tk.Spend(10_000) // let the home create and write first
			rg := c.Map(0, 8)
			c.StartRead(tk, rg)
			for i := 0; i < 8; i++ {
				if rg.Read(i) != uint64(100+i) {
					t.Errorf("word %d = %d, want %d", i, rg.Read(i), 100+i)
				}
			}
			c.EndRead(tk, rg)
			if c.Misses != 1 {
				t.Errorf("misses = %d, want 1", c.Misses)
			}
		},
	})
}

func TestWriteInvalidatesSharers(t *testing.T) {
	r := newRig(t)
	phase := udmCounterPerNode(r)
	r.run(t, map[int]func(tk *cpu.Task, c *Node){
		0: func(tk *cpu.Task, c *Node) {
			rg := c.Create(0, 4)
			c.StartWrite(tk, rg)
			rg.Write(0, 1)
			c.EndWrite(tk, rg)
			phase[0].WaitFor(tk, 3) // all readers saw v1
			c.StartWrite(tk, rg)    // must invalidate the three sharers
			rg.Write(0, 2)
			c.EndWrite(tk, rg)
			for n := 1; n < 4; n++ {
				r.eps[0].Env(tk).Inject(n, 900) // go-ahead for v2 read
			}
			phase[0].WaitFor(tk, 6)
		},
		1: readerNode(t, r, phase, 1),
		2: readerNode(t, r, phase, 2),
		3: readerNode(t, r, phase, 3),
	})
}

// readerNode reads v1, acks, waits for the go-ahead, reads again expecting
// v2 (its shared copy must have been invalidated in between).
func readerNode(t *testing.T, r *rig, phase []*udm.Counter, node int) func(tk *cpu.Task, c *Node) {
	return func(tk *cpu.Task, c *Node) {
		tk.Spend(10_000)
		rg := c.Map(0, 4)
		c.StartRead(tk, rg)
		if got := rg.Read(0); got != 1 {
			t.Errorf("node %d first read = %d, want 1", node, got)
		}
		c.EndRead(tk, rg)
		r.eps[node].Env(tk).Inject(0, 900) // ack to home
		phase[node].WaitFor(tk, 1)         // wait for go-ahead
		c.StartRead(tk, rg)
		if got := rg.Read(0); got != 2 {
			t.Errorf("node %d second read = %d, want 2 (stale copy!)", node, got)
		}
		c.EndRead(tk, rg)
		r.eps[node].Env(tk).Inject(0, 900)
	}
}

// udmCounterPerNode registers a trivial signal handler (id 900) per node.
func udmCounterPerNode(r *rig) []*udm.Counter {
	cs := make([]*udm.Counter, 4)
	for i := 0; i < 4; i++ {
		cs[i] = udm.NewCounter()
		c := cs[i]
		r.eps[i].On(900, func(e *udm.Env, m *udm.Msg) { c.Add(1) })
	}
	return cs
}

func TestExclusiveMigration(t *testing.T) {
	r := newRig(t)
	phase := udmCounterPerNode(r)
	r.run(t, map[int]func(tk *cpu.Task, c *Node){
		0: func(tk *cpu.Task, c *Node) {
			c.Create(0, 4) // home here, but written remotely
			phase[0].WaitFor(tk, 2)
		},
		1: func(tk *cpu.Task, c *Node) {
			tk.Spend(10_000)
			rg := c.Map(0, 4)
			c.StartWrite(tk, rg)
			rg.Write(2, 77)
			c.EndWrite(tk, rg)
			r.eps[1].Env(tk).Inject(2, 900) // tell node 2 to read
			phase[1].WaitFor(tk, 1)
			r.eps[1].Env(tk).Inject(0, 900)
		},
		2: func(tk *cpu.Task, c *Node) {
			phase[2].WaitFor(tk, 1)
			rg := c.Map(0, 4)
			c.StartRead(tk, rg) // forces a flush out of node 1
			if got := rg.Read(2); got != 77 {
				t.Errorf("migrated read = %d, want 77", got)
			}
			c.EndRead(tk, rg)
			r.eps[2].Env(tk).Inject(1, 900)
			r.eps[2].Env(tk).Inject(0, 900)
		},
	})
}

func TestDeferredInvalidation(t *testing.T) {
	r := newRig(t)
	phase := udmCounterPerNode(r)
	var writeDone, readClosed uint64
	r.run(t, map[int]func(tk *cpu.Task, c *Node){
		0: func(tk *cpu.Task, c *Node) {
			rg := c.Create(0, 4)
			c.StartWrite(tk, rg)
			rg.Write(0, 5)
			c.EndWrite(tk, rg)
			phase[0].WaitFor(tk, 1) // node 1 holds a read section
			c.StartWrite(tk, rg)    // blocks until node 1 ends its section
			writeDone = tk.Now()
			rg.Write(0, 6)
			c.EndWrite(tk, rg)
		},
		1: func(tk *cpu.Task, c *Node) {
			tk.Spend(10_000)
			rg := c.Map(0, 4)
			c.StartRead(tk, rg)
			r.eps[1].Env(tk).Inject(0, 900)
			tk.Spend(50_000) // dawdle inside the read section
			if rg.Read(0) != 5 {
				t.Error("value changed under an open read section")
			}
			c.EndRead(tk, rg)
			readClosed = tk.Now()
		},
	})
	if writeDone < readClosed {
		t.Errorf("write granted at %d before read section closed at %d", writeDone, readClosed)
	}
}

func TestChunkedLargeRegion(t *testing.T) {
	r := newRig(t)
	const size = 200 // far larger than one message: multi-chunk replies
	r.run(t, map[int]func(tk *cpu.Task, c *Node){
		0: func(tk *cpu.Task, c *Node) {
			rg := c.Create(0, size)
			c.StartWrite(tk, rg)
			for i := 0; i < size; i++ {
				rg.Write(i, uint64(i*i))
			}
			c.EndWrite(tk, rg)
			tk.Spend(200_000)
		},
		3: func(tk *cpu.Task, c *Node) {
			tk.Spend(20_000)
			rg := c.Map(0, size)
			c.StartRead(tk, rg)
			for i := 0; i < size; i++ {
				if rg.Read(i) != uint64(i*i) {
					t.Fatalf("word %d corrupted in chunked transfer", i)
				}
			}
			c.EndRead(tk, rg)
		},
	})
}

// TestConcurrentIncrements is the coherence acid test: every node performs
// read-modify-write increments under write sections; the total must be
// exact, which requires exclusive ownership to be handed around correctly.
func TestConcurrentIncrements(t *testing.T) {
	r := newRig(t)
	const perNode = 50
	done := udm.NewCounter()
	r.eps[0].On(901, func(e *udm.Env, m *udm.Msg) { done.Add(1) })
	r.job.Process(0).StartMain(func(tk *cpu.Task) {
		c := r.crl[0]
		rg := c.Create(0, 1)
		incr(tk, c, rg, perNode)
		done.WaitFor(tk, 3)
		c.StartRead(tk, rg)
		if got := rg.Read(0); got != 4*perNode {
			t.Errorf("final counter = %d, want %d", got, 4*perNode)
		}
		c.EndRead(tk, rg)
	})
	for node := 1; node < 4; node++ {
		node := node
		r.job.Process(node).StartMain(func(tk *cpu.Task) {
			tk.Spend(5_000)
			c := r.crl[node]
			rg := c.Map(0, 1)
			incr(tk, c, rg, perNode)
			r.eps[node].Env(tk).Inject(0, 901)
		})
	}
	r.m.RunUntilDone(1_000_000_000, r.job)
	if !r.job.Done() {
		t.Fatal("increment job did not complete")
	}
}

func incr(tk *cpu.Task, c *Node, rg *Region, times int) {
	for i := 0; i < times; i++ {
		c.StartWrite(tk, rg)
		rg.Write(0, rg.Read(0)+1)
		c.EndWrite(tk, rg)
		tk.Spend(uint64(50 * (c.self + 1))) // desynchronize nodes
	}
}
