package niq

import (
	"testing"
)

// FuzzNIQAdmitDrain feeds byte-decoded operation schedules (see driveOps for
// the encoding) through every queue model × allocation policy at tiny pool
// sizes, differentially against the naive reference. The fuzzer owns the
// hard part — schedules interleaving refusals, borrow exhaustion, GID
// retargeting, divert flips and bypass-budget resets — while driveOps checks
// admit/present/drain agreement, structural invariants, the reserve
// guarantee and conservation after every single operation.
func FuzzNIQAdmitDrain(f *testing.F) {
	f.Add([]byte{})
	// Fill, drain, refill: free-list recycling.
	f.Add([]byte{0, 0, 0, 1, 0, 2, 3, 0, 3, 0, 0, 0, 0, 1, 3, 0})
	// Kernel arrivals (bit 6) against exhausted user caps.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 64, 0, 65, 3, 0, 3, 0})
	// GID retarget and divert flips between bursts of mismatched arrivals.
	f.Add([]byte{5, 1, 0, 16, 0, 17, 6, 0, 3, 0, 6, 0, 5, 0, 0, 32, 3, 0, 3, 0})
	// Forced mismatches (bit 7) racing matching traffic: bypass pressure.
	f.Add([]byte{0, 128, 0, 1, 0, 17, 3, 0, 7, 0, 3, 0, 3, 0})
	// Single-source flood: reserve exhaustion, then borrow, then refusal.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("schedule too long")
		}
		for _, slots := range []int{3, 5} {
			for _, spec := range allSpecs(slots) {
				if err := driveOps(spec, 3, data); err != nil {
					t.Fatalf("%s/%d slots: %v", spec.Name(), slots, err)
				}
			}
		}
	})
}
