// Package apps implements the paper's workload: the three SPLASH-derived
// applications running on CRL software shared memory (Barnes, Water, LU),
// the two native-UDM programs (barrier and enum), the synth-N
// producer-consumer microbenchmark of Section 5.2, and the null application
// the experiments multiprogram against.
//
// Every application reports the Table 6 characterization columns (cycles,
// messages, T_betw, T_hand) through the shared instrumentation here.
package apps

import (
	"fmt"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
	"fugu/internal/udm"
)

// Instance is one configured application ready to attach to a job.
type Instance interface {
	// Name identifies the workload ("barnes", "synth-100", ...).
	Name() string
	// Model names the programming model, "UDM" or "CRL" (Table 6).
	Model() string
	// Start registers handlers and starts the main thread on every node of
	// the job. The job completes when all mains return.
	Start(m *glaze.Machine, job *glaze.Job)
	// Check validates the computation's output after the job completes.
	Check() error
}

// Handler id space: CRL owns 0x100-0x1ff; applications use 0x200 and up.
const (
	hBarrier = 0x200 + iota
	hSynthReq
	hSynthAck
	hEnumWork
	hEnumToken
	hEnumDone
	hGather
)

// Rig bundles the per-node endpoints an application attaches to.
type Rig struct {
	M   *glaze.Machine
	Job *glaze.Job
	EPs []*udm.EP
}

// NewRig attaches endpoints on every node of the job and registers itself
// on the job (Job.Tag) so measurement code can reach endpoint statistics.
func NewRig(m *glaze.Machine, job *glaze.Job) *Rig {
	r := &Rig{M: m, Job: job}
	for i := range m.Nodes {
		r.EPs = append(r.EPs, udm.Attach(job.Process(i)))
	}
	job.Tag = r
	return r
}

// HandlerMean returns the mean cycles per handled message across the job's
// endpoints — the measured T_hand of Table 6.
func (r *Rig) HandlerMean() float64 {
	var sum float64
	var n uint64
	for _, ep := range r.EPs {
		sum += ep.HandlerCycles.Sum
		n += ep.HandlerCycles.Count
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Nodes returns the machine size.
func (r *Rig) Nodes() int { return len(r.EPs) }

// TotalSent sums messages injected by the job across nodes.
func (r *Rig) TotalSent() uint64 {
	var n uint64
	for _, ep := range r.EPs {
		n += ep.Sent
	}
	return n
}

// Barrier is a dissemination barrier over UDM messages: log2(n) rounds of
// one message per node per round — the structure that makes the paper's
// barrier benchmark cost ~24 messages per episode on 8 nodes.
type Barrier struct {
	ep     *udm.EP
	self   int
	nodes  int
	rounds int
	epoch  uint64

	// Arrival counters, double-buffered by epoch parity so a neighbour
	// racing ahead into the next barrier cannot corrupt this one.
	slot     [2][]*udm.Counter
	expected [2][]uint64
}

// NewBarrier registers the barrier handler on one node's endpoint. All
// nodes of the job must create theirs before any Wait.
func NewBarrier(ep *udm.EP, nodes int) *Barrier {
	rounds := 0
	for 1<<rounds < nodes {
		rounds++
	}
	b := &Barrier{ep: ep, self: ep.Node(), nodes: nodes, rounds: rounds}
	for p := 0; p < 2; p++ {
		b.slot[p] = make([]*udm.Counter, rounds)
		b.expected[p] = make([]uint64, rounds)
		for r := range b.slot[p] {
			b.slot[p][r] = udm.NewCounter()
		}
	}
	ep.On(hBarrier, func(e *udm.Env, m *udm.Msg) {
		b.slot[m.Args[0]&1][m.Args[1]].Add(1)
	})
	return b
}

// Wait blocks until every node has entered the barrier. The wait polls
// inside an atomic section — the natural UDM discipline for code that
// orchestrates communication closely (Table 4's 9-cycle polling path) and
// the reason the barrier benchmark tracks schedule quality so directly.
func (b *Barrier) Wait(t *cpu.Task) {
	if b.nodes == 1 {
		return
	}
	e := b.ep.Env(t)
	e.BeginAtomic()
	p := b.epoch & 1
	for r := 0; r < b.rounds; r++ {
		dst := (b.self + 1<<r) % b.nodes
		e.Inject(dst, hBarrier, b.epoch, uint64(r))
		b.expected[p][r]++
		for b.slot[p][r].Value() < b.expected[p][r] {
			e.Poll()
		}
	}
	e.EndAtomic()
	b.epoch++
}

// Gatherer collects one completion message per node at node 0 — the usual
// way an Instance knows its distributed mains produced results.
type Gatherer struct {
	done *udm.Counter
}

// NewGatherer registers the gather handler on node 0's endpoint.
func NewGatherer(ep0 *udm.EP, onMsg func(args []uint64)) *Gatherer {
	g := &Gatherer{done: udm.NewCounter()}
	ep0.On(hGather, func(e *udm.Env, m *udm.Msg) {
		if onMsg != nil {
			onMsg(m.Args)
		}
		g.done.Add(1)
	})
	return g
}

// Report sends a completion message to node 0.
func (g *Gatherer) Report(e *udm.Env, args ...uint64) {
	e.Inject(0, hGather, args...)
}

// WaitAll blocks node 0 until n reports have arrived.
func (g *Gatherer) WaitAll(t *cpu.Task, n int) {
	g.done.WaitFor(t, uint64(n))
}

// Characterize computes the Table 6 columns for a completed standalone run:
// total cycles (wall), total messages, average cycles between communication
// events (runtime*nodes/messages, the paper's T_betw) and mean handler
// occupancy (T_hand).
func Characterize(r *Rig, runtime uint64) (cycles, msgs uint64, tBetw, tHand float64) {
	msgs = r.TotalSent()
	cycles = runtime
	if msgs > 0 {
		tBetw = float64(runtime) * float64(r.Nodes()) / float64(msgs)
	}
	var sum float64
	var n uint64
	for _, ep := range r.EPs {
		sum += ep.HandlerCycles.Sum
		n += ep.HandlerCycles.Count
	}
	if n > 0 {
		tHand = sum / float64(n)
	}
	return
}

// checkf builds a formatted check failure.
func checkf(format string, args ...any) error {
	return fmt.Errorf("apps: "+format, args...)
}
