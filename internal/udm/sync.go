package udm

import "fugu/internal/cpu"

// Counter is the user-level thread synchronization primitive the
// applications build on: handlers bump it, threads sleep until it reaches a
// target. It models a thread scheduler condition variable in the paper's
// lightweight user-level thread system. It is per-node state (no messaging
// of its own).
type Counter struct {
	n uint64
	q *cpu.WaitQ
}

// NewCounter returns a zeroed counter.
func NewCounter() *Counter {
	return &Counter{q: cpu.NewWaitQ("counter")}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Add increments the counter and wakes every waiter to re-check its target.
func (c *Counter) Add(delta uint64) {
	c.n += delta
	c.q.WakeAll()
}

// WaitFor blocks the task until the counter reaches target. Handlers (which
// run at elevated priority on the same CPU) make progress while the task
// sleeps.
func (c *Counter) WaitFor(t *cpu.Task, target uint64) {
	for c.n < target {
		c.q.Wait(t)
	}
}
