package vm

import (
	"testing"
	"testing/quick"
)

func TestEnsureZeroFill(t *testing.T) {
	s := NewSpace(NewFrames(4))
	faulted, ok := s.Ensure(5000)
	if !faulted || !ok {
		t.Fatalf("Ensure = (%v,%v), want fault+ok", faulted, ok)
	}
	if got := s.Read(5000); got != 0 {
		t.Errorf("fresh page word = %d, want 0", got)
	}
	// Second touch of the same page: no fault.
	faulted, ok = s.Ensure(5001)
	if faulted || !ok {
		t.Errorf("re-Ensure = (%v,%v), want no fault", faulted, ok)
	}
}

func TestReadWrite(t *testing.T) {
	s := NewSpace(NewFrames(4))
	s.Ensure(0)
	s.Write(7, 99)
	if s.Read(7) != 99 {
		t.Error("read back failed")
	}
	// Same page, different word untouched.
	if s.Read(8) != 0 {
		t.Error("neighbour word dirtied")
	}
}

func TestUnmappedAccessPanics(t *testing.T) {
	s := NewSpace(NewFrames(4))
	defer func() {
		if recover() == nil {
			t.Error("read of unmapped page did not panic")
		}
	}()
	s.Read(12345)
}

func TestFrameExhaustion(t *testing.T) {
	f := NewFrames(2)
	s := NewSpace(f)
	if _, ok := s.Ensure(0 * PageWords); !ok {
		t.Fatal("first alloc failed")
	}
	if _, ok := s.Ensure(1 * PageWords); !ok {
		t.Fatal("second alloc failed")
	}
	faulted, ok := s.Ensure(2 * PageWords)
	if !faulted || ok {
		t.Errorf("exhausted Ensure = (%v,%v), want fault+!ok", faulted, ok)
	}
	if s.Denied() != 1 {
		t.Errorf("Denied = %d, want 1", s.Denied())
	}
	if f.Free() != 0 || f.InUse() != 2 {
		t.Errorf("pool state free=%d inUse=%d", f.Free(), f.InUse())
	}
	// Freeing a page makes the allocation succeed.
	s.Unmap(0)
	if _, ok := s.Ensure(2 * PageWords); !ok {
		t.Error("Ensure after Unmap failed")
	}
}

func TestSharedPoolAcrossSpaces(t *testing.T) {
	f := NewFrames(3)
	a, b := NewSpace(f), NewSpace(f)
	a.Ensure(0)
	a.Ensure(PageWords)
	b.Ensure(0)
	if _, ok := b.Ensure(PageWords); ok {
		t.Error("pool did not limit across spaces")
	}
	a.Release()
	if f.InUse() != 1 {
		t.Errorf("InUse after release = %d, want 1", f.InUse())
	}
	if _, ok := b.Ensure(PageWords); !ok {
		t.Error("Ensure after peer release failed")
	}
}

func TestHighWater(t *testing.T) {
	f := NewFrames(10)
	s := NewSpace(f)
	for i := 0; i < 5; i++ {
		s.Ensure(uint64(i) * PageWords)
	}
	for i := 0; i < 3; i++ {
		s.Unmap(uint64(i) * PageWords)
	}
	s.Ensure(100 * PageWords)
	if f.HighWater() != 5 {
		t.Errorf("pool high water = %d, want 5", f.HighWater())
	}
	if s.HighWater() != 5 {
		t.Errorf("space high water = %d, want 5", s.HighWater())
	}
	if s.PagesMapped() != 3 {
		t.Errorf("mapped = %d, want 3", s.PagesMapped())
	}
}

func TestUnmapIdempotent(t *testing.T) {
	f := NewFrames(2)
	s := NewSpace(f)
	s.Ensure(0)
	s.Unmap(0)
	s.Unmap(0) // no-op, must not underflow the pool
	if f.InUse() != 0 {
		t.Errorf("InUse = %d, want 0", f.InUse())
	}
}

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 || PageOf(PageWords-1) != 0 || PageOf(PageWords) != 1 {
		t.Error("PageOf boundary arithmetic wrong")
	}
}

// Property: under any interleaving of Ensure/Unmap on bounded addresses,
// the pool accounting never goes negative, never exceeds the total, and
// high-water bounds in-use.
func TestAccountingInvariants(t *testing.T) {
	prop := func(ops []uint16) bool {
		f := NewFrames(8)
		s := NewSpace(f)
		for _, op := range ops {
			addr := uint64(op%32) * PageWords
			if op&0x8000 != 0 {
				s.Unmap(addr)
			} else {
				s.Ensure(addr)
			}
			if f.InUse() < 0 || f.InUse() > f.Total() {
				return false
			}
			if f.HighWater() < f.InUse() {
				return false
			}
			if s.PagesMapped() != f.InUse() {
				return false // single space: must track exactly
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: writes land on the right page/offset — no aliasing between
// distinct addresses.
func TestNoAliasing(t *testing.T) {
	prop := func(addrs []uint16) bool {
		s := NewSpace(NewFrames(64))
		written := map[uint64]uint64{}
		for i, a := range addrs {
			addr := uint64(a) % (32 * PageWords)
			if _, ok := s.Ensure(addr); !ok {
				return false
			}
			v := uint64(i + 1)
			s.Write(addr, v)
			written[addr] = v
		}
		for addr, v := range written {
			if s.Read(addr) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEvictInstallRoundTrip(t *testing.T) {
	f := NewFrames(2)
	s := NewSpace(f)
	s.Ensure(0)
	s.Write(5, 77)
	words := s.Evict(0)
	if words == nil || words[5] != 77 {
		t.Fatal("evict lost contents")
	}
	if f.InUse() != 0 || s.Mapped(0) {
		t.Error("evict did not release the frame")
	}
	if !s.Install(0, words) {
		t.Fatal("install failed with free frames")
	}
	if s.Read(5) != 77 {
		t.Error("install lost contents")
	}
}

func TestEvictNonResident(t *testing.T) {
	s := NewSpace(NewFrames(2))
	if s.Evict(12345) != nil {
		t.Error("evict of non-resident page returned words")
	}
}

func TestInstallFailsWhenExhausted(t *testing.T) {
	f := NewFrames(1)
	s := NewSpace(f)
	s.Ensure(0)
	if s.Install(PageWords, make([]uint64, PageWords)) {
		t.Error("install succeeded with no free frames")
	}
	if s.Denied() != 1 {
		t.Errorf("Denied = %d, want 1", s.Denied())
	}
}

func TestInstallOverResidentPanics(t *testing.T) {
	s := NewSpace(NewFrames(2))
	s.Ensure(0)
	defer func() {
		if recover() == nil {
			t.Error("double install did not panic")
		}
	}()
	s.Install(0, make([]uint64, PageWords))
}

func TestInstallWrongSizePanics(t *testing.T) {
	s := NewSpace(NewFrames(2))
	defer func() {
		if recover() == nil {
			t.Error("short install did not panic")
		}
	}()
	s.Install(0, make([]uint64, 3))
}
