package faultinject

import "testing"

// TestPCGReference pins the PCG-XSH-RR 64/32 output for seed 42 on our
// default stream, so the fault stream can never drift silently across
// refactors (every committed fault plan's firing schedule depends on it).
func TestPCGReference(t *testing.T) {
	p := newPCG(42)
	want := []uint32{0x713066ea, 0x3c7a0d56, 0xf424216a, 0x25c89145, 0x43e7ef3e}
	for i, w := range want {
		if got := p.next(); got != w {
			t.Fatalf("pcg output %d = %#x, want %#x", i, got, w)
		}
	}
}

// TestPCGDeterminism checks same-seed reproducibility and seed sensitivity.
func TestPCGDeterminism(t *testing.T) {
	a, b := newPCG(7), newPCG(7)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := newPCG(8)
	same := 0
	for i := 0; i < 100; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("seeds 7 and 8 agree on %d/100 draws", same)
	}
}

// TestPCGFloat64Range checks the unit-interval contract.
func TestPCGFloat64Range(t *testing.T) {
	p := newPCG(3)
	for i := 0; i < 10000; i++ {
		f := p.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64 out of [0,1): %v", f)
		}
	}
}

// TestNilInjector exercises every hook on a nil receiver: all must answer
// "no fault" without panicking.
func TestNilInjector(t *testing.T) {
	var in *Injector
	in.BindClock(func() uint64 { return 0 }) // no-op
	if d := in.SendDelay(0, 1); d != 0 {
		t.Errorf("nil SendDelay = %d", d)
	}
	if in.ForceMismatch(0) || in.ForceTimeout(0) || in.HandlerFault(0) {
		t.Error("nil injector fired a fault")
	}
	if _, ok := in.QuantumExpiry(0); ok {
		t.Error("nil QuantumExpiry fired")
	}
	if in.DMAStall(0) != 0 || in.GangSkew(0) != 0 {
		t.Error("nil stall hooks returned nonzero")
	}
	if _, ok := in.OutputClamp(0); ok {
		t.Error("nil OutputClamp active")
	}
	if in.WithheldFrames(0) != 0 {
		t.Error("nil WithheldFrames nonzero")
	}
	if in.Count(GIDMismatch) != 0 || in.Total() != 0 {
		t.Error("nil counts nonzero")
	}
	plan := in.Plan()
	if (in.Counts() != [NumKinds]uint64{}) || plan.Armed() {
		t.Error("nil injector carries state")
	}
}

// TestNilHooksAllocFree pins the uninstrumented hot path at 0 allocs/op.
func TestNilHooksAllocFree(t *testing.T) {
	var in *Injector
	allocs := testing.AllocsPerRun(1000, func() {
		in.SendDelay(0, 1)
		in.ForceMismatch(0)
		in.ForceTimeout(0)
		in.HandlerFault(0)
		in.QuantumExpiry(0)
		in.DMAStall(0)
		in.OutputClamp(0)
		in.WithheldFrames(0)
	})
	if allocs != 0 {
		t.Fatalf("nil hooks allocate %.1f/op, want 0", allocs)
	}
}

// TestArmedHooksAllocFree pins the instrumented path at 0 allocs/op too:
// fault draws must not perturb the simulator's allocation profile.
func TestArmedHooksAllocFree(t *testing.T) {
	var plan Plan
	plan.Arm(GIDMismatch, FaultSpec{Prob: 0.5, Node: AllNodes})
	plan.Arm(LinkStall, FaultSpec{Prob: 0.5, Cycles: 100, Node: AllNodes})
	plan.Arm(TinyWindow, FaultSpec{From: 0, Until: 1 << 40, Cycles: 4, Node: AllNodes})
	in := New(plan)
	in.BindClock(func() uint64 { return 1 })
	allocs := testing.AllocsPerRun(1000, func() {
		in.SendDelay(0, 1)
		in.ForceMismatch(0)
		in.OutputClamp(0)
	})
	if allocs != 0 {
		t.Fatalf("armed hooks allocate %.1f/op, want 0", allocs)
	}
}

// TestDrawWindowing checks From/Until gating and node restriction.
func TestDrawWindowing(t *testing.T) {
	var plan Plan
	plan.Arm(GIDMismatch, FaultSpec{Prob: 1, From: 100, Until: 200, Node: 2})
	in := New(plan)
	now := uint64(0)
	in.BindClock(func() uint64 { return now })

	if in.ForceMismatch(2) {
		t.Error("fired before From")
	}
	now = 150
	if in.ForceMismatch(1) {
		t.Error("fired on wrong node")
	}
	if !in.ForceMismatch(2) {
		t.Error("did not fire inside window on its node")
	}
	now = 200
	if in.ForceMismatch(2) {
		t.Error("fired at Until (window is half-open)")
	}
	if got := in.Count(GIDMismatch); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
}

// TestWindowKinds checks the level-condition semantics: active across the
// whole window, one count per activation, and Prob ignored.
func TestWindowKinds(t *testing.T) {
	var plan Plan
	plan.Arm(TinyWindow, FaultSpec{From: 10, Until: 20, Cycles: 4, Node: AllNodes})
	plan.Arm(FrameStarvation, FaultSpec{From: 10, Until: 20, Cycles: 64, Node: AllNodes})
	in := New(plan)
	now := uint64(0)
	in.BindClock(func() uint64 { return now })

	if _, ok := in.OutputClamp(0); ok {
		t.Error("clamp active before window")
	}
	now = 15
	for i := 0; i < 5; i++ {
		if w, ok := in.OutputClamp(0); !ok || w != 4 {
			t.Fatalf("clamp = (%d,%v) inside window, want (4,true)", w, ok)
		}
		if f := in.WithheldFrames(0); f != 64 {
			t.Fatalf("withheld = %d, want 64", f)
		}
	}
	if got := in.Count(TinyWindow); got != 1 {
		t.Errorf("tiny-window count = %d, want 1 per activation", got)
	}
	now = 25
	if _, ok := in.OutputClamp(0); ok {
		t.Error("clamp active after window")
	}
	if in.WithheldFrames(0) != 0 {
		t.Error("frames withheld after window")
	}
}

// TestWindowKindsRequireBound: an unbounded TinyWindow/FrameStarvation
// spec is disarmed (it could wedge a run by design).
func TestWindowKindsRequireBound(t *testing.T) {
	var plan Plan
	plan.Arm(TinyWindow, FaultSpec{Cycles: 4, Node: AllNodes}) // Until == 0
	if plan.Armed() {
		t.Error("unbounded tiny-window spec should be disarmed")
	}
	in := New(plan)
	in.BindClock(func() uint64 { return 100 })
	if _, ok := in.OutputClamp(0); ok {
		t.Error("unbounded clamp fired")
	}
}

// TestHorizon checks the faults-lift horizon computation.
func TestHorizon(t *testing.T) {
	var plan Plan
	if _, bounded := plan.Horizon(); !bounded {
		t.Error("empty plan should be bounded")
	}
	plan.Arm(GIDMismatch, FaultSpec{Prob: 0.1, Until: 500, Node: AllNodes})
	plan.Arm(TinyWindow, FaultSpec{From: 100, Until: 900, Cycles: 4, Node: AllNodes})
	until, bounded := plan.Horizon()
	if !bounded || until != 900 {
		t.Errorf("horizon = (%d,%v), want (900,true)", until, bounded)
	}
	plan.Arm(DMAStall, FaultSpec{Prob: 0.1, Cycles: 10, Node: AllNodes}) // unbounded
	if _, bounded := plan.Horizon(); bounded {
		t.Error("plan with an unbounded armed spec reported bounded")
	}
}

// TestInjectorDeterminism: two injectors on the same plan fire identically.
func TestInjectorDeterminism(t *testing.T) {
	var plan Plan
	plan.Seed = 0xfeed
	plan.Arm(GIDMismatch, FaultSpec{Prob: 0.3, Node: AllNodes})
	plan.Arm(LinkStall, FaultSpec{Prob: 0.2, Cycles: 50, Node: AllNodes})
	a, b := New(plan), New(plan)
	a.BindClock(func() uint64 { return 1 })
	b.BindClock(func() uint64 { return 1 })
	for i := 0; i < 500; i++ {
		if a.ForceMismatch(i%4) != b.ForceMismatch(i%4) {
			t.Fatalf("mismatch draws diverged at %d", i)
		}
		if a.SendDelay(i%4, (i+1)%4) != b.SendDelay(i%4, (i+1)%4) {
			t.Fatalf("delay draws diverged at %d", i)
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counts diverged: %v vs %v", a.Counts(), b.Counts())
	}
	if a.Count(GIDMismatch) == 0 || a.Count(LinkStall) == 0 {
		t.Fatalf("plan with p=0.3/0.2 never fired in 500 draws: %v", a.Counts())
	}
}

// TestKindStrings covers the labels the crucible prints.
func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate label %q", k, s)
		}
		seen[s] = true
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("out-of-range kind label")
	}
}
