package sim

import "testing"

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var times []uint64
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			times = append(times, p.Now())
		}
	})
	e.Run()
	want := []uint64{10, 20, 30}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("wake times = %v, want %v", times, want)
		}
	}
	if e.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d after completion, want 0", e.LiveProcs())
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			order = append(order, "a")
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(15)
			order = append(order, "b")
		}
	})
	e.Run()
	got := ""
	for _, s := range order {
		got += s
	}
	// a wakes at 10,20,30; b at 15,30,45. At the t=30 tie, b's wake was
	// scheduled earlier (when b parked at 15) so b runs first.
	if got != "ababab" {
		t.Errorf("interleave = %q, want ababab", got)
	}
}

func TestParkAndWake(t *testing.T) {
	e := NewEngine(1)
	var woke uint64
	p := e.Spawn("parker", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	e.Schedule(100, func() { e.Wake(p) })
	e.Run()
	if woke != 100 {
		t.Errorf("woke at %d, want 100", woke)
	}
}

func TestCancelWake(t *testing.T) {
	e := NewEngine(1)
	var woke uint64
	p := e.Spawn("p", func(p *Proc) {
		// Arranged wake at 50 will be cancelled and replaced by one at 80.
		p.Engine().WakeAfter(p, 50)
		p.Park()
		woke = p.Now()
	})
	e.Schedule(10, func() {
		if !e.CancelWake(p) {
			t.Error("CancelWake found no pending wake")
		}
		e.WakeAfter(p, 70) // 10+70 = 80
	})
	e.Run()
	if woke != 80 {
		t.Errorf("woke at %d, want 80", woke)
	}
}

func TestDoubleWakePanics(t *testing.T) {
	e := NewEngine(1)
	p := e.Spawn("p", func(p *Proc) { p.Park() })
	e.Schedule(5, func() {
		e.Wake(p)
		defer func() {
			if recover() == nil {
				t.Error("double wake did not panic")
			}
		}()
		e.Wake(p)
	})
	e.Run()
	_ = p
}

func TestYieldRunsAfterQueuedEvents(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("y", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "proc-before")
		// An event queued for this same instant must run during the Yield.
		e.Schedule(0, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc-after")
	})
	e.Run()
	want := []string{"proc-before", "event", "proc-after"}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestLiveProcsLeakDetection(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("stuck", func(p *Proc) { p.Park() }) // never woken
	e.Spawn("fine", func(p *Proc) { p.Sleep(5) })
	e.Run()
	if e.LiveProcs() != 1 {
		t.Errorf("LiveProcs = %d, want 1 (the stuck proc)", e.LiveProcs())
	}
}

func TestProcTagAndName(t *testing.T) {
	e := NewEngine(1)
	p := e.Spawn("tagged", func(p *Proc) {
		p.Tag = 42
	})
	e.Run()
	if p.Name() != "tagged" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Tag != 42 {
		t.Errorf("Tag = %v, want 42", p.Tag)
	}
	if !p.Done() {
		t.Error("Done = false after run")
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine(1)
	var childRan uint64
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childRan = c.Now()
		})
		p.Sleep(100)
	})
	e.Run()
	if childRan != 15 {
		t.Errorf("child ran at %d, want 15", childRan)
	}
}

func TestCondFIFO(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Sleep(uint64(i + 1)) // stagger arrival order
			c.Wait(p)
			order = append(order, i)
		})
	}
	e.Schedule(100, func() {
		if c.Waiters() != 3 {
			t.Errorf("Waiters = %d, want 3", c.Waiters())
		}
		c.Signal()
	})
	e.Schedule(200, func() { c.Broadcast() })
	e.Run()
	want := []int{0, 1, 2}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestCondSignalEmpty(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	if c.Signal() {
		t.Error("Signal on empty cond returned true")
	}
	if n := c.Broadcast(); n != 0 {
		t.Errorf("Broadcast on empty cond = %d, want 0", n)
	}
}
