package udm

import (
	"testing"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
)

// TestPollingWatchdogPattern demonstrates the polling-watchdog usage the
// paper's related-work section says FUGU's timer could support: an
// application that polls sluggishly still gets its messages delivered,
// because the atomicity timeout revokes the stuck atomic section and the
// buffered path (with its kernel-driven drain) takes over once the section
// ends.
func TestPollingWatchdogPattern(t *testing.T) {
	m, job, eps := testMachine(t, func(cfg *glaze.Config) {
		cfg.NIConfig.TimerPreset = 1000
	})
	var got []uint64
	eps[1].On(1, func(e *Env, msg *Msg) { got = append(got, msg.Args[0]) })
	job.Process(1).StartMain(func(tk *cpu.Task) {
		e := eps[1].Env(tk)
		// Sluggish polling: long stretches of computation inside an atomic
		// section, with only occasional polls.
		e.BeginAtomic()
		for len(got) < 5 {
			tk.Spend(20_000) // far beyond the 1000-cycle watchdog
			e.Poll()
		}
		e.EndAtomic()
	})
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := eps[0].Env(tk)
		for i := uint64(0); i < 5; i++ {
			e.Inject(1, 1, i)
			tk.Spend(5_000)
		}
	})
	m.RunUntilDone(0, job)
	if len(got) != 5 {
		t.Fatalf("delivered %d/5", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("order violated: %v", got)
		}
	}
	p := job.Process(1)
	if p.Revocations == 0 {
		t.Error("watchdog (atomicity timeout) never fired")
	}
	if job.Delivery().Buffered == 0 {
		t.Error("messages never took the watchdog-driven buffered path")
	}
}

// TestThreeJobMultiprogramming: three applications share the machine under
// a skewed gang schedule; GID protection keeps their identical handler ids
// apart and all complete correctly.
func TestThreeJobMultiprogramming(t *testing.T) {
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 4, 1
	m := glaze.NewMachine(cfg)
	type app struct {
		job  *glaze.Job
		eps  []*EP
		got  map[uint64]int
		want int
	}
	mkApp := func(name string, count int) *app {
		a := &app{job: m.NewJob(name), got: map[uint64]int{}, want: count}
		for i := 0; i < 4; i++ {
			a.eps = append(a.eps, Attach(a.job.Process(i)))
		}
		done := NewCounter()
		a.eps[0].On(1, func(e *Env, msg *Msg) {
			a.got[msg.Args[0]]++
			done.Add(1)
		})
		for node := 1; node < 4; node++ {
			node := node
			a.job.Process(node).StartMain(func(tk *cpu.Task) {
				e := a.eps[node].Env(tk)
				for i := 0; i < count; i++ {
					e.Inject(0, 1, uint64(node*100_000+i))
					tk.Spend(700)
				}
			})
		}
		a.job.Process(0).StartMain(func(tk *cpu.Task) {
			done.WaitFor(tk, uint64(3*count))
		})
		return a
	}
	apps := []*app{mkApp("a", 120), mkApp("b", 80), mkApp("c", 50)}
	m.NewGang(20_000, 0.15, apps[0].job, apps[1].job, apps[2].job).Start()
	m.RunUntilDone(500_000_000, apps[0].job, apps[1].job, apps[2].job)
	for _, a := range apps {
		if !a.job.Done() {
			t.Fatalf("job %s did not complete", a.job.Name())
		}
		if len(a.got) != 3*a.want {
			t.Errorf("job %s: %d distinct messages, want %d", a.job.Name(), len(a.got), 3*a.want)
		}
		for k, c := range a.got {
			if c != 1 {
				t.Errorf("job %s: message %d delivered %d times", a.job.Name(), k, c)
			}
		}
		if a.job.Delivery().Buffered == 0 {
			t.Errorf("job %s never buffered despite three-way multiprogramming", a.job.Name())
		}
	}
}
