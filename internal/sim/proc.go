package sim

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
)

// Proc is a simulated coroutine: a goroutine that runs only while it holds
// the engine baton. Procs yield the baton by parking (Park, Sleep) and are
// handed it back by events scheduled through the engine. Exactly one proc or
// the engine loop executes at any moment, so proc code needs no locking.
type Proc struct {
	eng  *Engine
	name string
	// baton is the single rendezvous channel of the handoff protocol: the
	// engine sends to grant the baton and then receives to take it back;
	// the proc mirrors that. Because exactly one side executes at a time,
	// one unbuffered channel serves both directions.
	baton chan struct{}
	done  bool
	wake  Handle // pending wake event, if any (Sleep/WakeAfter bookkeeping)
	// chained marks a proc that parked but is resuming inline: it is either
	// running the engine loop itself or blocked inside an inline dispatch it
	// issued (see park). Its baton must not be poked until the chain unwinds
	// back to it, because it is not listening on it.
	chained bool
	// site labels this proc's wake events for the cost profiler (SetSite).
	site Site

	// Tag is free for higher layers (e.g. the CPU scheduler) to attach
	// identity to a proc; the engine never touches it.
	Tag any
}

// Spawn creates a proc running fn and schedules its first dispatch at the
// current time. fn runs in proc context: it may Park, Sleep, schedule events
// and wake other procs, and it holds the baton until it yields or returns.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:   e,
		name:  name,
		baton: make(chan struct{}),
	}
	e.live++
	body := func() {
		<-p.baton
		fn(p)
		p.done = true
		e.live--
		p.baton <- struct{}{}
	}
	if e.g != nil {
		// Partitioned engines label their proc goroutines so a CPU profile
		// slices by partition (composing with inherited experiment/point
		// labels from the harness worker that built the machine).
		go pprof.Do(context.Background(), pprof.Labels("partition", strconv.Itoa(e.part)), func(context.Context) { body() })
	} else {
		go body()
	}
	p.wake = e.scheduleProc(0, p)
	return p
}

// dispatch hands the baton to p and blocks (in engine context) until p parks
// or finishes. It must only be called from engine context.
func (e *Engine) dispatch(p *Proc) {
	if e.current != nil {
		panic(fmt.Sprintf("sim: dispatch(%s) while %s holds the baton", p.name, e.current.name))
	}
	if p.done {
		panic(fmt.Sprintf("sim: dispatch of finished proc %s", p.name))
	}
	p.wake = Handle{}
	e.current = p
	p.baton <- struct{}{}
	<-p.baton
	e.current = nil
}

// park yields the baton and blocks until the next wake.
//
// Fast path: instead of bouncing the baton back through its dispatcher, the
// parking proc keeps running the engine loop itself — popping events in
// exactly the (at, seq) order the engine loop would use. Plain callbacks run
// inline (with current == nil, as in engine context); the proc's own wake
// resumes it on the spot with zero channel operations; and a wake for
// another really-parked proc is dispatched directly, one goroutine handoff
// where the engine-mediated route costs two. The procs form a dispatch
// chain (engine → a → b → ...): each link is blocked in its inline dispatch
// waiting for the baton of the proc below, and the deepest proc is the one
// acting as the engine.
//
// The one event the acting proc must not handle itself is a wake for a proc
// marked chained — an ancestor in the chain, which is blocked on its
// child's baton, not its own. The actor leaves that event queued and falls
// back to the real handoff, which unwinds the chain link by link (each
// ancestor re-checks the same head event) until it reaches the woken proc,
// whose own loop pops the event and resumes. Stop, a reached time limit and
// an empty queue unwind the same way, so Engine.Run regains control with
// every proc really parked. Dispatch order and callback context are
// identical to the engine-mediated path throughout — only which goroutine
// executes the loop changes.
func (p *Proc) park() {
	e := p.eng
	if e.current != p {
		panic(fmt.Sprintf("sim: %s parking without the baton", p.name))
	}
	if g := e.g; g != nil && g.mode == Merged {
		p.parkMerged(g)
		return
	}
	e.current = nil
	p.chained = true
	for !e.stopped {
		ev := e.heap.peek()
		if ev == nil {
			break
		}
		if e.Limit != 0 && ev.at > e.Limit {
			break
		}
		if q := ev.proc; q != nil && q != p && q.chained {
			break // wake for an ancestor: unwind the chain to it
		}
		e.heap.pop()
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.at
		e.events.Inc()
		if e.prof != nil {
			e.prof.tick(ev.site, e.now)
		}
		if q := ev.proc; q != nil {
			e.release(ev)
			if q == p {
				// Our own wake: resume in place, mirroring dispatch's
				// bookkeeping (clear the wake handle, retake the baton).
				p.wake = Handle{}
				p.chained = false
				e.current = p
				return
			}
			e.dispatch(q)
		} else if fn := ev.fn; fn != nil {
			e.release(ev)
			fn()
		} else {
			fn, arg := ev.fnArg, ev.arg
			e.release(ev)
			fn(arg)
		}
	}
	p.chained = false
	p.baton <- struct{}{}
	<-p.baton
	e.current = p
}

// parkMerged is park's inline loop generalized to a merged partition group:
// identical protocol (chained-ancestor unwinding, in-place resume of the
// proc's own wake, inline callbacks), but the next event is the global
// (time, seq) minimum across every shard heap and the shared clock
// advances. A dispatched proc may live on any shard; its own engine runs
// the handoff, so the chain can cross shards and still unwind link by link.
func (p *Proc) parkMerged(g *Group) {
	e := p.eng
	e.current = nil
	p.chained = true
	for !g.stopped {
		sh := g.minShard()
		if sh == nil {
			break
		}
		ev := sh.heap.peek()
		if g.limit != 0 && ev.at > g.limit {
			break
		}
		if q := ev.proc; q != nil && q != p && q.chained {
			break // wake for an ancestor: unwind the chain to it
		}
		sh.heap.pop()
		if ev.at < g.now {
			panic("sim: event queue went backwards")
		}
		g.now = ev.at
		sh.events.Inc()
		if sh.prof != nil {
			sh.prof.tick(ev.site, g.now)
		}
		if q := ev.proc; q != nil {
			sh.release(ev)
			if q == p {
				p.wake = Handle{}
				p.chained = false
				e.current = p
				return
			}
			q.eng.dispatch(q)
		} else if fn := ev.fn; fn != nil {
			sh.release(ev)
			fn()
		} else {
			fn, arg := ev.fnArg, ev.arg
			sh.release(ev)
			fn(arg)
		}
	}
	p.chained = false
	p.baton <- struct{}{}
	<-p.baton
	e.current = p
}

// Park blocks the proc until some event wakes it via Engine.Wake or
// Engine.WakeAfter. The caller must have arranged for such a wake, or the
// proc will sleep forever (and LiveProcs will expose the leak).
func (p *Proc) Park() { p.park() }

// Sleep blocks the proc for exactly n cycles. A Sleep cannot be interrupted;
// preemptible waiting is built by higher layers from WakeAfter + CancelWake.
func (p *Proc) Sleep(n uint64) {
	p.eng.WakeAfter(p, n)
	p.park()
}

// Yield parks the proc and schedules it to resume at the current time, after
// any events already queued for this instant. It models giving way without
// consuming simulated time.
func (p *Proc) Yield() {
	p.eng.WakeAfter(p, 0)
	p.park()
}

// SetSite labels the proc's wake events for the cost profiler: every
// subsequent WakeAfter (and, retroactively, a wake already pending — in
// particular the initial dispatch scheduled by Spawn) attributes to s.
func (p *Proc) SetSite(s Site) {
	p.site = s
	if p.wake.Pending() {
		p.wake.ev.site = s
	}
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Done reports whether the proc's function has returned.
func (p *Proc) Done() bool { return p.done }

// Now is a convenience for p.Engine().Now().
func (p *Proc) Now() uint64 { return p.eng.Now() }

// Wake schedules p to be dispatched at the current simulation time. It is
// the only way code outside a proc hands it the baton. Waking a proc that
// already has a pending wake is a bug in the caller and panics, because a
// double dispatch would corrupt the baton protocol.
func (e *Engine) Wake(p *Proc) Handle {
	return e.WakeAfter(p, 0)
}

// WakeAfter schedules p to be dispatched after delay cycles and returns the
// event handle so the caller may cancel it (the basis of preemptible
// sleeps). The wake is carried by the event's proc field, not a closure, so
// this path does not allocate.
func (e *Engine) WakeAfter(p *Proc, delay uint64) Handle {
	if p.wake.Pending() {
		panic(fmt.Sprintf("sim: proc %s woken twice", p.name))
	}
	h := e.scheduleProc(delay, p)
	p.wake = h
	return h
}

// CancelWake cancels p's pending wake, if any, and reports whether a pending
// wake existed. After a successful CancelWake the caller owns the
// responsibility of waking p again.
func (e *Engine) CancelWake(p *Proc) bool {
	if p.wake.Pending() {
		e.Cancel(p.wake)
		p.wake = Handle{}
		return true
	}
	return false
}

// HasPendingWake reports whether p has a wake event queued.
func (p *Proc) HasPendingWake() bool { return p.wake.Pending() }
