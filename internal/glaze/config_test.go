package glaze

import "testing"

func TestNewConfigOptions(t *testing.T) {
	cfg := NewConfig(
		WithMesh(2, 1),
		WithAtomicity(HardAtomicity),
		WithFrames(8),
		WithMachineSeed(42),
		WithOutputWords(64),
	)
	if cfg.W != 2 || cfg.H != 1 {
		t.Errorf("mesh = %dx%d, want 2x1", cfg.W, cfg.H)
	}
	if cfg.Cost.Impl != HardAtomicity {
		t.Errorf("atomicity = %v, want hard", cfg.Cost.Impl)
	}
	if cfg.FramesPerNode != 8 {
		t.Errorf("frames = %d, want 8", cfg.FramesPerNode)
	}
	if cfg.Seed != 42 {
		t.Errorf("seed = %d, want 42", cfg.Seed)
	}
	if cfg.NIConfig.OutputWords != 64 {
		t.Errorf("output words = %d, want 64", cfg.NIConfig.OutputWords)
	}
}

func TestNewConfigDefaultsUntouched(t *testing.T) {
	if NewConfig() != DefaultConfig() {
		t.Error("NewConfig() with no options should equal DefaultConfig()")
	}
}

func TestNewMachineAppliesOptions(t *testing.T) {
	m := NewMachine(DefaultConfig(), WithMesh(2, 1), WithAtomicity(KernelMode))
	if len(m.Nodes) != 2 {
		t.Errorf("nodes = %d, want 2", len(m.Nodes))
	}
	if m.Cost().Impl != KernelMode {
		t.Errorf("cost impl = %v, want kernel", m.Cost().Impl)
	}
}
