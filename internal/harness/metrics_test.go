package harness

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"testing"

	"fugu/internal/apps"
	"fugu/internal/metrics"
	"fugu/internal/trace"
)

// synthPoint builds one multiprogrammed synth run as a sweep point; the
// small group count keeps a point well under a second.
func synthPoint(trial int) Point {
	return Point{
		Label: fmt.Sprintf("synth trial=%d", trial),
		Run: func(_ context.Context, opt Options) (any, error) {
			return RunMultiprogrammedQ(
				func() apps.Instance { return apps.NewSynth(10, 50, 275) },
				0.01, opt.TrialSeed(trial), 50_000, opt.machineMut(nil)), nil
		},
	}
}

// statsResult is a throwaway Result for RunStats-valued sweeps.
type statsResult struct{ runs []RunStats }

func (statsResult) Print(io.Writer) {}

func statsExperiment(n int) *Experiment {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = synthPoint(i)
	}
	return &Experiment{
		Name:        "metricstest",
		Description: "metrics aggregation test sweep",
		Points:      func(Options) []Point { return pts },
		Assemble: func(_ Options, results []any) (Result, error) {
			res := statsResult{}
			for _, r := range results {
				res.runs = append(res.runs, r.(RunStats))
			}
			return res, nil
		},
	}
}

// TestSweepMetricsSerialParallelIdentical is the metrics half of the
// determinism guarantee: the merged registry snapshot the Runner hands to
// OnMetrics is identical whether the sweep ran on one worker or eight.
func TestSweepMetricsSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	exp := statsExperiment(6)
	merged := map[int]metrics.Snapshot{}
	for _, workers := range []int{1, 8} {
		workers := workers
		calls := 0
		r := &Runner{OnMetrics: func(s metrics.Snapshot) { calls++; merged[workers] = s }}
		if _, err := r.Run(context.Background(), exp, WithParallelism(workers)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls != 1 {
			t.Fatalf("workers=%d: OnMetrics called %d times, want 1", workers, calls)
		}
	}
	if merged[1].Empty() {
		t.Fatal("merged snapshot is empty")
	}
	if !reflect.DeepEqual(merged[1], merged[8]) {
		t.Errorf("merged metrics differ between -j 1 and -j 8:\nserial:   %s\nparallel: %s",
			merged[1].JSON(), merged[8].JSON())
	}
}

// TestOnMetricsSkipsNonCarrierResults: points whose results carry no
// snapshot simply contribute nothing.
func TestOnMetricsSkipsNonCarrierResults(t *testing.T) {
	pts := []Point{
		{Label: "plain", Run: func(context.Context, Options) (any, error) { return 7, nil }},
	}
	exp := &Experiment{
		Name:        "nocarrier",
		Description: "no metrics carriers",
		Points:      func(Options) []Point { return pts },
		Assemble: func(_ Options, results []any) (Result, error) {
			return statsResult{}, nil
		},
	}
	var got *metrics.Snapshot
	r := &Runner{OnMetrics: func(s metrics.Snapshot) { got = &s }}
	if _, err := r.Run(context.Background(), exp, WithParallelism(1)); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("OnMetrics not called")
	}
	if !got.Empty() {
		t.Errorf("snapshot from carrier-free sweep not empty: %s", got.JSON())
	}
}

// TestRunStatsMetricsMatchDeliveryCounts cross-checks the registry against
// the job's own delivery ledger: the measured job is the only communicating
// job on the machine (apps.Null never sends), so the machine-wide
// glaze.deliver.* counters must equal the RunStats figures exactly.
func TestRunStatsMetricsMatchDeliveryCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("sim")
	}
	run := RunMultiprogrammedQ(
		func() apps.Instance { return apps.NewSynth(10, 100, 275) },
		0.01, 1, 50_000, nil)
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	c := run.Metrics.Counters
	if c["glaze.deliver.fast"] != run.Fast {
		t.Errorf("glaze.deliver.fast = %d, RunStats.Fast = %d", c["glaze.deliver.fast"], run.Fast)
	}
	if c["glaze.deliver.buffered"] != run.Buffered {
		t.Errorf("glaze.deliver.buffered = %d, RunStats.Buffered = %d", c["glaze.deliver.buffered"], run.Buffered)
	}
	if run.Msgs == 0 {
		t.Fatal("synth run delivered no messages")
	}
	// Every delivery also passed through a UDM endpoint of some job.
	if got := c["udm.delivered"]; got < run.Msgs {
		t.Errorf("udm.delivered = %d, want at least %d", got, run.Msgs)
	}
	// Latency histograms observe one sample per delivery on each path.
	h := run.Metrics.Histograms
	if got := h["glaze.deliver.latency.fast"].Count; got != run.Fast {
		t.Errorf("fast latency samples = %d, want %d", got, run.Fast)
	}
	if got := h["glaze.deliver.latency.buffered"].Count; got != run.Buffered {
		t.Errorf("buffered latency samples = %d, want %d", got, run.Buffered)
	}
}

// TestWithTraceReachesPointMachines: a trace log handed to the option set
// is installed on the machines experiment points build, and a
// multiprogrammed run records schedule events into it.
func TestWithTraceReachesPointMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("sim")
	}
	l := trace.New(4096)
	l.EnableAll()
	opt := NewOptions(WithTrace(l), WithTrials(1), WithParallelism(1))
	if opt.Trace != l {
		t.Fatal("WithTrace did not resolve into Options")
	}
	run := RunMultiprogrammedQ(
		func() apps.Instance { return apps.NewSynth(10, 50, 275) },
		0.01, 1, 50_000, opt.machineMut(nil))
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	if l.Total() == 0 {
		t.Error("traced run recorded no events")
	}
	var sched bool
	for _, ev := range l.Events() {
		if ev.Cat == trace.Sched {
			sched = true
			break
		}
	}
	if !sched {
		t.Error("no sched events in a gang-scheduled run")
	}
}
