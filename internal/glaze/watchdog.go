package glaze

import (
	"fmt"
	"strings"

	"fugu/internal/mesh"
	"fugu/internal/sim"
	"fugu/internal/spans"
)

// siteWatchdog labels liveness-watchdog checks for the cost profiler.
var siteWatchdog = sim.NewSite("glaze.watchdog")

// WatchdogConfig parameterizes the machine's liveness watchdog. The
// watchdog samples a progress fingerprint — span begins/ends/inserts plus
// finished main threads — every Interval cycles; delivery progress resets
// the count, Grace consecutive stale samples fire it. Firing assembles a
// diagnostic report (Machine.Diagnose) and stops the engine, so a wedged
// run terminates with an explanation instead of hanging.
//
// The fingerprint deliberately ignores consumed CPU cycles and engine
// events: a task spinning for NI space burns both without making
// progress, and that livelock must trip the watchdog. The flip side is
// that a healthy message-free compute phase longer than Interval*Grace
// cycles fires it spuriously — size Interval for the workload.
type WatchdogConfig struct {
	Interval uint64 // cycles between progress checks; 0 disables the watchdog
	Grace    int    // consecutive stale checks before firing (min 1)
}

// Enabled reports whether the watchdog is configured to run.
func (wc WatchdogConfig) Enabled() bool { return wc.Interval > 0 }

// diagnoseIntervals is how many flight-recorder intervals Diagnose dumps —
// enough lead-up to see a mode flip or queue ramp without drowning the
// report.
const diagnoseIntervals = 8

// wdFingerprint summarizes observable delivery progress.
type wdFingerprint struct {
	begun, ended, inserts uint64
	mainsDone             int
}

type watchdog struct {
	m       *Machine
	cfg     WatchdogConfig
	last    wdFingerprint
	stale   int
	checkFn func() // w.check bound once so rescheduling never allocates
	report  *spans.Report
}

func newWatchdog(m *Machine, cfg WatchdogConfig) *watchdog {
	if cfg.Grace < 1 {
		cfg.Grace = 1
	}
	w := &watchdog{m: m, cfg: cfg}
	w.checkFn = w.check
	m.Eng.ScheduleSite(siteWatchdog, cfg.Interval, w.checkFn)
	return w
}

func (w *watchdog) fingerprint() wdFingerprint {
	c := w.m.Spans.Counts()
	fp := wdFingerprint{begun: c.Begun, ended: c.Ended(), inserts: c.Inserts}
	for _, j := range w.m.jobs {
		fp.mainsDone += j.done
	}
	return fp
}

// check is the periodic watchdog event. It stops rescheduling itself once
// every job completes (so a finished machine's event queue can drain) or
// after firing.
func (w *watchdog) check() {
	allDone := true
	for _, j := range w.m.jobs {
		if !j.Done() {
			allDone = false
			break
		}
	}
	if allDone {
		return
	}
	fp := w.fingerprint()
	if fp != w.last {
		w.last = fp
		w.stale = 0
	} else {
		w.stale++
		if w.stale >= w.cfg.Grace {
			w.fire()
			return
		}
	}
	w.m.Eng.ScheduleSite(siteWatchdog, w.cfg.Interval, w.checkFn)
}

func (w *watchdog) fire() {
	w.report = w.m.Diagnose(fmt.Sprintf(
		"no delivery progress for %d cycles (%d checks at interval %d) with unfinished jobs",
		uint64(w.stale)*w.cfg.Interval, w.stale, w.cfg.Interval))
	w.m.Spans.SetReport(w.report)
	w.m.Eng.Stop()
}

// Diagnose assembles a liveness report from the machine's current state:
// engine and per-node run-queue/NI state, per-process task and buffer
// state, in-flight spans, and the waits-for graph contributed by
// registered Diagnostic providers (with cycle detection). The watchdog
// calls it on firing; diagnostic rigs may call it directly on a machine
// that failed to complete.
func (m *Machine) Diagnose(reason string) *spans.Report {
	rep := &spans.Report{At: m.Eng.Now(), Reason: reason}

	var b strings.Builder
	fmt.Fprintf(&b, "t=%d pending-events=%d live-procs=%d\n",
		m.Eng.Now(), m.Eng.Pending(), m.Eng.LiveProcs())
	rep.Sections = append(rep.Sections, spans.Section{Title: "engine", Body: b.String()})

	if m.group != nil {
		// Per-partition visibility: a single wedged partition shows up as
		// one shard's heap draining while the others sit at the barrier.
		st := m.group.Stats()
		var b strings.Builder
		fmt.Fprintf(&b, "mode=%s parts=%d horizon=%d barriers=%d staged=%d\n",
			st.Mode, len(st.Shards), st.Horizon, st.Barriers, st.Staged)
		for _, sh := range st.Shards {
			fmt.Fprintf(&b, "part %d: t=%d heap-depth=%d live-procs=%d barrier-waits=%d\n",
				sh.Part, sh.Now, sh.HeapDepth, sh.LiveProcs, sh.BarrierWaits)
		}
		rep.Sections = append(rep.Sections, spans.Section{Title: "partitions", Body: b.String()})
	}

	for _, node := range m.Nodes {
		var b strings.Builder
		running := "idle"
		if t := node.CPU.Running(); t != nil {
			running = fmt.Sprintf("%s (%s)", t.Name(), t.StateName())
		}
		fmt.Fprintf(&b, "running=%s ready=%d divert=%v ni-queue=%d net-blocked=%d main/%d os os-queue=%d\n",
			running, node.CPU.ReadyCount(), node.NI.Divert(), node.NI.QueueLen(),
			m.Net.BlockedAt(node.Index, mesh.Main), m.Net.BlockedAt(node.Index, mesh.OS),
			len(node.Kernel.osQueue))
		if pkt := node.NI.HeadPacket(); pkt != nil {
			fmt.Fprintf(&b, "ni-head: #%d from node %d, %d words\n", pkt.ID, pkt.Src, len(pkt.Words))
		}
		rep.Sections = append(rep.Sections, spans.Section{
			Title: fmt.Sprintf("node %d", node.Index), Body: b.String()})
	}

	for _, j := range m.jobs {
		var b strings.Builder
		fmt.Fprintf(&b, "mains done=%d/%d overflowed=%v\n", j.done, j.mains, j.overflowed)
		for _, p := range j.procs {
			fmt.Fprintf(&b, "node %d: buffered=%v atomicVirtual=%v throttled=%v scheduled=%v buf-pending=%d",
				p.node, p.buffered, p.atomicVirtual, p.throttled, p.scheduled, p.store.Pending())
			if ids := p.store.PendingIDs(); len(ids) > 0 {
				fmt.Fprintf(&b, " buf-msg-ids=%v", ids)
			}
			b.WriteByte('\n')
			for _, t := range p.tasks() {
				fmt.Fprintf(&b, "  task %-28s %s\n", t.Name(), t.StateName())
			}
		}
		rep.Sections = append(rep.Sections, spans.Section{Title: "job " + j.name, Body: b.String()})
	}

	if m.Spans != nil {
		var b strings.Builder
		b.WriteString(m.Spans.Summary() + "\n")
		for i, s := range m.Spans.InFlight() {
			if i == 32 {
				b.WriteString("...\n")
				break
			}
			b.WriteString(s.String() + "\n")
		}
		rep.Sections = append(rep.Sections, spans.Section{Title: "in-flight spans", Body: b.String()})
	}

	// The flight recorder's tail shows the lead-up to the stall: delivery
	// and overflow activity per interval, queue depths and per-node modes.
	if recent := m.telemetry.Recent(diagnoseIntervals); len(recent) > 0 {
		var b strings.Builder
		for _, iv := range recent {
			fmt.Fprintf(&b, "t=%-10d Δfast=%-6d Δbuf=%-6d Δins=%-5d Δovfl=%-3d Δnack=%-3d q=%d/%d inflight=%d modes=%s\n",
				iv.Cycle,
				iv.Counters["glaze.deliver.fast"], iv.Counters["glaze.deliver.buffered"],
				iv.Counters["glaze.buffer.inserts"], iv.Counters["glaze.overflow.trips"],
				iv.Counters["nic.nacked"],
				iv.QueueSum, iv.QueueMax, iv.SpansInFlight, iv.Modes)
		}
		rep.Sections = append(rep.Sections, spans.Section{
			Title: fmt.Sprintf("timeline (last %d intervals, every %d cycles)", len(recent), m.telemetry.Every()),
			Body:  b.String()})
	}

	for _, d := range m.diags {
		rep.Sections = append(rep.Sections, d.DiagSections(rep.At)...)
		rep.Edges = append(rep.Edges, d.WaitEdges()...)
	}
	rep.Cycle = spans.FindCycle(rep.Edges)
	return rep
}
