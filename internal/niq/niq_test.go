package niq

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"fugu/internal/mesh"
)

// allSpecs enumerates every queue model × allocation policy the sweep can
// build, at a deliberately tiny pool so randomized schedules hit refusal,
// borrowing and bypass paths constantly.
func allSpecs(slots int) []Spec {
	specs := []Spec{{Model: ModelFIFO, Slots: slots}}
	for _, m := range []string{ModelDAMQ, ModelReserve} {
		for _, p := range Policies() {
			specs = append(specs, Spec{Model: m, Policy: p, Slots: slots})
		}
	}
	return specs
}

// driveOps decodes data as an operation schedule and plays it against both
// the queue under test and the naive reference, failing on the first
// disagreement. It is the single engine behind the differential quick.Check
// tests and FuzzNIQAdmitDrain.
//
// The schedule is consumed two bytes at a time (op, arg):
//
//	op%8 == 0,1,2  arrival: src = arg%sources, gid = (arg>>4)&3,
//	               kernel if arg bit 6, forced mismatch if bit 7 (and not
//	               kernel). Admit is compared first; on agreement to admit,
//	               the same *mesh.Packet is pushed into both queues.
//	op%8 == 3,4    pop: Head then PopHead, compared by pointer identity.
//	op%8 == 5      retarget the resident GID to arg&3.
//	op%8 == 6      toggle divert mode (match predicate goes dark).
//	op%8 == 7      Head probe only.
//
// After every operation the structural invariants and both Lens are checked;
// on return the queues are drained to empty and conservation is verified:
// every pushed packet pops exactly once, and nothing else ever pops.
func driveOps(spec Spec, sources int, data []byte) error {
	spec = spec.Normalize()
	dut := New(spec, spec.Slots, sources)
	ref := newRef(spec, sources)
	reserve, _ := Reserve(spec.Policy, spec.Slots, sources)

	// Live predicate state, mutated by ops 5 and 6 and read through the
	// bound closures — presentation must track it immediately.
	resident := uint64(0)
	divert := false
	const kernelBit = 1 << 8
	match := func(p *mesh.Packet) bool {
		return !divert && !p.FaultMismatch && p.Words[0]&kernelBit == 0 &&
			p.Words[0]&0xff == resident
	}
	kernel := func(p *mesh.Packet) bool { return p.Words[0]&kernelBit != 0 }
	dut.Bind(match, kernel)
	ref.bind(match, kernel)

	pushed := make(map[*mesh.Packet]bool)
	check := func(step int) error {
		if err := dut.CheckInvariants(); err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
		if dut.Len() != ref.lenAll() {
			return fmt.Errorf("step %d: dut holds %d packets, ref %d", step, dut.Len(), ref.lenAll())
		}
		return nil
	}
	pop := func(step int) error {
		h1, h2 := dut.Head(), ref.head()
		if h1 != h2 {
			return fmt.Errorf("step %d: dut presents %v, ref %v", step, h1, h2)
		}
		p1, p2 := dut.PopHead(), ref.popHead()
		if p1 != p2 {
			return fmt.Errorf("step %d: dut popped %v, ref %v", step, p1, p2)
		}
		if p1 != nil {
			if !pushed[p1] {
				return fmt.Errorf("step %d: popped a packet that was never pushed (or popped twice)", step)
			}
			delete(pushed, p1)
		}
		return nil
	}

	var id uint64
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i]%8, data[i+1]
		switch op {
		case 0, 1, 2:
			src := int(arg) % sources
			sys := arg&(1<<6) != 0
			hdr := uint64(arg>>4) & 3
			if sys {
				hdr |= kernelBit
			}
			pkt := &mesh.Packet{
				ID:            id,
				Src:           src,
				Words:         []uint64{hdr},
				FaultMismatch: !sys && arg&(1<<7) != 0,
			}
			id++
			a1, a2 := dut.Admit(src, sys), ref.admit(src, sys)
			if a1 != a2 {
				return fmt.Errorf("step %d: Admit(src=%d, sys=%v) dut=%v ref=%v", i, src, sys, a1, a2)
			}
			// The reserve guarantee, stated as an admission property
			// rather than re-derived from the implementation: a source
			// inside its reserve with a free physical slot is NEVER
			// refused, no matter what other sources have borrowed.
			if spec.Model == ModelReserve && !sys &&
				ref.ulen(src) < reserve && ref.lenAll() < spec.Slots && !a1 {
				return fmt.Errorf("step %d: source %d refused inside its reserve (%d/%d held, %d/%d slots used)",
					i, src, ref.ulen(src), reserve, ref.lenAll(), spec.Slots)
			}
			// Kernel exemption: protected traffic is refused only when the
			// pool is physically full.
			if spec.Model != ModelFIFO && sys && ref.lenAll() < spec.Slots && !a1 {
				return fmt.Errorf("step %d: kernel packet from %d refused with %d/%d slots used",
					i, src, ref.lenAll(), spec.Slots)
			}
			if a1 {
				dut.Push(pkt)
				ref.push(pkt)
				pushed[pkt] = true
			}
		case 3, 4:
			if err := pop(i); err != nil {
				return err
			}
		case 5:
			resident = uint64(arg) & 3
		case 6:
			divert = !divert
		case 7:
			if h1, h2 := dut.Head(), ref.head(); h1 != h2 {
				return fmt.Errorf("step %d: head probe: dut %v, ref %v", i, h1, h2)
			}
		}
		if err := check(i); err != nil {
			return err
		}
	}

	// Drain and verify conservation: both empty out in the same order and
	// every admitted packet is delivered exactly once.
	for step := 0; dut.Len() > 0 || ref.lenAll() > 0; step++ {
		if step > len(data)+spec.Slots {
			return fmt.Errorf("drain did not terminate: dut=%d ref=%d packets left", dut.Len(), ref.lenAll())
		}
		if err := pop(-step); err != nil {
			return err
		}
		if err := check(-step); err != nil {
			return err
		}
	}
	if len(pushed) != 0 {
		return fmt.Errorf("%d admitted packets never drained", len(pushed))
	}
	if dut.PopHead() != nil {
		return fmt.Errorf("empty queue popped a packet")
	}
	if dut.Head() != nil {
		return fmt.Errorf("empty queue presents a packet")
	}
	return nil
}

// TestDifferentialRandomSchedules drives every model:policy pair against the
// naive reference under randomized schedules: identical admit/reject
// decisions, identical presentation and drain order (by pointer), identical
// occupancy, and conservation.
func TestDifferentialRandomSchedules(t *testing.T) {
	for _, slots := range []int{3, 5, 8} {
		for _, spec := range allSpecs(slots) {
			spec := spec
			t.Run(fmt.Sprintf("%s/%d", spec.Name(), slots), func(t *testing.T) {
				t.Parallel()
				cfg := &quick.Config{
					MaxCount: 40,
					Rand:     rand.New(rand.NewSource(int64(slots) * 1013)),
				}
				f := func(data []byte) bool {
					if err := driveOps(spec, 3, data); err != nil {
						t.Log(err)
						return false
					}
					return true
				}
				if err := quick.Check(f, cfg); err != nil {
					t.Errorf("%s: %v", spec.Name(), err)
				}
			})
		}
	}
}

// TestDifferentialLongSchedule runs one long deterministic schedule per spec
// — quick.Check keeps its inputs short, and sustained pressure is where
// free-list recycling and bypass-budget resets earn their keep.
func TestDifferentialLongSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 20_000)
	rng.Read(data)
	for _, spec := range allSpecs(5) {
		if err := driveOps(spec, 4, data); err != nil {
			t.Errorf("%s: %v", spec.Name(), err)
		}
	}
}
