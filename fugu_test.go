package fugu

import (
	"testing"
)

// TestFacadeQuickstart exercises the public API exactly as the README's
// quickstart does: build a machine, wire endpoints, exchange messages.
func TestFacadeQuickstart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 2, 1
	m := NewMachine(cfg)
	job := m.NewJob("hello")
	ep0 := Attach(job.Process(0))
	ep1 := Attach(job.Process(1))

	var got []uint64
	ep1.On(1, func(e *Env, msg *Msg) {
		got = append(got, msg.Args[0])
		e.Inject(0, 2, msg.Args[0]*2)
	})
	done := NewCounter()
	var reply uint64
	ep0.On(2, func(e *Env, msg *Msg) {
		reply = msg.Args[0]
		done.Add(1)
	})
	job.Process(0).StartMain(func(t *Task) {
		ep0.Env(t).Inject(1, 1, 21)
		done.WaitFor(t, 1)
	})
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(0, job)

	if len(got) != 1 || got[0] != 21 {
		t.Fatalf("received %v, want [21]", got)
	}
	if reply != 42 {
		t.Fatalf("reply = %d, want 42", reply)
	}
	if d := job.Delivery(); d.Fast != 2 || d.Buffered != 0 {
		t.Errorf("delivery = %+v", d)
	}
}

// TestFacadeWorkloads builds every exported workload and runs the cheapest
// end to end through the facade.
func TestFacadeWorkloads(t *testing.T) {
	m := NewMachine(DefaultConfig())
	job := m.NewJob("barrier")
	app := NewBarrierApp(50)
	app.Start(m, job)
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(0, job)
	if !job.Done() {
		t.Fatal("barrier app did not finish")
	}
	if err := app.Check(); err != nil {
		t.Fatal(err)
	}
	// Constructors exist and agree with their parameters.
	if NewEnum(4) == nil || NewSynth(10, 1, 500) == nil ||
		NewLU(40, 8) == nil || NewWater(64, 1) == nil || NewBarnes(64, 1) == nil {
		t.Fatal("constructor returned nil")
	}
}

// TestFacadeCostModels sanity-checks the exported cost-model entry points.
func TestFacadeCostModels(t *testing.T) {
	if Costs(HardAtomicity).RecvIntrTotal() != 87 {
		t.Error("hard atomicity total != 87")
	}
	if Costs(KernelMode).RecvIntrTotal() != 54 {
		t.Error("kernel total != 54")
	}
	if Costs(SoftAtomicity).RecvIntrTotal() != 115 {
		t.Error("soft total != 115")
	}
	if NewExperimentOptions(WithQuick()).Quick == NewExperimentOptions().Quick {
		t.Error("options presets identical")
	}
}
