package stats

import (
	"testing"
	"testing/quick"
)

func TestDeliveryPct(t *testing.T) {
	d := Delivery{Fast: 75, Buffered: 25}
	if d.Total() != 100 {
		t.Errorf("Total = %d", d.Total())
	}
	if got := d.BufferedPct(); got != 25 {
		t.Errorf("BufferedPct = %v, want 25", got)
	}
	var zero Delivery
	if zero.BufferedPct() != 0 {
		t.Error("empty delivery pct != 0")
	}
}

func TestDeliveryAdd(t *testing.T) {
	a := Delivery{Fast: 1, Buffered: 2}
	a.Add(Delivery{Fast: 10, Buffered: 20})
	if a.Fast != 11 || a.Buffered != 22 {
		t.Errorf("Add = %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestHighWater(t *testing.T) {
	var h HighWater
	h.Set(5)
	h.Set(3)
	h.Add(1)
	if h.Cur != 4 || h.Max != 5 {
		t.Errorf("h = %+v, want cur 4 max 5", h)
	}
	h.Add(10)
	if h.Max != 14 {
		t.Errorf("Max = %d, want 14", h.Max)
	}
}

func TestHighWaterInvariant(t *testing.T) {
	prop := func(deltas []int8) bool {
		var h HighWater
		for _, d := range deltas {
			h.Add(int(d))
			if h.Max < h.Cur {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Error("empty mean != 0")
	}
	m.Observe(2)
	m.Observe(4)
	m.Observe(6)
	if m.Value() != 4 {
		t.Errorf("mean = %v, want 4", m.Value())
	}
	if m.Count != 3 {
		t.Errorf("count = %d", m.Count)
	}
}
