package main

import (
	"flag"
	"fmt"
	"os"

	"fugu/internal/delivery"
	"fugu/internal/glaze"
	"fugu/internal/harness"
)

// commonFlags is the flag block every fugusim subcommand shares — the
// -quick/-full scale pair, the base -seed, the -metrics snapshot directory
// and the -policy delivery-policy selector. Each subcommand registers it on
// its own FlagSet so `fugusim <sub> -h` shows one consistent spelling
// everywhere and a new shared flag lands in every subcommand at once.
type commonFlags struct {
	quick      *bool
	full       *bool
	seed       *uint64
	metricsDir *string
	policyName *string

	// policy is the resolved delivery policy, nil when -policy was not given
	// (the machine default, delivery.TwoCase, then applies).
	policy delivery.Policy
}

// registerCommon installs the shared flag block on fs.
func registerCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	c.quick = fs.Bool("quick", false, "run the scaled-down workloads (the default; -full overrides)")
	c.full = fs.Bool("full", false, "run the paper-scale workloads (slow)")
	c.seed = fs.Uint64("seed", 1, "base random seed (trial t runs at seed+t)")
	c.metricsDir = fs.String("metrics", "", "write merged registry snapshots (JSON+CSV) into this directory")
	c.policyName = fs.String("policy", "",
		fmt.Sprintf("delivery policy, one of %v (default: twocase)", delivery.Names()))
	return c
}

// resolve validates the shared flags after parsing: -quick and -full are
// mutually exclusive and -policy must name a registered policy. Violations
// exit with usage status, like any other bad flag.
func (c *commonFlags) resolve() {
	if *c.quick && *c.full {
		fmt.Fprintln(os.Stderr, "fugusim: -quick and -full are mutually exclusive")
		os.Exit(2)
	}
	if *c.policyName != "" {
		pol, err := delivery.ByName(*c.policyName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
			os.Exit(2)
		}
		c.policy = pol
	}
}

// harnessOptions turns the shared flags into the base harness option set:
// scale, scale-appropriate default trial count, seed and policy. Subcommand
// flags (-trials, -j, ...) append after these and so override the defaults.
func (c *commonFlags) harnessOptions() []harness.Option {
	opts := []harness.Option{harness.WithSeed(*c.seed)}
	if *c.full {
		opts = append(opts, harness.WithFull(), harness.WithTrials(3))
	} else {
		opts = append(opts, harness.WithQuick(), harness.WithTrials(1))
	}
	if c.policy != nil {
		opts = append(opts, harness.WithDeliveryPolicy(c.policy))
	}
	return opts
}

// configMut returns a machine-config mutator applying the shared flags to
// workloads driven outside the harness Options path (the bench runners), or
// nil when the machine defaults already match.
func (c *commonFlags) configMut() func(*glaze.Config) {
	if c.policy == nil {
		return nil
	}
	pol := c.policy
	return func(cfg *glaze.Config) { cfg.Delivery = pol }
}
