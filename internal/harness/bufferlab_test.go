package harness

import (
	"fmt"
	"testing"
	"testing/quick"

	"fugu/internal/delivery"
	"fugu/internal/faultinject"
	"fugu/internal/niq"
)

// TestBufferlabDeterminism pins that the sweep is a pure function of its
// options: a serial run and an 8-worker run must render byte-identical CSVs.
func TestBufferlabDeterminism(t *testing.T) {
	serial, err := BufferLab(WithQuick(), WithTrials(1), WithSeed(1), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BufferLab(WithQuick(), WithTrials(1), WithSeed(1), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.CSVFiles(), parallel.CSVFiles()
	if len(a) != len(b) {
		t.Fatalf("serial wrote %d files, parallel %d", len(a), len(b))
	}
	for file, want := range a {
		if got := b[file]; got != want {
			t.Errorf("%s differs between serial and 8-worker runs:\nserial:\n%s\nparallel:\n%s", file, want, got)
		}
	}
}

// TestBufferlabEconomics is the in-repo mirror of the CI smoke gate: at the
// default seed and trial count, every oracle passes under every queue
// organization, and at least one shared organization strictly beats the
// static FIFO on aggregate overflow rate at equal slots.
func TestBufferlabEconomics(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	res, err := BufferLab(WithQuick(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Problems() {
		t.Errorf("oracle violation: %s", p)
	}
	fifoRate, best, bestRate, ok := res.Dominance()
	if !ok {
		t.Fatalf("no shared organization dominated the static FIFO (fifo overflow %.4f)", fifoRate)
	}
	if bestRate >= fifoRate {
		t.Fatalf("dominance reported but %s rate %.4f !< fifo %.4f", best, bestRate, fifoRate)
	}
	// The static partition must actually be the *worst* place to be under
	// convergent bursts — that asymmetry is the whole DAMQ literature.
	for _, row := range res.Rows {
		if row.Model == "fifo" && row.Refused == 0 && row.Plan != "none" {
			t.Errorf("fifo never refused under plan %s: the workload is not scarce enough to compare", row.Plan)
		}
	}
}

// TestBufferlabQueueModelPolicySweep runs the crucible's quick sweep for
// every delivery policy × queue organization pair: all delivery oracles must
// hold no matter how the receive SRAM is carved, under every delivery
// organization that uses it.
func TestBufferlabQueueModelPolicySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	queues := []niq.Spec{
		{Model: niq.ModelFIFO},
		{Model: niq.ModelDAMQ, Policy: niq.PolicyDemand},
		{Model: niq.ModelReserve, Policy: niq.PolicyHybrid},
	}
	for _, polName := range delivery.Names() {
		for _, spec := range queues {
			polName, spec := polName, spec
			t.Run(polName+"/"+spec.Name(), func(t *testing.T) {
				t.Parallel()
				pol, err := delivery.ByName(polName)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Crucible(WithQuick(), WithTrials(1), WithSeed(1),
					WithDeliveryPolicy(pol), WithInputQueue(spec), WithQueueAudit())
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range res.Problems() {
					t.Errorf("oracle violation: %s", p)
				}
			})
		}
	}
}

// TestReserveNeverViolatedProperty is the reserve-plus-borrow guarantee
// stated over whole machine runs: for ANY random fault plan and EVERY
// delivery policy, no source's user traffic ever occupies another source's
// guaranteed slots. The audit hook walks the queue invariants — borrow
// accounting, reserve bound, list integrity — after every single push and
// pop on every node, and panics at the exact event that breaks them.
func TestReserveNeverViolatedProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	policies := delivery.Names()
	check := func(seed uint64, pick uint8, pMis, pStall, pHot uint8) bool {
		polName := policies[int(pick)%len(policies)]
		pol, err := delivery.ByName(polName)
		if err != nil {
			t.Fatal(err)
		}
		plan := cruciblePlan{
			name: fmt.Sprintf("reserve-prop-%#x", seed),
			arm: func(p *faultinject.Plan) {
				w := func(b uint8, cycles uint64) faultinject.FaultSpec {
					return faultinject.FaultSpec{
						Prob: float64(b) / 365.0,
						From: crucibleFaultsStart, Until: crucibleFaultsLift,
						Cycles: cycles, Node: faultinject.AllNodes,
					}
				}
				p.Arm(faultinject.GIDMismatch, w(pMis, 0))
				p.Arm(faultinject.LinkStall, w(pStall, 250))
				p.Arm(faultinject.HotSpot, w(pHot, 250))
			},
		}
		opt := NewOptions(WithQuick(), WithTrials(1), WithSeed(seed),
			WithInputQueue(niq.Spec{Model: niq.ModelReserve, Policy: niq.PolicyHybrid}),
			WithDeliveryPolicy(pol), WithQueueAudit())
		pt := runCrucibleLoad(plan, 0, opt, bufferlabLoad)
		if len(pt.row.Problems) > 0 {
			t.Logf("seed=%#x policy=%s: %v", seed, polName, pt.row.Problems)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
