package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"fugu/internal/plot"
)

// CSV renders the Table 6 characterization as comma-separated values.
func (r Table6Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.App, row.Model, u(row.Runtime), u(row.Msgs),
			fmt.Sprintf("%.1f", row.TBetw), fmt.Sprintf("%.1f", row.THand),
			errStr(row.Err),
		})
	}
	return plot.CSV([]string{"app", "model", "cycles", "msgs", "t_betw", "t_hand", "check"}, rows)
}

// CSV7 renders the Figure 7 sweep (buffered fraction and buffer pages).
func (r Fig78Result) CSV7() string {
	var rows [][]string
	for _, app := range r.Apps {
		for i, skew := range r.Skews {
			run := r.Runs[app][i]
			rows = append(rows, []string{
				app, fmt.Sprintf("%.3f", skew),
				fmt.Sprintf("%.4f", run.BufferedPct),
				u(run.Buffered), u(run.Msgs),
				fmt.Sprintf("%d", run.MaxBufferPages),
			})
		}
	}
	return plot.CSV([]string{"app", "skew", "buffered_pct", "buffered", "msgs", "max_pages"}, rows)
}

// CSV8 renders the Figure 8 sweep (relative runtimes).
func (r Fig78Result) CSV8() string {
	var rows [][]string
	for _, app := range r.Apps {
		base := float64(r.Runs[app][0].Runtime)
		for i, skew := range r.Skews {
			rows = append(rows, []string{
				app, fmt.Sprintf("%.3f", skew),
				fmt.Sprintf("%.4f", float64(r.Runs[app][i].Runtime)/base),
				u(r.Runs[app][i].Runtime),
			})
		}
	}
	return plot.CSV([]string{"app", "skew", "relative_runtime", "runtime_cycles"}, rows)
}

// CSV renders the Figure 9 sweep.
func (r Fig9Result) CSV() string {
	var rows [][]string
	for i, n := range r.Ns {
		for j, tb := range r.TBetws {
			rows = append(rows, []string{
				fmt.Sprintf("synth-%d", n), u(tb),
				fmt.Sprintf("%.4f", r.Pct[i][j]),
			})
		}
	}
	return plot.CSV([]string{"app", "t_betw", "buffered_pct"}, rows)
}

// CSV renders the Figure 10 sweep.
func (r Fig10Result) CSV() string {
	var rows [][]string
	for i, n := range r.Ns {
		for j, x := range r.Extra {
			rows = append(rows, []string{
				fmt.Sprintf("synth-%d", n), u(x),
				fmt.Sprintf("%.4f", r.Pct[i][j]),
			})
		}
	}
	return plot.CSV([]string{"app", "extra_insert_cost", "buffered_pct"}, rows)
}

// WriteCSV saves content under dir/name, creating dir as needed.
func WriteCSV(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}
