package glaze

import (
	"fmt"

	"fugu/internal/cpu"
	"fugu/internal/mesh"
	"fugu/internal/metrics"
	"fugu/internal/nic"
	"fugu/internal/sim"
	"fugu/internal/spans"
	"fugu/internal/trace"
	"fugu/internal/vm"
)

// nullGID is installed in the NI while no process is resident, so every
// arriving user message mismatches and is buffered for its real owner.
const nullGID nic.GID = 0xfffe

// OS-network control operations (word 1 of kernel packets on the second
// logical network).
const (
	osOpSuspendJob uint64 = iota + 1
	osOpResumeJob
)

// Kernel is one node's Glaze instance: interrupt handlers, the two-case
// delivery transitions, virtual buffer management and the context-switch
// machinery the gang scheduler drives.
type Kernel struct {
	m      *Machine
	node   int
	cpu    *cpu.CPU
	ni     *nic.NI
	frames *vm.Frames
	cost   CostModel

	// Delivery-policy traits, resolved once from the machine's policy:
	// kernelBuffered enables the divert machinery (mismatch inserts, mode
	// flips, overflow drain-back); hwDemux installs the kernel as the NI's
	// receive offload engine (kernel-bypass rings).
	kernelBuffered bool
	hwDemux        bool

	procs map[nic.GID]*Process
	// current is the resident process (nil while the null slot runs).
	current *Process

	mismatchIRQ *cpu.IRQ
	timeoutIRQ  *cpu.IRQ
	gangIRQ     *cpu.IRQ
	osIRQ       *cpu.IRQ

	switchTarget *Process // argument for the next gangIRQ service
	switchValid  bool

	osQueue []*mesh.Packet

	// starvedFrames counts frames currently withheld from the pool by a
	// fault-plan FrameStarvation window.
	starvedFrames int

	// Statistics.
	Inserts        uint64 // buffer insertions performed
	InsertVMAllocs uint64
	StrayMessages  uint64 // messages for unknown GIDs (dropped)
	KernelMsgs     uint64
	OverflowTrips  uint64

	// Metrics instruments, bound to the node's registry at construction.
	reg               *metrics.Registry
	mInserts          *metrics.Counter
	mInsertVMAllocs   *metrics.Counter
	mStray            *metrics.Counter
	mKernelMsgs       *metrics.Counter
	mRevocations      *metrics.Counter
	mFaultsInHandler  *metrics.Counter
	mCtxSwitches      *metrics.Counter
	mOverflowTrips    *metrics.Counter
	mOverflowReleases *metrics.Counter
	mEnterInsert      *metrics.Counter
	mEnterRevoke      *metrics.Counter
	mEnterFault       *metrics.Counter
	mExitBuffered     *metrics.Counter
	mFramesInUse      *metrics.Gauge
	mResidency        *metrics.Histogram
}

func newKernel(m *Machine, node int) *Kernel {
	k := &Kernel{
		m:              m,
		node:           node,
		cpu:            m.Nodes[node].CPU,
		ni:             m.Nodes[node].NI,
		frames:         m.Nodes[node].Frames,
		cost:           m.cost,
		kernelBuffered: m.policy.KernelBuffered(),
		hwDemux:        m.policy.HardwareDemux(),
		procs:          make(map[nic.GID]*Process),
	}
	k.bindMetrics(m.Nodes[node].Metrics)
	k.ni.SetGID(nullGID)
	k.mismatchIRQ = k.cpu.NewIRQ(fmt.Sprintf("mismatch%d", node), k.mismatchISR)
	k.timeoutIRQ = k.cpu.NewIRQ(fmt.Sprintf("timeout%d", node), k.timeoutISR)
	k.gangIRQ = k.cpu.NewIRQ(fmt.Sprintf("gang%d", node), k.gangISR)
	k.osIRQ = k.cpu.NewIRQ(fmt.Sprintf("osnet%d", node), k.osISR)
	k.ni.SetInterrupts(nic.Interrupts{
		MessageAvailable: func() {
			// The user-level interrupt: dispatch the resident process's
			// message-handling activity. Costs are charged there.
			if k.current != nil {
				k.current.SignalUpcall()
			}
		},
		MismatchAvailable: func() { k.mismatchIRQ.Raise() },
		AtomicityTimeout:  func() { k.timeoutIRQ.Raise() },
	})
	m.Net.Register(node, mesh.OS, (*osEndpoint)(k))
	if k.hwDemux {
		k.ni.SetOffload(k)
	}
	return k
}

// AdmitUser implements nic.Offload: the NI's admission check for arriving
// user packets under a hardware-demultiplexing policy. Packets for unknown
// GIDs are admitted — the mismatch path counts and drops them (a protection
// event, not backpressure).
func (k *Kernel) AdmitUser(pkt *mesh.Packet) bool {
	p := k.procs[nic.HeaderGID(pkt.Words[0])]
	if p == nil {
		return true
	}
	return p.store.Admit(len(pkt.Words))
}

// DemuxHead implements nic.Offload: the NI deposits the head user packet
// directly into its owner's ring, spending no processor cycles. Stray GIDs
// are refused and left for the mismatch interrupt.
func (k *Kernel) DemuxHead(pkt *mesh.Packet) bool {
	p := k.procs[nic.HeaderGID(pkt.Words[0])]
	if p == nil {
		return false
	}
	p.store.Push(pkt.ID, pkt.Words, pkt.SentAt, k.m.Eng.Now())
	p.mBufPages.Set(int64(p.store.PagesResident()))
	if p.scheduled && !p.atomicVirtual {
		p.SignalUpcall()
	}
	return true
}

// bindMetrics creates the kernel's named instruments in the node registry.
// The names form the "glaze." namespace: buffer-insert activity, two-case
// transition causes, overflow control and frame-pool pressure.
func (k *Kernel) bindMetrics(r *metrics.Registry) {
	k.reg = r
	k.mInserts = r.Counter("glaze.buffer.inserts")
	k.mInsertVMAllocs = r.Counter("glaze.buffer.insert_vmallocs")
	k.mStray = r.Counter("glaze.stray_messages")
	k.mKernelMsgs = r.Counter("glaze.kernel_msgs")
	k.mRevocations = r.Counter("glaze.revocations")
	k.mFaultsInHandler = r.Counter("glaze.faults_in_handler")
	k.mCtxSwitches = r.Counter("glaze.context_switches")
	k.mOverflowTrips = r.Counter("glaze.overflow.trips")
	k.mOverflowReleases = r.Counter("glaze.overflow.releases")
	k.mEnterInsert = r.Counter("glaze.mode.enter_buffered.insert")
	k.mEnterRevoke = r.Counter("glaze.mode.enter_buffered.revoke")
	k.mEnterFault = r.Counter("glaze.mode.enter_buffered.fault")
	k.mExitBuffered = r.Counter("glaze.mode.exit_buffered")
	k.mFramesInUse = r.Gauge("glaze.frames.in_use")
	k.mResidency = r.Histogram("glaze.buffer.residency")
}

// Node returns the node this kernel manages.
func (k *Kernel) Node() int { return k.node }

// Current returns the resident process, nil during a null slot.
func (k *Kernel) Current() *Process { return k.current }

// Cost returns the kernel's cost model.
func (k *Kernel) Cost() CostModel { return k.cost }

// Machine returns the machine this kernel belongs to.
func (k *Kernel) Machine() *Machine { return k.m }

// MismatchConsumed reports total cycles spent in the buffer-insertion
// (mismatch-available) handler — Table 5's insert-cost numerator.
func (k *Kernel) MismatchConsumed() uint64 { return k.mismatchIRQ.Task().Consumed() }

// CPU returns the node's processor.
func (k *Kernel) CPU() *cpu.CPU { return k.cpu }

// ---------------------------------------------------------------------------
// Interrupt service routines

// mismatchISR implements the kernel's demultiplexer: every head message that
// is not the resident user's business — mismatched GID, kernel message, or
// anything under divert-mode — is moved into its owner's virtual buffer.
func (k *Kernel) mismatchISR(t *cpu.Task) {
	for {
		pkt := k.ni.HeadPacket()
		if pkt == nil {
			return
		}
		h := pkt.Words[0]
		if !k.ni.Divert() && !nic.HeaderIsKernel(h) && nic.HeaderGID(h) == k.ni.GID() && !pkt.FaultMismatch {
			// The head now belongs to the resident user: theirs to take.
			return
		}
		if nic.HeaderIsKernel(h) {
			k.KernelMsgs++
			k.mKernelMsgs.Inc()
			t.Spend(k.cost.BufferInsertMin) // treat as a short kernel handler
			k.m.Spans.End(k.m.Eng.Now(), pkt.ID, k.node, spans.TermKernel)
			k.ni.KDispose()
			k.m.Net.Release(k.node, pkt)
			continue
		}
		p := k.procs[nic.HeaderGID(h)]
		if p == nil {
			// A message for no process on this node: a protection event.
			// FUGU notifies the global scheduler about the offender; we
			// count and drop.
			k.StrayMessages++
			k.mStray.Inc()
			t.Spend(k.cost.BufferInsertMin)
			k.m.Spans.End(k.m.Eng.Now(), pkt.ID, k.node, spans.TermStray)
			k.ni.KDispose()
			k.m.Net.Release(k.node, pkt)
			continue
		}
		// No release after bufferInsert: the delivery store may retain the
		// packet's Words (zero-copy remap installs them as the page).
		k.bufferInsert(t, p, pkt)
		k.ni.KDispose()
	}
}

// bufferInsert diverts one message into p's second-case store, charging the
// policy's insert cost, and performs the overflow-control checks.
func (k *Kernel) bufferInsert(t *cpu.Task, p *Process, pkt *mesh.Packet) {
	if !k.kernelBuffered {
		panic("glaze: buffer insert under a policy without kernel buffering")
	}
	k.applyFrameStarvation()
	if k.m.Spans != nil {
		cause := "gid-mismatch"
		if k.ni.Divert() {
			cause = "divert"
		} else if pkt.FaultMismatch {
			cause = "gid-mismatch(injected)"
		}
		k.m.Spans.Insert(k.m.Eng.Now(), pkt.ID, k.node, cause)
	}
	res := p.store.Push(pkt.ID, pkt.Words, pkt.SentAt, k.m.Eng.Now())
	t.Spend(p.store.InsertCost(res))
	k.Inserts++
	k.mInserts.Inc()
	if res.NewPages > 0 || res.Fallback {
		// A demand allocation on the virtual-buffer path, or a copy taken by
		// the zero-copy policy with no frame to pin: either way the insert
		// escaped its cheap case.
		k.InsertVMAllocs++
		k.mInsertVMAllocs.Inc()
	}
	k.mFramesInUse.Set(int64(k.frames.InUse()))
	p.mBufPages.Set(int64(p.store.PagesResident()))
	p.CountDelivery(false)
	if !p.buffered {
		p.buffered = true
		k.mEnterInsert.Inc()
		k.m.Trace.Add(k.m.Eng.Now(), k.node, trace.Mode, "enter buffered %s (insert)", p.job.name)
		if p.scheduled {
			k.ni.SetDivert(true)
		}
	}
	if p.scheduled && !p.atomicVirtual {
		p.SignalUpcall()
	}
	k.checkOverflow(t, p)
}

// timeoutISR implements revocation: the user held the network too long, so
// physical atomicity becomes virtual atomicity and delivery shifts to the
// buffered path.
func (k *Kernel) timeoutISR(t *cpu.Task) {
	if !k.kernelBuffered {
		// No buffered mode to revoke into: a bypass ring rides out the long
		// atomic section on its own capacity (and NACKs past it).
		return
	}
	p := k.current
	if p == nil || p.buffered {
		return // stale timeout (mode already shifted)
	}
	t.Spend(k.cost.RevokeCost)
	k.m.Trace.Add(k.m.Eng.Now(), k.node, trace.Mode, "revoke %s (uac=%#x)", p.job.name, k.ni.UAC())
	p.Revocations++
	k.mRevocations.Inc()
	k.mEnterRevoke.Inc()
	p.buffered = true
	// If the user was inside an atomic section (it was, or the timer would
	// not have run), buffered delivery is deferred until the section ends;
	// the endatom traps so the kernel notices.
	p.atomicVirtual = k.ni.UAC()&(nic.UACInterruptDisable|nic.UACTimerForce) != 0
	if p.atomicVirtual {
		k.ni.SetUACKernel(nic.UACAtomicityExtend, true)
	}
	k.ni.SetDivert(true)
	// The stuck head re-evaluates as a mismatch and the drain begins.
}

// gangISR performs the context switch the gang scheduler requested.
func (k *Kernel) gangISR(t *cpu.Task) {
	if !k.switchValid {
		return
	}
	target := k.switchTarget
	k.switchTarget = nil
	k.switchValid = false
	k.contextSwitchTo(t, target)
}

// contextSwitchTo makes p (nil for the null slot) the resident process.
func (k *Kernel) contextSwitchTo(t *cpu.Task, p *Process) {
	if k.current == p {
		return
	}
	if k.m.Trace.Enabled(trace.Sched) {
		name := "null"
		if p != nil {
			name = p.job.name
		}
		k.m.Trace.Add(k.m.Eng.Now(), k.node, trace.Sched, "switch to %s", name)
	}
	t.Spend(k.cost.ContextSwitch)
	k.mCtxSwitches.Inc()
	if old := k.current; old != nil {
		old.uacShadow = k.ni.UAC()
		old.descShadow = k.ni.ClearDescriptor()
		old.scheduled = false
		old.suspendTasks()
	}
	k.current = p
	if p == nil {
		k.ni.ClearUAC()
		k.ni.SetGID(nullGID)
		k.ni.SetDivert(false)
		return
	}
	p.scheduled = true
	k.ni.SetGID(p.gid)
	k.ni.RestoreUAC(p.uacShadow)
	if len(p.descShadow) > 0 {
		k.ni.Describe(p.descShadow...)
		p.descShadow = nil
	}
	// Transparency at quantum start: a process with buffered messages
	// resumes in buffered mode and drains before touching the NI. A bypass
	// ring likewise resumes with whatever the NI demuxed while it was out.
	k.ni.SetDivert(p.buffered)
	p.resumeTasks()
	if (p.buffered || k.hwDemux) && !p.store.Empty() && !p.atomicVirtual {
		p.SignalUpcall()
	}
}

// ---------------------------------------------------------------------------
// Trap handling (entered synchronously from udm, in the user task's context)

// UserDispose performs the user dispose operation with full trap semantics.
// In the fast case the NI frees the message; under divert the kernel
// emulates disposal from the software buffer (the dispose-extend path).
// It reports whether the disposal was genuinely fast: false means the
// message came out of the policy store, i.e. it was already tallied as a
// buffered delivery at insert time. The distinction matters when the mode
// flips mid-read — a message read from the NI head can be diverted into the
// store by a context switch before its dispose lands, and only the dispose
// outcome says which path it ultimately took.
func (k *Kernel) UserDispose(t *cpu.Task, p *Process) bool {
	if k.hwDemux {
		k.bypassDispose(t, p)
		return true
	}
	switch trap := k.ni.Dispose(); trap {
	case nic.TrapNone:
		return true
	case nic.TrapDisposeExtend:
		k.disposeExtend(t, p)
		return false
	case nic.TrapBadDispose:
		panic(fmt.Sprintf("glaze: %s disposed with no message available", p.job.name))
	default:
		panic(fmt.Sprintf("glaze: unexpected dispose trap %v", trap))
	}
}

// bypassDispose frees the head message of a hardware-demultiplexed ring:
// the user-visible dispose under a kernel-bypass policy. It counts as a
// fast-path disposal (the kernel never touched the message), clears
// dispose-pending as the hardware dispose would, and re-offers network
// backpressure now that a ring slot is free.
func (k *Kernel) bypassDispose(t *cpu.Task, p *Process) {
	if p.store.Empty() {
		panic(fmt.Sprintf("glaze: %s disposed with empty bypass ring", p.job.name))
	}
	k.ni.SetUACKernel(nic.UACDisposePending, false)
	meta, cost := p.store.Pop()
	if cost > 0 {
		t.Spend(cost)
	}
	k.m.Spans.End(k.m.Eng.Now(), meta.ID, k.node, spans.TermFast)
	k.mResidency.Observe(k.m.Eng.Now() - meta.InsertedAt)
	p.mBufPages.Set(int64(p.store.PagesResident()))
	k.ni.NotifyInputSpace()
}

// disposeExtend emulates disposal from the software buffer, including the
// side effect of the hardware dispose: dispose-pending clears, so a handler
// that freed its message through the emulation can exit its atomic section.
func (k *Kernel) disposeExtend(t *cpu.Task, p *Process) {
	k.applyFrameStarvation()
	k.ni.SetUACKernel(nic.UACDisposePending, false)
	meta, popCost := p.store.Pop()
	if popCost > 0 {
		// Zero-copy consume: unmapping the flipped page costs a shootdown.
		t.Spend(popCost)
	}
	k.m.Spans.End(k.m.Eng.Now(), meta.ID, k.node, spans.TermBuffered)
	k.mResidency.Observe(k.m.Eng.Now() - meta.InsertedAt)
	k.mFramesInUse.Set(int64(k.frames.InUse()))
	p.mBufPages.Set(int64(p.store.PagesResident()))
	if p.store.Empty() {
		k.exitBuffered(t, p)
	}
	k.maybeLiftOverflow(p)
}

// UserEndAtom performs endatom with trap handling: atomicity-extend returns
// control here so virtual atomicity can be dissolved; dispose-failure means
// the handler broke the discipline and is fatal, as in FUGU.
func (k *Kernel) UserEndAtom(t *cpu.Task, p *Process, mask uint8) {
	switch trap := k.ni.EndAtom(mask, false); trap {
	case nic.TrapNone:
		// Leaving an atomic section in buffered mode (or with a demuxed
		// backlog) releases deferred messages to the message-handling
		// activity.
		if (p.buffered || k.hwDemux) && !p.store.Empty() {
			p.SignalUpcall()
		}
		return
	case nic.TrapAtomicityExtend:
		k.atomicityExtend(t, p, mask)
	case nic.TrapDisposeFailure:
		panic(fmt.Sprintf("glaze: %s handler exited atomic section without disposing", p.job.name))
	default:
		panic(fmt.Sprintf("glaze: unexpected endatom trap %v", trap))
	}
}

// atomicityExtend ends a virtually-atomic section: the suspended or polling
// thread has released atomicity, so deferred buffered messages may now be
// delivered by the message-handling activity.
func (k *Kernel) atomicityExtend(t *cpu.Task, p *Process, mask uint8) {
	p.atomicVirtual = false
	k.ni.SetUACKernel(nic.UACAtomicityExtend, false)
	if trap := k.ni.EndAtom(mask, false); trap != nic.TrapNone {
		panic(fmt.Sprintf("glaze: endatom retry trapped %v", trap))
	}
	if p.buffered && !p.store.Empty() {
		p.SignalUpcall()
	}
}

// exitBuffered returns a drained process to direct delivery. Under the
// one-case ablation there is no direct delivery to return to.
func (k *Kernel) exitBuffered(t *cpu.Task, p *Process) {
	if k.m.alwaysBuffered {
		return
	}
	k.m.Trace.Add(k.m.Eng.Now(), k.node, trace.Mode, "exit buffered %s", p.job.name)
	k.mExitBuffered.Inc()
	p.buffered = false
	p.atomicVirtual = false
	if p.scheduled {
		k.ni.SetUACKernel(nic.UACAtomicityExtend, false)
		k.ni.SetDivert(false)
		// Messages still queued in the NI re-evaluate: if the head is the
		// user's it raises message-available and the fast path resumes.
	}
}

// Touch services a user access to addr in p's data space, modelling demand
// zero-fill faults. inHandler marks accesses from a message handler: a
// fault there forces the transition to buffered mode (Section 4.3), since
// the handler blocks the network while the kernel services it.
func (k *Kernel) Touch(t *cpu.Task, p *Process, addr uint64, inHandler bool) {
	k.applyFrameStarvation()
	faulted, ok := p.Space.Ensure(addr)
	if !faulted {
		return
	}
	if !ok {
		panic("glaze: data page fault with exhausted frame pool (overflow control failed)")
	}
	t.Spend(k.cost.FaultService)
	k.mFramesInUse.Set(int64(k.frames.InUse()))
	if inHandler {
		p.FaultsInHandler++
		k.mFaultsInHandler.Inc()
		if k.kernelBuffered && !p.buffered {
			p.buffered = true
			k.mEnterFault.Inc()
			p.atomicVirtual = true // the faulting handler holds atomicity
			k.ni.SetUACKernel(nic.UACAtomicityExtend, true)
			k.ni.SetDivert(true)
		}
	}
}

// ---------------------------------------------------------------------------
// Fault-injection entry points (driven by the machine's faultinject plan)

// SyntheticHandlerFault models a page fault taken inside a message handler
// without touching any page: the kernel charges fault service and shifts the
// process to buffered mode exactly as a real in-handler fault would
// (Section 4.3).
func (k *Kernel) SyntheticHandlerFault(t *cpu.Task, p *Process) {
	t.Spend(k.cost.FaultService)
	p.FaultsInHandler++
	k.mFaultsInHandler.Inc()
	if k.kernelBuffered && !p.buffered {
		p.buffered = true
		k.mEnterFault.Inc()
		k.m.Trace.Add(k.m.Eng.Now(), k.node, trace.Mode, "enter buffered %s (injected fault)", p.job.name)
		p.atomicVirtual = true // the faulting handler holds atomicity
		k.ni.SetUACKernel(nic.UACAtomicityExtend, true)
		k.ni.SetDivert(true)
	}
}

// ForceQuantumExpiry models a quantum boundary landing mid-handler: p is
// preempted into the null slot now (messages arriving meanwhile mismatch
// against the null GID and buffer) and switched back in resumeAfter cycles
// later, unless a real gang tick got there first — the next real tick is the
// liveness backstop either way.
func (k *Kernel) ForceQuantumExpiry(p *Process, resumeAfter uint64) {
	if p == nil || k.current != p {
		return
	}
	k.m.Trace.Add(k.m.Eng.Now(), k.node, trace.Sched, "forced quantum expiry %s", p.job.name)
	k.switchTarget = nil
	k.switchValid = true
	k.gangIRQ.Raise()
	k.m.Eng.ScheduleSite(siteFaultExpiry, resumeAfter, func() {
		if k.current != nil || k.m.Eng.Stopped() {
			return // a real tick already scheduled someone
		}
		k.switchTarget = p
		k.switchValid = true
		k.gangIRQ.Raise()
	})
}

// siteFaultExpiry labels injected quantum-expiry resumes for the profiler.
var siteFaultExpiry = sim.NewSite("glaze.fault.expiry")

// starvationReserve is the free-frame floor applyFrameStarvation never takes
// below: data-page faults must still find a frame, or the exhausted-pool
// panic in Touch would fire on an injected condition rather than a real
// overflow-control failure.
const starvationReserve = 8

// applyFrameStarvation reconciles the pool with the fault plan's withheld
// target for this node. Called on the buffer-management paths, so the pool
// shrinks while a starvation window is open and refills after it closes.
func (k *Kernel) applyFrameStarvation() {
	if k.m.Faults == nil {
		return
	}
	want := k.m.Faults.WithheldFrames(k.node)
	if want == k.starvedFrames {
		return
	}
	if want > k.starvedFrames {
		take := want - k.starvedFrames
		if room := k.frames.Free() - starvationReserve; take > room {
			take = room
		}
		if take > 0 {
			k.starvedFrames += k.frames.Withhold(take)
		}
	} else {
		k.frames.Unwithhold(k.starvedFrames - want)
		k.starvedFrames = want
	}
	k.mFramesInUse.Set(int64(k.frames.InUse()))
}

// ---------------------------------------------------------------------------
// Overflow control

// overflow thresholds as fractions of the node's frame pool.
const (
	overflowHighFrac = 0.85 // trip when in-use frames exceed this
	overflowLowFrac  = 0.50 // recover below this
)

// checkOverflow trips the overflow-control mechanism: the offending job is
// globally suspended (senders stall) via the OS network and the scheduler is
// advised to gang-schedule it so it drains.
func (k *Kernel) checkOverflow(t *cpu.Task, p *Process) {
	if p.job.overflowed {
		return
	}
	if float64(k.frames.InUse()) < overflowHighFrac*float64(k.frames.Total()) {
		return
	}
	k.OverflowTrips++
	k.mOverflowTrips.Inc()
	k.m.Trace.Add(k.m.Eng.Now(), k.node, trace.Overflow, "trip %s: %d/%d frames",
		p.job.name, k.frames.InUse(), k.frames.Total())
	p.job.overflowed = true
	p.job.overflowSeq++
	k.broadcastOS(osOpSuspendJob, uint64(p.gid)|p.job.overflowSeq<<16)
	if k.m.Gang != nil {
		k.m.Gang.Prefer(p.job)
	}
}

// maybeLiftOverflow reverses overflow control once pressure subsides.
func (k *Kernel) maybeLiftOverflow(p *Process) {
	if !p.job.overflowed {
		return
	}
	if float64(k.frames.InUse()) > overflowLowFrac*float64(k.frames.Total()) && !p.store.Empty() {
		return
	}
	p.job.overflowed = false
	p.job.overflowSeq++
	k.mOverflowReleases.Inc()
	k.m.Trace.Add(k.m.Eng.Now(), k.node, trace.Overflow, "release %s", p.job.name)
	k.broadcastOS(osOpResumeJob, uint64(p.gid)|p.job.overflowSeq<<16)
	if k.m.Gang != nil {
		k.m.Gang.Unprefer(p.job)
	}
}

// broadcastOS sends a control operation to every node (including this one)
// on the reserved OS network — the guaranteed, deadlock-free path.
func (k *Kernel) broadcastOS(op, arg uint64) {
	for n := 0; n < k.m.Net.Nodes(); n++ {
		pkt := k.m.Net.Acquire(k.node, 3)
		pkt.Words[0], pkt.Words[1], pkt.Words[2] = nic.MakeKernelHeader(n), op, arg
		k.m.Net.SendPacket(mesh.OS, k.node, n, pkt)
	}
}

// osEndpoint adapts Kernel to mesh.Endpoint for the OS network without
// colliding with the NI's main-network endpoint.
type osEndpoint Kernel

// Arrive queues an OS-network packet; the kernel's OS ISR services it.
func (oe *osEndpoint) Arrive(pkt *mesh.Packet) bool {
	k := (*Kernel)(oe)
	k.m.Spans.Queued(k.m.Eng.Now(), pkt.ID, k.node)
	k.osQueue = append(k.osQueue, pkt)
	k.osIRQ.Raise()
	return true
}

// osISR handles one queued OS-network control message.
func (k *Kernel) osISR(t *cpu.Task) {
	if len(k.osQueue) == 0 {
		return
	}
	pkt := k.osQueue[0]
	copy(k.osQueue, k.osQueue[1:])
	k.osQueue = k.osQueue[:len(k.osQueue)-1]
	t.Spend(k.cost.BufferInsertMin) // nominal handler cost
	k.m.Spans.End(k.m.Eng.Now(), pkt.ID, k.node, spans.TermKernel)
	op, arg := pkt.Words[1], pkt.Words[2]
	k.m.Net.Release(k.node, pkt)
	p := k.procs[nic.GID(arg)]
	if p == nil {
		return
	}
	switch op {
	case osOpSuspendJob, osOpResumeJob:
		// Suspends and resumes race: different nodes trip and lift overflow
		// control independently, and the OS mesh only orders packets from
		// the same sender. The low 16 bits of arg carry the GID; the rest
		// is the job-wide broadcast sequence, and a stale op — one issued
		// before an op already applied here — is discarded, or a late
		// suspend would out-live the final resume and throttle the process
		// forever.
		seq := arg >> 16
		if seq <= p.overflowSeen {
			return
		}
		p.overflowSeen = seq
		if op == osOpSuspendJob {
			p.throttled = true
		} else {
			p.throttled = false
			p.throttleW.WakeAll()
		}
	}
}
