package harness

import (
	"context"
	"fmt"
	"io"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
	"fugu/internal/metrics"
	"fugu/internal/plot"
	"fugu/internal/telemetry"
	"fugu/internal/udm"
)

// Table5Result reproduces the software-buffer overhead table: the
// configured constants plus end-to-end measurements from a microbenchmark
// that forces many messages through the buffered path.
type Table5Result struct {
	InsertMin     uint64 // configured minimum insert cost
	InsertVMAlloc uint64 // configured insert cost with page allocation
	Extract       uint64 // configured null-handler-from-buffer cost

	MeasuredInsertMean  float64 // ISR cycles per buffered insert
	MeasuredExtractMean float64 // upcall cycles per buffered delivery
	Inserts             uint64
	VMAllocs            uint64

	// Metrics is the microbenchmark machine's registry snapshot.
	Metrics metrics.Snapshot
	// Timeline is the machine's flight-recorder timeline (empty unless
	// telemetry sampling is enabled).
	Timeline telemetry.Timeline
}

// MetricsSnapshot implements MetricsCarrier for the Runner's metrics hook.
func (r Table5Result) MetricsSnapshot() metrics.Snapshot { return r.Metrics }

// TimelineData implements TimelineCarrier for the Runner's timeline hook.
func (r Table5Result) TimelineData() telemetry.Timeline { return r.Timeline }

// Table5 runs the microbenchmark: a sender floods a receiver whose process
// is not yet scheduled, so every message is inserted into the virtual
// buffer (some taking the vmalloc path); the receiver then drains from the
// buffer with null handlers.
func Table5(opts ...Option) (Table5Result, error) {
	return runAs[Table5Result]("table5", opts...)
}

// table5Experiment wraps the microbenchmark as a single-point experiment.
func table5Experiment() *Experiment {
	return &Experiment{
		Name:        "table5",
		Description: "software buffer insert/extract overheads (buffered path)",
		Points: func(Options) []Point {
			return []Point{{
				Label: "bufbench",
				Run: func(_ context.Context, opt Options) (any, error) {
					return table5Measure(opt.machineMut(nil)), nil
				},
			}}
		},
		Assemble: func(_ Options, results []any) (Result, error) {
			return results[0].(Table5Result), nil
		},
	}
}

// table5Measure runs the flood microbenchmark on a fresh two-node machine.
func table5Measure(mut func(*glaze.Config)) Table5Result {
	cfg := glaze.NewConfig(glaze.WithMesh(2, 1))
	if mut != nil {
		mut(&cfg)
	}
	m := glaze.NewMachine(cfg)
	job := m.NewJob("bufbench")
	null := m.NewJob("null")
	ep0 := udm.Attach(job.Process(0))
	ep1 := udm.Attach(job.Process(1))
	udm.Attach(null.Process(0))
	udm.Attach(null.Process(1))

	const N = 2000
	got := 0
	ep1.On(1, func(e *udm.Env, msg *udm.Msg) { got++ })
	job.Process(0).StartMain(func(t *cpu.Task) {
		e := ep0.Env(t)
		for i := 0; i < N; i++ {
			e.Inject(1, 1, uint64(i), 0, 0, 0) // 4-word payload
		}
	})
	job.Process(1).StartMain(func(t *cpu.Task) {
		for got < N {
			t.Spend(10_000)
		}
	})
	// Node 1 joins the job's quantum half a slice late, so the flood lands
	// in the buffered path.
	m.NewGang(Quantum, 0.9, job, null).Start()
	m.RunUntilDone(0, job)

	cm := m.Cost()
	tl := m.FinishTelemetry()
	res := Table5Result{
		InsertMin:     cm.BufferInsertMin,
		InsertVMAlloc: cm.BufferInsertVMAlloc,
		Extract:       cm.BufferedNullHandler,
		Inserts:       m.Nodes[1].Kernel.Inserts,
		VMAllocs:      job.Process(1).BufferVMAllocs(),
		Metrics:       m.MetricsSnapshot(),
		Timeline:      tl,
	}
	if res.Inserts > 0 {
		res.MeasuredInsertMean = float64(m.Nodes[1].Kernel.MismatchConsumed()) / float64(res.Inserts)
	}
	d := job.Process(1).Deliv
	if d.Buffered > 0 {
		res.MeasuredExtractMean = float64(job.Process(1).UpcallConsumed()) / float64(d.Buffered)
	}
	return res
}

// Print renders the table with the paper's reference values.
func (r Table5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 5: software buffer insert/extract overheads")
	fmt.Fprintln(w, plot.Table(
		[]string{"Item", "configured", "paper", "measured mean"},
		[][]string{
			{"Minimum buffer-insert handler", u(r.InsertMin), "180", f1(r.MeasuredInsertMean)},
			{"Maximum handler (w/vmalloc)", u(r.InsertVMAlloc), "3,162", fmt.Sprintf("(%d/%d inserts allocated)", r.VMAllocs, r.Inserts)},
			{"Execute null handler from buffer", u(r.Extract), "52", f1(r.MeasuredExtractMean)},
		}))
	fmt.Fprintf(w, "minimum per-message buffered total: %d cycles (paper: 232 = 180 + 52)\n",
		r.InsertMin+r.Extract)
}
