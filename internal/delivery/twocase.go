package delivery

import (
	"fugu/internal/vm"
)

// TwoCase is the paper's delivery organization and the default policy:
// direct NI access in the common case, with misses diverted by the kernel
// into a per-process virtual software buffer (VirtualBuffer) and drained
// back to the fast path. Delivery is guaranteed — under absolute frame
// exhaustion buffer pages page out to backing store rather than refusing
// traffic.
type TwoCase struct{}

// Name implements Policy.
func (TwoCase) Name() string { return "twocase" }

// KernelBuffered implements Policy: two-case delivery is the kernel's divert
// machinery.
func (TwoCase) KernelBuffered() bool { return true }

// HardwareDemux implements Policy: demultiplexing is software's job here.
func (TwoCase) HardwareDemux() bool { return false }

// NewStore implements Policy.
func (TwoCase) NewStore(frames *vm.Frames, p Params) Store {
	b := NewVirtualBuffer(frames)
	b.costs = p.Costs
	b.noReclaim = p.NoReclaim
	return b
}

// VirtualBuffer is a process's virtual software buffer: the slow half of
// two-case delivery. Messages are stored length-prefixed in a dedicated
// virtual address space whose physical pages are allocated on demand
// (virtual buffering), reclaimed as the reader passes them, and — under
// absolute frame exhaustion — paged out to backing store over the OS network
// so delivery stays guaranteed.
type VirtualBuffer struct {
	space *vm.Space
	costs Costs
	head  uint64 // word address of the next unread message's length word
	tail  uint64 // word address where the next message will be written
	count int    // messages resident (pushed, not yet fully consumed)

	// Backing store ("swap"): contents of paged-out buffer pages, keyed by
	// virtual page number. Reached via the second logical network.
	swap map[uint64][]uint64

	// meta tracks per-message timestamps in insertion order, parallel to the
	// buffered records. It is simulator bookkeeping (latency and residency
	// instrumentation), not simulated memory: it consumes no frames and never
	// pages, so recording it cannot perturb experiment results.
	meta []MsgMeta

	noReclaim bool // pinned-buffer ablation: never release pages

	inserted   uint64 // lifetime pushes
	vmallocs   uint64 // pushes that demand-allocated at least one page
	pageOuts   uint64
	pageIns    uint64
	maxPending int // high water of resident (unconsumed) messages
}

// NewVirtualBuffer builds an empty buffer over the node's frame pool.
func NewVirtualBuffer(frames *vm.Frames) *VirtualBuffer {
	return &VirtualBuffer{
		space: vm.NewSpace(frames),
		swap:  make(map[uint64][]uint64),
	}
}

// Admit implements Store: virtual buffering guarantees delivery, so every
// message is admitted.
func (b *VirtualBuffer) Admit(nwords int) bool { return true }

// Push appends a message stamped with its packet ID, its injection time
// (sentAt) and the current time. It never fails: when the frame pool is
// exhausted it evicts the oldest fully-written buffer pages ahead of the
// tail to backing store (the guaranteed-delivery path of Section 4.2).
func (b *VirtualBuffer) Push(id uint64, words []uint64, sentAt, now uint64) PushResult {
	var res PushResult
	need := uint64(len(words)) + 1
	// Ensure residency for every page the record touches.
	for addr := b.tail; addr < b.tail+need; addr += vm.PageWords {
		res = b.ensure(addr, res)
	}
	res = b.ensure(b.tail+need-1, res)
	b.space.Write(b.tail, uint64(len(words)))
	for i, w := range words {
		b.space.Write(b.tail+1+uint64(i), w)
	}
	b.tail += need
	b.count++
	b.inserted++
	b.meta = append(b.meta, MsgMeta{ID: id, SentAt: sentAt, InsertedAt: now})
	if res.NewPages > 0 {
		b.vmallocs++
	}
	if b.count > b.maxPending {
		b.maxPending = b.count
	}
	return res
}

// InsertCost implements Store with the Table 5 arithmetic: the minimum
// handler, or the vmalloc handler when a page was demand-allocated, plus the
// Figure 10 knob and the page-out traffic.
func (b *VirtualBuffer) InsertCost(r PushResult) uint64 {
	cost := b.costs.InsertMin
	if r.NewPages > 0 {
		cost = b.costs.InsertVMAlloc
	}
	cost += b.costs.ExtraInsert
	cost += b.costs.PageOut * uint64(r.PagedOut)
	return cost
}

// ensure makes addr's page resident, paging out victims if required.
func (b *VirtualBuffer) ensure(addr uint64, res PushResult) PushResult {
	vp := vm.PageOf(addr)
	if _, swapped := b.swap[vp]; swapped {
		// Rare: the tail page itself was evicted. Bring it back.
		res = b.pageIn(vp, res)
		return res
	}
	faulted, ok := b.space.Ensure(addr)
	for !ok {
		res = b.evictVictim(res)
		faulted, ok = b.space.Ensure(addr)
	}
	if faulted {
		res.NewPages++
	}
	return res
}

// evictVictim pages out the oldest resident page at or after head that is
// not the current tail page. Preferring pages closest to the head would
// evict data about to be read; FUGU's proposal pages out to clear space for
// the *insert* path, so we take the page just after the reader's current
// page — it will be needed latest among full pages... in practice the
// buffer spans few pages and any victim works; we choose the lowest-numbered
// resident page that is not the head page and not the tail page, falling
// back to the head page.
func (b *VirtualBuffer) evictVictim(res PushResult) PushResult {
	headVp := vm.PageOf(b.head)
	tailVp := vm.PageOf(b.tail)
	for vp := headVp; vp <= tailVp; vp++ {
		if vp == tailVp {
			break
		}
		if vp == headVp && headVp+1 <= tailVp {
			continue // prefer not to evict the page being read
		}
		if words := b.space.Evict(vp * vm.PageWords); words != nil {
			b.swap[vp] = words
			b.pageOuts++
			res.PagedOut++
			return res
		}
	}
	// Fall back to the head page itself.
	if words := b.space.Evict(headVp * vm.PageWords); words != nil {
		b.swap[headVp] = words
		b.pageOuts++
		res.PagedOut++
		return res
	}
	panic("delivery: buffer has no evictable page but pool is exhausted")
}

// pageIn restores a swapped page, evicting something else if necessary.
func (b *VirtualBuffer) pageIn(vp uint64, res PushResult) PushResult {
	words := b.swap[vp]
	delete(b.swap, vp)
	for !b.space.Install(vp*vm.PageWords, words) {
		res = b.evictVictim(res)
	}
	b.pageIns++
	return res
}

// Empty implements Store.
func (b *VirtualBuffer) Empty() bool { return b.count == 0 }

// Pending implements Store.
func (b *VirtualBuffer) Pending() int { return b.count }

// HeadLen returns the length of the message at the head, restoring its page
// from swap if it was paged out.
func (b *VirtualBuffer) HeadLen() int {
	b.touch(b.head)
	return int(b.space.Read(b.head))
}

// HeadWord returns word i of the head message, restoring pages as needed.
func (b *VirtualBuffer) HeadWord(i int) uint64 {
	addr := b.head + 1 + uint64(i)
	b.touch(addr)
	return b.space.Read(addr)
}

// touch makes addr resident, returning how many pages were paged in.
func (b *VirtualBuffer) touch(addr uint64) int {
	vp := vm.PageOf(addr)
	if _, swapped := b.swap[vp]; !swapped {
		return 0
	}
	res := b.pageIn(vp, PushResult{})
	return 1 + res.PagedOut // paging in may itself have evicted
}

// HeadID returns the packet ID of the head message, false if empty.
func (b *VirtualBuffer) HeadID() (uint64, bool) {
	if len(b.meta) == 0 {
		return 0, false
	}
	return b.meta[0].ID, true
}

// PendingIDs lists the packet IDs of the unconsumed buffered messages, in
// insertion order (diagnostics).
func (b *VirtualBuffer) PendingIDs() []uint64 {
	if len(b.meta) == 0 {
		return nil
	}
	ids := make([]uint64, len(b.meta))
	for i, m := range b.meta {
		ids[i] = m.ID
	}
	return ids
}

// HeadSentAt returns the injection time of the head message, false if empty.
func (b *VirtualBuffer) HeadSentAt() (uint64, bool) {
	if len(b.meta) == 0 {
		return 0, false
	}
	return b.meta[0].SentAt, true
}

// Pop consumes the head message, unmapping buffer pages wholly behind the
// reader so physical consumption tracks the live window. It returns the
// consumed message's timestamps for residency accounting; disposal from the
// buffer charges nothing beyond the extract costs the caller already pays.
func (b *VirtualBuffer) Pop() (MsgMeta, uint64) {
	if b.count == 0 {
		panic("delivery: pop from empty software buffer")
	}
	meta := b.meta[0]
	copy(b.meta, b.meta[1:])
	b.meta = b.meta[:len(b.meta)-1]
	n := b.HeadLen()
	b.head += uint64(n) + 1
	b.count--
	if b.noReclaim {
		return meta, 0
	}
	// Reclaim pages fully consumed: every page strictly below the head's
	// current page holds only read data.
	for vp := vm.PageOf(b.head); vp > 0; {
		prev := vp - 1
		if words := b.space.Evict(prev * vm.PageWords); words == nil {
			// Not resident: maybe swapped; drop swap copies too.
			if _, ok := b.swap[prev]; ok {
				delete(b.swap, prev)
				vp = prev
				continue
			}
			break
		}
		vp = prev
	}
	if b.count == 0 {
		// Fully drained: release everything, including the page under the
		// head/tail cursor.
		b.space.Release()
		for vp := range b.swap {
			delete(b.swap, vp)
		}
	}
	return meta, 0
}

// PagesResident returns physical pages currently consumed by the buffer.
func (b *VirtualBuffer) PagesResident() int { return b.space.PagesMapped() }

// PagesHighWater returns the most physical pages the buffer ever held —
// the per-node metric behind the paper's "less than seven pages/node".
func (b *VirtualBuffer) PagesHighWater() int { return b.space.HighWater() }

// VMAllocs reports how many pushes demand-allocated at least one page.
func (b *VirtualBuffer) VMAllocs() uint64 { return b.vmallocs }

// PageOuts and PageIns expose the backing-store traffic (tests).
func (b *VirtualBuffer) PageOuts() uint64 { return b.pageOuts }

// PageIns reports pages restored from backing store.
func (b *VirtualBuffer) PageIns() uint64 { return b.pageIns }

// MaxPending reports the high water of resident (unconsumed) messages.
func (b *VirtualBuffer) MaxPending() int { return b.maxPending }
