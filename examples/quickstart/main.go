// Quickstart: a two-node ping-pong over UDM messages, showing injection,
// handler dispatch (the user-level interrupt), and the fast-path latency of
// Table 4.
package main

import (
	"fmt"

	"fugu"
)

const (
	hPing = 1
	hPong = 2
)

func main() {
	m := fugu.NewMachine(fugu.DefaultConfig(), fugu.WithMesh(2, 1))
	job := m.NewJob("pingpong")

	ep0 := fugu.Attach(job.Process(0))
	ep1 := fugu.Attach(job.Process(1))

	// Node 1 echoes every ping back with its arrival time.
	ep1.On(hPing, func(e *fugu.Env, msg *fugu.Msg) {
		e.Inject(0, hPong, msg.Args[0], e.Now())
	})

	const rounds = 10
	done := fugu.NewCounter()
	var rtts []uint64
	ep0.On(hPong, func(e *fugu.Env, msg *fugu.Msg) {
		rtts = append(rtts, e.Now()-msg.Args[0])
		done.Add(1)
	})

	job.Process(0).StartMain(func(t *fugu.Task) {
		e := ep0.Env(t)
		for i := uint64(1); i <= rounds; i++ {
			e.Inject(1, hPing, e.Now())
			done.WaitFor(t, i)
		}
	})

	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(0, job)

	fmt.Println("round-trip times (cycles):", rtts)
	var sum uint64
	for _, r := range rtts {
		sum += r
	}
	fmt.Printf("mean RTT: %d cycles (2x send %d + wire + 2x receive %d)\n",
		sum/rounds, m.Cost().SendCost(2), m.Cost().RecvIntrTotal())
	d := job.Delivery()
	fmt.Printf("deliveries: %d fast, %d buffered — the direct path is the common path\n",
		d.Fast, d.Buffered)
}
