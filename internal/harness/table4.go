package harness

import (
	"context"
	"fmt"
	"io"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
	"fugu/internal/metrics"
	"fugu/internal/plot"
	"fugu/internal/telemetry"
	"fugu/internal/udm"
)

// Table4Row is one line of Table 4 for the three atomicity implementations.
type Table4Row struct {
	Item               string
	Kernel, Hard, Soft uint64
}

// Table4Result carries the cost-model rows plus end-to-end validation
// measurements from a simulated ping-pong (the paper's numbers were made
// from simulator traces of exactly such a benchmark).
type Table4Result struct {
	Rows []Table4Row
	// Measured one-way receive overhead (send-to-handler-start minus
	// network latency) and measured polling totals per implementation.
	MeasuredIntr [3]uint64
	MeasuredPoll [3]uint64
}

// table4Impls are the three columns of Table 4.
var table4Impls = []glaze.AtomicityImpl{glaze.KernelMode, glaze.HardAtomicity, glaze.SoftAtomicity}

// table4Point is one implementation's measurement plus the merged registry
// snapshot of the machines that produced it (each pingpong machine delivers
// exactly one fast-path message, so glaze.deliver.fast counts the runs).
type table4Point struct {
	intr, poll uint64
	metrics    metrics.Snapshot
	timeline   telemetry.Timeline
}

// MetricsSnapshot implements MetricsCarrier for the Runner's metrics hook.
func (p table4Point) MetricsSnapshot() metrics.Snapshot { return p.metrics }

// TimelineData implements TimelineCarrier: the point's machines splice into
// one timeline, each as its own epoch.
func (p table4Point) TimelineData() telemetry.Timeline { return p.timeline }

// Table4 reproduces the cycle counts to send and receive a null message.
func Table4(opts ...Option) (Table4Result, error) {
	return runAs[Table4Result]("table4", opts...)
}

// table4Experiment measures each atomicity implementation as one point.
func table4Experiment() *Experiment {
	return &Experiment{
		Name:        "table4",
		Description: "fast-path cycle counts to send and receive a null message",
		Points: func(Options) []Point {
			pts := make([]Point, len(table4Impls))
			for i, im := range table4Impls {
				im := im
				pts[i] = Point{
					Label: "impl=" + im.String(),
					Run: func(_ context.Context, opt Options) (any, error) {
						return measureNullMessage(im, opt), nil
					},
				}
			}
			return pts
		},
		Assemble: func(_ Options, results []any) (Result, error) {
			res := table4Rows()
			for i, r := range results {
				v := r.(table4Point)
				res.MeasuredIntr[i], res.MeasuredPoll[i] = v.intr, v.poll
			}
			return res, nil
		},
	}
}

// table4Rows builds the cost-model rows (no simulation required).
func table4Rows() Table4Result {
	cms := make([]glaze.CostModel, 3)
	for i, im := range table4Impls {
		cms[i] = glaze.Costs(im)
	}
	row := func(item string, f func(glaze.CostModel) uint64) Table4Row {
		return Table4Row{item, f(cms[0]), f(cms[1]), f(cms[2])}
	}
	return Table4Result{Rows: []Table4Row{
		row("Descriptor construction", func(c glaze.CostModel) uint64 { return c.DescribeNull }),
		row("launch", func(c glaze.CostModel) uint64 { return c.Launch }),
		row("send total:", func(c glaze.CostModel) uint64 { return c.SendCost(0) }),
		row("Interrupt overhead", func(c glaze.CostModel) uint64 { return c.InterruptOverhead }),
		row("Register save", func(c glaze.CostModel) uint64 { return c.RegisterSave }),
		row("GID check", func(c glaze.CostModel) uint64 { return c.GIDCheck }),
		row("Timer setup", func(c glaze.CostModel) uint64 { return c.TimerSetup }),
		row("Virtual buffering overhead", func(c glaze.CostModel) uint64 { return c.VirtBufOverhead }),
		row("Dispatch (+ upcall)", func(c glaze.CostModel) uint64 { return c.Dispatch }),
		row("subtotal:", func(c glaze.CostModel) uint64 { return c.RecvIntrPre() }),
		row("Null handler (w/dispose)", func(c glaze.CostModel) uint64 { return c.NullHandler }),
		row("Upcall cleanup", func(c glaze.CostModel) uint64 { return c.UpcallCleanup }),
		row("Timer cleanup", func(c glaze.CostModel) uint64 { return c.TimerCleanup }),
		row("Register restore", func(c glaze.CostModel) uint64 { return c.RegisterRestore }),
		row("interrupt total:", func(c glaze.CostModel) uint64 { return c.RecvIntrTotal() }),
		row("Poll", func(c glaze.CostModel) uint64 { return c.Poll }),
		row("Dispatch", func(c glaze.CostModel) uint64 { return c.PollDispatch }),
		row("Null handler (w/dispose)", func(c glaze.CostModel) uint64 { return c.PollNullHandler }),
		row("polling total:", func(c glaze.CostModel) uint64 { return c.RecvPollTotal() }),
	}}
}

// measureNullMessage times the receive path end to end on a two-node
// machine, subtracting the send cost and wire latency so the residual is
// the receive overhead the table reports.
func measureNullMessage(impl glaze.AtomicityImpl, opt Options) table4Point {
	var snaps []metrics.Snapshot
	var tls []telemetry.Timeline
	run := func(polling bool) uint64 {
		cfg := glaze.DefaultConfig()
		cfg.W, cfg.H = 2, 1
		cfg.Cost = glaze.Costs(impl)
		if mut := opt.machineMut(nil); mut != nil {
			mut(&cfg)
		}
		m := glaze.NewMachine(cfg)
		job := m.NewJob("pingpong")
		ep0 := udm.Attach(job.Process(0))
		ep1 := udm.Attach(job.Process(1))
		var handlerDone uint64
		done := udm.NewCounter()
		ep1.On(1, func(e *udm.Env, msg *udm.Msg) {})
		ep0.On(1, func(e *udm.Env, msg *udm.Msg) {})
		_ = ep0
		var sentAt uint64
		job.Process(1).StartMain(func(t *cpu.Task) {
			e := ep1.Env(t)
			if polling {
				e.BeginAtomic()
				e.PollWait()
				e.EndAtomic()
			}
			handlerDone = t.Now()
			done.Add(1)
		})
		job.Process(0).StartMain(func(t *cpu.Task) {
			e := ep0.Env(t)
			t.Spend(100) // let the receiver reach its wait state
			sentAt = t.Now()
			e.Inject(1, 1)
			done.WaitFor(t, 1)
		})
		m.NewGang(1<<40, 0, job).Start()
		m.RunUntilDone(0, job)
		tls = append(tls, m.FinishTelemetry())
		snaps = append(snaps, m.MetricsSnapshot())
		wire := cfg.Latency.Delay(1, 2) // one hop, two words
		total := handlerDone - sentAt
		overhead := total - wire - cfg.Cost.SendCost(0)
		return overhead
	}
	// Interrupt path: the receiver main simply finishes after the upcall
	// runs; measure via a handler-completion timestamp instead.
	intr, intrSnap, intrTL := measureInterrupt(impl, opt)
	poll := run(true)
	snaps = append(snaps, intrSnap)
	tls = append(tls, intrTL)
	return table4Point{
		intr: intr, poll: poll,
		metrics:  metrics.Merge(snaps...),
		timeline: telemetry.Concat(tls...),
	}
}

// measureInterrupt times interrupt delivery: handler-entry minus arrival.
func measureInterrupt(impl glaze.AtomicityImpl, opt Options) (uint64, metrics.Snapshot, telemetry.Timeline) {
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	cfg.Cost = glaze.Costs(impl)
	if mut := opt.machineMut(nil); mut != nil {
		mut(&cfg)
	}
	m := glaze.NewMachine(cfg)
	job := m.NewJob("pingpong")
	ep0 := udm.Attach(job.Process(0))
	ep1 := udm.Attach(job.Process(1))
	var handlerEnd uint64
	done := udm.NewCounter()
	ep1.On(1, func(e *udm.Env, msg *udm.Msg) { done.Add(1) })
	var sentAt uint64
	job.Process(1).StartMain(func(t *cpu.Task) {
		done.WaitFor(t, 1)
		handlerEnd = t.Now()
	})
	job.Process(0).StartMain(func(t *cpu.Task) {
		e := ep0.Env(t)
		t.Spend(100)
		sentAt = t.Now()
		e.Inject(1, 1)
	})
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(0, job)
	wire := cfg.Latency.Delay(1, 2)
	// handlerEnd includes the counter wake racing the upcall cleanup; the
	// cleanup (post) cycles complete before the main thread resumes, so the
	// residual is the full interrupt receive total.
	return handlerEnd - sentAt - wire - cfg.Cost.SendCost(0), m.MetricsSnapshot(), m.FinishTelemetry()
}

// Print renders the table with the paper's reference values.
func (r Table4Result) Print(w io.Writer) {
	rows := make([][]string, 0, len(r.Rows)+2)
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Item, u(row.Kernel), u(row.Hard), u(row.Soft)})
	}
	fmt.Fprintln(w, "Table 4: cycle counts to send and receive a null message")
	fmt.Fprintln(w, plot.Table([]string{"Item", "kernel", "hard-atomicity", "soft-atomicity"}, rows))
	fmt.Fprintf(w, "paper interrupt totals: 54 / 87 / 115;   paper polling totals: 9 / 9 / n.a.\n")
	fmt.Fprintf(w, "measured end-to-end receive overhead (interrupt): %d / %d / %d cycles\n",
		r.MeasuredIntr[0], r.MeasuredIntr[1], r.MeasuredIntr[2])
	fmt.Fprintf(w, "measured end-to-end receive overhead (polling):   %d / %d / %d cycles\n",
		r.MeasuredPoll[0], r.MeasuredPoll[1], r.MeasuredPoll[2])
}
