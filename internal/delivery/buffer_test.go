package delivery

import (
	"testing"
	"testing/quick"

	"fugu/internal/vm"
)

func TestBufferPushPop(t *testing.T) {
	b := NewVirtualBuffer(vm.NewFrames(16))
	b.Push(0, []uint64{1, 2, 3}, 0, 0)
	b.Push(0, []uint64{4, 5}, 0, 0)
	if b.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", b.Pending())
	}
	if n := b.HeadLen(); n != 3 {
		t.Errorf("head len = %d, want 3", n)
	}
	if w := b.HeadWord(2); w != 3 {
		t.Errorf("head word 2 = %d, want 3", w)
	}
	b.Pop()
	if n := b.HeadLen(); n != 2 {
		t.Errorf("second head len = %d, want 2", n)
	}
	if w := b.HeadWord(0); w != 4 {
		t.Errorf("second head word 0 = %d, want 4", w)
	}
	b.Pop()
	if !b.Empty() {
		t.Error("buffer not empty after draining")
	}
}

func TestBufferFirstPushAllocates(t *testing.T) {
	f := vm.NewFrames(16)
	b := NewVirtualBuffer(f)
	res := b.Push(0, []uint64{1}, 0, 0)
	if res.NewPages != 1 {
		t.Errorf("NewPages = %d, want 1 (vmalloc path)", res.NewPages)
	}
	res = b.Push(0, []uint64{2}, 0, 0)
	if res.NewPages != 0 {
		t.Errorf("second push NewPages = %d, want 0 (existing page)", res.NewPages)
	}
	if b.VMAllocs() != 1 {
		t.Errorf("vmallocs = %d, want 1", b.VMAllocs())
	}
}

func TestBufferInsertCostArithmetic(t *testing.T) {
	b := NewVirtualBuffer(vm.NewFrames(16))
	b.costs = Costs{InsertMin: 180, InsertVMAlloc: 3162, ExtraInsert: 10, PageOut: 2000}
	if got := b.InsertCost(PushResult{}); got != 190 {
		t.Errorf("min insert cost = %d, want 190", got)
	}
	if got := b.InsertCost(PushResult{NewPages: 1}); got != 3172 {
		t.Errorf("vmalloc insert cost = %d, want 3172", got)
	}
	if got := b.InsertCost(PushResult{NewPages: 2, PagedOut: 3}); got != 3162+10+3*2000 {
		t.Errorf("paged insert cost = %d, want %d", got, 3162+10+3*2000)
	}
}

func TestBufferPageReclamation(t *testing.T) {
	f := vm.NewFrames(64)
	b := NewVirtualBuffer(f)
	// Push enough small messages to span several pages, consuming as we go:
	// resident pages must stay low because passed pages are reclaimed.
	msg := make([]uint64, 63) // 64 words per record
	maxResident := 0
	for i := 0; i < 200; i++ {
		b.Push(0, msg, 0, 0)
		if r := b.PagesResident(); r > maxResident {
			maxResident = r
		}
		b.Pop()
	}
	if maxResident > 2 {
		t.Errorf("max resident pages = %d, want <= 2 with immediate draining", maxResident)
	}
	if b.PagesResident() != 0 {
		t.Errorf("resident after full drain = %d, want 0", b.PagesResident())
	}
	if f.InUse() != 0 {
		t.Errorf("frames in use after drain = %d, want 0", f.InUse())
	}
}

func TestBufferHighWaterTracksBacklog(t *testing.T) {
	b := NewVirtualBuffer(vm.NewFrames(64))
	msg := make([]uint64, 255) // 256-word records: 4 per page
	for i := 0; i < 16; i++ {
		b.Push(0, msg, 0, 0) // 16 records = 4 pages
	}
	if hw := b.PagesHighWater(); hw < 4 {
		t.Errorf("high water = %d, want >= 4", hw)
	}
	for i := 0; i < 16; i++ {
		b.Pop()
	}
	if b.PagesResident() != 0 {
		t.Errorf("resident = %d after drain", b.PagesResident())
	}
}

func TestBufferPageOutUnderExhaustion(t *testing.T) {
	f := vm.NewFrames(3)
	b := NewVirtualBuffer(f)
	msg := make([]uint64, 511) // 512-word records: 2 per page
	// 10 records need 5 pages; only 3 frames exist, so pushes must evict.
	for i := 0; i < 10; i++ {
		for j := range msg {
			msg[j] = uint64(i*1000 + j)
		}
		b.Push(0, msg, 0, 0)
	}
	if b.PageOuts() == 0 {
		t.Fatal("no page-outs despite frame exhaustion")
	}
	// Every record must read back intact, paging back in as needed.
	for i := 0; i < 10; i++ {
		n := b.HeadLen()
		if n != 511 {
			t.Fatalf("record %d len = %d", i, n)
		}
		for _, j := range []int{0, 255, 510} {
			w := b.HeadWord(j)
			if w != uint64(i*1000+j) {
				t.Fatalf("record %d word %d = %d, want %d", i, j, w, i*1000+j)
			}
		}
		b.Pop()
	}
	if b.PageIns() == 0 {
		t.Error("no page-ins recorded")
	}
	if !b.Empty() {
		t.Error("buffer not empty")
	}
}

// Property: any sequence of variable-length pushes followed by interleaved
// pops delivers exactly the pushed contents in FIFO order, under a tight
// frame pool.
func TestBufferFIFOProperty(t *testing.T) {
	prop := func(lens []uint16, seed uint64) bool {
		if len(lens) == 0 {
			return true
		}
		f := vm.NewFrames(4)
		b := NewVirtualBuffer(f)
		type rec struct{ first, last, n uint64 }
		var want []rec
		pushed := 0
		for i, l := range lens {
			n := uint64(l%600) + 1
			words := make([]uint64, n)
			words[0] = uint64(i) ^ seed
			words[n-1] = uint64(i) * 7
			b.Push(uint64(i), words, 0, 0)
			want = append(want, rec{words[0], words[n-1], n})
			pushed++
			// Interleave pops.
			if i%3 == 2 && b.Pending() > 1 {
				r := want[0]
				want = want[1:]
				if got := b.HeadLen(); uint64(got) != r.n {
					return false
				}
				if w := b.HeadWord(0); w != r.first {
					return false
				}
				if w := b.HeadWord(int(r.n - 1)); w != r.last {
					return false
				}
				b.Pop()
			}
		}
		for _, r := range want {
			if got := b.HeadLen(); uint64(got) != r.n {
				return false
			}
			if w := b.HeadWord(0); w != r.first {
				return false
			}
			if w := b.HeadWord(int(r.n - 1)); w != r.last {
				return false
			}
			b.Pop()
		}
		return b.Empty() && f.InUse() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
