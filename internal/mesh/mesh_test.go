package mesh

import (
	"testing"
	"testing/quick"

	"fugu/internal/sim"
)

// sinkEP accepts up to cap packets until drained.
type sinkEP struct {
	got []*Packet
	cap int
}

func (s *sinkEP) Arrive(p *Packet) bool {
	if s.cap > 0 && len(s.got) >= s.cap {
		return false
	}
	s.got = append(s.got, p)
	return true
}

func newNet(e *sim.Engine) (*Net, []*sinkEP) {
	n := New(e, 4, 2, DefaultLatency())
	eps := make([]*sinkEP, n.Nodes())
	for i := range eps {
		eps[i] = &sinkEP{}
		n.Register(i, Main, eps[i])
		n.Register(i, OS, &sinkEP{})
	}
	return n, eps
}

func TestHops(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, 4, 2, DefaultLatency())
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 4, 1}, {0, 7, 4}, {3, 4, 4}, {1, 6, 2},
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDeliveryLatency(t *testing.T) {
	e := sim.NewEngine(1)
	n, eps := newNet(e)
	n.Send(Main, 0, 3, []uint64{1, 2, 3, 4}) // 3 hops, 4 words
	e.Run()
	if len(eps[3].got) != 1 {
		t.Fatalf("got %d packets, want 1", len(eps[3].got))
	}
	pkt := eps[3].got[0]
	want := DefaultLatency().Delay(3, 4) // 10 + 2*3 + 1*4 = 20
	if pkt.ArrivedAt != want {
		t.Errorf("arrived at %d, want %d", pkt.ArrivedAt, want)
	}
}

func TestLocalDelivery(t *testing.T) {
	e := sim.NewEngine(1)
	n, eps := newNet(e)
	n.Send(Main, 2, 2, []uint64{9})
	e.Run()
	if len(eps[2].got) != 1 {
		t.Fatal("local packet not delivered")
	}
	if eps[2].got[0].ArrivedAt != DefaultLatency().Delay(0, 1) {
		t.Errorf("local latency = %d", eps[2].got[0].ArrivedAt)
	}
}

func TestInOrderPerPair(t *testing.T) {
	e := sim.NewEngine(1)
	n, eps := newNet(e)
	e.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			n.Send(Main, 0, 5, []uint64{uint64(i)})
			p.Sleep(1)
		}
	})
	e.Run()
	if len(eps[5].got) != 20 {
		t.Fatalf("got %d packets, want 20", len(eps[5].got))
	}
	for i, pkt := range eps[5].got {
		if pkt.Words[0] != uint64(i) {
			t.Fatalf("out of order at %d: %v", i, pkt.Words[0])
		}
	}
}

func TestBackpressureAndNotifySpace(t *testing.T) {
	e := sim.NewEngine(1)
	n, eps := newNet(e)
	eps[1].cap = 2
	for i := 0; i < 5; i++ {
		n.Send(Main, 0, 1, []uint64{uint64(i)})
	}
	e.Run()
	if len(eps[1].got) != 2 {
		t.Fatalf("accepted %d, want 2", len(eps[1].got))
	}
	if n.BlockedAt(1, Main) != 3 {
		t.Fatalf("blocked = %d, want 3", n.BlockedAt(1, Main))
	}
	if n.StatsFor(Main).Refused == 0 {
		t.Error("no refusals recorded")
	}
	// Drain one slot: exactly one blocked packet (the next in order) lands.
	eps[1].cap = 3
	n.NotifySpace(1, Main)
	if len(eps[1].got) != 3 || eps[1].got[2].Words[0] != 2 {
		t.Fatalf("after notify: got %d, last word %d", len(eps[1].got), eps[1].got[len(eps[1].got)-1].Words[0])
	}
	// Unbounded now: the rest flows.
	eps[1].cap = 0
	n.NotifySpace(1, Main)
	if len(eps[1].got) != 5 || n.BlockedAt(1, Main) != 0 {
		t.Fatalf("after drain: got %d, blocked %d", len(eps[1].got), n.BlockedAt(1, Main))
	}
}

func TestOrderPreservedAcrossRefusal(t *testing.T) {
	e := sim.NewEngine(1)
	n, eps := newNet(e)
	eps[1].cap = 1
	e.Spawn("s", func(p *sim.Proc) {
		n.Send(Main, 0, 1, []uint64{0})
		p.Sleep(100) // first packet delivered, fills the queue
		n.Send(Main, 0, 1, []uint64{1})
		p.Sleep(100) // second blocks in network
		eps[1].cap = 10
		n.Send(Main, 0, 1, []uint64{2}) // must NOT bypass packet 1
		p.Sleep(100)
		n.NotifySpace(1, Main)
	})
	e.Run()
	if len(eps[1].got) != 3 {
		t.Fatalf("got %d packets, want 3", len(eps[1].got))
	}
	for i, pkt := range eps[1].got {
		if pkt.Words[0] != uint64(i) {
			t.Fatalf("order violated: position %d has %d", i, pkt.Words[0])
		}
	}
}

func TestClassesIndependent(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, 4, 2, DefaultLatency())
	main := &sinkEP{cap: 1}
	osEp := &sinkEP{}
	for i := 0; i < n.Nodes(); i++ {
		n.Register(i, Main, main)
		n.Register(i, OS, osEp)
	}
	// Clog the main network at node 1.
	n.Send(Main, 0, 1, []uint64{1})
	n.Send(Main, 0, 1, []uint64{2})
	n.Send(OS, 0, 1, []uint64{3})
	e.Run()
	if len(osEp.got) != 1 {
		t.Error("OS network blocked by main-network congestion")
	}
	if n.BlockedAt(1, Main) != 1 {
		t.Errorf("main blocked = %d, want 1", n.BlockedAt(1, Main))
	}
}

func TestStats(t *testing.T) {
	e := sim.NewEngine(1)
	n, _ := newNet(e)
	n.Send(Main, 0, 1, []uint64{1, 2, 3})
	n.Send(Main, 2, 3, []uint64{1})
	n.Send(OS, 0, 1, []uint64{1, 2})
	e.Run()
	if s := n.StatsFor(Main); s.Packets != 2 || s.Words != 4 {
		t.Errorf("main stats = %+v", s)
	}
	if s := n.StatsFor(OS); s.Packets != 1 || s.Words != 2 {
		t.Errorf("os stats = %+v", s)
	}
}

func TestSendInvalidNodePanics(t *testing.T) {
	e := sim.NewEngine(1)
	n, _ := newNet(e)
	defer func() {
		if recover() == nil {
			t.Error("send to invalid node did not panic")
		}
	}()
	n.Send(Main, 0, 99, []uint64{1})
}

// Property: for random send schedules from many sources to one sink with a
// finite queue that is drained periodically, every packet is delivered
// exactly once and per-source order is preserved.
func TestDeliveryExactlyOnceProperty(t *testing.T) {
	prop := func(seed uint64, plan []uint8) bool {
		if len(plan) == 0 {
			return true
		}
		e := sim.NewEngine(seed)
		n := New(e, 4, 2, DefaultLatency())
		sink := &sinkEP{cap: 2}
		for i := 0; i < n.Nodes(); i++ {
			n.Register(i, Main, sink)
			n.Register(i, OS, &sinkEP{})
		}
		type mark struct{ at, id uint64 }
		lastSent := map[int]mark{}
		sent := 0
		for i, b := range plan {
			src := int(b) % 7 // nodes 0..6 send to 7
			delay := uint64(b%13) * uint64(i)
			seq := uint64(i)
			e.Schedule(delay, func() { n.Send(Main, src, 7, []uint64{uint64(src), seq}) })
			sent++
		}
		// Periodic drain.
		var drain func()
		drain = func() {
			sink.cap += 2
			n.NotifySpace(7, Main)
			if len(sink.got) < sent {
				e.Schedule(50, drain)
			}
		}
		e.Schedule(25, drain)
		e.Run()
		if len(sink.got) != sent {
			return false
		}
		seen := map[uint64]bool{}
		for _, pkt := range sink.got {
			if seen[pkt.ID] {
				return false // duplicate
			}
			seen[pkt.ID] = true
			src := int(pkt.Words[0])
			// Per-pair delivery must follow injection order: (SentAt, ID)
			// nondecreasing lexicographically for each source.
			if last, ok := lastSent[src]; ok {
				if pkt.SentAt < last.at || (pkt.SentAt == last.at && pkt.ID < last.id) {
					return false // per-source reorder
				}
			}
			lastSent[src] = mark{pkt.SentAt, pkt.ID}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestShortPacketCannotOvertakeLong: a 2-word packet sent right after a
// 60-word packet on the same route must arrive second, even though its raw
// latency is smaller (per-pair FIFO, the property higher-level protocols
// rely on for reassembly and flush ordering).
func TestShortPacketCannotOvertakeLong(t *testing.T) {
	e := sim.NewEngine(1)
	n, eps := newNet(e)
	long := make([]uint64, 60)
	long[0] = 111
	n.Send(Main, 0, 1, long)
	n.Send(Main, 0, 1, []uint64{222, 0})
	e.Run()
	if len(eps[1].got) != 2 {
		t.Fatalf("delivered %d", len(eps[1].got))
	}
	if eps[1].got[0].Words[0] != 111 || eps[1].got[1].Words[0] != 222 {
		t.Errorf("short packet overtook long: %d then %d",
			eps[1].got[0].Words[0], eps[1].got[1].Words[0])
	}
	if eps[1].got[1].ArrivedAt <= eps[1].got[0].ArrivedAt {
		t.Error("arrival times not strictly ordered")
	}
}
