package glaze

import (
	"testing"
)

func TestCostModelMatchesTable4(t *testing.T) {
	cases := []struct {
		impl                 AtomicityImpl
		pre, intrTotal, poll uint64
	}{
		{KernelMode, 32, 54, 9},
		{HardAtomicity, 54, 87, 9},
		{SoftAtomicity, 66, 115, 9},
	}
	for _, c := range cases {
		cm := Costs(c.impl)
		if got := cm.RecvIntrPre(); got != c.pre {
			t.Errorf("%v RecvIntrPre = %d, want %d", c.impl, got, c.pre)
		}
		if got := cm.RecvIntrTotal(); got != c.intrTotal {
			t.Errorf("%v RecvIntrTotal = %d, want %d", c.impl, got, c.intrTotal)
		}
		if got := cm.RecvPollTotal(); got != c.poll {
			t.Errorf("%v RecvPollTotal = %d, want %d", c.impl, got, c.poll)
		}
		if got := cm.SendCost(0); got != 7 {
			t.Errorf("%v SendCost(0) = %d, want 7", c.impl, got)
		}
		if got := cm.SendCost(4); got != 19 {
			t.Errorf("%v SendCost(4) = %d, want 19", c.impl, got)
		}
	}
}

func TestCostModelMatchesTable5(t *testing.T) {
	cm := Costs(SoftAtomicity)
	if cm.BufferInsertMin != 180 || cm.BufferInsertVMAlloc != 3162 {
		t.Errorf("insert costs = %d/%d, want 180/3162", cm.BufferInsertMin, cm.BufferInsertVMAlloc)
	}
	if got := cm.BufferedExtract(0); got != 52 {
		t.Errorf("BufferedExtract(0) = %d, want 52", got)
	}
	if got := cm.BufferedExtract(4); got != 70 {
		t.Errorf("BufferedExtract(4) = %d, want 70 (52 + 4*4.5)", got)
	}
	if got := cm.BufferedMinTotal(); got != 232 {
		t.Errorf("BufferedMinTotal = %d, want 232", got)
	}
}
