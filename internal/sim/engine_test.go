package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Schedule(5, func() { e.Cancel(ev) })
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if ev.Pending() {
		t.Error("cancelled event still pending")
	}
	// Double cancel and the zero Handle must be no-ops.
	e.Cancel(ev)
	e.Cancel(Handle{})
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine(1)
	var got []int
	evs := make([]Handle, 20)
	for i := range evs {
		i := i
		evs[i] = e.Schedule(uint64(i+1), func() { got = append(got, i) })
	}
	// Cancel every third event before running.
	for i := 0; i < len(evs); i += 3 {
		e.Cancel(evs[i])
	}
	e.Run()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 13 {
		t.Errorf("got %d events, want 13", len(got))
	}
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine(1)
	var at uint64
	e.Schedule(5, func() {
		e.ScheduleAt(42, func() { at = e.Now() })
	})
	e.Run()
	if at != 42 {
		t.Errorf("event fired at %d, want 42", at)
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(uint64(i), func() { count++ })
	}
	e.Schedule(5, func() { e.Stop() })
	e.Run()
	if count != 5 {
		t.Errorf("ran %d events before stop, want 5", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(uint64(i*10), func() { count++ })
	}
	e.RunUntil(50)
	if count != 5 {
		t.Errorf("count = %d at t=50, want 5", count)
	}
	if e.Now() != 50 {
		t.Errorf("Now() = %d, want 50", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Errorf("count = %d after full run, want 10", count)
	}
}

// TestRunUntilStepsPastPendingEvent covers the Limit push-back path: a
// RunUntil loop stepping up to (but not reaching) a future event must leave
// that event queued and pending the whole way — the engine peeks rather than
// popping and re-inserting it each step — and the event must fire exactly
// once, including at the boundary where its time equals the limit.
func TestRunUntilStepsPastPendingEvent(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	h := e.Schedule(1000, func() { fired++ })
	for tm := uint64(10); tm < 1000; tm += 10 {
		e.RunUntil(tm)
		if e.Now() != tm {
			t.Fatalf("Now() = %d after RunUntil(%d)", e.Now(), tm)
		}
		if !h.Pending() {
			t.Fatalf("event not pending at t=%d", tm)
		}
		if h.Time() != 1000 {
			t.Fatalf("event time drifted to %d", h.Time())
		}
		if e.Pending() != 1 {
			t.Fatalf("queue length %d at t=%d, want 1", e.Pending(), tm)
		}
		if fired != 0 {
			t.Fatalf("event fired early at t=%d", tm)
		}
	}
	// Boundary: an event at exactly the limit fires.
	e.RunUntil(1000)
	if fired != 1 {
		t.Fatalf("fired %d times at the boundary, want 1", fired)
	}
	if h.Pending() {
		t.Error("fired event still pending")
	}
	// A drained queue leaves the clock at the last event time: the limit
	// only pins Now when a future event was actually deferred.
	e.RunUntil(1200)
	if e.Now() != 1000 || fired != 1 {
		t.Errorf("Now() = %d fired = %d after draining", e.Now(), fired)
	}
}

// TestHandleStaleAfterRecycle checks the generation counter: once an event
// fires and its slot is recycled by a later Schedule, the old handle must
// read as not pending and its Cancel must not touch the new tenant.
func TestHandleStaleAfterRecycle(t *testing.T) {
	e := NewEngine(1)
	old := e.Schedule(1, func() {})
	e.Run()
	if old.Pending() {
		t.Fatal("fired event still pending")
	}
	fired := false
	fresh := e.Schedule(5, func() { fired = true }) // reuses the pooled slot
	e.Cancel(old)                                  // stale: must be a no-op
	if !fresh.Pending() {
		t.Fatal("stale Cancel killed the slot's new event")
	}
	e.Run()
	if !fired {
		t.Error("recycled event did not fire")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 100 {
			e.Schedule(1, chain)
		}
	}
	e.Schedule(0, chain)
	end := e.Run()
	if depth != 100 {
		t.Errorf("chain depth = %d, want 100", depth)
	}
	if end != 99 {
		t.Errorf("end time = %d, want 99", end)
	}
}

func TestZeroDelaySameInstant(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Schedule(10, func() {
		order = append(order, "a")
		e.Schedule(0, func() { order = append(order, "c") })
	})
	e.Schedule(10, func() { order = append(order, "b") })
	e.Run()
	want := "abc"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Errorf("order %q, want %q", got, want)
	}
}

// TestDeterminism runs a randomized workload twice with equal seeds and once
// with a different seed, checking trace equality/divergence.
func TestDeterminism(t *testing.T) {
	trace := func(seed uint64) []uint64 {
		e := NewEngine(seed)
		var tr []uint64
		var step func()
		n := 0
		step = func() {
			tr = append(tr, e.Now())
			n++
			if n < 500 {
				e.Schedule(e.Rand().Uint64n(100)+1, step)
			}
		}
		e.Schedule(0, step)
		e.Run()
		return tr
	}
	a, b, c := trace(7), trace(7), trace(8)
	if len(a) != len(b) {
		t.Fatal("same seed, different trace length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	same := len(a) == len(c)
	if same {
		same = false
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

// Property: for any batch of (delay, id) pairs, events fire in nondecreasing
// time order and same-time events fire in submission order.
func TestScheduleOrderProperty(t *testing.T) {
	prop := func(delays []uint8) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(3)
		type fired struct {
			at  uint64
			idx int
		}
		var got []fired
		for i, d := range delays {
			i, d := i, uint64(d)
			e.Schedule(d, func() { got = append(got, fired{e.Now(), i}) })
		}
		e.Run()
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].idx < got[i-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
