package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles starts a CPU profile and/or arms an exit-time heap profile,
// as requested by the -cpuprofile/-memprofile flags shared by `run` and
// `bench`. It returns the stop function the caller must defer: it stops the
// CPU profile and writes the heap profile (after a GC, so the profile shows
// live retention rather than garbage).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fugusim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "fugusim: memprofile: %v\n", err)
			}
		}
	}, nil
}
