// Package glaze is the operating-system half of two-case delivery: the
// kernel interrupt handlers, the mode transitions between direct and
// buffered delivery, the virtual buffering system with its overflow control,
// the gang scheduler with skewed local clocks, and the per-node process
// machinery. It corresponds to the paper's Glaze exokernel plus the
// scheduler server.
package glaze

// AtomicityImpl selects which of Table 4's three columns the machine
// models: unprotected kernel-mode messaging, the predicted hardware
// revocable-interrupt-disable ("hard atomicity"), or the measured
// software-emulated mechanism of the first-silicon CMMU ("soft atomicity").
type AtomicityImpl int

// Atomicity implementations (Table 4 columns).
const (
	KernelMode AtomicityImpl = iota
	HardAtomicity
	SoftAtomicity
)

func (a AtomicityImpl) String() string {
	switch a {
	case KernelMode:
		return "kernel-mode"
	case HardAtomicity:
		return "hard-atomicity"
	case SoftAtomicity:
		return "soft-atomicity"
	default:
		return "unknown"
	}
}

// CostModel carries every cycle constant the simulator charges. The
// message-path rows reproduce Tables 4 and 5 of the paper; the kernel rows
// (context switch, fault service, paging) are not published there and carry
// representative values documented in DESIGN.md.
type CostModel struct {
	Impl AtomicityImpl

	// --- Table 4: message send ---
	DescribeNull   uint64 // descriptor construction, null message (6)
	DescribePerArg uint64 // additional cycles per argument word (3)
	Launch         uint64 // launch instruction (1)

	// --- Table 4: message receive via interrupt ---
	InterruptOverhead uint64 // 6
	RegisterSave      uint64 // 16
	GIDCheck          uint64 // 0 / 10 / 10
	TimerSetup        uint64 // 0 / 1 / 13
	VirtBufOverhead   uint64 // 0 / 8 / 8
	Dispatch          uint64 // 10 / 13 / 13 (+upcall)
	NullHandler       uint64 // 5, includes dispose
	UpcallCleanup     uint64 // 0 / 10 / 10
	TimerCleanup      uint64 // 0 / 1 / 17
	RegisterRestore   uint64 // 17
	RecvPerArg        uint64 // 2 per argument word

	// --- Table 4: message receive via polling ---
	Poll            uint64 // 3
	PollDispatch    uint64 // 5
	PollNullHandler uint64 // 1, includes dispose

	// --- Table 5: buffered path ---
	BufferInsertMin      uint64 // minimum buffer-insert handler (180)
	BufferInsertVMAlloc  uint64 // maximum, with demand page allocation (3,162)
	BufferedNullHandler  uint64 // execute null handler from buffer (52)
	BufferedPerArgTimes2 uint64 // 9: the paper's ~4.5 cycles/word, doubled to stay integral

	// --- Kernel costs outside the paper's tables ---
	ContextSwitch   uint64 // gang-switch work per node
	RevokeCost      uint64 // atomicity-timeout service (mode flip)
	FaultService    uint64 // zero-fill page fault outside the buffer path
	PageOut         uint64 // evict one buffer page over the OS network
	PageIn          uint64 // fetch one buffer page back
	ExtraBufferCost uint64 // artificial addition to the insert handler (Figure 10 knob)

	// --- Rival delivery policies (delivery package; unused by two-case) ---
	RemapCost        uint64 // zero-copy page flip: map + TLB invalidate
	RemapReleaseCost uint64 // zero-copy consume: unmap + TLB shootdown
}

// Costs returns the cost model for one of Table 4's columns.
func Costs(impl AtomicityImpl) CostModel {
	cm := CostModel{
		Impl:           impl,
		DescribeNull:   6,
		DescribePerArg: 3,
		Launch:         1,

		InterruptOverhead: 6,
		RegisterSave:      16,
		Dispatch:          10,
		NullHandler:       5,
		RegisterRestore:   17,
		RecvPerArg:        2,

		Poll:            3,
		PollDispatch:    5,
		PollNullHandler: 1,

		BufferInsertMin:      180,
		BufferInsertVMAlloc:  3162,
		BufferedNullHandler:  52,
		BufferedPerArgTimes2: 9,

		ContextSwitch: 400,
		RevokeCost:    100,
		FaultService:  500,
		PageOut:       2000,
		PageIn:        2000,

		RemapCost:        300,
		RemapReleaseCost: 60,
	}
	switch impl {
	case KernelMode:
		// Unprotected: no GID check, no timer, no upcall, no virtual
		// buffering overheads.
	case HardAtomicity:
		cm.GIDCheck = 10
		cm.TimerSetup = 1
		cm.VirtBufOverhead = 8
		cm.Dispatch = 13
		cm.UpcallCleanup = 10
		cm.TimerCleanup = 1
	case SoftAtomicity:
		cm.GIDCheck = 10
		cm.TimerSetup = 13
		cm.VirtBufOverhead = 8
		cm.Dispatch = 13
		cm.UpcallCleanup = 10
		cm.TimerCleanup = 17
	}
	return cm
}

// SendCost returns the cycles to describe and launch a message with n
// argument words (Table 4: 7 cycles null, +3 per argument).
func (cm CostModel) SendCost(nargs int) uint64 {
	return cm.DescribeNull + cm.DescribePerArg*uint64(nargs) + cm.Launch
}

// RecvIntrPre returns the interrupt-receive overhead before the handler
// body runs (Table 4 "subtotal" row: 32 / 54 / 66).
func (cm CostModel) RecvIntrPre() uint64 {
	return cm.InterruptOverhead + cm.RegisterSave + cm.GIDCheck +
		cm.TimerSetup + cm.VirtBufOverhead + cm.Dispatch
}

// RecvIntrPost returns the overhead after the handler body (cleanup rows).
func (cm CostModel) RecvIntrPost() uint64 {
	return cm.UpcallCleanup + cm.TimerCleanup + cm.RegisterRestore
}

// RecvIntrTotal returns the full interrupt-receive cost of a null message
// (Table 4 "interrupt total": 54 / 87 / 115).
func (cm CostModel) RecvIntrTotal() uint64 {
	return cm.RecvIntrPre() + cm.NullHandler + cm.RecvIntrPost()
}

// RecvPollTotal returns the polling-receive cost of a null message
// (Table 4 "polling total": 9).
func (cm CostModel) RecvPollTotal() uint64 {
	return cm.Poll + cm.PollDispatch + cm.PollNullHandler
}

// BufferedExtract returns the cost to run a handler for an n-argument
// message from the software buffer (Table 5: 52 + ~4.5/word).
func (cm CostModel) BufferedExtract(nargs int) uint64 {
	return cm.BufferedNullHandler + cm.BufferedPerArgTimes2*uint64(nargs)/2
}

// BufferedMinTotal returns the minimum per-message buffered-path overhead
// (Table 5 discussion: 180 + 52 = 232 cycles).
func (cm CostModel) BufferedMinTotal() uint64 {
	return cm.BufferInsertMin + cm.BufferedNullHandler
}
