package sim

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// GroupMode selects how a partition group's shards are synchronized.
type GroupMode int

const (
	// Merged shards share one logical clock, sequence counter and RNG; a
	// single driver pops the global (time, seq) minimum across the shard
	// heaps, so execution order — and every derived artifact — is exactly
	// the serial engine's. Merged mode is what machine models with
	// zero-latency cross-node state (shared scheduler decisions, global
	// counters, shared observers) must use: it shards the event storage
	// (heap, free list) without changing any observable ordering.
	Merged GroupMode = iota
	// Parallel shards run real goroutines inside conservative lookahead
	// windows: each round executes events in [min, min+lookahead) on all
	// shards concurrently, then a barrier drains cross-shard messages from
	// per-pair staging queues in a fixed order (source partition, then
	// timestamp, then staging sequence), so results are deterministic
	// regardless of worker interleaving. Parallel mode requires a
	// partition-clean model: no shared mutable state between shards except
	// messages sent through CrossScheduleArgAtSite with delay >= lookahead.
	Parallel
)

func (m GroupMode) String() string {
	if m == Merged {
		return "merged"
	}
	return "parallel"
}

// staged is one cross-shard event parked in a staging queue until the next
// barrier. Entries are appended by the source shard's worker only (single
// writer per queue) and drained by the coordinator between windows.
type staged struct {
	at   uint64
	fn   func(any)
	arg  any
	site Site
}

// Group is a set of partition engines driven as one simulation. Construct
// with NewMergedGroup or NewParallelGroup, place model components on shards
// (Shard(i)), then Run any shard — the group takes over the whole run.
type Group struct {
	mode      GroupMode
	shards    []*Engine
	lookahead uint64

	// Merged-mode shared ordering state: the one logical clock, the global
	// schedule sequence and the single RNG stream every shard observes, so
	// a merged group is bit-identical to one serial engine.
	now     uint64
	seq     uint64
	rng     *Rand
	stopped bool
	limit   uint64

	// Parallel-mode state. staging is indexed [src*parts+dst]; parStop is
	// the cross-goroutine stop flag (Engine.Stop from inside a window must
	// reach the coordinator).
	staging      [][]staged
	parStop      atomic.Bool
	barriers     uint64
	stagedTotal  uint64
	horizon      uint64
	barrierWaits []uint64 // windows a shard sat out (no events below the horizon)
}

// NewMergedGroup builds parts engines sharing one clock, sequence counter
// and RNG seeded like NewEngine(seed). Running any shard executes the
// global (time, seq) minimum across all shard heaps, which is provably the
// serial engine's order (sequence numbers are issued from the shared
// counter in execution order, exactly as a single engine issues them).
func NewMergedGroup(seed uint64, parts int) *Group {
	if parts < 1 {
		panic("sim: NewMergedGroup with no partitions")
	}
	g := &Group{mode: Merged, rng: NewRand(seed)}
	g.shards = make([]*Engine, parts)
	for i := range g.shards {
		g.shards[i] = &Engine{rng: g.rng, g: g, part: i}
	}
	return g
}

// NewParallelGroup builds parts engines with independent clocks and
// per-shard RNG streams, synchronized by conservative lookahead windows.
// lookahead must be a lower bound on the delay of every cross-shard
// schedule (for a mesh, the minimum per-hop latency) and at least 2 cycles;
// a staged event below the current horizon panics, so a model that violates
// its own bound is caught, not silently reordered.
func NewParallelGroup(seed uint64, parts int, lookahead uint64) *Group {
	if parts < 1 {
		panic("sim: NewParallelGroup with no partitions")
	}
	if lookahead < 2 {
		panic("sim: parallel group needs a lookahead of at least 2 cycles")
	}
	g := &Group{mode: Parallel, lookahead: lookahead}
	g.shards = make([]*Engine, parts)
	for i := range g.shards {
		// Decorrelate the per-shard streams: consecutive seeds would start
		// splitmix64 one increment apart.
		g.shards[i] = &Engine{rng: NewRand(seed + 0x9e3779b97f4a7c15*uint64(i)), g: g, part: i}
	}
	g.staging = make([][]staged, parts*parts)
	g.barrierWaits = make([]uint64, parts)
	return g
}

// Parts returns the number of partition engines.
func (g *Group) Parts() int { return len(g.shards) }

// Mode returns the group's synchronization mode.
func (g *Group) Mode() GroupMode { return g.mode }

// Lookahead returns the conservative window width (0 in merged mode).
func (g *Group) Lookahead() uint64 { return g.lookahead }

// Shard returns partition engine i.
func (g *Group) Shard(i int) *Engine { return g.shards[i] }

// ShardStat is one partition's instantaneous state, for liveness reports.
type ShardStat struct {
	Part         int
	Now          uint64
	HeapDepth    int
	LiveProcs    int
	BarrierWaits uint64 // parallel mode: windows this shard had nothing to run
}

// GroupStats snapshots the group for diagnostics (watchdog reports): per-
// shard heap depth and clock, the last horizon, and barrier counts.
type GroupStats struct {
	Mode     GroupMode
	Horizon  uint64 // last parallel window's exclusive upper bound (merged: the shared clock)
	Barriers uint64 // parallel windows completed
	Staged   uint64 // cross-partition events drained through staging queues
	Shards   []ShardStat
}

// Stats returns the group's diagnostic snapshot. Call it only between runs
// or from inside the simulation (event context): in parallel mode the shard
// clocks are owned by worker goroutines during a window.
func (g *Group) Stats() GroupStats {
	s := GroupStats{Mode: g.mode, Horizon: g.horizon, Barriers: g.barriers, Staged: g.stagedTotal}
	if g.mode == Merged {
		s.Horizon = g.now
	}
	s.Shards = make([]ShardStat, len(g.shards))
	for i, sh := range g.shards {
		s.Shards[i] = ShardStat{Part: i, Now: sh.now, HeapDepth: sh.heap.len(), LiveProcs: sh.live}
		if g.mode == Merged {
			s.Shards[i].Now = g.now
		} else {
			s.Shards[i].BarrierWaits = g.barrierWaits[i]
		}
	}
	return s
}

// minShard returns the shard whose next event is the global (time, seq)
// minimum, or nil when every heap is empty. In merged mode sequence numbers
// are globally unique, so the order is total and deterministic.
func (g *Group) minShard() *Engine {
	var best *Engine
	var bev *Event
	for _, sh := range g.shards {
		ev := sh.heap.peek()
		if ev == nil {
			continue
		}
		if bev == nil || eventBefore(ev, bev) {
			best, bev = sh, ev
		}
	}
	return best
}

// run drives the whole group; Engine.Run delegates here for grouped
// engines. The time limit honored is the invoking engine's.
func (g *Group) run(from *Engine) uint64 {
	if g.mode == Merged {
		return g.runMerged(from)
	}
	return g.runParallel(from)
}

// runMerged is Engine.Run generalized to N heaps: pop the global minimum,
// dispatch, repeat. Everything else — limit handling, the backwards-queue
// panic, metrics/profiler hooks, the release-before-dispatch discipline —
// mirrors the serial loop line for line, because it must: merged mode's
// contract is byte-identical artifacts.
func (g *Group) runMerged(from *Engine) uint64 {
	for _, sh := range g.shards {
		if sh.current != nil {
			panic("sim: Run called from proc context")
		}
	}
	g.stopped = false
	g.limit = from.Limit
	for !g.stopped {
		sh := g.minShard()
		if sh == nil {
			break
		}
		ev := sh.heap.peek()
		if g.limit != 0 && ev.at > g.limit {
			g.now = g.limit
			break
		}
		sh.heap.pop()
		if ev.at < g.now {
			panic("sim: event queue went backwards")
		}
		g.now = ev.at
		sh.events.Inc()
		if sh.prof != nil {
			sh.prof.tick(ev.site, g.now)
		}
		if p := ev.proc; p != nil {
			sh.release(ev)
			p.eng.dispatch(p)
		} else if fn := ev.fn; fn != nil {
			sh.release(ev)
			fn()
		} else {
			fn, arg := ev.fnArg, ev.arg
			sh.release(ev)
			fn(arg)
		}
	}
	return g.now
}

// runParallel executes conservative lookahead windows until every heap is
// empty, Stop is called, or the invoking engine's limit is reached. Each
// window: find the global minimum next-event time m, run every shard
// concurrently up to the horizon h = m + lookahead (exclusive), then drain
// the staging queues at the barrier. Determinism: every executed event has
// time >= m, so every staged event fires at >= m + lookahead = h — strictly
// after everything executed this window — and the drain assigns destination
// sequence numbers in the fixed (source partition, time, staging order)
// order, independent of goroutine interleaving.
func (g *Group) runParallel(from *Engine) uint64 {
	limit := from.Limit
	g.parStop.Store(false)
	for !g.parStop.Load() {
		minAt := uint64(math.MaxUint64)
		idle := true
		for _, sh := range g.shards {
			if ev := sh.heap.peek(); ev != nil {
				idle = false
				if ev.at < minAt {
					minAt = ev.at
				}
			}
		}
		if idle {
			break
		}
		if limit != 0 && minAt > limit {
			for _, sh := range g.shards {
				if sh.now < limit {
					sh.now = limit
				}
			}
			break
		}
		h := minAt + g.lookahead
		if limit != 0 && h > limit+1 {
			h = limit + 1
		}
		// Shards with nothing below the horizon only wait at the barrier;
		// count them (per-partition stall visibility) and skip their
		// goroutines.
		var wg sync.WaitGroup
		for i, sh := range g.shards {
			if ev := sh.heap.peek(); ev == nil || ev.at >= h {
				g.barrierWaits[i]++
				continue
			}
			wg.Add(1)
			go func(sh *Engine) {
				defer wg.Done()
				// The partition label composes with inherited labels
				// (experiment/point from the harness worker), so a profile
				// slices by partition within a sweep point.
				pprof.Do(context.Background(), pprof.Labels("partition", strconv.Itoa(sh.part)), func(context.Context) {
					sh.Limit = h - 1
					sh.runLocal()
					sh.Limit = 0
				})
			}(sh)
		}
		wg.Wait()
		g.barriers++
		g.horizon = h
		g.drainStaged(h)
	}
	var end uint64
	for _, sh := range g.shards {
		if sh.now > end {
			end = sh.now
		}
	}
	return end
}

// stage parks a cross-shard schedule until the next barrier. Called only
// from src's worker goroutine during a window (single writer per queue).
func (g *Group) stage(src, dst int, s staged) {
	q := &g.staging[src*len(g.shards)+dst]
	*q = append(*q, s)
}

// drainStaged moves every staged event onto its destination heap. Order is
// fixed — destination, then source partition index, then timestamp, then
// staging sequence — so the destination sequence numbers (and therefore
// same-cycle tie-breaks) never depend on scheduling noise. An entry below
// the horizon means the model broke its lookahead promise; that is a bug in
// the model, and silently reordering it would corrupt causality, so: panic.
func (g *Group) drainStaged(h uint64) {
	parts := len(g.shards)
	for dst := 0; dst < parts; dst++ {
		de := g.shards[dst]
		for src := 0; src < parts; src++ {
			cell := &g.staging[src*parts+dst]
			if len(*cell) == 0 {
				continue
			}
			sort.SliceStable(*cell, func(i, j int) bool { return (*cell)[i].at < (*cell)[j].at })
			for i := range *cell {
				s := &(*cell)[i]
				if s.at < h {
					panic(fmt.Sprintf("sim: staged cross-partition event at t=%d violates the lookahead horizon %d (shard %d -> %d)", s.at, h, src, dst))
				}
				ev := de.alloc(0)
				ev.at = s.at
				ev.fnArg = s.fn
				ev.arg = s.arg
				ev.site = s.site
				de.heap.push(ev)
				g.stagedTotal++
				*s = staged{}
			}
			*cell = (*cell)[:0]
		}
	}
}

// CrossScheduleArgAtSite schedules fn(arg) at absolute time at on the dst
// engine, from code executing on e. Outside parallel windows (standalone
// engines, merged groups, or dst == e) it is a plain ScheduleArgAtSite on
// dst; inside a parallel window a cross-shard schedule is staged and
// drained deterministically at the next barrier. at must be at least the
// group's lookahead beyond e's current time — the conservative contract.
func (e *Engine) CrossScheduleArgAtSite(dst *Engine, site Site, at uint64, fn func(any), arg any) {
	if dst == e || e.g == nil || e.g.mode == Merged {
		dst.ScheduleArgAtSite(site, at, fn, arg)
		return
	}
	if e.g != dst.g {
		panic("sim: cross-schedule between unrelated groups")
	}
	e.g.stage(e.part, dst.part, staged{at: at, fn: fn, arg: arg, site: site})
}

// Group returns the partition group this engine belongs to, nil for a
// standalone engine.
func (e *Engine) Group() *Group { return e.g }

// Part returns the engine's partition index within its group (0 for a
// standalone engine).
func (e *Engine) Part() int { return e.part }
