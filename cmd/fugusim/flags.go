package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fugu/internal/delivery"
	"fugu/internal/glaze"
	"fugu/internal/harness"
	"fugu/internal/niq"
	"fugu/internal/telemetry"
)

// commonFlags is the flag block every fugusim subcommand shares — the
// -quick/-full scale pair, the base -seed, the -metrics snapshot directory
// and the -policy delivery-policy selector. Each subcommand registers it on
// its own FlagSet so `fugusim <sub> -h` shows one consistent spelling
// everywhere and a new shared flag lands in every subcommand at once.
type commonFlags struct {
	quick      *bool
	full       *bool
	seed       *uint64
	metricsDir *string
	policyName *string
	niqSpec    *string

	// Timeline telemetry: -timeline enables the flight recorder on every
	// point machine and names the export directory; the companion flags
	// tune the sampling interval and ring capacity.
	timelineDir *string
	tlEvery     *uint64
	tlCap       *int

	// parts shards every machine's event engine across this many partition
	// engines (merged mode: byte-identical results at any value).
	parts *int

	// policy is the resolved delivery policy, nil when -policy was not given
	// (the machine default, delivery.TwoCase, then applies).
	policy delivery.Policy
	// queue is the resolved input-queue spec, zero when -niq was not given
	// (the machine default, the static FIFO, then applies).
	queue niq.Spec
}

// registerCommon installs the shared flag block on fs.
func registerCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	c.quick = fs.Bool("quick", false, "run the scaled-down workloads (the default; -full overrides)")
	c.full = fs.Bool("full", false, "run the paper-scale workloads (slow)")
	c.seed = fs.Uint64("seed", 1, "base random seed (trial t runs at seed+t)")
	c.metricsDir = fs.String("metrics", "", "write merged registry snapshots (JSON+CSV) into this directory")
	c.timelineDir = fs.String("timeline", "",
		"enable interval sampling and write flight-recorder timelines (CSV+JSONL) into this directory")
	c.tlEvery = fs.Uint64("timeline-every", 0,
		fmt.Sprintf("sampling interval in simulated cycles (default %d; implies -timeline sampling)", telemetry.DefaultEvery))
	c.tlCap = fs.Int("timeline-cap", 0,
		fmt.Sprintf("flight-recorder ring capacity in intervals (default %d)", telemetry.DefaultCap))
	c.policyName = fs.String("policy", "",
		fmt.Sprintf("delivery policy, one of %v (default: twocase)", delivery.Names()))
	c.niqSpec = fs.String("niq", "",
		fmt.Sprintf("NI input-queue model[:policy[:slots]], models %v, policies %v (default: fifo)",
			niq.Models(), niq.Policies()))
	c.parts = fs.Int("parts", 1,
		"partition the event engine across this many shards (results are byte-identical at any value)")
	return c
}

// resolve validates the shared flags after parsing: -quick and -full are
// mutually exclusive and -policy must name a registered policy. Violations
// exit with usage status, like any other bad flag.
func (c *commonFlags) resolve() {
	if *c.quick && *c.full {
		fmt.Fprintln(os.Stderr, "fugusim: -quick and -full are mutually exclusive")
		os.Exit(2)
	}
	if *c.policyName != "" {
		pol, err := delivery.ByName(*c.policyName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
			os.Exit(2)
		}
		c.policy = pol
	}
	if *c.niqSpec != "" {
		spec, err := niq.ParseSpec(*c.niqSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
			os.Exit(2)
		}
		c.queue = spec
	}
	if *c.parts < 1 {
		fmt.Fprintln(os.Stderr, "fugusim: -parts must be at least 1")
		os.Exit(2)
	}
}

// harnessOptions turns the shared flags into the base harness option set:
// scale, scale-appropriate default trial count, seed and policy. Subcommand
// flags (-trials, -j, ...) append after these and so override the defaults.
func (c *commonFlags) harnessOptions() []harness.Option {
	opts := []harness.Option{harness.WithSeed(*c.seed)}
	if *c.full {
		opts = append(opts, harness.WithFull(), harness.WithTrials(3))
	} else {
		opts = append(opts, harness.WithQuick(), harness.WithTrials(1))
	}
	if c.policy != nil {
		opts = append(opts, harness.WithDeliveryPolicy(c.policy))
	}
	if c.queue.Model != "" {
		opts = append(opts, harness.WithInputQueue(c.queue))
	}
	if tc := c.telemetryConfig(); tc.Enabled() {
		opts = append(opts, harness.WithTelemetry(tc))
	}
	if *c.parts > 1 {
		opts = append(opts, harness.WithPartitions(*c.parts))
	}
	return opts
}

// telemetryConfig resolves the timeline flags into a sampling config —
// disabled (the zero value) unless -timeline or -timeline-every was given.
func (c *commonFlags) telemetryConfig() telemetry.Config {
	if *c.timelineDir == "" && *c.tlEvery == 0 {
		return telemetry.Config{}
	}
	every := *c.tlEvery
	if every == 0 {
		every = telemetry.DefaultEvery
	}
	return telemetry.Config{Every: every, Cap: *c.tlCap}
}

// timelineHook wires the Runner's OnTimeline callback to accumulate into
// tls when -timeline is set, else leaves the runner untouched.
func (c *commonFlags) timelineHook(r *harness.Runner, tls *[]telemetry.LabeledTimeline) {
	if *c.timelineDir == "" {
		return
	}
	r.OnTimeline = func(point int, label string, tl telemetry.Timeline) {
		*tls = append(*tls, telemetry.LabeledTimeline{Point: point, Label: label, Timeline: tl})
	}
}

// writeTimelines exports the accumulated timelines as <name>.timeline.csv
// and .jsonl under the -timeline directory. No timelines, no files.
func (c *commonFlags) writeTimelines(name string, tls []telemetry.LabeledTimeline) {
	if *c.timelineDir == "" || len(tls) == 0 {
		return
	}
	var csvB, jsonB strings.Builder
	err := telemetry.WriteCSV(&csvB, tls)
	if err == nil {
		err = telemetry.WriteJSONL(&jsonB, tls)
	}
	if err == nil {
		err = harness.WriteCSV(*c.timelineDir, name+".timeline.csv", csvB.String())
	}
	if err == nil {
		err = harness.WriteCSV(*c.timelineDir, name+".timeline.jsonl", jsonB.String())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: timeline: %v\n", err)
		os.Exit(1)
	}
}

// vetArtifacts refuses pre-existing -metrics/-timeline artifact files for
// the named experiments before the run starts, unless force is set — the
// same refuse-overwrite treatment trace and doctor give -o, so a long sweep
// can never end by silently destroying the previous run's exports.
func (c *commonFlags) vetArtifacts(force bool, names ...string) error {
	for _, name := range names {
		if *c.metricsDir != "" {
			for _, suffix := range []string{".metrics.json", ".metrics.csv"} {
				if err := prepareOutputPath(filepath.Join(*c.metricsDir, name+suffix), force); err != nil {
					return err
				}
			}
		}
		if *c.timelineDir != "" {
			for _, suffix := range []string{".timeline.csv", ".timeline.jsonl"} {
				if err := prepareOutputPath(filepath.Join(*c.timelineDir, name+suffix), force); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// configMut returns a machine-config mutator applying the shared flags to
// workloads driven outside the harness Options path (the bench runners), or
// nil when the machine defaults already match. Each invocation installs a
// fresh flight recorder, so a mutator reused across machines still keeps
// per-machine timelines independent.
func (c *commonFlags) configMut() func(*glaze.Config) {
	tc := c.telemetryConfig()
	if c.policy == nil && c.queue.Model == "" && !tc.Enabled() && *c.parts <= 1 {
		return nil
	}
	pol, queue, parts := c.policy, c.queue, *c.parts
	return func(cfg *glaze.Config) {
		if pol != nil {
			cfg.Delivery = pol
		}
		if queue.Model != "" {
			cfg.NIConfig.Queue = queue
		}
		if tc.Enabled() {
			cfg.Telemetry = telemetry.NewRecorder(tc)
		}
		if parts > 1 {
			cfg.Partitions = parts
		}
	}
}
