package glaze

import (
	"strings"
	"testing"

	"fugu/internal/cpu"
)

// TestWatchdogFiresOnStall: a main blocked on a wait queue nobody wakes
// makes no delivery progress; the watchdog must stop the run with a report
// instead of letting RunUntilDone burn its whole cycle budget.
func TestWatchdogFiresOnStall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 2, 1
	cfg.Watchdog = WatchdogConfig{Interval: 10_000, Grace: 2}
	m := NewMachine(cfg)
	job := m.NewJob("stall")
	q := cpu.NewWaitQ("never")
	job.Process(0).StartMain(func(tk *cpu.Task) {
		q.Wait(tk) // woken by nobody
	})
	job.Process(1).StartMain(func(tk *cpu.Task) {
		tk.Spend(100)
	})
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(100_000_000, job)

	if job.Done() {
		t.Fatal("stalled job reported done")
	}
	rep := m.WatchdogReport()
	if rep == nil {
		t.Fatal("watchdog did not fire on a stalled run")
	}
	if !strings.Contains(rep.Reason, "no delivery progress") {
		t.Errorf("reason = %q", rep.Reason)
	}
	if s := rep.String(); !strings.Contains(s, "blocked") {
		t.Errorf("report does not show the blocked task:\n%s", s)
	}
	if now := m.Eng.Now(); now >= 100_000_000 {
		t.Errorf("engine ran to the full budget (t=%d); watchdog should have stopped it", now)
	}
}

// TestWatchdogQuietOnHealthyRun: a run that completes must not fire, and
// the watchdog must stop rescheduling itself so the event queue drains.
// Grace covers the 50k-cycle message-free compute phase (see the
// WatchdogConfig false-positive caveat: Interval*Grace must exceed it).
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 2, 1
	cfg.Watchdog = WatchdogConfig{Interval: 10_000, Grace: 10}
	m := NewMachine(cfg)
	job := m.NewJob("healthy")
	for n := 0; n < 2; n++ {
		job.Process(n).StartMain(func(tk *cpu.Task) {
			tk.Spend(50_000)
		})
	}
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(100_000_000, job)
	if !job.Done() {
		t.Fatal("healthy job did not finish")
	}
	if rep := m.WatchdogReport(); rep != nil {
		t.Fatalf("watchdog fired on a healthy run:\n%s", rep.String())
	}
}

// TestDiagnosePartitionSection: on a partitioned machine, Diagnose must
// break the engine state out per partition (heap depth, local time,
// barrier waits) so a single wedged partition is visible; a serial machine
// must not grow the section.
func TestDiagnosePartitionSection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 2, 2
	cfg.Partitions = 2
	m := NewMachine(cfg)
	rep := m.Diagnose("test")
	var body string
	for _, s := range rep.Sections {
		if s.Title == "partitions" {
			body = s.Body
		}
	}
	if body == "" {
		t.Fatalf("no partitions section in Diagnose report: %+v", rep.Sections)
	}
	for _, want := range []string{"mode=merged parts=2", "part 0:", "part 1:", "heap-depth=", "barrier-waits="} {
		if !strings.Contains(body, want) {
			t.Errorf("partitions section missing %q:\n%s", want, body)
		}
	}

	serial := NewMachine(NewConfig(WithMesh(2, 2)))
	for _, s := range serial.Diagnose("test").Sections {
		if s.Title == "partitions" {
			t.Error("serial machine grew a partitions section")
		}
	}
}

// TestWatchdogImplicitRecorder: enabling only the watchdog must install a
// span recorder (the fingerprint needs one).
func TestWatchdogImplicitRecorder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 2, 1
	cfg.Watchdog = WatchdogConfig{Interval: 10_000, Grace: 2}
	m := NewMachine(cfg)
	if m.Spans == nil {
		t.Fatal("watchdog enabled but no span recorder installed")
	}
}
