package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"testing/quick"

	"fugu/internal/delivery"
	"fugu/internal/faultinject"
)

// TestCrucibleSmoke runs the whole quick sweep once and demands what the CI
// gate demands: every delivery oracle passes and every one of the five
// second-case causes was forced somewhere in the sweep.
func TestCrucibleSmoke(t *testing.T) {
	res, err := Crucible(WithQuick(), WithTrials(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Problems() {
		t.Errorf("oracle violation: %s", p)
	}
	for cause, hit := range res.CauseCoverage() {
		if !hit {
			t.Errorf("second-case cause %q never forced in the sweep", cause)
		}
	}
	if len(res.Rows) != len(cruciblePlans()) {
		t.Errorf("got %d rows, want one per plan (%d)", len(res.Rows), len(cruciblePlans()))
	}
}

// TestCruciblePolicySweep runs the quick sweep under every registered
// delivery policy: the oracles must hold and every cause the policy can
// express must be forced. This is the in-repo mirror of the CI matrix that
// sweeps `fugusim crucible -policy` over the registry.
func TestCruciblePolicySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	for _, name := range delivery.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := delivery.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Crucible(WithQuick(), WithTrials(1), WithSeed(1), WithDeliveryPolicy(pol))
			if err != nil {
				t.Fatal(err)
			}
			if res.Policy != name {
				t.Errorf("result policy = %q, want %q", res.Policy, name)
			}
			for _, p := range res.Problems() {
				t.Errorf("oracle violation: %s", p)
			}
			cov := res.CauseCoverage()
			for _, cause := range res.RequiredCauses() {
				if !cov[cause] {
					t.Errorf("second-case cause %q never forced under %s", cause, name)
				}
			}
		})
	}
}

// TestCrucibleDeterminism pins that a sweep point is a pure function of
// (plan, trial, options): two runs of the chaos plan must agree on every
// observable, including the fault fire counts.
func TestCrucibleDeterminism(t *testing.T) {
	opt := NewOptions(WithQuick(), WithTrials(1), WithSeed(7))
	pl := cruciblePlans()[len(cruciblePlans())-1] // chaos
	a := runCrucible(pl, 0, opt)
	b := runCrucible(pl, 0, opt)
	if a.row.Cycles != b.row.Cycles || a.row.Fast != b.row.Fast ||
		a.row.Buffered != b.row.Buffered || a.row.Injected != b.row.Injected {
		t.Errorf("chaos plan not deterministic:\n  run1 %+v\n  run2 %+v", a.row, b.row)
	}
}

// TestCrucibleBalanceProperty is the per-node conservation property: for ANY
// fault plan — random per-cause probabilities, random seed — every message
// that arrives at a node is accounted for (disposed fast, inserted into the
// software buffer, or consumed by the kernel; never duplicated or dropped),
// and the workload still completes. The crucible oracles check exactly this,
// so the property is "no plan produces an oracle violation".
func TestCrucibleBalanceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	check := func(seed uint64, pMis, pRev, pFault, pExp, pStall uint8) bool {
		plan := cruciblePlan{
			name: fmt.Sprintf("prop-%#x", seed),
			arm: func(p *faultinject.Plan) {
				// Scale each byte into [0, ~0.7]: high enough to stress every
				// transition, low enough that the run still finishes quickly.
				w := func(b uint8, cycles uint64) faultinject.FaultSpec {
					return faultinject.FaultSpec{
						Prob: float64(b) / 365.0,
						From: crucibleFaultsStart, Until: crucibleFaultsLift,
						Cycles: cycles, Node: faultinject.AllNodes,
					}
				}
				p.Arm(faultinject.GIDMismatch, w(pMis, 0))
				p.Arm(faultinject.AtomicityTimeout, w(pRev, 0))
				p.Arm(faultinject.HandlerPageFault, w(pFault, 0))
				p.Arm(faultinject.QuantumExpiry, w(pExp, 1_500))
				p.Arm(faultinject.LinkStall, w(pStall, 250))
			},
		}
		pt := runCrucible(plan, 0, NewOptions(WithQuick(), WithTrials(1), WithSeed(seed)))
		if len(pt.row.Problems) > 0 {
			t.Logf("seed=%#x probs=(%d,%d,%d,%d,%d): %v",
				seed, pMis, pRev, pFault, pExp, pStall, pt.row.Problems)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCrucibleFaultFreeGolden pins the central determinism contract of the
// fault injector: arming an all-zero plan builds the injector and threads
// every hook, yet reproduces the golden CSVs byte-for-byte, because a
// disarmed spec never consumes a PCG draw and the injector never touches
// the machine RNG.
func TestCrucibleFaultFreeGolden(t *testing.T) {
	var zero faultinject.Plan
	for _, name := range []string{"table4", "fig9"} {
		want := goldenFast[name]
		exp, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		res, err := (&Runner{}).Run(context.Background(), exp,
			WithQuick(), WithTrials(1), WithSeed(1), WithParallelism(1),
			WithFaults(&zero))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		files := res.(CSVer).CSVFiles()
		for file, wantHash := range want {
			sum := sha256.Sum256([]byte(files[file]))
			if got := hex.EncodeToString(sum[:]); got != wantHash {
				t.Errorf("%s with zero fault plan: %s hash = %s, want golden %s "+
					"(a disarmed injector must be bit-identical to no injector)",
					name, file, got, wantHash)
			}
		}
	}
}
