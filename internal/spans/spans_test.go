package spans

import (
	"strings"
	"testing"

	"fugu/internal/trace"
)

func TestLifecycleFastPath(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin(10, 0, "user", 0, 1, 2)
	r.Arrive(15, 0)
	r.Queued(15, 0, 1)
	r.Dispatch(40, 0, 0x7)
	r.End(50, 0, 1, TermFast)

	c := r.Counts()
	if c.Begun != 1 || c.Fast != 1 || c.Ended() != 1 {
		t.Fatalf("counts = %+v, want one begun ending fast", c)
	}
	if got := r.InFlight(); len(got) != 0 {
		t.Fatalf("in-flight after end: %v", got)
	}
	if v := r.Violations(); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	if probs := r.Check(1, 0); len(probs) != 0 {
		t.Fatalf("Check: %v", probs)
	}
}

func TestLifecycleBufferedPath(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin(0, 3, "user", 2, 0, 4)
	r.NetBlock(5, 3)
	r.Queued(9, 3, 0)
	r.Insert(20, 3, 0, "gid-mismatch")
	r.End(90, 3, 0, TermBuffered)

	c := r.Counts()
	if c.Inserts != 1 || c.Buffered != 1 {
		t.Fatalf("counts = %+v, want one insert and one buffered drain", c)
	}
	if probs := r.Check(0, 1); len(probs) != 0 {
		t.Fatalf("Check: %v", probs)
	}
}

func TestViolations(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin(0, 1, "user", 0, 1, 2)
	r.Begin(1, 1, "user", 0, 1, 2) // duplicate begin
	r.Arrive(2, 99)                // unknown span
	r.End(3, 1, 1, TermBuffered)   // buffered end never inserted
	r.End(4, 1, 1, TermFast)       // already ended

	v := strings.Join(r.Violations(), "\n")
	for _, want := range []string{"duplicate begin", "unknown span", "never inserted", "already-ended"} {
		if !strings.Contains(v, want) {
			t.Errorf("violations missing %q:\n%s", want, v)
		}
	}
}

func TestCheckFlagsStuckAndMismatchedCounts(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin(0, 1, "user", 0, 1, 2) // never ends
	r.Begin(0, 2, "user", 0, 1, 2)
	r.Queued(1, 2, 1)
	r.Insert(2, 2, 1, "divert") // inserted, never drained
	probs := strings.Join(r.Check(5, 0), "\n")
	for _, want := range []string{
		"never reached a terminal state",
		"fast spans (0) + mid-read flips (0) != glaze.deliver.fast (5)",
		"buffer inserts (1) != glaze.deliver.buffered (0)",
		"stuck in a software buffer",
	} {
		if !strings.Contains(probs, want) {
			t.Errorf("Check missing %q:\n%s", want, probs)
		}
	}
}

func TestEpochsSeparateMachines(t *testing.T) {
	r := NewRecorder(nil)
	r.AttachMachine()
	r.Begin(0, 0, "user", 0, 1, 2)
	r.End(9, 0, 1, TermFast)
	r.AttachMachine() // second machine: packet IDs restart at zero
	r.Begin(0, 0, "user", 1, 0, 2)
	r.End(7, 0, 0, TermFast)
	if v := r.Violations(); len(v) != 0 {
		t.Fatalf("epoch reuse of id 0 flagged: %v", v)
	}
	if c := r.Counts(); c.Begun != 2 || c.Fast != 2 {
		t.Fatalf("counts = %+v, want 2 begun / 2 fast", c)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.AttachMachine()
	r.Begin(0, 0, "user", 0, 1, 2)
	r.Arrive(1, 0)
	r.NetBlock(1, 0)
	r.Queued(1, 0, 1)
	r.Insert(1, 0, 1, "divert")
	r.Dispatch(1, 0, 7)
	r.End(2, 0, 1, TermFast)
	r.SetReport(&Report{})
	if r.Counts() != (Counts{}) || r.InFlight() != nil || r.Violations() != nil ||
		r.Check(0, 0) != nil || r.Report() != nil || r.Epoch() != 0 {
		t.Fatal("nil recorder must observe nothing")
	}
}

func TestRecorderMirrorsToTraceLog(t *testing.T) {
	log := trace.New(16)
	log.Enable(trace.Span)
	r := NewRecorder(log)
	r.Begin(0, 0, "user", 0, 1, 2)
	r.End(5, 0, 1, TermFast)
	if log.Total() != 2 {
		t.Fatalf("trace log recorded %d events, want 2", log.Total())
	}
}

func TestFindCycle(t *testing.T) {
	cyclic := []WaitEdge{
		{From: "acq:n0:r1", To: "txn:r1"},
		{From: "txn:r1", To: "sec:r1@2"},
		{From: "sec:r1@2", To: "acq:n2:r0"},
		{From: "acq:n2:r0", To: "txn:r0"},
		{From: "txn:r0", To: "sec:r0@0"},
		{From: "sec:r0@0", To: "acq:n0:r1"},
	}
	cycle := FindCycle(cyclic)
	if len(cycle) == 0 {
		t.Fatal("missed the cycle")
	}
	if cycle[0] != cycle[len(cycle)-1] {
		t.Fatalf("cycle not closed: %v", cycle)
	}

	dangling := []WaitEdge{
		{From: "acq:n0:r1", To: "txn:r1"},
		{From: "txn:r2", To: "sec:r2@3"},
	}
	if got := FindCycle(dangling); got != nil {
		t.Fatalf("found a cycle in an acyclic graph: %v", got)
	}
	if FindCycle(nil) != nil {
		t.Fatal("empty graph must have no cycle")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{
		At:     100,
		Reason: "no delivery progress",
		Sections: []Section{
			{Title: "engine", Body: "t=100\n"},
		},
		Edges: []WaitEdge{{From: "acq:n0:r1", To: "txn:r1", Note: "waiting"}},
	}
	s := rep.String()
	for _, want := range []string{"t=100", "no delivery progress", "acq:n0:r1 -> txn:r1", "dangling wait"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	rep.Cycle = []string{"a", "b", "a"}
	if !strings.Contains(rep.String(), "CYCLE: a -> b -> a") {
		t.Errorf("report missing cycle line:\n%s", rep.String())
	}
}
