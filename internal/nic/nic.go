package nic

import (
	"fmt"

	"fugu/internal/cpu"
	"fugu/internal/faultinject"
	"fugu/internal/mesh"
	"fugu/internal/metrics"
	"fugu/internal/niq"
	"fugu/internal/sim"
	"fugu/internal/spans"
)

// Trap enumerates the synchronous traps of Table 2. Operations return the
// trap they raise (or TrapNone); the calling software layer vectors into the
// kernel's trap handlers.
type Trap int

// Traps, per Table 2 of the paper.
const (
	TrapNone Trap = iota
	TrapDisposeExtend
	TrapDisposeFailure
	TrapBadDispose
	TrapAtomicityExtend
	TrapProtectionViolation
)

func (t Trap) String() string {
	switch t {
	case TrapNone:
		return "none"
	case TrapDisposeExtend:
		return "dispose-extend"
	case TrapDisposeFailure:
		return "dispose-failure"
	case TrapBadDispose:
		return "bad-dispose"
	case TrapAtomicityExtend:
		return "atomicity-extend"
	case TrapProtectionViolation:
		return "protection-violation"
	default:
		return fmt.Sprintf("trap(%d)", int(t))
	}
}

// UAC bits, per Table 3. The low two bits are user-writable via
// beginatom/endatom; the high two only the kernel may change.
const (
	UACInterruptDisable uint8 = 1 << 0 // user: defer message-available interrupts
	UACTimerForce       uint8 = 1 << 1 // user: run atomicity timer unconditionally
	UACDisposePending   uint8 = 1 << 2 // kernel: set in message-available stub, reset by dispose
	UACAtomicityExtend  uint8 = 1 << 3 // kernel: trap at end of atomic section

	uacUserBits = UACInterruptDisable | UACTimerForce
)

// Interrupts carries the NI's interrupt lines. The kernel wires these to CPU
// IRQ vectors; unconnected lines are permitted in unit tests.
type Interrupts struct {
	// MessageAvailable is the user-level interrupt: a message for the
	// current GID is at the head of the queue and user interrupts are
	// enabled.
	MessageAvailable func()
	// MismatchAvailable is the kernel interrupt: the head message carries a
	// mismatched GID, a kernel message, or divert-mode is set.
	MismatchAvailable func()
	// AtomicityTimeout is the kernel interrupt: the atomicity timer expired.
	AtomicityTimeout func()
}

// Config sets the hardware parameters of an NI.
type Config struct {
	InputQueueDepth int    // messages buffered in the receive queue
	OutputWords     int    // send descriptor buffer capacity (16 in FUGU)
	TimerPreset     uint64 // atomicity-timeout preset value
	DrainPerWord    uint64 // cycles per word to drain the output buffer
	// Queue selects the input-queue organization (see internal/niq). The
	// zero value is the original static FIFO at InputQueueDepth slots,
	// bit-identical to the pre-seam hardware.
	Queue niq.Spec
	// QueueAudit walks the queue's structural invariants (reserve
	// guarantees, borrow accounting, list integrity) after every push and
	// pop, panicking on the first violation. Test-only: it consumes no
	// simulated time but is O(slots) real work per message.
	QueueAudit bool
}

// ConfigOption mutates a Config under construction.
type ConfigOption func(*Config)

// WithInputQueueDepth sets the receive-queue capacity in messages.
func WithInputQueueDepth(n int) ConfigOption { return func(c *Config) { c.InputQueueDepth = n } }

// WithQueue selects the input-queue organization (model, allocation policy
// and optionally an explicit slot count; see niq.Spec).
func WithQueue(spec niq.Spec) ConfigOption { return func(c *Config) { c.Queue = spec } }

// WithQueueAudit checks the input queue's structural invariants after every
// mutation (see Config.QueueAudit). Property tests use it to catch a
// reserve violation at the moment it happens rather than after the run.
func WithQueueAudit() ConfigOption { return func(c *Config) { c.QueueAudit = true } }

// WithOutputWords sets the send descriptor buffer capacity in words.
func WithOutputWords(n int) ConfigOption { return func(c *Config) { c.OutputWords = n } }

// WithTimerPreset sets the atomicity-timeout preset value.
func WithTimerPreset(v uint64) ConfigOption { return func(c *Config) { c.TimerPreset = v } }

// WithDrainPerWord sets the output drain rate in cycles per word.
func WithDrainPerWord(v uint64) ConfigOption { return func(c *Config) { c.DrainPerWord = v } }

// DefaultConfig mirrors the FUGU hardware: a small single input queue and a
// 16-word send descriptor. The timer preset is a free parameter of the
// design ("may be changed without affecting correctness"); 2000 cycles is
// comfortably above any reasonable handler.
func DefaultConfig() Config {
	return Config{InputQueueDepth: 16, OutputWords: 16, TimerPreset: 2000, DrainPerWord: 1}
}

// NewConfig builds a Config from the defaults plus options.
func NewConfig(opts ...ConfigOption) Config {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Offload is the receive-side offload engine of a hardware-demultiplexing
// delivery policy (kernel-bypass rings): the NI consults it to admit
// arriving user packets and to sort admitted ones into per-process stores
// without raising interrupts. The OS layer implements it; the NI only holds
// the hook so the hardware model never imports kernel code. Kernel packets
// are never offloaded — they always take the mismatch interrupt.
type Offload interface {
	// AdmitUser is consulted before a user packet enters the input queue.
	// Refusal NACKs the packet back into the network for sender retry.
	AdmitUser(pkt *mesh.Packet) bool
	// DemuxHead takes the head user packet into its owner's store. A false
	// return leaves the packet for the mismatch interrupt path (stray GID).
	DemuxHead(pkt *mesh.Packet) bool
}

// NI is one node's network interface.
type NI struct {
	eng  *sim.Engine
	net  *mesh.Net
	node int
	cfg  Config
	intr Interrupts

	// Receive side. q is the input-queue organization (static FIFO unless
	// Config.Queue says otherwise); signaled is the packet the last raised
	// interrupt (message-available or mismatch-available) was for, so a
	// head that has not changed is never signaled twice. It is cleared
	// whenever its referent leaves the queue or the routing state (GID,
	// divert) changes, so it can never alias a recycled pool packet.
	q        niq.InputQueue
	signaled *mesh.Packet

	// Send side.
	out         []uint64
	outBusyTill uint64
	spaceWait   *sim.Cond // procs blocked for output drain (blocking stores)
	drainFn     func()    // broadcasts spaceWait; bound once so Launch never allocates

	// Protection and control state (kernel-managed except UAC user bits).
	gid    GID
	divert bool
	uac    uint8

	timer atomicityTimer

	// off is the receive offload engine of a hardware-demultiplexing
	// delivery policy, nil (pure two-case hardware) unless SetOffload is
	// called. demuxing guards the demux loop against reentrance: popping a
	// demuxed head re-offers network backpressure, which can deliver the
	// next packet and re-enter evaluate synchronously.
	off      Offload
	demuxing bool

	// Statistics.
	arrived   uint64
	refused   uint64
	launched  uint64
	disposed  uint64
	kdisposed uint64
	demuxed   uint64 // user packets sorted by the offload engine
	nacked    uint64 // user packets refused by offload admission

	// Metrics instruments, nil (no-op) unless UseMetrics is called.
	mArrived   *metrics.Counter
	mRefused   *metrics.Counter
	mLaunched  *metrics.Counter
	mDisposed  *metrics.Counter
	mKDisposed *metrics.Counter
	mQueueLen  *metrics.Gauge
	mDemuxed   *metrics.Counter // registered only when an offload is set
	mNacked    *metrics.Counter
	reg        *metrics.Registry

	// rec observes message lifecycles, nil (no-op) unless UseSpans is called.
	rec *spans.Recorder

	// inj supplies arrival-time faults (forced mismatches and timeouts),
	// output-window clamps and DMA stalls; nil (no-op) unless UseFaults is
	// called.
	inj *faultinject.Injector
}

// UseSpans installs a lifecycle recorder: input-queue acceptance and
// fast-path disposal are recorded against the packet ID. Kernel disposals
// are recorded by the glaze layer, which knows their cause.
func (ni *NI) UseSpans(rec *spans.Recorder) { ni.rec = rec }

// UseFaults installs a fault injector: arriving user packets may be forced
// to mismatch or to fire the atomicity timeout, the space-available register
// may be clamped, and output drains may be stretched, per the plan.
func (ni *NI) UseFaults(inj *faultinject.Injector) { ni.inj = inj }

// UseMetrics binds the NI's instruments into a registry: lifetime counters
// mirroring Stats ("nic.arrived", ".refused", ".launched", ".disposed",
// ".kdisposed") and a "nic.queue_len" gauge whose Max is the deepest the
// input queue ever got.
func (ni *NI) UseMetrics(r *metrics.Registry) {
	ni.reg = r
	ni.mArrived = r.Counter("nic.arrived")
	ni.mRefused = r.Counter("nic.refused")
	ni.mLaunched = r.Counter("nic.launched")
	ni.mDisposed = r.Counter("nic.disposed")
	ni.mKDisposed = r.Counter("nic.kdisposed")
	ni.mQueueLen = r.Gauge("nic.queue_len")
	// The queue registers its own instruments; the default FIFO registers
	// none, keeping the default policy's metric key set exact.
	ni.q.UseMetrics(r)
	ni.bindOffloadMetrics()
}

// SetOffload installs (or clears) the receive offload engine. The demux
// counters ("nic.demuxed", "nic.nacked") are registered only when an
// offload exists, so the default policy's metric snapshots keep their
// exact key set.
func (ni *NI) SetOffload(off Offload) {
	ni.off = off
	ni.bindOffloadMetrics()
	if off != nil {
		ni.evaluate()
	}
}

func (ni *NI) bindOffloadMetrics() {
	if ni.off == nil || ni.reg == nil {
		return
	}
	ni.mDemuxed = ni.reg.Counter("nic.demuxed")
	ni.mNacked = ni.reg.Counter("nic.nacked")
}

// New creates an NI for node and registers it as the node's endpoint on the
// main logical network.
func New(eng *sim.Engine, net *mesh.Net, node int, cfg Config) *NI {
	ni := &NI{eng: eng, net: net, node: node, cfg: cfg}
	ni.q = niq.New(cfg.Queue, cfg.InputQueueDepth, net.Nodes())
	// The presentation predicates read the NI's live routing state, so the
	// queue's head tracks GID and divert changes without re-binding. A
	// multi-queue model uses them to keep the fast path alive when the
	// globally oldest packet is mismatched; the FIFO ignores them.
	ni.q.Bind(
		func(pkt *mesh.Packet) bool {
			if ni.divert || pkt.FaultMismatch {
				return false
			}
			h := pkt.Words[0]
			return !HeaderIsKernel(h) && HeaderGID(h) == ni.gid
		},
		func(pkt *mesh.Packet) bool { return HeaderIsKernel(pkt.Words[0]) },
	)
	ni.spaceWait = sim.NewCond(eng)
	ni.drainFn = func() { ni.spaceWait.Broadcast() }
	ni.timer.init(eng, cfg.TimerPreset, ni)
	net.Register(node, mesh.Main, ni)
	return ni
}

// SetInterrupts wires the NI's interrupt lines.
func (ni *NI) SetInterrupts(i Interrupts) { ni.intr = i }

// Node returns the node number this NI serves.
func (ni *NI) Node() int { return ni.node }

// OutputWords returns the send descriptor buffer capacity in words.
func (ni *NI) OutputWords() int { return ni.cfg.OutputWords }

// AttachCPU registers the NI as a run listener so the atomicity timer can
// count user cycles only, per Table 3.
func (ni *NI) AttachCPU(c *cpu.CPU) { c.AddRunListener(&ni.timer) }

// ---------------------------------------------------------------------------
// Receive side

// Arrive implements mesh.Endpoint: the network offers the next in-order
// packet; a queue that cannot admit it refuses (backpressure into the
// network). Admission is the queue model's policy check — the static FIFO
// refuses only when full, the shared models also enforce per-source caps
// and reserve guarantees.
func (ni *NI) Arrive(pkt *mesh.Packet) bool {
	if !ni.q.Admit(pkt.Src, HeaderIsKernel(pkt.Words[0])) {
		ni.refused++
		ni.mRefused.Inc()
		return false
	}
	if ni.off != nil && !HeaderIsKernel(pkt.Words[0]) && !ni.off.AdmitUser(pkt) {
		// Offload admission refused (destination ring full or unknown
		// geometry): NACK the packet back into the network for retry.
		ni.nacked++
		ni.mNacked.Inc()
		return false
	}
	ni.arrived++
	ni.mArrived.Inc()
	ni.rec.Queued(ni.eng.Now(), pkt.ID, ni.node)
	ni.q.Push(pkt)
	ni.audit()
	ni.mQueueLen.Set(int64(ni.q.Len()))
	if ni.inj != nil && !HeaderIsKernel(pkt.Words[0]) {
		if !pkt.FaultMismatch && ni.inj.ForceMismatch(ni.node) {
			pkt.FaultMismatch = true
		}
		// A forced timeout models the timer expiring exactly at arrival;
		// the kernel's timeout ISR tolerates spurious raises.
		if ni.inj.ForceTimeout(ni.node) && ni.intr.AtomicityTimeout != nil {
			ni.intr.AtomicityTimeout()
		}
	}
	ni.evaluate()
	return true
}

// MessageAvailable returns the user-visible message-available flag: a
// message for the current GID is at the head and the buffered path is not
// engaged.
func (ni *NI) MessageAvailable() bool {
	return ni.headMatches()
}

// headMatches reports whether the presented head message belongs to the
// current user.
func (ni *NI) headMatches() bool {
	if ni.divert {
		return false
	}
	pkt := ni.q.Head()
	if pkt == nil || pkt.FaultMismatch {
		return false
	}
	h := pkt.Words[0]
	return !HeaderIsKernel(h) && HeaderGID(h) == ni.gid
}

// HeadLen returns the length in words of the head message, or 0 if none.
func (ni *NI) HeadLen() int {
	pkt := ni.q.Head()
	if pkt == nil {
		return 0
	}
	return len(pkt.Words)
}

// ReadWord returns word i of the head message (the input message window).
// Reading with no message present returns 0, as reading garbage registers
// would; protected software never does this.
func (ni *NI) ReadWord(i int) uint64 {
	pkt := ni.q.Head()
	if pkt == nil || i >= len(pkt.Words) {
		return 0
	}
	return pkt.Words[i]
}

// HeadPacket exposes the head packet to kernel software (the
// mismatch-available handler demultiplexes from it). Returns nil if empty.
func (ni *NI) HeadPacket() *mesh.Packet { return ni.q.Head() }

// QueueLen reports how many messages sit in the input queue.
func (ni *NI) QueueLen() int { return ni.q.Len() }

// Queue exposes the input-queue organization for tests and diagnostics.
func (ni *NI) Queue() niq.InputQueue { return ni.q }

// Dispose implements the user dispose operation of Table 1: under divert it
// traps dispose-extend so the OS can emulate disposal from the software
// buffer; with no matching message it traps bad-dispose; otherwise it
// deletes the head message, clears dispose-pending and presets the
// atomicity timer.
func (ni *NI) Dispose() Trap {
	if ni.divert {
		return TrapDisposeExtend
	}
	if !ni.MessageAvailable() {
		return TrapBadDispose
	}
	ni.disposed++
	ni.mDisposed.Inc()
	pkt := ni.q.Head()
	ni.rec.End(ni.eng.Now(), pkt.ID, ni.node, spans.TermFast)
	ni.popHead()
	ni.uac &^= UACDisposePending
	ni.timer.preset()
	ni.evaluate()
	// Fast-case disposal is terminal: the handler consumed the words from
	// the input window before disposing, so the packet is dead and can be
	// recycled for a future launch from this node.
	ni.net.Release(ni.node, pkt)
	return TrapNone
}

// KDispose removes the head message with kernel privilege (the buffered-path
// insertion handler uses it after copying the message to memory).
func (ni *NI) KDispose() {
	if ni.q.Len() == 0 {
		panic("nic: KDispose with empty queue")
	}
	ni.kdisposed++
	ni.mKDisposed.Inc()
	ni.popHead()
	ni.evaluate()
}

// popHead removes the presented head (selection is pure, so this is the
// packet Head just returned) and re-offers backpressured traffic.
func (ni *NI) popHead() {
	ni.q.PopHead()
	ni.audit()
	ni.mQueueLen.Set(int64(ni.q.Len()))
	ni.signaled = nil
	ni.net.NotifySpace(ni.node, mesh.Main)
}

// audit enforces Config.QueueAudit: every queue mutation must leave the
// structure satisfying all its invariants, reserve guarantees included.
func (ni *NI) audit() {
	if !ni.cfg.QueueAudit {
		return
	}
	if err := ni.q.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("nic: node %d input-queue invariant violated: %v", ni.node, err))
	}
}

// evaluate recomputes the interrupt lines after any state change: arrival,
// disposal, UAC write, or a kernel change to GID/divert. At most one
// interrupt is raised per presented head per routing decision: the signaled
// pointer tracks which packet the last interrupt was for, so an unchanged
// head is never re-signaled, while a multi-queue model changing its
// presented head (a matching packet arriving behind a mismatched front)
// raises the interrupt the new head deserves.
func (ni *NI) evaluate() {
	defer ni.timer.update()
	if ni.off != nil {
		ni.demuxLoop()
	}
	head := ni.q.Head()
	if head == nil {
		return
	}
	if ni.headMatches() {
		if ni.uac&UACInterruptDisable == 0 && head != ni.signaled {
			ni.signaled = head
			if ni.intr.MessageAvailable != nil {
				ni.intr.MessageAvailable()
			}
		}
		return
	}
	// Mismatched GID, kernel message, or divert mode: kernel interrupt.
	if head != ni.signaled {
		ni.signaled = head
		if ni.intr.MismatchAvailable != nil {
			ni.intr.MismatchAvailable()
		}
	}
}

// demuxLoop sorts user packets at the head of the queue into their owners'
// stores through the offload engine, without interrupting any processor.
// Kernel packets and packets the engine refuses (stray GIDs) are left at
// the head for the mismatch interrupt. Popping a head re-offers network
// backpressure, which can synchronously deliver the next packet and
// re-enter evaluate; the demuxing guard collapses that recursion into this
// loop's next iteration.
func (ni *NI) demuxLoop() {
	if ni.demuxing {
		return
	}
	ni.demuxing = true
	for ni.q.Len() > 0 {
		pkt := ni.q.Head()
		if HeaderIsKernel(pkt.Words[0]) {
			break
		}
		if !ni.off.DemuxHead(pkt) {
			break
		}
		ni.demuxed++
		ni.mDemuxed.Inc()
		ni.popHead()
	}
	ni.demuxing = false
}

// NotifyInputSpace re-offers backpressured packets to this NI. A
// hardware-demultiplexing policy calls it when ring space frees: admission
// refusals parked senders' packets in the network, and nothing else would
// wake them.
func (ni *NI) NotifyInputSpace() {
	ni.net.NotifySpace(ni.node, mesh.Main)
}

// ---------------------------------------------------------------------------
// Send side

// SpaceAvailable returns how many descriptor words may be written without
// blocking, the space-available register used to implement injectc.
func (ni *NI) SpaceAvailable() int {
	if ni.eng.Now() < ni.outBusyTill {
		return 0
	}
	avail := ni.cfg.OutputWords - len(ni.out)
	if c, ok := ni.inj.OutputClamp(ni.node); ok && avail > c {
		avail = c
	}
	return avail
}

// OutputReadyAt returns the time the output buffer finishes draining; the
// udm layer parks blocking injectors until then.
func (ni *NI) OutputReadyAt() uint64 { return ni.outBusyTill }

// Describe appends words to the output descriptor buffer. The caller must
// have checked SpaceAvailable (blocking-store semantics live in the udm
// layer, which parks until OutputReadyAt).
func (ni *NI) Describe(words ...uint64) {
	if len(ni.out)+len(words) > ni.cfg.OutputWords {
		panic(fmt.Sprintf("nic: descriptor overflow (%d+%d > %d)", len(ni.out), len(words), ni.cfg.OutputWords))
	}
	ni.out = append(ni.out, words...)
}

// DescriptorLength returns the descriptor-length register: words currently
// described and not yet launched (the state a context switch would swap).
func (ni *NI) DescriptorLength() int { return len(ni.out) }

// ClearDescriptor abandons the current descriptor (kernel context-switch
// path: the descriptor is unloaded and later reloaded via Describe).
func (ni *NI) ClearDescriptor() []uint64 {
	d := ni.out
	ni.out = nil
	return d
}

// Launch implements the launch operation of Table 1. With user privilege a
// kernel-message header takes a protection-violation trap. An empty
// descriptor makes launch a no-op, per the table. On success the hardware
// stamps the GID (the caller's GID for users, the given one for the kernel)
// and commits the message to the network atomically.
func (ni *NI) Launch(kernelPriv bool) Trap {
	if len(ni.out) == 0 {
		return TrapNone
	}
	h := ni.out[0]
	if !kernelPriv {
		if HeaderIsKernel(h) {
			return TrapProtectionViolation
		}
		h = stampGID(h, ni.gid)
	} else if !HeaderIsKernel(h) && HeaderGID(h) == 0 {
		// Kernel sending on behalf of itself without a stamp: kernel GID.
		h = stampGID(h, KernelGID)
	}
	// The descriptor is copied into a pooled packet (recycled by the
	// fast-dispose and kernel-drop paths), so steady-state launches do not
	// allocate.
	pkt := ni.net.Acquire(ni.node, len(ni.out))
	copy(pkt.Words, ni.out)
	pkt.Words[0] = h
	ni.out = ni.out[:0]
	ni.launched++
	ni.mLaunched.Inc()

	// The output buffer drains at link rate; until then space-available
	// reads zero and blocking stores stall. A DMA-stall fault holds the
	// descriptor busy longer.
	drain := ni.cfg.DrainPerWord*uint64(len(pkt.Words)) + ni.inj.DMAStall(ni.node)
	start := ni.eng.Now()
	if ni.outBusyTill > start {
		start = ni.outBusyTill
	}
	ni.outBusyTill = start + drain
	ni.eng.ScheduleSite(siteDrain, ni.outBusyTill-ni.eng.Now(), ni.drainFn)

	ni.net.SendPacket(mesh.Main, ni.node, HeaderDst(h), pkt)
	return TrapNone
}

// siteDrain labels output-buffer drain completions for the cost profiler.
var siteDrain = sim.NewSite("nic.drain")

// SpaceCond returns the condition signalled when the output buffer drains.
func (ni *NI) SpaceCond() *sim.Cond { return ni.spaceWait }

// ---------------------------------------------------------------------------
// Atomicity control

// BeginAtom implements beginatom(MASK): UAC |= MASK. User privilege may only
// touch the user bits; touching kernel bits is a protection violation.
func (ni *NI) BeginAtom(mask uint8, kernelPriv bool) Trap {
	if !kernelPriv && mask&^uacUserBits != 0 {
		return TrapProtectionViolation
	}
	ni.uac |= mask
	ni.evaluate()
	return TrapNone
}

// EndAtom implements endatom(MASK) with the trap rules of Table 1:
// dispose-pending set traps dispose-failure (the handler exited without
// freeing a message); atomicity-extend set traps so the OS regains control;
// otherwise the bits clear and pending messages may now interrupt.
func (ni *NI) EndAtom(mask uint8, kernelPriv bool) Trap {
	if !kernelPriv && mask&^uacUserBits != 0 {
		return TrapProtectionViolation
	}
	if ni.uac&UACDisposePending != 0 {
		return TrapDisposeFailure
	}
	if ni.uac&UACAtomicityExtend != 0 {
		return TrapAtomicityExtend
	}
	ni.uac &^= mask
	ni.evaluate()
	return TrapNone
}

// UAC returns the atomicity control register.
func (ni *NI) UAC() uint8 { return ni.uac }

// SetUACKernel sets or clears a kernel UAC bit (dispose-pending or
// atomicity-extend) with kernel privilege.
func (ni *NI) SetUACKernel(bit uint8, on bool) {
	if on {
		ni.uac |= bit
	} else {
		ni.uac &^= bit
	}
	ni.evaluate()
}

// ClearUAC resets the whole register (kernel, on context switch).
func (ni *NI) ClearUAC() {
	ni.uac = 0
	ni.evaluate()
}

// RestoreUAC installs a saved register image (kernel, on context switch).
func (ni *NI) RestoreUAC(v uint8) {
	ni.uac = v
	ni.evaluate()
}

// ---------------------------------------------------------------------------
// Kernel registers

// GID returns the current application GID register.
func (ni *NI) GID() GID { return ni.gid }

// SetGID installs the scheduled application's GID (kernel, context switch).
func (ni *NI) SetGID(g GID) {
	ni.gid = g
	ni.signaled = nil
	ni.evaluate()
}

// Divert returns the divert-mode bit.
func (ni *NI) Divert() bool { return ni.divert }

// SetDivert flips the buffered path on or off. With divert set every
// incoming message interrupts the operating system and user dispose traps.
func (ni *NI) SetDivert(on bool) {
	if ni.divert == on {
		return
	}
	ni.divert = on
	ni.signaled = nil
	ni.evaluate()
}

// SetTimerPreset changes the atomicity-timeout preset value.
func (ni *NI) SetTimerPreset(v uint64) {
	ni.cfg.TimerPreset = v
	ni.timer.presetVal = v
	ni.timer.preset()
	ni.timer.update()
}

// TimerRemaining exposes the countdown for tests and diagnostics.
func (ni *NI) TimerRemaining() uint64 { return ni.timer.remainingNow() }

// Stats reports lifetime NI counters: messages arrived, refused by a full
// queue, launched, user-disposed and kernel-disposed.
func (ni *NI) Stats() (arrived, refused, launched, disposed, kdisposed uint64) {
	return ni.arrived, ni.refused, ni.launched, ni.disposed, ni.kdisposed
}

// Demuxed reports user packets sorted into per-process stores by the
// offload engine (always zero without one).
func (ni *NI) Demuxed() uint64 { return ni.demuxed }

// Nacked reports user packets refused by offload admission and bounced back
// into the network for retry (always zero without an offload).
func (ni *NI) Nacked() uint64 { return ni.nacked }
