package glaze

import (
	"fugu/internal/delivery"
	"fugu/internal/faultinject"
	"fugu/internal/nic"
	"fugu/internal/niq"
	"fugu/internal/sim"
	"fugu/internal/spans"
	"fugu/internal/telemetry"
	"fugu/internal/trace"
)

// ConfigOption adjusts a Config. Options compose over DefaultConfig via
// NewConfig or over any explicit base via NewMachine(cfg, opts...), so
// callers no longer reach into struct fields for the common knobs.
type ConfigOption func(*Config)

// WithTrace installs an event log on the machine. Enable the categories of
// interest on the log before running.
func WithTrace(l *trace.Log) ConfigOption {
	return func(c *Config) { c.Trace = l }
}

// WithSpans installs a message-lifecycle recorder on the machine: every
// injected packet is tracked from send to its terminal disposal.
func WithSpans(rec *spans.Recorder) ConfigOption {
	return func(c *Config) { c.Spans = rec }
}

// WithWatchdog enables the liveness watchdog (see WatchdogConfig). A span
// recorder is installed implicitly if none is configured.
func WithWatchdog(wc WatchdogConfig) ConfigOption {
	return func(c *Config) { c.Watchdog = wc }
}

// WithMesh sets the mesh dimensions (the machine has w*h nodes).
func WithMesh(w, h int) ConfigOption {
	return func(c *Config) { c.W, c.H = w, h }
}

// WithAtomicity selects the cost model for one of Table 4's three
// atomicity implementations.
func WithAtomicity(impl AtomicityImpl) ConfigOption {
	return func(c *Config) { c.Cost = Costs(impl) }
}

// WithFrames sets the per-node physical frame pool size (4 KB frames).
func WithFrames(n int) ConfigOption {
	return func(c *Config) { c.FramesPerNode = n }
}

// WithPartitions shards the event engine across n partition engines driven
// as a merged group (see Config.Partitions). Results are byte-identical for
// any n; 0 or 1 keeps the single serial engine.
func WithPartitions(n int) ConfigOption {
	return func(c *Config) { c.Partitions = n }
}

// WithMachineSeed sets the simulation seed (per-node clock skew jitter and
// any other randomized behaviour derive from it).
func WithMachineSeed(seed uint64) ConfigOption {
	return func(c *Config) { c.Seed = seed }
}

// WithOutputWords sets the NI output-descriptor length in words; the
// harness uses a 64-word descriptor to model FUGU's DMA engine for bulk
// messages (see DESIGN.md).
func WithOutputWords(words int) ConfigOption {
	return func(c *Config) { c.NIConfig.OutputWords = words }
}

// WithNIConfig applies nic options over the machine's NI configuration
// (the glaze-level counterpart of nic.NewConfig).
func WithNIConfig(opts ...nic.ConfigOption) ConfigOption {
	return func(c *Config) {
		for _, o := range opts {
			o(&c.NIConfig)
		}
	}
}

// WithInputQueue selects every NI's input-queue organization (model,
// allocation policy, slot count; see niq.Spec). The zero spec — and the
// default — is the static FIFO, bit-identical to the original hardware.
func WithInputQueue(spec niq.Spec) ConfigOption {
	return func(c *Config) { c.NIConfig.Queue = spec }
}

// WithQueueAudit checks every NI's input-queue invariants after each queue
// mutation (see nic.Config.QueueAudit). Test-only: property tests use it to
// fail at the exact event that violates a reserve guarantee.
func WithQueueAudit() ConfigOption {
	return func(c *Config) { c.NIConfig.QueueAudit = true }
}

// WithDeliveryPolicy selects the receive-side delivery policy. Nil (and the
// default) is delivery.TwoCase{}, which reproduces the paper's organization
// bit-for-bit; delivery.ZeroCopyRemap and delivery.BypassRing are the rival
// organizations for head-to-head comparison.
func WithDeliveryPolicy(p delivery.Policy) ConfigOption {
	return func(c *Config) { c.Delivery = p }
}

// WithTelemetry attaches a flight recorder: the machine samples its
// registry every recorder interval of simulated time and keeps the
// interval deltas in a bounded ring (see the telemetry package). Sampling
// never perturbs simulation results.
func WithTelemetry(rec *telemetry.Recorder) ConfigOption {
	return func(c *Config) { c.Telemetry = rec }
}

// WithFaults arms a deterministic fault injector executing the plan. Faults
// draw from their own PCG stream, so a machine with a disarmed plan stays
// bit-identical to one with no plan at all.
func WithFaults(plan *faultinject.Plan) ConfigOption {
	return func(c *Config) { c.Faults = plan }
}

// WithProfiler attaches an engine cost profiler: every dispatched event is
// attributed to its named schedule site (counts, simulated cycles and —
// per the profiler's config — wall nanoseconds and allocations).
// Observation only; simulation results are identical with or without it.
func WithProfiler(p *sim.Profiler) ConfigOption {
	return func(c *Config) { c.Profiler = p }
}

// NewConfig returns DefaultConfig with the given options applied.
func NewConfig(opts ...ConfigOption) Config {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}
