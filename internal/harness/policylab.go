package harness

import (
	"context"
	"fmt"
	"io"
	"strings"

	"fugu/internal/delivery"
	"fugu/internal/faultinject"
	"fugu/internal/metrics"
	"fugu/internal/plot"
)

// The policy lab is the head-to-head experiment behind the DeliveryPolicy
// seam: the same all-to-all microbenchmark the crucible uses, run once per
// (policy, network-fault plan) pair, with every delivery oracle still
// enforced. Where the crucible asks "does two-case delivery survive every
// adversity", the lab asks "how do rival receive-side organizations compare
// on the axes the paper cares about" — fast-path fraction, delivery latency,
// physical pages pinned for buffering, and overflow/backpressure events.

// policylabPlans are the adversity schedules the lab sweeps. "none" is the
// clean fast-path baseline. The hot-spot and link-stall plans pair network
// congestion with receive-side pressure (mismatch storms and mid-handler
// quantum expiries) so every policy's weak point engages: the two-case
// buffer grows and pays insert costs, zero-copy pins pages per message, and
// the statically partitioned bypass ring fills and pushes back with NACKs.
func policylabPlans() []cruciblePlan {
	w := func(s faultinject.FaultSpec) faultinject.FaultSpec {
		s.From, s.Until, s.Node = crucibleFaultsStart, crucibleFaultsLift, faultinject.AllNodes
		return s
	}
	pressure := func(p *faultinject.Plan) {
		p.Arm(faultinject.GIDMismatch, w(faultinject.FaultSpec{Prob: 0.5}))
		p.Arm(faultinject.QuantumExpiry, w(faultinject.FaultSpec{Prob: 0.15, Cycles: 2_000}))
	}
	return []cruciblePlan{
		{"none", func(p *faultinject.Plan) {}},
		{"hot-spot", func(p *faultinject.Plan) {
			p.Arm(faultinject.HotSpot, w(faultinject.FaultSpec{Prob: 0.4, Cycles: 300}))
			pressure(p)
		}},
		{"link-stall", func(p *faultinject.Plan) {
			p.Arm(faultinject.LinkStall, w(faultinject.FaultSpec{Prob: 0.4, Cycles: 300}))
			pressure(p)
		}},
	}
}

// PolicyLabRow is one (policy, plan, trial) run's comparison point.
type PolicyLabRow struct {
	Policy    string
	Plan      string
	Trial     int
	Completed bool
	Cycles    uint64

	Fast     uint64  // fast-path deliveries (hardware demux counts as fast)
	Buffered uint64  // second-case deliveries through the policy's store
	FastPct  float64 // Fast / (Fast + Buffered) * 100

	// Latency is injection-to-disposal, from the per-path histograms.
	LatFastMean float64
	LatBufMean  float64
	LatMax      uint64

	// PagesHighWater is the worst single node's physical pages pinned by the
	// policy's store (ring pages, remap-pinned pages, or buffer pages).
	PagesHighWater int64
	// VMAllocs counts demand allocations (two-case) or copy fallbacks
	// (zero-copy) on the insert path.
	VMAllocs uint64
	// OverflowTrips counts software overflow-control activations; Nacks
	// counts NI-level refusals (ring-full or protocol backpressure).
	OverflowTrips uint64
	Nacks         uint64

	// Problems carries the delivery-oracle violations, which the lab enforces
	// exactly as the crucible does.
	Problems []string
}

// PolicyLabResult is the structured outcome of the lab sweep.
type PolicyLabResult struct {
	Rows []PolicyLabRow
	// snaps holds each row's machine metrics snapshot for the metrics hook.
	snaps []metrics.Snapshot
}

// Problems flattens every row's oracle violations, prefixed by the run.
func (r PolicyLabResult) Problems() []string {
	var out []string
	for _, row := range r.Rows {
		for _, p := range row.Problems {
			out = append(out, fmt.Sprintf("%s/%s trial=%d: %s", row.Policy, row.Plan, row.Trial, p))
		}
	}
	return out
}

// Print renders the comparison table grouped by plan.
func (r PolicyLabResult) Print(w io.Writer) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		status := "ok"
		if !row.Completed {
			status = "WEDGED"
		} else if len(row.Problems) > 0 {
			status = "ORACLE FAIL"
		}
		rows = append(rows, []string{
			row.Plan, row.Policy, status,
			fmt.Sprintf("%.1f%%", row.FastPct),
			f1(row.LatFastMean), f1(row.LatBufMean),
			fmt.Sprint(row.PagesHighWater),
			u(row.OverflowTrips), u(row.Nacks), u(row.VMAllocs),
			u(row.Cycles),
		})
	}
	fmt.Fprintln(w, "Policy lab: delivery policies head-to-head (8 nodes, all-to-all, oracles enforced)")
	fmt.Fprintln(w, plot.Table([]string{
		"plan", "policy", "status", "fast%", "lat.fast", "lat.buf",
		"pages.hw", "ovfl", "nacks", "vmallocs", "cycles",
	}, rows))
	if problems := r.Problems(); len(problems) > 0 {
		fmt.Fprintf(w, "\n%d oracle violation(s):\n", len(problems))
		for _, p := range problems {
			fmt.Fprintln(w, " ", p)
		}
	} else {
		fmt.Fprintln(w, "all delivery oracles passed under every policy")
	}
}

// CSVFiles renders the sweep as policylab.csv.
func (r PolicyLabResult) CSVFiles() map[string]string {
	var b strings.Builder
	b.WriteString("policy,plan,trial,completed,cycles,fast,buffered,fast_pct," +
		"lat_fast_mean,lat_buf_mean,lat_max,pages_high_water,vmallocs," +
		"overflow_trips,nacks,problems\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%v,%d,%d,%d,%.2f,%.1f,%.1f,%d,%d,%d,%d,%d,%d\n",
			row.Policy, row.Plan, row.Trial, row.Completed, row.Cycles,
			row.Fast, row.Buffered, row.FastPct,
			row.LatFastMean, row.LatBufMean, row.LatMax,
			row.PagesHighWater, row.VMAllocs, row.OverflowTrips, row.Nacks,
			len(row.Problems))
	}
	return map[string]string{"policylab.csv": b.String()}
}

// policyLabPoint carries one row plus its machine snapshot.
type policyLabPoint struct {
	row  PolicyLabRow
	snap metrics.Snapshot
}

// MetricsSnapshot implements MetricsCarrier for the Runner's metrics hook.
func (p policyLabPoint) MetricsSnapshot() metrics.Snapshot { return p.snap }

// PolicyLab runs the delivery-policy comparison sweep.
func PolicyLab(opts ...Option) (PolicyLabResult, error) {
	return runAs[PolicyLabResult]("policylab", opts...)
}

// policyLabExperiment fans out one point per (policy, plan, trial). The
// workload and oracles are the crucible's; only the fault plans and the
// reported axes differ.
func policyLabExperiment() *Experiment {
	return &Experiment{
		Name:        "policylab",
		Description: "delivery policies head-to-head: fast-path %, latency, pinned pages, overflow",
		Points: func(opt Options) []Point {
			plans := policylabPlans()
			names := delivery.Names()
			pts := make([]Point, 0, len(names)*len(plans)*opt.trials())
			for _, polName := range names {
				for _, pl := range plans {
					for trial := 0; trial < opt.trials(); trial++ {
						polName, pl, trial := polName, pl, trial
						pts = append(pts, Point{
							Label: fmt.Sprintf("%s %s trial=%d", polName, pl.name, trial),
							Run: func(_ context.Context, opt Options) (any, error) {
								pol, err := delivery.ByName(polName)
								if err != nil {
									return nil, err
								}
								return runPolicyLab(pol, pl, trial, opt), nil
							},
						})
					}
				}
			}
			return pts
		},
		Assemble: func(_ Options, results []any) (Result, error) {
			res := PolicyLabResult{
				Rows:  make([]PolicyLabRow, len(results)),
				snaps: make([]metrics.Snapshot, len(results)),
			}
			for i, r := range results {
				p := r.(policyLabPoint)
				res.Rows[i] = p.row
				res.snaps[i] = p.snap
			}
			return res, nil
		},
	}
}

// runPolicyLab executes one (policy, plan, trial) run through the crucible
// workload and distills the comparison axes from its metrics snapshot.
func runPolicyLab(pol delivery.Policy, pl cruciblePlan, trial int, opt Options) policyLabPoint {
	opt.Policy = pol
	pt := runCrucible(pl, trial, opt)
	snap := pt.snap

	row := PolicyLabRow{
		Policy:    pol.Name(),
		Plan:      pl.name,
		Trial:     trial,
		Completed: pt.row.Completed,
		Cycles:    pt.row.Cycles,
		Fast:      pt.row.Fast,
		Buffered:  pt.row.Buffered,
		Problems:  pt.row.Problems,

		PagesHighWater: snap.Gauges["glaze.buffer.pages"].Max,
		VMAllocs:       snap.Counters["glaze.buffer.insert_vmallocs"],
		OverflowTrips:  snap.Counters["glaze.overflow.trips"],
		Nacks:          snap.Counters["nic.nacked"],
	}
	if total := row.Fast + row.Buffered; total > 0 {
		row.FastPct = 100 * float64(row.Fast) / float64(total)
	}
	hf := snap.Histograms["glaze.deliver.latency.fast"]
	hb := snap.Histograms["glaze.deliver.latency.buffered"]
	row.LatFastMean = hf.Mean()
	row.LatBufMean = hb.Mean()
	row.LatMax = max(hf.Max, hb.Max)
	return policyLabPoint{row: row, snap: snap}
}
