// Package plot renders the experiment figures as ASCII line charts and
// aligned tables, so `fugusim fig7` can show the same curves the paper
// prints without leaving the terminal.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// markers distinguish overlapping series in the terminal raster.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Line renders series on a width×height character raster with axes and a
// legend. X values need not be uniform; points are plotted, not joined.
func Line(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // y axis anchored at zero: these are rates/ratios
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return title + " (no data)\n"
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	if maxX <= minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			c := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			r := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - r
			if row >= 0 && row < height && c >= 0 && c < width {
				grid[row][c] = mk
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.4g ", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%7.4g ", minY)
		} else if r == height/2 {
			label = fmt.Sprintf("%7.4g ", (maxY+minY)/2)
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "        %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "        %-10.4g%s%10.4g\n", minX, center(xlabel, width-18), maxX)
	fmt.Fprintf(&b, "        y: %s   legend:", ylabel)
	for si, s := range series {
		fmt.Fprintf(&b, " %c=%s", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}

func center(s string, w int) string {
	if w < len(s) {
		return s
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", w-len(s)-left)
}

// Table renders rows with columns aligned. Cells are plain strings; the
// caller formats numbers.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders rows as comma-separated values with a header line.
func CSV(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(headers, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
