// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a global event queue ordered by (time, sequence) and a set
// of coroutines (Proc) that run one at a time under a strict baton: at any
// instant either the engine loop or exactly one Proc is executing. Given the
// same inputs and seed, a simulation is bit-reproducible, which the
// experiment harness relies on.
//
// Events are pooled: the structs behind fired or cancelled events return to
// a per-engine free list and are reissued by later Schedules, so the
// steady-state schedule/fire cycle performs no allocation. Callers never see
// an *Event; they hold a Handle — a (slot, generation) pair whose generation
// must still match the slot's for the handle to be live. Recycling a slot
// bumps its generation, so Cancel or Pending on a stale handle is a safe
// no-op rather than an attack on some unrelated event that happens to be
// renting the memory now.
package sim

// Event is one scheduled entry in the engine's queue. It is an internal
// pooled resource: exactly one of fn, fnArg or proc is set, selecting the
// callback flavor (plain closure, pre-bound function + argument, or a proc
// dispatch that needs no closure at all). Callers refer to events only
// through Handles.
type Event struct {
	at  uint64
	seq uint64

	fn    func()
	fnArg func(any)
	arg   any
	proc  *Proc

	gen   uint32 // bumped on release; Handles carry the gen they were issued at
	index int32  // heap position, -1 while not queued
	site  Site   // schedule-site label for the cost profiler (SiteMisc default)
	next  *Event // free-list link while released

	// owner is the engine whose heap and free list hold this event — fixed
	// at first allocation. In a merged partition group an event can be
	// cancelled from another shard's code (a cross-shard wake), so Cancel
	// must reach the owning heap, not the caller's.
	owner *Engine
}

// Handle is a cancellable reference to a scheduled event. The zero Handle is
// valid and refers to no event. Handles are plain values: copying one copies
// the reference, and a Handle outliving its event (because the event fired,
// was cancelled, or its slot was recycled) is safe — it merely stops being
// Pending.
type Handle struct {
	ev  *Event
	gen uint32
}

// Pending reports whether the event is still queued and will fire. It is
// false for the zero Handle, after the event fires or is cancelled, and for
// a stale handle whose event slot has been recycled.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.index >= 0
}

// Time returns the simulation time at which the event will fire, or 0 if the
// handle is no longer pending.
func (h Handle) Time() uint64 {
	if !h.Pending() {
		return 0
	}
	return h.ev.at
}
