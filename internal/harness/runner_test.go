package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// sliceResult is the trivial Result test experiments assemble into.
type sliceResult struct{ vals []int }

func (sliceResult) Print(io.Writer) {}

// sliceExperiment returns every point's value in enumeration order.
func sliceExperiment(points []Point) *Experiment {
	return &Experiment{
		Name:        "test",
		Description: "test experiment",
		Points:      func(Options) []Point { return points },
		Assemble: func(_ Options, results []any) (Result, error) {
			res := sliceResult{}
			for _, r := range results {
				res.vals = append(res.vals, r.(int))
			}
			return res, nil
		},
	}
}

func TestRunnerResultOrderIndependentOfWorkerCount(t *testing.T) {
	const n = 40
	points := make([]Point, n)
	for i := range points {
		i := i
		points[i] = Point{
			Label: fmt.Sprintf("p%d", i),
			Run: func(context.Context, Options) (any, error) {
				// Scramble completion order: later points finish sooner.
				time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
				return i, nil
			},
		}
	}
	exp := sliceExperiment(points)
	var got []sliceResult
	for _, workers := range []int{1, 8} {
		res, err := new(Runner).Run(context.Background(), exp, WithParallelism(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got = append(got, res.(sliceResult))
	}
	for i := 0; i < n; i++ {
		if got[0].vals[i] != i {
			t.Fatalf("serial run out of order at %d: %v", i, got[0].vals)
		}
	}
	if !reflect.DeepEqual(got[0], got[1]) {
		t.Errorf("serial and parallel results differ:\n%v\n%v", got[0], got[1])
	}
}

func TestRunnerCancellationStopsPromptly(t *testing.T) {
	var started atomic.Int32
	points := make([]Point, 64)
	for i := range points {
		points[i] = Point{
			Label: fmt.Sprintf("p%d", i),
			Run: func(ctx context.Context, _ Options) (any, error) {
				started.Add(1)
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(10 * time.Second):
					return 0, nil
				}
			},
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	begin := time.Now()
	_, err := new(Runner).Run(ctx, sliceExperiment(points), WithParallelism(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	// Only the in-flight points (one per worker) ever started; the rest of
	// the sweep was abandoned.
	if s := started.Load(); s > 8 {
		t.Errorf("%d points started after cancel, want at most the in-flight few", s)
	}
}

func TestRunnerPanicIsIsolated(t *testing.T) {
	var ran atomic.Int32
	const n = 12
	points := make([]Point, n)
	for i := range points {
		i := i
		points[i] = Point{
			Label: fmt.Sprintf("p%d", i),
			Run: func(context.Context, Options) (any, error) {
				ran.Add(1)
				if i == 3 {
					panic("boom at point 3")
				}
				return i, nil
			},
		}
	}
	_, err := new(Runner).Run(context.Background(), sliceExperiment(points), WithParallelism(4))
	if err == nil {
		t.Fatal("panicking point did not surface as an error")
	}
	if !strings.Contains(err.Error(), "boom at point 3") || !strings.Contains(err.Error(), "p3") {
		t.Errorf("error does not identify the panicking point: %v", err)
	}
	if ran.Load() != n {
		t.Errorf("only %d/%d points ran: the panic killed sibling work", ran.Load(), n)
	}
}

func TestRunnerPointErrorIsLabelled(t *testing.T) {
	points := []Point{
		{Label: "good", Run: func(context.Context, Options) (any, error) { return 1, nil }},
		{Label: "bad", Run: func(context.Context, Options) (any, error) { return nil, errors.New("sim diverged") }},
	}
	_, err := new(Runner).Run(context.Background(), sliceExperiment(points), WithParallelism(2))
	if err == nil || !strings.Contains(err.Error(), "bad") || !strings.Contains(err.Error(), "sim diverged") {
		t.Errorf("err = %v, want labelled point failure", err)
	}
}

func TestRunnerProgressCallback(t *testing.T) {
	const n = 10
	points := make([]Point, n)
	for i := range points {
		i := i
		points[i] = Point{
			Label: fmt.Sprintf("p%d", i),
			Run:   func(context.Context, Options) (any, error) { return i, nil },
		}
	}
	var events []Progress
	r := &Runner{Progress: func(p Progress) { events = append(events, p) }}
	if _, err := r.Run(context.Background(), sliceExperiment(points), WithParallelism(4)); err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("%d progress events, want %d", len(events), n)
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != n || ev.Experiment != "test" {
			t.Errorf("event %d = %+v", i, ev)
		}
	}
}

func TestRegistryNamesAndLookup(t *testing.T) {
	want := []string{"table4", "table5", "table6", "fig7and8", "fig9", "fig10", "crlstress", "crucible", "policylab", "bufferlab"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		e, ok := Lookup(name)
		if !ok || e.Name != name || e.Description == "" {
			t.Errorf("Lookup(%q) = %+v, %v", name, e, ok)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted an unknown name")
	}
	if _, err := Run(context.Background(), "nope"); err == nil {
		t.Error("Run accepted an unknown name")
	}
}

func TestOptionsResolution(t *testing.T) {
	o := NewOptions()
	if o.Quick || o.Trials != 3 || o.Seed != 1 {
		t.Errorf("defaults = %+v, want paper defaults", o)
	}
	o = NewOptions(WithQuick(), WithTrials(1), WithSeed(9), WithParallelism(2))
	if !o.Quick || o.Trials != 1 || o.Seed != 9 || o.Parallelism != 2 {
		t.Errorf("resolved = %+v", o)
	}
	if o.TrialSeed(2) != 11 {
		t.Errorf("TrialSeed(2) = %d, want seed+2", o.TrialSeed(2))
	}
	if (Options{}).trials() != 1 {
		t.Error("zero trials should clamp to 1")
	}
	if (Options{}).workers() < 1 {
		t.Error("workers must be at least 1")
	}
}

// TestFig9SerialParallelIdentical is the determinism guarantee: the same
// figure sweep run serially and on eight workers yields identical
// structured results and byte-identical CSV output.
func TestFig9SerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	serial, err := Fig9(WithQuick(), WithTrials(1), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig9(WithQuick(), WithTrials(1), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("structured results differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serial.CSV() != parallel.CSV() {
		t.Errorf("CSV output differs:\nserial:\n%s\nparallel:\n%s", serial.CSV(), parallel.CSV())
	}
}
