module fugu

go 1.22
