package sim

import (
	"fmt"
	"io"
	rtmetrics "runtime/metrics"
	"sort"
	"strings"
	"sync"
	"time"
)

// profEpoch anchors monotonic wall readings; time.Since on a time.Time
// carrying a monotonic clock is immune to wall-clock steps.
var profEpoch = time.Now()

func monotonicNs() int64 { return time.Since(profEpoch).Nanoseconds() }

// Site labels a schedule (or wake) call site for cost attribution: "which
// part of the simulator is generating events, and what do they cost?".
// Sites are process-global, registered once at package init by the code
// that schedules (mesh hop, NI drain, gang tick, ...), and stamped onto
// every Event so the Profiler can bucket dispatches without looking at the
// callback. Site zero is SiteMisc, the label of every event scheduled
// through a plain (unlabelled) Schedule call.
type Site int32

var siteReg = struct {
	sync.Mutex
	names []string
	ids   map[string]Site
}{ids: map[string]Site{}}

// NewSite registers (or finds) the site with the given name. Names are
// dotted paths ("mesh.deliver", "glaze.gang.tick"); the folded-stacks
// export splits on the dots. Safe for concurrent use, but intended for
// package-level var initialisation so registration is done before any
// engine runs.
func NewSite(name string) Site {
	siteReg.Lock()
	defer siteReg.Unlock()
	if id, ok := siteReg.ids[name]; ok {
		return id
	}
	id := Site(len(siteReg.names))
	siteReg.names = append(siteReg.names, name)
	siteReg.ids[name] = id
	return id
}

// SiteMisc is the default site: events scheduled without a label.
var SiteMisc = NewSite("sim.misc")

func (s Site) String() string {
	siteReg.Lock()
	defer siteReg.Unlock()
	if int(s) >= 0 && int(s) < len(siteReg.names) {
		return siteReg.names[s]
	}
	return fmt.Sprintf("site(%d)", int(s))
}

func siteCount() int {
	siteReg.Lock()
	defer siteReg.Unlock()
	return len(siteReg.names)
}

// ProfilerConfig selects what a Profiler measures beyond event counts and
// simulated cycles (which are always collected and always deterministic).
type ProfilerConfig struct {
	// Wall attributes host wall-clock nanoseconds per site (one
	// monotonic-clock read per dispatched event).
	Wall bool
	// Allocs attributes heap allocations per site (one runtime/metrics
	// read per dispatched event; noticeably slower, so opt-in).
	Allocs bool
}

// Profiler attributes engine work to schedule sites. Attach one to an
// engine with Engine.UseProfiler; a nil profiler costs one pointer
// comparison per event and nothing else, the same discipline as
// faultinject and telemetry — simulated results are identical either way,
// because the profiler only observes.
//
// Two attribution rules, both conservation-exact:
//
//   - simulated cycles: the time advance ending at an event is charged to
//     that event's site ("which events does the clock wait on"); the
//     per-site cycles sum to exactly the simulated time the engine
//     traversed while the profiler was attached.
//   - wall-ns / allocs: the host cost between two consecutive dispatches
//     is charged to the *earlier* event's site (that callback, plus the
//     engine work to reach the next event, was what the host was doing);
//     per-site values sum to the wall time / allocations of the whole run.
//
// A Profiler is bound to one engine at a time but survives re-attachment,
// so a sweep point that builds several machines accumulates one combined
// profile. It is not safe for concurrent use from parallel sweep workers;
// pair it with Parallelism(1), like Trace and Spans recorders.
type Profiler struct {
	wall   bool
	allocs bool

	lastNow    uint64
	prevSite   Site
	lastWallNs int64
	lastAllocs uint64
	sample     []rtmetrics.Sample

	sites []siteCell
}

type siteCell struct {
	events uint64
	cycles uint64
	wallNs int64
	allocs uint64
}

// NewProfiler returns a profiler sized to the current site registry.
func NewProfiler(cfg ProfilerConfig) *Profiler {
	p := &Profiler{wall: cfg.Wall, allocs: cfg.Allocs}
	if cfg.Allocs {
		p.sample = []rtmetrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	}
	p.growTo(siteCount())
	return p
}

// UseProfiler attaches (or, with nil, detaches) a profiler. Attachment
// re-baselines the cycle/wall/alloc cursors at the engine's current time,
// so a profiler reused across machines charges each engine only for its
// own run.
func (e *Engine) UseProfiler(p *Profiler) {
	e.prof = p
	if p != nil {
		p.attachAt(e.Now())
	}
}

func (p *Profiler) attachAt(now uint64) {
	p.growTo(siteCount())
	p.lastNow = now
	p.prevSite = SiteMisc
	if p.wall {
		p.lastWallNs = monotonicNs()
	}
	if p.allocs {
		p.lastAllocs = p.readAllocs()
	}
}

func (p *Profiler) growTo(n int) {
	if len(p.sites) < n {
		p.sites = append(p.sites, make([]siteCell, n-len(p.sites))...)
	}
}

func (p *Profiler) readAllocs() uint64 {
	rtmetrics.Read(p.sample)
	return p.sample[0].Value.Uint64()
}

// tick is the per-event hook, called by the dispatch loops (Engine.Run and
// the inline loop in Proc.park) after the clock advanced to ev.at.
func (p *Profiler) tick(site Site, now uint64) {
	if int(site) >= len(p.sites) {
		p.growTo(siteCount())
		if int(site) >= len(p.sites) { // unregistered id: guard, don't crash
			site = SiteMisc
		}
	}
	c := &p.sites[site]
	c.events++
	c.cycles += now - p.lastNow
	p.lastNow = now
	if p.wall {
		w := monotonicNs()
		p.sites[p.prevSite].wallNs += w - p.lastWallNs
		p.lastWallNs = w
	}
	if p.allocs {
		a := p.readAllocs()
		p.sites[p.prevSite].allocs += a - p.lastAllocs
		p.lastAllocs = a
	}
	p.prevSite = site
}

// SiteProfile is one row of a profile snapshot.
type SiteProfile struct {
	Name   string
	Events uint64
	Cycles uint64 // simulated cycles the clock advanced to reach this site's events
	WallNs int64  // host nanoseconds attributed to this site's callbacks
	Allocs uint64 // heap allocations attributed to this site's callbacks
}

// Profile is a snapshot of a Profiler: per-site rows ranked by simulated
// cycles (descending; ties by events then name), plus the totals.
type Profile struct {
	Sites  []SiteProfile
	Events uint64
	Cycles uint64
	WallNs int64
	Allocs uint64
}

// Snapshot renders the profiler's state as a ranked Profile. Sites that
// never fired are omitted.
func (p *Profiler) Snapshot() Profile {
	var out Profile
	if p == nil {
		return out
	}
	for i, c := range p.sites {
		if c.events == 0 && c.wallNs == 0 && c.allocs == 0 {
			continue
		}
		out.Sites = append(out.Sites, SiteProfile{
			Name:   Site(i).String(),
			Events: c.events,
			Cycles: c.cycles,
			WallNs: c.wallNs,
			Allocs: c.allocs,
		})
		out.Events += c.events
		out.Cycles += c.cycles
		out.WallNs += c.wallNs
		out.Allocs += c.allocs
	}
	sort.Slice(out.Sites, func(i, j int) bool {
		a, b := out.Sites[i], out.Sites[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.Events != b.Events {
			return a.Events > b.Events
		}
		return a.Name < b.Name
	})
	return out
}

// WriteTable renders the profile as a ranked text table.
func (pr Profile) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-28s %12s %14s %7s %10s %12s %10s\n",
		"site", "events", "cycles", "cyc%", "ns/event", "wall-ms", "allocs")
	for _, s := range pr.Sites {
		pct := 0.0
		if pr.Cycles > 0 {
			pct = 100 * float64(s.Cycles) / float64(pr.Cycles)
		}
		nsPerEvent := 0.0
		if s.Events > 0 {
			nsPerEvent = float64(s.WallNs) / float64(s.Events)
		}
		fmt.Fprintf(w, "%-28s %12d %14d %6.1f%% %10.0f %12.2f %10d\n",
			s.Name, s.Events, s.Cycles, pct, nsPerEvent,
			float64(s.WallNs)/1e6, s.Allocs)
	}
	fmt.Fprintf(w, "%-28s %12d %14d %6.1f%% %10s %12.2f %10d\n",
		"TOTAL", pr.Events, pr.Cycles, 100.0, "", float64(pr.WallNs)/1e6, pr.Allocs)
}

// WriteFolded renders the profile in folded-stacks form, one line per
// site — "sim;mesh;deliver 12345" — with the site name split on dots and
// the sample value the (deterministic) simulated-cycle attribution, so the
// file feeds straight into standard flamegraph tooling. Lines are sorted
// by stack name.
func (pr Profile) WriteFolded(w io.Writer) {
	rows := make([]string, 0, len(pr.Sites))
	for _, s := range pr.Sites {
		if s.Cycles == 0 && s.Events == 0 {
			continue
		}
		stack := "sim;" + strings.ReplaceAll(s.Name, ".", ";")
		rows = append(rows, fmt.Sprintf("%s %d", stack, s.Cycles))
	}
	sort.Strings(rows)
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}
