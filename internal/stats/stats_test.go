package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeliveryPct(t *testing.T) {
	d := Delivery{Fast: 75, Buffered: 25}
	if d.Total() != 100 {
		t.Errorf("Total = %d", d.Total())
	}
	if got := d.BufferedPct(); got != 25 {
		t.Errorf("BufferedPct = %v, want 25", got)
	}
	var zero Delivery
	if zero.BufferedPct() != 0 {
		t.Error("empty delivery pct != 0")
	}
}

func TestDeliveryAdd(t *testing.T) {
	a := Delivery{Fast: 1, Buffered: 2}
	a.Add(Delivery{Fast: 10, Buffered: 20})
	if a.Fast != 11 || a.Buffered != 22 {
		t.Errorf("Add = %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestHighWater(t *testing.T) {
	var h HighWater
	h.Set(5)
	h.Set(3)
	h.Add(1)
	if h.Cur != 4 || h.Max != 5 {
		t.Errorf("h = %+v, want cur 4 max 5", h)
	}
	h.Add(10)
	if h.Max != 14 {
		t.Errorf("Max = %d, want 14", h.Max)
	}
}

func TestHighWaterInvariant(t *testing.T) {
	prop := func(deltas []int8) bool {
		var h HighWater
		for _, d := range deltas {
			h.Add(int(d))
			if h.Max < h.Cur || h.Cur < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestHighWaterOverReleaseClamps is the regression test for Add driving Cur
// negative: releasing more than was ever added clamps at zero (and reports
// the clamped level), so later Adds start from a sane base.
func TestHighWaterOverReleaseClamps(t *testing.T) {
	var h HighWater
	h.Add(2)
	if got := h.Add(-5); got != 0 {
		t.Errorf("over-release returned %d, want 0", got)
	}
	if h.Cur != 0 || h.Max != 2 {
		t.Errorf("h = %+v, want cur 0 max 2", h)
	}
	if got := h.Add(3); got != 3 {
		t.Errorf("post-clamp Add returned %d, want 3", got)
	}
	if h.Cur != 3 || h.Max != 3 {
		t.Errorf("h = %+v, want cur 3 max 3", h)
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Error("empty mean != 0")
	}
	m.Observe(2)
	m.Observe(4)
	m.Observe(6)
	if m.Value() != 4 {
		t.Errorf("mean = %v, want 4", m.Value())
	}
	if m.Count != 3 {
		t.Errorf("count = %d", m.Count)
	}
}

func TestMeanVariance(t *testing.T) {
	var m Mean
	if m.Variance() != 0 || m.StdDev() != 0 {
		t.Error("empty variance/stddev != 0")
	}
	m.Observe(5)
	if m.Variance() != 0 {
		t.Error("single-sample variance != 0")
	}
	// Samples 2, 4, 6: mean 4, population variance (4+0+4)/3.
	m = Mean{}
	for _, v := range []float64{2, 4, 6} {
		m.Observe(v)
	}
	want := 8.0 / 3.0
	if got := m.Variance(); math.Abs(got-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, want)
	}
	if got := m.StdDev(); math.Abs(got-math.Sqrt(want)) > 1e-12 {
		t.Errorf("stddev = %v, want %v", got, math.Sqrt(want))
	}
	// Welford must survive a large offset a naive sum-of-squares would not:
	// variance of {1e9, 1e9+2, 1e9+4} is the same 8/3.
	m = Mean{}
	for _, v := range []float64{1e9, 1e9 + 2, 1e9 + 4} {
		m.Observe(v)
	}
	if got := m.Variance(); math.Abs(got-want) > 1e-6 {
		t.Errorf("offset variance = %v, want %v", got, want)
	}
}
