package sim

// eventHeap is a 4-ary min-heap of events ordered by (at, seq), specialized
// to *Event so push/pop stay monomorphic — no container/heap interface
// dispatch, no boxing through any. The seq tiebreak makes pop order — and
// therefore the whole simulation — deterministic. Each event tracks its own
// slot (Event.index), so Cancel removes from the middle in O(log n) without
// a search.
//
// The 4-ary shape trades slightly more comparisons per level for half the
// levels of a binary heap; with the hot working set being the first few
// cache lines of the slice, pops touch less memory. remove restores the
// invariant by moving the displaced tail element down or up as needed.
type eventHeap struct {
	a []*Event
}

// eventBefore is the queue's total order: time, then issue sequence.
func eventBefore(x, y *Event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

func (h *eventHeap) len() int { return len(h.a) }

// peek returns the minimum event without removing it, nil when empty.
func (h *eventHeap) peek() *Event {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

// push inserts ev and records its slot in ev.index.
func (h *eventHeap) push(ev *Event) {
	h.a = append(h.a, ev)
	h.siftUp(len(h.a) - 1, ev)
}

// pop removes and returns the minimum event, marking it unqueued.
func (h *eventHeap) pop() *Event {
	ev := h.a[0]
	n := len(h.a) - 1
	last := h.a[n]
	h.a[n] = nil
	h.a = h.a[:n]
	ev.index = -1
	if n > 0 {
		h.siftDown(0, last)
	}
	return ev
}

// remove deletes the event at slot i, marking it unqueued.
func (h *eventHeap) remove(i int) {
	n := len(h.a) - 1
	ev := h.a[i]
	last := h.a[n]
	h.a[n] = nil
	h.a = h.a[:n]
	ev.index = -1
	if i < n {
		// The tail element replaces the hole; it may violate the invariant
		// in either direction.
		if !h.siftDown(i, last) {
			h.siftUp(i, last)
		}
	}
}

// siftUp places ev at slot i or above, shifting larger ancestors down.
func (h *eventHeap) siftUp(i int, ev *Event) {
	for i > 0 {
		p := (i - 1) / 4
		if !eventBefore(ev, h.a[p]) {
			break
		}
		h.a[i] = h.a[p]
		h.a[i].index = int32(i)
		i = p
	}
	h.a[i] = ev
	ev.index = int32(i)
}

// siftDown places ev at slot i or below, pulling the smallest child up at
// each level. It reports whether ev moved.
func (h *eventHeap) siftDown(i int, ev *Event) bool {
	start := i
	n := len(h.a)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventBefore(h.a[j], h.a[m]) {
				m = j
			}
		}
		if !eventBefore(h.a[m], ev) {
			break
		}
		h.a[i] = h.a[m]
		h.a[i].index = int32(i)
		i = m
	}
	h.a[i] = ev
	ev.index = int32(i)
	return i != start
}
