package harness

import (
	"context"
	"reflect"
	"testing"

	"fugu/internal/metrics"
	"fugu/internal/spans"
)

// runReconciled runs one experiment serially with a span recorder
// installed and asserts the delivery invariants: every injected message
// reached exactly one terminal state, buffered messages all drained, and
// the span tallies reconcile with the metrics delivery counters.
func runReconciled(t *testing.T, name string, extra ...Option) Result {
	t.Helper()
	exp, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	rec := spans.NewRecorder(nil)
	var snap metrics.Snapshot
	runner := &Runner{OnMetrics: func(s metrics.Snapshot) { snap = s }}
	opts := append([]Option{
		WithQuick(), WithTrials(1), WithParallelism(1), WithSpans(rec),
	}, extra...)
	res, err := runner.Run(context.Background(), exp, opts...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if c := rec.Counts(); c.Begun == 0 {
		t.Fatalf("%s: no spans recorded", name)
	}
	probs := rec.Check(snap.Counters["glaze.deliver.fast"], snap.Counters["glaze.deliver.buffered"])
	if len(probs) != 0 {
		t.Fatalf("%s: span invariants violated:\n%s\n%s", name, rec.Summary(), probs)
	}
	return res
}

// TestSpansReconcileTable4 checks the terminal-state and reconciliation
// properties on the table4 sweep (all three atomicity implementations).
func TestSpansReconcileTable4(t *testing.T) {
	runReconciled(t, "table4")
}

// TestSpansReconcileTable5 covers the second-case pipeline: table5 forces
// every message through a software buffer, so inserts, drains and the
// glaze.deliver.buffered counter must all agree.
func TestSpansReconcileTable5(t *testing.T) {
	runReconciled(t, "table5")
}

// TestSpansReconcileCRLStressSeeds sweeps the CRL stress workload over
// several machine seeds — including the historical deadlock seed — and
// requires every message to terminate and reconcile at each.
func TestSpansReconcileCRLStressSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7, 0x9459729f43aff4c8} {
		runReconciled(t, "crlstress", WithSeed(seed))
	}
}

// TestSpansDoNotPerturbResults: recording spans charges no simulated
// cycles and consumes no engine randomness, so an instrumented serial run
// must produce byte-identical results to an uninstrumented parallel one.
func TestSpansDoNotPerturbResults(t *testing.T) {
	base, err := Table4(WithQuick(), WithTrials(1), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	instrumented := runReconciled(t, "table4")
	if !reflect.DeepEqual(base, instrumented) {
		t.Fatalf("span instrumentation changed table4 results:\nbase: %+v\ninstrumented: %+v",
			base, instrumented)
	}
}
