package metrics

import (
	"encoding/csv"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestNilInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 {
		t.Error("nil instruments recorded something")
	}
	if !r.Snapshot().Empty() {
		t.Error("nil registry snapshot not empty")
	}
	if r.Names() != nil {
		t.Error("nil registry has names")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("counter = %d, want 10", c.Value())
	}
	if r.Counter("msgs") != c {
		t.Error("Counter not idempotent")
	}
	g := r.Gauge("level")
	g.Set(5)
	g.Add(-3)
	if g.Value() != 2 || g.Max() != 5 {
		t.Errorf("gauge = %d/%d, want 2/5", g.Value(), g.Max())
	}
}

func TestKindClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind clash")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// Bucket boundaries: 0 -> bucket 0; 1 -> [1,1]; 2,3 -> [2,3]; 4..7 -> [4,7].
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8} {
		h.Observe(v)
	}
	if h.Count() != 7 || h.Sum() != 25 {
		t.Errorf("count/sum = %d/%d, want 7/25", h.Count(), h.Sum())
	}
	hv := r.Snapshot().Histograms["lat"]
	want := []Bucket{{0, 1}, {1, 1}, {3, 2}, {7, 2}, {15, 1}}
	if !reflect.DeepEqual(hv.Buckets, want) {
		t.Errorf("buckets = %v, want %v", hv.Buckets, want)
	}
	if hv.Min != 0 || hv.Max != 8 {
		t.Errorf("min/max = %d/%d", hv.Min, hv.Max)
	}
	if m := hv.Mean(); m != 25.0/7.0 {
		t.Errorf("mean = %v", m)
	}
}

func TestBucketBound(t *testing.T) {
	cases := map[int]uint64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 64: math.MaxUint64}
	for i, want := range cases {
		if got := BucketBound(i); got != want {
			t.Errorf("BucketBound(%d) = %d, want %d", i, got, want)
		}
	}
	for v := uint64(1); v < 1<<20; v = v*3 + 1 {
		i := bucketOf(v)
		if v > BucketBound(i) || (i > 0 && v <= BucketBound(i-1)) {
			t.Fatalf("value %d misfiled in bucket %d (le=%d)", v, i, BucketBound(i))
		}
	}
}

func TestMergeIsOrderIndependent(t *testing.T) {
	mk := func(c uint64, gcur, gmax int64, samples ...uint64) Snapshot {
		r := NewRegistry()
		r.Counter("c").Add(c)
		g := r.Gauge("g")
		g.Set(gmax)
		g.Set(gcur)
		h := r.Histogram("h")
		for _, s := range samples {
			h.Observe(s)
		}
		return r.Snapshot()
	}
	a := mk(3, 1, 5, 10, 2000)
	b := mk(4, 2, 9, 1, 1)
	ab := Merge(a, b)
	ba := Merge(b, a)
	if !reflect.DeepEqual(ab, ba) {
		t.Errorf("merge not commutative:\n%+v\n%+v", ab, ba)
	}
	if ab.Counters["c"] != 7 {
		t.Errorf("merged counter = %d", ab.Counters["c"])
	}
	if g := ab.Gauges["g"]; g.Cur != 3 || g.Max != 9 {
		t.Errorf("merged gauge = %+v, want cur 3 max 9", g)
	}
	h := ab.Histograms["h"]
	if h.Count != 4 || h.Min != 1 || h.Max != 2000 {
		t.Errorf("merged hist = %+v", h)
	}
	// Merging must not alias its parts.
	one := Merge(a)
	one.Histograms["h"].Buckets[0] = Bucket{Le: 99, Count: 99}
	if reflect.DeepEqual(a.Histograms["h"].Buckets[0], Bucket{Le: 99, Count: 99}) {
		t.Error("merge aliased source buckets")
	}
}

func TestSnapshotJSONAndCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("deliver.fast").Add(12)
	r.Gauge("frames.in_use").Set(4)
	r.Histogram("latency").Observe(100)
	s := r.Snapshot()

	var round Snapshot
	if err := json.Unmarshal(s.JSON(), &round); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if !reflect.DeepEqual(round, s) {
		t.Errorf("round-trip changed snapshot:\n%+v\n%+v", round, s)
	}

	csv := s.CSV()
	for _, want := range []string{
		"metric,kind,field,value",
		"deliver.fast,counter,count,12",
		"frames.in_use,gauge,max,4",
		"latency,histogram,count,1",
		"latency,histogram,le_127,1",
	} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q:\n%s", want, csv)
		}
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Histogram("z")
	r.Counter("a")
	r.Gauge("m")
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Errorf("Names = %v", got)
	}
}

// TestCSVFieldEscaping: clean names pass through byte-identically (so golden
// CSVs are unchanged), metacharacter names get RFC 4180 quoting, and the
// full snapshot CSV re-parses with a standard reader.
func TestCSVFieldEscaping(t *testing.T) {
	for in, want := range map[string]string{
		"glaze.deliver.fast": "glaze.deliver.fast",
		"":                   "",
		"a,b":                `"a,b"`,
		`say "hi"`:           `"say ""hi"""`,
		"line\nbreak":        "\"line\nbreak\"",
	} {
		if got := CSVField(in); got != want {
			t.Errorf("CSVField(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSnapshotCSVRoundTrip: a snapshot whose instrument names contain commas
// and quotes survives encoding/csv parsing with names and values intact.
func TestSnapshotCSVRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(`evil,counter`).Add(3)
	r.Gauge(`quo"gauge`).Set(9)
	r.Histogram(`h,ist`).Observe(5)
	out := r.Snapshot().CSV()

	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("snapshot CSV does not re-parse: %v", err)
	}
	got := map[string]string{}
	for _, rec := range recs[1:] {
		if len(rec) != 4 {
			t.Fatalf("row has %d fields, want 4: %v", len(rec), rec)
		}
		got[rec[0]+"|"+rec[1]+"|"+rec[2]] = rec[3]
	}
	for key, want := range map[string]string{
		`evil,counter|counter|count`: "3",
		`quo"gauge|gauge|cur`:        "9",
		`h,ist|histogram|count`:      "1",
		`h,ist|histogram|sum`:        "5",
	} {
		if got[key] != want {
			t.Errorf("row %q = %q, want %q (rows: %v)", key, got[key], want, got)
		}
	}
}
