// Package vm is the virtual-memory substrate for virtual buffering: per-node
// physical frame accounting and per-process address spaces with demand
// zero-fill page allocation, the model Glaze needs (the paper's Glaze
// supports no disk paging either — pages are allocated and zero-filled on
// demand, and the frame pool is the scarce resource the overflow-control
// mechanism protects).
package vm

import "fmt"

// PageWords is the page size in 32-bit words (4 KB pages).
const PageWords = 1024

// PageOf returns the virtual page number containing a word address.
func PageOf(addr uint64) uint64 { return addr / PageWords }

// Frames is one node's physical page-frame pool.
type Frames struct {
	total     int
	inUse     int
	highWater int
}

// NewFrames returns a pool of n physical frames.
func NewFrames(n int) *Frames {
	return &Frames{total: n}
}

// Total returns the pool size.
func (f *Frames) Total() int { return f.total }

// InUse returns currently allocated frames.
func (f *Frames) InUse() int { return f.inUse }

// Free returns currently available frames.
func (f *Frames) Free() int { return f.total - f.inUse }

// HighWater returns the lifetime maximum of InUse.
func (f *Frames) HighWater() int { return f.highWater }

// Withhold takes up to n free frames out of circulation (fault-injected
// frame starvation) and returns how many it actually took. Withheld frames
// count as in use, so overflow control sees the shrunken pool.
func (f *Frames) Withhold(n int) int {
	free := f.total - f.inUse
	if n > free {
		n = free
	}
	if n < 0 {
		n = 0
	}
	f.inUse += n
	if f.inUse > f.highWater {
		f.highWater = f.inUse
	}
	return n
}

// Unwithhold returns n previously withheld frames to the pool.
func (f *Frames) Unwithhold(n int) {
	if n > f.inUse {
		panic("vm: unwithholding more frames than are in use")
	}
	f.inUse -= n
}

// alloc takes one frame, reporting false when the pool is exhausted.
func (f *Frames) alloc() bool {
	if f.inUse >= f.total {
		return false
	}
	f.inUse++
	if f.inUse > f.highWater {
		f.highWater = f.inUse
	}
	return true
}

// release returns one frame to the pool.
func (f *Frames) release() {
	if f.inUse == 0 {
		panic("vm: releasing frame from empty pool")
	}
	f.inUse--
}

// page is one mapped virtual page with its backing storage.
type page struct {
	words []uint64
}

// Space is a process address space: a page table over the node's frame pool
// with zero-fill-on-demand semantics.
type Space struct {
	frames *Frames
	pages  map[uint64]*page

	faults    uint64 // demand allocations served
	denied    uint64 // allocations refused for lack of frames
	highWater int    // max pages simultaneously mapped in this space
}

// NewSpace returns an empty address space over the node's frame pool.
func NewSpace(frames *Frames) *Space {
	return &Space{frames: frames, pages: make(map[uint64]*page)}
}

// Mapped reports whether the page containing addr is resident.
func (s *Space) Mapped(addr uint64) bool {
	_, ok := s.pages[PageOf(addr)]
	return ok
}

// PagesMapped returns the number of resident pages.
func (s *Space) PagesMapped() int { return len(s.pages) }

// HighWater returns the lifetime maximum of PagesMapped.
func (s *Space) HighWater() int { return s.highWater }

// Faults returns how many demand allocations this space has taken.
func (s *Space) Faults() uint64 { return s.faults }

// Denied returns how many allocations failed for lack of physical frames.
func (s *Space) Denied() uint64 { return s.denied }

// Ensure makes the page containing addr resident. It returns faulted=true
// when a fresh zero-filled page was allocated (the caller charges fault
// service cycles) and ok=false when the node is out of physical frames (the
// caller invokes overflow control; the page is not mapped).
func (s *Space) Ensure(addr uint64) (faulted, ok bool) {
	vp := PageOf(addr)
	if _, resident := s.pages[vp]; resident {
		return false, true
	}
	if !s.frames.alloc() {
		s.denied++
		return true, false
	}
	s.pages[vp] = &page{words: make([]uint64, PageWords)}
	s.faults++
	if len(s.pages) > s.highWater {
		s.highWater = len(s.pages)
	}
	return true, true
}

// Read returns the word at addr. Reading an unmapped page is a protocol
// error in this simulator (software always Ensures first) and panics.
func (s *Space) Read(addr uint64) uint64 {
	p, ok := s.pages[PageOf(addr)]
	if !ok {
		panic(fmt.Sprintf("vm: read of unmapped address %#x", addr))
	}
	return p.words[addr%PageWords]
}

// Write stores a word at addr; the page must be resident.
func (s *Space) Write(addr uint64, v uint64) {
	p, ok := s.pages[PageOf(addr)]
	if !ok {
		panic(fmt.Sprintf("vm: write to unmapped address %#x", addr))
	}
	p.words[addr%PageWords] = v
}

// Unmap releases the page containing addr back to the frame pool. Unmapping
// a non-resident page is a no-op.
func (s *Space) Unmap(addr uint64) {
	vp := PageOf(addr)
	if _, ok := s.pages[vp]; !ok {
		return
	}
	delete(s.pages, vp)
	s.frames.release()
}

// Evict unmaps the page containing addr and returns its contents, for
// paging the frame out to backing store. Evicting a non-resident page
// returns nil.
func (s *Space) Evict(addr uint64) []uint64 {
	vp := PageOf(addr)
	p, ok := s.pages[vp]
	if !ok {
		return nil
	}
	delete(s.pages, vp)
	s.frames.release()
	return p.words
}

// Install maps the page containing addr with the given contents, for paging
// back in from backing store. It reports false when no frame is available.
// Installing over a resident page panics: the pager lost track.
func (s *Space) Install(addr uint64, words []uint64) bool {
	vp := PageOf(addr)
	if _, ok := s.pages[vp]; ok {
		panic(fmt.Sprintf("vm: install over resident page %#x", vp))
	}
	if len(words) != PageWords {
		panic("vm: install with wrong page size")
	}
	if !s.frames.alloc() {
		s.denied++
		return false
	}
	s.pages[vp] = &page{words: words}
	if len(s.pages) > s.highWater {
		s.highWater = len(s.pages)
	}
	return true
}

// Release unmaps every page (process teardown).
func (s *Space) Release() {
	n := len(s.pages)
	s.pages = make(map[uint64]*page)
	for i := 0; i < n; i++ {
		s.frames.release()
	}
}
