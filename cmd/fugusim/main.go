// Command fugusim regenerates the tables and figures of "Exploiting
// Two-Case Delivery for Fast Protected Messaging" (HPCA 1998) on the
// simulated FUGU machine.
//
// Usage:
//
//	fugusim list
//	fugusim run [flags] <experiment>... | all
//
// Experiments are discovered from the harness registry (`fugusim list`
// prints them). Sweep points and trials fan out across -j workers; results
// are deterministic regardless of the worker count, because every point is
// an independent simulated machine and results are assembled by point
// index, not completion order.
//
// Quick mode (default) scales workloads down so the whole suite runs in
// minutes; -full uses the paper's sizes. This command is the only place
// that prints tables — the harness itself just returns structured results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"fugu/internal/harness"
)

func main() {
	full := flag.Bool("full", false, "run the paper-scale workloads (slow)")
	trials := flag.Int("trials", 0, "trials per data point (default: 1 quick, 3 full)")
	seed := flag.Uint64("seed", 1, "base random seed (trial t runs at seed+t)")
	csvDir := flag.String("csv", "", "also write experiment data as CSV files into this directory")
	jobs := flag.Int("j", 0, "worker-pool size for sweep points (default: GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report each completed sweep point on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage:\n")
		fmt.Fprintf(os.Stderr, "  fugusim list\n")
		fmt.Fprintf(os.Stderr, "  fugusim run [flags] <experiment>... | all\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", harness.Names())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	var names []string
	switch flag.Arg(0) {
	case "list":
		list(os.Stdout)
		return
	case "run":
		// Flags may also follow the subcommand: `fugusim run -j 4 fig9`.
		flag.CommandLine.Parse(flag.Args()[1:])
		names = flag.Args()
	default:
		// Legacy spelling: `fugusim table4`, `fugusim all`.
		names = flag.Args()
	}
	if len(names) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	names = expandNames(names)

	opts := []harness.Option{harness.WithSeed(*seed), harness.WithParallelism(*jobs)}
	if *full {
		opts = append(opts, harness.WithFull(), harness.WithTrials(3))
	} else {
		opts = append(opts, harness.WithQuick(), harness.WithTrials(1))
	}
	if *trials > 0 {
		opts = append(opts, harness.WithTrials(*trials))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runner := &harness.Runner{}
	if *progress {
		runner.Progress = func(p harness.Progress) {
			status := "ok"
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "%s: %d/%d %s %s\n", p.Experiment, p.Done, p.Total, p.Label, status)
		}
	}

	for _, name := range names {
		exp, ok := harness.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "fugusim: unknown experiment %q (try `fugusim list`)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("== %s ==\n", exp.Name)
		res, err := runner.Run(ctx, exp, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: %s: %v\n", exp.Name, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		fmt.Printf("(%s took %.1fs)\n\n", exp.Name, time.Since(start).Seconds())
		if *csvDir != "" {
			if csv, ok := res.(harness.CSVer); ok {
				for file, content := range csv.CSVFiles() {
					if err := harness.WriteCSV(*csvDir, file, content); err != nil {
						fmt.Fprintf(os.Stderr, "fugusim: csv: %v\n", err)
						os.Exit(1)
					}
				}
			}
		}
	}
}

// list prints the registry.
func list(w *os.File) {
	for _, e := range harness.Experiments() {
		fmt.Fprintf(w, "%-10s %s\n", e.Name, e.Description)
	}
}

// expandNames resolves "all" and the legacy fig7/fig8 aliases (both are
// backed by the shared fig7and8 sweep), dropping duplicates.
func expandNames(names []string) []string {
	var out []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range names {
		switch n {
		case "all":
			for _, reg := range harness.Names() {
				add(reg)
			}
		case "fig7", "fig8":
			add("fig7and8")
		default:
			add(n)
		}
	}
	return out
}
