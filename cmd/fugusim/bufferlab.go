package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"fugu/internal/harness"
	"fugu/internal/telemetry"
)

// bufferlabCmd implements `fugusim bufferlab`: run the NI buffer-economics
// sweep — queue model × allocation policy × fault plan at equal total slots —
// with every crucible and timeline oracle enforced. Exit status 0 means every
// oracle passed AND at least one shared/DAMQ organization strictly beat the
// static FIFO on overflow rate (the economics claim the lab exists to test);
// 1 means an oracle violation or no dominance.
func bufferlabCmd(args []string) {
	fs := flag.NewFlagSet("bufferlab", flag.ExitOnError)
	common := registerCommon(fs)
	trials := fs.Int("trials", 3, "trials (seeds) per (queue, plan) pair")
	jobs := fs.Int("j", 0, "worker-pool size for sweep points (default: GOMAXPROCS)")
	csvDir := fs.String("csv", "", "also write the sweep as bufferlab.csv into this directory")
	listPts := fs.Bool("list", false, "list the sweep points and exit")
	progress := fs.Bool("progress", false, "report each completed sweep point on stderr")
	force := fs.Bool("force", false, "overwrite existing -metrics/-timeline artifact files")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fugusim bufferlab [flags]\n")
		fs.PrintDefaults()
	}
	if names := parseInterleaved(fs, args); len(names) != 0 {
		fs.Usage()
		os.Exit(2)
	}
	common.resolve()

	opts := append(common.harnessOptions(),
		harness.WithTrials(*trials), harness.WithParallelism(*jobs))
	if *listPts {
		_, pts, _, err := resolvePoint("bufferlab", -1, harness.NewOptions(opts...))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
			os.Exit(2)
		}
		listPoints(os.Stdout, pts)
		return
	}

	if err := common.vetArtifacts(*force, "bufferlab"); err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runner := &harness.Runner{}
	if *progress {
		runner.Progress = func(p harness.Progress) {
			status := "ok"
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "%s: %d/%d %s %s\n", p.Experiment, p.Done, p.Total, p.Label, status)
		}
	}
	if *common.metricsDir != "" {
		runner.OnMetrics = writeMetrics(*common.metricsDir, "bufferlab")
	}
	var tls []telemetry.LabeledTimeline
	common.timelineHook(runner, &tls)
	exp, _ := harness.Lookup("bufferlab")
	start := time.Now()
	res, err := runner.Run(ctx, exp, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: bufferlab: %v\n", err)
		os.Exit(1)
	}
	common.writeTimelines("bufferlab", tls)
	res.Print(os.Stdout)
	fmt.Printf("(bufferlab took %.1fs)\n", time.Since(start).Seconds())
	bres := res.(harness.BufferLabResult)
	if *csvDir != "" {
		for file, content := range bres.CSVFiles() {
			if err := harness.WriteCSV(*csvDir, file, content); err != nil {
				fmt.Fprintf(os.Stderr, "fugusim: csv: %v\n", err)
				os.Exit(1)
			}
		}
	}

	failed := false
	if problems := bres.Problems(); len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "fugusim: bufferlab: %d oracle violation(s)\n", len(problems))
		failed = true
	}
	if _, _, _, ok := bres.Dominance(); !ok {
		fmt.Fprintln(os.Stderr, "fugusim: bufferlab: no shared queue organization dominated the static FIFO on overflow rate")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
