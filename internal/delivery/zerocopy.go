package delivery

import (
	"fugu/internal/vm"
)

// ZeroCopyRemap is the page-remap zero-copy receive organization (after
// "Using Memory-Protection to Simplify Zero-copy Operations"): instead of
// copying a diverted message into a software buffer, the kernel pins a fresh
// physical frame, deposits the message in it once, and flips the page into
// the receiver's address space. The receive path pays a constant remap cost
// (map + TLB invalidate) regardless of message size, but every undelivered
// message holds an entire pinned frame — the memory-footprint tradeoff the
// paper's virtual buffering avoids. When the frame pool is exhausted the
// kernel falls back to a copying insert (Fallback in PushResult), so
// delivery remains guaranteed.
//
// The kernel's divert machinery (mismatch ISR, buffered mode, overflow
// control) is reused unchanged; only the second-case store differs.
type ZeroCopyRemap struct{}

// Name implements Policy.
func (ZeroCopyRemap) Name() string { return "zerocopy" }

// KernelBuffered implements Policy: zero-copy remap still diverts through
// the kernel; it changes how the diverted message is stored, not who stores
// it.
func (ZeroCopyRemap) KernelBuffered() bool { return true }

// HardwareDemux implements Policy.
func (ZeroCopyRemap) HardwareDemux() bool { return false }

// NewStore implements Policy.
func (ZeroCopyRemap) NewStore(frames *vm.Frames, p Params) Store {
	return &remapStore{
		space: vm.NewSpace(frames),
		costs: p.Costs,
	}
}

// remapEntry is one stored message: either a pinned page flipped into the
// receiver's space (vp valid) or a kernel copy taken when no frame was free
// (words valid).
type remapEntry struct {
	meta     MsgMeta
	vp       uint64   // virtual page holding the message, if pinned
	words    []uint64 // fallback copy, if the pool was exhausted
	fallback bool
	nwords   int
}

// remapStore holds messages one-per-pinned-page, FIFO.
type remapStore struct {
	space  *vm.Space
	costs  Costs
	queue  []remapEntry
	nextVp uint64 // next virtual page to flip a message into (never reused)

	fallbacks  uint64 // pushes that copied for lack of a free frame
	maxPending int
}

// Admit implements Store: the copy fallback guarantees delivery, so every
// message is admitted.
func (s *remapStore) Admit(nwords int) bool { return true }

// Push implements Store: pin a frame and flip it in, or copy when the pool
// is dry.
func (s *remapStore) Push(id uint64, words []uint64, sentAt, now uint64) PushResult {
	if len(words)+1 > vm.PageWords {
		panic("delivery: zero-copy message larger than a page")
	}
	meta := MsgMeta{ID: id, SentAt: sentAt, InsertedAt: now}
	var res PushResult
	vp := s.nextVp
	base := vp * vm.PageWords
	if _, ok := s.space.Ensure(base); ok {
		s.nextVp++
		s.space.Write(base, uint64(len(words)))
		for i, w := range words {
			s.space.Write(base+1+uint64(i), w)
		}
		s.queue = append(s.queue, remapEntry{meta: meta, vp: vp, nwords: len(words)})
	} else {
		// Frame pool exhausted: degrade to a copying insert into statically
		// allocated kernel memory so delivery still succeeds.
		cp := make([]uint64, len(words))
		copy(cp, words)
		s.queue = append(s.queue, remapEntry{meta: meta, words: cp, fallback: true, nwords: len(words)})
		s.fallbacks++
		res.Fallback = true
	}
	if len(s.queue) > s.maxPending {
		s.maxPending = len(s.queue)
	}
	return res
}

// InsertCost implements Store: a constant page flip, or the copying insert
// when the pool was dry.
func (s *remapStore) InsertCost(r PushResult) uint64 {
	if r.Fallback {
		return s.costs.InsertVMAlloc + s.costs.ExtraInsert
	}
	return s.costs.Remap + s.costs.ExtraInsert
}

// Pop implements Store: consuming a pinned message unmaps its page (TLB
// shootdown), releasing the frame.
func (s *remapStore) Pop() (MsgMeta, uint64) {
	if len(s.queue) == 0 {
		panic("delivery: pop from empty remap store")
	}
	e := s.queue[0]
	copy(s.queue, s.queue[1:])
	s.queue = s.queue[:len(s.queue)-1]
	if e.fallback {
		return e.meta, 0
	}
	s.space.Unmap(e.vp * vm.PageWords)
	return e.meta, s.costs.RemapRelease
}

// Empty implements Store.
func (s *remapStore) Empty() bool { return len(s.queue) == 0 }

// Pending implements Store.
func (s *remapStore) Pending() int { return len(s.queue) }

// HeadLen implements Store.
func (s *remapStore) HeadLen() int {
	return s.queue[0].nwords
}

// HeadWord implements Store.
func (s *remapStore) HeadWord(i int) uint64 {
	e := &s.queue[0]
	if e.fallback {
		return e.words[i]
	}
	return s.space.Read(e.vp*vm.PageWords + 1 + uint64(i))
}

// HeadID implements Store.
func (s *remapStore) HeadID() (uint64, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].meta.ID, true
}

// HeadSentAt implements Store.
func (s *remapStore) HeadSentAt() (uint64, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].meta.SentAt, true
}

// PendingIDs implements Store.
func (s *remapStore) PendingIDs() []uint64 {
	if len(s.queue) == 0 {
		return nil
	}
	ids := make([]uint64, len(s.queue))
	for i := range s.queue {
		ids[i] = s.queue[i].meta.ID
	}
	return ids
}

// PagesResident implements Store: every pending pinned message is one frame.
func (s *remapStore) PagesResident() int { return s.space.PagesMapped() }

// PagesHighWater implements Store.
func (s *remapStore) PagesHighWater() int { return s.space.HighWater() }

// VMAllocs implements Store: for zero-copy it counts copy fallbacks, the
// events where pinning failed.
func (s *remapStore) VMAllocs() uint64 { return s.fallbacks }

// MaxPending reports the high water of unconsumed messages (tests).
func (s *remapStore) MaxPending() int { return s.maxPending }
