// Command fugusim regenerates the tables and figures of "Exploiting
// Two-Case Delivery for Fast Protected Messaging" (HPCA 1998) on the
// simulated FUGU machine.
//
// Usage:
//
//	fugusim list
//	fugusim run [flags] <experiment>... | all
//	fugusim trace [flags] <experiment>
//	fugusim doctor [flags] <experiment>
//	fugusim explain [flags] <experiment>
//	fugusim crucible [flags]
//	fugusim bufferlab [flags]
//	fugusim watch [flags] <experiment>
//
// Experiments are discovered from the harness registry (`fugusim list`
// prints them). Sweep points and trials fan out across -j workers; results
// are deterministic regardless of the worker count, because every point is
// an independent simulated machine and results are assembled by point
// index, not completion order. Flags may appear before or after experiment
// names (`fugusim run fig9 -quick -metrics out/`).
//
// `run -metrics <dir>` writes each experiment's merged registry snapshot
// (every point machine's counters, gauges and histograms) as
// <experiment>.metrics.json and .csv. `trace` runs one sweep point serially
// with an event log installed and exports it as Chrome trace_event JSON
// (chrome://tracing, Perfetto) or JSON Lines. `doctor` replays one sweep
// point under the message-lifecycle span recorder and the liveness
// watchdog, then checks delivery invariants; a wedged run terminates with
// a diagnostic report (exit status 3) instead of hanging. `explain` replays
// one sweep point with the span recorder and the engine cost profiler and
// renders the latency anatomy: the per-stage dwell waterfall, dwell broken
// down by (policy, stage, cause), per-node and per-link heat, the slowest
// messages with their stage timelines, and the engine's own cost by
// schedule site (with `-folded` emitting flamegraph input). `crucible` runs
// the deterministic fault-injection sweep — every named fault plan across
// -trials seeds — and fails unless every delivery oracle passes and every
// second-case cause was forced at least once. `bufferlab` runs the NI
// buffer-economics sweep — queue model × allocation policy × fault plan at
// equal total slots (`-niq` selects a queue organization on any other
// subcommand) — and fails unless every oracle passes and a shared
// organization beats the static FIFO on overflow rate. `watch` replays one sweep
// point serially with interval sampling enabled and streams a live
// terminal dashboard (fast/buffered deliveries, queue depths, pinned
// pages, NACKs, per-node mode glyphs) as simulated time advances.
//
// `-timeline <dir>` (run, crucible, bench) enables the flight recorder on
// every point machine and writes each experiment's per-interval timelines
// as <experiment>.timeline.csv and .jsonl; `-timeline-every` tunes the
// sampling interval in simulated cycles.
//
// Quick mode (default) scales workloads down so the whole suite runs in
// minutes; -full uses the paper's sizes. This command is the only place
// that prints tables — the harness itself just returns structured results.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"fugu/internal/glaze"
	"fugu/internal/harness"
	"fugu/internal/metrics"
	"fugu/internal/spans"
	"fugu/internal/telemetry"
	"fugu/internal/trace"
)

func main() {
	common := registerCommon(flag.CommandLine)
	trials := flag.Int("trials", 0, "trials per data point (default: 1 quick, 3 full)")
	csvDir := flag.String("csv", "", "also write experiment data as CSV files into this directory")
	jobs := flag.Int("j", 0, "worker-pool size for sweep points (default: GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report each completed sweep point on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	force := flag.Bool("force", false, "overwrite existing -metrics/-timeline artifact files")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage:\n")
		fmt.Fprintf(os.Stderr, "  fugusim list\n")
		fmt.Fprintf(os.Stderr, "  fugusim run [flags] <experiment>... | all\n")
		fmt.Fprintf(os.Stderr, "  fugusim bench [flags]\n")
		fmt.Fprintf(os.Stderr, "  fugusim trace [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "  fugusim doctor [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "  fugusim explain [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "  fugusim crucible [flags]\n")
		fmt.Fprintf(os.Stderr, "  fugusim bufferlab [flags]\n")
		fmt.Fprintf(os.Stderr, "  fugusim watch [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", harness.Names())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	var names []string
	switch flag.Arg(0) {
	case "list":
		list(os.Stdout)
		return
	case "bench":
		benchCmd(flag.Args()[1:])
		return
	case "trace":
		traceCmd(flag.Args()[1:])
		return
	case "doctor":
		doctorCmd(flag.Args()[1:])
		return
	case "explain":
		explainCmd(flag.Args()[1:])
		return
	case "crucible":
		crucibleCmd(flag.Args()[1:])
		return
	case "bufferlab":
		bufferlabCmd(flag.Args()[1:])
		return
	case "watch":
		watchCmd(flag.Args()[1:])
		return
	case "run":
		// Flags may also follow the subcommand and the experiment names:
		// `fugusim run fig9 -quick -metrics out/`.
		names = parseInterleaved(flag.CommandLine, flag.Args()[1:])
	default:
		// Legacy spelling: `fugusim table4`, `fugusim all`.
		names = parseInterleaved(flag.CommandLine, flag.Args())
	}
	if len(names) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	common.resolve()
	names = expandNames(names)

	// Refuse clobbering -metrics/-timeline artifacts before the sweep, not
	// after: destroying the previous exports as the final act of a long run
	// is the worst order.
	if err := common.vetArtifacts(*force, names...); err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(2)
	}

	opts := append(common.harnessOptions(), harness.WithParallelism(*jobs))
	if *trials > 0 {
		opts = append(opts, harness.WithTrials(*trials))
	}

	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runner := &harness.Runner{}
	if *progress {
		runner.Progress = func(p harness.Progress) {
			status := "ok"
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "%s: %d/%d %s %s\n", p.Experiment, p.Done, p.Total, p.Label, status)
		}
	}

	for _, name := range names {
		exp, ok := harness.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "fugusim: unknown experiment %q (try `fugusim list`)\n", name)
			os.Exit(2)
		}
		if *common.metricsDir != "" {
			runner.OnMetrics = writeMetrics(*common.metricsDir, exp.Name)
		}
		var tls []telemetry.LabeledTimeline
		common.timelineHook(runner, &tls)
		start := time.Now()
		fmt.Printf("== %s ==\n", exp.Name)
		res, err := runner.Run(ctx, exp, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: %s: %v\n", exp.Name, err)
			os.Exit(1)
		}
		common.writeTimelines(exp.Name, tls)
		res.Print(os.Stdout)
		fmt.Printf("(%s took %.1fs)\n\n", exp.Name, time.Since(start).Seconds())
		if *csvDir != "" {
			if csv, ok := res.(harness.CSVer); ok {
				for file, content := range csv.CSVFiles() {
					if err := harness.WriteCSV(*csvDir, file, content); err != nil {
						fmt.Fprintf(os.Stderr, "fugusim: csv: %v\n", err)
						os.Exit(1)
					}
				}
			}
		}
		// Oracle-bearing experiments (crucible, policylab) report violations
		// through Problems; surface them as a failing exit so CI runs of
		// `fugusim run` enforce them, not just the dedicated subcommand.
		if pr, ok := res.(interface{ Problems() []string }); ok {
			if problems := pr.Problems(); len(problems) > 0 {
				fmt.Fprintf(os.Stderr, "fugusim: %s: %d oracle violation(s)\n",
					exp.Name, len(problems))
				os.Exit(1)
			}
		}
	}
}

// writeMetrics returns the Runner hook that saves an experiment's merged
// snapshot as <name>.metrics.json and <name>.metrics.csv under dir.
func writeMetrics(dir, name string) func(metrics.Snapshot) {
	return func(s metrics.Snapshot) {
		err := harness.WriteCSV(dir, name+".metrics.json", string(s.JSON()))
		if err == nil {
			err = harness.WriteCSV(dir, name+".metrics.csv", s.CSV())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// traceCmd implements `fugusim trace`: run one sweep point of an experiment
// serially with an event log installed, then export the timeline.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	common := registerCommon(fs)
	cats := fs.String("cats", "", "comma-separated categories to record (default all): mode,sched,overflow,message,span")
	out := fs.String("o", "-", "output path (- writes to stdout)")
	force := fs.Bool("force", false, "overwrite an existing -o output file")
	jsonl := fs.Bool("jsonl", false, "emit JSON Lines instead of Chrome trace_event JSON")
	point := fs.Int("point", 0, "sweep point index to trace (see -list)")
	listPts := fs.Bool("list", false, "list the experiment's sweep points and exit")
	capN := fs.Int("cap", 1<<16, "event ring capacity; oldest events beyond it are dropped")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fugusim trace [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", harness.Names())
		fs.PrintDefaults()
	}
	names := parseInterleaved(fs, args)
	if len(names) != 1 {
		fs.Usage()
		os.Exit(2)
	}
	common.resolve()

	enabled, err := trace.ParseCats(*cats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(2)
	}
	log := trace.New(*capN)
	log.Enable(enabled...)

	opts := append(common.harnessOptions(),
		harness.WithTrials(1), harness.WithParallelism(1), harness.WithTrace(log))
	opt := harness.NewOptions(opts...)
	exp, pts, sel, err := resolvePoint(names[0], pointIndex(*point, *listPts), opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(2)
	}
	if *listPts {
		listPoints(os.Stdout, pts)
		return
	}

	// Refuse a clobbering -o before the run, not after: destroying the
	// previous trace as the final act of a long replay is the worst order.
	if err := prepareOutputPath(*out, *force); err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	pt := *sel
	fmt.Fprintf(os.Stderr, "tracing %s point %d (%s)\n", exp.Name, *point, pt.Label)
	res, err := pt.Run(ctx, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %s (%s): %v\n", exp.Name, pt.Label, err)
		os.Exit(1)
	}
	if *common.metricsDir != "" {
		if mc, ok := res.(harness.MetricsCarrier); ok {
			writeMetrics(*common.metricsDir, exp.Name)(mc.MetricsSnapshot())
		}
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *jsonl {
		err = log.WriteJSONL(w)
	} else {
		err = log.WriteChromeTrace(w)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: trace export: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%d events recorded (%d retained, %d dropped)\n",
		log.Total(), log.Total()-log.Dropped(), log.Dropped())
}

// pointIndex turns a -list invocation into the sentinel index resolvePoint
// treats as "enumerate only".
func pointIndex(point int, listOnly bool) int {
	if listOnly {
		return -1
	}
	return point
}

// resolvePoint resolves the (experiment, sweep point) target shared by
// `fugusim trace` and `fugusim doctor`: look the experiment up, enumerate
// its sweep for the given options, and select the point by index. A
// negative index skips selection (the -list path wants the enumeration
// only) and returns a nil point.
func resolvePoint(name string, index int, opt harness.Options) (*harness.Experiment, []harness.Point, *harness.Point, error) {
	exp, ok := harness.Lookup(name)
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown experiment %q (try `fugusim list`)", name)
	}
	pts := exp.Points(opt)
	if index < 0 {
		return exp, pts, nil, nil
	}
	if index >= len(pts) {
		return exp, pts, nil, fmt.Errorf("point %d out of range (%s has %d points; see -list)",
			index, name, len(pts))
	}
	return exp, pts, &pts[index], nil
}

// listPoints prints a sweep enumeration, one indexed point per line.
func listPoints(w io.Writer, pts []harness.Point) {
	for i, pt := range pts {
		fmt.Fprintf(w, "%3d  %s\n", i, pt.Label)
	}
}

// doctorCmd implements `fugusim doctor`: replay one sweep point serially
// with the span recorder and liveness watchdog installed, then check the
// delivery invariants (every injected message reached exactly one terminal
// state, and span counts reconcile with the delivery counters). A watchdog
// firing prints the diagnostic report — per-node run-queue and buffer
// state, in-flight spans, the waits-for graph — and exits with status 3.
func doctorCmd(args []string) {
	fs := flag.NewFlagSet("doctor", flag.ExitOnError)
	common := registerCommon(fs)
	point := fs.Int("point", 0, "sweep point index to replay (see -list)")
	listPts := fs.Bool("list", false, "list the experiment's sweep points and exit")
	// The stall threshold (interval*grace) must exceed the longest healthy
	// quiet phase; the gang quantum is 500k cycles, and a descheduled job
	// legitimately makes no delivery progress for a whole quantum, so the
	// default threshold is two quanta.
	interval := fs.Uint64("interval", 200_000, "watchdog check interval in cycles")
	grace := fs.Int("grace", 5, "consecutive stale watchdog checks before firing (stall threshold = interval*grace)")
	out := fs.String("o", "-", "also write the report/diagnosis to this path (- means stdout only)")
	force := fs.Bool("force", false, "overwrite an existing -o report file")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fugusim doctor [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", harness.Names())
		fs.PrintDefaults()
	}
	names := parseInterleaved(fs, args)
	if len(names) != 1 {
		fs.Usage()
		os.Exit(2)
	}
	common.resolve()

	rec := spans.NewRecorder(nil)
	opts := append(common.harnessOptions(),
		harness.WithTrials(1), harness.WithParallelism(1), harness.WithSpans(rec),
		harness.WithWatchdog(glaze.WatchdogConfig{Interval: *interval, Grace: *grace}))
	opt := harness.NewOptions(opts...)
	exp, pts, sel, err := resolvePoint(names[0], pointIndex(*point, *listPts), opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(2)
	}
	if *listPts {
		listPoints(os.Stdout, pts)
		return
	}

	// Refuse a clobbering -o before the replay, not after: a long run that
	// ends by destroying the previous diagnosis is the worst failure order.
	if err := prepareOutputPath(*out, *force); err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	pt := *sel
	fmt.Fprintf(os.Stderr, "doctor: replaying %s point %d (%s) seed=%#x\n",
		exp.Name, *point, pt.Label, opt.Seed)
	res, err := pt.Run(ctx, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fugusim: %s (%s): %v\n", exp.Name, pt.Label, err)
		os.Exit(1)
	}

	emit := func(text string) {
		fmt.Print(text)
		if *out != "-" {
			if werr := os.WriteFile(*out, []byte(text), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "fugusim: %v\n", werr)
				os.Exit(1)
			}
		}
	}

	if rep := rec.Report(); rep != nil {
		emit(rep.String())
		fmt.Fprintf(os.Stderr, "doctor: watchdog fired — see report above\n")
		os.Exit(3)
	}

	var problems []string
	if mc, ok := res.(harness.MetricsCarrier); ok {
		snap := mc.MetricsSnapshot()
		if *common.metricsDir != "" {
			writeMetrics(*common.metricsDir, exp.Name)(snap)
		}
		problems = rec.Check(snap.Counters["glaze.deliver.fast"], snap.Counters["glaze.deliver.buffered"])
	} else {
		// No snapshot to reconcile against: still require terminal states.
		fmt.Fprintf(os.Stderr, "doctor: point result carries no metrics snapshot; span/metrics reconciliation skipped\n")
		problems = rec.Check(rec.Counts().Fast, rec.Counts().Inserts)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "doctor: %s point %d (%s) seed=%#x\n", exp.Name, *point, pt.Label, opt.Seed)
	fmt.Fprintf(&b, "%s\n", rec.Summary())
	if len(problems) == 0 {
		fmt.Fprintf(&b, "doctor: OK — all spans terminal, counts reconcile with delivery counters\n")
		emit(b.String())
		return
	}
	for _, p := range problems {
		fmt.Fprintf(&b, "PROBLEM: %s\n", p)
	}
	emit(b.String())
	os.Exit(1)
}

// prepareOutputPath vets a report destination before a long run: "-" (or
// empty) means stdout and needs nothing; otherwise the parent directory is
// created and an already-existing file is refused unless force is set, so a
// replay can never silently destroy the previous diagnosis.
func prepareOutputPath(path string, force bool) error {
	if path == "-" || path == "" {
		return nil
	}
	if _, err := os.Stat(path); err == nil {
		if !force {
			return fmt.Errorf("output file %s already exists (use -force to overwrite)", path)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		return os.MkdirAll(dir, 0o755)
	}
	return nil
}

// parseInterleaved parses flags that may appear before, between or after
// positional arguments; Go's flag package stops at the first positional, so
// re-parse the remainder each time one (or a run of them) is collected.
func parseInterleaved(fs *flag.FlagSet, args []string) []string {
	var names []string
	for {
		fs.Parse(args) // ExitOnError: a bad flag never returns
		args = fs.Args()
		i := 0
		for i < len(args) && !strings.HasPrefix(args[i], "-") {
			names = append(names, args[i])
			i++
		}
		if i == len(args) {
			return names
		}
		args = args[i:]
	}
}

// list prints the registry.
func list(w *os.File) {
	for _, e := range harness.Experiments() {
		fmt.Fprintf(w, "%-10s %s\n", e.Name, e.Description)
	}
}

// expandNames resolves "all" and the legacy fig7/fig8 aliases (both are
// backed by the shared fig7and8 sweep), dropping duplicates.
func expandNames(names []string) []string {
	var out []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range names {
		switch n {
		case "all":
			for _, reg := range harness.Names() {
				add(reg)
			}
		case "fig7", "fig8":
			add("fig7and8")
		default:
			add(n)
		}
	}
	return out
}
