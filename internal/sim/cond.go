package sim

// Cond is a FIFO wait queue for procs, the simulation analogue of a
// condition variable. Waiters park; Signal and Broadcast schedule wakes at
// the current time in arrival order, keeping runs deterministic.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns a condition queue bound to the engine.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait parks the calling proc until a Signal or Broadcast releases it.
// As with sync.Cond, callers re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting proc, if any, and reports whether one was
// woken.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	c.eng.Wake(p)
	return true
}

// Broadcast wakes all waiting procs in FIFO order and returns how many were
// woken.
func (c *Cond) Broadcast() int {
	n := len(c.waiters)
	for _, p := range c.waiters {
		c.eng.Wake(p)
	}
	c.waiters = c.waiters[:0]
	return n
}

// Waiters reports how many procs are parked on the cond.
func (c *Cond) Waiters() int { return len(c.waiters) }
