package harness

import (
	"context"
	"fmt"
	"io"

	"fugu/internal/cpu"
	"fugu/internal/crl"
	"fugu/internal/glaze"
	"fugu/internal/metrics"
	"fugu/internal/plot"
	"fugu/internal/telemetry"
	"fugu/internal/udm"
)

// crlStressOpsSweep is the sweep of per-node operation counts. It replicates
// the range the coherence stress property explores (ops = input%40 + 10) and
// includes the counts around the historical lost-request deadlock (ops >= 41
// at machine seed 0x9459729f43aff4c8), so `fugusim doctor -x crlstress` can
// replay exactly the schedules that wedge.
var crlStressOpsSweep = []int{10, 20, 30, 37, 41, 45}

// CRLStressRow is one sweep point's outcome.
type CRLStressRow struct {
	Ops       int    // write sections per node
	Completed bool   // all four mains finished within the cycle budget
	Total     uint64 // sum of the final region counters
	Expected  uint64 // 4*Ops — what coherent increments must add up to
	Cycles    uint64 // simulated time consumed
}

// CRLStressResult is the structured outcome of the crlstress experiment.
type CRLStressResult struct {
	Rows []CRLStressRow
}

// Print renders the sweep table.
func (r CRLStressResult) Print(w io.Writer) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		status := "ok"
		if !row.Completed {
			status = "WEDGED"
		} else if row.Total != row.Expected {
			status = "LOST UPDATES"
		}
		rows = append(rows, []string{
			fmt.Sprint(row.Ops), status, u(row.Total), u(row.Expected), u(row.Cycles),
		})
	}
	fmt.Fprintln(w, "CRL coherence stress: per-node random section workload on a 4-node machine")
	fmt.Fprintln(w, plot.Table([]string{"ops/node", "status", "total", "expected", "cycles"}, rows))
}

// crlStressPoint carries one row plus the machine's metrics snapshot and
// flight-recorder timeline.
type crlStressPoint struct {
	row  CRLStressRow
	snap metrics.Snapshot
	tl   telemetry.Timeline
}

// MetricsSnapshot implements MetricsCarrier for the Runner's metrics hook.
func (p crlStressPoint) MetricsSnapshot() metrics.Snapshot { return p.snap }

// TimelineData implements TimelineCarrier for the Runner's timeline hook.
func (p crlStressPoint) TimelineData() telemetry.Timeline { return p.tl }

// CRLStress runs the coherence stress sweep.
func CRLStress(opts ...Option) (CRLStressResult, error) {
	return runAs[CRLStressResult]("crlstress", opts...)
}

// RunCRLStressOnce executes a single stress point outside the sweep — the
// bench subcommand's protocol-heavy workload. It returns the row plus the
// machine's merged metrics snapshot (for event counts) and its
// flight-recorder timeline (empty unless telemetry is enabled in opts).
// Extra options layer over the quick single-trial defaults (the bench
// passes the policy).
func RunCRLStressOnce(ops int, seed uint64, opts ...Option) (CRLStressRow, metrics.Snapshot, telemetry.Timeline) {
	base := append([]Option{WithSeed(seed), WithTrials(1), WithQuick()}, opts...)
	p := runCRLStress(ops, NewOptions(base...))
	return p.row, p.snap, p.tl
}

// crlStressExperiment sweeps the CRL stress workload over per-node op
// counts. It exists for the doctor: the workload mixes fast-path
// request-reply traffic with buffered bulk data and has historically
// deadlocked at specific seeds, which makes it the natural target for span
// and liveness diagnosis.
func crlStressExperiment() *Experiment {
	return &Experiment{
		Name:        "crlstress",
		Description: "CRL coherence stress sweep (random sections, 4 nodes); doctor's deadlock testbed",
		Points: func(Options) []Point {
			pts := make([]Point, len(crlStressOpsSweep))
			for i, ops := range crlStressOpsSweep {
				ops := ops
				pts[i] = Point{
					Label: fmt.Sprintf("ops=%d", ops),
					Run: func(_ context.Context, opt Options) (any, error) {
						return runCRLStress(ops, opt), nil
					},
				}
			}
			return pts
		},
		Assemble: func(_ Options, results []any) (Result, error) {
			res := CRLStressResult{Rows: make([]CRLStressRow, len(results))}
			for i, r := range results {
				res.Rows[i] = r.(crlStressPoint).row
			}
			return res, nil
		},
	}
}

// runCRLStress executes one sweep point. The workload replicates the
// coherence stress property test operation for operation — same region
// count, same rng consumption order, same synchronization — so a machine
// seed that wedges the test wedges this point identically and the doctor
// can dissect it.
func runCRLStress(ops int, opt Options) crlStressPoint {
	const nodes, regions = 4, 3
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = nodes, 1
	cfg.Seed = opt.TrialSeed(0)
	if mut := opt.machineMut(nil); mut != nil {
		mut(&cfg)
	}
	m := glaze.NewMachine(cfg)
	job := m.NewJob("stress")
	crls := make([]*crl.Node, nodes)
	eps := make([]*udm.EP, nodes)
	for i := 0; i < nodes; i++ {
		eps[i] = udm.Attach(job.Process(i))
		crls[i] = crl.New(eps[i], nodes)
	}
	done := udm.NewCounter()
	eps[0].On(900, func(e *udm.Env, msg *udm.Msg) { done.Add(1) })
	final := make([]uint64, regions)
	startNode := func(node int) func(*cpu.Task) {
		return func(tk *cpu.Task) {
			c := crls[node]
			rgs := make([]*crl.Region, regions)
			for r := 0; r < regions; r++ {
				if r%nodes == node {
					rgs[r] = c.Create(crl.RegionID(r), 4)
				}
			}
			tk.Spend(2000)
			for r := 0; r < regions; r++ {
				if rgs[r] == nil {
					rgs[r] = c.Map(crl.RegionID(r), 4)
				}
			}
			rng := m.Eng.Rand()
			for i := 0; i < ops; i++ {
				rg := rgs[(node+i)%regions]
				if rng.Intn(4) == 0 {
					c.StartRead(tk, rg)
					_ = rg.Read(0)
					c.EndRead(tk, rg)
				}
				c.StartWrite(tk, rg)
				rg.Write(0, rg.Read(0)+1)
				c.EndWrite(tk, rg)
				tk.Spend(uint64(rng.Intn(400)) + 20)
			}
			if node == 0 {
				done.WaitFor(tk, uint64(nodes-1))
				for r := 0; r < regions; r++ {
					c.StartRead(tk, rgs[r])
					final[r] = rgs[r].Read(0)
					c.EndRead(tk, rgs[r])
				}
			} else {
				eps[node].Env(tk).Inject(0, 900)
			}
		}
	}
	for node := 0; node < nodes; node++ {
		job.Process(node).StartMain(startNode(node))
	}
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(2_000_000_000, job)
	if job.Done() {
		// Settle window: trailing protocol traffic (a flush the final reads
		// pulled, a queued grant) may still be in flight when the last main
		// exits; give it time to land so span accounting reaches terminal
		// states before the doctor's invariant checks.
		m.Eng.RunUntil(m.Eng.Now() + 20_000)
	}
	var total uint64
	for _, v := range final {
		total += v
	}
	return crlStressPoint{
		row: CRLStressRow{
			Ops:       ops,
			Completed: job.Done(),
			Total:     total,
			Expected:  uint64(nodes * ops),
			Cycles:    m.Eng.Now(),
		},
		tl:   m.FinishTelemetry(),
		snap: m.MetricsSnapshot(),
	}
}
