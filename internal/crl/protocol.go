package crl

import (
	"fmt"

	"fugu/internal/udm"
)

// dirMode is the home directory state for one region.
type dirMode int

const (
	modeShared    dirMode = iota // home copy valid; zero or more sharers
	modeExclusive                // exactly one owner holds the valid copy
)

type opKind int

const (
	opRead opKind = iota
	opWrite
)

type dirReq struct {
	op   opKind
	from int
}

// dirEntry is the per-region directory at the home node. Transactions are
// serialized: while one is in flight (busy), later requests queue.
type dirEntry struct {
	mode    dirMode
	owner   int
	sharers []bool

	busy        bool
	cur         dirReq
	pendingAcks int
	homeWait    bool // transaction deferred until the home's section closes
	queue       []dirReq
}

func newDirEntry(nodes int) *dirEntry {
	return &dirEntry{mode: modeExclusive, owner: -1, sharers: make([]bool, nodes)}
}

// registerHandlers installs the protocol message handlers on the endpoint.
func (n *Node) registerHandlers() {
	n.ep.On(hReadReq, func(e *udm.Env, m *udm.Msg) {
		n.homeRequest(e, dirReq{opRead, int(m.Args[1])}, RegionID(m.Args[0]))
	})
	n.ep.On(hWriteReq, func(e *udm.Env, m *udm.Msg) {
		n.homeRequest(e, dirReq{opWrite, int(m.Args[1])}, RegionID(m.Args[0]))
	})
	n.ep.On(hFlushReq, func(e *udm.Env, m *udm.Msg) {
		n.flushRequested(e, RegionID(m.Args[0]))
	})
	n.ep.On(hInvalidate, func(e *udm.Env, m *udm.Msg) {
		n.invalidated(e, RegionID(m.Args[0]))
	})
	n.ep.On(hInvAck, func(e *udm.Env, m *udm.Msg) {
		n.invAck(e, RegionID(m.Args[0]))
	})
	n.ep.On(hFlushData, func(e *udm.Env, m *udm.Msg) {
		n.flushData(e, RegionID(m.Args[0]), m.Args[1:])
	})
	n.ep.On(hReadReply, func(e *udm.Env, m *udm.Msg) {
		n.fillReply(RegionID(m.Args[0]), m.Args[1:], shared)
	})
	n.ep.On(hWriteReply, func(e *udm.Env, m *udm.Msg) {
		n.fillReply(RegionID(m.Args[0]), m.Args[1:], exclusive)
	})
}

// sendData ships a region's words to dst under the given handler id as one
// logical bulk transfer (the library fragments it over the wire, standing
// in for FUGU's DMA engine) with the region id as the leading word.
func (n *Node) sendData(e *udm.Env, dst int, handler uint64, id RegionID, data []uint64) {
	args := make([]uint64, 0, 1+len(data))
	args = append(args, uint64(id))
	args = append(args, data...)
	e.InjectBulk(dst, handler, args...)
}

// fillReply installs arriving region data at a requester.
func (n *Node) fillReply(id RegionID, args []uint64, to state) {
	r := n.regions[id]
	trace("rid=%d node=%d fillReply to=%d", id, n.self, to)
	if r == nil {
		panic(fmt.Sprintf("crl: reply for unmapped region %d", id))
	}
	copy(r.data, args)
	r.setState(to)
}

// ---------------------------------------------------------------------------
// Home-side transaction engine

// homeRequest queues or starts a coherence transaction at the home node.
func (n *Node) homeRequest(e *udm.Env, req dirReq, id RegionID) {
	d := n.dir[id]
	if d == nil {
		panic(fmt.Sprintf("crl: request for region %d at non-home node %d", id, n.self))
	}
	trace("t=%d rid=%d homeRequest op=%d from=%d busy=%v mode=%d owner=%d qlen=%d", e.Now(), id, req.op, req.from, d.busy, d.mode, d.owner, len(d.queue))
	if d.busy {
		d.queue = append(d.queue, req)
		return
	}
	n.startTxn(e, d, id, req)
}

// homeHoldsCopy reports whether the home's local copy is the authoritative
// one the transaction would need to touch.
func (n *Node) homeHoldsCopy(d *dirEntry) bool {
	return d.mode == modeShared || d.owner == -1 || d.owner == n.self
}

// homeSectionBlocks reports whether the home's open (or freshly granted,
// not yet used) sections prevent the transaction from touching the home
// copy right now.
func homeSectionBlocks(home *Region, op opKind) bool {
	if home.writing || home.grantInHand() {
		return true
	}
	return op == opWrite && home.readers > 0
}

// startTxn begins one transaction; if it must wait for remote flushes, acks
// or the home's own open section, it marks the entry busy and completion
// continues in the corresponding handler.
func (n *Node) startTxn(e *udm.Env, d *dirEntry, id RegionID, req dirReq) {
	home := n.regions[id]
	if req.from != n.self && n.homeHoldsCopy(d) && homeSectionBlocks(home, req.op) {
		// The home's own thread is inside a section: defer, exactly as a
		// remote sharer defers invalidation until its section closes.
		d.busy = true
		d.cur = req
		d.homeWait = true
		return
	}
	trace("t=%d rid=%d startTxn op=%d from=%d mode=%d owner=%d", e.Now(), id, req.op, req.from, d.mode, d.owner)
	switch req.op {
	case opRead:
		if d.mode == modeExclusive && d.owner != -1 && d.owner != n.self {
			d.busy = true
			d.cur = req
			e.Inject(d.owner, hFlushReq, uint64(id))
			return
		}
		// Home holds a valid copy (initially, after a flush, or in shared
		// mode): demote an exclusive home copy and grant.
		if d.mode == modeExclusive {
			d.mode = modeShared
			d.owner = -1
			clearSharers(d)
			d.sharers[n.self] = true
			if home.st == exclusive {
				home.setState(shared)
			}
		}
		n.grantRead(e, d, id, req.from)
	case opWrite:
		if d.mode == modeExclusive {
			if d.owner == req.from {
				panic(fmt.Sprintf("crl: write request from current owner %d for region %d", req.from, id))
			}
			if d.owner != -1 && d.owner != n.self {
				d.busy = true
				d.cur = req
				e.Inject(d.owner, hFlushReq, uint64(id))
				return
			}
			// Home owns it: surrender the home copy and grant.
			if home.st != invalid {
				home.setState(invalid)
			}
			n.grantWrite(e, d, id, req.from)
			return
		}
		// Shared: invalidate every sharer except the requester.
		acks := 0
		for node, has := range d.sharers {
			if !has || node == req.from {
				continue
			}
			if node == n.self {
				// The home invalidates its own copy inline; the deferral
				// check above guarantees no home section is open.
				home.setState(invalid)
				d.sharers[node] = false
				continue
			}
			e.Inject(node, hInvalidate, uint64(id))
			acks++
		}
		if acks > 0 {
			d.busy = true
			d.cur = req
			d.pendingAcks = acks
			return
		}
		n.grantWrite(e, d, id, req.from)
	}
}

func clearSharers(d *dirEntry) {
	for i := range d.sharers {
		d.sharers[i] = false
	}
}

// grantRead adds the requester as a sharer and sends it the data.
func (n *Node) grantRead(e *udm.Env, d *dirEntry, id RegionID, to int) {
	d.mode = modeShared
	d.sharers[n.self] = true // home copy is valid in shared mode
	d.sharers[to] = true
	home := n.regions[id]
	if home.st == invalid {
		home.setState(shared)
	}
	if to == n.self {
		if home.st == invalid {
			home.setState(shared)
		}
		n.pump(e, d, id)
		return
	}
	n.sendData(e, to, hReadReply, id, home.data)
	n.pump(e, d, id)
}

// grantWrite hands exclusive ownership (and the current data) to the
// requester.
func (n *Node) grantWrite(e *udm.Env, d *dirEntry, id RegionID, to int) {
	d.mode = modeExclusive
	d.owner = to
	clearSharers(d)
	home := n.regions[id]
	if to == n.self {
		home.setState(exclusive)
		n.pump(e, d, id)
		return
	}
	if home.st != invalid {
		home.setState(invalid)
	}
	n.sendData(e, to, hWriteReply, id, home.data)
	n.pump(e, d, id)
}

// pump starts the next queued transaction once the current one completes.
func (n *Node) pump(e *udm.Env, d *dirEntry, id RegionID) {
	d.busy = false
	for !d.busy && len(d.queue) > 0 {
		req := d.queue[0]
		copy(d.queue, d.queue[1:])
		d.queue = d.queue[:len(d.queue)-1]
		n.startTxn(e, d, id, req)
	}
}

// flushData receives the owner's dirty copy at the home, completing the
// flush phase of the current transaction.
func (n *Node) flushData(e *udm.Env, id RegionID, args []uint64) {
	d := n.dir[id]
	trace("t=%d rid=%d flushData cur.from=%d", e.Now(), id, d.cur.from)
	home := n.regions[id]
	copy(home.data, args)
	// The old owner is gone; home holds the only valid copy now.
	d.owner = -1
	d.mode = modeExclusive
	clearSharers(d)
	req := d.cur
	switch req.op {
	case opRead:
		d.mode = modeShared
		d.sharers[n.self] = true
		if home.st == invalid {
			home.setState(shared)
		}
		n.grantRead(e, d, id, req.from)
	case opWrite:
		n.grantWrite(e, d, id, req.from)
	}
}

// invAck collects invalidation acknowledgements at the home.
func (n *Node) invAck(e *udm.Env, id RegionID) {
	d := n.dir[id]
	d.pendingAcks--
	if d.pendingAcks > 0 {
		return
	}
	n.grantWrite(e, d, id, d.cur.from)
}

// ---------------------------------------------------------------------------
// Remote-side protocol handlers

// flushRequested: the home wants this node's exclusive copy back. If a
// write section is open the flush is deferred to EndWrite.
func (n *Node) flushRequested(e *udm.Env, id RegionID) {
	r := n.regions[id]
	trace("t=%d rid=%d node=%d flushRequested st=%d writing=%v readers=%d", e.Now(), id, n.self, r.st, r.writing, r.readers)
	if r == nil || r.st != exclusive {
		panic(fmt.Sprintf("crl: node %d: flush request for region %d not held exclusive (st=%d acq=%d writing=%v readers=%d invPending=%v flushPending=%v)",
			n.self, id, r.st, r.acq, r.writing, r.readers, r.invPending, r.flushPending))
	}
	if r.writing || r.readers > 0 || r.grantInHand() {
		r.flushPending = true
		return
	}
	r.setState(invalid)
	n.sendData(e, r.home, hFlushData, id, r.data)
}

// invalidated: the home is granting someone exclusive access; drop the
// shared copy, deferring if a read section is open.
func (n *Node) invalidated(e *udm.Env, id RegionID) {
	r := n.regions[id]
	if r == nil || r.st != shared {
		panic(fmt.Sprintf("crl: invalidate for region %d not held shared", id))
	}
	if r.readers > 0 || r.grantInHand() {
		r.invPending = true
		return
	}
	r.setState(invalid)
	e.Inject(r.home, hInvAck, uint64(id))
}

// Debug, when set, prints protocol traces (test diagnostics only).
var Debug bool

func trace(format string, args ...any) {
	if Debug {
		fmt.Printf("crl: "+format+"\n", args...)
	}
}
