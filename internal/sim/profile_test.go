package sim

import (
	"strings"
	"testing"
)

// Test sites are registered once at init, like real schedule sites.
var (
	testSiteA = NewSite("test.a")
	testSiteB = NewSite("test.b.deep")
)

// TestProfilerCycleConservation pins the simulated-cycle attribution rule:
// for a profiler attached at time 0 and never detached, the per-site cycles
// sum to exactly the engine's final time, whatever mix of labelled,
// unlabelled and proc-wake events fired.
func TestProfilerCycleConservation(t *testing.T) {
	e := NewEngine(1)
	p := NewProfiler(ProfilerConfig{})
	e.UseProfiler(p)

	e.ScheduleSite(testSiteA, 10, func() {})
	e.ScheduleSite(testSiteB, 25, func() {})
	e.Schedule(40, func() {}) // unlabelled: SiteMisc
	e.Spawn("sleeper", func(pr *Proc) {
		for i := 0; i < 5; i++ {
			pr.Sleep(7)
		}
	})
	end := e.Run()

	pr := p.Snapshot()
	if pr.Cycles != end {
		t.Errorf("per-site cycles sum to %d, engine finished at %d", pr.Cycles, end)
	}
	var sum uint64
	for _, s := range pr.Sites {
		sum += s.Cycles
	}
	if sum != pr.Cycles {
		t.Errorf("Profile.Cycles = %d but site rows sum to %d", pr.Cycles, sum)
	}
	// 3 scheduled events + the spawn dispatch + 5 sleep wakes.
	if pr.Events != 9 {
		t.Errorf("profile saw %d events, want 9", pr.Events)
	}
}

// TestProfilerSiteAttribution checks that events land on their labels: the
// two labelled schedules count under their sites, the plain one under
// SiteMisc, and the time advance ending at each event is charged to it.
func TestProfilerSiteAttribution(t *testing.T) {
	e := NewEngine(1)
	p := NewProfiler(ProfilerConfig{})
	e.UseProfiler(p)

	e.ScheduleSite(testSiteA, 10, func() {})
	e.ScheduleArgSite(testSiteB, 30, func(arg any) {}, nil)
	e.Schedule(35, func() {})
	e.Run()

	got := map[string]SiteProfile{}
	for _, s := range p.Snapshot().Sites {
		got[s.Name] = s
	}
	for name, want := range map[string]struct{ events, cycles uint64 }{
		"test.a":      {1, 10}, // 0 -> 10
		"test.b.deep": {1, 20}, // 10 -> 30
		"sim.misc":    {1, 5},  // 30 -> 35
	} {
		s, ok := got[name]
		if !ok {
			t.Fatalf("site %s missing from snapshot (got %v)", name, got)
		}
		if s.Events != want.events || s.Cycles != want.cycles {
			t.Errorf("site %s: events=%d cycles=%d, want events=%d cycles=%d",
				name, s.Events, s.Cycles, want.events, want.cycles)
		}
	}
}

// TestProfilerProcWakes checks wake attribution: a proc's wake events are
// charged to the proc's site, including the initial spawn dispatch that
// SetSite stamps retroactively.
func TestProfilerProcWakes(t *testing.T) {
	e := NewEngine(1)
	p := NewProfiler(ProfilerConfig{})
	e.UseProfiler(p)

	pr := e.Spawn("worker", func(pr *Proc) {
		pr.Sleep(3)
		pr.Sleep(4)
	})
	pr.SetSite(testSiteA)
	e.Run()

	for _, s := range p.Snapshot().Sites {
		if s.Name == "test.a" {
			// Spawn dispatch at 0 plus two sleep wakes.
			if s.Events != 3 || s.Cycles != 7 {
				t.Errorf("proc site: events=%d cycles=%d, want 3 events, 7 cycles", s.Events, s.Cycles)
			}
			return
		}
	}
	t.Fatal("proc wake site never appeared in the profile")
}

// TestProfilerReattach: a profiler reused across engines accumulates, and
// re-attachment re-baselines so each engine is charged only for its own run.
func TestProfilerReattach(t *testing.T) {
	p := NewProfiler(ProfilerConfig{})
	var total uint64
	for i := 0; i < 3; i++ {
		e := NewEngine(uint64(i + 1))
		e.UseProfiler(p)
		e.ScheduleSite(testSiteA, uint64(10*(i+1)), func() {})
		total += e.Run()
	}
	if got := p.Snapshot().Cycles; got != total {
		t.Errorf("profiler over 3 engines accumulated %d cycles, want %d", got, total)
	}
}

// TestProfilerFolded pins the folded-stacks rendering: dotted site names
// split into stack segments under the "sim" root, values are the
// deterministic simulated-cycle attribution, lines sorted.
func TestProfilerFolded(t *testing.T) {
	e := NewEngine(1)
	p := NewProfiler(ProfilerConfig{})
	e.UseProfiler(p)
	e.ScheduleSite(testSiteB, 8, func() {})
	e.ScheduleSite(testSiteA, 3, func() {})
	e.Run()

	var b strings.Builder
	p.Snapshot().WriteFolded(&b)
	want := "sim;test;a 3\nsim;test;b;deep 5\n"
	if b.String() != want {
		t.Errorf("folded output:\n%q\nwant:\n%q", b.String(), want)
	}
}

// TestNilProfilerAllocFree pins the disabled-path discipline: an engine with
// no profiler attached runs the schedule+fire cycle allocation-free, same
// as before the profiler existed.
func TestNilProfilerAllocFree(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	e.Schedule(1, fn) // warm the event pool
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(1, fn)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("schedule+fire with nil profiler allocates %v objects/op, want 0", allocs)
	}
}

// BenchmarkScheduleProfiled is BenchmarkSchedule with a cycles-only profiler
// attached — the overhead a `fugusim explain` replay pays per event.
func BenchmarkScheduleProfiled(b *testing.B) {
	e := NewEngine(1)
	e.UseProfiler(NewProfiler(ProfilerConfig{}))
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleSite(testSiteA, 1, fn)
		e.Run()
	}
}
