package niq

import (
	"fugu/internal/mesh"
)

// refQueue is the differential-testing reference: the same admission,
// reserve and presentation rules as the real implementations, written with
// the dumbest possible data structures — one slice per source, O(n) scans,
// every derived quantity recomputed from scratch on demand. Anything the
// linked-slot-pool implementation gets wrong shows up as a disagreement
// with this model under randomized schedules.
type refQueue struct {
	spec       Spec
	reserve    int
	borrowable int
	guaranteed bool
	fifo       bool

	lists    [][]refEntry
	seq      uint64
	bypassed int

	match  func(*mesh.Packet) bool
	kernel func(*mesh.Packet) bool
}

type refEntry struct {
	pkt *mesh.Packet
	seq uint64
	sys bool
}

func newRef(spec Spec, sources int) *refQueue {
	spec = spec.Normalize()
	if sources <= 0 {
		sources = 1
	}
	q := &refQueue{
		spec:       spec,
		guaranteed: spec.Model == ModelReserve,
		fifo:       spec.Model == ModelFIFO,
		lists:      make([][]refEntry, sources),
	}
	q.reserve, q.borrowable = Reserve(spec.Policy, spec.Slots, sources)
	return q
}

func (q *refQueue) bind(match, kernel func(*mesh.Packet) bool) {
	q.match, q.kernel = match, kernel
}

func (q *refQueue) lenAll() int {
	n := 0
	for _, l := range q.lists {
		n += len(l)
	}
	return n
}

// ulen recomputes the user-packet count of one source list.
func (q *refQueue) ulen(src int) int {
	n := 0
	for _, e := range q.lists[src] {
		if !e.sys {
			n++
		}
	}
	return n
}

// borrowed recomputes the user slots in use beyond their owners' reserves.
func (q *refQueue) borrowed() int {
	b := 0
	for s := range q.lists {
		if u := q.ulen(s); u > q.reserve {
			b += u - q.reserve
		}
	}
	return b
}

func (q *refQueue) admit(src int, sys bool) bool {
	if src < 0 || src >= len(q.lists) {
		return false
	}
	total := q.lenAll()
	if q.fifo {
		return total < q.spec.Slots
	}
	if sys {
		return total < q.spec.Slots
	}
	if q.guaranteed {
		return total < q.spec.Slots &&
			(q.ulen(src) < q.reserve || q.borrowed() < q.borrowable)
	}
	return total < q.spec.Slots && q.ulen(src) < q.reserve+q.borrowable
}

func (q *refQueue) push(pkt *mesh.Packet) {
	sys := !q.fifo && q.kernel != nil && q.kernel(pkt)
	q.lists[pkt.Src] = append(q.lists[pkt.Src], refEntry{pkt: pkt, seq: q.seq, sys: sys})
	q.seq++
}

// sel mirrors shared.sel: the oldest matching list head, bounded by the
// never-bypass-kernel rule and the bypass budget; the FIFO always presents
// the globally oldest.
func (q *refQueue) sel() (choice, oldest int) {
	choice, oldest = -1, -1
	var bestSeq, oldSeq uint64
	for s, l := range q.lists {
		if len(l) == 0 {
			continue
		}
		e := l[0]
		if oldest < 0 || e.seq < oldSeq {
			oldest, oldSeq = s, e.seq
		}
		if !q.fifo && q.match != nil && q.match(e.pkt) && (choice < 0 || e.seq < bestSeq) {
			choice, bestSeq = s, e.seq
		}
	}
	if oldest < 0 || choice < 0 || choice == oldest {
		return oldest, oldest
	}
	if q.kernel != nil && q.kernel(q.lists[oldest][0].pkt) {
		return oldest, oldest
	}
	if q.bypassed >= q.spec.BypassBudget {
		return oldest, oldest
	}
	return choice, oldest
}

func (q *refQueue) head() *mesh.Packet {
	choice, _ := q.sel()
	if choice < 0 {
		return nil
	}
	return q.lists[choice][0].pkt
}

func (q *refQueue) popHead() *mesh.Packet {
	choice, oldest := q.sel()
	if choice < 0 {
		return nil
	}
	e := q.lists[choice][0]
	q.lists[choice] = q.lists[choice][1:]
	if choice == oldest {
		q.bypassed = 0
	} else {
		q.bypassed++
	}
	return e.pkt
}
