// Latency anatomy: aggregation of per-stage dwell cycles over terminal
// spans. Where spans.Check answers "did every message terminate exactly
// once", the anatomy answers "where did a message's cycles go" — net-
// blocked vs queued vs buffered, broken down by delivery policy and by the
// cause that moved the message into each stage — plus per-node / per-link
// heat and a bounded table of the slowest messages with their full stage
// timelines. Everything here is fed by Recorder.End, so it shares the
// recorder's cost discipline: nothing simulated is charged, and a nil
// recorder aggregates nothing.

package spans

import (
	"math"
	"math/bits"
	"sort"
)

// TopK bounds the slowest-message table a recorder retains.
const TopK = 32

// DwellHist is a 65-bucket log2 histogram of dwell cycles, the same
// bucketing as internal/metrics (value v lands in bucket bits.Len64(v)),
// but with exported quantile access for report rendering.
type DwellHist struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [65]uint64
}

// Observe adds one dwell sample.
func (h *DwellHist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bits.Len64(v)]++
}

// Quantile returns the log2 upper bound of the bucket containing the q-th
// sample (q in [0,1]), 0 for an empty histogram. Like the metrics
// exporters, quantiles are bucket upper bounds, not interpolations.
func (h *DwellHist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen >= rank {
			return dwellBound(i)
		}
	}
	return dwellBound(64)
}

// dwellBound is the inclusive upper bound of log2 bucket i.
func dwellBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return (uint64(1) << uint(i)) - 1
}

// anatomyKey buckets dwell observations: one histogram per (delivery
// policy, pipeline stage, stage-entry cause).
type anatomyKey struct {
	policy string
	stage  Stage
	cause  string
}

// NodeHeat aggregates dwell by destination node: how long messages bound
// for this node spent in each stage.
type NodeHeat struct {
	Node  int
	Count uint64
	Dwell [NumStages]uint64
}

// LinkHeat aggregates end-to-end latency by (src, dst) pair.
type LinkHeat struct {
	Src, Dst int
	Count    uint64
	Latency  uint64 // summed end-to-end cycles
}

type linkKey struct{ src, dst int }

// anatomy is the recorder-internal aggregation state.
type anatomy struct {
	policy string

	hists      map[anatomyKey]*DwellHist
	stageHists [NumStages]DwellHist // merged across policy and cause
	stageDwell [NumStages]uint64    // total dwell per stage, terminal spans
	latencySum uint64
	terminated uint64

	nodes map[int]*NodeHeat
	links map[linkKey]*LinkHeat

	slowest []Span // latency desc, at most TopK entries
}

func (a *anatomy) dwellTotal() uint64 {
	var sum uint64
	for _, d := range a.stageDwell {
		sum += d
	}
	return sum
}

// observe folds a just-terminated span into the aggregates. Called from
// Recorder.End after the final dwell is closed.
func (a *anatomy) observe(s *Span) {
	a.terminated++
	a.latencySum += s.Latency()

	var visited uint8
	for _, ev := range s.History() {
		if visited&(1<<ev.Stage) != 0 {
			continue // anomalous stage revisit: dwell already aggregated
		}
		visited |= 1 << ev.Stage
		a.stageDwell[ev.Stage] += s.Dwell[ev.Stage]
		a.stageHists[ev.Stage].Observe(s.Dwell[ev.Stage])
		k := anatomyKey{a.policy, ev.Stage, ev.Cause}
		if a.hists == nil {
			a.hists = make(map[anatomyKey]*DwellHist)
		}
		h := a.hists[k]
		if h == nil {
			h = &DwellHist{}
			a.hists[k] = h
		}
		h.Observe(s.Dwell[ev.Stage])
	}

	if a.nodes == nil {
		a.nodes = make(map[int]*NodeHeat)
	}
	nh := a.nodes[s.Dst]
	if nh == nil {
		nh = &NodeHeat{Node: s.Dst}
		a.nodes[s.Dst] = nh
	}
	nh.Count++
	for st, d := range s.Dwell {
		nh.Dwell[st] += d
	}

	if a.links == nil {
		a.links = make(map[linkKey]*LinkHeat)
	}
	lk := linkKey{s.Src, s.Dst}
	lh := a.links[lk]
	if lh == nil {
		lh = &LinkHeat{Src: s.Src, Dst: s.Dst}
		a.links[lk] = lh
	}
	lh.Count++
	lh.Latency += s.Latency()

	a.noteSlow(s)
}

// noteSlow maintains the bounded slowest-span table: sorted by latency
// descending, ties broken by (epoch, id) so the table is deterministic.
func (a *anatomy) noteSlow(s *Span) {
	lat := s.Latency()
	if len(a.slowest) == TopK {
		last := &a.slowest[TopK-1]
		if lat < last.Latency() || (lat == last.Latency() && !beforeSpan(s, last)) {
			return
		}
	}
	i := sort.Search(len(a.slowest), func(i int) bool {
		o := &a.slowest[i]
		if o.Latency() != lat {
			return o.Latency() < lat
		}
		return beforeSpan(s, o)
	})
	if len(a.slowest) < TopK {
		a.slowest = append(a.slowest, Span{})
	}
	copy(a.slowest[i+1:], a.slowest[i:])
	a.slowest[i] = *s
}

func beforeSpan(a, b *Span) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	return a.ID < b.ID
}

// AnatomyRow is one rendered dwell-histogram bucket of the anatomy:
// dwell statistics for spans that entered stage via cause under policy.
type AnatomyRow struct {
	Policy string
	Stage  Stage
	Cause  string
	Count  uint64
	Sum    uint64
	Max    uint64
	P50    uint64
	P90    uint64
	P99    uint64
}

// Anatomy returns the per-(policy, stage, cause) dwell rows, sorted by
// (policy, stage, cause).
func (r *Recorder) Anatomy() []AnatomyRow {
	if r == nil || r.anatomy.hists == nil {
		return nil
	}
	out := make([]AnatomyRow, 0, len(r.anatomy.hists))
	for k, h := range r.anatomy.hists {
		out = append(out, AnatomyRow{
			Policy: k.policy, Stage: k.stage, Cause: k.cause,
			Count: h.Count, Sum: h.Sum, Max: h.Max,
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Policy != out[j].Policy {
			return out[i].Policy < out[j].Policy
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// StageHist returns the dwell histogram of one stage merged across
// policies and causes (only spans that visited the stage contribute).
func (r *Recorder) StageHist(st Stage) DwellHist {
	if r == nil || st >= NumStages {
		return DwellHist{}
	}
	return r.anatomy.stageHists[st]
}

// StageDwellTotals returns the cumulative dwell cycles per stage over all
// terminal spans — the running totals the telemetry recorder samples to
// show dwell drift over time.
func (r *Recorder) StageDwellTotals() [NumStages]uint64 {
	if r == nil {
		return [NumStages]uint64{}
	}
	return r.anatomy.stageDwell
}

// LatencyTotal returns the summed end-to-end latency of terminal spans;
// by the conservation invariant it equals the sum of StageDwellTotals.
func (r *Recorder) LatencyTotal() uint64 {
	if r == nil {
		return 0
	}
	return r.anatomy.latencySum
}

// Terminated returns how many spans the anatomy has aggregated.
func (r *Recorder) Terminated() uint64 {
	if r == nil {
		return 0
	}
	return r.anatomy.terminated
}

// Slowest returns copies of the k slowest terminal spans (latency
// descending, deterministic tie-break); k > TopK is clamped.
func (r *Recorder) Slowest(k int) []Span {
	if r == nil || k <= 0 {
		return nil
	}
	if k > len(r.anatomy.slowest) {
		k = len(r.anatomy.slowest)
	}
	return append([]Span(nil), r.anatomy.slowest[:k]...)
}

// NodeHeats returns the per-destination-node dwell aggregates, sorted by
// node index.
func (r *Recorder) NodeHeats() []NodeHeat {
	if r == nil || r.anatomy.nodes == nil {
		return nil
	}
	out := make([]NodeHeat, 0, len(r.anatomy.nodes))
	for _, nh := range r.anatomy.nodes {
		out = append(out, *nh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// LinkHeats returns the per-(src, dst) latency aggregates, hottest first
// (by summed latency, ties by (src, dst)).
func (r *Recorder) LinkHeats() []LinkHeat {
	if r == nil || r.anatomy.links == nil {
		return nil
	}
	out := make([]LinkHeat, 0, len(r.anatomy.links))
	for _, lh := range r.anatomy.links {
		out = append(out, *lh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Latency != out[j].Latency {
			return out[i].Latency > out[j].Latency
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}
