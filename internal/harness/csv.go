package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"fugu/internal/plot"
)

// CSV renders the Table 4 cost-model rows and measurements.
func (r Table4Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows)+2)
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Item, u(row.Kernel), u(row.Hard), u(row.Soft)})
	}
	rows = append(rows,
		[]string{"measured interrupt total", u(r.MeasuredIntr[0]), u(r.MeasuredIntr[1]), u(r.MeasuredIntr[2])},
		[]string{"measured polling total", u(r.MeasuredPoll[0]), u(r.MeasuredPoll[1]), u(r.MeasuredPoll[2])})
	return plot.CSV([]string{"item", "kernel", "hard_atomicity", "soft_atomicity"}, rows)
}

// CSVFiles implements CSVer.
func (r Table4Result) CSVFiles() map[string]string {
	return map[string]string{"table4.csv": r.CSV()}
}

// CSV renders the Table 5 buffered-path measurements.
func (r Table5Result) CSV() string {
	return plot.CSV([]string{"item", "configured", "measured"}, [][]string{
		{"buffer_insert_min", u(r.InsertMin), f1(r.MeasuredInsertMean)},
		{"buffer_insert_vmalloc", u(r.InsertVMAlloc), fmt.Sprintf("%d/%d", r.VMAllocs, r.Inserts)},
		{"buffered_null_handler", u(r.Extract), f1(r.MeasuredExtractMean)},
	})
}

// CSVFiles implements CSVer.
func (r Table5Result) CSVFiles() map[string]string {
	return map[string]string{"table5.csv": r.CSV()}
}

// CSV renders the Table 6 characterization as comma-separated values.
func (r Table6Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.App, row.Model, u(row.Runtime), u(row.Msgs),
			fmt.Sprintf("%.1f", row.TBetw), fmt.Sprintf("%.1f", row.THand),
			errStr(row.Err),
		})
	}
	return plot.CSV([]string{"app", "model", "cycles", "msgs", "t_betw", "t_hand", "check"}, rows)
}

// CSVFiles implements CSVer.
func (r Table6Result) CSVFiles() map[string]string {
	return map[string]string{"table6.csv": r.CSV()}
}

// CSV7 renders the Figure 7 sweep (buffered fraction and buffer pages).
func (r Fig78Result) CSV7() string {
	var rows [][]string
	for _, app := range r.Apps {
		for i, skew := range r.Skews {
			run := r.Runs[app][i]
			rows = append(rows, []string{
				app, fmt.Sprintf("%.3f", skew),
				fmt.Sprintf("%.4f", run.BufferedPct),
				u(run.Buffered), u(run.Msgs),
				fmt.Sprintf("%d", run.MaxBufferPages),
			})
		}
	}
	return plot.CSV([]string{"app", "skew", "buffered_pct", "buffered", "msgs", "max_pages"}, rows)
}

// CSV8 renders the Figure 8 sweep (relative runtimes).
func (r Fig78Result) CSV8() string {
	var rows [][]string
	for _, app := range r.Apps {
		base := float64(r.Runs[app][0].Runtime)
		for i, skew := range r.Skews {
			rows = append(rows, []string{
				app, fmt.Sprintf("%.3f", skew),
				fmt.Sprintf("%.4f", float64(r.Runs[app][i].Runtime)/base),
				u(r.Runs[app][i].Runtime),
			})
		}
	}
	return plot.CSV([]string{"app", "skew", "relative_runtime", "runtime_cycles"}, rows)
}

// CSVFiles implements CSVer: the shared sweep backs both figures' files.
func (r Fig78Result) CSVFiles() map[string]string {
	return map[string]string{"fig7.csv": r.CSV7(), "fig8.csv": r.CSV8()}
}

// CSV renders the Figure 9 sweep.
func (r Fig9Result) CSV() string {
	var rows [][]string
	for i, n := range r.Ns {
		for j, tb := range r.TBetws {
			rows = append(rows, []string{
				fmt.Sprintf("synth-%d", n), u(tb),
				fmt.Sprintf("%.4f", r.Pct[i][j]),
			})
		}
	}
	return plot.CSV([]string{"app", "t_betw", "buffered_pct"}, rows)
}

// CSVFiles implements CSVer.
func (r Fig9Result) CSVFiles() map[string]string {
	return map[string]string{"fig9.csv": r.CSV()}
}

// CSV renders the Figure 10 sweep.
func (r Fig10Result) CSV() string {
	var rows [][]string
	for i, n := range r.Ns {
		for j, x := range r.Extra {
			rows = append(rows, []string{
				fmt.Sprintf("synth-%d", n), u(x),
				fmt.Sprintf("%.4f", r.Pct[i][j]),
			})
		}
	}
	return plot.CSV([]string{"app", "extra_insert_cost", "buffered_pct"}, rows)
}

// CSVFiles implements CSVer.
func (r Fig10Result) CSVFiles() map[string]string {
	return map[string]string{"fig10.csv": r.CSV()}
}

// WriteCSV saves content under dir/name, creating dir as needed.
func WriteCSV(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}
