package harness

import (
	"reflect"
	"testing"
)

// smallBigMesh is the test-sized workload: big enough that every partition
// owns hundreds of nodes and the windows stage real cross-partition
// traffic, small enough for every `go test` cycle.
func smallBigMesh(parts int) BigMeshConfig {
	cfg := DefaultBigMesh(true)
	cfg.W, cfg.H, cfg.Msgs = 16, 16, 20
	cfg.Parts = parts
	return cfg
}

// TestBigMeshDeterminism pins the parallel driver's contract on a
// partition-clean model: every observable — end time, event count,
// deliveries, the latency sum, even the largest drain batch — is identical
// whether the 16x16 mesh runs on one engine or sharded across 2 or 4
// parallel partitions with conservative lookahead windows.
func TestBigMeshDeterminism(t *testing.T) {
	serial, err := RunBigMesh(smallBigMesh(1))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Refused != 0 {
		t.Fatalf("default config must be refusal-free, got %d refusals", serial.Refused)
	}
	if serial.MaxBatch < 2 {
		t.Errorf("max drain batch %d: workload never coalesced same-cycle arrivals, batching untested", serial.MaxBatch)
	}
	for _, parts := range []int{2, 4} {
		got, err := RunBigMesh(smallBigMesh(parts))
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if got.Barriers == 0 || got.Staged == 0 {
			t.Errorf("parts=%d: barriers=%d staged=%d — parallel driver never engaged",
				parts, got.Barriers, got.Staged)
		}
		// Barriers/Staged describe the driver, not the simulation; blank
		// them before comparing the simulation observables.
		got.Barriers, got.Staged = 0, 0
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("parts=%d diverges from serial:\n  serial %+v\n  parts  %+v", parts, serial, got)
		}
	}
}

// TestBigMeshRepeatable: two runs at the same partition count are
// identical (the parallel windows introduce no scheduling nondeterminism).
func TestBigMeshRepeatable(t *testing.T) {
	a, err := RunBigMesh(smallBigMesh(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBigMesh(smallBigMesh(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two parts=4 runs diverge:\n  a %+v\n  b %+v", a, b)
	}
}
