package trace

import (
	"strings"
	"testing"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(1, 0, Mode, "ignored")
	if l.Enabled(Mode) {
		t.Error("nil log claims enabled")
	}
	if l.Total() != 0 || l.Events() != nil {
		t.Error("nil log recorded something")
	}
}

func TestDisabledCategoryDropped(t *testing.T) {
	l := New(8)
	l.Enable(Mode)
	l.Add(1, 0, Mode, "kept")
	l.Add(2, 0, Sched, "dropped")
	evs := l.Events()
	if len(evs) != 1 || evs[0].What != "kept" {
		t.Errorf("events = %v", evs)
	}
}

func TestRingKeepsNewest(t *testing.T) {
	l := New(3)
	l.EnableAll()
	for i := 0; i < 10; i++ {
		l.Add(uint64(i), 0, Mode, "e%d", i)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	want := []string{"e7", "e8", "e9"}
	for i, w := range want {
		if evs[i].What != w {
			t.Errorf("evs[%d] = %s, want %s", i, evs[i].What, w)
		}
	}
	if l.Total() != 10 {
		t.Errorf("total = %d, want 10", l.Total())
	}
}

func TestDumpMentionsDropped(t *testing.T) {
	l := New(2)
	l.EnableAll()
	for i := 0; i < 5; i++ {
		l.Add(uint64(i), 1, Overflow, "x")
	}
	d := l.Dump()
	if !strings.Contains(d, "3 earlier events dropped") {
		t.Errorf("dump = %q", d)
	}
	if !strings.Contains(d, "overflow") {
		t.Error("dump missing category name")
	}
}

func TestExactCapacityKeepsAllInOrder(t *testing.T) {
	// Filling the ring to exactly its capacity must retain every event in
	// chronological order with nothing counted as dropped.
	const n = 4
	l := New(n)
	l.EnableAll()
	for i := 0; i < n; i++ {
		l.Add(uint64(i), 0, Mode, "e%d", i)
	}
	evs := l.Events()
	if len(evs) != n {
		t.Fatalf("retained %d, want %d", len(evs), n)
	}
	for i, e := range evs {
		if e.At != uint64(i) {
			t.Errorf("evs[%d].At = %d, want %d", i, e.At, i)
		}
	}
	if l.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", l.Dropped())
	}
	if strings.Contains(l.Dump(), "dropped") {
		t.Errorf("Dump claims drops at exact capacity:\n%s", l.Dump())
	}
}

func TestOneOverCapacityDropsExactlyOldest(t *testing.T) {
	// One event past capacity must drop exactly the oldest event and
	// account for exactly one drop in Dump.
	const n = 4
	l := New(n)
	l.EnableAll()
	for i := 0; i <= n; i++ {
		l.Add(uint64(i), 0, Sched, "e%d", i)
	}
	evs := l.Events()
	if len(evs) != n {
		t.Fatalf("retained %d, want %d", len(evs), n)
	}
	if evs[0].What != "e1" || evs[n-1].What != "e4" {
		t.Errorf("window = [%s .. %s], want [e1 .. e4]", evs[0].What, evs[n-1].What)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At <= evs[i-1].At {
			t.Errorf("out of order at %d: %v", i, evs)
		}
	}
	if l.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", l.Dropped())
	}
	if !strings.Contains(l.Dump(), "(1 earlier events dropped)") {
		t.Errorf("dump = %q", l.Dump())
	}
}

func TestChronologicalOrderBeforeWrap(t *testing.T) {
	l := New(10)
	l.EnableAll()
	l.Add(5, 0, Mode, "a")
	l.Add(6, 1, Sched, "b")
	evs := l.Events()
	if len(evs) != 2 || evs[0].What != "a" || evs[1].What != "b" {
		t.Errorf("events = %v", evs)
	}
	if evs[1].Node != 1 {
		t.Error("node lost")
	}
}
