package sim

import "testing"

// The benchmarks below pin the engine's hot paths. The headline property is
// the allocs/op column: once the event pool is warm, schedule+fire,
// schedule+cancel and the wake/sleep paths must all run allocation-free —
// the Event structs recycle through the free list and proc wakes ride the
// event's proc field instead of a closure.

// BenchmarkSchedule measures the schedule+fire cycle: one event scheduled
// and run to completion per iteration.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, fn)
		e.Run()
	}
}

// BenchmarkScheduleCancel measures the schedule+cancel cycle, the pattern of
// re-armed timeouts (the NI atomicity timer, preemptible sleeps).
func BenchmarkScheduleCancel(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.Schedule(100, fn)
		e.Cancel(h)
	}
}

// BenchmarkScheduleWake measures the proc wake path: a single proc sleeping
// one cycle at a time. With the park fast path this resumes inline, without
// any channel handoff, and the proc-carrying wake event allocates nothing.
func BenchmarkScheduleWake(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkBatonRoundTrip measures a cross-proc switch: two procs waking
// each other alternately, the pattern the baton protocol pays goroutine
// handoffs for (a parking proc dispatches the next one directly).
func BenchmarkBatonRoundTrip(b *testing.B) {
	e := NewEngine(1)
	var pa, pb *Proc
	pa = e.Spawn("ping", func(p *Proc) {
		// Let pong consume its spawn dispatch and park before the first wake.
		p.Yield()
		for i := 0; i < b.N; i++ {
			e.Wake(pb)
			p.Park()
		}
		e.Stop()
	})
	pb = e.Spawn("pong", func(p *Proc) {
		for {
			p.Park()
			if e.Stopped() {
				return
			}
			e.Wake(pa)
		}
	})
	_ = pa
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkHeapChurn measures cancel+reschedule against a deep queue: the
// 4-ary heap's middle-removal and insert with ~1k events pending.
func BenchmarkHeapChurn(b *testing.B) {
	e := NewEngine(7)
	fn := func() {}
	const pending = 1024
	hs := make([]Handle, pending)
	for i := range hs {
		hs[i] = e.Schedule(1_000_000+e.Rand().Uint64n(1_000_000), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % pending
		e.Cancel(hs[j])
		hs[j] = e.Schedule(1_000_000+e.Rand().Uint64n(1_000_000), fn)
	}
}
