package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Categories returns every event category in declaration order.
func Categories() []Category {
	cats := make([]Category, 0, int(numCategories))
	for c := Category(0); c < numCategories; c++ {
		cats = append(cats, c)
	}
	return cats
}

// ParseCats resolves a comma-separated category list ("mode,sched") to
// categories. An empty string selects every category.
func ParseCats(s string) ([]Category, error) {
	if strings.TrimSpace(s) == "" {
		return Categories(), nil
	}
	var out []Category
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		found := false
		for _, c := range Categories() {
			if c.String() == part {
				out = append(out, c)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("trace: unknown category %q (have %v)", part, Categories())
		}
	}
	return out, nil
}

// chromeEvent is one entry of the Chrome trace_event format ("JSON Object
// Format" with a traceEvents array), loadable in chrome://tracing and
// Perfetto. Simulated cycles are reported as microseconds — both viewers
// treat ts as a unitless microsecond axis, so one tick reads as one cycle.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    uint64            `json:"ts"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders the retained events as Chrome trace_event JSON.
// Every simulated node becomes a "process" and every category a "thread"
// within it, so the viewer groups a node's mode transitions, scheduling and
// overflow activity into adjacent tracks. Events are instants (phase "i",
// thread scope); the dropped-event count, if any, is recorded as a metadata
// instant at the start of the retained window.
func (l *Log) WriteChromeTrace(w io.Writer) error {
	evs := l.Events()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(evs)+8)}

	// Name the tracks: seen (node, cat) pairs become labelled pid/tid rows.
	type track struct{ node, cat int }
	seen := map[track]bool{}
	for _, e := range evs {
		tr := track{e.Node, int(e.Cat)}
		if seen[tr] {
			continue
		}
		seen[tr] = true
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: "process_name", Phase: "M", PID: e.Node,
				Args: map[string]string{"name": fmt.Sprintf("node %d", e.Node)}},
			chromeEvent{Name: "thread_name", Phase: "M", PID: e.Node, TID: int(e.Cat),
				Args: map[string]string{"name": e.Cat.String()}})
	}
	if dropped := l.Dropped(); dropped > 0 {
		var first uint64
		if len(evs) > 0 {
			first = evs[0].At
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("%d earlier events dropped by the ring", dropped),
			Cat: "trace", Phase: "i", TS: first, Scope: "g",
		})
	}
	for _, e := range evs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  e.What,
			Cat:   e.Cat.String(),
			Phase: "i",
			TS:    e.At,
			PID:   e.Node,
			TID:   int(e.Cat),
			Scope: "t",
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// jsonlEvent is the structured per-line form WriteJSONL emits.
type jsonlEvent struct {
	At   uint64 `json:"at"`
	Node int    `json:"node"`
	Cat  string `json:"cat"`
	What string `json:"what"`
}

// WriteJSONL renders the retained events as JSON Lines, one event object
// per line in chronological order — the machine-consumable twin of Dump.
func (l *Log) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if err := enc.Encode(jsonlEvent{At: e.At, Node: e.Node, Cat: e.Cat.String(), What: e.What}); err != nil {
			return err
		}
	}
	return nil
}

// Dropped reports how many recorded events the ring has since overwritten.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.total - uint64(len(l.Events()))
}
