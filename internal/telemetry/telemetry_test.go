package telemetry

import (
	"testing"

	"fugu/internal/metrics"
)

// snap builds a snapshot with the given counter values.
func snap(pairs ...any) metrics.Snapshot {
	s := metrics.NewSnapshot()
	for i := 0; i < len(pairs); i += 2 {
		s.Counters[pairs[i].(string)] = uint64(pairs[i+1].(int))
	}
	return s
}

// TestNilRecorderNoOps: a nil *Recorder is the "telemetry disabled" state —
// every method is a safe no-op and the hot-path calls allocate nothing, so
// default runs pay zero cost for the feature existing.
func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Every() != 0 {
		t.Errorf("nil.Every() = %d, want 0", r.Every())
	}
	r.AttachMachine()
	r.Record(Sample{At: 10})
	if tl := r.Finish(Sample{At: 20}); !tl.Empty() {
		t.Errorf("nil.Finish returned non-empty timeline: %+v", tl)
	}
	if got := r.Recent(4); got != nil {
		t.Errorf("nil.Recent = %v, want nil", got)
	}

	s := Sample{At: 10}
	if allocs := testing.AllocsPerRun(100, func() {
		r.Record(s)
		_ = r.Every()
	}); allocs != 0 {
		t.Errorf("nil recorder hot path allocates %.1f per run, want 0", allocs)
	}
}

// TestDeltasOmitZero: intervals carry only the counters that moved, so a
// column sum over the CSV reconciles exactly with the final totals.
func TestDeltasOmitZero(t *testing.T) {
	r := NewRecorder(Config{Every: 100})
	r.AttachMachine()
	r.Record(Sample{At: 100, Snap: snap("a", 5, "idle", 7)})
	r.Record(Sample{At: 200, Snap: snap("a", 9, "idle", 7)}) // idle unchanged
	tl := r.Finish(Sample{At: 300, Snap: snap("a", 9, "idle", 8)})

	if len(tl.Intervals) != 3 {
		t.Fatalf("got %d intervals, want 3", len(tl.Intervals))
	}
	if d := tl.Intervals[0].Counters["a"]; d != 5 {
		t.Errorf("interval 0 Δa = %d, want 5", d)
	}
	if d := tl.Intervals[1].Counters["a"]; d != 4 {
		t.Errorf("interval 1 Δa = %d, want 4", d)
	}
	if _, ok := tl.Intervals[1].Counters["idle"]; ok {
		t.Errorf("interval 1 carries zero-delta counter idle: %v", tl.Intervals[1].Counters)
	}
	if _, ok := tl.Intervals[2].Counters["a"]; ok {
		t.Errorf("closing interval carries zero-delta counter a")
	}
	assertReconciles(t, tl)
}

// assertReconciles checks the invariant the CI smoke job enforces: with no
// ring drops, per-instrument interval deltas sum to the final snapshot.
func assertReconciles(t *testing.T, tl Timeline) {
	t.Helper()
	if tl.Dropped != 0 {
		t.Fatalf("timeline dropped %d intervals; reconciliation undefined", tl.Dropped)
	}
	sums := tl.SumCounters()
	for name, want := range tl.Totals.Counters {
		if sums[name] != want {
			t.Errorf("counter %s: interval deltas sum to %d, totals say %d", name, sums[name], want)
		}
	}
	for name, got := range sums {
		if tl.Totals.Counters[name] != got {
			t.Errorf("counter %s: deltas sum to %d but totals lack it", name, got)
		}
	}
}

// TestFinishFoldsSameCycle: when the engine stops on the same cycle as the
// last sample, the residual delta folds into that interval instead of
// duplicating the cycle value — the cycle column stays strictly monotone and
// the counts stay exact.
func TestFinishFoldsSameCycle(t *testing.T) {
	r := NewRecorder(Config{Every: 100})
	r.AttachMachine()
	r.Record(Sample{At: 100, Snap: snap("a", 5)})
	tl := r.Finish(Sample{At: 100, Snap: snap("a", 8)})

	if len(tl.Intervals) != 1 {
		t.Fatalf("got %d intervals, want 1 (folded)", len(tl.Intervals))
	}
	if d := tl.Intervals[0].Counters["a"]; d != 8 {
		t.Errorf("folded Δa = %d, want 8", d)
	}
	assertReconciles(t, tl)
	assertMonotone(t, tl)
}

// assertMonotone checks cycles are strictly increasing within each epoch.
func assertMonotone(t *testing.T, tl Timeline) {
	t.Helper()
	last := map[int]uint64{}
	seen := map[int]bool{}
	for i, iv := range tl.Intervals {
		if seen[iv.Epoch] && iv.Cycle <= last[iv.Epoch] {
			t.Errorf("interval %d: cycle %d <= previous %d in epoch %d",
				i, iv.Cycle, last[iv.Epoch], iv.Epoch)
		}
		last[iv.Epoch], seen[iv.Epoch] = iv.Cycle, true
	}
}

// TestFinishIdempotent: a second Finish without a new AttachMachine must not
// add intervals or double-merge totals, so the harness's collection and an
// ad-hoc caller's can coexist.
func TestFinishIdempotent(t *testing.T) {
	r := NewRecorder(Config{Every: 100})
	r.AttachMachine()
	r.Record(Sample{At: 100, Snap: snap("a", 5)})
	first := r.Finish(Sample{At: 150, Snap: snap("a", 7)})
	second := r.Finish(Sample{At: 900, Snap: snap("a", 99)})
	if len(second.Intervals) != len(first.Intervals) {
		t.Errorf("second Finish grew intervals: %d -> %d", len(first.Intervals), len(second.Intervals))
	}
	if got := second.Totals.Counters["a"]; got != 7 {
		t.Errorf("second Finish totals a = %d, want 7 (no re-merge)", got)
	}
}

// TestRingEviction: the ring stays bounded, keeps the newest intervals and
// counts what it dropped.
func TestRingEviction(t *testing.T) {
	r := NewRecorder(Config{Every: 10, Cap: 4})
	r.AttachMachine()
	for i := 1; i <= 10; i++ {
		r.Record(Sample{At: uint64(i * 10), Snap: snap("a", i)})
	}
	tl := r.Timeline()
	if len(tl.Intervals) != 4 || tl.Dropped != 6 {
		t.Fatalf("ring: %d intervals, %d dropped; want 4 and 6", len(tl.Intervals), tl.Dropped)
	}
	if tl.Intervals[0].Cycle != 70 || tl.Intervals[3].Cycle != 100 {
		t.Errorf("ring kept cycles %d..%d, want 70..100", tl.Intervals[0].Cycle, tl.Intervals[3].Cycle)
	}
	recent := r.Recent(2)
	if len(recent) != 2 || recent[0].Cycle != 90 || recent[1].Cycle != 100 {
		t.Errorf("Recent(2) = %+v, want cycles 90,100", recent)
	}
	if got := r.Recent(99); len(got) != 4 {
		t.Errorf("Recent(99) returned %d intervals, want 4", len(got))
	}
}

// TestEpochsAndConcat: AttachMachine starts a new epoch whose cycles restart
// at zero; Concat renumbers epochs across timelines so they stay distinct.
func TestEpochsAndConcat(t *testing.T) {
	r := NewRecorder(Config{Every: 100})
	r.AttachMachine()
	r.Finish(Sample{At: 100, Snap: snap("a", 3)})
	r.AttachMachine()
	tl := r.Finish(Sample{At: 50, Snap: snap("a", 2)})

	if len(tl.Intervals) != 2 {
		t.Fatalf("got %d intervals, want 2", len(tl.Intervals))
	}
	if tl.Intervals[0].Epoch != 0 || tl.Intervals[1].Epoch != 1 {
		t.Errorf("epochs = %d,%d, want 0,1", tl.Intervals[0].Epoch, tl.Intervals[1].Epoch)
	}
	if got := tl.Totals.Counters["a"]; got != 5 {
		t.Errorf("totals a = %d, want 5 (3+2 across epochs)", got)
	}
	assertReconciles(t, tl)
	assertMonotone(t, tl)

	r2 := NewRecorder(Config{Every: 100})
	r2.AttachMachine()
	tl2 := r2.Finish(Sample{At: 70, Snap: snap("b", 4)})
	cat := Concat(tl, tl2)
	if len(cat.Intervals) != 3 {
		t.Fatalf("concat: %d intervals, want 3", len(cat.Intervals))
	}
	if e := cat.Intervals[2].Epoch; e != 2 {
		t.Errorf("concat renumbered second timeline to epoch %d, want 2", e)
	}
	if cat.Totals.Counters["a"] != 5 || cat.Totals.Counters["b"] != 4 {
		t.Errorf("concat totals = %v", cat.Totals.Counters)
	}
	assertReconciles(t, cat)
}

// TestBucketQuantiles: quantiles come from the interval's bucket deltas, not
// lifetime contents, and a p50 that lands in the zero bucket stays 0.
func TestBucketQuantiles(t *testing.T) {
	mkHist := func(count, sum uint64, buckets ...metrics.Bucket) metrics.HistogramValue {
		return metrics.HistogramValue{Count: count, Sum: sum, Buckets: buckets}
	}
	r := NewRecorder(Config{Every: 100})
	r.AttachMachine()
	prev := metrics.NewSnapshot()
	prev.Histograms["lat"] = mkHist(100, 1000, metrics.Bucket{Le: 1023, Count: 100})
	r.Record(Sample{At: 100, Snap: prev})

	// Interval activity: 90 samples at <=0, 9 at <=15, 1 at <=1023.
	cur := metrics.NewSnapshot()
	cur.Histograms["lat"] = mkHist(200, 2000,
		metrics.Bucket{Le: 0, Count: 90},
		metrics.Bucket{Le: 15, Count: 9},
		metrics.Bucket{Le: 1023, Count: 101})
	r.Record(Sample{At: 200, Snap: cur})

	tl := r.Timeline()
	hd, ok := tl.Intervals[1].Hists["lat"]
	if !ok {
		t.Fatalf("interval 1 missing hist delta: %+v", tl.Intervals[1])
	}
	if hd.Count != 100 || hd.Sum != 1000 {
		t.Errorf("hist delta count/sum = %d/%d, want 100/1000", hd.Count, hd.Sum)
	}
	if hd.P50 != 0 {
		t.Errorf("p50 = %d, want 0 (90%% of interval samples in the zero bucket)", hd.P50)
	}
	if hd.P90 != 0 || hd.P99 != 15 {
		t.Errorf("p90/p99 = %d/%d, want 0/15", hd.P90, hd.P99)
	}
	// The quiet histogram in interval 0 (first delta vs empty prev) covers
	// the all-of-lifetime case: p99 within the single occupied bucket.
	hd0 := tl.Intervals[0].Hists["lat"]
	if hd0.Count != 100 || hd0.P50 != 1023 || hd0.P99 != 1023 {
		t.Errorf("interval 0 hist delta = %+v, want count 100, quantiles 1023", hd0)
	}
}

// TestOnSampleStreams: the dashboard hook sees every interval as it is
// recorded, including the closing one.
func TestOnSampleStreams(t *testing.T) {
	var got []uint64
	r := NewRecorder(Config{Every: 100, OnSample: func(iv Interval) { got = append(got, iv.Cycle) }})
	r.AttachMachine()
	r.Record(Sample{At: 100, Snap: snap("a", 1)})
	r.Finish(Sample{At: 200, Snap: snap("a", 2)})
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Errorf("OnSample saw cycles %v, want [100 200]", got)
	}
}
