package udm

import (
	"testing"

	"fugu/internal/cpu"
	"fugu/internal/glaze"
	"fugu/internal/mesh"
	"fugu/internal/nic"
)

// TestDescriptorShadowedAcrossSwitch: a context switch in the middle of
// describing a message must unload the partial descriptor and reload it
// when the process resumes, per Section 4.1 ("the contents of the output
// buffer may be transparently unloaded and later reloaded").
func TestDescriptorShadowedAcrossSwitch(t *testing.T) {
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	m := glaze.NewMachine(cfg)
	job := m.NewJob("desc")
	null := m.NewJob("null")
	Attach(null.Process(0))
	Attach(null.Process(1))
	Attach(job.Process(0))
	ep1 := Attach(job.Process(1))
	var got []uint64
	ep1.On(1, func(e *Env, msg *Msg) { got = append(got, msg.Args[0]) })
	job.Process(0).StartMain(func(tk *cpu.Task) {
		ni := job.Process(0).NI()
		// Describe half a message, then dawdle across a quantum boundary.
		ni.Describe(nic.MakeHeader(1), 1)
		tk.Spend(120_000) // the quantum is 50k: at least one switch happens
		// The descriptor must still be intact: finish and launch.
		ni.Describe(99)
		if trap := ni.Launch(false); trap != nic.TrapNone {
			t.Errorf("launch trapped %v", trap)
		}
	})
	m.NewGang(50_000, 0, job, null).Start()
	m.RunUntilDone(10_000_000, job)
	m.Eng.RunUntil(m.Eng.Now() + 500_000)
	if len(got) != 1 || got[0] != 99 {
		t.Fatalf("got %v, want [99] (descriptor lost across switch)", got)
	}
}

// TestStrayGIDMessageDropped: a message for a GID with no process on the
// destination node is a protection event; the kernel counts and drops it
// without disturbing anyone.
func TestStrayGIDMessageDropped(t *testing.T) {
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	m := glaze.NewMachine(cfg)
	job := m.NewJob("app")
	ep0 := Attach(job.Process(0))
	_ = Attach(job.Process(1))
	job.Process(0).StartMain(func(tk *cpu.Task) {
		// Forge a message to a GID nobody owns by launching with kernel
		// privilege and a bogus stamp. (User code cannot do this; the test
		// plays hardware fault.)
		ni := job.Process(0).NI()
		h := nic.MakeHeader(1)
		ni.Describe(h, 1, 7)
		// Kernel launch with the descriptor's zero GID: GID 0 is the
		// kernel GID... use a user launch from a GID that has no peer
		// process: detach by switching the NI GID directly.
		ni.SetGID(999)
		if trap := ni.Launch(false); trap != nic.TrapNone {
			t.Errorf("launch trapped %v", trap)
		}
		ni.SetGID(job.GID())
		tk.Spend(1000)
	})
	_ = ep0
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(0, job)
	m.Eng.RunUntil(m.Eng.Now() + 100_000)
	if m.Nodes[1].Kernel.StrayMessages != 1 {
		t.Errorf("stray messages = %d, want 1", m.Nodes[1].Kernel.StrayMessages)
	}
}

// TestKernelMessageHandled: kernel-tagged messages on the main network
// interrupt the kernel, not any user.
func TestKernelMessageHandled(t *testing.T) {
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	m := glaze.NewMachine(cfg)
	job := m.NewJob("app")
	Attach(job.Process(0))
	ep1 := Attach(job.Process(1))
	userGot := 0
	ep1.On(1, func(e *Env, msg *Msg) { userGot++ })
	job.Process(0).StartMain(func(tk *cpu.Task) {
		ni := job.Process(0).NI()
		ni.Describe(nic.MakeKernelHeader(1), 1, 5)
		if trap := ni.Launch(true); trap != nic.TrapNone {
			t.Errorf("kernel launch trapped %v", trap)
		}
		tk.Spend(1000)
	})
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(0, job)
	m.Eng.RunUntil(m.Eng.Now() + 100_000)
	if m.Nodes[1].Kernel.KernelMsgs != 1 {
		t.Errorf("kernel messages = %d, want 1", m.Nodes[1].Kernel.KernelMsgs)
	}
	if userGot != 0 {
		t.Error("kernel message leaked to a user handler")
	}
}

// TestGangOffsetsSpread: node switch times are spread by the skew fraction.
func TestGangOffsetsSpread(t *testing.T) {
	cfg := glaze.DefaultConfig()
	m := glaze.NewMachine(cfg)
	job := m.NewJob("a")
	var first [8]uint64
	for i := 0; i < 8; i++ {
		i := i
		ep := Attach(job.Process(i))
		_ = ep
		job.Process(i).StartMain(func(tk *cpu.Task) {
			first[i] = tk.Now() // when this node first runs the job
			tk.Spend(100)
		})
	}
	m.NewGang(100_000, 0.5, job).Start()
	m.RunUntilDone(10_000_000, job)
	for i := 1; i < 8; i++ {
		if first[i] < first[i-1] {
			t.Errorf("node %d started before node %d (%d < %d)", i, i-1, first[i], first[i-1])
		}
	}
	spread := first[7] - first[0]
	// Half the quantum, by construction of the offsets.
	if spread < 40_000 || spread > 60_000 {
		t.Errorf("offset spread = %d, want ~50k", spread)
	}
}

// TestOSNetworkIndependence: flooding the main network does not delay the
// reserved OS network (the deadlock-avoidance property of Section 4.2).
func TestOSNetworkIndependence(t *testing.T) {
	cfg := glaze.DefaultConfig()
	cfg.W, cfg.H = 2, 1
	cfg.NIConfig.InputQueueDepth = 2
	m := glaze.NewMachine(cfg)
	job := m.NewJob("clog")
	ep0 := Attach(job.Process(0))
	ep1 := Attach(job.Process(1))
	// Clog node 1's main-network input: a slow handler keeps the two-deep
	// input queue full so the backlog stacks up inside the network.
	ep1.On(1, func(e *Env, msg *Msg) { e.Spend(5000) })
	job.Process(0).StartMain(func(tk *cpu.Task) {
		e := ep0.Env(tk)
		for i := 0; i < 50; i++ {
			e.Inject(1, 1, uint64(i))
		}
		// An OS-network packet injected now must arrive immediately even
		// though the main network has a backlog.
		m.Net.Send(mesh.OS, 0, 1, []uint64{nic.MakeKernelHeader(1), 99, 0})
		tk.Spend(1000)
	})
	m.NewGang(1<<40, 0, job).Start()
	m.RunUntilDone(0, job)
	m.Eng.RunUntil(m.Eng.Now() + 1_000_000)
	if s := m.Net.StatsFor(mesh.OS); s.Packets == 0 || s.Refused != 0 {
		t.Errorf("OS network stats = %+v, want delivered unrefused", s)
	}
	if s := m.Net.StatsFor(mesh.Main); s.Refused == 0 {
		t.Errorf("main network was never congested (refused = %d); the test proved nothing", s.Refused)
	}
}

// TestProtectionViolationPanics: user code launching a kernel-tagged
// message is a protection violation surfaced as a panic (fatal, like a
// real protection trap to a process without a handler).
func TestProtectionViolationPanics(t *testing.T) {
	m, job, eps := testMachine(t, nil)
	panicked := false
	job.Process(0).StartMain(func(tk *cpu.Task) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ni := eps[0].Process().NI()
		ni.Describe(nic.MakeKernelHeader(1), 1)
		e := eps[0].Env(tk)
		_ = e
		if trap := ni.Launch(false); trap != nic.TrapNone {
			panic(trap)
		}
	})
	m.RunUntilDone(0, job)
	if !panicked {
		t.Error("kernel-header launch by user did not trap")
	}
}
