// Package telemetry is the simulated-time flight recorder: an interval
// sampler that every N cycles (a sim event, not wall clock) diffs the
// machine's metrics registry against the previous interval and appends a
// timeline record — per-instrument counter deltas, gauge levels and
// high-waters, histogram activity with quantile estimates, spans in flight,
// NI queue depths and the per-node delivery mode — to a bounded in-memory
// ring. End-of-run aggregates (metrics snapshots, policylab CSVs) cannot
// distinguish a run that is healthy 90% of the time and overloaded 10% from
// one that limps uniformly; the timeline can.
//
// Everything is deterministic: sampling is driven by the simulation clock,
// consumes no RNG and charges no simulated cycles, so a sweep with sampling
// enabled produces byte-identical timelines serial or parallel, and a sweep
// with it disabled (nil *Recorder) is bit-identical to one without the
// package compiled in. A Recorder is not synchronized — give each machine
// its own (the harness does).
package telemetry

import (
	"fugu/internal/metrics"
)

// Defaults for Config fields left zero when a Recorder is built anyway.
const (
	// DefaultEvery is the sampling interval in simulated cycles: fine
	// enough to resolve scheduler-quantum dynamics (the quick-mode quantum
	// is 50k cycles), coarse enough that a full-scale run stays in the ring.
	DefaultEvery = 10_000
	// DefaultCap bounds the ring; older intervals are dropped (and counted)
	// once it fills, keeping the recorder's memory flat on long runs.
	DefaultCap = 4096
)

// Config parameterizes a flight recorder.
type Config struct {
	// Every is the sampling interval in simulated cycles. Zero means
	// telemetry is disabled wherever a Config gates recorder creation;
	// NewRecorder itself substitutes DefaultEvery.
	Every uint64
	// Cap is the ring capacity in intervals; <= 0 means DefaultCap.
	Cap int
	// OnSample, when non-nil, streams every recorded interval as it is
	// appended — the live dashboard hook (`fugusim watch`). It runs inside
	// the simulation event, so it must not touch the machine.
	OnSample func(Interval)
}

// Enabled reports whether the config asks for sampling at all.
func (c Config) Enabled() bool { return c.Every > 0 }

// HistDelta is one histogram's activity within one interval: the count and
// sum deltas plus quantile estimates computed from the interval's bucket
// deltas. Quantiles are the log2-bucket upper bound at which the cumulative
// interval count crosses the rank — exact integers, deterministic, and
// conservative (a true p99 of 700 cycles reports as 1023).
type HistDelta struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
	// Max is the lifetime maximum observed so far (registries do not track
	// a per-interval max; the running high-water is still useful context).
	Max uint64 `json:"max"`
}

// Interval is one flight-recorder record: the machine's activity between
// the previous sample and Cycle.
type Interval struct {
	// Epoch distinguishes machines when one recorder observes several in
	// sequence (table4-style multi-run points); cycles restart per epoch.
	Epoch int    `json:"epoch"`
	Cycle uint64 `json:"cycle"`
	// SpansInFlight is the number of unterminated message spans at the
	// sample (0 when no span recorder is installed).
	SpansInFlight int `json:"spans_inflight"`
	// QueueSum and QueueMax summarize NI input-queue depth across nodes.
	QueueSum int `json:"queue_sum"`
	QueueMax int `json:"queue_max"`
	// Modes is one delivery-mode glyph per node (see delivery.ModeGlyph):
	// '-' direct, 'b' buffered, 't' throttled, 'B' both, 'd'/'r' residual
	// store backlog under a software/hardware demux policy.
	Modes string `json:"modes"`
	// Counters holds the per-instrument deltas since the previous sample;
	// instruments with a zero delta are omitted, so summing a column over
	// all intervals of all epochs reconciles exactly with Totals.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges holds every gauge's level and lifetime high-water at the
	// sample (levels are instantaneous, not deltas).
	Gauges map[string]metrics.GaugeValue `json:"gauges,omitempty"`
	// Hists holds the interval activity of every histogram that recorded
	// at least one sample in the interval.
	Hists map[string]HistDelta `json:"hists,omitempty"`
	// Dwell holds per-pipeline-stage dwell-cycle deltas: cycles charged to
	// each stage by message spans that terminated within the interval
	// (keyed by spans.Stage names). Present only when a spans recorder
	// feeds the sampler; zero deltas are omitted, so the column set of
	// dwell-free timelines is unchanged.
	Dwell map[string]uint64 `json:"dwell,omitempty"`
}

// Sample is the raw machine state handed to Record/Finish at one instant;
// the recorder turns consecutive samples into Intervals.
type Sample struct {
	At            uint64
	Snap          metrics.Snapshot
	SpansInFlight int
	QueueSum      int
	QueueMax      int
	Modes         string
	// Dwell is the cumulative per-stage dwell total over terminated spans
	// at the sample (spans.Recorder.StageDwellTotals), nil when no spans
	// recorder is installed. The recorder diffs consecutive samples.
	Dwell map[string]uint64
}

// Timeline is a recorder's retained record sequence plus the final totals.
type Timeline struct {
	// Every is the sampling interval the timeline was recorded at.
	Every uint64 `json:"every"`
	// Intervals is the ring contents in record order (oldest first). When
	// Dropped is zero it is the complete history.
	Intervals []Interval `json:"intervals"`
	// Dropped counts intervals evicted from the ring; when non-zero the
	// deltas no longer sum to Totals.
	Dropped int `json:"dropped"`
	// Totals is the merged final registry snapshot across all finished
	// epochs. With Dropped == 0, per-instrument counter deltas summed over
	// Intervals equal Totals.Counters exactly — the reconciliation
	// invariant CI checks.
	Totals metrics.Snapshot `json:"totals"`
}

// Empty reports whether the timeline recorded nothing at all.
func (t Timeline) Empty() bool { return len(t.Intervals) == 0 && t.Totals.Empty() }

// SumCounters sums the per-interval counter deltas — the left-hand side of
// the reconciliation invariant (equals Totals.Counters when Dropped == 0
// and every epoch was finished).
func (t Timeline) SumCounters() map[string]uint64 {
	out := map[string]uint64{}
	for _, iv := range t.Intervals {
		for name, d := range iv.Counters {
			out[name] += d
		}
	}
	return out
}

// Concat splices per-machine timelines into one, renumbering epochs so they
// stay distinct, merging totals and summing drops. Multi-machine sweep
// points (table4 runs up to three machines per point) use it to present one
// timeline per point.
func Concat(tls ...Timeline) Timeline {
	var out Timeline
	snaps := make([]metrics.Snapshot, 0, len(tls))
	offset := 0
	for _, tl := range tls {
		if out.Every == 0 {
			out.Every = tl.Every
		}
		maxEpoch := -1
		for _, iv := range tl.Intervals {
			iv.Epoch += offset
			if iv.Epoch > maxEpoch {
				maxEpoch = iv.Epoch
			}
			out.Intervals = append(out.Intervals, iv)
		}
		if maxEpoch < offset && !tl.Totals.Empty() {
			maxEpoch = offset // an epoch with totals but no intervals still claims a slot
		}
		if maxEpoch >= offset {
			offset = maxEpoch + 1
		}
		out.Dropped += tl.Dropped
		snaps = append(snaps, tl.Totals)
	}
	out.Totals = metrics.Merge(snaps...)
	return out
}

// Recorder accumulates intervals into the ring. All methods are nil-safe
// no-ops on a nil receiver, so "telemetry disabled" is a nil pointer with
// zero cost (no events, no allocations) on every hot path.
type Recorder struct {
	cfg Config

	epoch    int
	attached bool // AttachMachine seen at least once

	prev      metrics.Snapshot  // snapshot at the previous sample of this epoch
	prevDwell map[string]uint64 // cumulative dwell at the previous sample
	lastAt    uint64
	hasSample bool // any sample recorded in the current epoch
	finished  bool // Finish seen for the current epoch

	buf     []Interval // ring storage
	head, n int
	dropped int

	totals metrics.Snapshot // merged final snapshots of finished epochs
}

// NewRecorder builds a flight recorder, substituting defaults for zero
// Every/Cap.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Every == 0 {
		cfg.Every = DefaultEvery
	}
	if cfg.Cap <= 0 {
		cfg.Cap = DefaultCap
	}
	return &Recorder{cfg: cfg, totals: metrics.NewSnapshot()}
}

// Every returns the sampling interval (0 on a nil recorder — disabled).
func (r *Recorder) Every() uint64 {
	if r == nil {
		return 0
	}
	return r.cfg.Every
}

// AttachMachine starts a new epoch: delta state resets so the first sample
// of the new machine diffs against an empty snapshot. Mirrors
// spans.Recorder.AttachMachine.
func (r *Recorder) AttachMachine() {
	if r == nil {
		return
	}
	if r.attached {
		r.epoch++
	}
	r.attached = true
	r.prev = metrics.Snapshot{}
	r.prevDwell = nil
	r.lastAt = 0
	r.hasSample = false
	r.finished = false
}

// Record appends one interval: the delta of s against the previous sample.
func (r *Recorder) Record(s Sample) {
	if r == nil {
		return
	}
	iv := r.delta(s)
	r.push(iv)
	if r.cfg.OnSample != nil {
		r.cfg.OnSample(iv)
	}
	r.prev = s.Snap
	r.prevDwell = s.Dwell
	r.lastAt = s.At
	r.hasSample = true
}

// Finish closes the current epoch with a final sample and returns the
// timeline so far. The closing delta lands in its own interval unless the
// engine stopped on the same cycle as the last sample, in which case it is
// folded into that interval (keeping the cycle column strictly monotone per
// epoch without losing counts; folded histogram quantiles keep the
// pre-fold estimate). Finishing twice without a new AttachMachine is a
// no-op, so harness collection and ad-hoc callers compose.
func (r *Recorder) Finish(s Sample) Timeline {
	if r == nil {
		return Timeline{}
	}
	if !r.finished {
		iv := r.delta(s)
		switch {
		case !r.hasSample, s.At > r.lastAt:
			if intervalActive(iv) || !r.hasSample {
				r.push(iv)
				if r.cfg.OnSample != nil {
					r.cfg.OnSample(iv)
				}
			}
		default: // same cycle as the last sample: fold residual deltas in
			if intervalActive(iv) {
				r.foldIntoLast(iv)
			}
		}
		r.totals = metrics.Merge(r.totals, s.Snap)
		r.prev = s.Snap
		r.prevDwell = s.Dwell
		r.lastAt = s.At
		r.hasSample = true
		r.finished = true
	}
	return r.Timeline()
}

// Timeline linearizes the ring. Safe to call at any point; the returned
// intervals are copies only of the ring's record structs (maps are shared
// — treat a timeline as read-only while its recorder is live).
func (r *Recorder) Timeline() Timeline {
	if r == nil {
		return Timeline{}
	}
	ivs := make([]Interval, r.n)
	for i := 0; i < r.n; i++ {
		ivs[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return Timeline{Every: r.cfg.Every, Intervals: ivs, Dropped: r.dropped, Totals: r.totals}
}

// Recent returns the newest k intervals (oldest first) — the Diagnose dump.
func (r *Recorder) Recent(k int) []Interval {
	if r == nil || k <= 0 {
		return nil
	}
	if k > r.n {
		k = r.n
	}
	out := make([]Interval, k)
	for i := 0; i < k; i++ {
		out[i] = r.buf[(r.head+r.n-k+i)%len(r.buf)]
	}
	return out
}

// delta computes the interval record for sample s against r.prev.
func (r *Recorder) delta(s Sample) Interval {
	iv := Interval{
		Epoch:         r.epoch,
		Cycle:         s.At,
		SpansInFlight: s.SpansInFlight,
		QueueSum:      s.QueueSum,
		QueueMax:      s.QueueMax,
		Modes:         s.Modes,
	}
	for name, v := range s.Snap.Counters {
		if d := v - r.prev.Counters[name]; d != 0 {
			if iv.Counters == nil {
				iv.Counters = make(map[string]uint64)
			}
			iv.Counters[name] = d
		}
	}
	if len(s.Snap.Gauges) > 0 {
		iv.Gauges = make(map[string]metrics.GaugeValue, len(s.Snap.Gauges))
		for name, g := range s.Snap.Gauges {
			iv.Gauges[name] = g
		}
	}
	for name, h := range s.Snap.Histograms {
		prev := r.prev.Histograms[name]
		dc := h.Count - prev.Count
		if dc == 0 {
			continue
		}
		if iv.Hists == nil {
			iv.Hists = make(map[string]HistDelta)
		}
		hd := HistDelta{Count: dc, Sum: h.Sum - prev.Sum, Max: h.Max}
		hd.P50, hd.P90, hd.P99 = bucketQuantiles(prev, h, dc)
		iv.Hists[name] = hd
	}
	for name, v := range s.Dwell {
		if d := v - r.prevDwell[name]; d != 0 {
			if iv.Dwell == nil {
				iv.Dwell = make(map[string]uint64)
			}
			iv.Dwell[name] = d
		}
	}
	return iv
}

// bucketQuantiles estimates p50/p90/p99 of the interval's samples from the
// two snapshots' bucket deltas.
func bucketQuantiles(prev, cur metrics.HistogramValue, dc uint64) (p50, p90, p99 uint64) {
	prevByLe := map[uint64]uint64{}
	for _, bk := range prev.Buckets {
		prevByLe[bk.Le] = bk.Count
	}
	// Ranks: smallest bound whose cumulative interval count reaches
	// ceil(q * dc). Buckets are sorted by bound in a snapshot.
	r50 := (dc*50 + 99) / 100
	r90 := (dc*90 + 99) / 100
	r99 := (dc*99 + 99) / 100
	var cum uint64
	var got50, got90 bool
	for _, bk := range cur.Buckets {
		cum += bk.Count - prevByLe[bk.Le]
		if !got50 && cum >= r50 {
			p50, got50 = bk.Le, true
		}
		if !got90 && cum >= r90 {
			p90, got90 = bk.Le, true
		}
		if cum >= r99 {
			p99 = bk.Le
			break
		}
	}
	return p50, p90, p99
}

// intervalActive reports whether the interval carries any counter,
// histogram or dwell activity (gauge levels alone don't warrant a closing
// record).
func intervalActive(iv Interval) bool {
	return len(iv.Counters) > 0 || len(iv.Hists) > 0 || len(iv.Dwell) > 0
}

// push appends an interval to the ring, evicting the oldest when full.
func (r *Recorder) push(iv Interval) {
	if r.buf == nil {
		r.buf = make([]Interval, r.cfg.Cap)
	}
	if r.n == len(r.buf) {
		r.buf[r.head] = iv
		r.head = (r.head + 1) % len(r.buf)
		r.dropped++
		return
	}
	r.buf[(r.head+r.n)%len(r.buf)] = iv
	r.n++
}

// foldIntoLast merges a same-cycle closing delta into the newest interval:
// counts and sums add, instantaneous fields take the newer values.
func (r *Recorder) foldIntoLast(iv Interval) {
	if r.n == 0 {
		r.push(iv)
		return
	}
	last := &r.buf[(r.head+r.n-1)%len(r.buf)]
	for name, d := range iv.Counters {
		if last.Counters == nil {
			last.Counters = make(map[string]uint64)
		}
		last.Counters[name] += d
	}
	for name, hd := range iv.Hists {
		if last.Hists == nil {
			last.Hists = make(map[string]HistDelta)
		}
		prev := last.Hists[name]
		if prev.Count == 0 {
			last.Hists[name] = hd
			continue
		}
		prev.Count += hd.Count
		prev.Sum += hd.Sum
		prev.Max = hd.Max
		last.Hists[name] = prev
	}
	for name, d := range iv.Dwell {
		if last.Dwell == nil {
			last.Dwell = make(map[string]uint64)
		}
		last.Dwell[name] += d
	}
	last.Gauges = iv.Gauges
	last.SpansInFlight = iv.SpansInFlight
	last.QueueSum = iv.QueueSum
	last.QueueMax = iv.QueueMax
	last.Modes = iv.Modes
}
