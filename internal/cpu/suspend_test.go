package cpu

import (
	"testing"

	"fugu/internal/sim"
)

func TestSuspendRunningTask(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var end uint64
	tk := c.NewTask("t", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(100)
		end = tk.Now()
	})
	e.Schedule(30, func() { tk.Suspend() })
	e.Schedule(200, func() { tk.Resume() })
	e.Run()
	// 30 cycles before suspend, 70 after resuming at 200.
	if end != 270 {
		t.Errorf("end = %d, want 270", end)
	}
	if tk.Consumed() != 100 {
		t.Errorf("consumed = %d, want 100", tk.Consumed())
	}
}

func TestSuspendReadyTask(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var order []string
	a := c.NewTask("a", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(50)
		order = append(order, "a")
	})
	b := c.NewTask("b", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(10)
		order = append(order, "b")
	})
	_ = a
	e.Schedule(5, func() { b.Suspend() }) // b is ready, not yet run
	e.Schedule(100, func() { b.Resume() })
	e.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("order = %v, want [a b]", order)
	}
}

func TestSuspendBlockedTaskBanksWake(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	q := NewWaitQ("q")
	var resumed uint64
	tk := c.NewTask("t", PrioUser, DomainUser, func(tk *Task) {
		q.Wait(tk)
		resumed = tk.Now()
	})
	e.Schedule(10, func() { tk.Suspend() })
	e.Schedule(20, func() { q.WakeOne() }) // wake arrives while suspended
	e.Schedule(100, func() { tk.Resume() })
	e.Run()
	if resumed != 100 {
		t.Errorf("resumed at %d, want 100 (banked wake)", resumed)
	}
}

func TestResumeBlockedTaskStaysBlocked(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	q := NewWaitQ("q")
	var resumed uint64
	tk := c.NewTask("t", PrioUser, DomainUser, func(tk *Task) {
		q.Wait(tk)
		resumed = tk.Now()
	})
	e.Schedule(10, func() { tk.Suspend() })
	e.Schedule(20, func() { tk.Resume() }) // no wake yet: stays blocked
	e.Schedule(50, func() { q.WakeOne() })
	e.Run()
	if resumed != 50 {
		t.Errorf("resumed at %d, want 50", resumed)
	}
}

func TestSuspendIdempotent(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var end uint64
	tk := c.NewTask("t", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(10)
		end = tk.Now()
	})
	e.Schedule(2, func() { tk.Suspend(); tk.Suspend() })
	e.Schedule(5, func() { tk.Resume(); tk.Resume() })
	e.Run()
	if end != 13 { // 2 done, 8 remaining, resumes at 5
		t.Errorf("end = %d, want 13", end)
	}
}

func TestSuspendLetsOthersRun(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	var otherEnd uint64
	tk := c.NewTask("hog", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(1000)
	})
	c.NewTask("other", PrioUser, DomainUser, func(tk *Task) {
		tk.Spend(10)
		otherEnd = tk.Now()
	})
	e.Schedule(5, func() { tk.Suspend() })
	e.Schedule(500, func() { tk.Resume() })
	e.Run()
	if otherEnd != 15 {
		t.Errorf("other finished at %d, want 15 (runs while hog suspended)", otherEnd)
	}
}

func TestSuspendDoneTaskIsNoop(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, "cpu0")
	tk := c.NewTask("t", PrioUser, DomainUser, func(tk *Task) { tk.Spend(5) })
	e.Run()
	tk.Suspend() // done: must not panic or corrupt anything
	tk.Resume()
	if !tk.Done() {
		t.Error("task not done")
	}
}
